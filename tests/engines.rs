//! Cross-crate integration tests: the three engines, the scheduler
//! policies, and the report invariants, exercised through the facade
//! crate's public API.

use seesaw::prelude::*;
use seesaw::workload::LengthStats;

fn workload(n: usize) -> Vec<Request> {
    WorkloadGen::arxiv_summarization(3).generate(n)
}

/// Every engine/policy combination completes the same workload and
/// reports consistent accounting.
#[test]
fn all_engines_complete_and_account_consistently() {
    let cluster = ClusterSpec::a10x4();
    let model = ModelConfig::llama2_13b();
    let reqs = workload(40);
    let stats = LengthStats::of(&reqs);

    let mut reports = Vec::new();
    for policy in [
        SchedulingPolicy::PrefillPrioritized,
        SchedulingPolicy::DecodePrioritized,
        SchedulingPolicy::ChunkedPrefill { chunk_tokens: 1024 },
    ] {
        let cfg: ParallelConfig = "T2P2".parse().expect("valid");
        reports.push(
            VllmEngine::new(cluster.clone(), model.clone(), cfg, policy)
                .expect("feasible")
                .run(&reqs),
        );
    }
    let spec = SeesawSpec::new("P4".parse().unwrap(), "T4".parse().unwrap());
    reports.push(
        SeesawEngine::new(cluster.clone(), model.clone(), spec)
            .expect("feasible")
            .run(&reqs),
    );

    for r in &reports {
        assert_eq!(r.stats.requests, reqs.len(), "{}", r.label);
        assert_eq!(r.stats.input_tokens, stats.total_input);
        assert_eq!(r.stats.output_tokens, stats.total_output);
        assert!(r.stats.duration_s > 0.0);
        // Phase walls never exceed the total duration.
        let phases = r.prefill_wall_s + r.decode_wall_s + r.mixed_wall_s + r.reshard_wall_s;
        assert!(
            phases <= r.stats.duration_s * 1.0001,
            "{}: phases {phases} vs total {}",
            r.label,
            r.stats.duration_s
        );
        assert!(r.throughput_rps().is_finite() && r.throughput_rps() > 0.0);
    }
}

/// Simulations are deterministic: identical inputs give bit-identical
/// reports.
#[test]
fn runs_are_deterministic() {
    let cluster = ClusterSpec::a10x4();
    let model = ModelConfig::llama2_13b();
    let reqs = workload(24);
    let spec = || SeesawSpec::new("P4".parse().unwrap(), "T2P2".parse().unwrap());
    let a = SeesawEngine::new(cluster.clone(), model.clone(), spec())
        .unwrap()
        .run(&reqs);
    let b = SeesawEngine::new(cluster, model, spec()).unwrap().run(&reqs);
    assert_eq!(a, b);
}

/// The headline claim at integration scope: on a PCIe node with a
/// prefill-heavy workload, Seesaw beats every static configuration
/// under the default policy.
#[test]
fn seesaw_beats_every_static_config_on_arxiv_34b() {
    let cluster = ClusterSpec::a10x8();
    let model = ModelConfig::codellama_34b();
    let reqs = WorkloadGen::arxiv_summarization(17).generate(80);

    let spec = SeesawSpec::auto_probed(&cluster, &model, &reqs[..24]).expect("pair");
    let ours = SeesawEngine::new(cluster.clone(), model.clone(), spec)
        .expect("valid")
        .run(&reqs);

    for cfg in seesaw::parallel::feasible::feasible_configs(&model, &cluster) {
        let base = VllmEngine::new(
            cluster.clone(),
            model.clone(),
            cfg,
            SchedulingPolicy::PrefillPrioritized,
        )
        .expect("feasible")
        .run(&reqs);
        assert!(
            ours.throughput_rps() >= base.throughput_rps(),
            "seesaw {:.3} lost to static {} at {:.3}",
            ours.throughput_rps(),
            base.label,
            base.throughput_rps()
        );
    }
}

/// Swap accounting: bytes out equal bytes in (every buffered sequence
/// is later swapped in), and match the workload's prompt KV volume.
#[test]
fn tiered_buffer_conserves_kv_bytes() {
    let cluster = ClusterSpec::a10x4();
    let model = ModelConfig::llama2_13b();
    let reqs: Vec<Request> = (0..20).map(|i| Request::new(i, 1000, 50)).collect();
    let spec = SeesawSpec::new("P4".parse().unwrap(), "T4".parse().unwrap());
    let r = SeesawEngine::new(cluster, model.clone(), spec)
        .expect("valid")
        .run(&reqs);
    assert_eq!(r.swap_out_bytes, r.swap_in_bytes);
    let expected: u64 = reqs
        .iter()
        .map(|q| model.kv_bytes_per_token() * q.input_len as u64)
        .sum();
    assert_eq!(r.swap_out_bytes, expected);
}

/// Engines agree with the roofline on configuration *ordering* for
/// stage-pure workloads (the property the motivation section rests
/// on).
#[test]
fn sim_and_roofline_agree_on_prefill_ordering() {
    let cluster = ClusterSpec::a10x8();
    let model = ModelConfig::codellama_34b();
    let reqs = WorkloadGen::constant(2000, 1).generate(48);
    let tm = seesaw::roofline::ThroughputModel::new(Roofline::new(
        cluster.clone(),
        model.clone(),
    ));

    let mut sim_rates = Vec::new();
    let mut analytic_rates = Vec::new();
    for label in ["P8", "T2P4", "T4P2", "T8"] {
        let cfg: ParallelConfig = label.parse().unwrap();
        let rep = VllmEngine::new(
            cluster.clone(),
            model.clone(),
            cfg,
            SchedulingPolicy::PrefillPrioritized,
        )
        .unwrap()
        .run(&reqs);
        sim_rates.push(rep.throughput_rps());
        analytic_rates.push(tm.prefill_tokens_per_sec(cfg, 2000, 4));
    }
    for i in 0..sim_rates.len() - 1 {
        assert_eq!(
            sim_rates[i] > sim_rates[i + 1],
            analytic_rates[i] > analytic_rates[i + 1],
            "ordering mismatch at index {i}: sim {sim_rates:?} analytic {analytic_rates:?}"
        );
    }
}

/// GPU utilization is reported, bounded, and non-trivial for a busy
/// run.
#[test]
fn utilization_is_sane() {
    let cluster = ClusterSpec::a10x4();
    let model = ModelConfig::llama2_13b();
    let reqs = WorkloadGen::constant(1024, 64).generate(32);
    let v = VllmEngine::new(
        cluster.clone(),
        model.clone(),
        "T2P2".parse().unwrap(),
        SchedulingPolicy::PrefillPrioritized,
    )
    .unwrap()
    .run(&reqs);
    let s = SeesawEngine::new(
        cluster,
        model,
        SeesawSpec::new("P4".parse().unwrap(), "T4".parse().unwrap()),
    )
    .unwrap()
    .run(&reqs);
    for r in [&v, &s] {
        assert!(
            r.gpu_utilization > 0.2 && r.gpu_utilization <= 1.0,
            "{}: utilization {}",
            r.label,
            r.gpu_utilization
        );
    }
}

/// Seesaw's phase timeline covers the run: spans are ordered,
/// non-overlapping, and include at least one of each phase kind when
/// re-sharding happened.
#[test]
fn phase_timeline_is_well_formed() {
    let cluster = ClusterSpec::a10x4();
    let model = ModelConfig::llama2_13b();
    let reqs = workload(24);
    let spec = SeesawSpec::new("P4".parse().unwrap(), "T4".parse().unwrap());
    let r = SeesawEngine::new(cluster, model, spec).unwrap().run(&reqs);
    assert!(!r.phases.is_empty());
    for w in r.phases.windows(2) {
        assert!(w[1].start_s >= w[0].end_s - 1e-9, "phases overlap: {w:?}");
    }
    let kinds: std::collections::HashSet<_> =
        r.phases.iter().map(|p| format!("{}", p.phase)).collect();
    assert!(kinds.contains("prefill"));
    assert!(kinds.contains("decode"));
    assert!(kinds.contains("reshard"));
    let last = r.phases.last().expect("non-empty");
    assert!(last.end_s <= r.stats.duration_s + 1e-9);
}

/// Output-length extremes: output=1 (prefill-only) and long outputs
/// both complete under every engine.
#[test]
fn output_length_extremes() {
    let cluster = ClusterSpec::a10x4();
    let model = ModelConfig::llama2_13b();
    let prefill_only: Vec<Request> = (0..12).map(|i| Request::new(i, 1500, 1)).collect();
    let decode_heavy: Vec<Request> = (0..12).map(|i| Request::new(i, 64, 800)).collect();

    for reqs in [&prefill_only, &decode_heavy] {
        let spec = SeesawSpec::new("P4".parse().unwrap(), "T4".parse().unwrap());
        let r = SeesawEngine::new(cluster.clone(), model.clone(), spec)
            .expect("valid")
            .run(reqs);
        assert_eq!(r.stats.requests, reqs.len());
        let v = VllmEngine::new(
            cluster.clone(),
            model.clone(),
            "T2P2".parse().unwrap(),
            SchedulingPolicy::ChunkedPrefill { chunk_tokens: 256 },
        )
        .expect("feasible")
        .run(reqs);
        assert_eq!(v.stats.requests, reqs.len());
    }
}
