//! Property-based integration tests: random workloads and
//! configurations must never break engine invariants.

use proptest::prelude::*;
use seesaw::prelude::*;

/// Strategy: a small random workload with bounded lengths.
fn workload_strategy() -> impl Strategy<Value = Vec<Request>> {
    prop::collection::vec((64usize..2000, 1usize..200), 4..24).prop_map(|lens| {
        lens.into_iter()
            .enumerate()
            .map(|(i, (input, output))| Request::new(i as u64, input, output))
            .collect()
    })
}

/// Strategy: a valid 4-GPU configuration for the 13B model (40 query
/// heads => TP in {1, 2, 4}).
fn config_strategy() -> impl Strategy<Value = ParallelConfig> {
    prop::sample::select(vec![
        ParallelConfig::new(1, 1, 4),
        ParallelConfig::new(1, 2, 2),
        ParallelConfig::new(1, 4, 1),
        ParallelConfig::new(2, 2, 1),
        ParallelConfig::new(2, 1, 2),
        ParallelConfig::new(4, 1, 1),
    ])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every random workload completes on every valid static config,
    /// with exact token accounting and positive finite throughput.
    #[test]
    fn vllm_never_loses_requests(reqs in workload_strategy(), cfg in config_strategy()) {
        let cluster = ClusterSpec::a10x4();
        let model = ModelConfig::llama2_13b();
        let engine = VllmEngine::new(cluster, model, cfg, SchedulingPolicy::PrefillPrioritized);
        prop_assume!(engine.is_ok()); // some DP configs can't fit 13B KV
        let r = engine.unwrap().run(&reqs);
        prop_assert_eq!(r.stats.requests, reqs.len());
        let in_tokens: u64 = reqs.iter().map(|q| q.input_len as u64).sum();
        prop_assert_eq!(r.stats.input_tokens, in_tokens);
        prop_assert!(r.stats.duration_s.is_finite() && r.stats.duration_s > 0.0);
    }

    /// Seesaw completes every random workload and conserves swap
    /// traffic (out == in), for any prefill/decode pair.
    #[test]
    fn seesaw_conserves_swaps(reqs in workload_strategy()) {
        let cluster = ClusterSpec::a10x4();
        let model = ModelConfig::llama2_13b();
        let spec = SeesawSpec::new(
            "P4".parse().unwrap(),
            "T2P2".parse().unwrap(),
        );
        let r = SeesawEngine::new(cluster, model, spec).unwrap().run(&reqs);
        prop_assert_eq!(r.stats.requests, reqs.len());
        prop_assert_eq!(r.swap_out_bytes, r.swap_in_bytes);
    }

    /// Chunked prefill produces the same completed-token totals as
    /// whole-prompt prefill (scheduling must not change the work).
    #[test]
    fn chunked_matches_whole_prompt_token_totals(reqs in workload_strategy()) {
        let cluster = ClusterSpec::a10x4();
        let model = ModelConfig::llama2_13b();
        let cfg: ParallelConfig = "T2P2".parse().unwrap();
        let whole = VllmEngine::new(cluster.clone(), model.clone(), cfg,
            SchedulingPolicy::PrefillPrioritized).unwrap().run(&reqs);
        let chunked = VllmEngine::new(cluster, model, cfg,
            SchedulingPolicy::ChunkedPrefill { chunk_tokens: 333 }).unwrap().run(&reqs);
        prop_assert_eq!(whole.stats.input_tokens, chunked.stats.input_tokens);
        prop_assert_eq!(whole.stats.output_tokens, chunked.stats.output_tokens);
    }
}
