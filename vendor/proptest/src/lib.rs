//! Offline stand-in for the subset of `proptest` this workspace uses.
//!
//! Supports: the `proptest! {}` test macro (with an optional
//! `#![proptest_config(...)]` header), range strategies over the
//! numeric types used in the tests, tuple strategies, `prop_map`,
//! `prop::collection::vec`, `prop::sample::select`, `prop_oneof!`,
//! `Just`, and the `prop_assert* / prop_assume` assertion macros.
//!
//! Differences from the real crate: no shrinking (failures report the
//! generating values via the assertion message) and a fixed, per-test
//! deterministic seed derived from the test name, so failures
//! reproduce exactly across runs.

pub mod rng {
    /// SplitMix64 — deterministic, seeded from the test name.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        x: u64,
    }

    impl TestRng {
        /// Seed from an arbitrary string (the test's name).
        pub fn deterministic(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng { x: h }
        }

        /// Next 64 uniform bits.
        pub fn next_u64(&mut self) -> u64 {
            self.x = self.x.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.x;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform usize in `[0, bound)`.
        pub fn below(&mut self, bound: usize) -> usize {
            assert!(bound > 0);
            (self.next_u64() % bound as u64) as usize
        }

        /// Uniform f64 in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod test_runner {
    /// Runner configuration; only `cases` is honoured.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` generated inputs.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }
}

pub mod strategy {
    use crate::rng::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A generator of values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draw one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Map generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }
    }

    impl<T> Strategy for Box<dyn Strategy<Value = T>> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (**self).generate(rng)
        }
    }

    /// Box a strategy for heterogeneous collections (`prop_oneof!`).
    pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
    where
        S: Strategy + 'static,
    {
        Box::new(s)
    }

    /// Always-this-value strategy.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// `prop_map` adapter.
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, U, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice among boxed strategies (`prop_oneof!`).
    pub struct OneOf<T> {
        options: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> OneOf<T> {
        /// Build from the macro's boxed arms.
        pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            OneOf { options }
        }
    }

    impl<T> Strategy for OneOf<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.options.len());
            self.options[i].generate(rng)
        }
    }

    macro_rules! int_range_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + (rng.next_u64() % span) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo) as u64;
                    if span == u64::MAX {
                        return lo + rng.next_u64() as $t;
                    }
                    lo + (rng.next_u64() % (span + 1)) as $t
                }
            }
        )*};
    }
    int_range_strategies!(usize, u64, u32, i32, i64, u8, u16);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + (self.end - self.start) * rng.unit_f64()
        }
    }

    macro_rules! tuple_strategies {
        ($(($($s:ident $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategies! {
        (A 0)
        (A 0, B 1)
        (A 0, B 1, C 2)
        (A 0, B 1, C 2, D 3)
        (A 0, B 1, C 2, D 3, E 4)
        (A 0, B 1, C 2, D 3, E 4, F 5)
    }
}

/// `prop::` namespace mirroring the real crate's module layout.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::rng::TestRng;
        use crate::strategy::Strategy;
        use std::ops::Range;

        /// `Vec` strategy with a size range.
        pub struct VecStrategy<S> {
            elem: S,
            size: Range<usize>,
        }

        /// `prop::collection::vec(elem, lo..hi)`.
        pub fn vec<S: Strategy>(elem: S, size: Range<usize>) -> VecStrategy<S> {
            assert!(size.start < size.end, "empty size range");
            VecStrategy { elem, size }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let span = self.size.end - self.size.start;
                let n = self.size.start + rng.below(span.max(1));
                (0..n).map(|_| self.elem.generate(rng)).collect()
            }
        }
    }

    /// Sampling strategies.
    pub mod sample {
        use crate::rng::TestRng;
        use crate::strategy::Strategy;

        /// Uniform choice from a fixed set.
        pub struct Select<T: Clone> {
            items: Vec<T>,
        }

        /// `prop::sample::select(items)`.
        pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
            assert!(!items.is_empty(), "select from empty set");
            Select { items }
        }

        impl<T: Clone> Strategy for Select<T> {
            type Value = T;
            fn generate(&self, rng: &mut TestRng) -> T {
                self.items[rng.below(self.items.len())].clone()
            }
        }
    }
}

/// Everything the tests import.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};
}

/// The test-defining macro. Each body runs `config.cases` times with
/// freshly generated inputs; assertion failures panic like ordinary
/// test failures.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Internal: expand each `fn name(arg in strategy, ...) { body }`.
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng = $crate::rng::TestRng::deterministic(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for __case in 0..__config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)*
                // prop_assume! rejects a case by returning Err early.
                let __outcome: ::std::result::Result<(), ()> = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                let _ = (__case, __outcome);
            }
        }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
}

/// Assert inside a proptest body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Assert equality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Assert inequality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Skip the current generated case when `cond` is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err(());
        }
    };
}

/// Uniform choice among strategy arms producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![$($crate::strategy::boxed($arm)),+])
    };
}
