//! Offline stand-in for the subset of `criterion` this workspace's
//! benches use: `Criterion`, benchmark groups, `iter`/`iter_batched`,
//! `Throughput`, `BatchSize`, and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! Measurement model: a short warm-up, then timed batches until
//! either a wall-clock budget or an iteration cap is reached; the
//! mean per-iteration time is printed. No statistics, plots, or
//! baselines — just fast, dependency-free numbers whose relative
//! ordering is trustworthy.

use std::time::{Duration, Instant};

/// Per-benchmark wall-clock measurement budget.
const MEASURE_BUDGET: Duration = Duration::from_millis(300);
/// Iteration cap (keeps huge per-iteration benches from overrunning).
const MAX_ITERS: u64 = 10_000;

/// Declared throughput of one benchmark iteration.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// How `iter_batched` amortizes setup (ignored by this stub).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// Fresh input per iteration.
    PerIteration,
}

/// Passed to the closure under test; runs and times the payload.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    fn new() -> Self {
        Bencher {
            iters: 0,
            elapsed: Duration::ZERO,
        }
    }

    /// Time `f` repeatedly.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up.
        for _ in 0..3 {
            std::hint::black_box(f());
        }
        let start = Instant::now();
        let mut n = 0u64;
        while start.elapsed() < MEASURE_BUDGET && n < MAX_ITERS {
            std::hint::black_box(f());
            n += 1;
        }
        self.iters = n.max(1);
        self.elapsed = start.elapsed();
    }

    /// Time `routine` over inputs produced (untimed) by `setup`.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        std::hint::black_box(routine(setup()));
        let mut total = Duration::ZERO;
        let mut n = 0u64;
        while total < MEASURE_BUDGET && n < MAX_ITERS {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            total += start.elapsed();
            n += 1;
        }
        self.iters = n.max(1);
        self.elapsed = total;
    }

    fn per_iter(&self) -> Duration {
        self.elapsed / self.iters.max(1) as u32
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos() as f64;
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

fn report(name: &str, b: &Bencher, throughput: Option<Throughput>) {
    let per = b.per_iter();
    let mut line = format!("{name:<44} {:>12}/iter  ({} iters)", fmt_duration(per), b.iters);
    if let Some(t) = throughput {
        let secs = per.as_secs_f64().max(1e-12);
        match t {
            Throughput::Elements(n) => {
                line.push_str(&format!("  {:.0} elem/s", n as f64 / secs));
            }
            Throughput::Bytes(n) => {
                line.push_str(&format!("  {:.1} MiB/s", n as f64 / secs / (1 << 20) as f64));
            }
        }
    }
    println!("{line}");
}

/// Top-level benchmark registry.
#[derive(Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Run one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new();
        f(&mut b);
        report(name, &b, None);
        self
    }

    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
            throughput: None,
        }
    }
}

/// A named group sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declare per-iteration throughput for subsequent benches.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Sample count hint (ignored by this stub).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Run one named benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new();
        f(&mut b);
        report(&format!("{}/{name}", self.name), &b, self.throughput);
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Re-export so `use criterion::black_box` also works.
pub use std::hint::black_box;

/// Define a group-runner function from bench functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Define `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
