//! Offline stand-in for `serde`: exposes the `Serialize` /
//! `Deserialize` names (trait + no-op derive macro) that the
//! workspace's `#[derive(...)]` attributes and `use serde::{...}`
//! imports resolve against. No actual serialization machinery exists
//! or is needed — see `vendor/serde_derive`.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait; the no-op derive never implements it.
pub trait Serialize {}

/// Marker trait; the no-op derive never implements it.
pub trait Deserialize<'de>: Sized {}
