//! Offline stand-in for `serde_derive`.
//!
//! This workspace uses `#[derive(Serialize, Deserialize)]` purely as
//! documentation of intent — nothing serializes through serde at
//! runtime (reports are rendered as text/JSON by hand). The build
//! environment has no network access, so these derives expand to
//! nothing instead of pulling in the real implementation.

use proc_macro::TokenStream;

/// No-op `Serialize` derive.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
