//! Offline stand-in for the subset of `rand` this workspace uses:
//! `StdRng::seed_from_u64` and `Rng::gen_range` over integer and
//! float ranges.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — not the
//! crates.io `StdRng` stream, but every consumer in this workspace
//! only requires *seeded determinism* (identical seeds must reproduce
//! identical workloads across runs and platforms), which this
//! provides.

use std::ops::{Range, RangeInclusive};

/// Core of the generator API: a source of uniform `u64`s.
pub trait RngCore {
    /// Next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// Sampling conveniences over any [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range` (half-open or inclusive integer
    /// ranges, half-open float ranges).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Seeding entry point (`StdRng::seed_from_u64`).
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A range that can produce uniform samples of `T`.
pub trait SampleRange<T> {
    /// Draw one uniform sample.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return lo + rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}
impl_int_ranges!(usize, u64, u32);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        // 53 uniform mantissa bits in [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + (self.end - self.start) * unit
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed into the full state.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(
                a.gen_range(0usize..=1000),
                b.gen_range(0usize..=1000)
            );
        }
        let mut c = StdRng::seed_from_u64(43);
        let same: Vec<usize> = (0..16).map(|_| c.gen_range(0usize..1000)).collect();
        let mut d = StdRng::seed_from_u64(42);
        let diff: Vec<usize> = (0..16).map(|_| d.gen_range(0usize..1000)).collect();
        assert_ne!(same, diff);
    }

    #[test]
    fn ranges_respected() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(10usize..=20);
            assert!((10..=20).contains(&v));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn floats_fill_the_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut lo_seen = false;
        let mut hi_seen = false;
        for _ in 0..10_000 {
            let f = rng.gen_range(0.0f64..1.0);
            lo_seen |= f < 0.1;
            hi_seen |= f > 0.9;
        }
        assert!(lo_seen && hi_seen, "uniform must cover both tails");
    }
}
