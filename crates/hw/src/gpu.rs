//! GPU device specifications (paper Table 1).

use crate::efficiency;
use crate::units::{ByteSize, GB_PER_S, GIB, TFLOPS};
use serde::{Deserialize, Serialize};

/// Performance-relevant specification of a single GPU.
///
/// Mirrors Table 1 of the paper. `peak_flops` is the fp16 dense
/// throughput (tensor cores); `hbm_bw` is datasheet memory bandwidth.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GpuSpec {
    /// Marketing name, e.g. `"A10"`.
    pub name: String,
    /// Total device memory in bytes.
    pub mem_bytes: u64,
    /// Datasheet HBM/GDDR bandwidth in bytes/second.
    pub hbm_bw: f64,
    /// Peak fp16 throughput in FLOP/second.
    pub peak_flops: f64,
    /// Whether this part has NVLink connectivity.
    pub has_nvlink: bool,
}

impl GpuSpec {
    /// NVIDIA A10: 24 GiB, 600 GB/s, 125 TFLOPS fp16, PCIe only.
    pub fn a10() -> Self {
        GpuSpec {
            name: "A10".to_string(),
            mem_bytes: 24 * GIB,
            hbm_bw: 600.0 * GB_PER_S,
            peak_flops: 125.0 * TFLOPS,
            has_nvlink: false,
        }
    }

    /// NVIDIA L4: 24 GiB, 300 GB/s, 121 TFLOPS fp16, PCIe only.
    pub fn l4() -> Self {
        GpuSpec {
            name: "L4".to_string(),
            mem_bytes: 24 * GIB,
            hbm_bw: 300.0 * GB_PER_S,
            peak_flops: 121.0 * TFLOPS,
            has_nvlink: false,
        }
    }

    /// NVIDIA A100 40 GiB SXM: 1555 GB/s, 312 TFLOPS fp16, NVLink.
    pub fn a100_40g_sxm() -> Self {
        GpuSpec {
            name: "A100-40G-SXM".to_string(),
            mem_bytes: 40 * GIB,
            hbm_bw: 1555.0 * GB_PER_S,
            peak_flops: 312.0 * TFLOPS,
            has_nvlink: true,
        }
    }

    /// NVIDIA A100 40 GiB PCIe: same silicon as SXM but PCIe-attached
    /// (paper §6.4 "A100 + PCIe").
    pub fn a100_40g_pcie() -> Self {
        GpuSpec {
            name: "A100-40G-PCIE".to_string(),
            mem_bytes: 40 * GIB,
            hbm_bw: 1555.0 * GB_PER_S,
            peak_flops: 312.0 * TFLOPS,
            has_nvlink: false,
        }
    }

    /// Look up a preset by (case-insensitive) name. Returns `None` for
    /// unknown names.
    pub fn by_name(name: &str) -> Option<Self> {
        match name.to_ascii_lowercase().as_str() {
            "a10" => Some(Self::a10()),
            "l4" => Some(Self::l4()),
            "a100" | "a100-sxm" | "a100-40g-sxm" => Some(Self::a100_40g_sxm()),
            "a100-pcie" | "a100-40g-pcie" => Some(Self::a100_40g_pcie()),
            _ => None,
        }
    }

    /// Device memory as a [`ByteSize`].
    pub fn mem(&self) -> ByteSize {
        ByteSize(self.mem_bytes)
    }

    /// Achievable fp16 GEMM throughput (FLOP/s) after MFU derating.
    pub fn effective_gemm_flops(&self) -> f64 {
        self.peak_flops * efficiency::MFU_GEMM
    }

    /// Achievable attention-kernel throughput (FLOP/s).
    pub fn effective_attn_flops(&self) -> f64 {
        self.peak_flops * efficiency::MFU_ATTENTION
    }

    /// Achievable HBM streaming bandwidth (bytes/s).
    pub fn effective_hbm_bw(&self) -> f64 {
        self.hbm_bw * efficiency::HBM_EFFICIENCY
    }

    /// Time to stream `bytes` from device memory to the compute units.
    pub fn hbm_time(&self, bytes: f64) -> f64 {
        bytes / self.effective_hbm_bw()
    }

    /// Time to execute `flops` floating-point operations in a dense
    /// GEMM.
    pub fn gemm_time(&self, flops: f64) -> f64 {
        flops / self.effective_gemm_flops()
    }

    /// Time to execute `flops` in an attention kernel.
    pub fn attn_time(&self, flops: f64) -> f64 {
        flops / self.effective_attn_flops()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_values() {
        let a10 = GpuSpec::a10();
        assert_eq!(a10.mem_bytes, 24 * GIB);
        assert!((a10.hbm_bw - 600e9).abs() < 1.0);
        assert!((a10.peak_flops - 125e12).abs() < 1.0);
        assert!(!a10.has_nvlink);

        let l4 = GpuSpec::l4();
        assert_eq!(l4.mem_bytes, 24 * GIB);
        assert!((l4.hbm_bw - 300e9).abs() < 1.0);
        assert!(!l4.has_nvlink);

        let a100 = GpuSpec::a100_40g_sxm();
        assert_eq!(a100.mem_bytes, 40 * GIB);
        assert!((a100.hbm_bw - 1555e9).abs() < 1.0);
        assert!(a100.has_nvlink);
    }

    #[test]
    fn lookup_by_name() {
        assert_eq!(GpuSpec::by_name("A10").unwrap().name, "A10");
        assert_eq!(GpuSpec::by_name("l4").unwrap().name, "L4");
        assert_eq!(GpuSpec::by_name("a100").unwrap().name, "A100-40G-SXM");
        assert_eq!(
            GpuSpec::by_name("a100-pcie").unwrap().name,
            "A100-40G-PCIE"
        );
        assert!(GpuSpec::by_name("h100").is_none());
    }

    #[test]
    fn derated_rates_are_below_peak() {
        let g = GpuSpec::a10();
        assert!(g.effective_gemm_flops() < g.peak_flops);
        assert!(g.effective_hbm_bw() < g.hbm_bw);
        assert!(g.effective_attn_flops() < g.effective_gemm_flops());
    }

    #[test]
    fn time_helpers_scale_linearly() {
        let g = GpuSpec::l4();
        let t1 = g.hbm_time(1e9);
        let t2 = g.hbm_time(2e9);
        assert!((t2 / t1 - 2.0).abs() < 1e-9);
        assert!(g.gemm_time(1e12) > 0.0);
    }

    #[test]
    fn a10_faster_than_l4_on_decode_streaming() {
        // The paper notes A10 has better single-GPU performance than L4
        // at similar PCIe bandwidth, which drives its larger speedups.
        let a10 = GpuSpec::a10();
        let l4 = GpuSpec::l4();
        assert!(a10.hbm_time(1e9) < l4.hbm_time(1e9));
    }
}
