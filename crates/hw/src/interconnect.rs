//! Inter-device fabric cost models.
//!
//! Two fabrics appear in the paper's evaluation:
//!
//! * **Host-bridged PCIe 4.0 x8** (A10/L4/A100-PCIe instances):
//!   16 GiB/s per direction per device, with every device-to-device hop
//!   staged through the root complex. Collective bandwidth *degrades*
//!   as ranks are added (paper §3.1, Observation 1).
//! * **NVLink switch** (A100 SXM): 600 GB/s per device, near-flat
//!   collective scaling.
//!
//! The all-reduce model is a ring: each rank sends and receives
//! `2·(n−1)/n · size` bytes, so the time is that volume divided by the
//! achievable per-rank bandwidth, plus a per-step latency term. On
//! PCIe the achievable bandwidth itself shrinks with rank count
//! (`1/(1+β·ln n)`), capturing the "more complex communication
//! schemes" the paper blames for falling all-reduce bandwidth.

use crate::efficiency as eff;
use crate::units::GIB;
use serde::{Deserialize, Serialize};

/// The kind of device-to-device fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum InterconnectKind {
    /// Devices hang off a PCIe root complex; no direct GPU-to-GPU
    /// links. This is the g5/g6 instance topology.
    PcieHostBridged,
    /// All devices attach to an NVLink switch (NVSwitch).
    NvLinkSwitch,
}

/// A fabric connecting the GPUs of one node, with its cost model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Interconnect {
    /// Fabric topology class.
    pub kind: InterconnectKind,
    /// Per-device, per-direction link bandwidth in bytes/s
    /// (16 GiB/s for PCIe 4.0 x8; 600 GB/s for NVLink).
    pub link_bw: f64,
    /// Multiplier on collective bandwidth, used by the Figure 14
    /// sensitivity sweep (×0.1 … ×50 of PCIe). 1.0 everywhere else.
    pub allreduce_scale: f64,
}

impl Interconnect {
    /// PCIe 4.0 x8 host-bridged fabric (16 GiB/s per direction).
    pub fn pcie_4_x8() -> Self {
        Interconnect {
            kind: InterconnectKind::PcieHostBridged,
            link_bw: 16.0 * GIB as f64,
            allreduce_scale: 1.0,
        }
    }

    /// NVLink switch fabric (600 GB/s per device).
    pub fn nvlink() -> Self {
        Interconnect {
            kind: InterconnectKind::NvLinkSwitch,
            link_bw: 600.0e9,
            allreduce_scale: 1.0,
        }
    }

    /// Return a copy whose collective bandwidth is scaled by `s`
    /// (Figure 14's bandwidth mutation).
    pub fn with_allreduce_scale(&self, s: f64) -> Self {
        assert!(s > 0.0, "bandwidth scale must be positive");
        Interconnect {
            allreduce_scale: s,
            ..self.clone()
        }
    }

    /// Per-collective-step latency for this fabric (seconds).
    pub fn step_latency(&self) -> f64 {
        match self.kind {
            InterconnectKind::PcieHostBridged => eff::COLLECTIVE_LATENCY_PCIE,
            InterconnectKind::NvLinkSwitch => eff::COLLECTIVE_LATENCY_NVLINK,
        }
    }

    /// Achievable per-rank bandwidth inside an `n`-rank collective
    /// (bytes/s), after algorithm efficiency, contention, and the
    /// sensitivity scale.
    pub fn collective_rank_bw(&self, n: usize) -> f64 {
        assert!(n >= 1);
        let base = match self.kind {
            InterconnectKind::PcieHostBridged => {
                let contention = 1.0 + eff::PCIE_CONTENTION_BETA * (n as f64).ln();
                self.link_bw * eff::ALLREDUCE_EFF_PCIE / contention
            }
            InterconnectKind::NvLinkSwitch => self.link_bw * eff::ALLREDUCE_EFF_NVLINK,
        };
        base * self.allreduce_scale
    }

    /// Time for a ring all-reduce of `bytes` across `n` ranks.
    ///
    /// Returns 0 for `n <= 1` (no communication needed).
    pub fn allreduce_time(&self, bytes: f64, n: usize) -> f64 {
        if n <= 1 {
            return 0.0;
        }
        let steps = 2 * (n - 1);
        let volume_per_rank = 2.0 * (n as f64 - 1.0) / n as f64 * bytes;
        volume_per_rank / self.collective_rank_bw(n) + steps as f64 * self.step_latency()
    }

    /// The paper's "all-reduce bandwidth" metric: tensor size divided
    /// by all-reduce runtime (bytes/s). Monotonically decreasing in
    /// `n` — asserted by tests, relied on by §3.1's argument.
    pub fn allreduce_bandwidth(&self, bytes: f64, n: usize) -> f64 {
        if n <= 1 {
            return f64::INFINITY;
        }
        bytes / self.allreduce_time(bytes, n)
    }

    /// Time for a point-to-point activation transfer of `bytes`
    /// between adjacent pipeline stages.
    pub fn p2p_time(&self, bytes: f64) -> f64 {
        let bw = match self.kind {
            InterconnectKind::PcieHostBridged => self.link_bw * eff::ALLREDUCE_EFF_PCIE,
            InterconnectKind::NvLinkSwitch => self.link_bw * eff::ALLREDUCE_EFF_NVLINK,
        };
        self.step_latency() + bytes / (bw * self.allreduce_scale)
    }
}

/// Host (CPU<->GPU) link: in every configuration the paper evaluates,
/// each GPU reaches host memory over PCIe 4.0 x8 at 16 GiB/s.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HostLink {
    /// Per-direction bandwidth in bytes/s.
    pub bw: f64,
}

impl HostLink {
    /// PCIe 4.0 x8 host link, 16 GiB/s per direction.
    pub fn pcie_4_x8() -> Self {
        HostLink {
            bw: 16.0 * GIB as f64,
        }
    }

    /// Time to copy `bytes` between GPU and *pinned* host memory.
    pub fn pinned_copy_time(&self, bytes: f64) -> f64 {
        bytes / (self.bw * eff::PCIE_H2D_PINNED_EFF)
    }

    /// Time to copy `bytes` between GPU and *pageable* host memory
    /// (e.g. OS shared memory directly, without staging).
    pub fn pageable_copy_time(&self, bytes: f64) -> f64 {
        bytes / (self.bw * eff::PCIE_PAGEABLE_EFF)
    }

    /// Time for the host-side memcpy between a pinned staging buffer
    /// and OS shared memory (second leg of Seesaw's two-stage path).
    pub fn staging_copy_time(&self, bytes: f64) -> f64 {
        bytes / eff::HOST_STAGING_BW
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allreduce_zero_for_single_rank() {
        let ic = Interconnect::pcie_4_x8();
        assert_eq!(ic.allreduce_time(1e9, 1), 0.0);
    }

    #[test]
    fn allreduce_bandwidth_decreases_with_ranks_on_pcie() {
        // Paper §3.1 Observation 1: Bar(TP) falls as TP grows.
        let ic = Interconnect::pcie_4_x8();
        let size = 64.0 * 1024.0 * 1024.0;
        let mut prev = f64::INFINITY;
        for n in [2usize, 4, 8] {
            let bw = ic.allreduce_bandwidth(size, n);
            assert!(bw < prev, "Bar should decrease: n={n} bw={bw} prev={prev}");
            prev = bw;
        }
    }

    #[test]
    fn nvlink_allreduce_much_faster_than_pcie() {
        let pcie = Interconnect::pcie_4_x8();
        let nvl = Interconnect::nvlink();
        let size = 128.0 * 1024.0 * 1024.0;
        let ratio = pcie.allreduce_time(size, 8) / nvl.allreduce_time(size, 8);
        assert!(
            ratio > 20.0,
            "NVLink should dominate PCIe for collectives, got ratio {ratio}"
        );
    }

    #[test]
    fn allreduce_time_monotone_in_size_and_ranks() {
        let ic = Interconnect::pcie_4_x8();
        assert!(ic.allreduce_time(2e8, 4) > ic.allreduce_time(1e8, 4));
        assert!(ic.allreduce_time(1e8, 8) > ic.allreduce_time(1e8, 2));
    }

    #[test]
    fn bandwidth_scale_shortens_allreduce() {
        let ic = Interconnect::pcie_4_x8();
        let fast = ic.with_allreduce_scale(10.0);
        let slow = ic.with_allreduce_scale(0.1);
        let t = ic.allreduce_time(1e8, 4);
        assert!(fast.allreduce_time(1e8, 4) < t);
        assert!(slow.allreduce_time(1e8, 4) > t);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_scale_rejected() {
        Interconnect::pcie_4_x8().with_allreduce_scale(0.0);
    }

    #[test]
    fn host_link_pinned_faster_than_pageable() {
        let hl = HostLink::pcie_4_x8();
        assert!(hl.pinned_copy_time(1e9) < hl.pageable_copy_time(1e9));
    }

    #[test]
    fn p2p_small_activation_is_cheap() {
        // PP passes only activations between stages; the paper calls
        // this negligible next to all-reduce. 8 KiB activation:
        let ic = Interconnect::pcie_4_x8();
        assert!(ic.p2p_time(8192.0) < 1e-3);
    }
}
