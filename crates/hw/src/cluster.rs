//! Node-level cluster specifications.

use crate::gpu::GpuSpec;
use crate::interconnect::{HostLink, Interconnect};
use crate::units::GIB;
use serde::{Deserialize, Serialize};

/// A homogeneous single-node GPU cluster, as used throughout the
/// paper's evaluation (4 or 8 identical GPUs plus host memory).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterSpec {
    /// Specification of each (identical) GPU.
    pub gpu: GpuSpec,
    /// Number of GPUs in the node.
    pub num_gpus: usize,
    /// Device-to-device fabric.
    pub interconnect: Interconnect,
    /// CPU<->GPU host link (PCIe in every evaluated system).
    pub host_link: HostLink,
    /// Host (CPU) memory available for KV-cache buffering, per GPU,
    /// in bytes. The paper allocates 80 GiB per GPU.
    pub cpu_mem_per_gpu: u64,
}

impl ClusterSpec {
    /// Build a cluster of `n` GPUs of the given spec, choosing the
    /// fabric from the GPU's NVLink capability and using the paper's
    /// 80 GiB/GPU CPU budget.
    pub fn new(gpu: GpuSpec, n: usize) -> Self {
        assert!(n >= 1, "cluster needs at least one GPU");
        let interconnect = if gpu.has_nvlink {
            Interconnect::nvlink()
        } else {
            Interconnect::pcie_4_x8()
        };
        ClusterSpec {
            gpu,
            num_gpus: n,
            interconnect,
            host_link: HostLink::pcie_4_x8(),
            cpu_mem_per_gpu: 80 * GIB,
        }
    }

    /// AWS `g5.48xlarge`-like node: 8× A10.
    pub fn a10x8() -> Self {
        Self::new(GpuSpec::a10(), 8)
    }

    /// 4× A10 (used for the 15B model and the Fig 12 breakdown).
    pub fn a10x4() -> Self {
        Self::new(GpuSpec::a10(), 4)
    }

    /// AWS `g6.48xlarge`-like node: 8× L4.
    pub fn l4x8() -> Self {
        Self::new(GpuSpec::l4(), 8)
    }

    /// 4× L4.
    pub fn l4x4() -> Self {
        Self::new(GpuSpec::l4(), 4)
    }

    /// GCP node: 8× A100-40G SXM with NVLink.
    pub fn a100x8_nvlink() -> Self {
        Self::new(GpuSpec::a100_40g_sxm(), 8)
    }

    /// 8× A100-40G PCIe (no NVLink).
    pub fn a100x8_pcie() -> Self {
        Self::new(GpuSpec::a100_40g_pcie(), 8)
    }

    /// Total device memory across the node, bytes.
    pub fn total_gpu_mem(&self) -> u64 {
        self.gpu.mem_bytes * self.num_gpus as u64
    }

    /// Total host KV-buffer budget across the node, bytes.
    pub fn total_cpu_mem(&self) -> u64 {
        self.cpu_mem_per_gpu * self.num_gpus as u64
    }

    /// A copy of this cluster restricted to `n` of its GPUs (used by
    /// the disaggregation analysis, which splits the node).
    pub fn subset(&self, n: usize) -> Self {
        assert!(n >= 1 && n <= self.num_gpus, "subset size out of range");
        ClusterSpec {
            num_gpus: n,
            ..self.clone()
        }
    }

    /// A copy with the collective bandwidth scaled (Figure 14 sweep).
    pub fn with_allreduce_scale(&self, s: f64) -> Self {
        ClusterSpec {
            interconnect: self.interconnect.with_allreduce_scale(s),
            ..self.clone()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interconnect::InterconnectKind;

    #[test]
    fn presets_have_expected_shape() {
        let c = ClusterSpec::a10x8();
        assert_eq!(c.num_gpus, 8);
        assert_eq!(c.interconnect.kind, InterconnectKind::PcieHostBridged);
        assert_eq!(c.cpu_mem_per_gpu, 80 * GIB);

        let c = ClusterSpec::a100x8_nvlink();
        assert_eq!(c.interconnect.kind, InterconnectKind::NvLinkSwitch);

        let c = ClusterSpec::a100x8_pcie();
        assert_eq!(c.interconnect.kind, InterconnectKind::PcieHostBridged);
        assert_eq!(c.gpu.mem_bytes, 40 * GIB);
    }

    #[test]
    fn totals() {
        let c = ClusterSpec::l4x4();
        assert_eq!(c.total_gpu_mem(), 4 * 24 * GIB);
        assert_eq!(c.total_cpu_mem(), 4 * 80 * GIB);
    }

    #[test]
    fn subset_keeps_fabric() {
        let c = ClusterSpec::a100x8_pcie();
        let half = c.subset(4);
        assert_eq!(half.num_gpus, 4);
        assert_eq!(half.interconnect, c.interconnect);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn oversized_subset_panics() {
        ClusterSpec::a10x4().subset(5);
    }
}
