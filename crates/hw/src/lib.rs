//! Hardware description layer for the Seesaw reproduction.
//!
//! This crate models the *performance-relevant* properties of the GPU
//! clusters used in the paper's evaluation (Table 1): per-GPU memory
//! capacity, HBM bandwidth, peak fp16 FLOPS, and the inter-device
//! fabric (PCIe 4.0 x8 host-bridged trees or NVLink switches).
//!
//! Nothing in this crate executes real kernels. Instead it provides the
//! *cost models* — how long a collective of `s` bytes across `n` ranks
//! takes, how long streaming `s` bytes from HBM takes — that the
//! discrete-event simulator (`seesaw-sim`) and the analytical roofline
//! model (`seesaw-roofline`) consume.
//!
//! # Calibration discipline
//!
//! All efficiency constants (MFU, achievable bandwidth fractions,
//! collective algorithm efficiency) live in [`efficiency`] and are set
//! **once**, globally. Experiments never tune them per-figure; this is
//! what keeps the reproduced figures honest.

pub mod cluster;
pub mod efficiency;
pub mod fxhash;
pub mod gpu;
pub mod interconnect;
pub mod units;

pub use cluster::ClusterSpec;
pub use fxhash::{FxBuildHasher, FxHasher};
pub use gpu::GpuSpec;
pub use interconnect::{HostLink, Interconnect, InterconnectKind};
pub use units::{ByteSize, GIB, MIB};
