//! Global calibration constants.
//!
//! Real GPUs never reach datasheet peaks. These factors map peak
//! numbers (Table 1 of the paper) onto achievable rates. They are the
//! *only* tunables in the whole reproduction and are fixed once,
//! globally — experiments must not override them per-figure.
//!
//! Values are chosen from well-known measurement folklore:
//! dense fp16 GEMM at inference batch sizes typically sustains 45–60%
//! of peak tensor-core throughput; HBM streaming reaches 80–90% of
//! datasheet bandwidth; NCCL ring all-reduce reaches ~70–80% of link
//! bandwidth on NVLink and substantially less on host-bridged PCIe
//! where every hop crosses the root complex.

/// Fraction of peak fp16 FLOPS sustained by large GEMMs (prefill-like,
/// compute-bound work).
pub const MFU_GEMM: f64 = 0.55;

/// Fraction of peak fp16 FLOPS sustained by attention-score kernels
/// (less regular than dense GEMM).
pub const MFU_ATTENTION: f64 = 0.40;

/// Fraction of datasheet HBM bandwidth achieved when streaming weight
/// matrices during decode.
pub const HBM_EFFICIENCY: f64 = 0.85;

/// Fraction of datasheet link bandwidth achieved by ring all-reduce on
/// an NVLink switch fabric.
pub const ALLREDUCE_EFF_NVLINK: f64 = 0.75;

/// Fraction of datasheet link bandwidth achieved by ring all-reduce on
/// a host-bridged PCIe tree. Much lower: every ring hop is a
/// device-to-device copy staged through the root complex.
pub const ALLREDUCE_EFF_PCIE: f64 = 0.55;

/// Additional per-rank contention growth for PCIe collectives. The
/// paper (§3.1) observes that "all-reduce bandwidth decreases as the
/// number of GPUs grows, due to more complex communication schemes";
/// we model effective bandwidth as `base / (1 + PCIE_CONTENTION_BETA *
/// ln(n))`.
pub const PCIE_CONTENTION_BETA: f64 = 0.45;

/// Per-hop latency of a collective step on PCIe (seconds). Dominated
/// by kernel launch + DMA setup.
pub const COLLECTIVE_LATENCY_PCIE: f64 = 20e-6;

/// Per-hop latency of a collective step on NVLink (seconds).
pub const COLLECTIVE_LATENCY_NVLINK: f64 = 5e-6;

/// Fraction of PCIe host-link bandwidth achieved for pinned-memory
/// GPU<->CPU copies (cudaMemcpyAsync on pinned buffers).
pub const PCIE_H2D_PINNED_EFF: f64 = 0.90;

/// Fraction of PCIe host-link bandwidth achieved for pageable
/// (non-pinned) GPU<->CPU copies. The paper's §5.2 notes shared memory
/// cannot be pinned, motivating the two-stage staging path.
pub const PCIE_PAGEABLE_EFF: f64 = 0.40;

/// Bandwidth of the host-side copy between pinned staging buffers and
/// OS shared memory (bytes/s). This is a memcpy over host DRAM; a
/// single core sustains ~10 GB/s, and Seesaw's staging thread is one
/// core per worker.
pub const HOST_STAGING_BW: f64 = 10e9;

/// Fixed per-transition cost of tearing down / re-establishing
/// communicators and reconfiguring worker process groups when the
/// parallel layout changes (seconds). Independent of data volume.
pub const RESHARD_FIXED_OVERHEAD_S: f64 = 0.15;

/// Per-forward-pass CPU-side scheduling overhead (batch formation,
/// Python-equivalent driver work), seconds. Applied once per engine
/// step in the simulator.
pub const STEP_SCHED_OVERHEAD_S: f64 = 1.0e-3;

/// Efficiency multiplier applied to KV-cache transfers stored in the
/// NHD layout when the transfer is sharded along the head dimension
/// (non-contiguous strided access; §5.2 "bandwidth-aware KV cache
/// layout"). HND transfers are contiguous and pay no penalty.
pub const NHD_SHARDED_TRANSFER_EFF: f64 = 0.35;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn efficiencies_are_fractions() {
        for &e in &[
            MFU_GEMM,
            MFU_ATTENTION,
            HBM_EFFICIENCY,
            ALLREDUCE_EFF_NVLINK,
            ALLREDUCE_EFF_PCIE,
            PCIE_H2D_PINNED_EFF,
            PCIE_PAGEABLE_EFF,
            NHD_SHARDED_TRANSFER_EFF,
        ] {
            assert!(e > 0.0 && e <= 1.0, "efficiency {e} outside (0,1]");
        }
    }

    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn pinned_beats_pageable() {
        assert!(PCIE_H2D_PINNED_EFF > PCIE_PAGEABLE_EFF);
    }

    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn nvlink_collectives_beat_pcie() {
        assert!(ALLREDUCE_EFF_NVLINK > ALLREDUCE_EFF_PCIE);
        assert!(COLLECTIVE_LATENCY_NVLINK < COLLECTIVE_LATENCY_PCIE);
    }
}
