//! FNV/FxHash-style multiplicative hasher shared by the workspace's
//! hot-path integer-keyed maps (the roofline cost cache, the paged KV
//! sequence map) — much cheaper than SipHash for small exact keys.
//!
//! Only use it where map iteration order cannot leak into user-visible
//! output: the hasher is not DoS-resistant and its order is arbitrary.

use std::hash::{BuildHasherDefault, Hasher};

/// `BuildHasher` for [`FxHasher`]-keyed maps.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// The multiplicative hasher. Construct via `FxBuildHasher`.
#[derive(Debug, Default)]
pub struct FxHasher {
    hash: u64,
}

const FX_SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl Hasher for FxHasher {
    fn finish(&self) -> u64 {
        self.hash
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.write_u64(b as u64);
        }
    }

    fn write_u64(&mut self, v: u64) {
        self.hash = (self.hash.rotate_left(5) ^ v).wrapping_mul(FX_SEED);
    }

    fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    fn write_u8(&mut self, v: u8) {
        self.write_u64(v as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn hashes_are_deterministic_and_spread() {
        let h = |v: u64| {
            let mut hasher = FxHasher::default();
            hasher.write_u64(v);
            hasher.finish()
        };
        assert_eq!(h(42), h(42));
        assert_ne!(h(1), h(2));
        let mut m: HashMap<u64, u64, FxBuildHasher> = HashMap::default();
        for i in 0..1000 {
            m.insert(i, i * 2);
        }
        assert_eq!(m.get(&500), Some(&1000));
    }
}
