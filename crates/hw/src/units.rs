//! Byte-size and bandwidth unit helpers.
//!
//! All byte quantities in the workspace are `u64` bytes; all times are
//! `f64` seconds; all bandwidths are `f64` bytes/second; all compute
//! rates are `f64` FLOP/second. These helpers exist so call sites read
//! like the paper ("24 GiB", "16 GiB/s") instead of raw exponents.

use serde::{Deserialize, Serialize};
use std::fmt;

/// One kibibyte (2^10 bytes).
pub const KIB: u64 = 1024;
/// One mebibyte (2^20 bytes).
pub const MIB: u64 = 1024 * KIB;
/// One gibibyte (2^30 bytes).
pub const GIB: u64 = 1024 * MIB;

/// One gigabyte per second, expressed in bytes/second (decimal, as
/// vendor datasheets quote memory bandwidth).
pub const GB_PER_S: f64 = 1e9;

/// One teraFLOP per second.
pub const TFLOPS: f64 = 1e12;

/// A byte count with human-readable `Display`, used in reports and
/// experiment output tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ByteSize(pub u64);

impl ByteSize {
    /// Construct from a number of gibibytes.
    pub const fn gib(n: u64) -> Self {
        ByteSize(n * GIB)
    }

    /// Construct from a number of mebibytes.
    pub const fn mib(n: u64) -> Self {
        ByteSize(n * MIB)
    }

    /// The raw byte count.
    pub const fn bytes(self) -> u64 {
        self.0
    }

    /// The size as a floating-point number of gibibytes.
    pub fn as_gib(self) -> f64 {
        self.0 as f64 / GIB as f64
    }
}

impl fmt::Display for ByteSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = self.0;
        if b >= GIB {
            write!(f, "{:.2} GiB", b as f64 / GIB as f64)
        } else if b >= MIB {
            write!(f, "{:.2} MiB", b as f64 / MIB as f64)
        } else if b >= KIB {
            write!(f, "{:.2} KiB", b as f64 / KIB as f64)
        } else {
            write!(f, "{b} B")
        }
    }
}

impl From<u64> for ByteSize {
    fn from(b: u64) -> Self {
        ByteSize(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_constants_are_consistent() {
        assert_eq!(GIB, 1024 * 1024 * 1024);
        assert_eq!(MIB * 1024, GIB);
        assert_eq!(KIB * 1024, MIB);
    }

    #[test]
    fn bytesize_constructors() {
        assert_eq!(ByteSize::gib(24).bytes(), 24 * GIB);
        assert_eq!(ByteSize::mib(512).bytes(), 512 * MIB);
        assert!((ByteSize::gib(40).as_gib() - 40.0).abs() < 1e-12);
    }

    #[test]
    fn bytesize_display_picks_unit() {
        assert_eq!(ByteSize(512).to_string(), "512 B");
        assert_eq!(ByteSize(2 * KIB).to_string(), "2.00 KiB");
        assert_eq!(ByteSize(3 * MIB).to_string(), "3.00 MiB");
        assert_eq!(ByteSize(24 * GIB).to_string(), "24.00 GiB");
    }

    #[test]
    fn bytesize_ordering() {
        assert!(ByteSize::gib(1) < ByteSize::gib(2));
        assert_eq!(ByteSize::from(GIB), ByteSize::gib(1));
    }
}
