//! Property tests for the fabric cost models.

use proptest::prelude::*;
use seesaw_hw::{HostLink, Interconnect};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// All-reduce time is monotone in message size.
    #[test]
    fn allreduce_monotone_in_size(a in 1.0f64..1e9, b in 1.0f64..1e9, n in 2usize..16) {
        let ic = Interconnect::pcie_4_x8();
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(ic.allreduce_time(lo, n) <= ic.allreduce_time(hi, n) + 1e-15);
    }

    /// The paper's Bar(TP) metric decreases as ranks are added on
    /// PCIe, for any message size.
    #[test]
    fn pcie_allreduce_bandwidth_decreases(size in 1e3f64..1e9) {
        let ic = Interconnect::pcie_4_x8();
        let mut prev = f64::INFINITY;
        for n in [2usize, 4, 8, 16] {
            let bw = ic.allreduce_bandwidth(size, n);
            prop_assert!(bw < prev);
            prev = bw;
        }
    }

    /// Scaling collective bandwidth by k divides the volume term: time
    /// at scale k is between time/k and time (latency not scaled).
    #[test]
    fn bandwidth_scaling_bounds(size in 1e4f64..1e9, k in 1.0f64..64.0, n in 2usize..9) {
        let base = Interconnect::pcie_4_x8();
        let fast = base.with_allreduce_scale(k);
        let t0 = base.allreduce_time(size, n);
        let t1 = fast.allreduce_time(size, n);
        prop_assert!(t1 <= t0 + 1e-15);
        prop_assert!(t1 >= t0 / k - 1e-12);
    }

    /// Host-link copies: pinned is never slower than pageable, and
    /// both scale linearly.
    #[test]
    fn host_link_ordering(bytes in 1.0f64..1e10) {
        let hl = HostLink::pcie_4_x8();
        prop_assert!(hl.pinned_copy_time(bytes) <= hl.pageable_copy_time(bytes));
        let t1 = hl.pinned_copy_time(bytes);
        let t2 = hl.pinned_copy_time(2.0 * bytes);
        prop_assert!((t2 - 2.0 * t1).abs() < 1e-9 * t1.max(1e-12) + 1e-15);
    }

    /// NVLink beats PCIe for any collective.
    #[test]
    fn nvlink_dominates_pcie(size in 1e3f64..1e9, n in 2usize..9) {
        let pcie = Interconnect::pcie_4_x8();
        let nvl = Interconnect::nvlink();
        prop_assert!(nvl.allreduce_time(size, n) < pcie.allreduce_time(size, n));
    }
}
