//! Chaos-tier integration invariants: the empty plan nests the
//! autoscale tier byte-for-byte, grids are `--jobs`-invariant, every
//! request reconciles (nothing silently dropped), and recovery
//! postures order the way operations intuition says they must.

use proptest::prelude::*;
use seesaw_autoscale::{
    AutoscaleConfig, AutoscaleController, RetryPolicy, ScalingPolicy,
};
use seesaw_chaos::{chaos_sweep_with, ChaosController, FaultPlan, RecoverySpec};
use seesaw_engine::vllm::VllmEngine;
use seesaw_engine::{OnlineEngine, SchedulingPolicy, SweepRunner};
use seesaw_fleet::RouterPolicy;
use seesaw_hw::ClusterSpec;
use seesaw_model::presets;
use seesaw_parallel::ParallelConfig;
use seesaw_workload::{ArrivalDist, Request, SloSpec, WorkloadGen};
use std::sync::Arc;

fn builder() -> impl Fn(usize) -> Box<dyn OnlineEngine> + Sync {
    let cluster = Arc::new(ClusterSpec::a10x4());
    let model = Arc::new(presets::llama2_13b());
    move |_| {
        Box::new(
            VllmEngine::new(
                Arc::clone(&cluster),
                Arc::clone(&model),
                ParallelConfig::new(1, 2, 2),
                SchedulingPolicy::PrefillPrioritized,
            )
            .expect("valid config"),
        )
    }
}

fn cfg(router: RouterPolicy) -> AutoscaleConfig {
    AutoscaleConfig {
        window_s: 5.0,
        warmup_s: 4.0,
        min_replicas: 1,
        max_replicas: 6,
        router,
        slo: SloSpec { ttft_s: 15.0, tpot_s: 0.05 },
        capacity_rps: 2.5,
    }
}

fn traced(n: usize, rate: f64, seed: u64) -> Vec<Request> {
    let base = WorkloadGen::constant(512, 32).generate(n);
    ArrivalDist::Poisson { rate }
        .attach(&base, seed)
        .expect("valid arrivals")
}

/// A plan dense enough to reliably strike a short test trace.
fn dense_kills(seed: u64) -> FaultPlan {
    FaultPlan {
        seed,
        kills_per_hour: 240.0,
        outages_per_hour: 0.0,
        groups: 1,
        detect_s: 2.0,
    }
}

#[test]
fn empty_plan_reproduces_the_autoscale_run_byte_for_byte() {
    let build = builder();
    let reqs = traced(50, 2.5, 21);
    for policy in [ScalingPolicy::Static { n: 2 }, ScalingPolicy::reactive_default()] {
        let config = cfg(RouterPolicy::JoinShortestQueue);
        let chaos = ChaosController::new(
            config,
            FaultPlan::none(),
            RecoverySpec { policy, replace_failures: false, retry: RetryPolicy::default() },
        );
        let faulted = chaos.run_with(&SweepRunner::serial(), &build, &reqs);
        let plain = AutoscaleController::new(config, policy)
            .run_with(&SweepRunner::serial(), &build, &reqs);
        assert_eq!(faulted, plain, "{policy}: empty plan must nest the autoscale tier");
    }
}

#[test]
fn chaos_grid_is_jobs_invariant() {
    let build = builder();
    let reqs = traced(50, 2.5, 23);
    let faults = vec![
        ("none".to_string(), FaultPlan::none()),
        ("kills".to_string(), dense_kills(5)),
    ];
    let recoveries = [
        RecoverySpec::bare_static(2),
        RecoverySpec::healing(ScalingPolicy::reactive_default()),
    ];
    let run = |runner: &SweepRunner| {
        chaos_sweep_with(
            runner,
            &build,
            cfg(RouterPolicy::JoinShortestQueue),
            &faults,
            &recoveries,
            ("test", &reqs),
            (2.5, "T2P2"),
        )
    };
    let serial = run(&SweepRunner::serial());
    let parallel = run(&SweepRunner::new(4));
    assert_eq!(serial, parallel, "chaos grid must be byte-identical across --jobs");
    assert_eq!(serial.points.len(), 4);
    assert_eq!(serial.faults, vec!["none", "kills"]);
    assert_eq!(serial.recoveries, vec!["static-2", "reactive+replace"]);
    // Row-major: the first two cells are fault-free.
    assert_eq!(serial.points[0].fault, "none");
    assert_eq!(serial.points[1].fault, "none");
    // Every cell reconciles: nothing silently dropped.
    for p in &serial.points {
        assert_eq!(
            p.completed + p.failed,
            p.n_requests,
            "{}/{}: completed + failed must equal offered",
            p.fault,
            p.recovery
        );
        assert!(p.retry_amplification >= 1.0);
    }
    // Fault-free cells show clean availability accounting.
    let clean = serial.point("none", "static-2").expect("cell exists");
    assert_eq!(clean.failed, 0);
    assert_eq!(clean.retries, 0);
    assert_eq!(clean.replicas_killed, 0);
    assert_eq!(clean.unavailability_s, 0.0);
}

#[test]
fn replacement_recovers_attainment_a_bare_fleet_loses() {
    let build = builder();
    let reqs = traced(70, 2.0, 29);
    let config = cfg(RouterPolicy::JoinShortestQueue);
    // A full-fleet outage early in the day.
    let outage = FaultPlan {
        seed: 2,
        kills_per_hour: 0.0,
        outages_per_hour: 150.0,
        groups: 1,
        detect_s: 2.0,
    };
    let baseline = ChaosController::new(
        config,
        FaultPlan::none(),
        RecoverySpec::bare_static(2),
    )
    .run_with(&SweepRunner::serial(), &build, &reqs);
    let healed = ChaosController::new(
        config,
        outage,
        RecoverySpec::healing(ScalingPolicy::Static { n: 2 }),
    )
    .run_with(&SweepRunner::serial(), &build, &reqs);
    let bare = ChaosController::new(config, outage, RecoverySpec::bare_static(2))
        .run_with(&SweepRunner::serial(), &build, &reqs);
    assert!(baseline.availability.failed == 0);
    assert_eq!(healed.availability.completed + healed.availability.failed, reqs.len());
    assert_eq!(bare.availability.completed + bare.availability.failed, reqs.len());
    assert!(
        bare.availability.failed > 0,
        "an unhealed full outage must fail requests"
    );
    assert!(
        healed.attainment() > bare.attainment(),
        "replacement must beat the bare fleet: {} vs {}",
        healed.attainment(),
        bare.attainment()
    );
    assert!(
        bare.availability.unavailability_s > healed.availability.unavailability_s,
        "the bare fleet stays dark longer"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Under arbitrary seeded kill schedules and every router policy,
    /// a chaos replay completes without tripping any ordering or
    /// conservation guard: requeued streams stay arrival-sorted (the
    /// engines' `assert_arrivals_sorted` would panic otherwise), and
    /// `completed + failed == offered` reconciles exactly.
    #[test]
    fn random_kill_schedules_conserve_requests_on_every_router(
        fault_seed in 0u64..1000,
        trace_seed in 0u64..100,
        kills_per_hour in 30.0f64..400.0,
        groups in 1usize..4,
        outages in 0usize..2,
        router_idx in 0usize..4,
    ) {
        let build = builder();
        let routers = RouterPolicy::all_default();
        let router = routers[router_idx % routers.len()];
        let reqs = traced(30, 2.0, trace_seed);
        let plan = FaultPlan {
            seed: fault_seed,
            kills_per_hour,
            outages_per_hour: if outages == 1 { kills_per_hour / 4.0 } else { 0.0 },
            groups,
            detect_s: 1.5,
        };
        let report = ChaosController::new(
            cfg(router),
            plan,
            RecoverySpec::healing(ScalingPolicy::reactive_default()),
        )
        .run_with(&SweepRunner::serial(), &build, &reqs);
        let a = &report.availability;
        prop_assert_eq!(a.offered, 30);
        prop_assert_eq!(a.completed + a.failed, a.offered);
        prop_assert_eq!(a.attempts, a.completed + a.lost_attempts);
        prop_assert_eq!(a.completed, report.fleet.timeline.len());
        prop_assert_eq!(a.replicas_killed, report.failures.len());
        // Each surviving request appears exactly once, id-sorted.
        let ids: Vec<u64> = report.fleet.timeline.iter().map(|t| t.id).collect();
        prop_assert!(ids.windows(2).all(|w| w[0] < w[1]));
        // Capacity accounting covers every window.
        prop_assert_eq!(a.window_capacity_s.len(), report.windows.len());
        prop_assert!(a.unavailability_s >= 0.0);
        prop_assert!(report.attainment().is_finite());
    }
}

/// The instrumented chaos entry point is a passthrough: with the
/// instrument off it reproduces `run_with` byte-for-byte, and with
/// tracing on it records the injected kills without perturbing the
/// report.
#[test]
fn instrumented_chaos_run_records_kills_without_perturbing() {
    let build = builder();
    let reqs = traced(50, 2.5, 31);
    let chaos = ChaosController::new(
        cfg(RouterPolicy::JoinShortestQueue),
        dense_kills(5),
        RecoverySpec::healing(ScalingPolicy::reactive_default()),
    );
    let plain = chaos.run_with(&SweepRunner::serial(), &build, &reqs);

    let mut off = seesaw_telemetry::Instrument::off();
    let quiet = chaos.run_instrumented_with(&SweepRunner::serial(), &build, &reqs, &mut off);
    assert_eq!(plain, quiet, "off instrument must not perturb the chaos run");
    assert!(off.recorder.spans().is_empty() && off.metrics.is_empty());

    let mut instr = seesaw_telemetry::Instrument::tracing();
    let traced = chaos.run_instrumented_with(&SweepRunner::serial(), &build, &reqs, &mut instr);
    assert_eq!(plain, traced, "telemetry must not perturb the chaos run");
    assert!(plain.availability.replicas_killed > 0, "plan must strike the trace");
    let trace = seesaw_telemetry::perfetto::render(&instr.recorder, "chaos");
    assert!(trace.contains("\"kill r"), "kill markers recorded");
    assert!(trace.contains("window 0"), "window spans recorded");
    assert_eq!(
        instr.metrics.counter("autoscale.kills"),
        plain.availability.replicas_killed as u64
    );
}
