//! The failure-model × recovery-posture frontier sweep: the
//! cost-vs-SLO-vs-availability surface the chaos tier exists to
//! produce (the `chaos` bin).
//!
//! Cells are independent [`ChaosController`] replays over one fixed
//! trace, collected in row-major fault × recovery order on a
//! [`SweepRunner`]. Each cell's causal trajectory (fault resolution,
//! routing, requeue decisions) is serial and deterministic; only the
//! final per-replica engine simulations parallelize — so the grid is
//! byte-identical for every `--jobs` value.

use crate::controller::{ChaosController, RecoverySpec};
use crate::plan::FaultPlan;
use seesaw_autoscale::{score_detection, AutoscaleConfig, DetectionScore, ElasticFleetReport};
use seesaw_engine::SweepRunner;
use seesaw_fleet::sweep::ReplicaBuilder;
use seesaw_workload::Request;
use serde::{Deserialize, Serialize};

/// One frontier cell: a recovery posture replayed under a failure
/// model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChaosPoint {
    /// Failure-model name (e.g. `"none"`, `"kills-8/day"`).
    pub fault: String,
    /// The seeded plan behind it — with `plan.seed` and the rates,
    /// this cell is reproducible from its JSON line alone.
    pub plan: FaultPlan,
    /// Recovery-posture name (e.g. `"reactive+replace"`).
    pub recovery: String,
    /// Requests in the trace.
    pub n_requests: usize,
    /// SLO attainment over *offered* requests (failed ones count
    /// against it).
    pub attainment: f64,
    /// SLO-meeting requests per second over the fleet makespan.
    pub goodput_rps: f64,
    /// Billed replica-seconds — the cost axis.
    pub replica_seconds: f64,
    /// Time-averaged replica count over the horizon.
    pub mean_replicas: f64,
    /// Most replicas ever live at once.
    pub peak_replicas: usize,
    /// Requests that completed (possibly after retries).
    pub completed: usize,
    /// Requests that exhausted retries or deadline.
    pub failed: usize,
    /// Dispatch attempts lost to failures.
    pub lost_attempts: usize,
    /// Retry attempts dispatched.
    pub retries: usize,
    /// Replica kills that struck a live replica.
    pub replicas_killed: usize,
    /// Offered-load amplification from retries (`attempts/offered`).
    pub retry_amplification: f64,
    /// Seconds with zero accepting replicas — the availability axis.
    pub unavailability_s: f64,
    /// The controller's burn-rate alert stream scored against this
    /// cell's injected correlated outages — the detection-frontier
    /// cell (on the `"none"` fault row, `false_fires` is the rule's
    /// false-positive count on a fault-free day).
    pub detection: DetectionScore,
    /// The full fault-injected run behind the numbers.
    pub report: ElasticFleetReport,
}

/// A completed fault × recovery frontier over one trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChaosFrontier {
    /// Replica configuration label (replica 0's).
    pub label: String,
    /// Single-replica offline capacity the scenario was sized
    /// against, requests/second.
    pub capacity_rps: f64,
    /// Controller configuration shared by every cell.
    pub config: AutoscaleConfig,
    /// Trace name.
    pub trace: String,
    /// Failure-model names, in row order.
    pub faults: Vec<String>,
    /// Recovery-posture names, in column order.
    pub recoveries: Vec<String>,
    /// Display name of the burn-rate rule every cell's detection was
    /// scored under.
    pub alert_rule: String,
    /// Cells in row-major faults × recoveries order.
    pub points: Vec<ChaosPoint>,
}

impl ChaosFrontier {
    /// The cell for (`fault`, `recovery` display name), if swept.
    pub fn point(&self, fault: &str, recovery: &str) -> Option<&ChaosPoint> {
        self.points
            .iter()
            .find(|p| p.fault == fault && p.recovery == recovery)
    }
}

/// Run the fault × recovery grid over one trace. Each cell builds its
/// own schedule from its plan (seeded, deterministic) and replays the
/// full controller; cells parallelize on the runner and collect in
/// grid order.
pub fn chaos_sweep_with(
    runner: &SweepRunner,
    build: ReplicaBuilder,
    config: AutoscaleConfig,
    faults: &[(String, FaultPlan)],
    recoveries: &[RecoverySpec],
    (trace_name, requests): (&str, &[Request]),
    (capacity_rps, label): (f64, &str),
) -> ChaosFrontier {
    assert!(!faults.is_empty(), "chaos sweep needs failure models");
    assert!(!recoveries.is_empty(), "chaos sweep needs recovery postures");
    let cells: Vec<(usize, usize)> = (0..faults.len())
        .flat_map(|f| (0..recoveries.len()).map(move |r| (f, r)))
        .collect();
    let points = runner.map(&cells, |&(f, r)| {
        let (fault_name, plan) = &faults[f];
        let controller = ChaosController::new(config, *plan, recoveries[r]);
        let report = controller.run_with(runner, build, requests);
        let detection = score_detection(&report.alerts, &controller.schedule_for(requests));
        let a = &report.availability;
        ChaosPoint {
            fault: fault_name.clone(),
            plan: *plan,
            recovery: recoveries[r].to_string(),
            n_requests: requests.len(),
            attainment: report.attainment(),
            goodput_rps: report.goodput_rps(),
            replica_seconds: report.replica_seconds,
            mean_replicas: report.mean_replicas(),
            peak_replicas: report.peak_replicas,
            completed: a.completed,
            failed: a.failed,
            lost_attempts: a.lost_attempts,
            retries: a.retries,
            replicas_killed: a.replicas_killed,
            retry_amplification: a.retry_amplification(),
            unavailability_s: a.unavailability_s,
            detection,
            report,
        }
    });
    ChaosFrontier {
        label: label.into(),
        capacity_rps,
        config,
        trace: trace_name.into(),
        faults: faults.iter().map(|(n, _)| n.clone()).collect(),
        recoveries: recoveries.iter().map(RecoverySpec::to_string).collect(),
        alert_rule: seesaw_autoscale::AlertRule::default().to_string(),
        points,
    }
}
