//! Chaos tier: seeded failure injection over the elastic fleet.
//!
//! The autoscale tier answers "what does a scaling policy cost on a
//! clean day?"; this crate asks the question an SRE actually signs
//! off on: **what happens when replicas die mid-day — how much SLO
//! and availability does each recovery posture buy, and at what
//! cost?** It is the robustness level of the same first-principles
//! methodology — model the failure process, then sweep the policy
//! space:
//!
//! * [`FaultPlan`] is the seeded failure model: independent replica
//!   kills and correlated rack/zone group outages as Poisson
//!   processes. All randomness is spent at schedule-build time
//!   (victim picks and outage groups are pre-drawn into the events),
//!   so the replay consumes a fully resolved, serializable
//!   [`seesaw_autoscale::FaultSchedule`] with no RNG on the causal
//!   path — byte-identical across `--jobs`.
//! * [`RecoverySpec`] is the deployment's posture: a scaling policy,
//!   whether killed capacity is replaced (paying the usual warm-up),
//!   and the [`seesaw_autoscale::RetryPolicy`] lost requests follow
//!   (detection delay, exponential backoff, attempt budget,
//!   deadline). Exhausted requests are counted failed — never
//!   silently dropped: `completed + failed == offered` always holds.
//! * [`ChaosController`] composes the two over the autoscale replay;
//!   with an empty plan it reproduces the plain autoscale run
//!   byte-for-byte (one code path — `run_with` *is*
//!   `run_faulted_with` with an empty schedule).
//! * [`chaos_sweep_with`] runs failure-model × recovery grids into
//!   the cost-vs-SLO-vs-availability frontier (the `chaos` bin).

pub mod controller;
pub mod plan;
pub mod sweep;

pub use controller::{ChaosController, RecoverySpec};
pub use plan::FaultPlan;
pub use sweep::{chaos_sweep_with, ChaosFrontier, ChaosPoint};
