//! Seeded fault-plan generation: rates in, a resolved
//! [`FaultSchedule`] out.
//!
//! All of the chaos tier's randomness lives here, at *schedule
//! build* time. Independent kills and correlated group outages are
//! each a homogeneous Poisson process (exponential gaps hand-rolled
//! from a seeded [`StdRng`]); every per-event decision the replay
//! will need — which replica dies, which group goes dark — is drawn
//! now and embedded in the event, so consuming the schedule is
//! RNG-free and the controller's causal trajectory stays serial and
//! `--jobs`-invariant. The two processes use independent salted
//! streams, so changing the kill rate never reshuffles the outage
//! times.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use seesaw_autoscale::{FaultEvent, FaultKind, FaultSchedule, RetryPolicy};
use serde::{Deserialize, Serialize};

/// Salt separating the kill stream from other draws on the same seed.
const KILL_SALT: u64 = 0x6b69_6c6c_0000_0001;
/// Salt separating the outage stream.
const OUTAGE_SALT: u64 = 0x6f75_7461_0000_0002;

/// A seeded, serializable failure model: everything needed to
/// regenerate the exact [`FaultSchedule`] for any horizon. This is
/// the reproducibility unit the `chaos` bin echoes into its JSON —
/// a frontier point is replayable from these five numbers alone.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Seed for both event streams (each salted independently).
    pub seed: u64,
    /// Independent replica kills per hour (Poisson rate).
    pub kills_per_hour: f64,
    /// Correlated group outages per hour (Poisson rate).
    pub outages_per_hour: f64,
    /// Rack/zone groups replica indices stripe across (≥ 1).
    pub groups: usize,
    /// Failure-detection delay before lost work requeues, seconds.
    pub detect_s: f64,
}

impl FaultPlan {
    /// The empty plan: no failures ever. Scheduling it yields
    /// [`FaultSchedule::none`]-shaped output, so a chaos run under it
    /// is byte-identical to the plain autoscale run.
    pub fn none() -> Self {
        FaultPlan {
            seed: 0,
            kills_per_hour: 0.0,
            outages_per_hour: 0.0,
            groups: 1,
            detect_s: 0.0,
        }
    }

    /// Whether the plan can never produce an event.
    pub fn is_empty(&self) -> bool {
        self.kills_per_hour <= 0.0 && self.outages_per_hour <= 0.0
    }

    /// Validate the plan's knobs.
    pub fn validate(&self) -> Result<(), String> {
        for (name, v) in [
            ("kills_per_hour", self.kills_per_hour),
            ("outages_per_hour", self.outages_per_hour),
            ("detect_s", self.detect_s),
        ] {
            if !(v.is_finite() && v >= 0.0) {
                return Err(format!("{name} must be finite and >= 0, got {v}"));
            }
        }
        if self.groups == 0 {
            return Err("fault groups must be at least 1".into());
        }
        Ok(())
    }

    /// Resolve the plan into a concrete schedule over `[0,
    /// horizon_s)`, attaching the recovery knobs the replay needs.
    /// Deterministic in (plan, horizon): same inputs, same bytes.
    pub fn schedule(
        &self,
        horizon_s: f64,
        retry: RetryPolicy,
        replace_failures: bool,
    ) -> FaultSchedule {
        self.validate().unwrap_or_else(|e| panic!("invalid fault plan: {e}"));
        assert!(
            horizon_s.is_finite() && horizon_s >= 0.0,
            "fault horizon must be finite and >= 0, got {horizon_s}"
        );
        let mut events: Vec<FaultEvent> = Vec::new();
        if self.kills_per_hour > 0.0 {
            let mut rng = StdRng::seed_from_u64(self.seed ^ KILL_SALT);
            poisson_events(&mut rng, self.kills_per_hour, horizon_s, &mut events, |rng| {
                FaultKind::KillReplica { pick: rng.gen_range(0u64..u64::MAX) }
            });
        }
        if self.outages_per_hour > 0.0 {
            let mut rng = StdRng::seed_from_u64(self.seed ^ OUTAGE_SALT);
            poisson_events(&mut rng, self.outages_per_hour, horizon_s, &mut events, |rng| {
                FaultKind::GroupOutage { group: rng.gen_range(0..self.groups) }
            });
        }
        // Stable by construction order: a kill and an outage at the
        // same instant keep kills first, deterministically.
        events.sort_by(|a, b| a.t_s.total_cmp(&b.t_s));
        let schedule = FaultSchedule {
            events,
            groups: self.groups,
            detect_s: self.detect_s,
            retry,
            replace_failures,
        };
        schedule
            .validate()
            .unwrap_or_else(|e| panic!("generated schedule must validate: {e}"));
        schedule
    }
}

/// Append events of a Poisson process at `rate_per_hour` over `[0,
/// horizon_s)`: exponential gaps via inverse-CDF on uniform draws,
/// with each event's decoration (`kind`) drawn immediately after its
/// gap. The strict gap/kind interleave makes the stream prefix-stable
/// under horizon extension — a longer day appends faults, never
/// reshuffles the ones already scheduled.
fn poisson_events(
    rng: &mut StdRng,
    rate_per_hour: f64,
    horizon_s: f64,
    events: &mut Vec<FaultEvent>,
    mut kind: impl FnMut(&mut StdRng) -> FaultKind,
) {
    let rate = rate_per_hour / 3600.0;
    let mut t = 0.0f64;
    loop {
        let u: f64 = rng.gen_range(0.0f64..1.0);
        t += -(1.0 - u).ln() / rate;
        if t >= horizon_s {
            return;
        }
        let kind = kind(rng);
        events.push(FaultEvent { t_s: t, kind });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_schedules_nothing() {
        let s = FaultPlan::none().schedule(86_400.0, RetryPolicy::default(), true);
        assert!(s.is_empty());
        assert!(FaultPlan::none().is_empty());
        assert!(s.replace_failures, "recovery knobs pass through");
    }

    #[test]
    fn schedules_are_deterministic_and_seed_sensitive() {
        let plan = FaultPlan { seed: 7, kills_per_hour: 120.0, ..FaultPlan::none() };
        let a = plan.schedule(3600.0, RetryPolicy::default(), false);
        let b = plan.schedule(3600.0, RetryPolicy::default(), false);
        assert_eq!(a, b, "same plan, same bytes");
        assert!(!a.is_empty(), "120/hour over an hour is never empty");
        assert!(a.validate().is_ok());
        let c = FaultPlan { seed: 8, ..plan }.schedule(3600.0, RetryPolicy::default(), false);
        assert_ne!(a.events, c.events, "seed moves the schedule");
    }

    #[test]
    fn horizon_extension_is_prefix_stable() {
        let plan = FaultPlan { seed: 3, kills_per_hour: 60.0, ..FaultPlan::none() };
        let short = plan.schedule(1800.0, RetryPolicy::default(), false);
        let long = plan.schedule(3600.0, RetryPolicy::default(), false);
        assert!(long.events.len() >= short.events.len());
        assert_eq!(&long.events[..short.events.len()], &short.events[..]);
    }

    #[test]
    fn outages_carry_valid_groups_and_mix_with_kills() {
        let plan = FaultPlan {
            seed: 11,
            kills_per_hour: 60.0,
            outages_per_hour: 30.0,
            groups: 3,
            detect_s: 5.0,
        };
        let s = plan.schedule(7200.0, RetryPolicy::default(), true);
        assert!(s.validate().is_ok());
        assert_eq!(s.groups, 3);
        assert_eq!(s.detect_s, 5.0);
        let (mut kills, mut outages) = (0usize, 0usize);
        for e in &s.events {
            match e.kind {
                FaultKind::KillReplica { .. } => kills += 1,
                FaultKind::GroupOutage { group } => {
                    assert!(group < 3);
                    outages += 1;
                }
            }
        }
        assert!(kills > 0 && outages > 0, "both streams fire: {kills} kills, {outages} outages");
        assert!(s.events.windows(2).all(|w| w[0].t_s <= w[1].t_s));
    }

    #[test]
    fn invalid_plans_are_rejected() {
        assert!(FaultPlan { groups: 0, ..FaultPlan::none() }.validate().is_err());
        assert!(
            FaultPlan { kills_per_hour: f64::NAN, ..FaultPlan::none() }.validate().is_err()
        );
        assert!(FaultPlan { detect_s: -1.0, ..FaultPlan::none() }.validate().is_err());
    }
}
