//! The chaos controller: an autoscale replay under a seeded
//! [`FaultPlan`], paired with an explicit [`RecoverySpec`].
//!
//! This is a thin, deterministic composition: the plan resolves to a
//! [`seesaw_autoscale::FaultSchedule`] over the trace's base horizon,
//! and [`seesaw_autoscale::AutoscaleController::run_faulted_with`]
//! does the rest. With an empty plan the schedule is empty and the
//! replay is byte-identical to the plain autoscale run — one code
//! path, no RNG on it.
//!
//! Kills fire as events on the replay's global clock, interleaved
//! with dispatches in time order. Under an estimated routing policy
//! the lost set is resolved from the capacity-calibrated `CalQueue`
//! mirror; under a live policy (`jsq-live` / `least-work-live`) it is
//! exactly the *measured* in-flight set of the victim at the kill
//! instant, read from its engine replay. Either way, a dispatch that
//! finds every replica dark no longer panics: the arrival parks until
//! the first warming replica is ready (or requeues under the retry
//! policy when nothing is warming).

use crate::plan::FaultPlan;
use seesaw_autoscale::{
    AlertRule, AutoscaleConfig, AutoscaleController, ElasticFleetReport, RetryPolicy,
    ScalingPolicy,
};
use seesaw_engine::SweepRunner;
use seesaw_fleet::sweep::ReplicaBuilder;
use seesaw_telemetry::Instrument;
use seesaw_workload::Request;
use serde::{Deserialize, Serialize};

/// How the deployment responds to failures: the scaling policy that
/// drives the trajectory, whether killed capacity is replaced, and
/// how lost requests retry.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RecoverySpec {
    /// Scaling policy driving the window-by-window trajectory.
    pub policy: ScalingPolicy,
    /// Spawn replacements (paying warm-up) for killed replicas.
    pub replace_failures: bool,
    /// Retry behaviour for requests lost to failures.
    pub retry: RetryPolicy,
}

impl RecoverySpec {
    /// A static fleet that never heals — the fragile baseline.
    pub fn bare_static(n: usize) -> Self {
        RecoverySpec {
            policy: ScalingPolicy::Static { n },
            replace_failures: false,
            retry: RetryPolicy::default(),
        }
    }

    /// A policy that replaces killed capacity — the healing fleet.
    pub fn healing(policy: ScalingPolicy) -> Self {
        RecoverySpec { policy, replace_failures: true, retry: RetryPolicy::default() }
    }
}

impl std::fmt::Display for RecoverySpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.replace_failures {
            write!(f, "{}+replace", self.policy)
        } else {
            write!(f, "{}", self.policy)
        }
    }
}

/// An autoscale controller wrapped in a failure model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosController {
    /// Controller configuration (window, warm-up, bounds, router,
    /// SLO, capacity calibration).
    pub config: AutoscaleConfig,
    /// The seeded failure model.
    pub plan: FaultPlan,
    /// The recovery posture.
    pub recovery: RecoverySpec,
    /// Burn-rate rule forwarded to the inner autoscale controller —
    /// the fault-*detection* side of the chaos tier: its fire/clear
    /// stream is scored against the plan's injected outages.
    pub alert: AlertRule,
}

impl ChaosController {
    /// Build a controller; panics on an invalid plan or config (the
    /// inner [`AutoscaleController`] validates the latter). Alerting
    /// defaults to [`AlertRule::default`]; override with
    /// [`ChaosController::with_alert`].
    pub fn new(config: AutoscaleConfig, plan: FaultPlan, recovery: RecoverySpec) -> Self {
        plan.validate().unwrap_or_else(|e| panic!("invalid fault plan: {e}"));
        ChaosController { config, plan, recovery, alert: AlertRule::default() }
    }

    /// The same controller evaluating `alert`; panics on an invalid
    /// rule.
    pub fn with_alert(mut self, alert: AlertRule) -> Self {
        alert.validate().unwrap_or_else(|e| panic!("invalid alert rule: {e}"));
        self.alert = alert;
        self
    }

    /// Replay `requests` under the fault plan, parallelizing replica
    /// simulations on the environment's runner.
    pub fn run(&self, build: ReplicaBuilder, requests: &[Request]) -> ElasticFleetReport {
        self.run_with(&SweepRunner::from_env(), build, requests)
    }

    /// [`ChaosController::run`] on an explicit runner. The fault
    /// schedule spans the trace's base window horizon (the same
    /// horizon the fault-free replay would have), so the failure
    /// process is a property of the *day*, not of how long the retry
    /// tail happens to drag on.
    pub fn run_with(
        &self,
        runner: &SweepRunner,
        build: ReplicaBuilder,
        requests: &[Request],
    ) -> ElasticFleetReport {
        self.run_instrumented_with(runner, build, requests, &mut Instrument::off())
    }

    /// [`ChaosController::run_with`] with a telemetry [`Instrument`]:
    /// a straight passthrough to the instrumented autoscale replay,
    /// so kills, retries, parks, scale events, route decisions, and
    /// request lifecycles land on the same tracks as a fault-free
    /// run. With `Instrument::off()` this *is* `run_with`.
    pub fn run_instrumented_with(
        &self,
        runner: &SweepRunner,
        build: ReplicaBuilder,
        requests: &[Request],
        instr: &mut Instrument,
    ) -> ElasticFleetReport {
        let schedule = self.schedule_for(requests);
        AutoscaleController::new(self.config, self.recovery.policy)
            .with_alert(self.alert)
            .run_faulted_instrumented_with(runner, build, requests, &schedule, instr)
    }

    /// The resolved fault schedule a replay of `requests` runs under —
    /// the detection-scoring ground truth. Spans the trace's base
    /// window horizon, exactly as [`ChaosController::run_with`] does.
    pub fn schedule_for(&self, requests: &[Request]) -> seesaw_autoscale::FaultSchedule {
        let last_arrival = requests.last().map_or(0.0, |r| r.arrival_s);
        let horizon_s = ((last_arrival / self.config.window_s) as usize + 1) as f64
            * self.config.window_s;
        self.plan
            .schedule(horizon_s, self.recovery.retry, self.recovery.replace_failures)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovery_names_expose_the_replacement_posture() {
        assert_eq!(RecoverySpec::bare_static(4).to_string(), "static-4");
        assert_eq!(
            RecoverySpec::healing(ScalingPolicy::reactive_default()).to_string(),
            "reactive+replace"
        );
        assert_eq!(
            RecoverySpec::healing(ScalingPolicy::Static { n: 3 }).to_string(),
            "static-3+replace"
        );
    }

    #[test]
    #[should_panic(expected = "invalid fault plan")]
    fn bad_plan_rejected() {
        ChaosController::new(
            AutoscaleConfig::default(),
            FaultPlan { groups: 0, ..FaultPlan::none() },
            RecoverySpec::bare_static(2),
        );
    }
}
