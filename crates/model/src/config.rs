//! Architecture configuration and derived accounting.

use serde::{Deserialize, Serialize};

/// Numeric precision of weights and KV cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Dtype {
    /// 16-bit floating point (the paper's setting).
    F16,
    /// 32-bit floating point.
    F32,
}

impl Dtype {
    /// Bytes per element.
    pub const fn bytes(self) -> u64 {
        match self {
            Dtype::F16 => 2,
            Dtype::F32 => 4,
        }
    }
}

/// Decoder-only transformer architecture description.
///
/// Uses the LLaMA-family block structure: per layer, a grouped-query
/// attention block (`q/k/v/o` projections) and a SwiGLU MLP
/// (`gate/up/down` projections), plus tied-ish input/output embeddings
/// counted once each at the model level.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelConfig {
    /// Human-readable name, e.g. `"CodeLLaMA-34B"`.
    pub name: String,
    /// Number of decoder layers `L`.
    pub num_layers: usize,
    /// Model (hidden) dimension.
    pub hidden: usize,
    /// Number of query heads `h_q`.
    pub num_heads: usize,
    /// Number of KV heads `h_kv` (< `num_heads` under GQA).
    pub num_kv_heads: usize,
    /// Per-head dimension `d`.
    pub head_dim: usize,
    /// MLP intermediate dimension.
    pub intermediate: usize,
    /// Vocabulary size.
    pub vocab: usize,
    /// Weight / KV precision.
    pub dtype: Dtype,
}

impl ModelConfig {
    /// Validate internal consistency (head counts divide, dims match).
    pub fn validate(&self) -> Result<(), String> {
        if self.num_heads * self.head_dim != self.hidden {
            return Err(format!(
                "{}: num_heads*head_dim ({}) != hidden ({})",
                self.name,
                self.num_heads * self.head_dim,
                self.hidden
            ));
        }
        if !self.num_heads.is_multiple_of(self.num_kv_heads) {
            return Err(format!(
                "{}: num_heads ({}) not divisible by num_kv_heads ({})",
                self.name, self.num_heads, self.num_kv_heads
            ));
        }
        if self.num_layers == 0 || self.hidden == 0 || self.vocab == 0 {
            return Err(format!("{}: zero-sized dimension", self.name));
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Parameters and weight bytes
    // ------------------------------------------------------------------

    /// Parameters in one layer's attention block
    /// (`q`: h×h_q·d, `k`,`v`: h×h_kv·d, `o`: h_q·d×h).
    pub fn attn_params_per_layer(&self) -> u64 {
        let h = self.hidden as u64;
        let qd = (self.num_heads * self.head_dim) as u64;
        let kvd = (self.num_kv_heads * self.head_dim) as u64;
        h * qd + 2 * h * kvd + qd * h
    }

    /// Parameters in one layer's MLP block (SwiGLU: 3 matrices of
    /// h×intermediate).
    pub fn mlp_params_per_layer(&self) -> u64 {
        3 * self.hidden as u64 * self.intermediate as u64
    }

    /// Parameters per decoder layer (`W` in the paper's notation).
    pub fn params_per_layer(&self) -> u64 {
        self.attn_params_per_layer() + self.mlp_params_per_layer()
    }

    /// Embedding + LM-head parameters.
    pub fn embedding_params(&self) -> u64 {
        2 * self.vocab as u64 * self.hidden as u64
    }

    /// Total model parameters.
    pub fn total_params(&self) -> u64 {
        self.params_per_layer() * self.num_layers as u64 + self.embedding_params()
    }

    /// Bytes of one layer's weights at the configured dtype.
    pub fn weight_bytes_per_layer(&self) -> u64 {
        self.params_per_layer() * self.dtype.bytes()
    }

    /// Bytes of the whole model's weights.
    pub fn weight_bytes_total(&self) -> u64 {
        self.total_params() * self.dtype.bytes()
    }

    // ------------------------------------------------------------------
    // KV cache
    // ------------------------------------------------------------------

    /// KV-cache bytes per token for one layer (K and V, all KV heads).
    pub fn kv_bytes_per_token_layer(&self) -> u64 {
        2 * (self.num_kv_heads * self.head_dim) as u64 * self.dtype.bytes()
    }

    /// KV-cache bytes per token across all layers.
    pub fn kv_bytes_per_token(&self) -> u64 {
        self.kv_bytes_per_token_layer() * self.num_layers as u64
    }

    // ------------------------------------------------------------------
    // FLOPs (per layer unless stated otherwise)
    // ------------------------------------------------------------------

    /// Linear-layer FLOPs per token per layer: `2·W` (one multiply-add
    /// per parameter per token).
    pub fn linear_flops_per_token_layer(&self) -> f64 {
        2.0 * self.params_per_layer() as f64
    }

    /// Attention-score FLOPs per layer to *prefill* one sequence of
    /// `s` tokens: QKᵀ and A·V over a causal mask,
    /// `≈ 2·h_q·d·s²` (two matmuls × s²/2 causal positions × 2 flops).
    pub fn attn_flops_prefill(&self, s: usize) -> f64 {
        2.0 * (self.num_heads * self.head_dim) as f64 * (s as f64) * (s as f64)
    }

    /// Attention-score FLOPs per layer for one *decode* step of a
    /// sequence with `ctx` tokens of context: `4·h_q·d·ctx`.
    pub fn attn_flops_decode(&self, ctx: usize) -> f64 {
        4.0 * (self.num_heads * self.head_dim) as f64 * ctx as f64
    }

    // ------------------------------------------------------------------
    // Data movement (per layer)
    // ------------------------------------------------------------------

    /// Bytes of Q/K/V traffic per layer to prefill one sequence of `s`
    /// tokens: `2·s·(h_q + 2·h_kv)·d` elements (paper Table 3).
    pub fn attn_dm_prefill_bytes(&self, s: usize) -> f64 {
        (s as u64 * (self.num_heads as u64 + 2 * self.num_kv_heads as u64)
            * self.head_dim as u64
            * self.dtype.bytes()) as f64
    }

    /// Bytes of KV-cache traffic per layer for one decode step at
    /// context `ctx`: `2·ctx·2·h_kv·d` bytes = `4·ctx·h_kv·d` at fp16
    /// (paper Table 3).
    pub fn attn_dm_decode_bytes(&self, ctx: usize) -> f64 {
        (2 * ctx as u64
            * (self.num_kv_heads * self.head_dim) as u64
            * self.dtype.bytes()) as f64
    }

    // ------------------------------------------------------------------
    // Tensor-parallel communication
    // ------------------------------------------------------------------

    /// Activation bytes per token (`A` in the paper: one hidden
    /// vector).
    pub fn activation_bytes_per_token(&self) -> f64 {
        (self.hidden as u64 * self.dtype.bytes()) as f64
    }

    /// All-reduce operations per layer under tensor parallelism (one
    /// after attention output, one after the MLP — Megatron-style).
    pub const fn allreduces_per_layer(&self) -> usize {
        2
    }

    /// Total bytes all-reduced per layer for `tokens` tokens.
    pub fn allreduce_bytes_per_layer(&self, tokens: usize) -> f64 {
        self.allreduces_per_layer() as f64 * tokens as f64 * self.activation_bytes_per_token()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    #[test]
    fn dtype_bytes() {
        assert_eq!(Dtype::F16.bytes(), 2);
        assert_eq!(Dtype::F32.bytes(), 4);
    }

    #[test]
    fn all_presets_validate() {
        for m in presets::all() {
            m.validate().unwrap();
        }
    }

    #[test]
    fn rejects_mismatched_heads() {
        let mut m = presets::llama2_13b();
        m.head_dim = 64;
        assert!(m.validate().is_err());
        let mut m = presets::llama2_70b();
        m.num_kv_heads = 7;
        assert!(m.validate().is_err());
    }

    #[test]
    fn kv_bytes_scale_with_layers_and_heads() {
        let m = presets::llama2_70b();
        assert_eq!(
            m.kv_bytes_per_token(),
            m.kv_bytes_per_token_layer() * m.num_layers as u64
        );
        // GQA: 70B has 8 KV heads of dim 128 => 2*8*128*2 = 4096 B/layer.
        assert_eq!(m.kv_bytes_per_token_layer(), 4096);
    }

    #[test]
    fn prefill_attn_flops_quadratic() {
        let m = presets::llama2_13b();
        let f1 = m.attn_flops_prefill(512);
        let f2 = m.attn_flops_prefill(1024);
        assert!((f2 / f1 - 4.0).abs() < 1e-9);
    }

    #[test]
    fn decode_attn_flops_linear_in_context() {
        let m = presets::llama2_13b();
        assert!((m.attn_flops_decode(2000) / m.attn_flops_decode(1000) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn linear_flops_match_two_per_param() {
        let m = presets::codellama_34b();
        assert!(
            (m.linear_flops_per_token_layer() - 2.0 * m.params_per_layer() as f64).abs() < 1.0
        );
    }

    #[test]
    fn allreduce_volume_is_two_hidden_vectors_per_token() {
        let m = presets::llama2_13b();
        let per_token = m.allreduce_bytes_per_layer(1);
        assert!((per_token - 2.0 * (m.hidden as f64) * 2.0).abs() < 1e-9);
    }
}
