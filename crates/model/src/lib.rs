//! Transformer model architecture descriptions.
//!
//! [`ModelConfig`] captures the architecture hyper-parameters of the
//! decoder-only transformers used in the paper's evaluation and
//! derives every quantity the performance models need:
//!
//! * parameter counts and fp16 weight bytes (whole-model, per-layer,
//!   and split into attention vs MLP blocks for sharding),
//! * KV-cache bytes per token,
//! * FLOP counts for linear layers and attention in both stages,
//! * all-reduce activation volumes under tensor parallelism.
//!
//! The formulas follow Appendix A, Table 3 of the paper.

pub mod config;
pub mod presets;

pub use config::{Dtype, ModelConfig};
