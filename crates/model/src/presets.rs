//! Model presets used in the paper's evaluation (§6.1).

use crate::config::{Dtype, ModelConfig};

/// LLaMA2-13B (used in Figure 1's motivation experiment). Standard
/// multi-head attention (no GQA).
pub fn llama2_13b() -> ModelConfig {
    ModelConfig {
        name: "LLaMA2-13B".to_string(),
        num_layers: 40,
        hidden: 5120,
        num_heads: 40,
        num_kv_heads: 40,
        head_dim: 128,
        intermediate: 13824,
        vocab: 32000,
        dtype: Dtype::F16,
    }
}

/// The "15B" LLaMA3 variant (elinas/Llama-3-15B-Instruct-zeroed): a
/// depth-upscaled Llama-3-8B — same widths, doubled layer count, GQA
/// with 8 KV heads.
pub fn llama3_15b() -> ModelConfig {
    ModelConfig {
        name: "LLaMA3-15B".to_string(),
        num_layers: 64,
        hidden: 4096,
        num_heads: 32,
        num_kv_heads: 8,
        head_dim: 128,
        intermediate: 14336,
        vocab: 128256,
        dtype: Dtype::F16,
    }
}

/// CodeLLaMA-34B (GQA, 8 KV heads).
pub fn codellama_34b() -> ModelConfig {
    ModelConfig {
        name: "CodeLLaMA-34B".to_string(),
        num_layers: 48,
        hidden: 8192,
        num_heads: 64,
        num_kv_heads: 8,
        head_dim: 128,
        intermediate: 22016,
        vocab: 32000,
        dtype: Dtype::F16,
    }
}

/// LLaMA2-70B (GQA, 8 KV heads). fp16 weights ≈ 140 GiB — the number
/// the paper's Figure 4 argument hinges on.
pub fn llama2_70b() -> ModelConfig {
    ModelConfig {
        name: "LLaMA2-70B".to_string(),
        num_layers: 80,
        hidden: 8192,
        num_heads: 64,
        num_kv_heads: 8,
        head_dim: 128,
        intermediate: 28672,
        vocab: 32000,
        dtype: Dtype::F16,
    }
}

/// Every preset, for exhaustive tests and sweeps.
pub fn all() -> Vec<ModelConfig> {
    vec![llama2_13b(), llama3_15b(), codellama_34b(), llama2_70b()]
}

/// Look up a preset by the short names used in the paper's figures.
pub fn by_name(name: &str) -> Option<ModelConfig> {
    match name.to_ascii_lowercase().as_str() {
        "13b" | "llama2-13b" => Some(llama2_13b()),
        "15b" | "llama3-15b" => Some(llama3_15b()),
        "34b" | "codellama-34b" => Some(codellama_34b()),
        "70b" | "llama2-70b" => Some(llama2_70b()),
        _ => None,
    }
}

impl ModelConfig {
    /// Alias for [`llama2_13b`].
    pub fn llama2_13b() -> Self {
        llama2_13b()
    }
    /// Alias for [`llama3_15b`].
    pub fn llama3_15b() -> Self {
        llama3_15b()
    }
    /// Alias for [`codellama_34b`].
    pub fn codellama_34b() -> Self {
        codellama_34b()
    }
    /// Alias for [`llama2_70b`].
    pub fn llama2_70b() -> Self {
        llama2_70b()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Parameter counts should land near the marketing sizes.
    #[test]
    fn parameter_counts_are_plausible() {
        let cases = [
            (llama2_13b(), 13.0e9, 0.08),
            (llama3_15b(), 15.0e9, 0.08),
            (codellama_34b(), 34.0e9, 0.08),
            (llama2_70b(), 69.0e9, 0.05),
        ];
        for (m, expect, tol) in cases {
            let p = m.total_params() as f64;
            let rel = (p - expect).abs() / expect;
            assert!(
                rel < tol,
                "{}: {:.2}B params vs expected {:.1}B (rel err {:.3})",
                m.name,
                p / 1e9,
                expect / 1e9,
                rel
            );
        }
    }

    /// The paper states the 70B model takes ~140 GiB in fp16; Figure 4
    /// depends on "at least four 40-GiB GPUs to fit the weights".
    #[test]
    fn llama70b_weights_need_four_40g_gpus() {
        let m = llama2_70b();
        let gib = m.weight_bytes_total() as f64 / (1u64 << 30) as f64;
        assert!(gib > 120.0 && gib < 145.0, "70B fp16 = {gib:.1} GiB");
        // 3 GPUs (120 GiB) must NOT fit, 4 GPUs (160 GiB) must fit.
        assert!(m.weight_bytes_total() > 3 * 40 * (1u64 << 30));
        assert!(m.weight_bytes_total() < 4 * 40 * (1u64 << 30));
    }

    #[test]
    fn by_name_roundtrip() {
        for (short, full) in [
            ("13b", "LLaMA2-13B"),
            ("15b", "LLaMA3-15B"),
            ("34b", "CodeLLaMA-34B"),
            ("70b", "LLaMA2-70B"),
        ] {
            assert_eq!(by_name(short).unwrap().name, full);
        }
        assert!(by_name("8b").is_none());
    }

    /// GQA models have much smaller KV per token than the MHA 13B.
    #[test]
    fn gqa_shrinks_kv() {
        let mha = llama2_13b();
        let gqa = codellama_34b();
        // 13B: 2*40*128*2 = 20480 B/layer; 34B: 2*8*128*2 = 4096 B/layer.
        assert!(mha.kv_bytes_per_token_layer() > 4 * gqa.kv_bytes_per_token_layer());
    }
}
