//! Property tests for model accounting: scaling laws that must hold
//! for any architecture.

use proptest::prelude::*;
use seesaw_model::{Dtype, ModelConfig};

fn arch_strategy() -> impl Strategy<Value = ModelConfig> {
    (1usize..100, 1usize..64, 0usize..4, 6usize..10, 1usize..6).prop_map(
        |(layers, heads, kv_shift, head_dim_log, inter_mult)| {
            let kv = (heads >> kv_shift).max(1);
            // Force divisibility.
            let heads = kv * (heads / kv).max(1);
            let head_dim = 1 << head_dim_log;
            let hidden = heads * head_dim;
            ModelConfig {
                name: "gen".into(),
                num_layers: layers,
                hidden,
                num_heads: heads,
                num_kv_heads: kv,
                head_dim,
                intermediate: hidden * inter_mult,
                vocab: 32000,
                dtype: Dtype::F16,
            }
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Generated architectures validate.
    #[test]
    fn generated_archs_validate(m in arch_strategy()) {
        prop_assert!(m.validate().is_ok(), "{:?}", m.validate());
    }

    /// Weight bytes = 2 bytes/param at fp16; params decompose into
    /// layers + embeddings exactly.
    #[test]
    fn bytes_track_params(m in arch_strategy()) {
        prop_assert_eq!(m.weight_bytes_total(), 2 * m.total_params());
        prop_assert_eq!(
            m.total_params(),
            m.params_per_layer() * m.num_layers as u64 + m.embedding_params()
        );
        prop_assert_eq!(
            m.params_per_layer(),
            m.attn_params_per_layer() + m.mlp_params_per_layer()
        );
    }

    /// KV bytes scale linearly with layers and with KV heads.
    #[test]
    fn kv_scaling(m in arch_strategy()) {
        prop_assert_eq!(
            m.kv_bytes_per_token(),
            m.kv_bytes_per_token_layer() * m.num_layers as u64
        );
        prop_assert_eq!(
            m.kv_bytes_per_token_layer(),
            2 * (m.num_kv_heads * m.head_dim) as u64 * 2
        );
    }

    /// Attention FLOPs: prefill quadratic, decode linear.
    #[test]
    fn attention_flop_scaling(m in arch_strategy(), s in 2usize..2048) {
        let q = m.attn_flops_prefill(2 * s) / m.attn_flops_prefill(s);
        prop_assert!((q - 4.0).abs() < 1e-9);
        let l = m.attn_flops_decode(2 * s) / m.attn_flops_decode(s);
        prop_assert!((l - 2.0).abs() < 1e-9);
    }
}
