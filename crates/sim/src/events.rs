//! A deterministic time-ordered event queue for fleet-level loops.
//!
//! The executor's internal timer heap (see [`crate::executor`]) keys
//! events by a packed `u128` — time bits first, then an insertion
//! sequence number — so equal-time events pop in push order and the
//! heap never compares floats directly. [`EventQueue`] lifts that
//! idiom into a reusable, payload-carrying queue: fleet tiers push
//! arrivals, kills, and controller ticks onto one global clock and
//! pop them in a single deterministic order, independent of how many
//! worker threads later simulate the consequences.
//!
//! Determinism contract: for a fixed push sequence, the pop sequence
//! is fixed. Ties on time break by push order (FIFO), which is what a
//! merged multi-stream timeline needs — a retry scheduled after an
//! arrival at the same instant is observed after it.

use crate::time::SimTime;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Pack `(time, seq)` into one ordered `u128` key.
///
/// Non-negative finite `f64` bit patterns order identically to the
/// values themselves, so `time.to_bits()` in the high 64 bits gives
/// time-major order and `seq` in the low 64 bits gives FIFO ties.
fn pack_key(at: SimTime, seq: u64) -> u128 {
    ((at.as_secs().to_bits() as u128) << 64) | seq as u128
}

fn unpack_time(key: u128) -> SimTime {
    SimTime::from_secs(f64::from_bits((key >> 64) as u64))
}

fn unpack_seq(key: u128) -> u64 {
    key as u64
}

/// A time-ordered min-queue of payload-carrying events.
///
/// Payloads live in a slot vector; the heap holds only packed keys
/// plus slot indices, so ordering never touches the payload type and
/// `T` needs no trait bounds. Popped slots are recycled.
#[derive(Debug)]
pub struct EventQueue<T> {
    heap: BinaryHeap<Reverse<(u128, usize)>>,
    slots: Vec<Option<T>>,
    free: Vec<usize>,
    seq: u64,
    now: SimTime,
    pops: u64,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> EventQueue<T> {
    /// An empty queue with the clock at zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            slots: Vec::new(),
            free: Vec::new(),
            seq: 0,
            now: SimTime::ZERO,
            pops: 0,
        }
    }

    /// Lifetime push count (telemetry hook: event-loop volume).
    pub fn total_pushes(&self) -> u64 {
        self.seq
    }

    /// Lifetime pop count (telemetry hook: events actually driven).
    pub fn total_pops(&self) -> u64 {
        self.pops
    }

    /// Current simulated time: the timestamp of the last popped
    /// event (zero before any pop).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedule `payload` at time `at`. Panics if `at` precedes the
    /// current clock — events in the past would break causality.
    pub fn push(&mut self, at: SimTime, payload: T) {
        assert!(
            at >= self.now,
            "event at {at} precedes the clock at {}",
            self.now
        );
        let slot = match self.free.pop() {
            Some(i) => {
                self.slots[i] = Some(payload);
                i
            }
            None => {
                self.slots.push(Some(payload));
                self.slots.len() - 1
            }
        };
        self.seq += 1;
        self.heap.push(Reverse((pack_key(at, self.seq), slot)));
    }

    /// Timestamp of the next event without popping it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse((key, _))| unpack_time(*key))
    }

    /// Pop the earliest event, advancing the clock to its timestamp.
    /// Equal-time events pop in push order.
    pub fn pop(&mut self) -> Option<(SimTime, T)> {
        let Reverse((key, slot)) = self.heap.pop()?;
        let at = unpack_time(key);
        debug_assert!(unpack_seq(key) <= self.seq);
        self.now = at;
        self.pops += 1;
        let payload = self.slots[slot].take().expect("slot holds a pending event");
        self.free.push(slot);
        Some((at, payload))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(3.0), "c");
        q.push(SimTime::from_secs(1.0), "a");
        q.push(SimTime::from_secs(2.0), "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
        assert_eq!(q.now(), SimTime::from_secs(3.0));
    }

    #[test]
    fn equal_times_pop_fifo() {
        let mut q = EventQueue::new();
        for i in 0..8 {
            q.push(SimTime::from_secs(1.0), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn interleaved_push_pop_recycles_slots() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(1.0), 1u32);
        q.push(SimTime::from_secs(5.0), 5);
        assert_eq!(q.pop(), Some((SimTime::from_secs(1.0), 1)));
        // Push after a pop reuses the freed slot and may be earlier
        // than already-pending events, as long as it is not earlier
        // than the clock.
        q.push(SimTime::from_secs(2.0), 2);
        q.push(SimTime::from_secs(3.0), 3);
        assert!(q.slots.len() <= 3, "freed slots are reused");
        assert_eq!(q.pop(), Some((SimTime::from_secs(2.0), 2)));
        assert_eq!(q.pop(), Some((SimTime::from_secs(3.0), 3)));
        assert_eq!(q.pop(), Some((SimTime::from_secs(5.0), 5)));
        assert!(q.pop().is_none());
        assert!(q.is_empty());
    }

    #[test]
    fn peek_does_not_advance_clock() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(4.0), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(4.0)));
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_secs(4.0));
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn push_pop_counters_track_volume() {
        let mut q = EventQueue::new();
        assert_eq!((q.total_pushes(), q.total_pops()), (0, 0));
        q.push(SimTime::from_secs(1.0), ());
        q.push(SimTime::from_secs(2.0), ());
        assert_eq!((q.total_pushes(), q.total_pops()), (2, 0));
        q.pop();
        assert_eq!((q.total_pushes(), q.total_pops()), (2, 1));
        q.pop();
        q.pop();
        assert_eq!((q.total_pushes(), q.total_pops()), (2, 2), "empty pops don't count");
    }

    #[test]
    #[should_panic(expected = "precedes the clock")]
    fn push_into_past_rejected() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(2.0), ());
        q.pop();
        q.push(SimTime::from_secs(1.0), ());
    }
}
