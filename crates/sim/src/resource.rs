//! Named FIFO resources.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifies a resource registered with a [`ResourcePool`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ResourceId(pub(crate) usize);

impl ResourceId {
    /// The raw index (stable for the lifetime of the pool).
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for ResourceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "res#{}", self.0)
    }
}

/// A registry of named, single-server FIFO resources.
///
/// Each resource executes one task at a time; queued tasks run in the
/// order they became ready. Names are free-form but conventionally
/// `"{device}.{function}"`, e.g. `"gpu3.compute"`, `"gpu3.h2d"`,
/// `"fabric"`, `"host.staging"`.
#[derive(Debug, Default, Clone)]
pub struct ResourcePool {
    names: Vec<String>,
}

impl ResourcePool {
    /// Create an empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a resource, returning its id.
    pub fn add(&mut self, name: impl Into<String>) -> ResourceId {
        self.names.push(name.into());
        ResourceId(self.names.len() - 1)
    }

    /// Number of registered resources.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Name of a resource.
    pub fn name(&self, id: ResourceId) -> &str {
        &self.names[id.0]
    }

    /// The id at a raw index (ids are assigned densely in registration
    /// order, so this is the inverse of [`ResourceId::index`]). Panics
    /// when out of range.
    pub fn id(&self, index: usize) -> ResourceId {
        assert!(index < self.names.len(), "resource index {index} out of range");
        ResourceId(index)
    }

    /// Find a resource by exact name.
    pub fn find(&self, name: &str) -> Option<ResourceId> {
        self.names.iter().position(|n| n == name).map(ResourceId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_lookup() {
        let mut pool = ResourcePool::new();
        let a = pool.add("gpu0.compute");
        let b = pool.add("gpu0.h2d");
        assert_eq!(pool.len(), 2);
        assert_ne!(a, b);
        assert_eq!(pool.name(a), "gpu0.compute");
        assert_eq!(pool.find("gpu0.h2d"), Some(b));
        assert_eq!(pool.find("nope"), None);
    }

    #[test]
    fn ids_are_stable_indices() {
        let mut pool = ResourcePool::new();
        for i in 0..10 {
            let id = pool.add(format!("r{i}"));
            assert_eq!(id.index(), i);
        }
    }
}
