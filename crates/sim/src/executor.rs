//! The event-driven task executor.

use crate::resource::{ResourceId, ResourcePool};
use crate::time::SimTime;
use crate::trace::{Span, TaskKind, Trace};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// Handle to a submitted task.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TaskHandle(usize);

impl TaskHandle {
    /// Raw task index.
    pub fn index(self) -> usize {
        self.0
    }
}

/// Small inline list that avoids heap allocation for the 0-, 1- and
/// 2-element cases which dominate engine task graphs (a compute pass
/// depends on at most its predecessor; a transfer on the pass it
/// drains). `Many` falls back to a `Vec` for join nodes.
#[derive(Debug, Clone, Default, PartialEq)]
pub enum SmallList<T> {
    /// No elements.
    #[default]
    Empty,
    /// Exactly one element.
    One(T),
    /// Exactly two elements.
    Two([T; 2]),
    /// Three or more elements.
    Many(Vec<T>),
}

impl<T: Copy> SmallList<T> {
    /// Append an element, spilling to the heap only past two.
    pub fn push(&mut self, v: T) {
        *self = match std::mem::take(self) {
            SmallList::Empty => SmallList::One(v),
            SmallList::One(a) => SmallList::Two([a, v]),
            SmallList::Two([a, b]) => SmallList::Many(vec![a, b, v]),
            SmallList::Many(mut vec) => {
                vec.push(v);
                SmallList::Many(vec)
            }
        }
    }

    /// View as a slice.
    pub fn as_slice(&self) -> &[T] {
        match self {
            SmallList::Empty => &[],
            SmallList::One(a) => std::slice::from_ref(a),
            SmallList::Two(ab) => ab,
            SmallList::Many(vec) => vec,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    /// Whether the list is empty.
    pub fn is_empty(&self) -> bool {
        matches!(self, SmallList::Empty)
    }
}

impl<T: Copy> From<Vec<T>> for SmallList<T> {
    fn from(v: Vec<T>) -> Self {
        match v.len() {
            0 => SmallList::Empty,
            1 => SmallList::One(v[0]),
            2 => SmallList::Two([v[0], v[1]]),
            _ => SmallList::Many(v),
        }
    }
}

impl<T: Copy> FromIterator<T> for SmallList<T> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        let mut out = SmallList::Empty;
        for v in iter {
            out.push(v);
        }
        out
    }
}

/// Description of a task to submit.
#[derive(Debug, Clone)]
pub struct TaskSpec {
    /// Resource to occupy, or `None` for a pure synchronization node
    /// that completes the instant its dependencies do.
    pub resource: Option<ResourceId>,
    /// Service duration in seconds (must be finite and ≥ 0).
    pub duration: f64,
    /// Work category, for tracing.
    pub kind: TaskKind,
    /// Tasks that must complete before this one starts.
    pub deps: SmallList<TaskHandle>,
    /// Free-form tag recorded in the trace (e.g. GPU index).
    pub tag: u64,
}

impl TaskSpec {
    /// A task of `duration` seconds on `resource`.
    pub fn new(resource: ResourceId, duration: f64, kind: TaskKind) -> Self {
        assert!(
            duration.is_finite() && duration >= 0.0,
            "invalid task duration: {duration}"
        );
        TaskSpec {
            resource: Some(resource),
            duration,
            kind,
            deps: SmallList::Empty,
            tag: 0,
        }
    }

    /// A zero-duration synchronization node joining `deps`.
    pub fn sync(deps: Vec<TaskHandle>) -> Self {
        TaskSpec {
            resource: None,
            duration: 0.0,
            kind: TaskKind::Sync,
            deps: deps.into(),
            tag: 0,
        }
    }

    /// Add a dependency.
    pub fn after(mut self, dep: TaskHandle) -> Self {
        self.deps.push(dep);
        self
    }

    /// Add several dependencies.
    pub fn after_all(mut self, deps: &[TaskHandle]) -> Self {
        for &d in deps {
            self.deps.push(d);
        }
        self
    }

    /// Set the trace tag.
    pub fn tag(mut self, tag: u64) -> Self {
        self.tag = tag;
        self
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum TaskState {
    /// Waiting on `remaining` dependencies.
    Waiting,
    /// In its resource's FIFO queue.
    Queued,
    /// Being served.
    Running,
    /// Finished.
    Done,
}

#[derive(Debug)]
struct Task {
    resource: Option<ResourceId>,
    duration: f64,
    kind: TaskKind,
    tag: u64,
    remaining_deps: usize,
    dependents: SmallList<usize>,
    state: TaskState,
    service_start: SimTime,
    completion: Option<SimTime>,
}

#[derive(Debug, Default)]
struct ResState {
    busy: bool,
    queue: VecDeque<usize>,
}

/// The discrete-event simulator.
///
/// Holds the resource pool, the task graph, the pending-event heap,
/// and the execution trace. See the crate docs for the model.
#[derive(Debug)]
pub struct Simulator {
    pool: ResourcePool,
    res_state: Vec<ResState>,
    tasks: Vec<Task>,
    /// Min-heap of (completion time, sequence, task id).
    events: BinaryHeap<Reverse<(SimTime, u64, usize)>>,
    seq: u64,
    now: SimTime,
    trace: Trace,
    outstanding: usize,
    /// Accumulated service seconds per resource (kept even when span
    /// tracing is disabled, for utilization reporting).
    busy: Vec<f64>,
}

impl Default for Simulator {
    fn default() -> Self {
        Self::new()
    }
}

impl Simulator {
    /// A simulator with tracing enabled.
    pub fn new() -> Self {
        Simulator {
            pool: ResourcePool::new(),
            res_state: Vec::new(),
            tasks: Vec::new(),
            events: BinaryHeap::new(),
            seq: 0,
            now: SimTime::ZERO,
            trace: Trace::enabled(),
            outstanding: 0,
            busy: Vec::new(),
        }
    }

    /// A simulator that skips span recording (faster for long runs).
    pub fn without_trace() -> Self {
        let mut s = Self::new();
        s.trace = Trace::disabled();
        s
    }

    /// Register a resource.
    pub fn add_resource(&mut self, name: impl Into<String>) -> ResourceId {
        let id = self.pool.add(name);
        self.res_state.push(ResState::default());
        self.busy.push(0.0);
        id
    }

    /// Total service seconds a resource has been busy so far.
    pub fn busy_time(&self, r: ResourceId) -> f64 {
        self.busy[r.index()]
    }

    /// Busy fraction of a resource over the elapsed simulated time
    /// (`0.0` before any time has passed).
    pub fn utilization(&self, r: ResourceId) -> f64 {
        let t = self.now.as_secs();
        if t <= 0.0 {
            0.0
        } else {
            self.busy[r.index()] / t
        }
    }

    /// The resource registry.
    pub fn pool(&self) -> &ResourcePool {
        &self.pool
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The execution trace so far.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Clear the recorded trace (e.g. after a warm-up phase).
    pub fn clear_trace(&mut self) {
        self.trace.clear();
    }

    /// Whether a task has completed.
    pub fn completed(&self, h: TaskHandle) -> bool {
        self.tasks[h.0].completion.is_some()
    }

    /// Completion time of a task, if it has finished.
    pub fn completion_time(&self, h: TaskHandle) -> Option<SimTime> {
        self.tasks[h.0].completion
    }

    /// Number of submitted-but-unfinished tasks.
    pub fn outstanding(&self) -> usize {
        self.outstanding
    }

    /// Submit a task; it becomes ready once its dependencies complete
    /// (immediately, at the current time, if they already have).
    pub fn submit(&mut self, spec: TaskSpec) -> TaskHandle {
        assert!(
            spec.duration.is_finite() && spec.duration >= 0.0,
            "invalid task duration: {}",
            spec.duration
        );
        if let Some(r) = spec.resource {
            assert!(r.index() < self.res_state.len(), "unknown resource {r}");
        }
        let id = self.tasks.len();
        let mut remaining = 0;
        for d in spec.deps.as_slice() {
            assert!(d.0 < id, "dependency on not-yet-submitted task");
            if self.tasks[d.0].completion.is_none() {
                self.tasks[d.0].dependents.push(id);
                remaining += 1;
            }
        }
        self.tasks.push(Task {
            resource: spec.resource,
            duration: spec.duration,
            kind: spec.kind,
            tag: spec.tag,
            remaining_deps: remaining,
            dependents: SmallList::Empty,
            state: TaskState::Waiting,
            service_start: SimTime::ZERO,
            completion: None,
        });
        self.outstanding += 1;
        if remaining == 0 {
            self.make_ready(id);
        }
        TaskHandle(id)
    }

    /// Run until `h` completes, leaving any other in-flight tasks
    /// pending in the event queue. Returns the completion time.
    ///
    /// Panics if the event queue drains before `h` completes (a
    /// dependency was never satisfiable).
    pub fn run_until(&mut self, h: TaskHandle) -> SimTime {
        while self.tasks[h.0].completion.is_none() {
            assert!(
                self.step(),
                "simulation deadlock: task {} unreachable",
                h.0
            );
        }
        self.tasks[h.0].completion.expect("just completed")
    }

    /// Run until no events remain. Returns the final time.
    pub fn run_until_idle(&mut self) -> SimTime {
        while self.step() {}
        assert_eq!(self.outstanding, 0, "tasks stuck waiting after drain");
        self.now
    }

    /// Process one completion event. Returns `false` when the event
    /// queue is empty.
    fn step(&mut self) -> bool {
        let Some(Reverse((t, _, id))) = self.events.pop() else {
            return false;
        };
        debug_assert!(t >= self.now, "time went backwards");
        self.now = t;
        self.complete(id);
        true
    }

    fn make_ready(&mut self, id: usize) {
        match self.tasks[id].resource {
            None => {
                // Pure sync: completes at the current instant.
                self.tasks[id].state = TaskState::Running;
                self.tasks[id].service_start = self.now;
                self.schedule_completion(id, self.now);
            }
            Some(r) => {
                if self.res_state[r.index()].busy {
                    self.tasks[id].state = TaskState::Queued;
                    self.res_state[r.index()].queue.push_back(id);
                } else {
                    self.start_service(id, r);
                }
            }
        }
    }

    fn start_service(&mut self, id: usize, r: ResourceId) {
        self.res_state[r.index()].busy = true;
        self.tasks[id].state = TaskState::Running;
        self.tasks[id].service_start = self.now;
        let end = self.now + self.tasks[id].duration;
        self.schedule_completion(id, end);
    }

    fn schedule_completion(&mut self, id: usize, at: SimTime) {
        self.seq += 1;
        self.events.push(Reverse((at, self.seq, id)));
    }

    fn complete(&mut self, id: usize) {
        debug_assert_eq!(self.tasks[id].state, TaskState::Running);
        self.tasks[id].state = TaskState::Done;
        self.tasks[id].completion = Some(self.now);
        self.outstanding -= 1;
        let span = Span {
            resource: self.tasks[id].resource,
            kind: self.tasks[id].kind,
            start: self.tasks[id].service_start,
            end: self.now,
            tag: self.tasks[id].tag,
        };
        self.trace.record(span);

        // Free the resource and start the next queued task.
        if let Some(r) = self.tasks[id].resource {
            self.busy[r.index()] += self.now - self.tasks[id].service_start;
            self.res_state[r.index()].busy = false;
            if let Some(next) = self.res_state[r.index()].queue.pop_front() {
                self.start_service(next, r);
            }
        }

        // Wake dependents.
        let deps = std::mem::take(&mut self.tasks[id].dependents);
        for &d in deps.as_slice() {
            self.tasks[d].remaining_deps -= 1;
            if self.tasks[d].remaining_deps == 0 {
                self.make_ready(d);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn compute(sim: &mut Simulator, r: ResourceId, dur: f64) -> TaskHandle {
        sim.submit(TaskSpec::new(r, dur, TaskKind::Compute))
    }

    #[test]
    fn fifo_contention_serializes() {
        let mut sim = Simulator::new();
        let gpu = sim.add_resource("gpu0.compute");
        let a = compute(&mut sim, gpu, 1.0);
        let b = compute(&mut sim, gpu, 2.0);
        let end = sim.run_until_idle();
        assert_eq!(end.as_secs(), 3.0);
        assert_eq!(sim.completion_time(a).unwrap().as_secs(), 1.0);
        assert_eq!(sim.completion_time(b).unwrap().as_secs(), 3.0);
    }

    #[test]
    fn independent_resources_overlap() {
        let mut sim = Simulator::new();
        let g0 = sim.add_resource("gpu0.compute");
        let g1 = sim.add_resource("gpu1.compute");
        compute(&mut sim, g0, 2.0);
        compute(&mut sim, g1, 2.0);
        assert_eq!(sim.run_until_idle().as_secs(), 2.0);
    }

    #[test]
    fn dependencies_sequence_across_resources() {
        let mut sim = Simulator::new();
        let g0 = sim.add_resource("gpu0.compute");
        let link = sim.add_resource("gpu0.d2h");
        let fwd = compute(&mut sim, g0, 1.0);
        let xfer = sim.submit(TaskSpec::new(link, 0.5, TaskKind::SwapOut).after(fwd));
        assert_eq!(sim.run_until(xfer).as_secs(), 1.5);
    }

    #[test]
    fn sync_node_joins_fan_in() {
        let mut sim = Simulator::new();
        let g0 = sim.add_resource("g0");
        let g1 = sim.add_resource("g1");
        let a = compute(&mut sim, g0, 1.0);
        let b = compute(&mut sim, g1, 3.0);
        let join = sim.submit(TaskSpec::sync(vec![a, b]));
        assert_eq!(sim.run_until(join).as_secs(), 3.0);
    }

    #[test]
    fn run_until_leaves_others_in_flight() {
        let mut sim = Simulator::new();
        let g0 = sim.add_resource("g0");
        let g1 = sim.add_resource("g1");
        let quick = compute(&mut sim, g0, 1.0);
        let slow = compute(&mut sim, g1, 10.0);
        sim.run_until(quick);
        assert_eq!(sim.now().as_secs(), 1.0);
        assert!(!sim.completed(slow));
        assert_eq!(sim.outstanding(), 1);
        sim.run_until_idle();
        assert!(sim.completed(slow));
    }

    #[test]
    fn submit_after_run_resumes_from_now() {
        let mut sim = Simulator::new();
        let g0 = sim.add_resource("g0");
        let a = compute(&mut sim, g0, 2.0);
        sim.run_until(a);
        let b = compute(&mut sim, g0, 1.0);
        assert_eq!(sim.run_until(b).as_secs(), 3.0);
    }

    #[test]
    fn dependency_on_completed_task_is_immediate() {
        let mut sim = Simulator::new();
        let g0 = sim.add_resource("g0");
        let a = compute(&mut sim, g0, 1.0);
        sim.run_until(a);
        let b = sim.submit(TaskSpec::new(g0, 1.0, TaskKind::Compute).after(a));
        assert_eq!(sim.run_until(b).as_secs(), 2.0);
    }

    #[test]
    fn pipeline_fills_and_drains() {
        // 2-stage pipeline, 4 micro-batches of 1s per stage:
        // total = fill(1) + 4 = 5s on the last stage.
        let mut sim = Simulator::new();
        let s0 = sim.add_resource("stage0");
        let s1 = sim.add_resource("stage1");
        let mut last = None;
        let mut prev_s0: Option<TaskHandle> = None;
        for _ in 0..4 {
            let mut spec0 = TaskSpec::new(s0, 1.0, TaskKind::Compute);
            if let Some(p) = prev_s0 {
                spec0 = spec0.after(p);
            }
            let t0 = sim.submit(spec0);
            prev_s0 = Some(t0);
            let t1 = sim.submit(TaskSpec::new(s1, 1.0, TaskKind::Compute).after(t0));
            last = Some(t1);
        }
        assert_eq!(sim.run_until(last.unwrap()).as_secs(), 5.0);
    }

    #[test]
    fn busy_time_accumulates_per_resource() {
        let mut sim = Simulator::without_trace();
        let g0 = sim.add_resource("g0");
        let g1 = sim.add_resource("g1");
        compute(&mut sim, g0, 1.0);
        compute(&mut sim, g0, 2.0);
        compute(&mut sim, g1, 0.5);
        sim.run_until_idle();
        assert!((sim.busy_time(g0) - 3.0).abs() < 1e-12);
        assert!((sim.busy_time(g1) - 0.5).abs() < 1e-12);
        assert!((sim.utilization(g0) - 1.0).abs() < 1e-12);
        assert!((sim.utilization(g1) - 0.5 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn trace_records_service_spans() {
        let mut sim = Simulator::new();
        let g0 = sim.add_resource("g0");
        compute(&mut sim, g0, 1.0);
        compute(&mut sim, g0, 2.0);
        sim.run_until_idle();
        let spans = sim.trace().spans();
        assert_eq!(spans.len(), 2);
        // Second span starts when the first ends (queueing excluded
        // from service time).
        assert_eq!(spans[1].start.as_secs(), 1.0);
        assert!((sim.trace().summary().compute - 3.0).abs() < 1e-12);
    }

    #[test]
    fn determinism_under_ties() {
        // Two equal-time completions wake a shared dependent; order is
        // fixed by sequence numbers, so repeated runs agree exactly.
        let run = || {
            let mut sim = Simulator::new();
            let g0 = sim.add_resource("g0");
            let g1 = sim.add_resource("g1");
            let a = compute(&mut sim, g0, 1.0);
            let b = compute(&mut sim, g1, 1.0);
            let j = sim.submit(TaskSpec::sync(vec![a, b]));
            let c = sim.submit(TaskSpec::new(g0, 0.5, TaskKind::Compute).after(j));
            sim.run_until(c).as_secs()
        };
        assert_eq!(run(), run());
        assert_eq!(run(), 1.5);
    }

    // Note: a genuine deadlock is unconstructible through the public
    // API (dependencies must reference earlier tasks, so the graph is
    // a DAG and every task eventually runs); the `run_until` deadlock
    // assert is purely defensive.

    #[test]
    #[should_panic(expected = "invalid task duration")]
    fn negative_duration_rejected() {
        let mut sim = Simulator::new();
        let g0 = sim.add_resource("g0");
        sim.submit(TaskSpec {
            resource: Some(g0),
            duration: -1.0,
            kind: TaskKind::Compute,
            deps: SmallList::Empty,
            tag: 0,
        });
    }

    #[test]
    #[should_panic(expected = "not-yet-submitted")]
    fn forward_dependency_rejected() {
        let mut sim = Simulator::new();
        let g0 = sim.add_resource("g0");
        let fake = TaskHandle(99);
        sim.submit(TaskSpec::new(g0, 1.0, TaskKind::Compute).after(fake));
    }
}
