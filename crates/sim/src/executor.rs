//! The event-driven task executor.

use crate::resource::{ResourceId, ResourcePool};
use crate::time::SimTime;
use crate::trace::{Span, TaskKind, Trace};
use std::cell::RefCell;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// Handle to a submitted task.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TaskHandle(usize);

impl TaskHandle {
    /// Raw task index.
    pub fn index(self) -> usize {
        self.0
    }
}

/// Small inline list that avoids heap allocation for the 0-, 1- and
/// 2-element cases which dominate engine task graphs (a compute pass
/// depends on at most its predecessor; a transfer on the pass it
/// drains). `Many` falls back to a `Vec` for join nodes.
#[derive(Debug, Clone, Default, PartialEq)]
pub enum SmallList<T> {
    /// No elements.
    #[default]
    Empty,
    /// Exactly one element.
    One(T),
    /// Exactly two elements.
    Two([T; 2]),
    /// Three or more elements.
    Many(Vec<T>),
}

impl<T: Copy> SmallList<T> {
    /// Append an element, spilling to the heap only past two.
    pub fn push(&mut self, v: T) {
        *self = match std::mem::take(self) {
            SmallList::Empty => SmallList::One(v),
            SmallList::One(a) => SmallList::Two([a, v]),
            SmallList::Two([a, b]) => SmallList::Many(vec![a, b, v]),
            SmallList::Many(mut vec) => {
                vec.push(v);
                SmallList::Many(vec)
            }
        }
    }

    /// View as a slice.
    pub fn as_slice(&self) -> &[T] {
        match self {
            SmallList::Empty => &[],
            SmallList::One(a) => std::slice::from_ref(a),
            SmallList::Two(ab) => ab,
            SmallList::Many(vec) => vec,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    /// Whether the list is empty.
    pub fn is_empty(&self) -> bool {
        matches!(self, SmallList::Empty)
    }
}

impl<T: Copy> From<Vec<T>> for SmallList<T> {
    fn from(v: Vec<T>) -> Self {
        match v.len() {
            0 => SmallList::Empty,
            1 => SmallList::One(v[0]),
            2 => SmallList::Two([v[0], v[1]]),
            _ => SmallList::Many(v),
        }
    }
}

impl<T: Copy> FromIterator<T> for SmallList<T> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        let mut out = SmallList::Empty;
        for v in iter {
            out.push(v);
        }
        out
    }
}

/// Description of a task to submit.
#[derive(Debug, Clone)]
pub struct TaskSpec {
    /// Resource to occupy, or `None` for a pure synchronization node
    /// that completes the instant its dependencies do.
    pub resource: Option<ResourceId>,
    /// Service duration in seconds (must be finite and ≥ 0).
    pub duration: f64,
    /// Work category, for tracing.
    pub kind: TaskKind,
    /// Tasks that must complete before this one starts.
    pub deps: SmallList<TaskHandle>,
    /// Free-form tag recorded in the trace (e.g. GPU index).
    pub tag: u64,
}

impl TaskSpec {
    /// A task of `duration` seconds on `resource`.
    pub fn new(resource: ResourceId, duration: f64, kind: TaskKind) -> Self {
        assert!(
            duration.is_finite() && duration >= 0.0,
            "invalid task duration: {duration}"
        );
        TaskSpec {
            resource: Some(resource),
            duration,
            kind,
            deps: SmallList::Empty,
            tag: 0,
        }
    }

    /// A zero-duration synchronization node joining `deps`.
    pub fn sync(deps: Vec<TaskHandle>) -> Self {
        TaskSpec {
            resource: None,
            duration: 0.0,
            kind: TaskKind::Sync,
            deps: deps.into(),
            tag: 0,
        }
    }

    /// Add a dependency.
    pub fn after(mut self, dep: TaskHandle) -> Self {
        self.deps.push(dep);
        self
    }

    /// Add several dependencies.
    pub fn after_all(mut self, deps: &[TaskHandle]) -> Self {
        for &d in deps {
            self.deps.push(d);
        }
        self
    }

    /// Set the trace tag.
    pub fn tag(mut self, tag: u64) -> Self {
        self.tag = tag;
        self
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum TaskState {
    /// Waiting on `remaining` dependencies.
    Waiting,
    /// In its resource's FIFO queue.
    Queued,
    /// Being served.
    Running,
    /// Finished.
    Done,
}

/// Sentinel for "no resource" in [`Task::resource`] (pure sync node).
const NO_RESOURCE: u32 = u32::MAX;

/// One arena entry of the task graph. Indices (resource, dependents)
/// are stored as `u32` and the completion time piggybacks on the
/// state machine (`state == Done`), keeping the record compact enough
/// that a simulation's whole working set stays cache-resident.
#[derive(Debug)]
struct Task {
    duration: f64,
    service_start: SimTime,
    /// Meaningful only once `state == Done`.
    completion: SimTime,
    tag: u64,
    dependents: SmallList<u32>,
    /// Resource index, or [`NO_RESOURCE`].
    resource: u32,
    remaining_deps: u32,
    kind: TaskKind,
    state: TaskState,
}

impl Task {
    #[inline]
    fn done(&self) -> bool {
        self.state == TaskState::Done
    }
}

#[derive(Debug, Default)]
struct ResState {
    busy: bool,
    queue: VecDeque<usize>,
}

/// Completion events are packed into one `u128` min-heap key:
/// `time_bits(63..0 of the f64) << 64 | seq << 32 | task id`. Times
/// are non-negative finite by [`SimTime`]'s construction, so their
/// IEEE-754 bit patterns order identically to the values, and the
/// unique sequence number breaks ties exactly as the previous
/// `(SimTime, u64, usize)` tuple did — but each entry is 16 bytes
/// with a single integer comparison instead of a 32-byte tuple walk.
#[inline]
fn pack_event(at: SimTime, seq: u32, id: usize) -> u128 {
    debug_assert!(id <= u32::MAX as usize, "task id overflows event key");
    ((at.as_secs().to_bits() as u128) << 64) | ((seq as u128) << 32) | id as u128
}

#[inline]
fn unpack_event(key: u128) -> (SimTime, usize) {
    let t = f64::from_bits((key >> 64) as u64);
    (SimTime::from_secs(t), (key & u32::MAX as u128) as usize)
}

/// The discrete-event simulator.
///
/// Holds the resource pool, the task graph, the pending-event heap,
/// and the execution trace. See the crate docs for the model.
///
/// All task/event/trace storage is arena-style (flat vectors indexed
/// by task id) and survives [`Simulator::reset`] with its capacity
/// intact, so a pooled simulator re-runs a comparable workload
/// without touching the allocator.
#[derive(Debug)]
pub struct Simulator {
    pool: ResourcePool,
    res_state: Vec<ResState>,
    tasks: Vec<Task>,
    /// Min-heap of packed (completion time, sequence, task id) keys.
    events: BinaryHeap<Reverse<u128>>,
    seq: u32,
    now: SimTime,
    trace: Trace,
    outstanding: usize,
    /// Accumulated service seconds per resource (kept even when span
    /// tracing is disabled, for utilization reporting).
    busy: Vec<f64>,
}

impl Default for Simulator {
    fn default() -> Self {
        Self::new()
    }
}

impl Simulator {
    /// A simulator with tracing enabled.
    pub fn new() -> Self {
        Simulator {
            pool: ResourcePool::new(),
            res_state: Vec::new(),
            tasks: Vec::new(),
            events: BinaryHeap::new(),
            seq: 0,
            now: SimTime::ZERO,
            trace: Trace::enabled(),
            outstanding: 0,
            busy: Vec::new(),
        }
    }

    /// A simulator that skips span recording (faster for long runs).
    pub fn without_trace() -> Self {
        let mut s = Self::new();
        s.trace = Trace::disabled();
        s
    }

    /// Enable or disable span recording for subsequent tasks.
    pub fn set_tracing(&mut self, enabled: bool) {
        self.trace.set_enabled(enabled);
    }

    /// Rewind to time zero for a fresh run: drops every task, pending
    /// event, recorded span, and busy account, but keeps the
    /// registered resources *and* every buffer's allocated capacity.
    /// A reset simulator is observationally identical to a newly
    /// constructed one with the same resources and tracing mode (the
    /// tracing flag deliberately survives, so reset-in-place loops
    /// keep their configuration; [`ExecutorPool::acquire`] normalizes
    /// it at the pool boundary instead).
    pub fn reset(&mut self) {
        self.tasks.clear();
        self.events.clear();
        self.seq = 0;
        self.now = SimTime::ZERO;
        self.trace.clear();
        self.outstanding = 0;
        for b in &mut self.busy {
            *b = 0.0;
        }
        for rs in &mut self.res_state {
            rs.busy = false;
            rs.queue.clear();
        }
    }

    /// [`Simulator::reset`] plus dropping the registered resources, so
    /// a pooled simulator can be rebuilt for a different cluster
    /// shape. Task/event/trace capacity is still retained.
    pub fn reset_resources(&mut self) {
        self.reset();
        self.pool = ResourcePool::new();
        self.res_state.clear();
        self.busy.clear();
    }

    /// Register a resource.
    pub fn add_resource(&mut self, name: impl Into<String>) -> ResourceId {
        let id = self.pool.add(name);
        self.res_state.push(ResState::default());
        self.busy.push(0.0);
        id
    }

    /// Total service seconds a resource has been busy so far.
    pub fn busy_time(&self, r: ResourceId) -> f64 {
        self.busy[r.index()]
    }

    /// Busy fraction of a resource over the elapsed simulated time
    /// (`0.0` before any time has passed).
    pub fn utilization(&self, r: ResourceId) -> f64 {
        let t = self.now.as_secs();
        if t <= 0.0 {
            0.0
        } else {
            self.busy[r.index()] / t
        }
    }

    /// The resource registry.
    pub fn pool(&self) -> &ResourcePool {
        &self.pool
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The execution trace so far.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Clear the recorded trace (e.g. after a warm-up phase).
    pub fn clear_trace(&mut self) {
        self.trace.clear();
    }

    /// Whether a task has completed.
    pub fn completed(&self, h: TaskHandle) -> bool {
        self.tasks[h.0].done()
    }

    /// Completion time of a task, if it has finished.
    pub fn completion_time(&self, h: TaskHandle) -> Option<SimTime> {
        let t = &self.tasks[h.0];
        t.done().then_some(t.completion)
    }

    /// Number of submitted-but-unfinished tasks.
    pub fn outstanding(&self) -> usize {
        self.outstanding
    }

    /// Submit a task; it becomes ready once its dependencies complete
    /// (immediately, at the current time, if they already have).
    pub fn submit(&mut self, spec: TaskSpec) -> TaskHandle {
        self.submit_parts(spec.resource, spec.duration, spec.kind, spec.tag, spec.deps.as_slice())
    }

    /// Submit a zero-duration synchronization node joining `deps`,
    /// without materializing a [`TaskSpec`] (hot-loop join path: no
    /// dependency list is allocated).
    pub fn submit_sync(&mut self, deps: &[TaskHandle]) -> TaskHandle {
        self.submit_parts(None, 0.0, TaskKind::Sync, 0, deps)
    }

    /// Submit a single task on `resource` with at most one dependency,
    /// without materializing a [`TaskSpec`] (the engines' hot loop:
    /// chained passes and transfers are all 0/1-dependency tasks).
    pub fn submit_on(
        &mut self,
        resource: ResourceId,
        duration: f64,
        kind: TaskKind,
        tag: u64,
        dep: Option<TaskHandle>,
    ) -> TaskHandle {
        let deps: &[TaskHandle] = match &dep {
            Some(d) => std::slice::from_ref(d),
            None => &[],
        };
        self.submit_parts(Some(resource), duration, kind, tag, deps)
    }

    fn submit_parts(
        &mut self,
        resource: Option<ResourceId>,
        duration: f64,
        kind: TaskKind,
        tag: u64,
        deps: &[TaskHandle],
    ) -> TaskHandle {
        assert!(
            duration.is_finite() && duration >= 0.0,
            "invalid task duration: {duration}"
        );
        if let Some(r) = resource {
            assert!(r.index() < self.res_state.len(), "unknown resource {r}");
        }
        let id = self.tasks.len();
        assert!(id < u32::MAX as usize, "task arena exceeds u32 ids");
        let mut remaining = 0;
        for d in deps {
            assert!(d.0 < id, "dependency on not-yet-submitted task");
            if !self.tasks[d.0].done() {
                self.tasks[d.0].dependents.push(id as u32);
                remaining += 1;
            }
        }
        self.tasks.push(Task {
            duration,
            service_start: SimTime::ZERO,
            completion: SimTime::ZERO,
            tag,
            dependents: SmallList::Empty,
            resource: resource.map_or(NO_RESOURCE, |r| r.index() as u32),
            remaining_deps: remaining,
            kind,
            state: TaskState::Waiting,
        });
        self.outstanding += 1;
        if remaining == 0 {
            self.make_ready(id);
        }
        TaskHandle(id)
    }

    /// Run until `h` completes, leaving any other in-flight tasks
    /// pending in the event queue. Returns the completion time.
    ///
    /// Panics if the event queue drains before `h` completes (a
    /// dependency was never satisfiable).
    pub fn run_until(&mut self, h: TaskHandle) -> SimTime {
        while !self.tasks[h.0].done() {
            assert!(
                self.step(),
                "simulation deadlock: task {} unreachable",
                h.0
            );
        }
        self.tasks[h.0].completion
    }

    /// Run until no events remain. Returns the final time.
    pub fn run_until_idle(&mut self) -> SimTime {
        while self.step() {}
        assert_eq!(self.outstanding, 0, "tasks stuck waiting after drain");
        self.now
    }

    /// Advance the clock to `t` while the simulator is idle (no
    /// pending events) — modeling a cluster waiting for the next
    /// request arrival in an online-serving run. A `t` at or before
    /// the current time is a no-op, so callers may pass the next
    /// arrival time unconditionally after a drain.
    pub fn advance_to(&mut self, t: SimTime) {
        assert!(
            self.events.is_empty(),
            "advance_to requires an idle simulator ({} events pending)",
            self.events.len()
        );
        if t > self.now {
            self.now = t;
        }
    }

    /// Process one completion event. Returns `false` when the event
    /// queue is empty.
    fn step(&mut self) -> bool {
        let Some(Reverse(key)) = self.events.pop() else {
            return false;
        };
        let (t, id) = unpack_event(key);
        debug_assert!(t >= self.now, "time went backwards");
        self.now = t;
        self.complete(id);
        true
    }

    fn make_ready(&mut self, id: usize) {
        let r = self.tasks[id].resource;
        if r == NO_RESOURCE {
            // Pure sync: completes at the current instant.
            self.tasks[id].state = TaskState::Running;
            self.tasks[id].service_start = self.now;
            self.schedule_completion(id, self.now);
        } else {
            let rs = &mut self.res_state[r as usize];
            if rs.busy {
                rs.queue.push_back(id);
                self.tasks[id].state = TaskState::Queued;
            } else {
                self.start_service(id, r as usize);
            }
        }
    }

    fn start_service(&mut self, id: usize, r: usize) {
        self.res_state[r].busy = true;
        let task = &mut self.tasks[id];
        task.state = TaskState::Running;
        task.service_start = self.now;
        let end = self.now + task.duration;
        self.schedule_completion(id, end);
    }

    fn schedule_completion(&mut self, id: usize, at: SimTime) {
        self.seq += 1;
        self.events.push(Reverse(pack_event(at, self.seq, id)));
    }

    fn complete(&mut self, id: usize) {
        let task = &mut self.tasks[id];
        debug_assert_eq!(task.state, TaskState::Running);
        task.state = TaskState::Done;
        task.completion = self.now;
        self.outstanding -= 1;
        let (resource, service_start) = (task.resource, task.service_start);
        if self.trace.is_enabled() {
            let span = Span {
                resource: (resource != NO_RESOURCE)
                    .then(|| self.pool.id(resource as usize)),
                kind: task.kind,
                start: service_start,
                end: self.now,
                tag: task.tag,
            };
            self.trace.record(span);
        }

        // Free the resource and start the next queued task.
        if resource != NO_RESOURCE {
            let r = resource as usize;
            self.busy[r] += self.now - service_start;
            self.res_state[r].busy = false;
            if let Some(next) = self.res_state[r].queue.pop_front() {
                self.start_service(next, r);
            }
        }

        // Wake dependents; the single-successor case (linear chains,
        // the dominant graph shape) goes straight to `wake` with no
        // slice round-trip.
        match std::mem::take(&mut self.tasks[id].dependents) {
            SmallList::Empty => {}
            SmallList::One(d) => self.wake(d as usize),
            SmallList::Two([a, b]) => {
                self.wake(a as usize);
                self.wake(b as usize);
            }
            SmallList::Many(v) => {
                for &d in &v {
                    self.wake(d as usize);
                }
            }
        }
    }

    #[inline]
    fn wake(&mut self, d: usize) {
        self.tasks[d].remaining_deps -= 1;
        if self.tasks[d].remaining_deps == 0 {
            self.make_ready(d);
        }
    }
}

/// A reuse pool of [`Simulator`] instances: checking one out and
/// returning it lets repeated simulations reuse the task arena, event
/// heap, resource queues, and trace buffers instead of reallocating
/// them per run. Pool membership is bounded; surplus releases simply
/// drop the simulator.
#[derive(Debug, Default)]
pub struct ExecutorPool {
    free: Vec<Simulator>,
}

impl ExecutorPool {
    /// Most simulators retained per pool; beyond this, releases drop.
    pub const MAX_POOLED: usize = 4;

    /// An empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Check out a simulator: a [`Simulator::reset`] pooled instance
    /// when one is available (its resources are still registered),
    /// else a fresh one. Tracing is normalized to enabled — matching
    /// [`Simulator::new`] — so pool hits and misses are observably
    /// identical regardless of how the released instance was
    /// configured.
    pub fn acquire(&mut self) -> Simulator {
        match self.free.pop() {
            Some(mut sim) => {
                sim.reset();
                sim.set_tracing(true);
                sim
            }
            None => Simulator::new(),
        }
    }

    /// Return a simulator to the pool for reuse.
    pub fn release(&mut self, sim: Simulator) {
        if self.free.len() < Self::MAX_POOLED {
            self.free.push(sim);
        }
    }

    /// Number of simulators currently pooled.
    pub fn len(&self) -> usize {
        self.free.len()
    }

    /// Whether the pool holds no simulators.
    pub fn is_empty(&self) -> bool {
        self.free.is_empty()
    }
}

thread_local! {
    /// Per-thread executor pool: each sweep worker reuses its own
    /// simulators with no locking, and the pool dies with the thread.
    static THREAD_POOL: RefCell<ExecutorPool> = RefCell::new(ExecutorPool::new());
}

/// Check a simulator out of this thread's [`ExecutorPool`] (a fresh
/// instance during thread teardown, when the pool is already gone).
pub fn acquire_pooled() -> Simulator {
    THREAD_POOL
        .try_with(|p| p.borrow_mut().acquire())
        .unwrap_or_else(|_| Simulator::new())
}

/// Return a simulator to this thread's [`ExecutorPool`] (dropped
/// during thread teardown, when the pool is already gone).
pub fn release_pooled(sim: Simulator) {
    let _ = THREAD_POOL.try_with(|p| p.borrow_mut().release(sim));
}

#[cfg(test)]
mod tests {
    use super::*;

    fn compute(sim: &mut Simulator, r: ResourceId, dur: f64) -> TaskHandle {
        sim.submit(TaskSpec::new(r, dur, TaskKind::Compute))
    }

    #[test]
    fn fifo_contention_serializes() {
        let mut sim = Simulator::new();
        let gpu = sim.add_resource("gpu0.compute");
        let a = compute(&mut sim, gpu, 1.0);
        let b = compute(&mut sim, gpu, 2.0);
        let end = sim.run_until_idle();
        assert_eq!(end.as_secs(), 3.0);
        assert_eq!(sim.completion_time(a).unwrap().as_secs(), 1.0);
        assert_eq!(sim.completion_time(b).unwrap().as_secs(), 3.0);
    }

    #[test]
    fn independent_resources_overlap() {
        let mut sim = Simulator::new();
        let g0 = sim.add_resource("gpu0.compute");
        let g1 = sim.add_resource("gpu1.compute");
        compute(&mut sim, g0, 2.0);
        compute(&mut sim, g1, 2.0);
        assert_eq!(sim.run_until_idle().as_secs(), 2.0);
    }

    #[test]
    fn dependencies_sequence_across_resources() {
        let mut sim = Simulator::new();
        let g0 = sim.add_resource("gpu0.compute");
        let link = sim.add_resource("gpu0.d2h");
        let fwd = compute(&mut sim, g0, 1.0);
        let xfer = sim.submit(TaskSpec::new(link, 0.5, TaskKind::SwapOut).after(fwd));
        assert_eq!(sim.run_until(xfer).as_secs(), 1.5);
    }

    #[test]
    fn sync_node_joins_fan_in() {
        let mut sim = Simulator::new();
        let g0 = sim.add_resource("g0");
        let g1 = sim.add_resource("g1");
        let a = compute(&mut sim, g0, 1.0);
        let b = compute(&mut sim, g1, 3.0);
        let join = sim.submit(TaskSpec::sync(vec![a, b]));
        assert_eq!(sim.run_until(join).as_secs(), 3.0);
    }

    #[test]
    fn run_until_leaves_others_in_flight() {
        let mut sim = Simulator::new();
        let g0 = sim.add_resource("g0");
        let g1 = sim.add_resource("g1");
        let quick = compute(&mut sim, g0, 1.0);
        let slow = compute(&mut sim, g1, 10.0);
        sim.run_until(quick);
        assert_eq!(sim.now().as_secs(), 1.0);
        assert!(!sim.completed(slow));
        assert_eq!(sim.outstanding(), 1);
        sim.run_until_idle();
        assert!(sim.completed(slow));
    }

    #[test]
    fn advance_to_moves_idle_clock_forward_only() {
        let mut sim = Simulator::new();
        let g0 = sim.add_resource("g0");
        let a = compute(&mut sim, g0, 1.0);
        sim.run_until(a);
        sim.advance_to(SimTime::from_secs(5.0));
        assert_eq!(sim.now().as_secs(), 5.0);
        // Earlier targets are a no-op, never a rewind.
        sim.advance_to(SimTime::from_secs(2.0));
        assert_eq!(sim.now().as_secs(), 5.0);
        // Work submitted after the idle gap starts at the new time.
        let b = compute(&mut sim, g0, 1.0);
        assert_eq!(sim.run_until(b).as_secs(), 6.0);
        // Idle time counts against utilization.
        assert!((sim.utilization(g0) - 2.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "requires an idle simulator")]
    fn advance_to_rejects_pending_events() {
        let mut sim = Simulator::new();
        let g0 = sim.add_resource("g0");
        compute(&mut sim, g0, 1.0);
        sim.advance_to(SimTime::from_secs(5.0));
    }

    #[test]
    fn submit_after_run_resumes_from_now() {
        let mut sim = Simulator::new();
        let g0 = sim.add_resource("g0");
        let a = compute(&mut sim, g0, 2.0);
        sim.run_until(a);
        let b = compute(&mut sim, g0, 1.0);
        assert_eq!(sim.run_until(b).as_secs(), 3.0);
    }

    #[test]
    fn dependency_on_completed_task_is_immediate() {
        let mut sim = Simulator::new();
        let g0 = sim.add_resource("g0");
        let a = compute(&mut sim, g0, 1.0);
        sim.run_until(a);
        let b = sim.submit(TaskSpec::new(g0, 1.0, TaskKind::Compute).after(a));
        assert_eq!(sim.run_until(b).as_secs(), 2.0);
    }

    #[test]
    fn pipeline_fills_and_drains() {
        // 2-stage pipeline, 4 micro-batches of 1s per stage:
        // total = fill(1) + 4 = 5s on the last stage.
        let mut sim = Simulator::new();
        let s0 = sim.add_resource("stage0");
        let s1 = sim.add_resource("stage1");
        let mut last = None;
        let mut prev_s0: Option<TaskHandle> = None;
        for _ in 0..4 {
            let mut spec0 = TaskSpec::new(s0, 1.0, TaskKind::Compute);
            if let Some(p) = prev_s0 {
                spec0 = spec0.after(p);
            }
            let t0 = sim.submit(spec0);
            prev_s0 = Some(t0);
            let t1 = sim.submit(TaskSpec::new(s1, 1.0, TaskKind::Compute).after(t0));
            last = Some(t1);
        }
        assert_eq!(sim.run_until(last.unwrap()).as_secs(), 5.0);
    }

    #[test]
    fn busy_time_accumulates_per_resource() {
        let mut sim = Simulator::without_trace();
        let g0 = sim.add_resource("g0");
        let g1 = sim.add_resource("g1");
        compute(&mut sim, g0, 1.0);
        compute(&mut sim, g0, 2.0);
        compute(&mut sim, g1, 0.5);
        sim.run_until_idle();
        assert!((sim.busy_time(g0) - 3.0).abs() < 1e-12);
        assert!((sim.busy_time(g1) - 0.5).abs() < 1e-12);
        assert!((sim.utilization(g0) - 1.0).abs() < 1e-12);
        assert!((sim.utilization(g1) - 0.5 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn trace_records_service_spans() {
        let mut sim = Simulator::new();
        let g0 = sim.add_resource("g0");
        compute(&mut sim, g0, 1.0);
        compute(&mut sim, g0, 2.0);
        sim.run_until_idle();
        let spans = sim.trace().spans();
        assert_eq!(spans.len(), 2);
        // Second span starts when the first ends (queueing excluded
        // from service time).
        assert_eq!(spans[1].start.as_secs(), 1.0);
        assert!((sim.trace().summary().compute - 3.0).abs() < 1e-12);
    }

    #[test]
    fn determinism_under_ties() {
        // Two equal-time completions wake a shared dependent; order is
        // fixed by sequence numbers, so repeated runs agree exactly.
        let run = || {
            let mut sim = Simulator::new();
            let g0 = sim.add_resource("g0");
            let g1 = sim.add_resource("g1");
            let a = compute(&mut sim, g0, 1.0);
            let b = compute(&mut sim, g1, 1.0);
            let j = sim.submit(TaskSpec::sync(vec![a, b]));
            let c = sim.submit(TaskSpec::new(g0, 0.5, TaskKind::Compute).after(j));
            sim.run_until(c).as_secs()
        };
        assert_eq!(run(), run());
        assert_eq!(run(), 1.5);
    }

    // Note: a genuine deadlock is unconstructible through the public
    // API (dependencies must reference earlier tasks, so the graph is
    // a DAG and every task eventually runs); the `run_until` deadlock
    // assert is purely defensive.

    #[test]
    #[should_panic(expected = "invalid task duration")]
    fn negative_duration_rejected() {
        let mut sim = Simulator::new();
        let g0 = sim.add_resource("g0");
        sim.submit(TaskSpec {
            resource: Some(g0),
            duration: -1.0,
            kind: TaskKind::Compute,
            deps: SmallList::Empty,
            tag: 0,
        });
    }

    #[test]
    #[should_panic(expected = "not-yet-submitted")]
    fn forward_dependency_rejected() {
        let mut sim = Simulator::new();
        let g0 = sim.add_resource("g0");
        let fake = TaskHandle(99);
        sim.submit(TaskSpec::new(g0, 1.0, TaskKind::Compute).after(fake));
    }

    #[test]
    fn packed_event_keys_order_like_tuples() {
        let cases = [
            (0.0, 1, 2),
            (0.0, 2, 1),
            (1.5, 1, 0),
            (1.5, 1, 3),
            (2.0, 7, 9),
            (1e-12, 3, 4),
            (1e9, 4, 5),
        ];
        for &(ta, sa, ia) in &cases {
            for &(tb, sb, ib) in &cases {
                let tuple_ord = (SimTime::from_secs(ta), sa, ia)
                    .cmp(&(SimTime::from_secs(tb), sb, ib));
                let packed_ord = pack_event(SimTime::from_secs(ta), sa, ia)
                    .cmp(&pack_event(SimTime::from_secs(tb), sb, ib));
                assert_eq!(tuple_ord, packed_ord, "({ta},{sa},{ia}) vs ({tb},{sb},{ib})");
            }
        }
        let (t, id) = unpack_event(pack_event(SimTime::from_secs(3.25), 17, 42));
        assert_eq!(t.as_secs(), 3.25);
        assert_eq!(id, 42);
    }

    #[test]
    fn submit_sync_matches_taskspec_sync() {
        let mut sim = Simulator::new();
        let g0 = sim.add_resource("g0");
        let g1 = sim.add_resource("g1");
        let a = compute(&mut sim, g0, 1.0);
        let b = compute(&mut sim, g1, 3.0);
        let join = sim.submit_sync(&[a, b]);
        assert_eq!(sim.run_until(join).as_secs(), 3.0);
    }

    /// A reset simulator replays a workload to the exact same trace
    /// and final time as its first run (and as a fresh instance).
    #[test]
    fn reset_replays_identically() {
        let workload = |sim: &mut Simulator, g0: ResourceId, g1: ResourceId| {
            let a = sim.submit(TaskSpec::new(g0, 1.0, TaskKind::Compute));
            let b = sim.submit(TaskSpec::new(g1, 0.5, TaskKind::SwapOut).after(a));
            let c = sim.submit(TaskSpec::new(g0, 2.0, TaskKind::Compute));
            let j = sim.submit(TaskSpec::sync(vec![b, c]));
            sim.run_until(j);
            sim.run_until_idle()
        };
        let mut sim = Simulator::new();
        let g0 = sim.add_resource("g0");
        let g1 = sim.add_resource("g1");
        let end1 = workload(&mut sim, g0, g1);
        let spans1: Vec<Span> = sim.trace().spans().to_vec();
        let busy1 = sim.busy_time(g0);

        sim.reset();
        assert_eq!(sim.now(), SimTime::ZERO);
        assert_eq!(sim.outstanding(), 0);
        assert_eq!(sim.busy_time(g0), 0.0);
        assert!(sim.trace().spans().is_empty());
        assert_eq!(sim.pool().len(), 2, "resources survive reset");

        let end2 = workload(&mut sim, g0, g1);
        assert_eq!(end1, end2);
        assert_eq!(spans1, sim.trace().spans());
        assert_eq!(busy1, sim.busy_time(g0));
    }

    #[test]
    fn reset_resources_allows_rebuilding_a_different_shape() {
        let mut sim = Simulator::new();
        let a = sim.add_resource("a");
        sim.add_resource("b");
        compute(&mut sim, a, 1.0);
        sim.run_until_idle();
        sim.reset_resources();
        assert!(sim.pool().is_empty());
        let r = sim.add_resource("only");
        compute(&mut sim, r, 2.0);
        assert_eq!(sim.run_until_idle().as_secs(), 2.0);
    }

    #[test]
    fn pool_reuses_instances_and_bounds_retention() {
        let mut pool = ExecutorPool::new();
        let mut sim = pool.acquire();
        let g = sim.add_resource("g");
        compute(&mut sim, g, 1.0);
        sim.run_until_idle();
        pool.release(sim);
        assert_eq!(pool.len(), 1);

        // The reused instance comes back reset, resources intact.
        let sim = pool.acquire();
        assert!(pool.is_empty());
        assert_eq!(sim.now(), SimTime::ZERO);
        assert_eq!(sim.pool().len(), 1);
        pool.release(sim);

        for _ in 0..2 * ExecutorPool::MAX_POOLED {
            pool.release(Simulator::new());
        }
        assert_eq!(pool.len(), ExecutorPool::MAX_POOLED);
    }

    /// Acquire normalizes tracing, so a pool hit behaves exactly like
    /// `Simulator::new()` no matter how the released instance was
    /// configured.
    #[test]
    fn pool_acquire_normalizes_tracing() {
        let mut pool = ExecutorPool::new();
        pool.release(Simulator::without_trace());
        let sim = pool.acquire();
        assert!(sim.trace().is_enabled(), "pool hit must match Simulator::new()");
    }

    #[test]
    fn tracing_toggle_applies_to_subsequent_tasks() {
        let mut sim = Simulator::without_trace();
        let g = sim.add_resource("g");
        compute(&mut sim, g, 1.0);
        sim.run_until_idle();
        assert!(sim.trace().spans().is_empty());
        sim.reset();
        sim.set_tracing(true);
        compute(&mut sim, g, 1.0);
        sim.run_until_idle();
        assert_eq!(sim.trace().spans().len(), 1);
    }
}
