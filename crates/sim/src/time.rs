//! Simulation time: `f64` seconds with a total order.

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time, in seconds since simulation start.
///
/// Wraps `f64` and provides `Ord` (NaN is forbidden by construction:
/// all constructors assert finiteness), so times can key ordered
/// collections like the event heap.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimTime(f64);

impl SimTime {
    /// Time zero.
    pub const ZERO: SimTime = SimTime(0.0);

    /// Construct from seconds. Panics on NaN/∞ or negative values.
    pub fn from_secs(s: f64) -> Self {
        assert!(s.is_finite() && s >= 0.0, "invalid SimTime: {s}");
        SimTime(s)
    }

    /// Seconds since simulation start.
    pub fn as_secs(self) -> f64 {
        self.0
    }

    /// The later of two times.
    pub fn max(self, other: SimTime) -> SimTime {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }
}

impl Eq for SimTime {}

impl PartialOrd for SimTime {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for SimTime {
    fn cmp(&self, other: &Self) -> Ordering {
        // Finiteness is guaranteed by construction.
        self.0.partial_cmp(&other.0).expect("SimTime is never NaN")
    }
}

impl Add<f64> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: f64) -> SimTime {
        SimTime::from_secs(self.0 + rhs)
    }
}

impl AddAssign<f64> for SimTime {
    fn add_assign(&mut self, rhs: f64) {
        *self = *self + rhs;
    }
}

impl Sub for SimTime {
    type Output = f64;
    fn sub(self, rhs: SimTime) -> f64 {
        self.0 - rhs.0
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_and_arithmetic() {
        let a = SimTime::from_secs(1.0);
        let b = SimTime::from_secs(2.5);
        assert!(a < b);
        assert_eq!(a.max(b), b);
        assert!((b - a - 1.5).abs() < 1e-12);
        assert_eq!(a + 1.5, b);
    }

    #[test]
    #[should_panic(expected = "invalid SimTime")]
    fn nan_rejected() {
        SimTime::from_secs(f64::NAN);
    }

    #[test]
    #[should_panic(expected = "invalid SimTime")]
    fn negative_rejected() {
        SimTime::from_secs(-1.0);
    }

    #[test]
    fn zero_is_origin() {
        assert_eq!(SimTime::ZERO.as_secs(), 0.0);
        assert_eq!(SimTime::ZERO + 0.0, SimTime::ZERO);
    }
}
