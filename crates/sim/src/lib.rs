//! Discrete-event simulation engine.
//!
//! This crate is the stand-in for the physical GPU cluster: a
//! deterministic discrete-event simulator with FIFO-serving
//! *resources* (a GPU's compute engine, each direction of its PCIe
//! link, the host staging engine, the collective fabric) on which
//! *tasks* of known duration execute. Engines submit tasks with
//! dependencies; the simulator advances virtual time, resolves
//! contention, and records a trace from which the paper's time
//! breakdowns (Figures 1 and 12) are derived.
//!
//! Design notes:
//!
//! * Time is `f64` seconds wrapped in [`SimTime`] for total ordering.
//! * Determinism: events at equal times are served in submission
//!   order (a monotonically increasing sequence number breaks ties),
//!   so simulations are exactly reproducible.
//! * The simulator knows nothing about LLMs; durations are computed by
//!   callers (`seesaw-roofline`, the engines) from the hardware cost
//!   models.

pub mod events;
pub mod executor;
pub mod resource;
pub mod time;
pub mod trace;

pub use events::EventQueue;
pub use executor::{acquire_pooled, release_pooled, ExecutorPool, SmallList, Simulator, TaskHandle, TaskSpec};
pub use resource::{ResourceId, ResourcePool};
pub use time::SimTime;
pub use trace::{Span, TaskKind, Trace, TraceSummary};
