//! Execution traces and the per-category time summaries behind the
//! paper's breakdown figures (Fig 1, Fig 12).

use crate::resource::ResourceId;
use crate::time::SimTime;
use serde::{Deserialize, Serialize};

/// Category of work a task represents. These map onto the breakdown
/// series in the paper's figures:
///
/// * "compute"          ← [`TaskKind::Compute`]
/// * "communication"    ← [`TaskKind::AllReduce`] + [`TaskKind::P2p`]
/// * "weight transfer"  ← [`TaskKind::WeightLoad`] (HBM streaming
///   share is folded into compute by the roofline, matching how the
///   paper measures; *re-sharding* weight reloads over PCIe are
///   [`TaskKind::ReshardLoad`])
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TaskKind {
    /// On-GPU kernel execution (GEMM / attention), including its HBM
    /// weight streaming component.
    Compute,
    /// Tensor-parallel all-reduce.
    AllReduce,
    /// Pipeline-parallel point-to-point activation send.
    P2p,
    /// The decode-side weight-streaming share of a forward pass,
    /// reported separately so breakdowns can show "weight transfer".
    WeightLoad,
    /// Weight shard reload from host memory during re-sharding.
    ReshardLoad,
    /// KV-cache swap-out (GPU → pinned staging).
    SwapOut,
    /// KV-cache swap-in (pinned staging → GPU).
    SwapIn,
    /// Host-side pinned↔shared-memory staging copy.
    StagingCopy,
    /// Fixed scheduling / engine overhead.
    Overhead,
    /// Pure synchronization (zero-duration join nodes).
    Sync,
}

impl TaskKind {
    /// The breakdown bucket used in figures.
    pub fn bucket(self) -> &'static str {
        match self {
            TaskKind::Compute => "compute",
            TaskKind::AllReduce | TaskKind::P2p => "communication",
            TaskKind::WeightLoad => "weight_transfer",
            TaskKind::ReshardLoad => "reshard",
            TaskKind::SwapOut | TaskKind::SwapIn | TaskKind::StagingCopy => "kv_swap",
            TaskKind::Overhead => "other",
            TaskKind::Sync => "sync",
        }
    }
}

/// One executed task's footprint in the trace.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Span {
    /// Resource the task ran on (`None` for pure sync nodes).
    pub resource: Option<ResourceId>,
    /// Work category.
    pub kind: TaskKind,
    /// Start of service.
    pub start: SimTime,
    /// End of service.
    pub end: SimTime,
    /// Caller-supplied tag (e.g. GPU index or stage id).
    pub tag: u64,
}

impl Span {
    /// Service duration in seconds.
    pub fn duration(&self) -> f64 {
        self.end - self.start
    }
}

/// An append-only log of executed spans.
#[derive(Debug, Default, Clone, Serialize, Deserialize)]
pub struct Trace {
    spans: Vec<Span>,
    enabled: bool,
}

impl Trace {
    /// A recording trace.
    pub fn enabled() -> Self {
        Trace {
            spans: Vec::new(),
            enabled: true,
        }
    }

    /// A no-op trace (skips recording; engines use this for long
    /// throughput runs where only the clock matters).
    pub fn disabled() -> Self {
        Trace {
            spans: Vec::new(),
            enabled: false,
        }
    }

    /// Record a span (no-op when disabled).
    pub fn record(&mut self, span: Span) {
        if self.enabled {
            self.spans.push(span);
        }
    }

    /// Turn recording on or off (already-recorded spans are kept).
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    /// Whether spans are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// All recorded spans.
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// Clear recorded spans, keeping the enabled flag.
    pub fn clear(&mut self) {
        self.spans.clear();
    }

    /// Aggregate busy seconds per [`TaskKind`].
    pub fn summary(&self) -> TraceSummary {
        let mut s = TraceSummary::default();
        for span in &self.spans {
            s.add(span.kind, span.duration());
        }
        s
    }

    /// Aggregate busy seconds per kind, restricted to spans whose tag
    /// satisfies `pred` (e.g. a single GPU).
    pub fn summary_filtered(&self, pred: impl Fn(&Span) -> bool) -> TraceSummary {
        let mut s = TraceSummary::default();
        for span in self.spans.iter().filter(|sp| pred(sp)) {
            s.add(span.kind, span.duration());
        }
        s
    }
}

/// Busy time per category (seconds).
#[derive(Debug, Default, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceSummary {
    /// GEMM/attention kernel time.
    pub compute: f64,
    /// All-reduce + P2P time.
    pub communication: f64,
    /// Decode weight-streaming time.
    pub weight_transfer: f64,
    /// Re-sharding weight reload time.
    pub reshard: f64,
    /// KV swap traffic time.
    pub kv_swap: f64,
    /// Scheduling and fixed overheads.
    pub other: f64,
}

impl TraceSummary {
    fn add(&mut self, kind: TaskKind, secs: f64) {
        match kind {
            TaskKind::Compute => self.compute += secs,
            TaskKind::AllReduce | TaskKind::P2p => self.communication += secs,
            TaskKind::WeightLoad => self.weight_transfer += secs,
            TaskKind::ReshardLoad => self.reshard += secs,
            TaskKind::SwapOut | TaskKind::SwapIn | TaskKind::StagingCopy => {
                self.kv_swap += secs
            }
            TaskKind::Overhead => self.other += secs,
            TaskKind::Sync => {}
        }
    }

    /// Total categorized busy time.
    pub fn total(&self) -> f64 {
        self.compute
            + self.communication
            + self.weight_transfer
            + self.reshard
            + self.kv_swap
            + self.other
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(kind: TaskKind, start: f64, end: f64) -> Span {
        Span {
            resource: None,
            kind,
            start: SimTime::from_secs(start),
            end: SimTime::from_secs(end),
            tag: 0,
        }
    }

    #[test]
    fn summary_buckets() {
        let mut t = Trace::enabled();
        t.record(span(TaskKind::Compute, 0.0, 1.0));
        t.record(span(TaskKind::AllReduce, 1.0, 1.5));
        t.record(span(TaskKind::P2p, 1.5, 1.6));
        t.record(span(TaskKind::WeightLoad, 1.6, 2.0));
        t.record(span(TaskKind::SwapOut, 2.0, 2.2));
        t.record(span(TaskKind::Sync, 2.2, 2.2));
        let s = t.summary();
        assert!((s.compute - 1.0).abs() < 1e-12);
        assert!((s.communication - 0.6).abs() < 1e-9);
        assert!((s.weight_transfer - 0.4).abs() < 1e-9);
        assert!((s.kv_swap - 0.2).abs() < 1e-9);
        assert!((s.total() - 2.2).abs() < 1e-9);
    }

    #[test]
    fn disabled_trace_records_nothing() {
        let mut t = Trace::disabled();
        t.record(span(TaskKind::Compute, 0.0, 5.0));
        assert!(t.spans().is_empty());
        assert_eq!(t.summary().total(), 0.0);
    }

    #[test]
    fn filtered_summary_uses_tags() {
        let mut t = Trace::enabled();
        let mut s0 = span(TaskKind::Compute, 0.0, 1.0);
        s0.tag = 0;
        let mut s1 = span(TaskKind::Compute, 0.0, 2.0);
        s1.tag = 1;
        t.record(s0);
        t.record(s1);
        let only1 = t.summary_filtered(|sp| sp.tag == 1);
        assert!((only1.compute - 2.0).abs() < 1e-12);
    }

    #[test]
    fn kind_buckets_are_stable_names() {
        assert_eq!(TaskKind::Compute.bucket(), "compute");
        assert_eq!(TaskKind::AllReduce.bucket(), "communication");
        assert_eq!(TaskKind::WeightLoad.bucket(), "weight_transfer");
        assert_eq!(TaskKind::ReshardLoad.bucket(), "reshard");
    }
}
