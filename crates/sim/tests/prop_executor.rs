//! Property tests for the discrete-event executor: for arbitrary task
//! DAGs, service must respect resources (no overlap on one resource),
//! dependencies, and work conservation.

use proptest::prelude::*;
use seesaw_sim::{ExecutorPool, Simulator, TaskKind, TaskSpec};

/// A randomly generated task: resource index, duration, and a set of
/// earlier tasks to depend on (encoded as offsets).
#[derive(Debug, Clone)]
struct GenTask {
    resource: usize,
    duration: f64,
    dep_offsets: Vec<usize>,
}

fn tasks_strategy(n_res: usize) -> impl Strategy<Value = Vec<GenTask>> {
    prop::collection::vec(
        (
            0..n_res,
            0.001f64..2.0,
            prop::collection::vec(1usize..8, 0..3),
        ),
        1..40,
    )
    .prop_map(|v| {
        v.into_iter()
            .map(|(resource, duration, dep_offsets)| GenTask {
                resource,
                duration,
                dep_offsets,
            })
            .collect()
    })
}

fn build_and_run(tasks: &[GenTask], n_res: usize) -> Simulator {
    let mut sim = Simulator::new();
    (0..n_res).for_each(|i| {
        sim.add_resource(format!("r{i}"));
    });
    run_workload(&mut sim, tasks);
    sim
}

/// Drive `tasks` through an already-resourced simulator.
fn run_workload(sim: &mut Simulator, tasks: &[GenTask]) {
    let mut handles = Vec::new();
    for (i, t) in tasks.iter().enumerate() {
        let r = sim.pool().id(t.resource);
        let mut spec = TaskSpec::new(r, t.duration, TaskKind::Compute);
        for &off in &t.dep_offsets {
            if off <= i && i > 0 {
                let dep = handles[i - off.min(i)];
                spec = spec.after(dep);
            }
        }
        handles.push(sim.submit(spec));
    }
    sim.run_until_idle();
}

fn assert_same_outcome(a: &Simulator, b: &Simulator) {
    assert_eq!(a.now(), b.now(), "final SimTime must match");
    assert_eq!(a.trace().spans().len(), b.trace().spans().len());
    for (x, y) in a.trace().spans().iter().zip(b.trace().spans()) {
        assert_eq!(x.resource, y.resource);
        assert_eq!(x.kind, y.kind);
        assert_eq!(x.start, y.start);
        assert_eq!(x.end, y.end);
        assert_eq!(x.tag, y.tag);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Makespan bounds: at least the busiest resource's total work,
    /// at most the sum of all durations (plus epsilon).
    #[test]
    fn makespan_within_bounds(tasks in tasks_strategy(3)) {
        let sim = build_and_run(&tasks, 3);
        let total: f64 = tasks.iter().map(|t| t.duration).sum();
        let mut per_res = [0.0f64; 3];
        for t in &tasks {
            per_res[t.resource] += t.duration;
        }
        let busiest = per_res.iter().cloned().fold(0.0, f64::max);
        let end = sim.now().as_secs();
        prop_assert!(end >= busiest - 1e-9, "end {end} < busiest {busiest}");
        prop_assert!(end <= total + 1e-9, "end {end} > total {total}");
    }

    /// No two spans on the same resource overlap.
    #[test]
    fn resources_serve_one_task_at_a_time(tasks in tasks_strategy(2)) {
        let sim = build_and_run(&tasks, 2);
        for r in 0..2 {
            let mut spans: Vec<(f64, f64)> = sim
                .trace()
                .spans()
                .iter()
                .filter(|s| s.resource.map(|id| id.index()) == Some(r))
                .map(|s| (s.start.as_secs(), s.end.as_secs()))
                .collect();
            spans.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
            for w in spans.windows(2) {
                prop_assert!(
                    w[1].0 >= w[0].1 - 1e-9,
                    "overlap: {:?} then {:?}",
                    w[0],
                    w[1]
                );
            }
        }
    }

    /// Work conservation: the trace's total busy time equals the sum
    /// of durations.
    #[test]
    fn work_is_conserved(tasks in tasks_strategy(3)) {
        let sim = build_and_run(&tasks, 3);
        let total: f64 = tasks.iter().map(|t| t.duration).sum();
        let busy = sim.trace().summary().total();
        prop_assert!((busy - total).abs() < 1e-6, "busy {busy} vs total {total}");
    }

    /// Replays are bit-identical (determinism).
    #[test]
    fn deterministic_replay(tasks in tasks_strategy(3)) {
        let a = build_and_run(&tasks, 3);
        let b = build_and_run(&tasks, 3);
        prop_assert_eq!(a.now(), b.now());
        prop_assert_eq!(a.trace().spans().len(), b.trace().spans().len());
        for (x, y) in a.trace().spans().iter().zip(b.trace().spans()) {
            prop_assert_eq!(x.start, y.start);
            prop_assert_eq!(x.end, y.end);
        }
    }

    /// A pooled + reset executor replays arbitrary task graphs to the
    /// exact same trace and final time as a freshly constructed one —
    /// including back-to-back different graphs through the same
    /// pooled instance (the sweep-worker reuse pattern).
    #[test]
    fn pooled_reset_matches_fresh(
        first in tasks_strategy(3),
        second in tasks_strategy(3),
    ) {
        let mut pool = ExecutorPool::new();

        // Dirty a simulator with the first graph, return it.
        let mut sim = pool.acquire();
        (0..3).for_each(|i| { sim.add_resource(format!("r{i}")); });
        run_workload(&mut sim, &first);
        pool.release(sim);

        // The reused (reset) instance must replay the second graph
        // exactly like a fresh simulator does.
        let mut reused = pool.acquire();
        prop_assert_eq!(reused.pool().len(), 3, "resources survive pooling");
        run_workload(&mut reused, &second);
        let fresh = build_and_run(&second, 3);
        assert_same_outcome(&reused, &fresh);
    }
}
