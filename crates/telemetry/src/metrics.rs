//! The metrics registry: counters, gauges, and histograms whose
//! snapshots are deterministic (name-sorted via `BTreeMap`) and merge
//! associatively — two registries filled on different shards combine
//! into the same snapshot as one registry filled serially.

use std::collections::BTreeMap;

/// Log-spaced histogram bounds: powers of two from 1 ms up to ~4096 s,
/// a span that covers TTFT, e2e latency, and queue waits alike.
/// Fixed bounds are what make histograms mergeable bucket-wise.
const HIST_BOUNDS: [f64; 23] = [
    0.001, 0.002, 0.004, 0.008, 0.016, 0.032, 0.064, 0.128, 0.256, 0.512, 1.0, 2.0, 4.0, 8.0,
    16.0, 32.0, 64.0, 128.0, 256.0, 512.0, 1024.0, 2048.0, 4096.0,
];

/// One histogram: fixed log-spaced buckets plus sum/count/max.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Count per bucket; `counts[i]` holds values `<= HIST_BOUNDS[i]`,
    /// with one final overflow bucket.
    pub counts: Vec<u64>,
    /// Sum of observed values.
    pub sum: f64,
    /// Number of observations.
    pub count: u64,
    /// Largest observed value (0.0 when empty).
    pub max: f64,
}

impl HistogramSnapshot {
    fn new() -> Self {
        HistogramSnapshot { counts: vec![0; HIST_BOUNDS.len() + 1], sum: 0.0, count: 0, max: 0.0 }
    }

    fn observe(&mut self, v: f64) {
        let idx = HIST_BOUNDS.iter().position(|&b| v <= b).unwrap_or(HIST_BOUNDS.len());
        self.counts[idx] += 1;
        self.sum += v;
        self.count += 1;
        if v > self.max {
            self.max = v;
        }
    }

    fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.sum += other.sum;
        self.count += other.count;
        if other.max > self.max {
            self.max = other.max;
        }
    }

    /// Mean observation (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Upper-bound estimate of quantile `q` in [0, 1]: the bound of
    /// the bucket where the cumulative count crosses `q * count`.
    pub fn quantile_bound(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return HIST_BOUNDS.get(i).copied().unwrap_or(self.max);
            }
        }
        self.max
    }
}

/// Counters, gauges, and histograms under sorted string names.
///
/// Naming convention: dotted lowercase paths, tier first —
/// `fleet.route.jsq.replica3`, `autoscale.scale_up`,
/// `chaos.retries`. Deterministic iteration order is the point:
/// [`MetricsRegistry::render_json`] walks the maps in name order, so
/// snapshot bytes are stable across runs and job counts.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Add `v` to counter `name` (created at zero).
    pub fn counter_add(&mut self, name: &str, v: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += v;
    }

    /// Set gauge `name` to `v` (last write wins; merges keep the max,
    /// so "high-water" gauges survive sharded collection).
    pub fn gauge_set(&mut self, name: &str, v: f64) {
        self.gauges.insert(name.to_string(), v);
    }

    /// Record one observation into histogram `name`.
    pub fn observe(&mut self, name: &str, v: f64) {
        self.histograms
            .entry(name.to_string())
            .or_insert_with(HistogramSnapshot::new)
            .observe(v);
    }

    /// Counter value (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Gauge value, when set.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Histogram snapshot, when any observation landed.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.get(name)
    }

    /// Fold `other` into `self`: counters add, gauges keep the max,
    /// histograms merge bucket-wise. Associative and commutative, so
    /// shard merge order never changes the result.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            let e = self.gauges.entry(k.clone()).or_insert(f64::NEG_INFINITY);
            if *v > *e {
                *e = *v;
            }
        }
        for (k, h) in &other.histograms {
            self.histograms
                .entry(k.clone())
                .or_insert_with(HistogramSnapshot::new)
                .merge(h);
        }
    }

    /// Render the registry as one JSON object with `counters`,
    /// `gauges`, and `histograms` sub-objects, keys in sorted order,
    /// numbers at fixed precision — byte-stable across reruns.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n      \"counters\": {");
        let mut first = true;
        for (k, v) in &self.counters {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!("\n        \"{}\": {v}", crate::perfetto::esc(k)));
        }
        out.push_str("\n      },\n      \"gauges\": {");
        first = true;
        for (k, v) in &self.gauges {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!("\n        \"{}\": {v:.6}", crate::perfetto::esc(k)));
        }
        out.push_str("\n      },\n      \"histograms\": {");
        first = true;
        for (k, h) in &self.histograms {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!(
                "\n        \"{}\": {{\"count\": {}, \"sum\": {:.6}, \"max\": {:.6}, \"p50_le\": {:.6}, \"p99_le\": {:.6}}}",
                crate::perfetto::esc(k),
                h.count,
                h.sum,
                h.max,
                h.quantile_bound(0.50),
                h.quantile_bound(0.99),
            ));
        }
        out.push_str("\n      }\n    }");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_gauges_histograms_round_trip() {
        let mut m = MetricsRegistry::new();
        m.counter_add("a.routes", 3);
        m.counter_add("a.routes", 2);
        m.gauge_set("a.depth", 7.5);
        m.observe("a.wait_s", 0.01);
        m.observe("a.wait_s", 3.0);
        assert_eq!(m.counter("a.routes"), 5);
        assert_eq!(m.gauge("a.depth"), Some(7.5));
        let h = m.histogram("a.wait_s").unwrap();
        assert_eq!(h.count, 2);
        assert!((h.mean() - 1.505).abs() < 1e-12);
        assert_eq!(h.max, 3.0);
    }

    #[test]
    fn merge_is_order_independent() {
        let mut a = MetricsRegistry::new();
        let mut b = MetricsRegistry::new();
        a.counter_add("n", 1);
        b.counter_add("n", 2);
        a.gauge_set("g", 4.0);
        b.gauge_set("g", 9.0);
        a.observe("h", 0.5);
        b.observe("h", 2.0);
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.counter("n"), 3);
        assert_eq!(ab.gauge("g"), Some(9.0));
        assert_eq!(ab.histogram("h").unwrap().count, 2);
        assert_eq!(ab.render_json(), ba.render_json());
    }

    #[test]
    fn quantile_bound_walks_buckets() {
        let mut h = HistogramSnapshot::new();
        for _ in 0..99 {
            h.observe(0.01);
        }
        h.observe(100.0);
        assert_eq!(h.quantile_bound(0.5), 0.016);
        assert_eq!(h.quantile_bound(1.0), 128.0);
        assert_eq!(HistogramSnapshot::new().quantile_bound(0.5), 0.0);
    }

    #[test]
    fn empty_registry_renders_empty_objects() {
        let m = MetricsRegistry::new();
        assert!(m.is_empty());
        let json = m.render_json();
        assert!(json.contains("\"counters\""));
        assert!(json.contains("\"histograms\""));
    }
}
