//! Controller self-profiling: wall-time attribution across the
//! autoscale controller's phases, answering the ROADMAP's "where do
//! the ~800 cells/s go" with data instead of guesses.
//!
//! This is *host* time (`std::time::Instant`), deliberately outside
//! the deterministic recorder: profiles ride beside reports, never
//! inside them, so report byte-identity is untouched.

/// Wall-time spent per controller phase, plus work counters that give
/// the times denominators.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ControllerProfile {
    /// Route-decision time: the dispatch loop minus live-state replay.
    pub routing_s: f64,
    /// Live-state replay: `run_ready` re-simulations behind
    /// `live_state_at` (dispatch-time queries, window-boundary
    /// observations, kill-time in-flight reads).
    pub replay_s: f64,
    /// Final per-replica engine simulations (the `runner.map` block).
    pub engine_s: f64,
    /// Report assembly: retry fold-back, lifecycles, fleet merge,
    /// windowed metrics, availability accounting.
    pub metrics_s: f64,
    /// End-to-end controller wall time.
    pub total_s: f64,
    /// Windows processed.
    pub windows: usize,
    /// Requests dispatched (including retries).
    pub dispatches: u64,
    /// Live-state cache refills (each is one `run_ready` replay).
    pub replays: u64,
    /// Total requests re-simulated across those refills — the replay
    /// amplification numerator (`replayed_requests / dispatches` is
    /// how many times the average request is re-run before the final
    /// pass).
    pub replayed_requests: u64,
}

impl ControllerProfile {
    /// Sum of the four attributed phases.
    pub fn accounted_s(&self) -> f64 {
        self.routing_s + self.replay_s + self.engine_s + self.metrics_s
    }

    /// Fraction of total wall time the phases explain (1.0 when no
    /// time was measured — an unprofiled run has nothing unexplained).
    pub fn coverage(&self) -> f64 {
        if self.total_s <= 0.0 {
            1.0
        } else {
            self.accounted_s() / self.total_s
        }
    }

    /// Replay amplification: re-simulated requests per dispatched
    /// request (0.0 when nothing dispatched).
    pub fn replay_amplification(&self) -> f64 {
        if self.dispatches == 0 {
            0.0
        } else {
            self.replayed_requests as f64 / self.dispatches as f64
        }
    }

    /// Fold another profile in (for averaging across repeated runs).
    pub fn absorb(&mut self, other: &ControllerProfile) {
        self.routing_s += other.routing_s;
        self.replay_s += other.replay_s;
        self.engine_s += other.engine_s;
        self.metrics_s += other.metrics_s;
        self.total_s += other.total_s;
        self.windows += other.windows;
        self.dispatches += other.dispatches;
        self.replays += other.replays;
        self.replayed_requests += other.replayed_requests;
    }

    /// Human-readable attribution block (the `perf_report` rendering).
    pub fn render(&self) -> String {
        let pct = |s: f64| if self.total_s > 0.0 { 100.0 * s / self.total_s } else { 0.0 };
        let mut out = String::new();
        out.push_str(&format!(
            "controller phase attribution ({} windows, {} dispatches):\n",
            self.windows, self.dispatches
        ));
        out.push_str(&format!(
            "  routing            {:>9.4}s  {:>5.1}%\n",
            self.routing_s,
            pct(self.routing_s)
        ));
        out.push_str(&format!(
            "  live-state replay  {:>9.4}s  {:>5.1}%  ({} replays, {:.1}x amplification)\n",
            self.replay_s,
            pct(self.replay_s),
            self.replays,
            self.replay_amplification()
        ));
        out.push_str(&format!(
            "  engine runs        {:>9.4}s  {:>5.1}%\n",
            self.engine_s,
            pct(self.engine_s)
        ));
        out.push_str(&format!(
            "  metrics            {:>9.4}s  {:>5.1}%\n",
            self.metrics_s,
            pct(self.metrics_s)
        ));
        out.push_str(&format!(
            "  accounted          {:>9.4}s  {:>5.1}% of {:.4}s total\n",
            self.accounted_s(),
            100.0 * self.coverage(),
            self.total_s
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coverage_and_amplification() {
        let p = ControllerProfile {
            routing_s: 1.0,
            replay_s: 6.0,
            engine_s: 2.0,
            metrics_s: 0.5,
            total_s: 10.0,
            windows: 12,
            dispatches: 100,
            replays: 40,
            replayed_requests: 450,
            ..Default::default()
        };
        assert!((p.accounted_s() - 9.5).abs() < 1e-12);
        assert!((p.coverage() - 0.95).abs() < 1e-12);
        assert!((p.replay_amplification() - 4.5).abs() < 1e-12);
        let text = p.render();
        assert!(text.contains("live-state replay"));
        assert!(text.contains("95.0% of 10.0000s total"));
    }

    #[test]
    fn empty_profile_is_fully_covered() {
        let p = ControllerProfile::default();
        assert_eq!(p.coverage(), 1.0);
        assert_eq!(p.replay_amplification(), 0.0);
    }

    #[test]
    fn absorb_sums_fields() {
        let mut a = ControllerProfile { routing_s: 1.0, dispatches: 5, ..Default::default() };
        let b = ControllerProfile { routing_s: 2.0, dispatches: 7, windows: 3, ..Default::default() };
        a.absorb(&b);
        assert_eq!(a.routing_s, 3.0);
        assert_eq!(a.dispatches, 12);
        assert_eq!(a.windows, 3);
    }
}
