//! Deterministic observability for the tiers above the engine.
//!
//! Everything below the fleet tier is already inspectable through
//! [`seesaw_sim`]'s span traces; this crate covers the rest of the
//! stack — router decisions, request lifecycles, scale transitions,
//! fault injections — with three cooperating pieces:
//!
//! * [`Recorder`] — structured spans and instant events stamped with
//!   **simulated** time only, so recorded output is byte-identical
//!   across `--jobs` counts and warm-pool reruns (wall-clock never
//!   enters it).
//! * [`MetricsRegistry`] — counters / gauges / histograms with
//!   deterministic (name-sorted) snapshots that merge associatively,
//!   rendered into the bins' `--json` output.
//! * [`perfetto`] — renders a [`Recorder`] as Chrome trace-event JSON
//!   (`chrome://tracing` / [ui.perfetto.dev](https://ui.perfetto.dev)).
//!
//! [`ControllerProfile`] is the one deliberate exception to the
//! no-wall-clock rule: it attributes *host* time across controller
//! phases (routing / live-state replay / engine runs / metrics) so
//! `perf_report` can say where the autoscale tier's cycles go. It is
//! returned beside reports, never inside them, so report equality and
//! byte-identity are unaffected.
//!
//! The whole subsystem is zero-cost when disabled: an
//! [`Instrument::off()`] records nothing, allocates nothing beyond the
//! empty struct, and instrumented entry points carrying it are the
//! same code path the uninstrumented entry points delegate to.

mod metrics;
pub mod perfetto;
mod profile;
mod recorder;

pub use metrics::{HistogramSnapshot, MetricsRegistry};
pub use profile::ControllerProfile;
pub use recorder::{
    fmt_secs, InstantEvent, Recorder, SpanEvent, ALERT_TRACK, CONTROLLER_TRACK,
    DEFAULT_INSTANT_CAP, DEFAULT_SPAN_CAP, REPLICA_TRACK_BASE, ROUTER_TRACK,
};

/// One bundle of everything an instrumented run can capture: the
/// event recorder, the metrics registry, and (for controllers) the
/// wall-time phase profile. Tiers take `&mut Instrument`; an
/// [`Instrument::off()`] turns every recording site into a branch
/// on a false bool.
#[derive(Debug)]
pub struct Instrument {
    /// Structured sim-time events (deterministic).
    pub recorder: Recorder,
    /// Counters / gauges / histograms (deterministic).
    pub metrics: MetricsRegistry,
    /// Wall-time phase attribution (NOT deterministic — host time).
    pub profile: ControllerProfile,
    /// Whether the wall-time profile is being collected.
    pub profiling: bool,
}

impl Instrument {
    /// Record nothing (the default for plain runs).
    pub fn off() -> Self {
        Instrument {
            recorder: Recorder::disabled(),
            metrics: MetricsRegistry::new(),
            profile: ControllerProfile::default(),
            profiling: false,
        }
    }

    /// Record events and metrics, but skip wall-time profiling.
    pub fn tracing() -> Self {
        Instrument { recorder: Recorder::enabled(), ..Instrument::off() }
    }

    /// [`Instrument::tracing`] with explicit recorder caps instead of
    /// [`DEFAULT_SPAN_CAP`]/[`DEFAULT_INSTANT_CAP`], for callers that
    /// trade trace completeness against memory (or tests that force
    /// overflow).
    pub fn tracing_with_caps(span_cap: usize, instant_cap: usize) -> Self {
        Instrument { recorder: Recorder::with_caps(span_cap, instant_cap), ..Instrument::off() }
    }

    /// Collect only the wall-time phase profile (perf_report's mode).
    pub fn profiling() -> Self {
        Instrument { profiling: true, ..Instrument::off() }
    }

    /// Record everything.
    pub fn full() -> Self {
        Instrument { profiling: true, ..Instrument::tracing() }
    }

    /// Whether deterministic telemetry (events + metrics) is on.
    pub fn telemetry_on(&self) -> bool {
        self.recorder.is_enabled()
    }

    /// Fold the recorder's overflow counters into the registry as
    /// `telemetry.dropped_spans` / `telemetry.dropped_instants`, so a
    /// capped trace's `--json` telemetry block says how much it lost
    /// (both appear even at zero — their presence is the health
    /// signal). No-op when telemetry is off.
    pub fn snapshot_drops(&mut self) {
        if !self.telemetry_on() {
            return;
        }
        let (spans, instants) = self.recorder.dropped();
        self.metrics.counter_add("telemetry.dropped_spans", spans);
        self.metrics.counter_add("telemetry.dropped_instants", instants);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_instrument_records_nothing() {
        let mut i = Instrument::off();
        assert!(!i.telemetry_on());
        assert!(!i.profiling);
        i.recorder.instant(ROUTER_TRACK, "route", 1.0, &[]);
        assert_eq!(i.recorder.instants().len(), 0);
        assert!(i.metrics.is_empty());
    }

    #[test]
    fn capped_instrument_counts_drops_into_metrics() {
        let mut i = Instrument::tracing_with_caps(1, 2);
        assert!(i.telemetry_on());
        for k in 0..4 {
            i.recorder.span(CONTROLLER_TRACK, "w", k as f64, 1.0, &[]);
            i.recorder.instant(ROUTER_TRACK, "route", k as f64, &[]);
        }
        i.snapshot_drops();
        assert_eq!(i.metrics.counter("telemetry.dropped_spans"), 3);
        assert_eq!(i.metrics.counter("telemetry.dropped_instants"), 2);

        // Uncapped runs still surface the counters, at zero.
        let mut clean = Instrument::tracing();
        clean.recorder.span(CONTROLLER_TRACK, "w", 0.0, 1.0, &[]);
        clean.snapshot_drops();
        assert_eq!(clean.metrics.counter("telemetry.dropped_spans"), 0);
        assert!(clean.metrics.render_json().contains("\"telemetry.dropped_instants\": 0"));

        // And an off instrument stays empty.
        let mut off = Instrument::off();
        off.snapshot_drops();
        assert!(off.metrics.is_empty());
    }

    #[test]
    fn modes_expose_the_right_switches() {
        assert!(Instrument::tracing().telemetry_on());
        assert!(!Instrument::tracing().profiling);
        assert!(Instrument::profiling().profiling);
        assert!(!Instrument::profiling().telemetry_on());
        assert!(Instrument::full().telemetry_on() && Instrument::full().profiling);
    }
}
