//! Render a [`Recorder`] as Chrome trace-event JSON, loadable in
//! `chrome://tracing` and [ui.perfetto.dev](https://ui.perfetto.dev).
//!
//! The format is the "JSON Array Format" of the trace-event spec: one
//! `traceEvents` array of objects, each with a phase (`ph`) —
//! `"M"` metadata names the process and per-track threads, `"X"`
//! complete spans carry `ts` + `dur`, `"i"` instants carry `ts` with
//! thread scope. Timestamps are **simulated** microseconds (sim
//! seconds × 1e6, rounded), so exported bytes inherit the recorder's
//! determinism.

use crate::recorder::Recorder;

/// The single process id every track lives under.
const PID: u32 = 1;

/// Escape a string per RFC 8259 for embedding in JSON: `\`, `"`, and
/// every control character below 0x20 (common ones get their short
/// escapes, the rest `\u00XX`).
pub fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            '\u{0008}' => out.push_str("\\b"),
            '\u{000C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn micros(t_s: f64) -> i64 {
    (t_s * 1e6).round() as i64
}

fn args_json(args: &[(String, String)]) -> String {
    let mut out = String::from("{");
    for (i, (k, v)) in args.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\"{}\":\"{}\"", esc(k), esc(v)));
    }
    out.push('}');
    out
}

/// Render `rec` as a complete Chrome trace-event JSON document.
/// `process_name` labels the single process row. Event order:
/// process metadata, track metadata (registration order), spans
/// (insertion order), instants (insertion order) — all deterministic.
pub fn render(rec: &Recorder, process_name: &str) -> String {
    let mut out = String::from("{\"traceEvents\":[\n");
    out.push_str(&format!(
        "{{\"ph\":\"M\",\"pid\":{PID},\"tid\":0,\"name\":\"process_name\",\"args\":{{\"name\":\"{}\"}}}}",
        esc(process_name)
    ));
    for (tid, name) in rec.tracks() {
        out.push_str(&format!(
            ",\n{{\"ph\":\"M\",\"pid\":{PID},\"tid\":{tid},\"name\":\"thread_name\",\"args\":{{\"name\":\"{}\"}}}}",
            esc(name)
        ));
    }
    for s in rec.spans() {
        out.push_str(&format!(
            ",\n{{\"ph\":\"X\",\"pid\":{PID},\"tid\":{},\"ts\":{},\"dur\":{},\"name\":\"{}\",\"args\":{}}}",
            s.track,
            micros(s.start_s),
            micros(s.dur_s).max(1),
            esc(&s.name),
            args_json(&s.args)
        ));
    }
    for i in rec.instants() {
        out.push_str(&format!(
            ",\n{{\"ph\":\"i\",\"pid\":{PID},\"tid\":{},\"ts\":{},\"s\":\"t\",\"name\":\"{}\",\"args\":{}}}",
            i.track,
            micros(i.t_s),
            esc(&i.name),
            args_json(&i.args)
        ));
    }
    let (ds, di) = rec.dropped();
    out.push_str(&format!(
        "\n],\"displayTimeUnit\":\"ms\",\"otherData\":{{\"dropped_spans\":\"{ds}\",\"dropped_instants\":\"{di}\"}}}}\n"
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::{fmt_secs, CONTROLLER_TRACK, REPLICA_TRACK_BASE, ROUTER_TRACK};

    fn sample() -> Recorder {
        let mut r = Recorder::enabled();
        r.track(CONTROLLER_TRACK, "controller");
        r.track(ROUTER_TRACK, "router");
        r.track(REPLICA_TRACK_BASE, "replica0");
        r.span(REPLICA_TRACK_BASE, "req 7", 0.25, 1.5, &[("ttft_s", fmt_secs(0.4))]);
        r.instant(ROUTER_TRACK, "route 7 -> r0", 0.25, &[("queue_depth", "3".into())]);
        r.instant(CONTROLLER_TRACK, "scale-up 1 -> 2", 300.0, &[]);
        r
    }

    #[test]
    fn render_emits_metadata_spans_and_instants() {
        let json = render(&sample(), "seesaw fleet");
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.ends_with("}\n"));
        assert_eq!(json.matches("\"ph\":\"M\"").count(), 4, "process + 3 tracks");
        assert_eq!(json.matches("\"ph\":\"X\"").count(), 1);
        assert_eq!(json.matches("\"ph\":\"i\"").count(), 2);
        assert!(json.contains("\"ts\":250000"));
        assert!(json.contains("\"dur\":1500000"));
        assert!(json.contains("\"name\":\"thread_name\""));
        // Brace/bracket balance — the structural check the figure
        // JSON tests use, minus a full parser.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn render_is_deterministic() {
        assert_eq!(render(&sample(), "p"), render(&sample(), "p"));
    }

    #[test]
    fn esc_handles_control_characters() {
        assert_eq!(esc("a\\b\"c"), "a\\\\b\\\"c");
        assert_eq!(esc("line\nbreak\ttab\rret"), "line\\nbreak\\ttab\\rret");
        assert_eq!(esc("\u{0008}\u{000C}\u{0001}"), "\\b\\f\\u0001");
        assert_eq!(esc("plain ascii"), "plain ascii");
    }

    #[test]
    fn zero_duration_spans_render_visible() {
        let mut r = Recorder::enabled();
        r.span(1, "instantaneous", 1.0, 0.0, &[]);
        assert!(render(&r, "p").contains("\"dur\":1"), "clamped to 1us so viewers show it");
    }
}
