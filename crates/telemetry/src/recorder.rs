//! The structured event recorder: sim-time spans and instants on
//! named tracks.
//!
//! A *track* is a logical timeline the Perfetto exporter renders as
//! one thread row: the controller, the router, and one row per
//! replica. Track ids are stable small integers so recorded bytes
//! are reproducible; names attach via [`Recorder::track`] and become
//! `thread_name` metadata on export.
//!
//! Every timestamp is **simulated** seconds. The recorder is filled
//! from the serial, causal parts of each tier (the routing loop, the
//! window loop), so insertion order — and therefore rendered output —
//! is independent of how many worker threads later simulate the
//! consequences.
//!
//! Long days produce millions of per-request events; the recorder
//! bounds memory with per-kind caps ([`Recorder::with_caps`]) and
//! counts what it dropped, so a capped trace says so instead of
//! silently looking complete.

/// Track id of the controller timeline (windows, scale events, faults).
pub const CONTROLLER_TRACK: u32 = 1;
/// Track id of the router timeline (route decisions).
pub const ROUTER_TRACK: u32 = 2;
/// Track id of the SLO alerting timeline (burn-rate fire/clear).
pub const ALERT_TRACK: u32 = 3;
/// Track id of replica `i` is `REPLICA_TRACK_BASE + i`.
pub const REPLICA_TRACK_BASE: u32 = 10;

/// Default cap on recorded spans (request lifecycles dominate).
pub const DEFAULT_SPAN_CAP: usize = 50_000;
/// Default cap on recorded instants (route decisions dominate).
pub const DEFAULT_INSTANT_CAP: usize = 100_000;

/// A closed interval on a track. `args` are pre-formatted key/value
/// pairs (callers format numbers deterministically before recording).
#[derive(Debug, Clone, PartialEq)]
pub struct SpanEvent {
    /// Track the span belongs to.
    pub track: u32,
    /// Display name.
    pub name: String,
    /// Start, simulated seconds.
    pub start_s: f64,
    /// Duration, simulated seconds (clamped non-negative).
    pub dur_s: f64,
    /// Extra key/value payload.
    pub args: Vec<(String, String)>,
}

/// A point event on a track.
#[derive(Debug, Clone, PartialEq)]
pub struct InstantEvent {
    /// Track the instant belongs to.
    pub track: u32,
    /// Display name.
    pub name: String,
    /// Timestamp, simulated seconds.
    pub t_s: f64,
    /// Extra key/value payload.
    pub args: Vec<(String, String)>,
}

/// An append-only, capacity-bounded log of spans and instants.
#[derive(Debug, Clone, PartialEq)]
pub struct Recorder {
    enabled: bool,
    tracks: Vec<(u32, String)>,
    spans: Vec<SpanEvent>,
    instants: Vec<InstantEvent>,
    span_cap: usize,
    instant_cap: usize,
    dropped_spans: u64,
    dropped_instants: u64,
}

impl Recorder {
    /// A recording recorder with the default caps.
    pub fn enabled() -> Self {
        Recorder {
            enabled: true,
            tracks: Vec::new(),
            spans: Vec::new(),
            instants: Vec::new(),
            span_cap: DEFAULT_SPAN_CAP,
            instant_cap: DEFAULT_INSTANT_CAP,
            dropped_spans: 0,
            dropped_instants: 0,
        }
    }

    /// A no-op recorder: every record call is a branch on `false`.
    pub fn disabled() -> Self {
        Recorder { enabled: false, ..Recorder::enabled() }
    }

    /// A recording recorder with explicit span/instant caps.
    pub fn with_caps(span_cap: usize, instant_cap: usize) -> Self {
        Recorder { span_cap, instant_cap, ..Recorder::enabled() }
    }

    /// Whether events are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Register (or rename) a track. Idempotent per id; registration
    /// order fixes the exported row order.
    pub fn track(&mut self, id: u32, name: &str) {
        if !self.enabled {
            return;
        }
        if let Some(t) = self.tracks.iter_mut().find(|(tid, _)| *tid == id) {
            t.1 = name.to_string();
        } else {
            self.tracks.push((id, name.to_string()));
        }
    }

    /// Record a span. Negative durations clamp to zero; beyond the
    /// cap the span is counted as dropped instead of stored.
    pub fn span(&mut self, track: u32, name: &str, start_s: f64, dur_s: f64, args: &[(&str, String)]) {
        if !self.enabled {
            return;
        }
        if self.spans.len() >= self.span_cap {
            self.dropped_spans += 1;
            return;
        }
        self.spans.push(SpanEvent {
            track,
            name: name.to_string(),
            start_s,
            dur_s: dur_s.max(0.0),
            args: own_args(args),
        });
    }

    /// Record an instant event (same capping rules as spans).
    pub fn instant(&mut self, track: u32, name: &str, t_s: f64, args: &[(&str, String)]) {
        if !self.enabled {
            return;
        }
        if self.instants.len() >= self.instant_cap {
            self.dropped_instants += 1;
            return;
        }
        self.instants.push(InstantEvent {
            track,
            name: name.to_string(),
            t_s,
            args: own_args(args),
        });
    }

    /// Registered tracks, in registration order.
    pub fn tracks(&self) -> &[(u32, String)] {
        &self.tracks
    }

    /// Recorded spans, in insertion order.
    pub fn spans(&self) -> &[SpanEvent] {
        &self.spans
    }

    /// Recorded instants, in insertion order.
    pub fn instants(&self) -> &[InstantEvent] {
        &self.instants
    }

    /// `(dropped_spans, dropped_instants)` — events refused by caps.
    pub fn dropped(&self) -> (u64, u64) {
        (self.dropped_spans, self.dropped_instants)
    }
}

fn own_args(args: &[(&str, String)]) -> Vec<(String, String)> {
    args.iter().map(|(k, v)| (k.to_string(), v.clone())).collect()
}

/// Deterministic fixed-precision formatting for numeric args: six
/// decimals, matching the bins' JSON number rendering, so recorded
/// bytes never depend on locale or float shortest-repr quirks.
pub fn fmt_secs(v: f64) -> String {
    format!("{v:.6}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_is_a_no_op() {
        let mut r = Recorder::disabled();
        r.track(CONTROLLER_TRACK, "controller");
        r.span(CONTROLLER_TRACK, "w0", 0.0, 1.0, &[]);
        r.instant(ROUTER_TRACK, "route", 0.5, &[]);
        assert!(r.tracks().is_empty());
        assert!(r.spans().is_empty());
        assert!(r.instants().is_empty());
        assert_eq!(r.dropped(), (0, 0));
    }

    #[test]
    fn caps_count_drops_instead_of_growing() {
        let mut r = Recorder::with_caps(1, 2);
        r.span(1, "a", 0.0, 1.0, &[]);
        r.span(1, "b", 1.0, 1.0, &[]);
        r.instant(1, "x", 0.0, &[]);
        r.instant(1, "y", 0.0, &[]);
        r.instant(1, "z", 0.0, &[]);
        assert_eq!(r.spans().len(), 1);
        assert_eq!(r.instants().len(), 2);
        assert_eq!(r.dropped(), (1, 1));
    }

    #[test]
    fn track_registration_is_idempotent_and_ordered() {
        let mut r = Recorder::enabled();
        r.track(ROUTER_TRACK, "router");
        r.track(CONTROLLER_TRACK, "controller");
        r.track(ROUTER_TRACK, "router (renamed)");
        assert_eq!(
            r.tracks(),
            &[(ROUTER_TRACK, "router (renamed)".to_string()), (CONTROLLER_TRACK, "controller".to_string())]
        );
    }

    #[test]
    fn negative_durations_clamp() {
        let mut r = Recorder::enabled();
        r.span(1, "s", 5.0, -1.0, &[("k", fmt_secs(0.25))]);
        assert_eq!(r.spans()[0].dur_s, 0.0);
        assert_eq!(r.spans()[0].args[0], ("k".to_string(), "0.250000".to_string()));
    }
}
