//! Model-based property test: the paged KV allocator against a naive
//! reference model, under arbitrary operation sequences.

use proptest::prelude::*;
use seesaw_kv::{KvError, PagedKvCache};
use std::collections::HashMap;

#[derive(Debug, Clone)]
enum Op {
    Allocate { id: u64, tokens: usize },
    Append { id: u64 },
    Free { id: u64 },
}

fn ops_strategy() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            (0u64..8, 1usize..200).prop_map(|(id, tokens)| Op::Allocate { id, tokens }),
            (0u64..8).prop_map(|id| Op::Append { id }),
            (0u64..8).prop_map(|id| Op::Free { id }),
        ],
        1..120,
    )
}

/// Reference model: per-sequence token counts, block math recomputed
/// from scratch each step.
#[derive(Default)]
struct RefModel {
    seqs: HashMap<u64, usize>,
}

impl RefModel {
    fn blocks(&self, block: usize) -> usize {
        self.seqs.values().map(|&t| t.max(1).div_ceil(block)).sum()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn paged_cache_matches_reference(ops in ops_strategy()) {
        const CAP: u64 = 4096;
        const BLOCK: usize = 16;
        let total_blocks = (CAP / BLOCK as u64) as usize;
        let mut kv = PagedKvCache::new(CAP, BLOCK);
        let mut reference = RefModel::default();

        for op in ops {
            match op {
                Op::Allocate { id, tokens } => {
                    let need = tokens.max(1).div_ceil(BLOCK);
                    let expect_ok = !reference.seqs.contains_key(&id)
                        && reference.blocks(BLOCK) + need <= total_blocks;
                    match kv.allocate(id, tokens) {
                        Ok(()) => {
                            prop_assert!(expect_ok, "allocate should have failed");
                            reference.seqs.insert(id, tokens);
                        }
                        Err(KvError::DuplicateSeq(_)) => {
                            prop_assert!(reference.seqs.contains_key(&id));
                        }
                        Err(KvError::OutOfBlocks { .. }) => {
                            prop_assert!(!expect_ok, "allocate should have succeeded");
                        }
                        Err(e) => prop_assert!(false, "unexpected error {e}"),
                    }
                }
                Op::Append { id } => {
                    let expect = reference.seqs.get(&id).copied();
                    match kv.append_token(id) {
                        Ok(()) => {
                            let t = expect.expect("append succeeded on unknown seq");
                            // Either fits in the current block or a new
                            // block was available.
                            reference.seqs.insert(id, t + 1);
                            prop_assert!(reference.blocks(BLOCK) <= total_blocks);
                        }
                        Err(KvError::UnknownSeq(_)) => prop_assert!(expect.is_none()),
                        Err(KvError::OutOfBlocks { .. }) => {
                            let t = expect.expect("oob on unknown seq");
                            // Growing must genuinely need a new block.
                            prop_assert_eq!(t % BLOCK, 0);
                            prop_assert_eq!(reference.blocks(BLOCK), total_blocks);
                        }
                        Err(e) => prop_assert!(false, "unexpected error {e}"),
                    }
                }
                Op::Free { id } => {
                    match kv.free(id) {
                        Ok(tokens) => {
                            prop_assert_eq!(reference.seqs.remove(&id), Some(tokens));
                        }
                        Err(KvError::UnknownSeq(_)) => {
                            prop_assert!(!reference.seqs.contains_key(&id));
                        }
                        Err(e) => prop_assert!(false, "unexpected error {e}"),
                    }
                }
            }
            // Global invariants after every op.
            prop_assert_eq!(kv.num_seqs(), reference.seqs.len());
            prop_assert_eq!(
                kv.used_tokens(),
                reference.seqs.values().sum::<usize>()
            );
            let used_blocks = reference.blocks(BLOCK);
            prop_assert_eq!(
                kv.free_tokens(),
                (total_blocks - used_blocks) * BLOCK
            );
        }
    }
}
