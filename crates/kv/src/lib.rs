//! KV-cache management: the paged GPU cache, the tiered CPU buffer
//! (paper §4.2), layout-aware transfer efficiency (§5.2), and swap
//! sizing.
//!
//! The GPU cache is a vLLM-style paged allocator: capacity is divided
//! into fixed-size token blocks; sequences own block lists and grow
//! one token per decode step. The CPU buffer is the shared
//! (OS shared-memory) staging area that tiered KV cache buffering
//! fills during prefill and drains during decode; *KV re-sharding
//! happens implicitly through it* — GPUs push shards laid out for
//! `c_p` and pull shards laid out for `c_d` (paper Figure 7).

pub mod buffer;
pub mod layout;
pub mod paged;
pub mod swap;

pub use buffer::{BufferedSeq, CpuKvBuffer};
pub use layout::KvLayout;
pub use paged::{KvError, PagedKvCache};
pub use swap::SwapSizer;
