//! KV-cache memory layouts (paper §5.2, "bandwidth-aware KV cache
//! layout").
//!
//! Tensor parallelism shards the KV cache along the head dimension.
//! With the `NHD` layout (`seq_len, num_heads, head_dim`) a head-shard
//! is strided — every sequence position contributes a small
//! non-contiguous slice — so PCIe transfers run far below link
//! bandwidth. `HND` (`num_heads, seq_len, head_dim`) makes each
//! head-shard contiguous; Seesaw stores the CPU KV cache in `HND`.

use serde::{Deserialize, Serialize};

/// KV tensor layout in host memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum KvLayout {
    /// `(seq_len, num_heads, head_dim)` — contiguous by token.
    Nhd,
    /// `(num_heads, seq_len, head_dim)` — contiguous by head
    /// (Seesaw's choice).
    Hnd,
}

impl KvLayout {
    /// Transfer-bandwidth efficiency multiplier for a copy of this
    /// layout, given whether the copy touches a head-dimension shard
    /// (TP) or the whole tensor.
    ///
    /// * Whole-tensor copies are contiguous either way → 1.0.
    /// * Head-sharded copies: `HND` stays contiguous → 1.0; `NHD`
    ///   degrades to strided access.
    pub fn transfer_efficiency(self, head_sharded: bool) -> f64 {
        match (self, head_sharded) {
            (KvLayout::Hnd, _) => 1.0,
            (KvLayout::Nhd, false) => 1.0,
            (KvLayout::Nhd, true) => seesaw_hw::efficiency::NHD_SHARDED_TRANSFER_EFF,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hnd_never_penalized() {
        assert_eq!(KvLayout::Hnd.transfer_efficiency(false), 1.0);
        assert_eq!(KvLayout::Hnd.transfer_efficiency(true), 1.0);
    }

    #[test]
    fn nhd_penalized_only_when_sharded() {
        assert_eq!(KvLayout::Nhd.transfer_efficiency(false), 1.0);
        let eff = KvLayout::Nhd.transfer_efficiency(true);
        assert!(eff < 0.5, "strided NHD shard copies must be slow, got {eff}");
    }
}
