//! The tiered CPU KV buffer (paper §4.2).
//!
//! During Seesaw's prefill phase, finished prompts' KV caches are
//! swapped out to this host-memory buffer; the transition-minimizing
//! scheduler flips the cluster to decode only when the buffer is
//! *full*, and back to prefill only when it is *empty*. Because the
//! buffer is in OS shared memory visible to all workers, pushing
//! shards under `c_p` and pulling them under `c_d` performs KV
//! re-sharding for free (Figure 7).

use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// A prefilled sequence parked in host memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BufferedSeq {
    /// Request id.
    pub req_id: u64,
    /// Prompt tokens whose KV is buffered.
    pub tokens: usize,
    /// Tokens this sequence will generate (carried along so the
    /// decode scheduler can plan capacity).
    pub output_len: usize,
}

/// FIFO host-memory KV store with a token-capacity budget.
#[derive(Debug, Clone)]
pub struct CpuKvBuffer {
    capacity_tokens: u64,
    used_tokens: u64,
    queue: VecDeque<BufferedSeq>,
}

impl CpuKvBuffer {
    /// A buffer holding up to `capacity_tokens` tokens of KV.
    pub fn new(capacity_tokens: u64) -> Self {
        CpuKvBuffer {
            capacity_tokens,
            used_tokens: 0,
            queue: VecDeque::new(),
        }
    }

    /// Whether a sequence of `tokens` would fit right now.
    pub fn can_fit(&self, tokens: usize) -> bool {
        self.used_tokens + tokens as u64 <= self.capacity_tokens
    }

    /// Park a prefilled sequence. Returns `false` (and does nothing)
    /// if it does not fit — the transition signal.
    pub fn push(&mut self, seq: BufferedSeq) -> bool {
        if !self.can_fit(seq.tokens) {
            return false;
        }
        self.used_tokens += seq.tokens as u64;
        self.queue.push_back(seq);
        true
    }

    /// Next sequence to swap in (FIFO), removing it from the buffer.
    pub fn pop(&mut self) -> Option<BufferedSeq> {
        let seq = self.queue.pop_front()?;
        self.used_tokens -= seq.tokens as u64;
        Some(seq)
    }

    /// Peek the next sequence without removing it.
    pub fn peek(&self) -> Option<&BufferedSeq> {
        self.queue.front()
    }

    /// Buffered sequence count.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Whether the buffer holds no sequences.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Tokens currently buffered.
    pub fn used_tokens(&self) -> u64 {
        self.used_tokens
    }

    /// Token capacity.
    pub fn capacity_tokens(&self) -> u64 {
        self.capacity_tokens
    }

    /// Occupancy in `[0, 1]`.
    pub fn occupancy(&self) -> f64 {
        if self.capacity_tokens == 0 {
            return 1.0;
        }
        self.used_tokens as f64 / self.capacity_tokens as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(id: u64, tokens: usize) -> BufferedSeq {
        BufferedSeq {
            req_id: id,
            tokens,
            output_len: 100,
        }
    }

    #[test]
    fn fifo_order_preserved() {
        let mut buf = CpuKvBuffer::new(10_000);
        for i in 0..5 {
            assert!(buf.push(seq(i, 100)));
        }
        for i in 0..5 {
            assert_eq!(buf.pop().unwrap().req_id, i);
        }
        assert!(buf.pop().is_none());
    }

    #[test]
    fn capacity_signal() {
        let mut buf = CpuKvBuffer::new(250);
        assert!(buf.push(seq(0, 100)));
        assert!(buf.push(seq(1, 100)));
        assert!(!buf.can_fit(100));
        assert!(!buf.push(seq(2, 100)), "push past capacity must fail");
        assert_eq!(buf.len(), 2);
        assert_eq!(buf.used_tokens(), 200);
        assert!((buf.occupancy() - 0.8).abs() < 1e-12);
        buf.pop();
        assert!(buf.push(seq(2, 100)));
    }

    #[test]
    fn token_accounting_balances() {
        let mut buf = CpuKvBuffer::new(1_000);
        buf.push(seq(0, 300));
        buf.push(seq(1, 200));
        assert_eq!(buf.used_tokens(), 500);
        buf.pop();
        assert_eq!(buf.used_tokens(), 200);
        buf.pop();
        assert_eq!(buf.used_tokens(), 0);
        assert!(buf.is_empty());
    }

    #[test]
    fn zero_capacity_is_always_full() {
        let buf = CpuKvBuffer::new(0);
        assert!(!buf.can_fit(1));
        assert_eq!(buf.occupancy(), 1.0);
    }
}
