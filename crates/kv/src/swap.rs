//! Swap-transfer sizing: how many bytes each GPU moves when a
//! sequence's KV crosses the GPU/CPU boundary, under a given shard
//! map and layout.

use crate::layout::KvLayout;
use seesaw_hw::ClusterSpec;
use seesaw_model::ModelConfig;
use seesaw_parallel::{ParallelConfig, ShardMap};

/// Computes per-GPU swap volumes and times for a model + cluster +
/// configuration + layout.
#[derive(Debug, Clone)]
pub struct SwapSizer {
    map: ShardMap,
    layout: KvLayout,
    kv_bytes_per_token_total: u64,
}

impl SwapSizer {
    /// Sizer for `model` sharded per `config`, stored in `layout`.
    pub fn new(model: &ModelConfig, config: ParallelConfig, layout: KvLayout) -> Self {
        SwapSizer {
            map: ShardMap::new(model, config),
            layout,
            kv_bytes_per_token_total: model.kv_bytes_per_token(),
        }
    }

    /// The shard map in use.
    pub fn map(&self) -> &ShardMap {
        &self.map
    }

    /// Bytes GPU `gpu` pushes/pulls for a sequence of `tokens`.
    pub fn seq_bytes_on_gpu(&self, gpu: usize, tokens: usize) -> u64 {
        self.map.kv_bytes_per_token_on_gpu(gpu) * tokens as u64
    }

    /// Total bytes for a sequence across one DP replica.
    pub fn seq_bytes_total(&self, tokens: usize) -> u64 {
        self.kv_bytes_per_token_total * tokens as u64
    }

    /// Seconds for GPU `gpu` to move its shard of a `tokens`-token
    /// sequence across the host link into/out of *pinned* staging,
    /// including the layout's contiguity penalty when the copy is a
    /// head shard (TP > 1).
    pub fn seq_transfer_time(&self, cluster: &ClusterSpec, gpu: usize, tokens: usize) -> f64 {
        let bytes = self.seq_bytes_on_gpu(gpu, tokens) as f64;
        let head_sharded = self.map.config.tp > 1;
        let eff = self.layout.transfer_efficiency(head_sharded);
        cluster.host_link.pinned_copy_time(bytes) / eff
    }

    /// Seconds for the host-side staging copy (pinned ↔ shared
    /// memory) of the same shard.
    pub fn seq_staging_time(&self, cluster: &ClusterSpec, gpu: usize, tokens: usize) -> f64 {
        let bytes = self.seq_bytes_on_gpu(gpu, tokens) as f64;
        cluster.host_link.staging_copy_time(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seesaw_model::presets;

    #[test]
    fn shard_volumes_sum_to_sequence_total() {
        let m = presets::codellama_34b();
        for cfg in [
            ParallelConfig::tp(4),
            ParallelConfig::pp(4),
            ParallelConfig::new(1, 2, 2),
        ] {
            let sz = SwapSizer::new(&m, cfg, KvLayout::Hnd);
            let per_gpu: u64 = (0..cfg.num_gpus())
                .map(|g| sz.seq_bytes_on_gpu(g, 1000))
                .sum();
            assert_eq!(per_gpu, sz.seq_bytes_total(1000), "cfg {cfg}");
        }
    }

    #[test]
    fn hnd_transfers_faster_than_nhd_under_tp() {
        let m = presets::codellama_34b();
        let cluster = ClusterSpec::a10x4();
        let cfg = ParallelConfig::tp(4);
        let hnd = SwapSizer::new(&m, cfg, KvLayout::Hnd);
        let nhd = SwapSizer::new(&m, cfg, KvLayout::Nhd);
        let t_hnd = hnd.seq_transfer_time(&cluster, 0, 2000);
        let t_nhd = nhd.seq_transfer_time(&cluster, 0, 2000);
        assert!(t_nhd > 2.0 * t_hnd, "NHD {t_nhd} should be >2x HND {t_hnd}");
    }

    #[test]
    fn layouts_equal_without_tp() {
        let m = presets::codellama_34b();
        let cluster = ClusterSpec::a10x4();
        let cfg = ParallelConfig::pp(4);
        let hnd = SwapSizer::new(&m, cfg, KvLayout::Hnd);
        let nhd = SwapSizer::new(&m, cfg, KvLayout::Nhd);
        assert_eq!(
            hnd.seq_transfer_time(&cluster, 1, 777),
            nhd.seq_transfer_time(&cluster, 1, 777)
        );
    }

    #[test]
    fn staging_leg_uses_host_bandwidth() {
        let m = presets::llama2_70b();
        let cluster = ClusterSpec::a100x8_pcie();
        let sz = SwapSizer::new(&m, ParallelConfig::new(1, 4, 2), KvLayout::Hnd);
        let t = sz.seq_staging_time(&cluster, 0, 1000);
        let bytes = sz.seq_bytes_on_gpu(0, 1000) as f64;
        assert!((t - bytes / seesaw_hw::efficiency::HOST_STAGING_BW).abs() < 1e-12);
    }
}
