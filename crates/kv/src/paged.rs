//! Paged (block-based) GPU KV cache accounting.

use seesaw_hw::FxBuildHasher;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Fx-hashed sequence-id map — engines allocate/free per request per
/// phase, and SipHash is the dominant cost of that bookkeeping. Order
/// never leaks into engine output: all aggregate queries are
/// order-independent integer sums.
type SeqMap = HashMap<u64, SeqAlloc, FxBuildHasher>;

/// Errors from cache operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum KvError {
    /// Not enough free blocks for the allocation.
    OutOfBlocks {
        /// Blocks requested.
        need: usize,
        /// Blocks free.
        free: usize,
    },
    /// Operation on a sequence id that is not resident.
    UnknownSeq(u64),
    /// Allocation for a sequence id that is already resident.
    DuplicateSeq(u64),
}

impl std::fmt::Display for KvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KvError::OutOfBlocks { need, free } => {
                write!(f, "need {need} KV blocks, only {free} free")
            }
            KvError::UnknownSeq(id) => write!(f, "sequence {id} not resident"),
            KvError::DuplicateSeq(id) => write!(f, "sequence {id} already resident"),
        }
    }
}

impl std::error::Error for KvError {}

#[derive(Debug, Clone, PartialEq, Eq)]
struct SeqAlloc {
    blocks: usize,
    tokens: usize,
}

/// A paged KV cache for one engine instance (capacity expressed in
/// tokens, allocated in fixed-size blocks — PagedAttention-style
/// bookkeeping without the tensors).
#[derive(Debug, Clone)]
pub struct PagedKvCache {
    block_tokens: usize,
    total_blocks: usize,
    free_blocks: usize,
    seqs: SeqMap,
}

impl PagedKvCache {
    /// Default block size used by the engines (vLLM uses 16).
    pub const DEFAULT_BLOCK_TOKENS: usize = 16;

    /// A cache holding up to `capacity_tokens`, allocated in blocks of
    /// `block_tokens`.
    pub fn new(capacity_tokens: u64, block_tokens: usize) -> Self {
        assert!(block_tokens > 0, "block size must be positive");
        let total_blocks = (capacity_tokens / block_tokens as u64) as usize;
        PagedKvCache {
            block_tokens,
            total_blocks,
            free_blocks: total_blocks,
            seqs: SeqMap::default(),
        }
    }

    fn blocks_for(&self, tokens: usize) -> usize {
        tokens.div_ceil(self.block_tokens)
    }

    /// Admit a sequence with `tokens` of KV already materialized
    /// (post-prefill or post-swap-in).
    pub fn allocate(&mut self, id: u64, tokens: usize) -> Result<(), KvError> {
        if self.seqs.contains_key(&id) {
            return Err(KvError::DuplicateSeq(id));
        }
        let need = self.blocks_for(tokens.max(1));
        if need > self.free_blocks {
            return Err(KvError::OutOfBlocks {
                need,
                free: self.free_blocks,
            });
        }
        self.free_blocks -= need;
        self.seqs.insert(
            id,
            SeqAlloc {
                blocks: need,
                tokens,
            },
        );
        Ok(())
    }

    /// Grow a sequence by one decode token, allocating a block when
    /// the current one fills.
    pub fn append_token(&mut self, id: u64) -> Result<(), KvError> {
        let alloc = self.seqs.get(&id).ok_or(KvError::UnknownSeq(id))?;
        let need = self.blocks_for(alloc.tokens + 1);
        let extra = need - alloc.blocks;
        if extra > self.free_blocks {
            return Err(KvError::OutOfBlocks {
                need: extra,
                free: self.free_blocks,
            });
        }
        self.free_blocks -= extra;
        let alloc = self.seqs.get_mut(&id).expect("checked above");
        alloc.blocks = need;
        alloc.tokens += 1;
        Ok(())
    }

    /// Release a sequence, returning its token count.
    pub fn free(&mut self, id: u64) -> Result<usize, KvError> {
        let alloc = self.seqs.remove(&id).ok_or(KvError::UnknownSeq(id))?;
        self.free_blocks += alloc.blocks;
        Ok(alloc.tokens)
    }

    /// Whether `tokens` more tokens could be admitted right now.
    pub fn can_fit(&self, tokens: usize) -> bool {
        self.blocks_for(tokens.max(1)) <= self.free_blocks
    }

    /// Resident sequence count.
    pub fn num_seqs(&self) -> usize {
        self.seqs.len()
    }

    /// Tokens currently stored.
    pub fn used_tokens(&self) -> usize {
        self.seqs.values().map(|a| a.tokens).sum()
    }

    /// Context length of a resident sequence.
    pub fn seq_tokens(&self, id: u64) -> Option<usize> {
        self.seqs.get(&id).map(|a| a.tokens)
    }

    /// Token capacity still available (in whole blocks).
    pub fn free_tokens(&self) -> usize {
        self.free_blocks * self.block_tokens
    }

    /// Total token capacity.
    pub fn capacity_tokens(&self) -> usize {
        self.total_blocks * self.block_tokens
    }

    /// Tokens lost to internal fragmentation (allocated-but-unused
    /// block slack).
    pub fn fragmentation_tokens(&self) -> usize {
        let allocated: usize = self.seqs.values().map(|a| a.blocks).sum();
        allocated * self.block_tokens - self.used_tokens()
    }

    /// Ids of resident sequences (unordered).
    pub fn resident_ids(&self) -> Vec<u64> {
        self.seqs.keys().copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_grow_free_roundtrip() {
        let mut kv = PagedKvCache::new(1000, 16);
        kv.allocate(1, 100).unwrap();
        assert_eq!(kv.num_seqs(), 1);
        assert_eq!(kv.used_tokens(), 100);
        // 100 tokens = 7 blocks of 16 = 112 token slots.
        assert_eq!(kv.fragmentation_tokens(), 12);
        for _ in 0..12 {
            kv.append_token(1).unwrap();
        }
        assert_eq!(kv.fragmentation_tokens(), 0);
        kv.append_token(1).unwrap(); // new block
        assert_eq!(kv.fragmentation_tokens(), 15);
        assert_eq!(kv.free(1).unwrap(), 113);
        assert_eq!(kv.used_tokens(), 0);
        assert_eq!(kv.free_tokens(), kv.capacity_tokens());
    }

    #[test]
    fn capacity_enforced() {
        let mut kv = PagedKvCache::new(160, 16); // 10 blocks
        kv.allocate(1, 100).unwrap(); // 7 blocks
        let err = kv.allocate(2, 100).unwrap_err();
        assert!(matches!(err, KvError::OutOfBlocks { need: 7, free: 3 }));
        assert!(kv.can_fit(48));
        assert!(!kv.can_fit(49));
    }

    #[test]
    fn duplicate_and_unknown_ids() {
        let mut kv = PagedKvCache::new(1000, 16);
        kv.allocate(1, 10).unwrap();
        assert_eq!(kv.allocate(1, 10).unwrap_err(), KvError::DuplicateSeq(1));
        assert_eq!(kv.append_token(9).unwrap_err(), KvError::UnknownSeq(9));
        assert_eq!(kv.free(9).unwrap_err(), KvError::UnknownSeq(9));
    }

    #[test]
    fn append_fails_when_full_then_recovers() {
        let mut kv = PagedKvCache::new(32, 16); // 2 blocks
        kv.allocate(1, 16).unwrap();
        kv.allocate(2, 16).unwrap();
        let err = kv.append_token(1).unwrap_err();
        assert!(matches!(err, KvError::OutOfBlocks { .. }));
        kv.free(2).unwrap();
        kv.append_token(1).unwrap();
        assert_eq!(kv.seq_tokens(1), Some(17));
    }

    #[test]
    fn zero_token_allocation_takes_one_block() {
        let mut kv = PagedKvCache::new(160, 16);
        kv.allocate(1, 0).unwrap();
        assert_eq!(kv.free_tokens(), 144);
    }
}
