//! Property tests: shard maps partition the model exactly and the
//! re-sharding planner conserves bytes, for arbitrary valid
//! configurations.

use proptest::prelude::*;
use seesaw_model::presets;
use seesaw_parallel::{ParallelConfig, ReshardPlan, ShardMap};

/// Valid configurations for the 70B model (64 heads, 80 layers) on
/// any power-of-two GPU count up to 16.
fn config_strategy() -> impl Strategy<Value = ParallelConfig> {
    (0u32..3, 0u32..4, 0u32..4).prop_map(|(d, t, p)| {
        ParallelConfig::new(1 << d, 1 << t, 1 << p)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Each DP replica's shards cover every layer byte exactly once
    /// (within integer-division slack of one byte per rank per layer).
    #[test]
    fn shards_partition_the_model(cfg in config_strategy()) {
        let m = presets::llama2_70b();
        let map = ShardMap::new(&m, cfg);
        let total = m.weight_bytes_per_layer() * m.num_layers as u64;
        let replica: u64 = map
            .shards
            .iter()
            .filter(|s| s.dp_rank == 0)
            .map(|s| s.layer_weight_bytes())
            .sum();
        let slack = (cfg.tp * m.num_layers) as u64;
        prop_assert!(replica.abs_diff(total) <= slack);
    }

    /// Re-sharding: for every GPU, load + resident equals its new
    /// shard size, and the identity transition loads zero.
    #[test]
    fn reshard_conserves_bytes(a in config_strategy(), b in config_strategy()) {
        prop_assume!(a.num_gpus() == b.num_gpus());
        let m = presets::llama2_70b();
        let plan = ReshardPlan::plan(&m, a, b);
        let to_map = ShardMap::new(&m, b);
        for mv in &plan.moves {
            prop_assert_eq!(
                mv.load_bytes + mv.resident_bytes,
                to_map.shard(mv.gpu).weight_bytes()
            );
        }
        if a == b {
            prop_assert_eq!(plan.total_load_bytes(), 0);
        }
    }

    /// Resident bytes are symmetric across transition direction.
    #[test]
    fn reshard_resident_symmetric(a in config_strategy(), b in config_strategy()) {
        prop_assume!(a.num_gpus() == b.num_gpus());
        let m = presets::codellama_34b();
        let fwd: u64 = ReshardPlan::plan(&m, a, b).moves.iter().map(|v| v.resident_bytes).sum();
        let bwd: u64 = ReshardPlan::plan(&m, b, a).moves.iter().map(|v| v.resident_bytes).sum();
        prop_assert_eq!(fwd, bwd);
    }

    /// Label parse/display round-trips for arbitrary degrees.
    #[test]
    fn label_roundtrip(dp in 1usize..16, tp in 1usize..16, pp in 1usize..16) {
        let cfg = ParallelConfig::new(dp, tp, pp);
        let parsed: ParallelConfig = cfg.to_string().parse().unwrap();
        prop_assert_eq!(parsed, cfg);
    }

    /// Stage layer spans partition `[0, L)` contiguously.
    #[test]
    fn stage_layers_partition(pp in 1usize..12, layers in 1usize..200) {
        prop_assume!(pp <= layers);
        let cfg = ParallelConfig::pp(pp);
        let mut expect_start = 0;
        for r in 0..pp {
            let (s, e) = cfg.stage_layers(layers, r);
            prop_assert_eq!(s, expect_start);
            prop_assert!(e > s, "every stage owns at least one layer");
            expect_start = e;
        }
        prop_assert_eq!(expect_start, layers);
    }

    /// GPU index <-> coordinates bijection.
    #[test]
    fn gpu_index_bijection(cfg in config_strategy()) {
        let mut seen = std::collections::HashSet::new();
        for g in 0..cfg.num_gpus() {
            let (d, p, t) = cfg.coords(g);
            prop_assert_eq!(cfg.gpu_index(d, p, t), g);
            prop_assert!(seen.insert((d, p, t)));
        }
    }
}
