//! The dynamic model re-sharding planner (paper §4.1).
//!
//! When Seesaw transitions between the prefill configuration `c_p` and
//! the decode configuration `c_d`, every GPU must end up holding its
//! `c_d` weight shard. Following the paper, missing weight bytes are
//! *reloaded from CPU memory* over the host PCIe link (model weights
//! are kept resident in host RAM). Bytes a GPU already holds — the
//! intersection of its old and new shard ranges — do not move.
//!
//! The output [`ReshardPlan`] is consumed by the engines, which turn
//! each [`WeightMove`] into a host-to-device transfer task on the
//! simulated PCIe link. KV-cache re-sharding is *not* planned here: it
//! rides along with the tiered-buffer swap traffic (paper Fig. 7) and
//! is handled by `seesaw-kv`.

use crate::config::ParallelConfig;
use crate::shard::{GpuShard, ShardMap};
use seesaw_model::ModelConfig;
use serde::{Deserialize, Serialize};

/// Weight bytes one GPU must load (and already holds) for a
/// transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WeightMove {
    /// Flat GPU index.
    pub gpu: usize,
    /// Bytes to fetch from host memory.
    pub load_bytes: u64,
    /// Bytes of the new shard already resident from the old shard.
    pub resident_bytes: u64,
}

/// A complete weight re-sharding plan between two configurations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReshardPlan {
    /// Configuration being left.
    pub from: ParallelConfig,
    /// Configuration being entered.
    pub to: ParallelConfig,
    /// Per-GPU moves, indexed by flat GPU index.
    pub moves: Vec<WeightMove>,
}

impl ReshardPlan {
    /// Plan the transition for `model` from `from` to `to`. Both
    /// configurations must span the same number of GPUs.
    pub fn plan(model: &ModelConfig, from: ParallelConfig, to: ParallelConfig) -> Self {
        assert_eq!(
            from.num_gpus(),
            to.num_gpus(),
            "re-sharding requires both configs to span the same GPUs"
        );
        let from_map = ShardMap::new(model, from);
        let to_map = ShardMap::new(model, to);
        let moves = (0..to.num_gpus())
            .map(|g| plan_gpu(from_map.shard(g), to_map.shard(g)))
            .collect();
        ReshardPlan { from, to, moves }
    }

    /// Total bytes loaded across all GPUs.
    pub fn total_load_bytes(&self) -> u64 {
        self.moves.iter().map(|m| m.load_bytes).sum()
    }

    /// The slowest GPU's load (PCIe loads run in parallel per GPU, so
    /// this bounds the transition's weight-reload critical path).
    pub fn max_load_bytes(&self) -> u64 {
        self.moves.iter().map(|m| m.load_bytes).max().unwrap_or(0)
    }

    /// Whether this transition is a no-op (identical configs).
    pub fn is_noop(&self) -> bool {
        self.from == self.to
    }
}

/// Bytes of the new shard already present: per layer owned under both
/// configs, the overlap of the two contiguous byte ranges.
fn plan_gpu(old: &GpuShard, new: &GpuShard) -> WeightMove {
    let mut resident = 0u64;
    let (nlo, nhi) = new.layer_byte_range;
    let (olo, ohi) = old.layer_byte_range;
    let per_layer_overlap = nhi.min(ohi).saturating_sub(nlo.max(olo));
    if per_layer_overlap > 0 {
        let shared_layers = new
            .layer_end
            .min(old.layer_end)
            .saturating_sub(new.layer_start.max(old.layer_start));
        resident += per_layer_overlap * shared_layers as u64;
    }
    // Embeddings: resident if the GPU kept the same embedding role;
    // conservatively count the smaller of old/new holdings.
    resident += new.embedding_bytes.min(old.embedding_bytes);
    let need = new.weight_bytes();
    WeightMove {
        gpu: new.gpu,
        load_bytes: need - resident.min(need),
        resident_bytes: resident.min(need),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seesaw_model::presets;

    #[test]
    fn identity_transition_loads_nothing() {
        let m = presets::codellama_34b();
        let c = ParallelConfig::new(1, 2, 2);
        let plan = ReshardPlan::plan(&m, c, c);
        assert!(plan.is_noop());
        assert_eq!(plan.total_load_bytes(), 0);
        for mv in &plan.moves {
            assert_eq!(mv.load_bytes, 0);
        }
    }

    #[test]
    fn pp_to_tp_reloads_most_of_the_new_shard() {
        // PP4 -> TP4 on 34B: GPU 0 held layers [0,12) in full; under
        // TP4 it needs 1/4 of every layer. Overlap = 1/4 of the 12
        // layers it had.
        let m = presets::codellama_34b();
        let plan = ReshardPlan::plan(&m, ParallelConfig::pp(4), ParallelConfig::tp(4));
        let lb = m.weight_bytes_per_layer();
        let mv0 = &plan.moves[0];
        // New shard: 48 layers * lb/4 (+ embeddings). Resident: 12 * lb/4.
        let expect_resident = 12 * (lb / 4);
        assert!(
            mv0.resident_bytes.abs_diff(expect_resident) < lb / 2,
            "resident {} vs {}",
            mv0.resident_bytes,
            expect_resident
        );
        assert!(mv0.load_bytes > 30 * (lb / 4));
    }

    #[test]
    fn transition_cost_is_symmetric_in_total_for_tp_pp_swap() {
        let m = presets::llama2_70b();
        let a = ReshardPlan::plan(&m, ParallelConfig::pp(8), ParallelConfig::new(1, 4, 2));
        let b = ReshardPlan::plan(&m, ParallelConfig::new(1, 4, 2), ParallelConfig::pp(8));
        // Same overlap structure in both directions => same resident
        // bytes; loads differ only by shard-size differences.
        let ra: u64 = a.moves.iter().map(|v| v.resident_bytes).sum();
        let rb: u64 = b.moves.iter().map(|v| v.resident_bytes).sum();
        assert_eq!(ra, rb);
    }

    #[test]
    fn loads_never_exceed_new_shard_size() {
        let m = presets::llama3_15b();
        for (f, t) in [
            (ParallelConfig::pp(4), ParallelConfig::tp(4)),
            (ParallelConfig::tp(4), ParallelConfig::new(1, 2, 2)),
            (ParallelConfig::new(2, 2, 1), ParallelConfig::new(2, 1, 2)),
        ] {
            let plan = ReshardPlan::plan(&m, f, t);
            let to_map = ShardMap::new(&m, t);
            for mv in &plan.moves {
                let need = to_map.shard(mv.gpu).weight_bytes();
                assert_eq!(mv.load_bytes + mv.resident_bytes, need);
            }
        }
    }

    #[test]
    #[should_panic(expected = "same GPUs")]
    fn mismatched_gpu_counts_panic() {
        let m = presets::llama2_13b();
        ReshardPlan::plan(&m, ParallelConfig::pp(4), ParallelConfig::tp(8));
    }

    #[test]
    fn max_load_bounds_critical_path() {
        let m = presets::llama2_70b();
        let plan = ReshardPlan::plan(&m, ParallelConfig::pp(8), ParallelConfig::new(1, 4, 2));
        assert!(plan.max_load_bytes() <= plan.total_load_bytes());
        assert!(plan.max_load_bytes() * 8 >= plan.total_load_bytes());
    }
}
