//! Parallelism configurations, shard maps, and the dynamic
//! re-sharding planner — the mechanism behind the paper's core
//! contribution (§4.1).
//!
//! * [`ParallelConfig`] — a `(DP, TP, PP)` triple with the paper's
//!   label syntax (`"D2T2P2"`, `"P8"`, `"T4P2"`).
//! * [`shard`] — which bytes of which layers (and which KV heads) each
//!   GPU holds under a configuration.
//! * [`reshard`] — given a prefill config `c_p` and a decode config
//!   `c_d`, the byte-exact transfer plan to move every GPU from its
//!   `c_p` shard to its `c_d` shard by reloading from CPU memory.
//! * [`feasible`] — memory feasibility and maximum-batch-size
//!   accounting (paper Appendix A.2), and enumeration of all valid
//!   configurations for a cluster.

pub mod config;
pub mod feasible;
pub mod reshard;
pub mod shard;

pub use config::ParallelConfig;
pub use feasible::{enumerate_configs, max_batch_size, FitError, MemoryPlan};
pub use reshard::{ReshardPlan, WeightMove};
pub use shard::{GpuShard, ShardMap};
