//! The `(DP, TP, PP)` configuration triple.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// A static parallelization strategy: data parallelism × tensor
/// parallelism × pipeline parallelism.
///
/// The paper labels these `D{dp}T{tp}P{pp}`, omitting degree-1
/// dimensions (so `"P8"` is `DP=1, TP=1, PP=8` and `"T4P2"` is
/// `DP=1, TP=4, PP=2`). [`FromStr`]/[`fmt::Display`] implement that
/// syntax, and also accept the long forms `TP4PP2`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ParallelConfig {
    /// Data-parallel degree (model replicas).
    pub dp: usize,
    /// Tensor-parallel degree (weight shards per replica).
    pub tp: usize,
    /// Pipeline-parallel degree (layer stages per replica).
    pub pp: usize,
}

impl ParallelConfig {
    /// Construct a config; all degrees must be ≥ 1.
    pub fn new(dp: usize, tp: usize, pp: usize) -> Self {
        assert!(dp >= 1 && tp >= 1 && pp >= 1, "degrees must be >= 1");
        ParallelConfig { dp, tp, pp }
    }

    /// Pure tensor parallelism of degree `tp`.
    pub fn tp(tp: usize) -> Self {
        Self::new(1, tp, 1)
    }

    /// Pure pipeline parallelism of degree `pp`.
    pub fn pp(pp: usize) -> Self {
        Self::new(1, 1, pp)
    }

    /// Total GPUs this configuration occupies.
    pub fn num_gpus(&self) -> usize {
        self.dp * self.tp * self.pp
    }

    /// GPUs per data-parallel replica.
    pub fn gpus_per_replica(&self) -> usize {
        self.tp * self.pp
    }

    /// Flat GPU index for a `(dp_rank, pp_rank, tp_rank)` coordinate.
    /// The rank order `(dp, pp, tp)` is fixed workspace-wide so that
    /// shard maps from different configs refer to the same physical
    /// GPUs.
    pub fn gpu_index(&self, dp_rank: usize, pp_rank: usize, tp_rank: usize) -> usize {
        debug_assert!(dp_rank < self.dp && pp_rank < self.pp && tp_rank < self.tp);
        (dp_rank * self.pp + pp_rank) * self.tp + tp_rank
    }

    /// Inverse of [`Self::gpu_index`]: `(dp_rank, pp_rank, tp_rank)`.
    pub fn coords(&self, gpu: usize) -> (usize, usize, usize) {
        debug_assert!(gpu < self.num_gpus());
        let tp_rank = gpu % self.tp;
        let pp_rank = (gpu / self.tp) % self.pp;
        let dp_rank = gpu / (self.tp * self.pp);
        (dp_rank, pp_rank, tp_rank)
    }

    /// Layer range `[start, end)` owned by pipeline stage `pp_rank`
    /// when the model has `num_layers` layers. Remainder layers go to
    /// the earliest stages.
    pub fn stage_layers(&self, num_layers: usize, pp_rank: usize) -> (usize, usize) {
        debug_assert!(pp_rank < self.pp);
        let base = num_layers / self.pp;
        let extra = num_layers % self.pp;
        let start = pp_rank * base + pp_rank.min(extra);
        let len = base + usize::from(pp_rank < extra);
        (start, start + len)
    }

    /// Number of layers on the largest pipeline stage.
    pub fn max_stage_layers(&self, num_layers: usize) -> usize {
        num_layers / self.pp + usize::from(!num_layers.is_multiple_of(self.pp))
    }
}

impl fmt::Display for ParallelConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut wrote = false;
        if self.dp > 1 {
            write!(f, "D{}", self.dp)?;
            wrote = true;
        }
        if self.tp > 1 {
            write!(f, "T{}", self.tp)?;
            wrote = true;
        }
        if self.pp > 1 {
            write!(f, "P{}", self.pp)?;
            wrote = true;
        }
        if !wrote {
            write!(f, "T1")?;
        }
        Ok(())
    }
}

/// Error parsing a [`ParallelConfig`] label.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseConfigError(pub String);

impl fmt::Display for ParseConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid parallel config label: {}", self.0)
    }
}

impl std::error::Error for ParseConfigError {}

impl FromStr for ParallelConfig {
    type Err = ParseConfigError;

    /// Accepts `D2T2P2`, `T4`, `P8`, `TP4PP2`, `DP2TP2PP2`
    /// (case-insensitive). Missing dimensions default to 1.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let up = s.to_ascii_uppercase();
        let bytes = up.as_bytes();
        let (mut dp, mut tp, mut pp) = (1usize, 1usize, 1usize);
        let mut i = 0;
        let mut any = false;
        while i < bytes.len() {
            // Read dimension tag: D/DP/T/TP/P/PP.
            let dim = match bytes[i] {
                b'D' => {
                    i += 1;
                    if i < bytes.len() && bytes[i] == b'P' {
                        i += 1;
                    }
                    b'D'
                }
                b'T' => {
                    i += 1;
                    if i < bytes.len() && bytes[i] == b'P' {
                        i += 1;
                    }
                    b'T'
                }
                b'P' => {
                    i += 1;
                    if i < bytes.len() && bytes[i] == b'P' {
                        i += 1;
                    }
                    b'P'
                }
                _ => return Err(ParseConfigError(s.to_string())),
            };
            let start = i;
            while i < bytes.len() && bytes[i].is_ascii_digit() {
                i += 1;
            }
            if start == i {
                return Err(ParseConfigError(s.to_string()));
            }
            let val: usize = up[start..i]
                .parse()
                .map_err(|_| ParseConfigError(s.to_string()))?;
            if val == 0 {
                return Err(ParseConfigError(s.to_string()));
            }
            match dim {
                b'D' => dp = val,
                b'T' => tp = val,
                b'P' => pp = val,
                _ => unreachable!(),
            }
            any = true;
        }
        if !any {
            return Err(ParseConfigError(s.to_string()));
        }
        Ok(ParallelConfig { dp, tp, pp })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_paper_labels() {
        assert_eq!("D2T2P2".parse::<ParallelConfig>().unwrap(), ParallelConfig::new(2, 2, 2));
        assert_eq!("P8".parse::<ParallelConfig>().unwrap(), ParallelConfig::pp(8));
        assert_eq!("T4P2".parse::<ParallelConfig>().unwrap(), ParallelConfig::new(1, 4, 2));
        assert_eq!("TP4PP2".parse::<ParallelConfig>().unwrap(), ParallelConfig::new(1, 4, 2));
        assert_eq!("dp2tp2pp2".parse::<ParallelConfig>().unwrap(), ParallelConfig::new(2, 2, 2));
        assert_eq!("t1".parse::<ParallelConfig>().unwrap(), ParallelConfig::new(1, 1, 1));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("".parse::<ParallelConfig>().is_err());
        assert!("X4".parse::<ParallelConfig>().is_err());
        assert!("T0".parse::<ParallelConfig>().is_err());
        assert!("T".parse::<ParallelConfig>().is_err());
        assert!("T4Q2".parse::<ParallelConfig>().is_err());
    }

    #[test]
    fn display_roundtrip() {
        for c in [
            ParallelConfig::new(1, 1, 8),
            ParallelConfig::new(1, 4, 2),
            ParallelConfig::new(2, 2, 2),
            ParallelConfig::new(1, 1, 1),
        ] {
            let label = c.to_string();
            assert_eq!(label.parse::<ParallelConfig>().unwrap(), c, "label {label}");
        }
        assert_eq!(ParallelConfig::new(2, 4, 1).to_string(), "D2T4");
    }

    #[test]
    fn gpu_index_coords_roundtrip() {
        let c = ParallelConfig::new(2, 2, 2);
        for g in 0..c.num_gpus() {
            let (d, p, t) = c.coords(g);
            assert_eq!(c.gpu_index(d, p, t), g);
        }
    }

    #[test]
    fn stage_layers_partition_everything() {
        let c = ParallelConfig::pp(3);
        // 40 layers across 3 stages: 14/13/13.
        let spans: Vec<_> = (0..3).map(|r| c.stage_layers(40, r)).collect();
        assert_eq!(spans[0], (0, 14));
        assert_eq!(spans[1], (14, 27));
        assert_eq!(spans[2], (27, 40));
        assert_eq!(c.max_stage_layers(40), 14);
    }

    #[test]
    fn gpus_per_replica() {
        let c = ParallelConfig::new(2, 2, 2);
        assert_eq!(c.num_gpus(), 8);
        assert_eq!(c.gpus_per_replica(), 4);
    }
}
