//! Memory feasibility and maximum-batch-size accounting
//! (paper Appendix A.2), plus configuration enumeration.

use crate::config::ParallelConfig;
use crate::shard::ShardMap;
use seesaw_hw::ClusterSpec;
use seesaw_model::ModelConfig;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Fraction of device memory reserved for activations, CUDA context,
/// and fragmentation slack — unavailable to weights or KV cache.
pub const ACTIVATION_RESERVE_FRAC: f64 = 0.08;

/// Why a configuration cannot run on a cluster.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum FitError {
    /// The configuration needs more GPUs than the cluster has.
    NotEnoughGpus {
        /// GPUs the config spans.
        need: usize,
        /// GPUs available.
        have: usize,
    },
    /// The per-GPU weight shard (plus reserve) exceeds device memory.
    WeightsDontFit {
        /// Largest per-GPU bytes required.
        need: u64,
        /// Usable bytes per GPU.
        have: u64,
    },
    /// Weights fit but leave no room for a useful KV cache.
    NoKvSpace {
        /// Tokens of KV capacity left (below the floor).
        tokens: u64,
    },
    /// Structural mismatch (TP doesn't divide heads, PP exceeds
    /// layers).
    Invalid(String),
}

impl fmt::Display for FitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FitError::NotEnoughGpus { need, have } => {
                write!(f, "config needs {need} GPUs, cluster has {have}")
            }
            FitError::WeightsDontFit { need, have } => write!(
                f,
                "weight shard needs {need} bytes/GPU, only {have} usable"
            ),
            FitError::NoKvSpace { tokens } => {
                write!(f, "only {tokens} tokens of KV capacity remain")
            }
            FitError::Invalid(s) => write!(f, "invalid config: {s}"),
        }
    }
}

impl std::error::Error for FitError {}

/// Minimum KV token capacity for a configuration to count as feasible
/// (below this, not even one long request fits).
pub const MIN_KV_TOKENS: u64 = 4096;

/// The memory layout of a model under a configuration on a cluster.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MemoryPlan {
    /// The configuration planned.
    pub config: ParallelConfig,
    /// Largest per-GPU weight footprint, bytes.
    pub weight_bytes_per_gpu: u64,
    /// Bytes reserved per GPU for activations/context.
    pub reserve_bytes_per_gpu: u64,
    /// GPU KV-cache capacity in *tokens*, per DP replica (the
    /// bottleneck-stage bound).
    pub kv_tokens_per_replica: u64,
    /// GPU KV-cache capacity in tokens across the whole cluster
    /// (`× DP`).
    pub kv_tokens_total: u64,
    /// Host (CPU) KV buffer capacity in tokens across the cluster,
    /// for tiered buffering.
    pub cpu_kv_tokens_total: u64,
}

impl MemoryPlan {
    /// Compute the plan, or explain why the config cannot run.
    pub fn new(
        model: &ModelConfig,
        cluster: &ClusterSpec,
        config: ParallelConfig,
    ) -> Result<Self, FitError> {
        validate_structure(model, config)?;
        if config.num_gpus() > cluster.num_gpus {
            return Err(FitError::NotEnoughGpus {
                need: config.num_gpus(),
                have: cluster.num_gpus,
            });
        }
        let map = ShardMap::new(model, config);
        let reserve = (cluster.gpu.mem_bytes as f64 * ACTIVATION_RESERVE_FRAC) as u64;
        let usable = cluster.gpu.mem_bytes - reserve;
        let weight_max = map.max_weight_bytes_per_gpu();
        if weight_max > usable {
            return Err(FitError::WeightsDontFit {
                need: weight_max,
                have: usable,
            });
        }

        // Per-replica KV token capacity: each token of a sequence
        // consumes bytes on every GPU of its replica; the tightest GPU
        // bounds the replica.
        let mut tokens_min = u64::MAX;
        for s in map.shards.iter().filter(|s| s.dp_rank == 0) {
            let per_token = map.kv_bytes_per_token_on_gpu(s.gpu);
            if per_token == 0 {
                continue;
            }
            let free = usable.saturating_sub(map.shard(s.gpu).weight_bytes());
            tokens_min = tokens_min.min(free / per_token);
        }
        if tokens_min == u64::MAX {
            tokens_min = 0;
        }
        if tokens_min < MIN_KV_TOKENS {
            return Err(FitError::NoKvSpace { tokens: tokens_min });
        }
        let cpu_tokens = cluster.total_cpu_mem() / model.kv_bytes_per_token();
        Ok(MemoryPlan {
            config,
            weight_bytes_per_gpu: weight_max,
            reserve_bytes_per_gpu: reserve,
            kv_tokens_per_replica: tokens_min,
            kv_tokens_total: tokens_min * config.dp as u64,
            cpu_kv_tokens_total: cpu_tokens,
        })
    }

    /// Maximum concurrent sequences (global batch size) at an average
    /// sequence length of `avg_len` tokens.
    pub fn max_batch(&self, avg_len: usize) -> usize {
        (self.kv_tokens_total / avg_len.max(1) as u64) as usize
    }
}

fn validate_structure(model: &ModelConfig, config: ParallelConfig) -> Result<(), FitError> {
    if config.tp > model.num_heads || !model.num_heads.is_multiple_of(config.tp) {
        return Err(FitError::Invalid(format!(
            "TP={} does not divide {} query heads",
            config.tp, model.num_heads
        )));
    }
    if config.pp > model.num_layers {
        return Err(FitError::Invalid(format!(
            "PP={} exceeds {} layers",
            config.pp, model.num_layers
        )));
    }
    Ok(())
}

/// Maximum global batch size for `model` on `cluster` under `config`
/// at average sequence length `avg_len` — convenience wrapper.
pub fn max_batch_size(
    model: &ModelConfig,
    cluster: &ClusterSpec,
    config: ParallelConfig,
    avg_len: usize,
) -> Result<usize, FitError> {
    Ok(MemoryPlan::new(model, cluster, config)?.max_batch(avg_len))
}

/// Enumerate every structurally valid configuration that uses
/// *exactly* `cluster.num_gpus` GPUs (the paper sweeps these as the
/// vLLM baselines). Feasibility (memory) is NOT checked here; pair
/// with [`MemoryPlan::new`].
pub fn enumerate_configs(model: &ModelConfig, num_gpus: usize) -> Vec<ParallelConfig> {
    let mut out = Vec::new();
    for dp in 1..=num_gpus {
        if !num_gpus.is_multiple_of(dp) {
            continue;
        }
        let rest = num_gpus / dp;
        for tp in 1..=rest {
            if !rest.is_multiple_of(tp) {
                continue;
            }
            let pp = rest / tp;
            let cfg = ParallelConfig::new(dp, tp, pp);
            if validate_structure(model, cfg).is_ok() {
                out.push(cfg);
            }
        }
    }
    out
}

/// Enumerate configurations that are both structurally valid *and*
/// memory-feasible on the cluster.
pub fn feasible_configs(model: &ModelConfig, cluster: &ClusterSpec) -> Vec<ParallelConfig> {
    enumerate_configs(model, cluster.num_gpus)
        .into_iter()
        .filter(|&c| MemoryPlan::new(model, cluster, c).is_ok())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use seesaw_hw::ClusterSpec;
    use seesaw_model::presets;

    #[test]
    fn seventy_b_does_not_fit_tp1_on_a10() {
        let m = presets::llama2_70b();
        let cluster = ClusterSpec::a10x8();
        let err = MemoryPlan::new(&m, &cluster, ParallelConfig::new(1, 1, 1)).unwrap_err();
        assert!(matches!(err, FitError::WeightsDontFit { .. } | FitError::NotEnoughGpus { .. }));
    }

    #[test]
    fn seventy_b_fits_pp8_on_a10() {
        let m = presets::llama2_70b();
        let cluster = ClusterSpec::a10x8();
        let plan = MemoryPlan::new(&m, &cluster, ParallelConfig::pp(8)).unwrap();
        assert!(plan.kv_tokens_total >= MIN_KV_TOKENS);
    }

    #[test]
    fn figure4_disaggregation_constraint() {
        // Paper §3.2: 70B on 40-GiB GPUs needs >= 4 GPUs for weights,
        // so an 8-GPU node admits only the 4+4 prefill/decode split.
        let m = presets::llama2_70b();
        let c8 = ClusterSpec::a100x8_pcie();
        for n in 1..=3usize {
            let sub = c8.subset(n);
            let any_fits = enumerate_configs(&m, n)
                .into_iter()
                .any(|c| MemoryPlan::new(&m, &sub, c).is_ok());
            assert!(!any_fits, "70B should not fit on {n} x 40GiB GPUs");
        }
        let sub4 = c8.subset(4);
        let fits4 = enumerate_configs(&m, 4)
            .into_iter()
            .any(|c| MemoryPlan::new(&m, &sub4, c).is_ok());
        assert!(fits4, "70B must fit on 4 x 40GiB GPUs");
    }

    #[test]
    fn dp_shrinks_kv_capacity_per_the_paper() {
        // Appendix A Fig 15: duplicating the model leaves less room
        // for KV. Compare D2T2 against T4 on 4 GPUs with the 15B model.
        let m = presets::llama3_15b();
        let cluster = ClusterSpec::a10x4();
        let dp = MemoryPlan::new(&m, &cluster, ParallelConfig::new(2, 2, 1)).unwrap();
        let tp = MemoryPlan::new(&m, &cluster, ParallelConfig::tp(4)).unwrap();
        assert!(
            dp.kv_tokens_total < tp.kv_tokens_total,
            "DP2TP2 {} tokens vs TP4 {} tokens",
            dp.kv_tokens_total,
            tp.kv_tokens_total
        );
    }

    #[test]
    fn enumerate_configs_covers_divisor_triples() {
        let m = presets::llama2_70b(); // 64 heads, 80 layers
        let cfgs = enumerate_configs(&m, 8);
        assert!(cfgs.contains(&ParallelConfig::pp(8)));
        assert!(cfgs.contains(&ParallelConfig::tp(8)));
        assert!(cfgs.contains(&ParallelConfig::new(2, 2, 2)));
        // Every config spans exactly 8 GPUs.
        assert!(cfgs.iter().all(|c| c.num_gpus() == 8));
        // No duplicates.
        let mut seen = std::collections::HashSet::new();
        assert!(cfgs.iter().all(|c| seen.insert(*c)));
    }

    #[test]
    fn structural_validation_rejects_bad_tp() {
        let m = presets::llama2_13b(); // 40 heads
        let cluster = ClusterSpec::a10x8();
        // TP=16 > cluster anyway; TP=3 doesn't divide 40... actually 3
        // isn't a divisor of 8 GPUs either; test directly:
        let err = MemoryPlan::new(&m, &cluster, ParallelConfig::new(1, 16, 1)).unwrap_err();
        assert!(matches!(err, FitError::Invalid(_) | FitError::NotEnoughGpus { .. }));
    }

    #[test]
    fn max_batch_scales_inversely_with_length() {
        let m = presets::codellama_34b();
        let cluster = ClusterSpec::a10x8();
        let plan = MemoryPlan::new(&m, &cluster, ParallelConfig::new(1, 4, 2)).unwrap();
        let short = plan.max_batch(500);
        let long = plan.max_batch(2000);
        assert!(short >= 4 * long - 4);
        assert!(short > long);
    }

    #[test]
    fn cpu_buffer_is_much_larger_than_gpu_kv() {
        // 80 GiB/GPU host memory dwarfs leftover device memory; tiered
        // buffering depends on this.
        let m = presets::codellama_34b();
        let cluster = ClusterSpec::a10x8();
        let plan = MemoryPlan::new(&m, &cluster, ParallelConfig::new(1, 4, 2)).unwrap();
        assert!(plan.cpu_kv_tokens_total > 2 * plan.kv_tokens_total);
    }

    #[test]
    fn feasible_configs_subset_of_enumerated() {
        let m = presets::llama2_70b();
        let cluster = ClusterSpec::a10x8();
        let feas = feasible_configs(&m, &cluster);
        let all = enumerate_configs(&m, 8);
        assert!(!feas.is_empty());
        assert!(feas.len() < all.len()); // e.g. D8 can't fit 70B
        for c in &feas {
            assert!(all.contains(c));
        }
    }
}
