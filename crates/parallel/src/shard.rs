//! Weight and KV shard maps: exactly which bytes live on which GPU
//! under a given [`ParallelConfig`].
//!
//! Tensor-parallel shards of one layer are modeled as *contiguous byte
//! ranges* of that layer's weight blob in a canonical parameter order.
//! This is how the re-sharding planner (`reshard`) computes how many
//! bytes a GPU already holds when the configuration changes: the
//! intersection of its old and new ranges.

use crate::config::ParallelConfig;
use seesaw_model::ModelConfig;
use serde::{Deserialize, Serialize};

/// The shard of model state owned by one GPU under one configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GpuShard {
    /// Flat GPU index (see [`ParallelConfig::gpu_index`]).
    pub gpu: usize,
    /// Data-parallel rank.
    pub dp_rank: usize,
    /// Pipeline-stage rank.
    pub pp_rank: usize,
    /// Tensor-parallel rank.
    pub tp_rank: usize,
    /// First decoder layer owned (inclusive).
    pub layer_start: usize,
    /// Last decoder layer owned (exclusive).
    pub layer_end: usize,
    /// Byte range `[lo, hi)` of *each* owned layer's weight blob held
    /// by this GPU (the tensor-parallel slice).
    pub layer_byte_range: (u64, u64),
    /// Bytes of embedding / LM-head weights held (input embeddings on
    /// stage 0, LM head on the last stage, both TP-sharded).
    pub embedding_bytes: u64,
    /// KV heads held per owned layer (GQA heads divided across TP
    /// ranks, replicated when `tp > num_kv_heads`).
    pub kv_heads: usize,
}

impl GpuShard {
    /// Number of decoder layers owned.
    pub fn num_layers(&self) -> usize {
        self.layer_end - self.layer_start
    }

    /// Bytes of decoder-layer weights held.
    pub fn layer_weight_bytes(&self) -> u64 {
        let (lo, hi) = self.layer_byte_range;
        (hi - lo) * self.num_layers() as u64
    }

    /// Total weight bytes held (layers + embeddings).
    pub fn weight_bytes(&self) -> u64 {
        self.layer_weight_bytes() + self.embedding_bytes
    }

    /// Whether this shard owns (part of) `layer`.
    pub fn owns_layer(&self, layer: usize) -> bool {
        (self.layer_start..self.layer_end).contains(&layer)
    }
}

/// The complete placement of one model under one configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardMap {
    /// The configuration this map realizes.
    pub config: ParallelConfig,
    /// Per-GPU shards, indexed by flat GPU index.
    pub shards: Vec<GpuShard>,
    /// Bytes of one full layer's weights (unsharded).
    pub layer_bytes: u64,
    /// KV-cache bytes per token per layer held by one TP rank.
    pub kv_bytes_per_token_layer_rank: u64,
}

impl ShardMap {
    /// Build the shard map for `model` under `config`.
    pub fn new(model: &ModelConfig, config: ParallelConfig) -> Self {
        let layer_bytes = model.weight_bytes_per_layer();
        let emb_total = model.embedding_params() * model.dtype.bytes();
        // Input embedding and LM head are each half of emb_total.
        let emb_half = emb_total / 2;
        let kv_heads = kv_heads_per_rank(model.num_kv_heads, config.tp);
        let kv_rank_bytes =
            2 * (kv_heads * model.head_dim) as u64 * model.dtype.bytes();

        let mut shards = Vec::with_capacity(config.num_gpus());
        for gpu in 0..config.num_gpus() {
            let (dp_rank, pp_rank, tp_rank) = config.coords(gpu);
            let (layer_start, layer_end) = config.stage_layers(model.num_layers, pp_rank);
            let lo = layer_bytes * tp_rank as u64 / config.tp as u64;
            let hi = layer_bytes * (tp_rank as u64 + 1) / config.tp as u64;
            let mut embedding_bytes = 0;
            if pp_rank == 0 {
                embedding_bytes += emb_half / config.tp as u64;
            }
            if pp_rank == config.pp - 1 {
                embedding_bytes += emb_half / config.tp as u64;
            }
            shards.push(GpuShard {
                gpu,
                dp_rank,
                pp_rank,
                tp_rank,
                layer_start,
                layer_end,
                layer_byte_range: (lo, hi),
                embedding_bytes,
                kv_heads,
            });
        }
        ShardMap {
            config,
            shards,
            layer_bytes,
            kv_bytes_per_token_layer_rank: kv_rank_bytes,
        }
    }

    /// The shard on a given GPU.
    pub fn shard(&self, gpu: usize) -> &GpuShard {
        &self.shards[gpu]
    }

    /// Largest per-GPU weight footprint (bytes) — the memory planner's
    /// constraint.
    pub fn max_weight_bytes_per_gpu(&self) -> u64 {
        self.shards.iter().map(|s| s.weight_bytes()).max().unwrap_or(0)
    }

    /// KV-cache bytes one token of one sequence consumes on `gpu`
    /// (layers owned there × per-layer rank bytes). Zero for GPUs of a
    /// different DP replica than the sequence.
    pub fn kv_bytes_per_token_on_gpu(&self, gpu: usize) -> u64 {
        self.kv_bytes_per_token_layer_rank * self.shards[gpu].num_layers() as u64
    }

    /// KV bytes per token summed across one DP replica — what a
    /// sequence costs the cluster.
    pub fn kv_bytes_per_token_replica(&self) -> u64 {
        self.shards
            .iter()
            .filter(|s| s.dp_rank == 0)
            .map(|s| self.kv_bytes_per_token_on_gpu(s.gpu))
            .sum()
    }
}

/// KV heads per tensor-parallel rank: evenly divided, or replicated
/// (one each) when `tp` exceeds the head count — mirroring how
/// Megatron-style GQA sharding replicates KV heads.
pub fn kv_heads_per_rank(num_kv_heads: usize, tp: usize) -> usize {
    if tp >= num_kv_heads {
        1
    } else {
        num_kv_heads.div_ceil(tp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seesaw_model::presets;

    #[test]
    fn tp_shards_partition_each_layer() {
        let m = presets::codellama_34b();
        let map = ShardMap::new(&m, ParallelConfig::tp(4));
        let mut covered = 0;
        for s in &map.shards {
            let (lo, hi) = s.layer_byte_range;
            covered += hi - lo;
            assert_eq!(s.layer_start, 0);
            assert_eq!(s.layer_end, m.num_layers);
        }
        assert_eq!(covered, map.layer_bytes);
    }

    #[test]
    fn pp_shards_partition_layers() {
        let m = presets::llama2_70b();
        let map = ShardMap::new(&m, ParallelConfig::pp(8));
        let total: usize = map.shards.iter().map(|s| s.num_layers()).sum();
        assert_eq!(total, m.num_layers);
        for s in &map.shards {
            assert_eq!(s.layer_byte_range, (0, map.layer_bytes));
        }
    }

    #[test]
    fn whole_model_bytes_conserved_across_configs() {
        let m = presets::llama2_70b();
        let total_layers = m.weight_bytes_per_layer() * m.num_layers as u64;
        for cfg in [
            ParallelConfig::tp(8),
            ParallelConfig::pp(8),
            ParallelConfig::new(1, 4, 2),
            ParallelConfig::new(2, 2, 2),
        ] {
            let map = ShardMap::new(&m, cfg);
            let per_replica: u64 = map
                .shards
                .iter()
                .filter(|s| s.dp_rank == 0)
                .map(|s| s.layer_weight_bytes())
                .sum();
            // Within rounding of integer division by tp.
            let slack = cfg.tp as u64 * m.num_layers as u64;
            assert!(
                per_replica.abs_diff(total_layers) <= slack,
                "cfg {cfg}: {per_replica} vs {total_layers}"
            );
        }
    }

    #[test]
    fn embeddings_live_on_first_and_last_stage() {
        let m = presets::llama2_13b();
        let map = ShardMap::new(&m, ParallelConfig::pp(4));
        assert!(map.shards[0].embedding_bytes > 0);
        assert!(map.shards[3].embedding_bytes > 0);
        assert_eq!(map.shards[1].embedding_bytes, 0);
        assert_eq!(map.shards[2].embedding_bytes, 0);
        // TP1PP1 holds both halves.
        let solo = ShardMap::new(&m, ParallelConfig::new(1, 1, 1));
        assert_eq!(
            solo.shards[0].embedding_bytes,
            (m.embedding_params() * 2) // all embedding bytes
        );
    }

    #[test]
    fn gqa_kv_head_division() {
        assert_eq!(kv_heads_per_rank(8, 1), 8);
        assert_eq!(kv_heads_per_rank(8, 2), 4);
        assert_eq!(kv_heads_per_rank(8, 8), 1);
        assert_eq!(kv_heads_per_rank(8, 16), 1); // replicated
        assert_eq!(kv_heads_per_rank(40, 8), 5);
        assert_eq!(kv_heads_per_rank(40, 16), 3); // uneven: ceil(40/16)
    }

    #[test]
    fn kv_per_token_replica_matches_model_total_when_tp_divides() {
        let m = presets::codellama_34b(); // 8 kv heads
        for cfg in [ParallelConfig::tp(4), ParallelConfig::pp(4), ParallelConfig::new(1, 2, 2)]
        {
            let map = ShardMap::new(&m, cfg);
            assert_eq!(
                map.kv_bytes_per_token_replica(),
                m.kv_bytes_per_token(),
                "cfg {cfg}"
            );
        }
    }

    #[test]
    fn kv_replication_inflates_footprint_when_tp_exceeds_heads() {
        let m = presets::codellama_34b(); // 8 kv heads
        let map = ShardMap::new(&m, ParallelConfig::tp(16));
        assert!(map.kv_bytes_per_token_replica() > m.kv_bytes_per_token());
    }

    #[test]
    fn dp_replicas_are_identical() {
        let m = presets::llama3_15b();
        let map = ShardMap::new(&m, ParallelConfig::new(2, 2, 1));
        let a = map.shard(map.config.gpu_index(0, 0, 1));
        let b = map.shard(map.config.gpu_index(1, 0, 1));
        assert_eq!(a.layer_byte_range, b.layer_byte_range);
        assert_eq!(a.weight_bytes(), b.weight_bytes());
    }
}
