//! Criterion micro-benchmarks of the reproduction's hot paths: the
//! discrete-event executor, the paged KV allocator, the re-sharding
//! planner, the roofline evaluation, and end-to-end engine runs at
//! small scale.
//!
//! These guard the *simulator's* performance (a full Figure 10 panel
//! executes hundreds of engine runs), not the modeled GPU times.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use seesaw_engine::seesaw::{SeesawEngine, SeesawSpec};
use seesaw_engine::vllm::VllmEngine;
use seesaw_engine::SchedulingPolicy;
use seesaw_hw::ClusterSpec;
use seesaw_kv::PagedKvCache;
use seesaw_model::presets;
use seesaw_parallel::{ParallelConfig, ReshardPlan};
use seesaw_roofline::{BatchShape, Roofline, Stage};
use seesaw_sim::{Simulator, TaskKind, TaskSpec};
use seesaw_workload::WorkloadGen;
use std::hint::black_box;

fn bench_sim_executor(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim_executor");
    const TASKS: usize = 10_000;
    g.throughput(Throughput::Elements(TASKS as u64));
    let drive = |sim: &mut Simulator| {
        let mut prev = None;
        for i in 0..TASKS {
            let r = sim.pool().id(i % 8);
            let mut spec = TaskSpec::new(r, 0.001, TaskKind::Compute);
            if let Some(p) = prev {
                if i % 3 == 0 {
                    spec = spec.after(p);
                }
            }
            prev = Some(sim.submit(spec));
        }
        sim.run_until_idle()
    };
    g.bench_function("fifo_chain_10k_tasks", |b| {
        b.iter(|| {
            let mut sim = Simulator::without_trace();
            (0..8).for_each(|i| {
                sim.add_resource(format!("r{i}"));
            });
            black_box(drive(&mut sim))
        })
    });
    // The sweep-worker steady state: one pooled executor reset and
    // reused per candidate, arena/heap/queue capacity retained.
    g.bench_function("fifo_chain_10k_tasks_pooled", |b| {
        let mut sim = Simulator::without_trace();
        (0..8).for_each(|i| {
            sim.add_resource(format!("r{i}"));
        });
        black_box(drive(&mut sim));
        b.iter(|| {
            sim.reset();
            black_box(drive(&mut sim))
        })
    });
    g.finish();
}

fn bench_paged_kv(c: &mut Criterion) {
    let mut g = c.benchmark_group("paged_kv");
    g.bench_function("alloc_append_free_cycle", |b| {
        b.iter_batched(
            || PagedKvCache::new(1 << 20, 16),
            |mut kv| {
                for id in 0..256u64 {
                    kv.allocate(id, 512).unwrap();
                }
                for id in 0..256u64 {
                    for _ in 0..32 {
                        kv.append_token(id).unwrap();
                    }
                }
                for id in 0..256u64 {
                    black_box(kv.free(id).unwrap());
                }
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_reshard_planner(c: &mut Criterion) {
    let m = presets::llama2_70b();
    c.bench_function("reshard_plan_p8_to_t4p2_70b", |b| {
        b.iter(|| {
            black_box(ReshardPlan::plan(
                &m,
                ParallelConfig::pp(8),
                ParallelConfig::new(1, 4, 2),
            ))
        })
    });
}

fn bench_roofline(c: &mut Criterion) {
    let rl = Roofline::new(ClusterSpec::a10x8(), presets::codellama_34b());
    let shape = BatchShape::decode_uniform(128, 2048);
    c.bench_function("roofline_layer_cost_decode", |b| {
        b.iter(|| black_box(rl.layer_cost(Stage::Decode, &shape, 4)))
    });
    // Guard the memoization win: repeated identical evaluations (the
    // engines' steady-state pattern — every decode round of a stable
    // batch hits the same key) against the raw Table 3 math.
    let shapes: Vec<BatchShape> = (1..=16).map(|b| BatchShape::decode_uniform(b * 8, 1024)).collect();
    c.bench_function("roofline_layer_cost_cached_16shapes", |b| {
        let warm = Roofline::new(ClusterSpec::a10x8(), presets::codellama_34b());
        for s in &shapes {
            warm.layer_cost(Stage::Decode, s, 4);
        }
        b.iter(|| {
            for s in &shapes {
                black_box(warm.layer_cost(Stage::Decode, s, 4));
            }
        })
    });
    c.bench_function("roofline_layer_cost_uncached_16shapes", |b| {
        b.iter(|| {
            for s in &shapes {
                black_box(rl.layer_cost_uncached(Stage::Decode, s, 4));
            }
        })
    });
}

fn bench_autotune_probe(c: &mut Criterion) {
    use seesaw_engine::autotune;
    use seesaw_engine::SweepRunner;
    use seesaw_workload::Request;
    let cluster = ClusterSpec::a10x4();
    let model = presets::llama2_13b();
    let probe: Vec<Request> = (0..8).map(|i| Request::new(i, 512, 32)).collect();
    let mut g = c.benchmark_group("autotune");
    g.sample_size(10);
    g.bench_function("best_seesaw_pair_probed_13b_a10x4", |b| {
        b.iter(|| {
            black_box(
                autotune::best_seesaw_pair_probed_with(
                    &SweepRunner::serial(),
                    &cluster,
                    &model,
                    &probe,
                )
                .unwrap(),
            )
        })
    });
    g.finish();
}

fn bench_engines(c: &mut Criterion) {
    let cluster = ClusterSpec::a10x4();
    let model = presets::llama2_13b();
    let reqs = WorkloadGen::constant(1024, 64).generate(32);
    let mut g = c.benchmark_group("engine_e2e_32reqs");
    g.sample_size(20);
    g.bench_function("vllm_t2p2", |b| {
        let eng = VllmEngine::new(
            cluster.clone(),
            model.clone(),
            ParallelConfig::new(1, 2, 2),
            SchedulingPolicy::PrefillPrioritized,
        )
        .unwrap();
        b.iter(|| black_box(eng.run(&reqs)))
    });
    g.bench_function("seesaw_p4_t4", |b| {
        let eng = SeesawEngine::new(
            cluster.clone(),
            model.clone(),
            SeesawSpec::new(ParallelConfig::pp(4), ParallelConfig::tp(4)),
        )
        .unwrap();
        b.iter(|| black_box(eng.run(&reqs)))
    });
    g.finish();
}

/// The `sims_per_sec` unit of work from `perf_report` — the shared
/// [`seesaw_bench::simsbench::SimsBench`] scenario: construct an
/// engine from shared `Arc` specs and run one candidate evaluation,
/// with the thread's executor/roofline-cache pools warm.
fn bench_single_candidate_eval(c: &mut Criterion) {
    use seesaw_bench::simsbench::SimsBench;
    let bench = SimsBench::new();
    let mut g = c.benchmark_group("single_candidate_eval");
    g.sample_size(30);
    g.bench_function("seesaw_p4_t4_construct_and_run", |b| {
        b.iter(|| black_box(bench.run_seesaw_once()))
    });
    g.bench_function("vllm_t2p2_construct_and_run", |b| {
        b.iter(|| black_box(bench.run_vllm_once()))
    });
    g.bench_function("serving_point_online_run", |b| {
        b.iter(|| black_box(bench.run_serving_once()))
    });
    g.bench_function("fleet_cell_4replica_jsq", |b| {
        b.iter(|| black_box(bench.run_fleet_once()))
    });
    g.bench_function("fleet_cell_4replica_jsq_live", |b| {
        b.iter(|| black_box(bench.run_fleet_live_once()))
    });
    g.bench_function("autoscale_cell_diurnal_reactive", |b| {
        b.iter(|| black_box(bench.run_autoscale_once()))
    });
    g.bench_function("chaos_cell_seeded_kills_replace", |b| {
        b.iter(|| black_box(bench.run_chaos_once()))
    });
    g.finish();
}

fn bench_workload_gen(c: &mut Criterion) {
    c.bench_function("workload_gen_sharegpt_2000", |b| {
        b.iter(|| black_box(WorkloadGen::sharegpt(1).generate(2000)))
    });
}

criterion_group!(
    benches,
    bench_sim_executor,
    bench_paged_kv,
    bench_reshard_planner,
    bench_roofline,
    bench_autotune_probe,
    bench_engines,
    bench_single_candidate_eval,
    bench_workload_gen
);
criterion_main!(benches);
