//! The canonical `sims_per_sec` unit of work, shared by
//! `perf_report` (the metric), the criterion microbench
//! (`single_candidate_eval`), and the determinism tests — one
//! definition so all three always measure/guard the same thing.
//!
//! Fixed seed: 24 × 1024-in/64-out requests, LLaMA2-13B on 4×A10;
//! one Seesaw candidate (P4→T4) and one vLLM candidate (D1T2P2,
//! prefill-prioritized). Specs are `Arc`-shared so repeated
//! construction exercises the pooled-executor / warm-cache hot path
//! exactly like a sweep worker.
//!
//! The serving variant replays the same request set with fixed-seed
//! Poisson arrivals at twice the scenario's offline capacity (a
//! mildly overloaded point — the regime serving sweeps live in) and
//! is the unit of work behind `sims_per_sec.serving`: one online
//! engine run *including* latency-percentile computation, i.e. one
//! serving-sweep load point per evaluation.
//!
//! The fleet variant (`sims_per_sec.fleet`) is one fleet-sweep grid
//! cell: a 4-replica fleet of the vLLM candidate, join-shortest-queue
//! routing over the same arrival pattern at 4× the serving rate
//! (per-replica load unchanged), run serially — routing, stream
//! split, four replica simulations, and the merged fleet report
//! included.
//!
//! The live-fleet variant (`sims_per_sec.fleet_live`) is the same
//! fleet cell under `jsq-live` routing: the global event loop with
//! per-arrival measured-state queries (the causal replay stepper) in
//! place of the merged-timeline fast path — the cost of real-feedback
//! routing on an otherwise identical cell.
//!
//! The chaos variant (`sims_per_sec.chaos`) replays the autoscale
//! scenario under a fixed seeded kill schedule (~3 expected kills on
//! the compressed day) with reactive replacement and retry/requeue —
//! one chaos-frontier grid cell including fault scheduling, loss
//! resolution, and availability accounting.
//!
//! The streaming-metrics variant (`sims_per_sec.autoscale_sketch`)
//! isolates the metrics pipeline the sketch/streaming-window work
//! optimized: one sketch-mode `WindowAccumulator` pass over the
//! autoscale cell's precomputed day (split into per-replica shards so
//! sketch merging is exercised), window-axis rendering, and the
//! default burn-rate rule evaluation. The engine simulation — which
//! dominates a full replay and is identical in both summary modes —
//! is deliberately excluded, so this figure tracks the pipeline
//! itself rather than re-measuring `autoscale`.

use seesaw_autoscale::{
    AlertEngine, AlertEvent, AlertRule, AutoscaleConfig, AutoscaleController, ElasticFleetReport,
    RetryPolicy, ScalingPolicy,
};
use seesaw_chaos::{ChaosController, FaultPlan, RecoverySpec};
use seesaw_engine::seesaw::{SeesawEngine, SeesawSpec};
use seesaw_engine::vllm::VllmEngine;
use seesaw_engine::{EngineReport, OnlineEngine, SchedulingPolicy, SweepRunner};
use seesaw_fleet::{Fleet, FleetReport, RouterPolicy};
use seesaw_hw::ClusterSpec;
use seesaw_model::{presets, ModelConfig};
use seesaw_parallel::ParallelConfig;
use seesaw_telemetry::Instrument;
use seesaw_workload::{
    ArrivalDist, RateEnvelope, Request, RequestTiming, SloSpec, SummaryMode, WindowAccumulator,
    WindowMetrics, WorkloadGen,
};
use std::sync::Arc;

/// Human-readable description recorded in `BENCH_sweep.json`.
pub const WORKLOAD_LABEL: &str = "a10x4 llama2_13b constant(1024,64) x24";

/// Offered load of the serving scenario, requests/second (about 2×
/// the vLLM candidate's offline capacity on this workload).
pub const SERVING_OFFERED_RPS: f64 = 4.0;

/// Replicas in the fleet scenario.
pub const FLEET_REPLICAS: usize = 4;

/// Length of the autoscale scenario's compressed diurnal trace,
/// seconds.
pub const AUTOSCALE_DAY_S: f64 = 120.0;

/// The fixed benchmark scenario: `Arc`-shared specs + request set.
#[derive(Debug)]
pub struct SimsBench {
    /// Hardware spec handle shared by every candidate.
    pub cluster: Arc<ClusterSpec>,
    /// Model spec handle shared by every candidate.
    pub model: Arc<ModelConfig>,
    /// The fixed-seed request set.
    pub reqs: Vec<Request>,
    /// The same requests with fixed-seed Poisson arrivals at
    /// [`SERVING_OFFERED_RPS`].
    pub serving_reqs: Vec<Request>,
    /// The same requests at [`FLEET_REPLICAS`] × the serving rate
    /// (per-replica load matches the serving scenario).
    pub fleet_reqs: Vec<Request>,
    /// A compressed diurnal day for the autoscale scenario:
    /// trace-shaped arrivals over [`AUTOSCALE_DAY_S`] seconds,
    /// 512-in/32-out requests (the controller's grid cell is routing
    /// + scaling decisions + replica runs + the merged report, so the
    /// per-request work is kept lighter than the offline scenarios).
    pub autoscale_reqs: Vec<Request>,
    /// The autoscale cell's completed day, split into
    /// [`FLEET_REPLICAS`] per-replica timing shards — the fixed input
    /// of the streaming-metrics scenario
    /// (`sims_per_sec.autoscale_sketch`), precomputed once so each
    /// evaluation re-runs only the metrics pipeline.
    pub sketch_shards: Vec<Vec<RequestTiming>>,
    /// The same cell's measured control horizon, seconds.
    pub sketch_horizon_s: f64,
}

impl Default for SimsBench {
    fn default() -> Self {
        Self::new()
    }
}

impl SimsBench {
    /// Build the canonical scenario.
    pub fn new() -> Self {
        let reqs = WorkloadGen::constant(1024, 64).generate(24);
        let serving_reqs = ArrivalDist::Poisson { rate: SERVING_OFFERED_RPS }
            .attach(&reqs, crate::SEED ^ seesaw_workload::ARRIVAL_SEED_SALT)
            .expect("fixed serving arrival process is valid");
        let fleet_reqs = ArrivalDist::Poisson { rate: FLEET_REPLICAS as f64 * SERVING_OFFERED_RPS }
            .attach(&reqs, crate::SEED ^ seesaw_workload::ARRIVAL_SEED_SALT)
            .expect("fixed fleet arrival process is valid");
        let day_times = RateEnvelope::diurnal_sharp(0.3, 3.0, AUTOSCALE_DAY_S, 3.0)
            .sample_trace(AUTOSCALE_DAY_S, crate::SEED ^ seesaw_workload::ARRIVAL_SEED_SALT)
            .expect("fixed diurnal envelope is valid");
        let autoscale_base = WorkloadGen::constant(512, 32).generate(day_times.len());
        let autoscale_reqs = ArrivalDist::Trace(day_times)
            .attach(&autoscale_base, 0)
            .expect("fixed diurnal trace is valid");
        let mut bench = SimsBench {
            cluster: Arc::new(ClusterSpec::a10x4()),
            model: Arc::new(presets::llama2_13b()),
            reqs,
            serving_reqs,
            fleet_reqs,
            autoscale_reqs,
            sketch_shards: Vec::new(),
            sketch_horizon_s: 0.0,
        };
        // Replay the autoscale cell once and deal its merged timeline
        // round-robin into per-replica shards: the streaming-metrics
        // scenario's fixed input. Round-robin (rather than contiguous
        // slices) keeps every shard overlapping every window, so each
        // evaluation exercises cross-shard sketch merging in every
        // window, like per-replica reports do in the controller.
        let report = bench.run_autoscale_once();
        let mut shards = vec![Vec::new(); FLEET_REPLICAS];
        for (i, t) in report.fleet.timeline.iter().enumerate() {
            shards[i % FLEET_REPLICAS].push(t.clone());
        }
        bench.sketch_shards = shards;
        bench.sketch_horizon_s = report.horizon_s;
        bench
    }

    /// The Seesaw candidate's spec (P4 → T4).
    pub fn seesaw_spec(&self) -> SeesawSpec {
        SeesawSpec::new(ParallelConfig::pp(4), ParallelConfig::tp(4))
    }

    /// One Seesaw single-candidate evaluation: construct from the
    /// shared handles + run.
    pub fn run_seesaw_once(&self) -> EngineReport {
        SeesawEngine::new(
            Arc::clone(&self.cluster),
            Arc::clone(&self.model),
            self.seesaw_spec(),
        )
        .expect("valid spec")
        .run(&self.reqs)
    }

    /// One vLLM single-candidate evaluation (D1T2P2,
    /// prefill-prioritized): construct from the shared handles + run.
    pub fn run_vllm_once(&self) -> EngineReport {
        VllmEngine::new(
            Arc::clone(&self.cluster),
            Arc::clone(&self.model),
            ParallelConfig::new(1, 2, 2),
            SchedulingPolicy::PrefillPrioritized,
        )
        .expect("valid config")
        .run(&self.reqs)
    }

    /// One online-serving evaluation: the vLLM candidate on the
    /// arrival-laden request set — arrival-gated admission, idle
    /// gaps, and latency-percentile computation included. This is a
    /// serving sweep's per-load-point unit of work.
    pub fn run_serving_once(&self) -> EngineReport {
        VllmEngine::new(
            Arc::clone(&self.cluster),
            Arc::clone(&self.model),
            ParallelConfig::new(1, 2, 2),
            SchedulingPolicy::PrefillPrioritized,
        )
        .expect("valid config")
        .run(&self.serving_reqs)
    }

    /// One fleet evaluation: construct a [`FLEET_REPLICAS`]-replica
    /// fleet of the vLLM candidate and serve the fleet-rate request
    /// set under join-shortest-queue routing, serially (the metric is
    /// single-thread grid-cell rate, like the other sims/sec
    /// figures). This is a fleet sweep's per-cell unit of work:
    /// service-rate estimation, routing, stream split, four replica
    /// simulations, and the merged fleet report.
    pub fn run_fleet_once(&self) -> FleetReport {
        let fleet = Fleet::homogeneous(FLEET_REPLICAS, |_| {
            Box::new(
                VllmEngine::new(
                    Arc::clone(&self.cluster),
                    Arc::clone(&self.model),
                    ParallelConfig::new(1, 2, 2),
                    SchedulingPolicy::PrefillPrioritized,
                )
                .expect("valid config"),
            ) as _
        });
        fleet.run_with(
            &SweepRunner::serial(),
            RouterPolicy::JoinShortestQueue,
            &self.fleet_reqs,
        )
    }

    /// One live-routed fleet evaluation (`sims_per_sec.fleet_live`):
    /// the same [`FLEET_REPLICAS`]-replica cell as
    /// [`SimsBench::run_fleet_once`], but under `jsq-live` — the
    /// global event loop queries every replica's measured state (via
    /// the causal replay stepper) at each arrival instead of routing
    /// on analytic virtual queues. The fast-path/event-loop cost
    /// ratio is exactly what this figure tracks.
    pub fn run_fleet_live_once(&self) -> FleetReport {
        let fleet = Fleet::homogeneous(FLEET_REPLICAS, |_| {
            Box::new(
                VllmEngine::new(
                    Arc::clone(&self.cluster),
                    Arc::clone(&self.model),
                    ParallelConfig::new(1, 2, 2),
                    SchedulingPolicy::PrefillPrioritized,
                )
                .expect("valid config"),
            ) as _
        });
        fleet.run_with(
            &SweepRunner::serial(),
            RouterPolicy::JoinShortestQueueLive,
            &self.fleet_reqs,
        )
    }

    /// The live-fleet cell's fleet (shared by the plain, traced, and
    /// disabled-telemetry variants so they measure identical work).
    fn live_fleet(&self) -> Fleet {
        Fleet::homogeneous(FLEET_REPLICAS, |_| {
            Box::new(
                VllmEngine::new(
                    Arc::clone(&self.cluster),
                    Arc::clone(&self.model),
                    ParallelConfig::new(1, 2, 2),
                    SchedulingPolicy::PrefillPrioritized,
                )
                .expect("valid config"),
            ) as _
        })
    }

    /// One telemetry-traced live-fleet evaluation
    /// (`sims_per_sec.fleet_live_traced`): the
    /// [`SimsBench::run_fleet_live_once`] cell with the span recorder
    /// and metrics registry on — the enabled-telemetry cost of the
    /// same unit of work. Returns the filled instrument so callers
    /// can render or validate the trace.
    pub fn run_fleet_live_traced_once(&self) -> (FleetReport, Instrument) {
        let mut instr = Instrument::tracing();
        let report = self.live_fleet().run_instrumented_with(
            &SweepRunner::serial(),
            RouterPolicy::JoinShortestQueueLive,
            &self.fleet_reqs,
            &mut instr,
        );
        (report, instr)
    }

    /// The live-fleet cell through the instrumented entry point with
    /// the instrument *off* — the telemetry-disabled code path whose
    /// throughput `perf_report` holds to within 5% of `fleet_live`
    /// (zero-cost-when-disabled, measured rather than assumed).
    pub fn run_fleet_live_disabled_once(&self) -> FleetReport {
        let mut instr = Instrument::off();
        self.live_fleet().run_instrumented_with(
            &SweepRunner::serial(),
            RouterPolicy::JoinShortestQueueLive,
            &self.fleet_reqs,
            &mut instr,
        )
    }

    /// One autoscale evaluation (`sims_per_sec.autoscale`): the
    /// reactive controller replaying the compressed diurnal day —
    /// per-window routing over the elastic vLLM fleet, scaling
    /// decisions with warm-up and drain, the per-replica engine runs,
    /// and the merged windowed report. This is a frontier sweep's
    /// per-cell unit of work, run serially like the other figures.
    pub fn run_autoscale_once(&self) -> ElasticFleetReport {
        let controller =
            AutoscaleController::new(self.autoscale_config(), ScalingPolicy::reactive_default());
        let build = |_: usize| -> Box<dyn OnlineEngine> {
            Box::new(
                VllmEngine::new(
                    Arc::clone(&self.cluster),
                    Arc::clone(&self.model),
                    ParallelConfig::new(1, 2, 2),
                    SchedulingPolicy::PrefillPrioritized,
                )
                .expect("valid config"),
            )
        };
        controller.run_with(&SweepRunner::serial(), &build, &self.autoscale_reqs)
    }

    /// One *profiled* autoscale evaluation: the compressed diurnal
    /// day under `jsq-live` routing (so live-state replay shows up as
    /// a phase) with the controller's self-profiling timers on.
    /// Returns the report plus the wall-time phase attribution
    /// (routing / live-state replay / engine runs / metrics) that
    /// `perf_report` renders — the "where do the cells/s go" answer.
    pub fn run_autoscale_profiled_once(
        &self,
    ) -> (ElasticFleetReport, seesaw_telemetry::ControllerProfile) {
        let config = AutoscaleConfig {
            router: RouterPolicy::JoinShortestQueueLive,
            ..self.autoscale_config()
        };
        let controller = AutoscaleController::new(config, ScalingPolicy::reactive_default());
        let build = |_: usize| -> Box<dyn OnlineEngine> {
            Box::new(
                VllmEngine::new(
                    Arc::clone(&self.cluster),
                    Arc::clone(&self.model),
                    ParallelConfig::new(1, 2, 2),
                    SchedulingPolicy::PrefillPrioritized,
                )
                .expect("valid config"),
            )
        };
        controller.run_profiled_with(&SweepRunner::serial(), &build, &self.autoscale_reqs)
    }

    /// One streaming-metrics evaluation
    /// (`sims_per_sec.autoscale_sketch`): fold the precomputed
    /// per-replica day shards into a sketch-mode
    /// [`WindowAccumulator`], render the window axis, and evaluate
    /// the default burn-rate rule — exactly the per-cell metrics work
    /// the streaming pipeline replaced, isolated from the engine
    /// simulation (identical in both summary modes) that dominates a
    /// full replay.
    pub fn run_autoscale_sketch_once(&self) -> (Vec<WindowMetrics>, Vec<AlertEvent>) {
        let config = self.autoscale_config();
        let mut acc = WindowAccumulator::new(config.slo, config.window_s, SummaryMode::Sketch);
        for shard in &self.sketch_shards {
            acc.observe(shard);
        }
        let windows = acc.finish(self.sketch_horizon_s);
        let alerts = AlertEngine::evaluate(&[AlertRule::default()], &windows);
        (windows, alerts)
    }

    /// The autoscale scenario's shared controller config (fixed; the
    /// benchmark must not measure capacity per iteration).
    fn autoscale_config(&self) -> AutoscaleConfig {
        AutoscaleConfig {
            window_s: 10.0,
            warmup_s: 5.0,
            min_replicas: 1,
            max_replicas: 6,
            router: RouterPolicy::JoinShortestQueue,
            slo: SloSpec { ttft_s: 15.0, tpot_s: 0.05 },
            capacity_rps: 2.5,
        }
    }

    /// One chaos evaluation (`sims_per_sec.chaos`): the autoscale
    /// scenario replayed through [`ChaosController`] with a fixed
    /// seeded fault plan — ~3 expected replica kills over the
    /// compressed day, reactive scaling with replacement spawns, and
    /// the lost work requeued under a compressed retry policy. This
    /// is a chaos-frontier grid cell: everything the autoscale cell
    /// does plus fault scheduling, calibrated-queue loss resolution,
    /// requeue/backoff bookkeeping, and availability accounting.
    pub fn run_chaos_once(&self) -> ElasticFleetReport {
        let plan = FaultPlan {
            seed: crate::SEED,
            // 90/hour ~= 3 expected kills on the 120 s day.
            kills_per_hour: 90.0,
            outages_per_hour: 0.0,
            groups: 1,
            detect_s: 2.0,
        };
        // Retry knobs compressed like the day: spans a 10 s window +
        // 5 s warm-up replacement blackout.
        let retry = RetryPolicy {
            max_attempts: 8,
            backoff_base_s: 0.5,
            backoff_cap_s: 4.0,
            deadline_s: 60.0,
        };
        let recovery = RecoverySpec {
            policy: ScalingPolicy::reactive_default(),
            replace_failures: true,
            retry,
        };
        let controller = ChaosController::new(self.autoscale_config(), plan, recovery);
        let build = |_: usize| -> Box<dyn OnlineEngine> {
            Box::new(
                VllmEngine::new(
                    Arc::clone(&self.cluster),
                    Arc::clone(&self.model),
                    ParallelConfig::new(1, 2, 2),
                    SchedulingPolicy::PrefillPrioritized,
                )
                .expect("valid config"),
            )
        };
        controller.run_with(&SweepRunner::serial(), &build, &self.autoscale_reqs)
    }
}
