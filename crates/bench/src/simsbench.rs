//! The canonical `sims_per_sec` unit of work, shared by
//! `perf_report` (the metric), the criterion microbench
//! (`single_candidate_eval`), and the determinism tests — one
//! definition so all three always measure/guard the same thing.
//!
//! Fixed seed: 24 × 1024-in/64-out requests, LLaMA2-13B on 4×A10;
//! one Seesaw candidate (P4→T4) and one vLLM candidate (D1T2P2,
//! prefill-prioritized). Specs are `Arc`-shared so repeated
//! construction exercises the pooled-executor / warm-cache hot path
//! exactly like a sweep worker.

use seesaw_engine::seesaw::{SeesawEngine, SeesawSpec};
use seesaw_engine::vllm::VllmEngine;
use seesaw_engine::{EngineReport, SchedulingPolicy};
use seesaw_hw::ClusterSpec;
use seesaw_model::{presets, ModelConfig};
use seesaw_parallel::ParallelConfig;
use seesaw_workload::{Request, WorkloadGen};
use std::sync::Arc;

/// Human-readable description recorded in `BENCH_sweep.json`.
pub const WORKLOAD_LABEL: &str = "a10x4 llama2_13b constant(1024,64) x24";

/// The fixed benchmark scenario: `Arc`-shared specs + request set.
#[derive(Debug)]
pub struct SimsBench {
    /// Hardware spec handle shared by every candidate.
    pub cluster: Arc<ClusterSpec>,
    /// Model spec handle shared by every candidate.
    pub model: Arc<ModelConfig>,
    /// The fixed-seed request set.
    pub reqs: Vec<Request>,
}

impl Default for SimsBench {
    fn default() -> Self {
        Self::new()
    }
}

impl SimsBench {
    /// Build the canonical scenario.
    pub fn new() -> Self {
        SimsBench {
            cluster: Arc::new(ClusterSpec::a10x4()),
            model: Arc::new(presets::llama2_13b()),
            reqs: WorkloadGen::constant(1024, 64).generate(24),
        }
    }

    /// The Seesaw candidate's spec (P4 → T4).
    pub fn seesaw_spec(&self) -> SeesawSpec {
        SeesawSpec::new(ParallelConfig::pp(4), ParallelConfig::tp(4))
    }

    /// One Seesaw single-candidate evaluation: construct from the
    /// shared handles + run.
    pub fn run_seesaw_once(&self) -> EngineReport {
        SeesawEngine::new(
            Arc::clone(&self.cluster),
            Arc::clone(&self.model),
            self.seesaw_spec(),
        )
        .expect("valid spec")
        .run(&self.reqs)
    }

    /// One vLLM single-candidate evaluation (D1T2P2,
    /// prefill-prioritized): construct from the shared handles + run.
    pub fn run_vllm_once(&self) -> EngineReport {
        VllmEngine::new(
            Arc::clone(&self.cluster),
            Arc::clone(&self.model),
            ParallelConfig::new(1, 2, 2),
            SchedulingPolicy::PrefillPrioritized,
        )
        .expect("valid config")
        .run(&self.reqs)
    }
}
