//! Fleet-serving harness: the default multi-replica scenario, its
//! capacity-scaling and router-comparison sweeps, and their
//! table/JSON renderings (the `fleet` bin).
//!
//! Two experiments, mirroring how capacity planning actually works:
//!
//! * **Scaling curve** — replica count × offered load (as a multiple
//!   of `N ×` single-replica offline capacity), goodput and SLO
//!   attainment per cell. A perfectly balanced fleet keeps its
//!   goodput knee at the same multiplier for every N; the table makes
//!   routing losses visible as the knee sliding left with N.
//! * **Router head-to-head** — every policy (the four estimated-queue
//!   ones plus the live `jsq-live`/`least-work-live` pair) on the
//!   same fleet size and request stream at one fixed (default:
//!   knee-adjacent) load, with per-replica imbalance statistics.
//! * **Heterogeneous head-to-head** — the same roster on a *mixed*
//!   fleet (strong A10 + weak L4 replicas) at an overload point,
//!   where live routing's measured state separates from the
//!   estimated policies' analytic queue model.
//!
//! Everything rides the default serving scenario (LLaMA2-13B on
//! 4×A10 per replica, ShareGPT-shaped lengths) and is byte-identical
//! for every `--jobs` value.

use crate::jsonfmt;
use crate::serving::{default_engine_of, default_requests, default_specs, EngineKind};
use crate::table::{f2, f3, Table};
use seesaw_engine::vllm::VllmEngine;
use seesaw_engine::{OnlineEngine, SchedulingPolicy, SweepRunner};
use seesaw_fleet::{
    hetero_offline_capacity, offline_capacity, policy_comparison_hetero_patterned_with,
    policy_comparison_patterned_at_capacity_with, policy_comparison_with,
    scaling_sweep_patterned_at_capacity_with, scaling_sweep_with, FleetPoint,
    FleetScalingSweep, RouterPolicy,
};
use seesaw_fleet::{Fleet, FleetReport};
use seesaw_hw::ClusterSpec;
use seesaw_parallel::ParallelConfig;
use seesaw_sim::TraceSummary;
use seesaw_telemetry::{Instrument, MetricsRegistry};
use seesaw_workload::{unit_rate_pattern, ArrivalDist, Request, SloSpec, ARRIVAL_SEED_SALT};
use std::sync::Arc;

/// Default replica counts for the scaling sweep.
pub const DEFAULT_REPLICA_COUNTS: &[usize] = &[1, 2, 4, 8];

/// Default load multipliers (of `N ×` single-replica capacity) for
/// the scaling sweep.
pub const DEFAULT_LOAD_MULTIPLIERS: &[f64] = &[0.5, 0.75, 1.0, 1.5];

/// Default fleet size for the router comparison.
pub const DEFAULT_COMPARE_REPLICAS: usize = 4;

/// Default offered load for the router comparison: just past the
/// knee, where routing quality separates the policies.
pub const DEFAULT_COMPARE_LOAD: f64 = 0.9;

/// Replicas in the heterogeneous head-to-head: half strong (the
/// default A10 replica), half weak (L4, pipeline-only).
pub const HETERO_REPLICAS: usize = 4;

/// Default offered load for the heterogeneous head-to-head, as a
/// multiple of the mixed fleet's *aggregate* offline capacity: an
/// overload point, where the estimated policies' one-size analytic
/// queue model mis-prices the weak replicas and live routing's
/// measured state pays off.
pub const DEFAULT_HETERO_LOAD: f64 = 1.2;

/// Run the default scaling sweep for `kind` replicas.
#[allow(clippy::too_many_arguments)]
pub fn default_scaling_sweep_with(
    runner: &SweepRunner,
    kind: EngineKind,
    n_requests: usize,
    replica_counts: &[usize],
    multipliers: &[f64],
    policy: RouterPolicy,
    slo: SloSpec,
    seed: u64,
) -> FleetScalingSweep {
    let (cluster, model) = default_specs();
    let (name, base) = default_requests(n_requests, seed);
    scaling_sweep_with(
        runner,
        &|_| default_engine_of(kind, &cluster, &model),
        &name,
        &base,
        replica_counts,
        multipliers,
        policy,
        slo,
        seed,
    )
}

/// Run the default router head-to-head for `kind` replicas.
pub fn default_policy_comparison_with(
    runner: &SweepRunner,
    kind: EngineKind,
    n_requests: usize,
    n_replicas: usize,
    multiplier: f64,
    slo: SloSpec,
    seed: u64,
) -> Vec<FleetPoint> {
    let (cluster, model) = default_specs();
    let (_, base) = default_requests(n_requests, seed);
    policy_comparison_with(
        runner,
        &|_| default_engine_of(kind, &cluster, &model),
        &base,
        n_replicas,
        multiplier,
        &RouterPolicy::all_with_live(),
        slo,
        seed,
    )
}

/// The heterogeneous router head-to-head: its fleet label (from
/// [`hetero_offline_capacity`]'s run-length encoding), measured
/// aggregate offline capacity, and one [`FleetPoint`] per policy.
#[derive(Debug, Clone, PartialEq)]
pub struct HeteroComparison {
    /// Replica-mix label, e.g. `"2x vllm T2P2 + 2x vllm P4"`.
    pub label: String,
    /// Aggregate offline capacity of the mixed fleet, rps.
    pub capacity_rps: f64,
    /// One point per policy, in [`RouterPolicy::all_with_live`] order.
    pub points: Vec<FleetPoint>,
}

/// Run all policies (estimated and live) head-to-head on a *mixed*
/// fleet — [`HETERO_REPLICAS`] replicas, half the default A10 vLLM
/// replica and half a weak L4 pipeline-only one — at `multiplier ×`
/// the fleet's aggregate offline capacity. This is the experiment the
/// global event loop exists for: on a homogeneous fleet the estimated
/// queue model is well calibrated, but here it prices every replica
/// with per-replica analytic rates that still miss the weak replicas'
/// queue dynamics under overload, while `jsq-live`/`least-work-live`
/// observe the measured state.
pub fn default_hetero_comparison_with(
    runner: &SweepRunner,
    n_requests: usize,
    multiplier: f64,
    slo: SloSpec,
    seed: u64,
) -> HeteroComparison {
    let (cluster, model) = default_specs();
    let weak_cluster = Arc::new(ClusterSpec::l4x4());
    let (_, base) = default_requests(n_requests, seed);
    let build = move |i: usize| -> Box<dyn OnlineEngine> {
        if i < HETERO_REPLICAS / 2 {
            default_engine_of(EngineKind::Vllm, &cluster, &model)
        } else {
            Box::new(
                VllmEngine::new(
                    Arc::clone(&weak_cluster),
                    Arc::clone(&model),
                    ParallelConfig::new(1, 1, 4),
                    SchedulingPolicy::PrefillPrioritized,
                )
                .expect("weak replica config fits"),
            )
        }
    };
    let (capacity_rps, label) = hetero_offline_capacity(&build, HETERO_REPLICAS, &base);
    let unit = ArrivalDist::Poisson { rate: 1.0 }
        .sample_times(base.len(), seed ^ ARRIVAL_SEED_SALT)
        .expect("unit-rate Poisson is valid");
    let points = policy_comparison_hetero_patterned_with(
        runner,
        &build,
        &base,
        capacity_rps,
        &unit,
        HETERO_REPLICAS,
        multiplier,
        &RouterPolicy::all_with_live(),
        slo,
    );
    HeteroComparison { label, capacity_rps, points }
}

/// One fleet cell run with the telemetry recorder on: the dedicated
/// observability cell behind the `fleet` bin's `--trace-out` flag.
#[derive(Debug)]
pub struct ObservedCell {
    /// Routing policy of the traced run.
    pub policy: RouterPolicy,
    /// Fleet size.
    pub n_replicas: usize,
    /// Offered load, requests/second.
    pub offered_rps: f64,
    /// The (telemetry-identical) fleet report.
    pub report: FleetReport,
    /// The run's Perfetto/Chrome trace-event JSON.
    pub trace_json: String,
    /// The run's metric snapshot (for the `--json` telemetry block).
    pub metrics: MetricsRegistry,
}

/// The head-to-head cell's request stream: `base` paced by a seeded
/// unit-rate Poisson pattern scaled to `multiplier × N × capacity`.
fn comparison_stream(
    base: &[Request],
    capacity_rps: f64,
    n_replicas: usize,
    multiplier: f64,
    seed: u64,
) -> (Vec<Request>, f64) {
    let unit = ArrivalDist::Poisson { rate: 1.0 }
        .sample_times(base.len(), seed ^ ARRIVAL_SEED_SALT)
        .expect("unit-rate Poisson is valid");
    let rate = multiplier * n_replicas as f64 * capacity_rps;
    let reqs = base.iter().zip(&unit).map(|(r, &t)| r.with_arrival(t / rate)).collect();
    (reqs, rate)
}

/// Run one dedicated fleet cell — the head-to-head's configuration
/// under `policy` — with the telemetry recorder on, and render its
/// Perfetto trace. Recorded bytes are sim-time only, so the trace is
/// byte-identical for every `--jobs` value (enforced by tests).
pub fn observed_cell_with(
    runner: &SweepRunner,
    kind: EngineKind,
    n_requests: usize,
    n_replicas: usize,
    multiplier: f64,
    policy: RouterPolicy,
    seed: u64,
) -> ObservedCell {
    let (cluster, model) = default_specs();
    let build = |_: usize| default_engine_of(kind, &cluster, &model);
    let (_, base) = default_requests(n_requests, seed);
    let (capacity_rps, _) = offline_capacity(&build, &base);
    let (reqs, rate) = comparison_stream(&base, capacity_rps, n_replicas, multiplier, seed);
    let fleet = Fleet::homogeneous(n_replicas, build);
    let mut instr = Instrument::tracing();
    let report = fleet.run_instrumented_with(runner, policy, &reqs, &mut instr);
    instr.snapshot_drops();
    let trace_json = seesaw_telemetry::perfetto::render(&instr.recorder, "fleet");
    ObservedCell {
        policy,
        n_replicas,
        offered_rps: rate,
        report,
        trace_json,
        metrics: instr.metrics,
    }
}

/// Run the same dedicated cell with engine tracing on and merge each
/// replica's sim-level time buckets — the `--breakdown` flag's body.
/// Returns the (trace-identical) report and the per-replica summaries
/// in replica order.
pub fn breakdown_cell_with(
    runner: &SweepRunner,
    kind: EngineKind,
    n_requests: usize,
    n_replicas: usize,
    multiplier: f64,
    policy: RouterPolicy,
    seed: u64,
) -> (FleetReport, Vec<TraceSummary>) {
    let (cluster, model) = default_specs();
    let build = |_: usize| default_engine_of(kind, &cluster, &model);
    let (_, base) = default_requests(n_requests, seed);
    let (capacity_rps, _) = offline_capacity(&build, &base);
    let (reqs, _) = comparison_stream(&base, capacity_rps, n_replicas, multiplier, seed);
    let fleet = Fleet::homogeneous(n_replicas, build);
    fleet.run_breakdown_with(runner, policy, &reqs)
}

/// Render the merged engine-time breakdown as the `--breakdown`
/// table: one row per replica plus a fleet-total row, bucketed the
/// way the engine's sim spans are (compute / communication / weight
/// transfer / reshard / kv swap / other).
pub fn render_breakdown(report: &FleetReport, summaries: &[TraceSummary]) -> String {
    let mut out = format!(
        "\n=== fleet: engine time breakdown ({} replicas, {} policy, {} requests) ===\n\
         per-replica sim spans merged fleet-wide; seconds of simulated device time\n",
        summaries.len(),
        report.policy,
        report.stats.requests,
    );
    let mut t = Table::new(&[
        "replica",
        "compute",
        "comm",
        "weights",
        "reshard",
        "kv swap",
        "other",
        "total",
    ]);
    let mut fleet_total = TraceSummary::default();
    for (i, s) in summaries.iter().enumerate() {
        t.row(&[
            format!("r{i}"),
            f3(s.compute),
            f3(s.communication),
            f3(s.weight_transfer),
            f3(s.reshard),
            f3(s.kv_swap),
            f3(s.other),
            f3(s.total()),
        ]);
        fleet_total.compute += s.compute;
        fleet_total.communication += s.communication;
        fleet_total.weight_transfer += s.weight_transfer;
        fleet_total.reshard += s.reshard;
        fleet_total.kv_swap += s.kv_swap;
        fleet_total.other += s.other;
    }
    t.row(&[
        "fleet".into(),
        f3(fleet_total.compute),
        f3(fleet_total.communication),
        f3(fleet_total.weight_transfer),
        f3(fleet_total.reshard),
        f3(fleet_total.kv_swap),
        f3(fleet_total.other),
        f3(fleet_total.total()),
    ]);
    out.push_str(&t.render());
    out
}

/// Build the unit-rate arrival pattern behind a `--trace` argument:
/// `"diurnal"` samples the default sharpened diurnal envelope
/// (`n_requests` arrivals of its shape), anything else loads a trace
/// file (absolute times, one per line); both normalize to unit mean
/// rate so the sweeps time-scale them per cell exactly like the
/// Poisson pattern. Errs on unreadable/malformed/degenerate traces.
pub fn trace_pattern(spec: &str, n_requests: usize, seed: u64) -> Result<Vec<f64>, String> {
    let times = if spec == "diurnal" {
        // Only the shape matters (`unit_rate_pattern` rescales time),
        // but the `n_requests` samples must cover one full cycle or
        // the "diurnal" pattern degenerates to a flat Poisson at
        // whatever rate the covered sliver has. Size the period so
        // the expected arrival count over one cycle is exactly
        // `n_requests`: period = n / mean_rate (the mean is
        // period-independent, so probe it on a unit period).
        let envelope = |period_s: f64| {
            crate::autoscale::default_diurnal_envelope(
                crate::autoscale::DEFAULT_TROUGH_MULT,
                crate::autoscale::DEFAULT_PEAK_MULT,
                period_s,
            )
        };
        let period_s = n_requests as f64 / envelope(1.0).mean_rps();
        envelope(period_s).sample_n(n_requests, seed ^ ARRIVAL_SEED_SALT)?
    } else {
        seesaw_workload::load_trace_file(spec)?
    };
    unit_rate_pattern(&times, n_requests)
}

/// Run both default fleet experiments — scaling sweep and router
/// head-to-head — measuring the single-replica offline capacity
/// *once* and threading it through both (the `fleet` bin's body).
/// `pattern`, when given, replaces the unit-rate Poisson arrivals
/// with a trace-shaped unit pattern (see [`trace_pattern`]), turning
/// the head-to-head into the router × trace grid.
#[allow(clippy::too_many_arguments)]
pub fn default_experiments_patterned_with(
    runner: &SweepRunner,
    kind: EngineKind,
    n_requests: usize,
    pattern: Option<&[f64]>,
    replica_counts: &[usize],
    multipliers: &[f64],
    policy: RouterPolicy,
    compare_replicas: usize,
    compare_load: f64,
    slo: SloSpec,
    seed: u64,
) -> (FleetScalingSweep, Vec<FleetPoint>) {
    let (cluster, model) = default_specs();
    let build = |_: usize| default_engine_of(kind, &cluster, &model);
    let (name, base) = default_requests(n_requests, seed);
    let (capacity_rps, label) = offline_capacity(&build, &base);
    let poisson;
    let unit: &[f64] = match pattern {
        Some(u) => u,
        None => {
            poisson = ArrivalDist::Poisson { rate: 1.0 }
                .sample_times(base.len(), seed ^ ARRIVAL_SEED_SALT)
                .expect("unit-rate Poisson is valid");
            &poisson
        }
    };
    let scaling = scaling_sweep_patterned_at_capacity_with(
        runner,
        &build,
        &name,
        &base,
        (capacity_rps, &label),
        unit,
        replica_counts,
        multipliers,
        policy,
        slo,
    );
    let comparison = policy_comparison_patterned_at_capacity_with(
        runner,
        &build,
        &base,
        capacity_rps,
        unit,
        compare_replicas,
        compare_load,
        &RouterPolicy::all_with_live(),
        slo,
    );
    (scaling, comparison)
}

/// Render the scaling sweep as the `fleet` bin's first table.
pub fn render_scaling(sweep: &FleetScalingSweep) -> String {
    let mut out = format!(
        "\n=== fleet: replica count x offered load ({} replicas of {} on {}, {} requests, {} routing) ===\n\
         per-replica capacity (offline) = {} rps; SLO: TTFT <= {}s, TPOT <= {}s\n\
         load = multiple of N x per-replica capacity\n",
        sweep
            .replica_counts
            .iter()
            .map(|n| n.to_string())
            .collect::<Vec<_>>()
            .join("/"),
        sweep.label,
        sweep.workload,
        sweep.points.first().map_or(0, |p| p.report.stats.requests),
        sweep.policy,
        f3(sweep.capacity_rps),
        sweep.slo.ttft_s,
        sweep.slo.tpot_s,
    );
    let mut t = Table::new(&[
        "N",
        "load",
        "offered rps",
        "throughput",
        "ttft p99",
        "tpot p99",
        "SLO att",
        "goodput",
        "goodput/N",
    ]);
    for p in &sweep.points {
        let lat = p.report.latency.expect("non-empty run");
        t.row(&[
            p.n_replicas.to_string(),
            format!("{:.2}x", p.load_multiplier),
            f3(p.offered_rps),
            f3(p.report.throughput_rps()),
            f2(lat.ttft.p99),
            format!("{:.4}", lat.tpot.p99),
            format!("{:.1}%", 100.0 * p.attainment),
            f3(p.goodput_rps),
            f3(p.goodput_rps / p.n_replicas as f64),
        ]);
    }
    out.push_str(&t.render());
    out
}

/// Render the router comparison as the `fleet` bin's second table.
pub fn render_comparison(points: &[FleetPoint]) -> String {
    let Some(first) = points.first() else {
        return String::from("\n=== fleet: router comparison (no points) ===\n");
    };
    let mut out = format!(
        "\n=== fleet: router policy head-to-head ({} replicas, {:.2}x load, {} requests) ===\n\
         imbalance: request-count spread (min/max per replica), cv = coeff. of variation\n",
        first.n_replicas,
        first.load_multiplier,
        first.report.stats.requests,
    );
    out.push_str(&comparison_table(points));
    out
}

/// Render the heterogeneous head-to-head as the `fleet` bin's third
/// table.
pub fn render_hetero_comparison(hetero: &HeteroComparison) -> String {
    let Some(first) = hetero.points.first() else {
        return String::from("\n=== fleet: heterogeneous router head-to-head (no points) ===\n");
    };
    let mut out = format!(
        "\n=== fleet: heterogeneous router head-to-head ({}, {:.2}x aggregate load, {} requests) ===\n\
         aggregate capacity (offline) = {} rps; live policies route on measured replica state\n",
        hetero.label,
        first.load_multiplier,
        first.report.stats.requests,
        f3(hetero.capacity_rps),
    );
    out.push_str(&comparison_table(&hetero.points));
    out
}

/// The shared head-to-head table body (one row per policy).
fn comparison_table(points: &[FleetPoint]) -> String {
    let mut t = Table::new(&[
        "policy",
        "ttft p50",
        "ttft p99",
        "e2e p99",
        "SLO att",
        "goodput",
        "req min/max",
        "cv req",
        "cv tok",
        "skew",
    ]);
    for p in points {
        let lat = p.report.latency.expect("non-empty run");
        let imb = p.report.imbalance();
        t.row(&[
            p.report.policy.to_string(),
            f3(lat.ttft.p50),
            f2(lat.ttft.p99),
            f2(lat.e2e.p99),
            format!("{:.1}%", 100.0 * p.attainment),
            f3(p.goodput_rps),
            format!("{}/{}", imb.min_requests, imb.max_requests),
            format!("{:.3}", imb.cv_requests),
            format!("{:.3}", imb.cv_tokens),
            format!("{:.3}", imb.makespan_skew),
        ]);
    }
    t.render()
}

/// One fleet point as a JSON object (shared by all three experiments'
/// `--json`). Every point carries the router policy that produced it
/// and the workload seed, so any single point is reproducible without
/// consulting the document header.
fn point_json(p: &FleetPoint, seed: u64) -> String {
    let imb = p.report.imbalance();
    let policy = format!(
        "\"policy\": \"{}\", \"seed\": {seed}, ",
        jsonfmt::esc(&p.report.policy.to_string())
    );
    format!(
        "{{{policy}\"n_replicas\": {}, \"load_multiplier\": {}, \"offered_rps\": {}, \
         \"throughput_rps\": {}, \"attainment\": {}, \"goodput_rps\": {}, \
         \"imbalance\": {{\"min_requests\": {}, \"max_requests\": {}, \"cv_requests\": {}, \
         \"cv_tokens\": {}, \"makespan_skew\": {}}}, \"latency\": {}}}",
        p.n_replicas,
        jsonfmt::num(p.load_multiplier),
        jsonfmt::num(p.offered_rps),
        jsonfmt::num(p.report.throughput_rps()),
        jsonfmt::num(p.attainment),
        jsonfmt::num(p.goodput_rps),
        imb.min_requests,
        imb.max_requests,
        jsonfmt::num(imb.cv_requests),
        jsonfmt::num(imb.cv_tokens),
        jsonfmt::num(imb.makespan_skew),
        jsonfmt::latency_stats(p.report.latency.as_ref()),
    )
}

/// All three fleet experiments as one machine-readable JSON document
/// (the `fleet` bin's `--json` output). The header echoes the
/// workload seed, and every point additionally carries its own
/// `policy` and `seed` fields. `hetero` is optional so callers
/// skipping the mixed-fleet experiment still emit a valid document.
pub fn to_json(
    scaling: &FleetScalingSweep,
    comparison: &[FleetPoint],
    hetero: Option<&HeteroComparison>,
    seed: u64,
) -> String {
    to_json_with_telemetry(scaling, comparison, hetero, seed, None)
}

/// [`to_json`] with an optional `telemetry` metrics block (present
/// only when a telemetry-enabled run produced one — the plain
/// document stays byte-identical to pre-telemetry output).
pub fn to_json_with_telemetry(
    scaling: &FleetScalingSweep,
    comparison: &[FleetPoint],
    hetero: Option<&HeteroComparison>,
    seed: u64,
    telemetry: Option<&MetricsRegistry>,
) -> String {
    let points_json = |out: &mut String, points: &[FleetPoint], indent: &str| {
        for (i, p) in points.iter().enumerate() {
            out.push_str(&format!(
                "{indent}{}{}\n",
                point_json(p, seed),
                if i + 1 < points.len() { "," } else { "" }
            ));
        }
    };
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"label\": \"{}\",\n", jsonfmt::esc(&scaling.label)));
    out.push_str(&format!("  \"workload\": \"{}\",\n", jsonfmt::esc(&scaling.workload)));
    out.push_str(&format!("  \"seed\": {seed},\n"));
    out.push_str(&format!("  \"policy\": \"{}\",\n", jsonfmt::esc(&scaling.policy.to_string())));
    out.push_str(&format!("  \"slo\": {},\n", jsonfmt::slo(scaling.slo)));
    out.push_str(&format!(
        "  \"capacity_rps\": {},\n",
        jsonfmt::num(scaling.capacity_rps)
    ));
    out.push_str("  \"scaling\": [\n");
    points_json(&mut out, &scaling.points, "    ");
    out.push_str("  ],\n");
    out.push_str("  \"router_comparison\": [\n");
    points_json(&mut out, comparison, "    ");
    if let Some(h) = hetero {
        out.push_str("  ],\n");
        out.push_str("  \"hetero\": {\n");
        out.push_str(&format!("    \"label\": \"{}\",\n", jsonfmt::esc(&h.label)));
        out.push_str(&format!(
            "    \"capacity_rps\": {},\n",
            jsonfmt::num(h.capacity_rps)
        ));
        out.push_str("    \"router_comparison\": [\n");
        points_json(&mut out, &h.points, "      ");
        out.push_str("    ]\n  }");
    } else {
        out.push_str("  ]");
    }
    if let Some(m) = telemetry {
        out.push_str(&format!(",\n  \"telemetry\": {}", m.render_json()));
    }
    out.push_str("\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The diurnal `--trace` pattern must actually carry the daily
    /// shape: the period is sized so the sampled arrivals span one
    /// full cycle, concentrating them around the mid-pattern peak
    /// (regression: a fixed 86 400 s period made 200 samples cover
    /// <1% of the day — a flat trough-rate Poisson).
    #[test]
    fn diurnal_trace_pattern_spans_one_cycle_and_peaks_mid_pattern() {
        let n = 400;
        let unit = trace_pattern("diurnal", n, 42).expect("valid pattern");
        assert_eq!(unit.len(), n);
        let span = *unit.last().unwrap();
        let mid: usize = unit
            .iter()
            .filter(|&&t| t > 0.25 * span && t < 0.75 * span)
            .count();
        assert!(
            mid as f64 > 0.6 * n as f64,
            "the mid-cycle peak must dominate: {mid}/{n} arrivals in the middle half"
        );
        // Unknown files error instead of exiting.
        assert!(trace_pattern("/no/such/trace.txt", 10, 0).is_err());
    }

    /// The `--trace-out` cell's recorded bytes — Perfetto trace and
    /// metric snapshot — must be byte-identical across `--jobs`, and
    /// the traced run must report exactly what the untraced cell
    /// reports.
    #[test]
    fn observed_cell_is_jobs_invariant_and_report_faithful() {
        let cell = |runner: &SweepRunner| {
            observed_cell_with(
                runner,
                EngineKind::Vllm,
                12,
                2,
                0.9,
                RouterPolicy::JoinShortestQueue,
                42,
            )
        };
        let serial = cell(&SweepRunner::serial());
        let parallel = cell(&SweepRunner::new(4));
        assert_eq!(serial.report, parallel.report);
        assert_eq!(
            serial.trace_json, parallel.trace_json,
            "trace bytes must be --jobs-invariant"
        );
        assert_eq!(serial.metrics.render_json(), parallel.metrics.render_json());
        // The trace is a well-formed event array with per-replica
        // tracks and per-request spans.
        assert!(serial.trace_json.starts_with("{\"traceEvents\":"));
        assert_eq!(
            serial.trace_json.matches("\"thread_name\"").count(),
            2 + serial.n_replicas,
            "controller + router + one track per replica"
        );
        assert!(serial.trace_json.contains("req "));
        // Telemetry must not perturb the cell: rerun it untraced.
        let (cluster, model) = default_specs();
        let build = |_: usize| default_engine_of(EngineKind::Vllm, &cluster, &model);
        let (_, base) = default_requests(12, 42);
        let (capacity_rps, _) = offline_capacity(&build, &base);
        let (reqs, _) = comparison_stream(&base, capacity_rps, 2, 0.9, 42);
        let plain = Fleet::homogeneous(2, build).run_with(
            &SweepRunner::serial(),
            RouterPolicy::JoinShortestQueue,
            &reqs,
        );
        assert_eq!(plain, serial.report, "telemetry must not perturb the report");
    }

    /// The `--breakdown` cell's merged buckets reconcile: the fleet
    /// row is the exact sum of the per-replica rows, and the table
    /// carries every bucket column.
    #[test]
    fn breakdown_cell_reconciles_and_renders() {
        let (report, summaries) = breakdown_cell_with(
            &SweepRunner::serial(),
            EngineKind::Vllm,
            12,
            2,
            0.9,
            RouterPolicy::JoinShortestQueue,
            42,
        );
        assert_eq!(summaries.len(), 2, "one summary per replica");
        assert!(summaries.iter().any(|s| s.total() > 0.0));
        let table = render_breakdown(&report, &summaries);
        for col in ["compute", "comm", "weights", "reshard", "kv swap", "fleet"] {
            assert!(table.contains(col), "missing column {col}");
        }
        // The fleet row sums the per-replica compute bucket.
        let total: f64 = summaries.iter().map(|s| s.compute).sum();
        assert!(table.contains(&format!("{total:.3}")));
    }

    /// The `telemetry` block lands in the `--json` document only when
    /// a metric snapshot is supplied; without one the document is the
    /// exact pre-telemetry `to_json` output.
    #[test]
    fn json_telemetry_block_is_optional_and_well_formed() {
        let scaling = default_scaling_sweep_with(
            &SweepRunner::serial(),
            EngineKind::Vllm,
            12,
            &[1],
            &[0.5],
            RouterPolicy::JoinShortestQueue,
            crate::serving::DEFAULT_SLO,
            42,
        );
        let plain = to_json(&scaling, &[], None, 42);
        assert_eq!(plain, to_json_with_telemetry(&scaling, &[], None, 42, None));
        let cell = observed_cell_with(
            &SweepRunner::serial(),
            EngineKind::Vllm,
            12,
            2,
            0.9,
            RouterPolicy::JoinShortestQueue,
            42,
        );
        let with = to_json_with_telemetry(&scaling, &[], None, 42, Some(&cell.metrics));
        assert!(with.contains("\"telemetry\": {"));
        assert!(with.contains("\"counters\""));
        // The recorder's overflow health counters are always present
        // (zero on an uncapped run) so capped traces can't silently
        // look complete.
        assert!(with.contains("\"telemetry.dropped_spans\": 0"));
        assert!(with.contains("\"telemetry.dropped_instants\": 0"));
        assert_eq!(with.matches('{').count(), with.matches('}').count());
        assert_eq!(with.matches('[').count(), with.matches(']').count());
        assert!(!plain.contains("\"telemetry\""));
    }

    #[test]
    fn default_scaling_sweep_renders_and_is_jobs_invariant() {
        let run = |runner: &SweepRunner| {
            default_scaling_sweep_with(
                runner,
                EngineKind::Vllm,
                16,
                &[1, 2],
                &[0.5, 1.5],
                RouterPolicy::JoinShortestQueue,
                crate::serving::DEFAULT_SLO,
                42,
            )
        };
        let serial = run(&SweepRunner::serial());
        let parallel = run(&SweepRunner::new(4));
        assert_eq!(serial, parallel);
        assert_eq!(render_scaling(&serial), render_scaling(&parallel));
        assert_eq!(serial.points.len(), 4);
        let rendered = render_scaling(&serial);
        assert!(rendered.contains("goodput/N"));
    }

    #[test]
    fn comparison_covers_all_policies_and_json_is_wellformed() {
        let points = default_policy_comparison_with(
            &SweepRunner::serial(),
            EngineKind::Vllm,
            16,
            2,
            0.9,
            crate::serving::DEFAULT_SLO,
            42,
        );
        assert_eq!(points.len(), 6);
        let rendered = render_comparison(&points);
        for p in ["round-robin", "jsq", "po2", "least-work", "jsq-live", "least-work-live"] {
            assert!(rendered.contains(p), "missing {p} in\n{rendered}");
        }
        let scaling = default_scaling_sweep_with(
            &SweepRunner::serial(),
            EngineKind::Vllm,
            16,
            &[1],
            &[0.5],
            RouterPolicy::JoinShortestQueue,
            crate::serving::DEFAULT_SLO,
            42,
        );
        let json = to_json(&scaling, &points, None, 42);
        // Cheap structural checks: balanced braces/brackets, every
        // policy present, no NaN leakage.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(json.contains("\"router_comparison\""));
        assert!(json.contains("\"seed\": 42"), "the seed echo makes points reproducible");
        assert!(json.contains("\"jsq-live\""));
        assert!(json.contains("\"least-work\""));
        // Satellite: every point carries its own policy and seed.
        let points_emitted = json.matches("\"policy\": \"").count();
        let seeds_emitted = json.matches("\"seed\": 42").count();
        assert_eq!(points_emitted, 1 + 6 + 1, "header + 6 comparison points + 1 scaling point");
        assert_eq!(seeds_emitted, 1 + 6 + 1);
        assert!(!json.contains("NaN"));
    }

    /// The refactor's acceptance point: on the mixed-fleet overload
    /// head-to-head, live JSQ (measured queue depths) must beat the
    /// estimated JSQ (analytic virtual queues) on SLO attainment.
    #[test]
    fn live_jsq_beats_estimated_jsq_on_the_hetero_overload_point() {
        let run = |runner: &SweepRunner| {
            default_hetero_comparison_with(
                runner,
                48,
                DEFAULT_HETERO_LOAD,
                crate::serving::DEFAULT_SLO,
                42,
            )
        };
        let hetero = run(&SweepRunner::serial());
        assert_eq!(hetero, run(&SweepRunner::new(4)), "hetero comparison must be jobs-invariant");
        assert_eq!(hetero.points.len(), 6);
        let att = |policy: RouterPolicy| {
            hetero
                .points
                .iter()
                .find(|p| p.report.policy == policy)
                .expect("policy present")
                .attainment
        };
        let jsq = att(RouterPolicy::JoinShortestQueue);
        let live = att(RouterPolicy::JoinShortestQueueLive);
        assert!(
            live > jsq,
            "jsq-live ({live}) must beat estimated jsq ({jsq}) on the hetero overload point"
        );
        let rendered = render_hetero_comparison(&hetero);
        assert!(rendered.contains("heterogeneous"), "table header names the experiment");
        assert!(rendered.contains("jsq-live"));
        let json = to_json(
            &default_scaling_sweep_with(
                &SweepRunner::serial(),
                EngineKind::Vllm,
                16,
                &[1],
                &[0.5],
                RouterPolicy::JoinShortestQueue,
                crate::serving::DEFAULT_SLO,
                42,
            ),
            &[],
            Some(&hetero),
            42,
        );
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(json.contains("\"hetero\""));
        assert!(!json.contains("NaN"));
    }
}
