//! Experiment harness for the Seesaw reproduction.
//!
//! Every table and figure in the paper's evaluation has a module under
//! [`figs`] with a `run(...)` function that regenerates its rows, and
//! a thin binary wrapper in `src/bin/`. The `all_figures` binary runs
//! everything in sequence (that output is what EXPERIMENTS.md quotes).
//!
//! Shared infrastructure:
//! * [`table::Table`] — aligned markdown table printer.
//! * [`harness`] — the vLLM configuration/policy sweep ("best static
//!   baseline", as the paper tunes it) and the Seesaw auto-probed run.
//! * [`serving`] — the online-serving harness: offered-load sweeps
//!   against SLO attainment and goodput (the `serving` bin), for any
//!   engine backend (`--engine seesaw|vllm|disagg`).
//! * [`fleet`] — the multi-replica tier: capacity-scaling and
//!   router-policy sweeps over `seesaw_fleet::Fleet` (the `fleet`
//!   bin).
//! * [`autoscale`] — the elastic tier: day-long policy × trace
//!   cost-vs-SLO frontier sweeps over `seesaw_autoscale` (the
//!   `autoscale` bin).
//! * [`chaos`] — the robustness tier: seeded failure injection over
//!   the elastic day, fault × recovery
//!   cost-vs-SLO-vs-availability frontiers over `seesaw_chaos` (the
//!   `chaos` bin).
//! * [`simsbench`] — the canonical `sims_per_sec` single-candidate
//!   workload shared by `perf_report`, the criterion microbench, and
//!   the determinism tests.

pub mod autoscale;
pub mod chaos;
pub mod cli;
pub mod figs;
pub mod fleet;
pub mod harness;
pub mod jsonfmt;
pub mod serving;
pub mod simsbench;
pub mod table;

/// Default request counts per dataset, matching §6.1 ("we sample 2000
/// requests from sharegpt and 500 from arxiv-summarization").
/// Heavy sweeps subsample; each figure documents its count.
pub const ARXIV_REQUESTS: usize = 500;
/// See [`ARXIV_REQUESTS`].
pub const SHAREGPT_REQUESTS: usize = 2000;

/// Workload seed used by every figure, so reruns are identical.
pub const SEED: u64 = 42;
