//! Figure 13: D:P ratio sensitivity. Usage: fig13 [n_requests_per_point]
fn main() {
    let n: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(64);
    println!("{}", seesaw_bench::figs::fig13::run(n));
}
