//! Figure 12: speedup breakdown. Usage: fig12 [n_requests]
fn main() {
    let n: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(500);
    println!("{}", seesaw_bench::figs::fig12::run(n));
}
