//! Figure 10: end-to-end throughput panels. Usage:
//! `cargo run --release -p seesaw-bench --bin fig10 [a10|l4] [subsample]`
fn main() {
    let args: Vec<String> = std::env::args().collect();
    let gpu = args.get(1).map(String::as_str).unwrap_or("a10");
    let sub: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(1);
    println!("{}", seesaw_bench::figs::fig10::run(gpu, sub));
}
