//! Regenerate every table and figure in one run (the output quoted in
//! EXPERIMENTS.md). Usage: all_figures [subsample]
//!
//! `subsample` divides the paper's request counts for quicker runs
//! (1 = full fidelity).
use seesaw_bench::figs;
fn main() {
    let sub: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(1);
    let n = |full: usize| (full / sub).max(8);
    println!("{}", figs::table1::run());
    println!("{}", figs::fig1::run());
    println!("{}", figs::fig4::run());
    println!("{}", figs::fig9::run());
    println!("{}", figs::fig10::run("a10", sub));
    println!("{}", figs::fig10::run("l4", sub));
    println!("{}", figs::fig11::run(sub));
    println!("{}", figs::fig12::run(n(500)));
    println!("{}", figs::fig13::run(n(64)));
    println!("{}", figs::fig14::run(n(150)));
    println!("{}", figs::fig15::run());
    println!("{}", figs::ablations::abl_sched(n(200)));
    println!("{}", figs::ablations::abl_buffer(n(200)));
    println!("{}", figs::ablations::abl_overlap(n(200)));
    println!("{}", figs::ablations::abl_layout(n(200)));
    println!("{}", figs::ablations::abl_reshard());
    println!("{}", figs::ablations::abl_chunk(n(200)));
}
