//! Regenerate every table and figure in one run (the output quoted in
//! EXPERIMENTS.md).
//!
//! Usage: `all_figures [subsample] [--jobs N]`
//!
//! `subsample` divides the paper's request counts for quicker runs
//! (1 = full fidelity). `--jobs N` sets the sweep worker count
//! (default: `SEESAW_JOBS` / `RAYON_NUM_THREADS`, else all cores).
//! Figures run concurrently across the workers; each figure's
//! internal grid shares its worker's job budget, so total
//! parallelism stays at N while surplus jobs (N above the figure
//! count) flow into the figure grids. Output streams in figure order
//! and is byte-identical for every N.
use seesaw_bench::cli;
use seesaw_bench::figs;
use seesaw_engine::SweepRunner;

fn main() {
    let args = cli::parse_sweep_args("all_figures [subsample] [--jobs N]", 1, false);
    let runner = SweepRunner::with_jobs(args.jobs);
    let tasks: Vec<Box<dyn Fn() -> String + Send + Sync>> =
        figs::catalog(args.subsample, runner)
            .into_iter()
            .map(|(_, job)| job)
            .collect();
    // Stream each figure as soon as it and its predecessors finish,
    // so long runs show progress instead of buffering to the end.
    runner.run_stream(&tasks, |job| job(), |_, result| println!("{}", result.value));
}
