//! `serving` — online-serving sweep: offered load vs SLO attainment
//! and goodput (see `seesaw_bench::serving`).
//!
//! Usage:
//!   serving [n_requests] [--jobs N] [--engine seesaw|vllm|disagg]
//!           [--loads m1,m2,...] [--slo-ttft S] [--slo-tpot S]
//!           [--seed S] [--json]
//!
//! Defaults: 200 ShareGPT-shaped requests on the vLLM baseline, load
//! multipliers 0.25..4.0× of measured offline capacity, SLO
//! TTFT ≤ 15 s / TPOT ≤ 50 ms, seed 42. Load points evaluate in
//! parallel on the sweep runner; output is byte-identical for every
//! `--jobs` value. `--json` emits the machine-readable sweep instead
//! of the table.

use seesaw_bench::serving::{self, EngineKind};
use seesaw_engine::SweepRunner;
use seesaw_workload::SloSpec;

struct Args {
    n_requests: usize,
    jobs: Option<usize>,
    engine: EngineKind,
    multipliers: Vec<f64>,
    slo: SloSpec,
    seed: u64,
    json: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: serving [n_requests] [--jobs N] [--engine seesaw|vllm|disagg] \
         [--loads m1,m2,...] [--slo-ttft S] [--slo-tpot S] [--seed S] [--json]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut parsed = Args {
        n_requests: 200,
        jobs: None,
        engine: EngineKind::Vllm,
        multipliers: serving::DEFAULT_LOAD_MULTIPLIERS.to_vec(),
        slo: serving::DEFAULT_SLO,
        seed: crate_seed(),
        json: false,
    };
    let mut args = std::env::args().skip(1);
    let next_f64 = |args: &mut dyn Iterator<Item = String>, what: &str| -> f64 {
        args.next()
            .and_then(|v| v.parse().ok())
            .filter(|&x: &f64| x.is_finite() && x > 0.0)
            .unwrap_or_else(|| {
                eprintln!("{what} needs a positive number");
                std::process::exit(2);
            })
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--jobs" | "-j" => {
                parsed.jobs = args.next().and_then(|v| v.parse().ok()).filter(|&n| n > 0);
                if parsed.jobs.is_none() {
                    eprintln!("--jobs needs a positive integer");
                    std::process::exit(2);
                }
            }
            "--loads" => {
                let spec = args.next().unwrap_or_else(|| usage());
                let parsed_loads: Option<Vec<f64>> = spec
                    .split(',')
                    .map(|s| s.trim().parse::<f64>().ok().filter(|&x| x.is_finite() && x > 0.0))
                    .collect();
                match parsed_loads {
                    Some(loads) if !loads.is_empty() => parsed.multipliers = loads,
                    _ => {
                        eprintln!("--loads needs a comma-separated list of positive multipliers");
                        std::process::exit(2);
                    }
                }
            }
            "--engine" | "-e" => {
                let spec = args.next().unwrap_or_else(|| usage());
                parsed.engine = spec.parse().unwrap_or_else(|e: String| {
                    eprintln!("{e}");
                    std::process::exit(2);
                });
            }
            "--json" => parsed.json = true,
            "--slo-ttft" => parsed.slo.ttft_s = next_f64(&mut args, "--slo-ttft"),
            "--slo-tpot" => parsed.slo.tpot_s = next_f64(&mut args, "--slo-tpot"),
            "--seed" => {
                parsed.seed = args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--seed needs a non-negative integer");
                    std::process::exit(2);
                });
            }
            other => match other.parse() {
                Ok(n) if n > 0 => parsed.n_requests = n,
                _ => usage(),
            },
        }
    }
    parsed
}

fn crate_seed() -> u64 {
    seesaw_bench::SEED
}

fn main() {
    let args = parse_args();
    let runner = SweepRunner::with_jobs(args.jobs);
    let sweep = serving::default_sweep_of_with(
        &runner,
        args.engine,
        args.n_requests,
        &args.multipliers,
        args.slo,
        args.seed,
    );
    if args.json {
        print!("{}", serving::to_json(&sweep));
    } else {
        print!("{}", serving::render(&sweep));
    }
}
