//! `seesaw-cli` — a small deployment tool over the public API.
//!
//! ```text
//! seesaw_cli plan    <model> <gpu> <n>                 # feasibility table
//! seesaw_cli compare <model> <gpu> <n> <in> <out> [k]  # vLLM sweep vs Seesaw on k requests
//! seesaw_cli tune    <model> <gpu> <n> <in> <out>      # recommend (c_p, c_d)
//! ```
//!
//! models: 13b 15b 34b 70b · gpus: a10 l4 a100 a100-pcie

use seesaw_bench::harness;
use seesaw_engine::seesaw::SeesawSpec;
use seesaw_hw::{ClusterSpec, GpuSpec};
use seesaw_model::{presets, ModelConfig};
use seesaw_parallel::{enumerate_configs, MemoryPlan};
use seesaw_workload::WorkloadGen;

fn usage() -> ! {
    eprintln!(
        "usage: seesaw_cli <plan|compare|tune> <model> <gpu> <n_gpus> [avg_in avg_out [n_requests]]"
    );
    std::process::exit(2);
}

fn parse_target(args: &[String]) -> (ModelConfig, ClusterSpec) {
    let model = presets::by_name(&args[0]).unwrap_or_else(|| {
        eprintln!("unknown model '{}'; expected 13b/15b/34b/70b", args[0]);
        std::process::exit(2);
    });
    let gpu = GpuSpec::by_name(&args[1]).unwrap_or_else(|| {
        eprintln!("unknown gpu '{}'; expected a10/l4/a100/a100-pcie", args[1]);
        std::process::exit(2);
    });
    let n: usize = args[2].parse().unwrap_or_else(|_| usage());
    (model, ClusterSpec::new(gpu, n))
}

fn cmd_plan(model: &ModelConfig, cluster: &ClusterSpec) {
    println!(
        "{} on {}x {} — weights {:.1} GiB total\n",
        model.name,
        cluster.num_gpus,
        cluster.gpu.name,
        model.weight_bytes_total() as f64 / (1u64 << 30) as f64
    );
    println!("{:<10} {:>15} {:>14} {:>12}", "config", "weights/GPU GiB", "KV tokens", "status");
    for cfg in enumerate_configs(model, cluster.num_gpus) {
        match MemoryPlan::new(model, cluster, cfg) {
            Ok(p) => println!(
                "{:<10} {:>15.2} {:>14} {:>12}",
                cfg.to_string(),
                p.weight_bytes_per_gpu as f64 / (1u64 << 30) as f64,
                p.kv_tokens_total,
                "ok"
            ),
            Err(e) => println!("{:<10} {:>15} {:>14} {:>12}   ({e})", cfg.to_string(), "-", "-", "INFEASIBLE"),
        }
    }
}

fn cmd_compare(model: &ModelConfig, cluster: &ClusterSpec, avg_in: usize, avg_out: usize, n: usize) {
    let reqs = WorkloadGen::constant(avg_in, avg_out).generate(n);
    let base = harness::best_vllm(cluster, model, &reqs);
    let ours = harness::seesaw_auto(cluster, model, &reqs);
    println!(
        "baseline [{}]: {:.3} req/s  (GPU util {:.0}%)",
        base.label,
        base.throughput_rps(),
        100.0 * base.gpu_utilization
    );
    println!(
        "seesaw   [{}]: {:.3} req/s  (GPU util {:.0}%, {} transitions)",
        ours.label,
        ours.throughput_rps(),
        100.0 * ours.gpu_utilization,
        ours.transitions
    );
    println!("speedup: {:.2}x", ours.throughput_rps() / base.throughput_rps());
}

fn cmd_tune(model: &ModelConfig, cluster: &ClusterSpec, avg_in: usize, avg_out: usize) {
    match SeesawSpec::auto_for(cluster, model, avg_in, avg_out) {
        Ok(spec) => println!("recommended: {}", spec.label()),
        Err(e) => println!("no feasible deployment: {e}"),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.len() < 4 {
        usage();
    }
    let (model, cluster) = parse_target(&args[1..4]);
    match args[0].as_str() {
        "plan" => cmd_plan(&model, &cluster),
        "compare" => {
            if args.len() < 6 {
                usage();
            }
            let avg_in = args[4].parse().unwrap_or_else(|_| usage());
            let avg_out = args[5].parse().unwrap_or_else(|_| usage());
            let n = args.get(6).and_then(|s| s.parse().ok()).unwrap_or(100);
            cmd_compare(&model, &cluster, avg_in, avg_out, n);
        }
        "tune" => {
            if args.len() < 6 {
                usage();
            }
            let avg_in = args[4].parse().unwrap_or_else(|_| usage());
            let avg_out = args[5].parse().unwrap_or_else(|_| usage());
            cmd_tune(&model, &cluster, avg_in, avg_out);
        }
        _ => usage(),
    }
}
