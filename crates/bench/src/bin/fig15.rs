//! Regenerate the paper's fig15 output. Usage: cargo run --release -p seesaw-bench --bin fig15
fn main() {
    println!("{}", seesaw_bench::figs::fig15::run());
}
