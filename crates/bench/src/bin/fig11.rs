//! Figure 11: A100 PCIe vs NVLink. Usage: fig11 [subsample]
fn main() {
    let sub: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(1);
    println!("{}", seesaw_bench::figs::fig11::run(sub));
}
