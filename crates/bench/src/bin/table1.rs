//! Regenerate the paper's table1 output. Usage: cargo run --release -p seesaw-bench --bin table1
fn main() {
    println!("{}", seesaw_bench::figs::table1::run());
}
