//! Regenerate the paper's fig1 output. Usage: cargo run --release -p seesaw-bench --bin fig1
fn main() {
    println!("{}", seesaw_bench::figs::fig1::run());
}
