//! `chaos` — replay the day-long diurnal trace through an elastic
//! fleet while a seeded fault plan kills replicas, and print the
//! fault × recovery cost-vs-SLO-vs-availability frontier (see
//! `seesaw_bench::chaos` and the `crates/chaos` subsystem).
//!
//! Usage:
//!   chaos [--jobs N] [--engine seesaw|vllm|disagg] [--day S]
//!         [--window S] [--warmup S] [--min N] [--max N]
//!         [--trough M] [--peak M] [--slo-ttft S] [--slo-tpot S]
//!         [--seed S] [--fault-seed S] [--kills K] [--outages K]
//!         [--groups N] [--detect S] [--retries N] [--backoff S]
//!         [--backoff-cap S] [--deadline S]
//!         [--timeline FAULT:RECOVERY] [--json] [--trace-out FILE]
//!         [--metrics-out FILE]
//!
//! Defaults: the autoscale bin's diurnal day (86 400 s, 0.25×–5× of
//! measured per-replica capacity) under three failure models — none,
//! 8 independent kills/day, and kills plus 1 correlated rack
//! outage/day across 2 groups — crossed with three recovery postures:
//! the bare provision-for-peak static fleet (never heals), the same
//! fleet with replacement spawns, and the reactive controller with
//! replacement. `--kills`/`--outages` are expected events per *day*
//! (scaled to compressed `--day` runs); lost requests requeue after
//! `--detect` seconds under exponential backoff. An empty fault model
//! (`--kills 0 --outages 0`) reproduces the fault-free autoscale
//! replay byte-for-byte, and output is byte-identical for every
//! `--jobs` value.
//!
//! Each cell also evaluates the default multi-window SLO burn-rate
//! rule over its measured window axis; the fault-detection frontier
//! table scores those alert streams against the injected correlated
//! outages (median detection latency, missed outages, and — on the
//! fault-free row — false fires).
//!
//! Observability: `--trace-out FILE` re-runs one dedicated cell
//! (independent kills against reactive+replace) with the telemetry
//! recorder on and writes its Perfetto/Chrome trace-event JSON —
//! kill/retry/park markers on the controller track alongside windows
//! and scale events; open it at ui.perfetto.dev or `chrome://tracing`.
//! With `--json` the document additionally gains a `telemetry`
//! metrics block, and `--metrics-out FILE` writes the same metric
//! snapshot (counters / gauges / histograms, including the
//! recorder's dropped-event health counters) as a standalone JSON
//! file.

use seesaw_autoscale::AutoscaleConfig;
use seesaw_bench::autoscale::ScenarioSpec;
use seesaw_bench::chaos::{self, ChaosSpec};
use seesaw_engine::SweepRunner;

fn usage() -> ! {
    eprintln!(
        "usage: chaos [--jobs N] [--engine seesaw|vllm|disagg] [--day S] [--window S] \
         [--warmup S] [--min N] [--max N] [--trough M] [--peak M] [--slo-ttft S] \
         [--slo-tpot S] [--seed S] [--fault-seed S] [--kills K] [--outages K] [--groups N] \
         [--detect S] [--retries N] [--backoff S] [--backoff-cap S] [--deadline S] \
         [--timeline FAULT:RECOVERY] [--json] [--trace-out FILE] [--metrics-out FILE]"
    );
    std::process::exit(2);
}

struct Args {
    jobs: Option<usize>,
    spec: ScenarioSpec,
    chaos: ChaosSpec,
    config: AutoscaleConfig,
    timeline: Option<String>,
    json: bool,
    trace_out: Option<String>,
    metrics_out: Option<String>,
}

fn parse_args() -> Args {
    let mut parsed = Args {
        jobs: None,
        spec: ScenarioSpec::default(),
        chaos: ChaosSpec::default(),
        config: AutoscaleConfig::default(),
        timeline: None,
        json: false,
        trace_out: None,
        metrics_out: None,
    };
    let mut args = std::env::args().skip(1);
    let next_f64 = |args: &mut dyn Iterator<Item = String>, what: &str| -> f64 {
        args.next()
            .and_then(|v| v.parse().ok())
            .filter(|&x: &f64| x.is_finite() && x > 0.0)
            .unwrap_or_else(|| {
                eprintln!("{what} needs a positive number");
                std::process::exit(2);
            })
    };
    let next_f64_zero = |args: &mut dyn Iterator<Item = String>, what: &str| -> f64 {
        args.next()
            .and_then(|v| v.parse().ok())
            .filter(|&x: &f64| x.is_finite() && x >= 0.0)
            .unwrap_or_else(|| {
                eprintln!("{what} needs a non-negative number");
                std::process::exit(2);
            })
    };
    let next_usize = |args: &mut dyn Iterator<Item = String>, what: &str| -> usize {
        args.next()
            .and_then(|v| v.parse().ok())
            .filter(|&n: &usize| n > 0)
            .unwrap_or_else(|| {
                eprintln!("{what} needs a positive integer");
                std::process::exit(2);
            })
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--jobs" | "-j" => parsed.jobs = Some(next_usize(&mut args, "--jobs")),
            "--engine" | "-e" => {
                let spec = args.next().unwrap_or_else(|| usage());
                parsed.spec.kind = spec.parse().unwrap_or_else(|e: String| {
                    eprintln!("{e}");
                    std::process::exit(2);
                });
            }
            "--day" => parsed.spec.day_s = next_f64(&mut args, "--day"),
            "--window" => parsed.config.window_s = next_f64(&mut args, "--window"),
            "--warmup" => parsed.config.warmup_s = next_f64_zero(&mut args, "--warmup"),
            "--min" => parsed.config.min_replicas = next_usize(&mut args, "--min"),
            "--max" => parsed.config.max_replicas = next_usize(&mut args, "--max"),
            "--trough" => parsed.spec.trough_mult = next_f64_zero(&mut args, "--trough"),
            "--peak" => parsed.spec.peak_mult = next_f64(&mut args, "--peak"),
            "--slo-ttft" => parsed.config.slo.ttft_s = next_f64(&mut args, "--slo-ttft"),
            "--slo-tpot" => parsed.config.slo.tpot_s = next_f64(&mut args, "--slo-tpot"),
            "--seed" => {
                parsed.spec.seed = args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--seed needs a non-negative integer");
                    std::process::exit(2);
                });
            }
            "--fault-seed" => {
                parsed.chaos.fault_seed =
                    args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                        eprintln!("--fault-seed needs a non-negative integer");
                        std::process::exit(2);
                    });
            }
            "--kills" => parsed.chaos.kills_per_day = next_f64_zero(&mut args, "--kills"),
            "--outages" => {
                parsed.chaos.outages_per_day = next_f64_zero(&mut args, "--outages");
            }
            "--groups" => parsed.chaos.groups = next_usize(&mut args, "--groups"),
            "--detect" => parsed.chaos.detect_s = next_f64_zero(&mut args, "--detect"),
            "--retries" => {
                parsed.chaos.retry.max_attempts = next_usize(&mut args, "--retries") as u32;
            }
            "--backoff" => {
                parsed.chaos.retry.backoff_base_s = next_f64_zero(&mut args, "--backoff");
            }
            "--backoff-cap" => {
                parsed.chaos.retry.backoff_cap_s = next_f64_zero(&mut args, "--backoff-cap");
            }
            "--deadline" => parsed.chaos.retry.deadline_s = next_f64(&mut args, "--deadline"),
            "--timeline" => parsed.timeline = Some(args.next().unwrap_or_else(|| usage())),
            "--trace-out" => parsed.trace_out = Some(args.next().unwrap_or_else(|| usage())),
            "--metrics-out" => parsed.metrics_out = Some(args.next().unwrap_or_else(|| usage())),
            "--json" => parsed.json = true,
            _ => usage(),
        }
    }
    if parsed.spec.peak_mult < parsed.spec.trough_mult {
        eprintln!("--peak must be >= --trough");
        std::process::exit(2);
    }
    if parsed.config.min_replicas > parsed.config.max_replicas {
        eprintln!("--min must be <= --max");
        std::process::exit(2);
    }
    parsed
}

fn main() {
    let args = parse_args();
    let runner = SweepRunner::with_jobs(args.jobs);
    let frontier =
        chaos::default_chaos_frontier_with(&runner, &args.spec, &args.chaos, args.config);
    // The dedicated observability cell: traced only when asked, so a
    // plain run's output stays byte-identical to the untraced bin.
    let observed = (args.trace_out.is_some() || args.metrics_out.is_some()).then(|| {
        chaos::observed_chaos_cell_with(&runner, &args.spec, &args.chaos, args.config)
    });
    if let (Some(path), Some(cell)) = (args.trace_out.as_deref(), observed.as_ref()) {
        std::fs::write(path, &cell.trace_json).unwrap_or_else(|e| {
            eprintln!("cannot write trace to {path}: {e}");
            std::process::exit(2);
        });
        eprintln!(
            "wrote Perfetto trace ({} under {}, {} events) to {path}",
            cell.recovery,
            cell.fault,
            cell.trace_json.matches("\"ph\":").count(),
        );
    }
    if let (Some(path), Some(cell)) = (args.metrics_out.as_deref(), observed.as_ref()) {
        std::fs::write(path, format!("{}\n", cell.metrics.render_json())).unwrap_or_else(|e| {
            eprintln!("cannot write metrics to {path}: {e}");
            std::process::exit(2);
        });
        eprintln!("wrote metrics snapshot ({} under {}) to {path}", cell.recovery, cell.fault);
    }
    if args.json {
        print!(
            "{}",
            chaos::to_json_with_telemetry(
                &frontier,
                &args.spec,
                &args.chaos,
                observed.as_ref().map(|c| &c.metrics),
            )
        );
    } else {
        print!("{}", chaos::render_chaos(&frontier));
        print!("{}", chaos::render_detection_frontier(&frontier));
        if let Some(cell) = &args.timeline {
            let (fault, recovery) = cell.split_once(':').unwrap_or_else(|| {
                eprintln!("--timeline wants FAULT:RECOVERY (e.g. kills-8/day:reactive+replace)");
                std::process::exit(2);
            });
            match frontier.point(fault, recovery) {
                Some(point) => print!("{}", chaos::render_chaos_timeline(point)),
                None => eprintln!(
                    "no cell ({fault}, {recovery}) in this frontier (have: {} x {})",
                    frontier.faults.join(", "),
                    frontier.recoveries.join(", ")
                ),
            }
        }
    }
}
