//! Regenerate the paper's fig9 output. Usage: cargo run --release -p seesaw-bench --bin fig9
fn main() {
    println!("{}", seesaw_bench::figs::fig9::run());
}
