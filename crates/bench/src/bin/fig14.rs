//! Figure 14: bandwidth sensitivity. Usage: fig14 [n_requests_per_point]
fn main() {
    let n: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(150);
    println!("{}", seesaw_bench::figs::fig14::run(n));
}
