//! `fleet` — multi-replica serving sweeps: capacity scaling (replica
//! count × offered load) and router-policy head-to-head (see
//! `seesaw_bench::fleet` and the `crates/fleet` subsystem).
//!
//! Usage:
//!   fleet [n_requests] [--jobs N] [--engine seesaw|vllm|disagg]
//!         [--replicas n1,n2,...] [--loads m1,m2,...]
//!         [--policy rr|jsq|po2|lew|jsq-live|lew-live]
//!         [--compare-replicas N] [--compare-load M]
//!         [--hetero-load M] [--no-hetero]
//!         [--slo-ttft S] [--slo-tpot S]
//!         [--seed S] [--trace <file|diurnal>] [--json]
//!         [--trace-out FILE] [--metrics-out FILE] [--breakdown]
//!
//! Defaults: 200 ShareGPT-shaped requests per cell on vLLM-baseline
//! replicas (LLaMA2-13B on 4×A10 each), replica counts 1/2/4/8, load
//! multipliers 0.5..1.5× of `N ×` per-replica offline capacity, JSQ
//! routing for the scaling table, a 4-replica 0.9× head-to-head of
//! all six policies (estimated + live), and a mixed strong/weak
//! heterogeneous head-to-head at 1.2× aggregate capacity (skipped by
//! `--no-hetero`). `--trace diurnal` replaces the Poisson arrival
//! pattern with the sharpened diurnal envelope's shape (and `--trace
//! FILE` replays a trace file, absolute seconds one per line), making
//! the head-to-head a router × trace grid. Output is byte-identical
//! for every `--jobs` value; `--json` emits the experiments as one
//! machine-readable document.
//!
//! Observability: `--trace-out FILE` re-runs one dedicated cell (the
//! head-to-head configuration under `--policy`) with the telemetry
//! recorder on and writes its Perfetto/Chrome trace-event JSON —
//! open it at ui.perfetto.dev or `chrome://tracing`. With `--json`
//! the document additionally gains a `telemetry` metrics block, and
//! `--metrics-out FILE` writes the same metric snapshot (counters /
//! gauges / histograms, including the recorder's dropped-event
//! health counters) as a standalone JSON file.
//! `--breakdown` runs the same cell with engine tracing and prints
//! the fleet-wide engine-time breakdown (compute / communication /
//! weight transfer / ...) merged from the per-replica sim spans.

use seesaw_bench::fleet;
use seesaw_bench::serving::EngineKind;
use seesaw_engine::SweepRunner;
use seesaw_fleet::RouterPolicy;
use seesaw_workload::SloSpec;

struct Args {
    n_requests: usize,
    jobs: Option<usize>,
    engine: EngineKind,
    replica_counts: Vec<usize>,
    multipliers: Vec<f64>,
    policy: RouterPolicy,
    compare_replicas: usize,
    compare_load: f64,
    hetero_load: f64,
    hetero: bool,
    slo: SloSpec,
    seed: u64,
    trace: Option<String>,
    json: bool,
    trace_out: Option<String>,
    metrics_out: Option<String>,
    breakdown: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: fleet [n_requests] [--jobs N] [--engine seesaw|vllm|disagg] \
         [--replicas n1,n2,...] [--loads m1,m2,...] \
         [--policy rr|jsq|po2|lew|jsq-live|lew-live] \
         [--compare-replicas N] [--compare-load M] [--hetero-load M] [--no-hetero] \
         [--slo-ttft S] [--slo-tpot S] [--seed S] [--trace <file|diurnal>] [--json] \
         [--trace-out FILE] [--metrics-out FILE] [--breakdown]"
    );
    std::process::exit(2);
}

fn parse_policy(s: &str) -> RouterPolicy {
    match s {
        "rr" | "round-robin" => RouterPolicy::RoundRobin,
        "jsq" => RouterPolicy::JoinShortestQueue,
        "po2" | "p2c" => RouterPolicy::PowerOfTwoChoices { seed: 0 },
        "lew" | "least-work" => RouterPolicy::LeastEstimatedWork,
        "jsq-live" => RouterPolicy::JoinShortestQueueLive,
        "lew-live" | "least-work-live" => RouterPolicy::LeastWorkLive,
        other => {
            eprintln!("unknown policy '{other}' (expected rr|jsq|po2|lew|jsq-live|lew-live)");
            std::process::exit(2);
        }
    }
}

fn parse_args() -> Args {
    let mut parsed = Args {
        n_requests: 200,
        jobs: None,
        engine: EngineKind::Vllm,
        replica_counts: fleet::DEFAULT_REPLICA_COUNTS.to_vec(),
        multipliers: fleet::DEFAULT_LOAD_MULTIPLIERS.to_vec(),
        policy: RouterPolicy::JoinShortestQueue,
        compare_replicas: fleet::DEFAULT_COMPARE_REPLICAS,
        compare_load: fleet::DEFAULT_COMPARE_LOAD,
        hetero_load: fleet::DEFAULT_HETERO_LOAD,
        hetero: true,
        slo: seesaw_bench::serving::DEFAULT_SLO,
        seed: seesaw_bench::SEED,
        trace: None,
        json: false,
        trace_out: None,
        metrics_out: None,
        breakdown: false,
    };
    let mut args = std::env::args().skip(1);
    let next_f64 = |args: &mut dyn Iterator<Item = String>, what: &str| -> f64 {
        args.next()
            .and_then(|v| v.parse().ok())
            .filter(|&x: &f64| x.is_finite() && x > 0.0)
            .unwrap_or_else(|| {
                eprintln!("{what} needs a positive number");
                std::process::exit(2);
            })
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--jobs" | "-j" => {
                parsed.jobs = args.next().and_then(|v| v.parse().ok()).filter(|&n| n > 0);
                if parsed.jobs.is_none() {
                    eprintln!("--jobs needs a positive integer");
                    std::process::exit(2);
                }
            }
            "--engine" | "-e" => {
                let spec = args.next().unwrap_or_else(|| usage());
                parsed.engine = spec.parse().unwrap_or_else(|e: String| {
                    eprintln!("{e}");
                    std::process::exit(2);
                });
            }
            "--replicas" => {
                let spec = args.next().unwrap_or_else(|| usage());
                let counts: Option<Vec<usize>> = spec
                    .split(',')
                    .map(|s| s.trim().parse::<usize>().ok().filter(|&n| n > 0))
                    .collect();
                match counts {
                    Some(c) if !c.is_empty() => parsed.replica_counts = c,
                    _ => {
                        eprintln!("--replicas needs a comma-separated list of positive counts");
                        std::process::exit(2);
                    }
                }
            }
            "--loads" => {
                let spec = args.next().unwrap_or_else(|| usage());
                let loads: Option<Vec<f64>> = spec
                    .split(',')
                    .map(|s| s.trim().parse::<f64>().ok().filter(|&x| x.is_finite() && x > 0.0))
                    .collect();
                match loads {
                    Some(l) if !l.is_empty() => parsed.multipliers = l,
                    _ => {
                        eprintln!("--loads needs a comma-separated list of positive multipliers");
                        std::process::exit(2);
                    }
                }
            }
            "--policy" => {
                let spec = args.next().unwrap_or_else(|| usage());
                parsed.policy = parse_policy(&spec);
            }
            "--compare-replicas" => {
                parsed.compare_replicas = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| {
                        eprintln!("--compare-replicas needs a positive integer");
                        std::process::exit(2);
                    });
            }
            "--compare-load" => parsed.compare_load = next_f64(&mut args, "--compare-load"),
            "--hetero-load" => parsed.hetero_load = next_f64(&mut args, "--hetero-load"),
            "--no-hetero" => parsed.hetero = false,
            "--slo-ttft" => parsed.slo.ttft_s = next_f64(&mut args, "--slo-ttft"),
            "--slo-tpot" => parsed.slo.tpot_s = next_f64(&mut args, "--slo-tpot"),
            "--seed" => {
                parsed.seed = args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--seed needs a non-negative integer");
                    std::process::exit(2);
                });
            }
            "--trace" => parsed.trace = Some(args.next().unwrap_or_else(|| usage())),
            "--trace-out" => parsed.trace_out = Some(args.next().unwrap_or_else(|| usage())),
            "--metrics-out" => parsed.metrics_out = Some(args.next().unwrap_or_else(|| usage())),
            "--breakdown" => parsed.breakdown = true,
            "--json" => parsed.json = true,
            other => match other.parse() {
                Ok(n) if n > 0 => parsed.n_requests = n,
                _ => usage(),
            },
        }
    }
    parsed
}

fn main() {
    let args = parse_args();
    let runner = SweepRunner::with_jobs(args.jobs);
    let pattern = args.trace.as_deref().map(|spec| {
        fleet::trace_pattern(spec, args.n_requests, args.seed).unwrap_or_else(|e| {
            eprintln!("{e}");
            std::process::exit(2);
        })
    });
    let (scaling, comparison) = fleet::default_experiments_patterned_with(
        &runner,
        args.engine,
        args.n_requests,
        pattern.as_deref(),
        &args.replica_counts,
        &args.multipliers,
        args.policy,
        args.compare_replicas,
        args.compare_load,
        args.slo,
        args.seed,
    );
    let hetero = args.hetero.then(|| {
        fleet::default_hetero_comparison_with(
            &runner,
            args.n_requests,
            args.hetero_load,
            args.slo,
            args.seed,
        )
    });
    // The dedicated observability cell: traced only when asked, so a
    // plain run's output stays byte-identical to the untraced bin.
    let observed = (args.trace_out.is_some() || args.metrics_out.is_some()).then(|| {
        fleet::observed_cell_with(
            &runner,
            args.engine,
            args.n_requests,
            args.compare_replicas,
            args.compare_load,
            args.policy,
            args.seed,
        )
    });
    if let (Some(path), Some(cell)) = (args.trace_out.as_deref(), observed.as_ref()) {
        std::fs::write(path, &cell.trace_json).unwrap_or_else(|e| {
            eprintln!("cannot write trace to {path}: {e}");
            std::process::exit(2);
        });
        eprintln!(
            "wrote Perfetto trace ({} replicas, {} policy, {} events) to {path}",
            cell.n_replicas,
            cell.policy,
            cell.trace_json.matches("\"ph\":").count(),
        );
    }
    if let (Some(path), Some(cell)) = (args.metrics_out.as_deref(), observed.as_ref()) {
        std::fs::write(path, format!("{}\n", cell.metrics.render_json())).unwrap_or_else(|e| {
            eprintln!("cannot write metrics to {path}: {e}");
            std::process::exit(2);
        });
        eprintln!("wrote metrics snapshot ({} replicas, {} policy) to {path}", cell.n_replicas, cell.policy);
    }
    if args.json {
        print!(
            "{}",
            fleet::to_json_with_telemetry(
                &scaling,
                &comparison,
                hetero.as_ref(),
                args.seed,
                observed.as_ref().map(|c| &c.metrics),
            )
        );
    } else {
        print!("{}", fleet::render_scaling(&scaling));
        print!("{}", fleet::render_comparison(&comparison));
        if let Some(h) = &hetero {
            print!("{}", fleet::render_hetero_comparison(h));
        }
    }
    if args.breakdown {
        let (report, summaries) = fleet::breakdown_cell_with(
            &runner,
            args.engine,
            args.n_requests,
            args.compare_replicas,
            args.compare_load,
            args.policy,
            args.seed,
        );
        let table = fleet::render_breakdown(&report, &summaries);
        if args.json {
            // Keep stdout a valid JSON document.
            eprint!("{table}");
        } else {
            print!("{table}");
        }
    }
}
