//! All ablation studies (DESIGN.md D1-D5). Usage: ablations [n_requests]
use seesaw_bench::figs::ablations as a;
fn main() {
    let n: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(200);
    println!("{}", a::abl_sched(n));
    println!("{}", a::abl_buffer(n));
    println!("{}", a::abl_overlap(n));
    println!("{}", a::abl_layout(n));
    println!("{}", a::abl_reshard());
    println!("{}", a::abl_chunk(n));
}
