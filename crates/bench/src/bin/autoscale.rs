//! `autoscale` — replay a day-long trace through an elastic fleet
//! under every scaling policy and print the policy × trace
//! cost-vs-SLO frontier (see `seesaw_bench::autoscale` and the
//! `crates/autoscale` subsystem).
//!
//! Usage:
//!   autoscale [--jobs N] [--engine seesaw|vllm|disagg] [--day S]
//!             [--window S] [--warmup S] [--min N] [--max N]
//!             [--trough M] [--peak M] [--slo-ttft S] [--slo-tpot S]
//!             [--seed S] [--trace FILE] [--timeline POLICY] [--json]
//!             [--trace-out FILE] [--metrics-out FILE]
//!
//! Defaults: one 86 400 s day shaped by a sinusoidal diurnal envelope
//! and a bimodal rush-hours envelope, both swinging between 0.25× and
//! 5× the measured per-replica offline capacity; 5-minute control
//! windows, 60 s replica warm-up, 1–16 replicas, JSQ routing; the
//! policy roster compares static provision-for-peak and
//! provision-for-mean against the reactive and target-utilization
//! controllers. `--trace FILE` replays absolute arrival times (one
//! per line, `#` comments) instead of the generated envelopes;
//! `--timeline POLICY` additionally prints that policy's per-window
//! trajectory on the first trace. Output is byte-identical for every
//! `--jobs` value.
//!
//! Observability: `--trace-out FILE` re-runs one dedicated cell (the
//! reactive controller on the first trace) with the telemetry
//! recorder on and writes its Perfetto/Chrome trace-event JSON —
//! controller windows, scale events, warm-ups, and per-request spans
//! on per-replica tracks; open it at ui.perfetto.dev or
//! `chrome://tracing`. With `--json` the document additionally gains
//! a `telemetry` metrics block, and `--metrics-out FILE` writes the
//! same metric snapshot (counters / gauges / histograms, including
//! the recorder's dropped-event health counters) as a standalone
//! JSON file.

use seesaw_autoscale::AutoscaleConfig;
use seesaw_bench::autoscale::{self, ScenarioSpec};
use seesaw_engine::SweepRunner;

fn usage() -> ! {
    eprintln!(
        "usage: autoscale [--jobs N] [--engine seesaw|vllm|disagg] [--day S] [--window S] \
         [--warmup S] [--min N] [--max N] [--trough M] [--peak M] [--slo-ttft S] \
         [--slo-tpot S] [--seed S] [--trace FILE] [--timeline POLICY] [--json] \
         [--trace-out FILE] [--metrics-out FILE]"
    );
    std::process::exit(2);
}

struct Args {
    jobs: Option<usize>,
    spec: ScenarioSpec,
    config: AutoscaleConfig,
    trace_file: Option<String>,
    timeline: Option<String>,
    json: bool,
    trace_out: Option<String>,
    metrics_out: Option<String>,
}

fn parse_args() -> Args {
    let mut parsed = Args {
        jobs: None,
        spec: ScenarioSpec::default(),
        config: AutoscaleConfig::default(),
        trace_file: None,
        timeline: None,
        json: false,
        trace_out: None,
        metrics_out: None,
    };
    let mut args = std::env::args().skip(1);
    let next_f64 = |args: &mut dyn Iterator<Item = String>, what: &str| -> f64 {
        args.next()
            .and_then(|v| v.parse().ok())
            .filter(|&x: &f64| x.is_finite() && x > 0.0)
            .unwrap_or_else(|| {
                eprintln!("{what} needs a positive number");
                std::process::exit(2);
            })
    };
    let next_usize = |args: &mut dyn Iterator<Item = String>, what: &str| -> usize {
        args.next()
            .and_then(|v| v.parse().ok())
            .filter(|&n: &usize| n > 0)
            .unwrap_or_else(|| {
                eprintln!("{what} needs a positive integer");
                std::process::exit(2);
            })
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--jobs" | "-j" => parsed.jobs = Some(next_usize(&mut args, "--jobs")),
            "--engine" | "-e" => {
                let spec = args.next().unwrap_or_else(|| usage());
                parsed.spec.kind = spec.parse().unwrap_or_else(|e: String| {
                    eprintln!("{e}");
                    std::process::exit(2);
                });
            }
            "--day" => parsed.spec.day_s = next_f64(&mut args, "--day"),
            "--window" => parsed.config.window_s = next_f64(&mut args, "--window"),
            "--warmup" => {
                // Warm-up may be zero (instant weight load).
                parsed.config.warmup_s = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&x: &f64| x.is_finite() && x >= 0.0)
                    .unwrap_or_else(|| {
                        eprintln!("--warmup needs a non-negative number");
                        std::process::exit(2);
                    });
            }
            "--min" => parsed.config.min_replicas = next_usize(&mut args, "--min"),
            "--max" => parsed.config.max_replicas = next_usize(&mut args, "--max"),
            "--trough" => {
                // Zero is a valid trough (a fully idle overnight
                // valley — the regime where elasticity pays most).
                parsed.spec.trough_mult = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&x: &f64| x.is_finite() && x >= 0.0)
                    .unwrap_or_else(|| {
                        eprintln!("--trough needs a non-negative number");
                        std::process::exit(2);
                    });
            }
            "--peak" => parsed.spec.peak_mult = next_f64(&mut args, "--peak"),
            "--slo-ttft" => parsed.config.slo.ttft_s = next_f64(&mut args, "--slo-ttft"),
            "--slo-tpot" => parsed.config.slo.tpot_s = next_f64(&mut args, "--slo-tpot"),
            "--seed" => {
                parsed.spec.seed = args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--seed needs a non-negative integer");
                    std::process::exit(2);
                });
            }
            "--trace" => parsed.trace_file = Some(args.next().unwrap_or_else(|| usage())),
            "--trace-out" => parsed.trace_out = Some(args.next().unwrap_or_else(|| usage())),
            "--metrics-out" => parsed.metrics_out = Some(args.next().unwrap_or_else(|| usage())),
            "--timeline" => parsed.timeline = Some(args.next().unwrap_or_else(|| usage())),
            "--json" => parsed.json = true,
            _ => usage(),
        }
    }
    if parsed.spec.peak_mult < parsed.spec.trough_mult {
        eprintln!("--peak must be >= --trough");
        std::process::exit(2);
    }
    if parsed.config.min_replicas > parsed.config.max_replicas {
        eprintln!("--min must be <= --max");
        std::process::exit(2);
    }
    parsed
}

fn main() {
    let args = parse_args();
    let runner = SweepRunner::with_jobs(args.jobs);
    let sweep = autoscale::default_frontier_with(
        &runner,
        &args.spec,
        args.config,
        args.trace_file.as_deref(),
    )
    .unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });
    // The dedicated observability cell: traced only when asked, so a
    // plain run's output stays byte-identical to the untraced bin.
    let observed = (args.trace_out.is_some() || args.metrics_out.is_some()).then(|| {
        autoscale::observed_frontier_cell_with(
            &runner,
            &args.spec,
            args.config,
            args.trace_file.as_deref(),
        )
        .unwrap_or_else(|e| {
            eprintln!("{e}");
            std::process::exit(2);
        })
    });
    if let (Some(path), Some(cell)) = (args.trace_out.as_deref(), observed.as_ref()) {
        std::fs::write(path, &cell.trace_json).unwrap_or_else(|e| {
            eprintln!("cannot write trace to {path}: {e}");
            std::process::exit(2);
        });
        eprintln!(
            "wrote Perfetto trace ({} on {}, {} events) to {path}",
            cell.policy,
            cell.trace,
            cell.trace_json.matches("\"ph\":").count(),
        );
    }
    if let (Some(path), Some(cell)) = (args.metrics_out.as_deref(), observed.as_ref()) {
        std::fs::write(path, format!("{}\n", cell.metrics.render_json())).unwrap_or_else(|e| {
            eprintln!("cannot write metrics to {path}: {e}");
            std::process::exit(2);
        });
        eprintln!("wrote metrics snapshot ({} on {}) to {path}", cell.policy, cell.trace);
    }
    if args.json {
        print!(
            "{}",
            autoscale::to_json_with_telemetry(
                &sweep,
                &args.spec,
                observed.as_ref().map(|c| &c.metrics),
            )
        );
    } else {
        print!("{}", autoscale::render_frontier(&sweep));
        if let Some(policy) = &args.timeline {
            match sweep
                .points
                .iter()
                .find(|p| p.trace == sweep.traces[0] && &p.policy.to_string() == policy)
            {
                Some(point) => print!("{}", autoscale::render_timeline(point)),
                None => eprintln!(
                    "no policy '{policy}' in this sweep (have: {})",
                    sweep.policies.join(", ")
                ),
            }
        }
    }
}
