//! `perf_report` — measures the figure-generation sweep serial vs
//! parallel plus the single-simulation hot path (sims/sec), and
//! writes a `BENCH_sweep.json` trajectory artifact so the sweep
//! engine's performance is tracked across PRs.
//!
//! Usage: `perf_report [subsample] [--jobs N] [--out PATH] [--baseline PATH]`
//!
//! Defaults: `subsample = 8` (the acceptance benchmark is
//! `all_figures 8`), `N` from the environment (clamped to the host's
//! cores), `PATH = BENCH_sweep.json`. The full catalog runs twice —
//! once on a single-threaded runner, once on the parallel runner —
//! and the two outputs are compared byte-for-byte before the timings
//! are reported.
//!
//! The sims/sec microbench times repeated *single-candidate*
//! evaluations (engine construction + full run on a fixed workload)
//! for one Seesaw and one vLLM candidate, exactly the unit of work a
//! sweep performs per grid cell — plus one online-serving candidate
//! (fixed-seed Poisson arrivals, arrival-gated admission, latency
//! percentiles), the unit of work a serving sweep performs per load
//! point. Candidates share `Arc`'d specs and the per-thread
//! executor/roofline-cache pools stay warm across iterations — the
//! cache-warm steady state of a sweep worker.
//!
//! With `--baseline PATH`, the report exits non-zero when any
//! sims/sec figure (`seesaw`, `vllm`, `serving`, `fleet`,
//! `fleet_live`, `fleet_live_traced`, `autoscale`,
//! `autoscale_sketch`, `chaos`) regresses more than 20% against the
//! committed artifact (or when parallel output ever diverges from
//! serial). `autoscale_sketch` is the streaming metrics pipeline in
//! isolation (sketch-mode window accumulation + burn-rate evaluation
//! over a precomputed day) and must additionally clear 1.5x the full
//! `autoscale` cell rate — the pipeline may never become comparable
//! in cost to the replay it summarizes.
//!
//! Two telemetry figures ride along: `fleet_live_traced` times the
//! live-fleet cell with the span recorder and metrics registry on
//! (the enabled-telemetry cost), and the telemetry-disabled overhead
//! check re-times the same cell through the instrumented entry point
//! with the instrument *off*, holding it to within 5% of
//! `fleet_live` — "zero-cost when disabled", measured. The report
//! also runs the autoscale controller with self-profiling timers on
//! and prints its wall-time phase attribution (routing / live-state
//! replay / engine runs / metrics), which must explain >= 90% of the
//! controller's total wall time.

use seesaw_bench::simsbench::{SimsBench, WORKLOAD_LABEL};
use seesaw_bench::{cli, figs};
use seesaw_engine::sweep::host_cores;
use seesaw_engine::SweepRunner;
use seesaw_telemetry::ControllerProfile;
use std::time::Instant;

/// Iterations per sims/sec measurement batch.
const SIMS_BATCH: usize = 100;
/// Measurement batches (the best one is reported, suppressing
/// scheduler noise on small CI hosts).
const SIMS_BATCHES: usize = 5;
/// Warm-up iterations before timing (fills the executor/cache pools).
const SIMS_WARMUP: usize = 10;
/// Maximum tolerated sims/sec regression vs `--baseline`.
const SIMS_REGRESSION_TOLERANCE: f64 = 0.20;
/// Maximum tolerated throughput cost of the telemetry-disabled
/// instrumented entry point vs the plain `fleet_live` path.
const TELEMETRY_DISABLED_TOLERANCE: f64 = 0.05;
/// Minimum ratio of the streaming-metrics pipeline rate
/// (`autoscale_sketch`) to the full autoscale cell rate.
const SKETCH_SPEEDUP_FLOOR: f64 = 1.5;
/// Profiled controller runs folded into one attribution block.
const PROFILE_RUNS: usize = 3;
/// Minimum fraction of controller wall time the profile must explain.
const PROFILE_COVERAGE_FLOOR: f64 = 0.90;

struct FigTiming {
    name: &'static str,
    serial_s: f64,
    parallel_s: f64,
}

fn run_catalog(subsample: usize, runner: SweepRunner) -> (f64, Vec<(&'static str, f64, String)>) {
    let jobs = figs::catalog(subsample, runner);
    let names: Vec<&'static str> = jobs.iter().map(|&(name, _)| name).collect();
    let t0 = Instant::now();
    let results = runner.run_tasks(jobs.into_iter().map(|(_, job)| job).collect());
    let total = t0.elapsed().as_secs_f64();
    let per_fig = names
        .into_iter()
        .zip(results)
        .map(|(name, r)| (name, r.elapsed_s, r.value))
        .collect();
    (total, per_fig)
}

/// Best-batch evaluations-per-second of `f` (one call = one
/// single-candidate evaluation).
fn sims_per_sec(mut f: impl FnMut()) -> f64 {
    for _ in 0..SIMS_WARMUP {
        f();
    }
    let mut best = f64::INFINITY;
    for _ in 0..SIMS_BATCHES {
        let t0 = Instant::now();
        for _ in 0..SIMS_BATCH {
            f();
        }
        best = best.min(t0.elapsed().as_secs_f64() / SIMS_BATCH as f64);
    }
    1.0 / best
}

/// All sims/sec figures of one measurement pass, in report order.
#[derive(Clone, Copy)]
struct Sims {
    seesaw: f64,
    vllm: f64,
    serving: f64,
    fleet: f64,
    fleet_live: f64,
    fleet_live_traced: f64,
    autoscale: f64,
    autoscale_sketch: f64,
    chaos: f64,
}

impl Sims {
    /// `(gate-key, value)` pairs, in report order.
    fn named(&self) -> [(&'static str, f64); 9] {
        [
            ("seesaw", self.seesaw),
            ("vllm", self.vllm),
            ("serving", self.serving),
            ("fleet", self.fleet),
            ("fleet_live", self.fleet_live),
            ("fleet_live_traced", self.fleet_live_traced),
            ("autoscale", self.autoscale),
            ("autoscale_sketch", self.autoscale_sketch),
            ("chaos", self.chaos),
        ]
    }

    /// Per-figure max with another pass (the regression-gate retry).
    fn max(&self, other: &Sims) -> Sims {
        Sims {
            seesaw: self.seesaw.max(other.seesaw),
            vllm: self.vllm.max(other.vllm),
            serving: self.serving.max(other.serving),
            fleet: self.fleet.max(other.fleet),
            fleet_live: self.fleet_live.max(other.fleet_live),
            fleet_live_traced: self.fleet_live_traced.max(other.fleet_live_traced),
            autoscale: self.autoscale.max(other.autoscale),
            autoscale_sketch: self.autoscale_sketch.max(other.autoscale_sketch),
            chaos: self.chaos.max(other.chaos),
        }
    }

    fn summary(&self) -> String {
        self.named()
            .iter()
            .map(|(name, v)| format!("{name} {v:.0}"))
            .collect::<Vec<_>>()
            .join(", ")
    }
}

/// The tier-1 sims/sec microbench — see [`seesaw_bench::simsbench`]
/// for the canonical scenario definition. `serving` is the
/// latency-metric throughput: online serving-sweep load points
/// (arrival-gated run + percentile computation) per second. `fleet`
/// is the fleet-sweep grid-cell rate: a serial 4-replica JSQ fleet
/// run (routing + 4 replica simulations + merged report) per second;
/// `fleet_live` is the same cell under `jsq-live` — the global event
/// loop with per-arrival measured-state queries in place of the
/// merged-timeline fast path. `autoscale` is the frontier-sweep
/// grid-cell rate: one reactive controller replay of the compressed
/// diurnal trace (windowed routing, scaling decisions, elastic
/// replica runs, merged windowed report) per second.
/// `autoscale_sketch` is the streaming metrics pipeline alone: one
/// sketch-mode window-accumulator pass plus burn-rate evaluation over
/// the autoscale cell's precomputed day. `chaos` is the same replay
/// under a fixed seeded kill schedule with replacement spawns and
/// retry/requeue — one chaos-frontier grid cell per evaluation.
fn measure_sims_per_sec(bench: &SimsBench) -> Sims {
    Sims {
        seesaw: sims_per_sec(|| {
            std::hint::black_box(bench.run_seesaw_once());
        }),
        vllm: sims_per_sec(|| {
            std::hint::black_box(bench.run_vllm_once());
        }),
        serving: sims_per_sec(|| {
            std::hint::black_box(bench.run_serving_once());
        }),
        fleet: sims_per_sec(|| {
            std::hint::black_box(bench.run_fleet_once());
        }),
        fleet_live: sims_per_sec(|| {
            std::hint::black_box(bench.run_fleet_live_once());
        }),
        fleet_live_traced: sims_per_sec(|| {
            std::hint::black_box(bench.run_fleet_live_traced_once());
        }),
        autoscale: sims_per_sec(|| {
            std::hint::black_box(bench.run_autoscale_once());
        }),
        autoscale_sketch: sims_per_sec(|| {
            std::hint::black_box(bench.run_autoscale_sketch_once());
        }),
        chaos: sims_per_sec(|| {
            std::hint::black_box(bench.run_chaos_once());
        }),
    }
}

/// Alternating-batch comparison of the plain `fleet_live` path vs the
/// instrumented entry point with the instrument off. Returns the
/// `(live, disabled)` sims/sec of the batch pair with the smallest
/// apparent overhead (see the call site for why pairing, not
/// best-of-batches, is the right noise model).
fn measure_disabled_overhead(bench: &SimsBench) -> (f64, f64) {
    for _ in 0..SIMS_WARMUP {
        std::hint::black_box(bench.run_fleet_live_once());
        std::hint::black_box(bench.run_fleet_live_disabled_once());
    }
    let mut best = (1.0, 0.0);
    for _ in 0..SIMS_BATCHES {
        let t0 = Instant::now();
        for _ in 0..SIMS_BATCH {
            std::hint::black_box(bench.run_fleet_live_once());
        }
        let live = SIMS_BATCH as f64 / t0.elapsed().as_secs_f64();
        let t1 = Instant::now();
        for _ in 0..SIMS_BATCH {
            std::hint::black_box(bench.run_fleet_live_disabled_once());
        }
        let disabled = SIMS_BATCH as f64 / t1.elapsed().as_secs_f64();
        if disabled / live > best.1 / best.0 {
            best = (live, disabled);
        }
    }
    best
}

/// Extract `"key": <number>` from a (flat) JSON artifact without a
/// JSON parser — the artifact is machine-written by this binary, so
/// a textual scan is exact enough for the regression gate.
fn json_number(text: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let at = text.find(&pat)? + pat.len();
    let rest = text[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn main() {
    let args = cli::parse_sweep_args(
        "perf_report [subsample] [--jobs N] [--out PATH] [--baseline PATH]",
        8,
        true,
    );
    let subsample = args.subsample;
    let out_path = args.out.unwrap_or_else(|| String::from("BENCH_sweep.json"));
    // Snapshot the baseline up front: `--out` may point at the same
    // file (regenerating the committed artifact in place), and the
    // gate must compare against the *pre-run* numbers, never a
    // just-written copy of itself.
    let baseline = args.baseline.map(|path| {
        let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            eprintln!("cannot read baseline {path}: {e}");
            std::process::exit(1);
        });
        (path, text)
    });
    let parallel_runner = SweepRunner::with_jobs(args.jobs);
    let host_cores = host_cores();

    eprintln!(
        "perf_report: all_figures {subsample}, serial baseline then {} jobs (requested {}, host has {host_cores} cores)",
        parallel_runner.jobs(),
        parallel_runner.requested_jobs()
    );
    eprintln!("running serial baseline...");
    let (serial_total, serial_figs) = run_catalog(subsample, SweepRunner::serial());
    eprintln!("serial: {serial_total:.2}s; running parallel sweep...");
    let (parallel_total, parallel_figs) = run_catalog(subsample, parallel_runner);
    eprintln!("parallel: {parallel_total:.2}s; measuring sims/sec...");
    let bench = SimsBench::new();
    let mut sims = measure_sims_per_sec(&bench);
    eprintln!("sims/sec: {}", sims.summary());

    // The zero-cost-when-disabled check: the instrumented entry point
    // with the instrument off must keep (within tolerance) the plain
    // fleet_live throughput. Batches alternate plain/disabled and the
    // verdict comes from the best-ratio *pair*, so one-sided
    // scheduler noise (which hits adjacent batches alike) cancels
    // instead of minting a phantom overhead; a real cost shows up in
    // every pair.
    eprintln!("measuring telemetry-disabled overhead...");
    let (live, disabled) = measure_disabled_overhead(&bench);
    let disabled_overhead = (1.0 - disabled / live).max(0.0);
    eprintln!(
        "telemetry disabled: {disabled:.0} vs plain {live:.0} sims/sec \
         ({:.1}% overhead)",
        100.0 * disabled_overhead
    );

    // Controller self-profiling: where the autoscale cells/s go.
    eprintln!("profiling the autoscale controller...");
    let mut profile = ControllerProfile::default();
    for _ in 0..PROFILE_RUNS {
        let (report, p) = bench.run_autoscale_profiled_once();
        std::hint::black_box(report);
        profile.absorb(&p);
    }

    // Resolve the gate's retry *before* composing the artifact, so a
    // run that passes on the re-measurement also records those
    // (better) numbers — promoting the written artifact as the next
    // committed baseline must never ratchet the floor down by a noise
    // swing. Scheduler noise on small CI hosts depresses whole
    // measurement windows; a real regression fails both measurements.
    let floor_of = |before: f64| before * (1.0 - SIMS_REGRESSION_TOLERANCE);
    if let Some((_, text)) = &baseline {
        let below = sims.named().iter().any(|&(name, c)| {
            json_number(text, name).is_some_and(|b| b > 0.0 && c < floor_of(b))
        });
        if below {
            eprintln!("apparent sims/sec regression; re-measuring once...");
            sims = sims.max(&measure_sims_per_sec(&bench));
        }
    }

    let outputs_identical = serial_figs
        .iter()
        .zip(&parallel_figs)
        .all(|((_, _, a), (_, _, b))| a == b);
    let speedup = serial_total / parallel_total.max(1e-9);
    let timings: Vec<FigTiming> = serial_figs
        .iter()
        .zip(&parallel_figs)
        .map(|(&(name, serial_s, _), &(_, parallel_s, _))| FigTiming {
            name,
            serial_s,
            parallel_s,
        })
        .collect();

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"all_figures\",\n");
    json.push_str(&format!("  \"subsample\": {subsample},\n"));
    json.push_str(&format!("  \"host_cores\": {host_cores},\n"));
    json.push_str(&format!(
        "  \"jobs_requested\": {},\n",
        parallel_runner.requested_jobs()
    ));
    json.push_str(&format!("  \"jobs\": {},\n", parallel_runner.jobs()));
    json.push_str(&format!("  \"serial_wall_s\": {serial_total:.4},\n"));
    json.push_str(&format!("  \"parallel_wall_s\": {parallel_total:.4},\n"));
    json.push_str(&format!("  \"speedup\": {speedup:.3},\n"));
    json.push_str(&format!("  \"outputs_identical\": {outputs_identical},\n"));
    json.push_str("  \"sims_per_sec\": {\n");
    for (name, value) in sims.named() {
        json.push_str(&format!("    \"{name}\": {value:.1},\n"));
    }
    json.push_str(&format!("    \"iters_per_batch\": {SIMS_BATCH},\n"));
    json.push_str(&format!("    \"batches\": {SIMS_BATCHES},\n"));
    json.push_str(&format!("    \"workload\": \"{}\"\n", json_escape(WORKLOAD_LABEL)));
    json.push_str("  },\n");
    json.push_str(&format!(
        "  \"telemetry_disabled\": {{\"fleet_live\": {live:.1}, \"disabled\": {disabled:.1}, \
         \"overhead\": {disabled_overhead:.4}}},\n"
    ));
    json.push_str(&format!(
        "  \"controller_profile\": {{\"runs\": {PROFILE_RUNS}, \"routing_s\": {:.4}, \
         \"replay_s\": {:.4}, \"engine_s\": {:.4}, \"metrics_s\": {:.4}, \"total_s\": {:.4}, \
         \"coverage\": {:.4}, \"replay_amplification\": {:.3}}},\n",
        profile.routing_s,
        profile.replay_s,
        profile.engine_s,
        profile.metrics_s,
        profile.total_s,
        profile.coverage(),
        profile.replay_amplification(),
    ));
    json.push_str("  \"figures\": [\n");
    for (i, t) in timings.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"serial_s\": {:.4}, \"parallel_s\": {:.4}}}{}\n",
            json_escape(t.name),
            t.serial_s,
            t.parallel_s,
            if i + 1 < timings.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, &json).unwrap_or_else(|e| {
        eprintln!("cannot write {out_path}: {e}");
        std::process::exit(1);
    });

    println!(
        "all_figures {subsample}: serial {serial_total:.2}s, {} jobs {parallel_total:.2}s -> {speedup:.2}x (outputs identical: {outputs_identical})",
        parallel_runner.jobs()
    );
    println!("sims/sec: {}", sims.summary());
    println!(
        "telemetry disabled: {disabled:.0} vs {live:.0} sims/sec ({:.1}% overhead)",
        100.0 * disabled_overhead
    );
    print!("{}", profile.render());
    println!("wrote {out_path}");
    if !outputs_identical {
        eprintln!("ERROR: parallel output diverged from serial output");
        std::process::exit(1);
    }
    if profile.coverage() < PROFILE_COVERAGE_FLOOR {
        eprintln!(
            "ERROR: controller profile explains only {:.1}% of wall time (floor {:.0}%)",
            100.0 * profile.coverage(),
            100.0 * PROFILE_COVERAGE_FLOOR
        );
        std::process::exit(1);
    }
    let sketch_ratio = sims.autoscale_sketch / sims.autoscale.max(1e-9);
    println!(
        "autoscale_sketch vs autoscale: {sketch_ratio:.1}x (floor {SKETCH_SPEEDUP_FLOOR:.1}x)"
    );
    if sketch_ratio < SKETCH_SPEEDUP_FLOOR {
        eprintln!(
            "ERROR: streaming metrics pipeline only {sketch_ratio:.2}x the full autoscale \
             cell (floor {SKETCH_SPEEDUP_FLOOR:.1}x)"
        );
        std::process::exit(1);
    }

    if let Some((baseline_path, baseline)) = baseline {
        let mut failed = false;
        for (name, current) in sims.named() {
            match json_number(&baseline, name) {
                Some(before) if before > 0.0 => {
                    let regressed = current < floor_of(before);
                    let verdict = if regressed { "REGRESSION" } else { "ok" };
                    println!(
                        "baseline {name}: {before:.0} -> {current:.0} sims/sec ({verdict})"
                    );
                    failed |= regressed;
                }
                _ => println!(
                    "baseline {name}: no sims_per_sec in {baseline_path} (pre-metric artifact), skipping"
                ),
            }
        }
        // The disabled-overhead check gates with the baseline run:
        // that's the CI posture where a throughput verdict is wanted.
        let overhead_ok = disabled_overhead <= TELEMETRY_DISABLED_TOLERANCE;
        println!(
            "baseline telemetry-disabled overhead: {:.1}% ({})",
            100.0 * disabled_overhead,
            if overhead_ok { "ok" } else { "REGRESSION" }
        );
        if failed || !overhead_ok {
            if !overhead_ok {
                eprintln!(
                    "ERROR: telemetry-disabled path costs more than {:.0}% vs fleet_live",
                    TELEMETRY_DISABLED_TOLERANCE * 100.0
                );
            }
            if failed {
                eprintln!(
                    "ERROR: sims/sec regressed more than {:.0}% vs {baseline_path}",
                    SIMS_REGRESSION_TOLERANCE * 100.0
                );
            }
            std::process::exit(1);
        }
    }
}
