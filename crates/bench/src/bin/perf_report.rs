//! `perf_report` — measures the figure-generation sweep serial vs
//! parallel and writes a `BENCH_sweep.json` trajectory artifact, so
//! the speedup of the sweep engine is tracked across PRs.
//!
//! Usage: `perf_report [subsample] [--jobs N] [--out PATH]`
//!
//! Defaults: `subsample = 8` (the acceptance benchmark is
//! `all_figures 8`), `N` from the environment (all cores), `PATH =
//! BENCH_sweep.json`. The full catalog runs twice — once on a
//! single-threaded runner, once on the parallel runner — and the two
//! outputs are compared byte-for-byte before the timings are
//! reported.

use seesaw_bench::{cli, figs};
use seesaw_engine::SweepRunner;
use std::time::Instant;

struct FigTiming {
    name: &'static str,
    serial_s: f64,
    parallel_s: f64,
}

fn run_catalog(subsample: usize, runner: SweepRunner) -> (f64, Vec<(&'static str, f64, String)>) {
    let jobs = figs::catalog(subsample, runner);
    let names: Vec<&'static str> = jobs.iter().map(|&(name, _)| name).collect();
    let t0 = Instant::now();
    let results = runner.run_tasks(jobs.into_iter().map(|(_, job)| job).collect());
    let total = t0.elapsed().as_secs_f64();
    let per_fig = names
        .into_iter()
        .zip(results)
        .map(|(name, r)| (name, r.elapsed_s, r.value))
        .collect();
    (total, per_fig)
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn main() {
    let args =
        cli::parse_sweep_args("perf_report [subsample] [--jobs N] [--out PATH]", 8, true);
    let subsample = args.subsample;
    let out_path = args.out.unwrap_or_else(|| String::from("BENCH_sweep.json"));
    let parallel_runner = SweepRunner::with_jobs(args.jobs);
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    eprintln!(
        "perf_report: all_figures {subsample}, serial baseline then {} jobs (host has {host_cores} cores)",
        parallel_runner.jobs()
    );
    eprintln!("running serial baseline...");
    let (serial_total, serial_figs) = run_catalog(subsample, SweepRunner::serial());
    eprintln!("serial: {serial_total:.2}s; running parallel sweep...");
    let (parallel_total, parallel_figs) = run_catalog(subsample, parallel_runner);
    eprintln!("parallel: {parallel_total:.2}s");

    let outputs_identical = serial_figs
        .iter()
        .zip(&parallel_figs)
        .all(|((_, _, a), (_, _, b))| a == b);
    let speedup = serial_total / parallel_total.max(1e-9);
    let timings: Vec<FigTiming> = serial_figs
        .iter()
        .zip(&parallel_figs)
        .map(|(&(name, serial_s, _), &(_, parallel_s, _))| FigTiming {
            name,
            serial_s,
            parallel_s,
        })
        .collect();

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"all_figures\",\n");
    json.push_str(&format!("  \"subsample\": {subsample},\n"));
    json.push_str(&format!("  \"host_cores\": {host_cores},\n"));
    json.push_str(&format!("  \"jobs\": {},\n", parallel_runner.jobs()));
    json.push_str(&format!("  \"serial_wall_s\": {serial_total:.4},\n"));
    json.push_str(&format!("  \"parallel_wall_s\": {parallel_total:.4},\n"));
    json.push_str(&format!("  \"speedup\": {speedup:.3},\n"));
    json.push_str(&format!("  \"outputs_identical\": {outputs_identical},\n"));
    json.push_str("  \"figures\": [\n");
    for (i, t) in timings.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"serial_s\": {:.4}, \"parallel_s\": {:.4}}}{}\n",
            json_escape(t.name),
            t.serial_s,
            t.parallel_s,
            if i + 1 < timings.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, &json).unwrap_or_else(|e| {
        eprintln!("cannot write {out_path}: {e}");
        std::process::exit(1);
    });

    println!(
        "all_figures {subsample}: serial {serial_total:.2}s, {} jobs {parallel_total:.2}s -> {speedup:.2}x (outputs identical: {outputs_identical})",
        parallel_runner.jobs()
    );
    println!("wrote {out_path}");
    if !outputs_identical {
        eprintln!("ERROR: parallel output diverged from serial output");
        std::process::exit(1);
    }
}
