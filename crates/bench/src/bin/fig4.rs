//! Regenerate the paper's fig4 output. Usage: cargo run --release -p seesaw-bench --bin fig4
fn main() {
    println!("{}", seesaw_bench::figs::fig4::run());
}
