//! Autoscaling harness: the default day-long elastic-fleet scenario,
//! its policy × trace cost-vs-SLO frontier sweep, and the table/JSON
//! renderings (the `autoscale` bin).
//!
//! The scenario follows the capacity-planning workflow end to end:
//! measure one replica's offline capacity, shape a day of traffic
//! around it (a sinusoidal diurnal curve and a bimodal rush-hours
//! curve, both expressed as multiples of that capacity and sampled
//! into concrete arrival traces), then replay the day under every
//! scaling policy — static provision-for-peak and provision-for-mean
//! baselines against the reactive and target-utilization
//! controllers — and tabulate billed replica-seconds against measured
//! SLO attainment. The headline comparison: an elastic policy should
//! dominate the static-peak baseline, matching or beating its
//! attainment at strictly lower cost, because provisioning for peak
//! still runs each replica at ~1.0× capacity *during* the peak —
//! exactly where the TPOT knee lives — while paying for the whole
//! fleet all night.
//!
//! Everything is deterministic and byte-identical across `--jobs`.

use crate::jsonfmt;
use crate::serving::{default_engine_of, default_specs, EngineKind, DEFAULT_SLO};
use crate::table::{f2, f3, Table};
use seesaw_autoscale::{
    frontier_sweep_with, AutoscaleConfig, AutoscaleController, ElasticFleetReport, FaultSchedule,
    FrontierPoint, FrontierSweep, ScalingPolicy,
};
use seesaw_engine::SweepRunner;
use seesaw_fleet::offline_capacity;
use seesaw_telemetry::{Instrument, MetricsRegistry};
use seesaw_workload::{ArrivalDist, RateEnvelope, Request, WorkloadGen, ARRIVAL_SEED_SALT};

/// Default trace length: one day.
pub const DEFAULT_DAY_S: f64 = 86_400.0;

/// Default trough rate as a multiple of per-replica capacity.
pub const DEFAULT_TROUGH_MULT: f64 = 0.25;

/// Default peak rate as a multiple of per-replica capacity. An
/// integer multiple pins the static-peak baseline at exactly 1.0×
/// per-replica load during peak hours.
pub const DEFAULT_PEAK_MULT: f64 = 5.0;

/// Peak-concentration exponent of the default diurnal envelope:
/// traffic bunches into a few peak hours (mean/peak = 5/16), the
/// shape real daily curves have and the regime where elasticity pays
/// — a pure sinusoid spends half the day near peak, leaving a
/// peak-provisioned static fleet nearly efficient.
pub const DEFAULT_DIURNAL_SHARPNESS: f64 = 3.0;

/// Requests in the offline capacity probe (fixed, so the capacity
/// figure — and everything sized from it — is reproducible).
pub const CAPACITY_PROBE_REQUESTS: usize = 256;

/// The default diurnal envelope shape (see
/// [`DEFAULT_DIURNAL_SHARPNESS`]); also the shape behind the `fleet`
/// bin's `--trace diurnal` pattern.
pub fn default_diurnal_envelope(trough_rps: f64, peak_rps: f64, day_s: f64) -> RateEnvelope {
    RateEnvelope::diurnal_sharp(trough_rps, peak_rps, day_s, DEFAULT_DIURNAL_SHARPNESS)
}

/// Knobs of the default scenario that the `autoscale` bin exposes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScenarioSpec {
    /// Engine backend for every replica.
    pub kind: EngineKind,
    /// Trace length, seconds.
    pub day_s: f64,
    /// Trough rate, multiples of per-replica capacity.
    pub trough_mult: f64,
    /// Peak rate, multiples of per-replica capacity.
    pub peak_mult: f64,
    /// Workload seed.
    pub seed: u64,
}

impl Default for ScenarioSpec {
    fn default() -> Self {
        ScenarioSpec {
            kind: EngineKind::Vllm,
            day_s: DEFAULT_DAY_S,
            trough_mult: DEFAULT_TROUGH_MULT,
            peak_mult: DEFAULT_PEAK_MULT,
            seed: crate::SEED,
        }
    }
}

/// The default policy roster for a scenario whose peak offered load
/// is `peak_mult ×` and mean load `mean_mult ×` per-replica capacity:
/// provision-for-peak and provision-for-mean statics, the reactive
/// controller, and the target-utilization controller.
pub fn default_policies(peak_mult: f64, mean_mult: f64) -> Vec<ScalingPolicy> {
    let n_peak = (peak_mult.ceil() as usize).max(1);
    let n_mean = (mean_mult.ceil() as usize).max(1);
    let mut policies = vec![ScalingPolicy::Static { n: n_peak }];
    if n_mean != n_peak {
        policies.push(ScalingPolicy::Static { n: n_mean });
    }
    policies.push(ScalingPolicy::reactive_default());
    policies.push(ScalingPolicy::target_utilization_default());
    policies
}

/// Attach ShareGPT-shaped lengths to absolute arrival `times` — the
/// one place the times → requests convention lives, shared by the
/// envelope-sampled and file-replayed paths.
fn requests_for_times(times: Vec<f64>, seed: u64) -> Vec<Request> {
    let base = WorkloadGen::sharegpt(seed).generate(times.len());
    ArrivalDist::Trace(times)
        .attach(&base, 0)
        .expect("trace arrivals are valid")
}

/// Sample one named envelope into a ShareGPT-shaped request trace.
fn sample_trace(
    name: &str,
    envelope: &RateEnvelope,
    day_s: f64,
    seed: u64,
) -> (String, Vec<Request>) {
    let times = envelope
        .sample_trace(day_s, seed ^ ARRIVAL_SEED_SALT)
        .expect("valid envelope");
    (name.to_string(), requests_for_times(times, seed))
}

/// Peak and mean offered load of a replayed trace, as multiples of
/// `capacity_rps`: the mean over the trace's span and the peak over
/// `window_s` windows — so a trace file sizes the static baselines
/// from *its* shape, not the default envelope's.
fn trace_load_multipliers(reqs: &[Request], window_s: f64, capacity_rps: f64) -> (f64, f64) {
    let span = reqs.last().map_or(0.0, |r| r.arrival_s).max(window_s);
    let n_windows = (span / window_s).ceil() as usize;
    let mut counts = vec![0usize; n_windows.max(1)];
    for r in reqs {
        let w = ((r.arrival_s / window_s) as usize).min(counts.len() - 1);
        counts[w] += 1;
    }
    let peak_rps = counts.iter().copied().max().unwrap_or(0) as f64 / window_s;
    let mean_rps = reqs.len() as f64 / span;
    (peak_rps / capacity_rps, mean_rps / capacity_rps)
}

/// Build the default traces (diurnal + rush-hours, rates in multiples
/// of `capacity_rps`) for a scenario. Exposed so tests can replay
/// miniature days through the same shapes.
pub fn default_traces(spec: &ScenarioSpec, capacity_rps: f64) -> Vec<(String, Vec<Request>)> {
    let trough = spec.trough_mult * capacity_rps;
    let peak = spec.peak_mult * capacity_rps;
    vec![
        sample_trace(
            "diurnal",
            &default_diurnal_envelope(trough, peak, spec.day_s),
            spec.day_s,
            spec.seed,
        ),
        sample_trace(
            "rush-hours",
            &RateEnvelope::rush_hours(trough, peak, spec.day_s),
            spec.day_s,
            spec.seed.wrapping_add(1),
        ),
    ]
}

/// Run the default frontier: measure capacity, shape the day, sweep
/// the policy × trace grid. `config.capacity_rps` is overwritten with
/// the measured value; `trace_file`, when given, *replaces* the
/// generated traces with a replayed one (absolute arrival times, see
/// [`seesaw_workload::load_trace_file`]). Errs on an
/// unreadable/malformed trace file.
pub fn default_frontier_with(
    runner: &SweepRunner,
    spec: &ScenarioSpec,
    mut config: AutoscaleConfig,
    trace_file: Option<&str>,
) -> Result<FrontierSweep, String> {
    let (cluster, model) = default_specs();
    let build = |_: usize| default_engine_of(spec.kind, &cluster, &model);
    let probe = WorkloadGen::sharegpt(spec.seed).generate(CAPACITY_PROBE_REQUESTS);
    let (capacity_rps, label) = offline_capacity(&build, &probe);
    config.capacity_rps = capacity_rps;
    let traces: Vec<(String, Vec<Request>)> = match trace_file {
        Some(path) => {
            let times = seesaw_workload::load_trace_file(path)?;
            vec![(path.to_string(), requests_for_times(times, spec.seed))]
        }
        None => default_traces(spec, capacity_rps),
    };
    // Size the static baselines from the load actually replayed: the
    // envelope multipliers for generated days, the measured
    // windowed peak/mean for a trace file (whose load has no
    // relation to the --trough/--peak knobs).
    let (peak_mult, mean_mult) = if trace_file.is_some() {
        trace_load_multipliers(&traces[0].1, config.window_s, capacity_rps)
    } else {
        (
            spec.peak_mult,
            default_diurnal_envelope(spec.trough_mult, spec.peak_mult, spec.day_s).mean_rps(),
        )
    };
    let policies = default_policies(peak_mult, mean_mult);
    Ok(frontier_sweep_with(
        runner,
        &build,
        config,
        &policies,
        &traces,
        (capacity_rps, &label),
    ))
}

/// One frontier cell run with the telemetry recorder on: the
/// dedicated observability cell behind the `autoscale` bin's
/// `--trace-out` flag.
#[derive(Debug)]
pub struct ObservedFrontierCell {
    /// Trace name (envelope name or replayed file path).
    pub trace: String,
    /// Scaling policy of the traced run.
    pub policy: ScalingPolicy,
    /// The (telemetry-identical) elastic-fleet report.
    pub report: ElasticFleetReport,
    /// The run's Perfetto/Chrome trace-event JSON.
    pub trace_json: String,
    /// The run's metric snapshot (for the `--json` telemetry block).
    pub metrics: MetricsRegistry,
}

/// Run one dedicated frontier cell — the reactive controller on the
/// first trace (the diurnal day, or the replayed `trace_file`) — with
/// the telemetry recorder on, and render its Perfetto trace. Recorded
/// bytes are sim-time only, so the trace is byte-identical for every
/// `--jobs` value. Errs on an unreadable/malformed trace file.
pub fn observed_frontier_cell_with(
    runner: &SweepRunner,
    spec: &ScenarioSpec,
    mut config: AutoscaleConfig,
    trace_file: Option<&str>,
) -> Result<ObservedFrontierCell, String> {
    let (cluster, model) = default_specs();
    let build = |_: usize| default_engine_of(spec.kind, &cluster, &model);
    let probe = WorkloadGen::sharegpt(spec.seed).generate(CAPACITY_PROBE_REQUESTS);
    let (capacity_rps, _) = offline_capacity(&build, &probe);
    config.capacity_rps = capacity_rps;
    let (trace, requests) = match trace_file {
        Some(path) => {
            let times = seesaw_workload::load_trace_file(path)?;
            (path.to_string(), requests_for_times(times, spec.seed))
        }
        None => {
            let mut traces = default_traces(spec, capacity_rps);
            traces.swap_remove(0)
        }
    };
    let policy = ScalingPolicy::reactive_default();
    let mut instr = Instrument::tracing();
    let report = AutoscaleController::new(config, policy).run_faulted_instrumented_with(
        runner,
        &build,
        &requests,
        &FaultSchedule::none(),
        &mut instr,
    );
    instr.snapshot_drops();
    let trace_json = seesaw_telemetry::perfetto::render(&instr.recorder, "autoscale");
    Ok(ObservedFrontierCell { trace, policy, report, trace_json, metrics: instr.metrics })
}

/// Render the frontier as the `autoscale` bin's table. Cost is billed
/// replica-seconds; `cost vs peak` normalizes it to the same trace's
/// static provision-for-peak row (< 1.0 means cheaper).
pub fn render_frontier(sweep: &FrontierSweep) -> String {
    let cfg = &sweep.config;
    let mut out = format!(
        "\n=== autoscale: policy x trace cost-vs-SLO frontier ({} replicas, sharegpt lengths) ===\n\
         per-replica capacity (offline, {CAPACITY_PROBE_REQUESTS}-request probe) = {} rps; \
         SLO: TTFT <= {}s, TPOT <= {}s\n\
         window {}s, warm-up {}s, replicas {}..{}, {} routing; cost = billed replica-seconds\n",
        sweep.label,
        f3(sweep.capacity_rps),
        cfg.slo.ttft_s,
        cfg.slo.tpot_s,
        cfg.window_s,
        cfg.warmup_s,
        cfg.min_replicas,
        cfg.max_replicas,
        cfg.router,
    );
    let mut t = Table::new(&[
        "trace",
        "policy",
        "requests",
        "replica-s",
        "cost vs peak",
        "mean N",
        "peak N",
        "events",
        "ttft p99",
        "tpot p99",
        "SLO att",
        "goodput",
    ]);
    for p in &sweep.points {
        // The roster's first policy is the baseline (static
        // provision-for-peak in the default scenario).
        let peak_cost = sweep
            .points
            .iter()
            .find(|q| q.trace == p.trace && q.policy.to_string() == sweep.policies[0])
            .map(|q| q.replica_seconds)
            .filter(|&c| c > 0.0);
        let lat = p.report.fleet.latency;
        t.row(&[
            p.trace.clone(),
            p.policy.to_string(),
            p.n_requests.to_string(),
            format!("{:.0}", p.replica_seconds),
            peak_cost.map_or("n/a".into(), |c| format!("{:.2}x", p.replica_seconds / c)),
            f2(p.mean_replicas),
            p.peak_replicas.to_string(),
            p.scale_events.to_string(),
            lat.map_or("n/a".into(), |l| f2(l.ttft.p99)),
            lat.map_or("n/a".into(), |l| format!("{:.4}", l.tpot.p99)),
            format!("{:.1}%", 100.0 * p.attainment),
            f3(p.goodput_rps),
        ]);
    }
    out.push_str(&t.render());
    out
}

/// Render one cell's per-window timeline: the controller's signal and
/// replica-count trajectory against the measured windowed attainment
/// — the "did the fleet follow the day?" picture.
pub fn render_timeline(point: &FrontierPoint) -> String {
    let r: &ElasticFleetReport = &point.report;
    let mut out = format!(
        "\n=== autoscale: {} on {} — per-window trajectory ===\n",
        point.policy, point.trace
    );
    let mut t = Table::new(&[
        "window",
        "offered rps",
        "util est",
        "queue",
        "ready",
        "live",
        "arrivals",
        "SLO att (measured)",
        "ttft p90",
    ]);
    for (s, m) in r.windows.iter().zip(&r.windowed) {
        t.row(&[
            format!("{:>6.0}s", s.t0),
            f3(s.offered_rps),
            f2(s.utilization_est),
            format!("{:.1}", s.queue_depth),
            s.ready.to_string(),
            s.provisioned.to_string(),
            s.arrivals.to_string(),
            m.attainment
                .map_or("-".into(), |a| format!("{:.1}%", 100.0 * a)),
            m.ttft.map_or("-".into(), |l| f2(l.p90)),
        ]);
    }
    out.push_str(&t.render());
    out
}

/// The scenario knobs as one JSON object — the seed-and-shape echo
/// shared by the `autoscale` and `chaos` documents (envelope knobs
/// and workload seed; chaos adds its fault plan per point).
pub fn scenario_json(spec: &ScenarioSpec) -> String {
    format!(
        "{{\"engine\": \"{}\", \"day_s\": {}, \"trough_mult\": {}, \"peak_mult\": {}, \
         \"diurnal_sharpness\": {}, \"seed\": {}}}",
        jsonfmt::esc(&spec.kind.to_string()),
        jsonfmt::num(spec.day_s),
        jsonfmt::num(spec.trough_mult),
        jsonfmt::num(spec.peak_mult),
        jsonfmt::num(DEFAULT_DIURNAL_SHARPNESS),
        spec.seed,
    )
}

/// The frontier as one machine-readable JSON document (the
/// `autoscale` bin's `--json` output): headline numbers per cell plus
/// the per-window series for plotting fleet-size trajectories. The
/// header echoes the full scenario (engine, day shape, workload seed)
/// alongside the controller config, so any cell is reproducible from
/// the document alone.
pub fn to_json(sweep: &FrontierSweep, spec: &ScenarioSpec) -> String {
    to_json_with_telemetry(sweep, spec, None)
}

/// [`to_json`] with an optional `telemetry` metrics block (present
/// only when a telemetry-enabled run produced one — the plain
/// document stays byte-identical to pre-telemetry output).
pub fn to_json_with_telemetry(
    sweep: &FrontierSweep,
    spec: &ScenarioSpec,
    telemetry: Option<&MetricsRegistry>,
) -> String {
    let cfg = &sweep.config;
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"label\": \"{}\",\n", jsonfmt::esc(&sweep.label)));
    out.push_str(&format!(
        "  \"capacity_rps\": {},\n",
        jsonfmt::num(sweep.capacity_rps)
    ));
    out.push_str(&format!("  \"scenario\": {},\n", scenario_json(spec)));
    out.push_str(&format!(
        "  \"config\": {{\"window_s\": {}, \"warmup_s\": {}, \"min_replicas\": {}, \
         \"max_replicas\": {}, \"router\": \"{}\", \"slo\": {}}},\n",
        jsonfmt::num(cfg.window_s),
        jsonfmt::num(cfg.warmup_s),
        cfg.min_replicas,
        cfg.max_replicas,
        jsonfmt::esc(&cfg.router.to_string()),
        jsonfmt::slo(cfg.slo),
    ));
    out.push_str("  \"points\": [\n");
    for (i, p) in sweep.points.iter().enumerate() {
        // Every point repeats the router policy and workload seed so
        // a single extracted point stays reproducible without the
        // document header.
        out.push_str(&format!(
            "    {{\"trace\": \"{}\", \"policy\": \"{}\", \"router\": \"{}\", \"seed\": {}, \
             \"n_requests\": {}, \
             \"replica_seconds\": {}, \"mean_replicas\": {}, \"peak_replicas\": {}, \
             \"scale_events\": {}, \"attainment\": {}, \"goodput_rps\": {}, \
             \"latency\": {},\n",
            jsonfmt::esc(&p.trace),
            jsonfmt::esc(&p.policy.to_string()),
            jsonfmt::esc(&cfg.router.to_string()),
            spec.seed,
            p.n_requests,
            jsonfmt::num(p.replica_seconds),
            jsonfmt::num(p.mean_replicas),
            p.peak_replicas,
            p.scale_events,
            jsonfmt::num(p.attainment),
            jsonfmt::num(p.goodput_rps),
            jsonfmt::latency_stats(p.report.fleet.latency.as_ref()),
        ));
        out.push_str("     \"windows\": [");
        for (j, (s, m)) in p.report.windows.iter().zip(&p.report.windowed).enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!(
                "{{\"t0\": {}, \"offered_rps\": {}, \"utilization_est\": {}, \
                 \"queue_depth\": {}, \"ready\": {}, \"provisioned\": {}, \
                 \"attainment\": {}}}",
                jsonfmt::num(s.t0),
                jsonfmt::num(s.offered_rps),
                jsonfmt::num(s.utilization_est),
                jsonfmt::num(s.queue_depth),
                s.ready,
                s.provisioned,
                m.attainment.map_or("null".into(), jsonfmt::num),
            ));
        }
        out.push_str(&format!(
            "]}}{}\n",
            if i + 1 < sweep.points.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]");
    if let Some(m) = telemetry {
        out.push_str(&format!(",\n  \"telemetry\": {}", m.render_json()));
    }
    out.push_str("\n}\n");
    out
}

/// A miniature frontier (small day, small windows) for tests and the
/// sims/sec benchmark: same code path as the default scenario at a
/// fraction of the volume.
pub fn mini_frontier_with(
    runner: &SweepRunner,
    day_s: f64,
    policies: &[ScalingPolicy],
    seed: u64,
) -> FrontierSweep {
    let spec = ScenarioSpec { day_s, seed, ..ScenarioSpec::default() };
    let (cluster, model) = default_specs();
    let build = |_: usize| default_engine_of(spec.kind, &cluster, &model);
    let probe = WorkloadGen::sharegpt(seed).generate(64);
    let (capacity_rps, label) = offline_capacity(&build, &probe);
    let config = AutoscaleConfig {
        window_s: (day_s / 12.0).max(1.0),
        warmup_s: (day_s / 48.0).max(0.5),
        min_replicas: 1,
        max_replicas: 8,
        slo: DEFAULT_SLO,
        capacity_rps,
        ..AutoscaleConfig::default()
    };
    let traces = default_traces(&spec, capacity_rps);
    frontier_sweep_with(runner, &build, config, policies, &traces, (capacity_rps, &label))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_policy_roster_covers_baselines_and_controllers() {
        let policies = default_policies(5.0, 2.625);
        assert_eq!(policies.len(), 4);
        assert_eq!(policies[0], ScalingPolicy::Static { n: 5 });
        assert_eq!(policies[1], ScalingPolicy::Static { n: 3 });
        assert!(matches!(policies[2], ScalingPolicy::ReactiveThreshold { .. }));
        assert!(matches!(policies[3], ScalingPolicy::TargetUtilization { .. }));
        // Degenerate scenario where mean rounds up to peak: no
        // duplicate static row.
        assert_eq!(default_policies(2.0, 1.5).len(), 3);
    }

    #[test]
    fn mini_frontier_renders_and_is_jobs_invariant() {
        let policies = [
            ScalingPolicy::Static { n: 2 },
            ScalingPolicy::reactive_default(),
        ];
        let serial = mini_frontier_with(&SweepRunner::serial(), 120.0, &policies, 42);
        let parallel = mini_frontier_with(&SweepRunner::new(4), 120.0, &policies, 42);
        let spec = ScenarioSpec { day_s: 120.0, seed: 42, ..ScenarioSpec::default() };
        assert_eq!(serial, parallel);
        assert_eq!(render_frontier(&serial), render_frontier(&parallel));
        assert_eq!(to_json(&serial, &spec), to_json(&parallel, &spec));
        assert_eq!(serial.points.len(), 4, "2 traces x 2 policies");
        let rendered = render_frontier(&serial);
        assert!(rendered.contains("cost vs peak"));
        assert!(rendered.contains("diurnal"));
        assert!(rendered.contains("rush-hours"));
        let json = to_json(&serial, &spec);
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(json.contains("\"windows\""));
        assert!(!json.contains("NaN"));
        // The scenario echo makes any cell reproducible from the
        // document alone.
        assert!(json.contains("\"scenario\""));
        assert!(json.contains("\"seed\": 42"));
        assert!(json.contains("\"day_s\": 120"));
        // ... and every *point* repeats the router and seed, so a
        // single extracted point is reproducible on its own.
        assert_eq!(json.matches("\"router\": \"").count(), 1 + serial.points.len());
        assert_eq!(json.matches("\"seed\": 42").count(), 1 + serial.points.len());
        // The timeline renders for any cell.
        let tl = render_timeline(&serial.points[1]);
        assert!(tl.contains("per-window trajectory"));
        assert!(tl.contains("SLO att (measured)"));
    }
}
