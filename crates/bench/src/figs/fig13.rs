//! Figure 13: throughput sensitivity to the output:input (`D:P`)
//! ratio — LLaMA2-70B on eight A10s, fixed 3000-token inputs, swept
//! output lengths; static TP4PP2 / TP2PP4 / PP8 vs Seesaw (P8→T4P2).

use crate::harness::seesaw_with;
use crate::table::{f3, Table};
use seesaw_engine::seesaw::SeesawSpec;
use seesaw_engine::vllm::VllmEngine;
use seesaw_engine::SchedulingPolicy;
use seesaw_hw::ClusterSpec;
use seesaw_model::presets;
use seesaw_parallel::ParallelConfig;
use seesaw_workload::WorkloadGen;

/// Fixed input length (§6.5).
pub const INPUT_LEN: usize = 3000;

/// The swept `D:P` ratios.
pub fn ratios() -> Vec<f64> {
    vec![0.00034, 0.02, 0.05, 0.1, 0.15, 0.2, 0.25, 0.3]
}

/// Throughput of each system at one ratio, `(tp4pp2, tp2pp4, pp8,
/// seesaw)` in requests/sec.
pub fn point(ratio: f64, n_requests: usize) -> (f64, f64, f64, f64) {
    let cluster = ClusterSpec::a10x8();
    let model = presets::llama2_70b();
    let out_len = ((INPUT_LEN as f64 * ratio).round() as usize).max(1);
    let reqs = WorkloadGen::constant(INPUT_LEN, out_len).generate(n_requests);
    let run = |cfg: ParallelConfig| {
        VllmEngine::new(cluster.clone(), model.clone(), cfg, SchedulingPolicy::PrefillPrioritized)
            .expect("feasible")
            .run(&reqs)
            .throughput_rps()
    };
    let t4p2 = run(ParallelConfig::new(1, 4, 2));
    let t2p4 = run(ParallelConfig::new(1, 2, 4));
    let pp8 = run(ParallelConfig::pp(8));
    let ss = seesaw_with(
        &cluster,
        &model,
        SeesawSpec::new(ParallelConfig::pp(8), ParallelConfig::new(1, 4, 2)),
        &reqs,
    )
    .throughput_rps();
    (t4p2, t2p4, pp8, ss)
}

/// Regenerate Figure 13 with `n_requests` per point.
pub fn run(n_requests: usize) -> String {
    run_with(&seesaw_engine::SweepRunner::from_env(), n_requests)
}

/// [`run`] on an explicit runner: the swept ratio points evaluate
/// concurrently.
pub fn run_with(runner: &seesaw_engine::SweepRunner, n_requests: usize) -> String {
    let mut out = super::banner(
        "Figure 13",
        "throughput vs D:P ratio, 70B on 8xA10 (normalized)",
    );
    let ratios = ratios();
    let points = runner.map(&ratios, |&r| point(r, n_requests));
    let mut rows = Vec::new();
    let mut peak = 0.0_f64;
    for (&r, &p) in ratios.iter().zip(&points) {
        peak = peak.max(p.0).max(p.1).max(p.2).max(p.3);
        rows.push((r, p));
    }
    let mut t = Table::new(&["D:P", "tp4pp2", "tp2pp4", "pp8", "pp8->tp4pp2 (seesaw)"]);
    for (r, (a, b, c, s)) in rows {
        t.row(&[
            format!("{r:.3}"),
            f3(a / peak),
            f3(b / peak),
            f3(c / peak),
            f3(s / peak),
        ]);
    }
    out.push_str(&t.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The figure's crossover claims: PP8 wins at tiny D:P, loses
    /// badly at large D:P; Seesaw is at or near the top throughout.
    #[test]
    fn crossovers_match_paper_shape() {
        let lo = point(0.00034, 24); // prefill-only
        let hi = point(0.3, 24); // decode-heavy
        let (t4p2_lo, _, pp8_lo, ss_lo) = lo;
        let (t4p2_hi, _, pp8_hi, ss_hi) = hi;

        assert!(pp8_lo > t4p2_lo, "prefill-only: PP8 must beat TP4PP2");
        assert!(t4p2_hi > pp8_hi, "decode-heavy: TP4PP2 must beat PP8");
        // Seesaw tracks the winner at both extremes (within 10%).
        assert!(ss_lo > 0.9 * pp8_lo, "seesaw {ss_lo} vs pp8 {pp8_lo}");
        assert!(ss_hi > 0.9 * t4p2_hi, "seesaw {ss_hi} vs t4p2 {t4p2_hi}");
    }
}
