//! Figure 4: why spatial prefill/decode disaggregation has a
//! restricted search space — LLaMA2-70B on eight 40 GiB GPUs admits
//! only the 4+4 split, which is throughput-mismatched.

use crate::table::{f3, Table};
use seesaw_engine::disagg::{whole_cluster_decode_rps, DisaggEngine};
use seesaw_hw::ClusterSpec;
use seesaw_model::presets;

/// Workload averages used in the analysis (arxiv-like: long prompts).
const AVG_IN: usize = 3000;
/// See [`AVG_IN`].
const AVG_OUT: usize = 250;

/// Regenerate Figure 4.
pub fn run() -> String {
    let cluster = ClusterSpec::a100x8_pcie();
    let model = presets::llama2_70b();
    let eng = DisaggEngine::new(cluster.clone(), model.clone());
    let splits = eng.evaluate_all_splits(AVG_IN, AVG_OUT);
    let whole = whole_cluster_decode_rps(&cluster, &model, AVG_IN, AVG_OUT)
        .expect("70B fits 8x40GiB");

    let mut out = super::banner(
        "Figure 4",
        "disaggregation search space, 70B on 8x 40GiB GPUs",
    );
    out.push_str(&format!(
        "feasible splits: {} (paper: only 4 prefill + 4 decode)\n\n",
        splits.len()
    ));
    let mut t = Table::new(&["bar", "throughput (reqs/sec)", "vs Decode(8 GPUs)"]);
    t.row(&[
        "Decode (8 GPUs)".to_string(),
        f3(whole),
        f3(1.0),
    ]);
    if let Some(s) = splits.first() {
        t.row(&[
            format!("Decode ({} GPUs, {})", s.decode_gpus, s.decode_config),
            f3(s.decode_rps),
            f3(s.decode_rps / whole),
        ]);
        t.row(&[
            format!("Prefill ({} GPUs, {})", s.prefill_gpus, s.prefill_config),
            f3(s.prefill_rps),
            f3(s.prefill_rps / whole),
        ]);
        out.push_str(&t.render());
        out.push_str(&format!(
            "\nthroughput mismatch (prefill/decode): {:.2}x; combined pipeline: {:.3} reqs/sec\n",
            s.mismatch(),
            s.combined_rps()
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn reports_single_split_and_mismatch() {
        let s = super::run();
        assert!(s.contains("feasible splits: 1"));
        assert!(s.contains("Decode (8 GPUs)"));
        assert!(s.contains("Prefill (4 GPUs"));
        assert!(s.contains("mismatch"));
    }
}
