//! Table 1: GPU hardware specifications.

use crate::table::Table;
use seesaw_hw::GpuSpec;

/// Regenerate Table 1.
pub fn run() -> String {
    let mut t = Table::new(&["GPU Model", "Memory Size", "Memory Bandwidth", "FLOPS", "NVLink"]);
    for g in [
        GpuSpec::a10(),
        GpuSpec::l4(),
        GpuSpec::a100_40g_sxm(),
        GpuSpec::a100_40g_pcie(),
    ] {
        t.row(&[
            g.name.clone(),
            format!("{}", g.mem()),
            format!("{:.0} GB/s", g.hbm_bw / 1e9),
            format!("{:.0}T", g.peak_flops / 1e12),
            if g.has_nvlink { "yes" } else { "no" }.to_string(),
        ]);
    }
    format!("{}{}", super::banner("Table 1", "GPU hardware specification"), t.render())
}

#[cfg(test)]
mod tests {
    #[test]
    fn contains_all_gpus() {
        let s = super::run();
        for name in ["A10", "L4", "A100-40G-SXM", "A100-40G-PCIE"] {
            assert!(s.contains(name), "missing {name}");
        }
        assert!(s.contains("600 GB/s"));
        assert!(s.contains("1555 GB/s"));
    }
}
