//! Figure 10: end-to-end throughput on PCIe systems (A10 and L4
//! nodes), three models × two datasets, tuned-vLLM baseline vs Seesaw.
//!
//! The paper's protocol: sweep every single-parallelism configuration
//! for vLLM (chunk size tuned), report the best; run Seesaw with its
//! chosen `(c_p, c_d)`; plot throughput normalized to the vLLM bar.

use crate::harness::{best_vllm_with, seesaw_auto_with};
use crate::table::{f2, f3, Table};
use crate::{ARXIV_REQUESTS, SEED, SHAREGPT_REQUESTS};
use seesaw_engine::SweepRunner;
use seesaw_hw::ClusterSpec;
use seesaw_model::{presets, ModelConfig};
use seesaw_workload::{metrics::geo_mean, Request, WorkloadGen};

/// The per-GPU-type experiment grid: (model, #GPUs).
fn grid() -> Vec<(ModelConfig, usize)> {
    vec![
        (presets::llama3_15b(), 4),
        (presets::codellama_34b(), 8),
        (presets::llama2_70b(), 8),
    ]
}

fn dataset(name: &str, n_div: usize) -> (String, Vec<Request>) {
    match name {
        "arxiv" => (
            "arxiv".into(),
            WorkloadGen::arxiv_summarization(SEED).generate(ARXIV_REQUESTS / n_div),
        ),
        _ => (
            "sharegpt".into(),
            WorkloadGen::sharegpt(SEED).generate(SHAREGPT_REQUESTS / n_div),
        ),
    }
}

/// Regenerate one panel of Figure 10 for `gpu` ∈ {"a10", "l4"}.
/// `subsample` divides the request counts (1 = the paper's counts).
pub fn run(gpu: &str, subsample: usize) -> String {
    run_with(&SweepRunner::from_env(), gpu, subsample)
}

/// [`run`] on an explicit runner: the six (model × dataset) grid
/// cells evaluate concurrently; rows render in grid order.
pub fn run_with(runner: &SweepRunner, gpu: &str, subsample: usize) -> String {
    let mut out = super::banner(
        "Figure 10",
        &format!("end-to-end throughput on {} (PCIe)", gpu.to_uppercase()),
    );
    let mut t = Table::new(&[
        "model",
        "dataset",
        "vllm(best)",
        "vllm rps",
        "seesaw",
        "seesaw rps",
        "speedup",
    ]);
    let mut cells: Vec<(ModelConfig, ClusterSpec, &str)> = Vec::new();
    for (model, n) in grid() {
        let cluster = match (gpu, n) {
            ("a10", 4) => ClusterSpec::a10x4(),
            ("a10", _) => ClusterSpec::a10x8(),
            (_, 4) => ClusterSpec::l4x4(),
            _ => ClusterSpec::l4x8(),
        };
        for ds in ["arxiv", "sharegpt"] {
            cells.push((model.clone(), cluster.clone(), ds));
        }
    }
    let results = runner.map(&cells, |(model, cluster, ds)| {
        let (ds_name, reqs) = dataset(ds, subsample.max(1));
        let base = best_vllm_with(runner, cluster, model, &reqs);
        let ours = seesaw_auto_with(runner, cluster, model, &reqs);
        (ds_name, base, ours)
    });
    let mut speedups = Vec::new();
    for ((model, _, _), (ds_name, base, ours)) in cells.iter().zip(results) {
        let speedup = ours.throughput_rps() / base.throughput_rps();
        speedups.push(speedup);
        t.row(&[
            model.name.clone(),
            ds_name,
            base.label.clone(),
            f3(base.throughput_rps()),
            ours.label.clone(),
            f3(ours.throughput_rps()),
            f2(speedup),
        ]);
    }
    out.push_str(&t.render());
    // A degenerate cell (zero/non-finite speedup) downgrades the
    // geo-mean to "n/a" instead of aborting the whole figure sweep.
    let gm = match geo_mean(&speedups) {
        Ok(g) => format!("{g:.2}x"),
        Err(e) => format!("n/a ({e})"),
    };
    out.push_str(&format!(
        "\ngeo-mean speedup on {}: {gm}   max: {:.2}x\n",
        gpu.to_uppercase(),
        speedups.iter().cloned().fold(0.0_f64, f64::max),
    ));
    out
}

#[cfg(test)]
mod tests {
    /// Subsampled smoke run of the 15B row only (full panels run in
    /// the binary); asserts Seesaw is competitive.
    #[test]
    fn fifteen_b_row_shows_speedup() {
        use super::*;
        use crate::harness::{best_vllm, seesaw_auto};
        let cluster = ClusterSpec::a10x4();
        let model = presets::llama3_15b();
        let reqs = WorkloadGen::arxiv_summarization(SEED).generate(60);
        let base = best_vllm(&cluster, &model, &reqs);
        let ours = seesaw_auto(&cluster, &model, &reqs);
        assert!(
            ours.throughput_rps() > base.throughput_rps(),
            "seesaw {} vs vllm {} ({})",
            ours.throughput_rps(),
            base.throughput_rps(),
            base.label
        );
    }
}
