//! Figure 12: speedup breakdown — CodeLLaMA-34B on the
//! arxiv-summarization workload, four A10 GPUs. Per-phase wall time of
//! TP4, PP4, Seesaw (P4→T4), and the best static config with chunked
//! prefill (TP2PP2).

use crate::harness::seesaw_with;
use crate::table::{f2, Table};
use crate::SEED;
use seesaw_engine::seesaw::SeesawSpec;
use seesaw_engine::vllm::VllmEngine;
use seesaw_engine::{EngineReport, SchedulingPolicy};
use seesaw_hw::ClusterSpec;
use seesaw_model::presets;
use seesaw_parallel::ParallelConfig;
use seesaw_workload::{Request, WorkloadGen};

fn run_vllm(
    cluster: &ClusterSpec,
    cfg: ParallelConfig,
    policy: SchedulingPolicy,
    reqs: &[Request],
) -> EngineReport {
    VllmEngine::new(cluster.clone(), presets::codellama_34b(), cfg, policy)
        .expect("feasible")
        .run(reqs)
}

/// Regenerate Figure 12. `n_requests` scales the workload (the paper
/// uses the full 500-request arxiv sample).
pub fn run(n_requests: usize) -> String {
    run_with(&seesaw_engine::SweepRunner::from_env(), n_requests)
}

/// [`run`] on an explicit runner: the four system rows evaluate
/// concurrently. Each row pairs its label with its own job closure,
/// so a label can never silently run another system's configuration.
pub fn run_with(runner: &seesaw_engine::SweepRunner, n_requests: usize) -> String {
    let cluster = ClusterSpec::a10x4();
    let reqs = WorkloadGen::arxiv_summarization(SEED).generate(n_requests);
    type Job<'a> = (&'static str, Box<dyn Fn() -> EngineReport + Send + Sync + 'a>);
    let systems: Vec<Job> = vec![
        (
            "tp4",
            Box::new(|| {
                run_vllm(
                    &cluster,
                    ParallelConfig::tp(4),
                    SchedulingPolicy::PrefillPrioritized,
                    &reqs,
                )
            }),
        ),
        (
            "pp4",
            Box::new(|| {
                run_vllm(
                    &cluster,
                    ParallelConfig::pp(4),
                    SchedulingPolicy::PrefillPrioritized,
                    &reqs,
                )
            }),
        ),
        (
            "p4->t4 (seesaw)",
            Box::new(|| {
                seesaw_with(
                    &cluster,
                    &presets::codellama_34b(),
                    SeesawSpec::new(ParallelConfig::pp(4), ParallelConfig::tp(4)),
                    &reqs,
                )
            }),
        ),
        (
            "tp2pp2+chunked",
            Box::new(|| {
                run_vllm(
                    &cluster,
                    ParallelConfig::new(1, 2, 2),
                    SchedulingPolicy::ChunkedPrefill { chunk_tokens: 2048 },
                    &reqs,
                )
            }),
        ),
    ];
    let reports = runner.map(&systems, |(_, job)| job());
    let rows: Vec<(String, EngineReport)> = systems
        .iter()
        .map(|(name, _)| name.to_string())
        .zip(reports)
        .collect();
    let mut out = super::banner(
        "Figure 12",
        "speedup breakdown, 34B arxiv on 4xA10 (end-to-end seconds)",
    );
    let mut t = Table::new(&["system", "prefill", "mix", "decode", "other", "total"]);
    for (name, r) in &rows {
        t.row(&[
            name.clone(),
            f2(r.prefill_wall_s),
            f2(r.mixed_wall_s),
            f2(r.decode_wall_s),
            f2(r.reshard_wall_s + r.other_wall_s()),
            f2(r.stats.duration_s),
        ]);
    }
    out.push_str(&t.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The figure's claims: TP4 decodes fast but prefills slowly; PP4
    /// the reverse; Seesaw approaches the best of both.
    #[test]
    fn seesaw_merges_the_best_phases() {
        let cluster = ClusterSpec::a10x4();
        let reqs = WorkloadGen::arxiv_summarization(SEED).generate(80);
        let tp4 = run_vllm(
            &cluster,
            ParallelConfig::tp(4),
            SchedulingPolicy::PrefillPrioritized,
            &reqs,
        );
        let pp4 = run_vllm(
            &cluster,
            ParallelConfig::pp(4),
            SchedulingPolicy::PrefillPrioritized,
            &reqs,
        );
        let ss = seesaw_with(
            &cluster,
            &presets::codellama_34b(),
            SeesawSpec::new(ParallelConfig::pp(4), ParallelConfig::tp(4)),
            &reqs,
        );
        // Stage preferences.
        assert!(pp4.prefill_wall_s < tp4.prefill_wall_s, "PP4 prefills faster");
        assert!(tp4.decode_wall_s < pp4.decode_wall_s, "TP4 decodes faster");
        // Seesaw ends faster than both static choices.
        assert!(ss.stats.duration_s < tp4.stats.duration_s);
        assert!(ss.stats.duration_s < pp4.stats.duration_s);
    }

    #[test]
    fn renders_four_rows() {
        let s = run(40);
        for name in ["tp4", "pp4", "p4->t4 (seesaw)", "tp2pp2+chunked"] {
            assert!(s.contains(name), "missing {name}");
        }
    }
}
