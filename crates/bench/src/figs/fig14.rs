//! Figure 14: throughput sensitivity to interconnect bandwidth —
//! CodeLLaMA-34B, arxiv workload, eight A10s, collective bandwidth
//! scaled from 0.1× to 50× of PCIe.

use crate::harness::seesaw_with;
use crate::table::{f3, Table};
use crate::SEED;
use seesaw_engine::seesaw::SeesawSpec;
use seesaw_engine::vllm::VllmEngine;
use seesaw_engine::SchedulingPolicy;
use seesaw_hw::ClusterSpec;
use seesaw_model::presets;
use seesaw_parallel::ParallelConfig;
use seesaw_workload::{Request, WorkloadGen};

/// Bandwidth scales swept (× PCIe all-reduce bandwidth).
pub fn scales() -> Vec<f64> {
    vec![0.1, 0.2, 0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0]
}

/// The static configurations in the paper's legend.
pub fn static_configs() -> Vec<ParallelConfig> {
    vec![
        ParallelConfig::new(2, 1, 4),
        ParallelConfig::new(2, 2, 2),
        ParallelConfig::new(2, 4, 1),
        ParallelConfig::new(1, 1, 8),
        ParallelConfig::new(1, 2, 4),
        ParallelConfig::new(1, 4, 2),
        ParallelConfig::new(1, 8, 1),
    ]
}

/// Throughputs at one bandwidth scale: statics in legend order, then
/// Seesaw (`D2P4 -> D2T4`, the paper's configuration).
pub fn point(scale: f64, reqs: &[Request]) -> Vec<f64> {
    point_with(&seesaw_engine::SweepRunner::from_env(), scale, reqs)
}

/// [`point`] on an explicit runner (governs the adaptive-seesaw
/// probe's parallelism).
pub fn point_with(runner: &seesaw_engine::SweepRunner, scale: f64, reqs: &[Request]) -> Vec<f64> {
    let cluster = ClusterSpec::a10x8().with_allreduce_scale(scale);
    let model = presets::codellama_34b();
    let mut out = Vec::new();
    for cfg in static_configs() {
        let rps = VllmEngine::new(
            cluster.clone(),
            model.clone(),
            cfg,
            SchedulingPolicy::PrefillPrioritized,
        )
        .map(|e| e.run(reqs).throughput_rps())
        .unwrap_or(0.0);
        out.push(rps);
    }
    let ss = seesaw_with(
        &cluster,
        &model,
        SeesawSpec::new(ParallelConfig::new(2, 1, 4), ParallelConfig::new(2, 4, 1)),
        reqs,
    )
    .throughput_rps();
    out.push(ss);
    // Seesaw's real deployment re-tunes (c_p, c_d) for the fabric at
    // hand; the adaptive column shows that.
    let adaptive =
        crate::harness::seesaw_auto_with(runner, &cluster, &model, reqs).throughput_rps();
    out.push(adaptive);
    out
}

/// Regenerate Figure 14 with `n_requests` arxiv requests per point.
pub fn run(n_requests: usize) -> String {
    run_with(&seesaw_engine::SweepRunner::from_env(), n_requests)
}

/// [`run`] on an explicit runner: the swept bandwidth scales evaluate
/// concurrently.
pub fn run_with(runner: &seesaw_engine::SweepRunner, n_requests: usize) -> String {
    let reqs = WorkloadGen::arxiv_summarization(SEED).generate(n_requests);
    let mut out = super::banner(
        "Figure 14",
        "throughput vs interconnect bandwidth, 34B arxiv on 8xA10 (normalized)",
    );
    let mut headers: Vec<String> = vec!["bw scale".into()];
    headers.extend(static_configs().iter().map(|c| format!("d{}t{}p{}", c.dp, c.tp, c.pp)));
    headers.push("d2p4->d2t4 (seesaw)".into());
    headers.push("seesaw (adaptive)".into());
    let hdr_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let mut t = Table::new(&hdr_refs);

    let scales = scales();
    let rows = runner.map(&scales, |&s| point_with(runner, s, &reqs));
    let mut all_rows = Vec::new();
    let mut peak = 0.0_f64;
    for (&s, row) in scales.iter().zip(rows) {
        peak = row.iter().cloned().fold(peak, f64::max);
        all_rows.push((s, row));
    }
    for (s, row) in all_rows {
        let mut cells = vec![format!("{s}")];
        cells.extend(row.iter().map(|&v| f3(v / peak)));
        t.row(&cells);
    }
    out.push_str(&t.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The figure's claims: at low bandwidth PP-heavy configs win, at
    /// high bandwidth TP-heavy configs win, and Seesaw is competitive
    /// across the whole range.
    #[test]
    fn bandwidth_crossover_and_seesaw_robustness() {
        let reqs = WorkloadGen::arxiv_summarization(SEED).generate(40);
        let slow = point(0.1, &reqs);
        let fast = point(50.0, &reqs);
        // Legend order: [d2t1p4, d2t2p2, d2t4p1, p8, t2p4, t4p2, t8, seesaw]
        let (p8, t8) = (3, 6);
        assert!(slow[p8] > slow[t8], "slow fabric favours PP8 over TP8");
        assert!(fast[t8] > fast[p8], "fast fabric favours TP8 over PP8");
        // Adaptive Seesaw within 25% of the best static at both
        // extremes (the fixed d2p4->d2t4 pair is only expected to win
        // near its tuning point, 0.1-1x).
        let best_slow = slow[..7].iter().cloned().fold(0.0_f64, f64::max);
        let best_fast = fast[..7].iter().cloned().fold(0.0_f64, f64::max);
        assert!(slow[8] > 0.75 * best_slow, "{} vs {}", slow[8], best_slow);
        assert!(fast[8] > 0.75 * best_fast, "{} vs {}", fast[8], best_fast);
    }
}
