//! Figure 9: input/output length distributions of the two workloads.

use crate::table::Table;
use crate::{ARXIV_REQUESTS, SEED, SHAREGPT_REQUESTS};
use seesaw_workload::{LengthStats, Request, WorkloadGen};

/// Bucketed histogram (token-count buckets of 500) rendered as ASCII.
fn histogram(lens: &[usize], label: &str) -> String {
    const BUCKET: usize = 500;
    const MAX_BUCKETS: usize = 12;
    let mut counts = [0usize; MAX_BUCKETS];
    for &l in lens {
        let b = (l / BUCKET).min(MAX_BUCKETS - 1);
        counts[b] += 1;
    }
    let peak = *counts.iter().max().expect("non-empty").max(&1);
    let mut out = format!("  {label}:\n");
    for (i, &c) in counts.iter().enumerate() {
        let bar = "#".repeat(c * 40 / peak);
        let hi = if i == MAX_BUCKETS - 1 {
            "+".to_string()
        } else {
            format!("{}", (i + 1) * BUCKET)
        };
        out.push_str(&format!("  {:>5}-{:<5} {:>5} {bar}\n", i * BUCKET, hi, c));
    }
    out
}

fn describe(name: &str, reqs: &[Request]) -> String {
    let st = LengthStats::of(reqs);
    let mut t = Table::new(&["metric", "value"]);
    t.row(&["requests".into(), format!("{}", st.count)]);
    t.row(&["mean input tokens".into(), format!("{:.0}", st.mean_input)]);
    t.row(&["mean output tokens".into(), format!("{:.0}", st.mean_output)]);
    t.row(&["max total tokens".into(), format!("{}", st.max_total)]);
    let inputs: Vec<usize> = reqs.iter().map(|r| r.input_len).collect();
    let outputs: Vec<usize> = reqs.iter().map(|r| r.output_len).collect();
    format!(
        "\n[{name}]\n{}\n{}{}",
        t.render(),
        histogram(&inputs, "input tokens"),
        histogram(&outputs, "output tokens"),
    )
}

/// Regenerate Figure 9.
pub fn run() -> String {
    let arxiv = WorkloadGen::arxiv_summarization(SEED).generate(ARXIV_REQUESTS);
    let sharegpt = WorkloadGen::sharegpt(SEED).generate(SHAREGPT_REQUESTS);
    format!(
        "{}{}{}",
        super::banner("Figure 9", "dataset length distributions"),
        describe("arxiv-summarization", &arxiv),
        describe("sharegpt", &sharegpt),
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn shows_both_datasets_with_histograms() {
        let s = super::run();
        assert!(s.contains("arxiv-summarization"));
        assert!(s.contains("sharegpt"));
        assert!(s.contains("input tokens"));
        assert!(s.matches('#').count() > 20, "histograms must render");
    }
}
