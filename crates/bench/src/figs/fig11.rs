//! Figure 11: throughput on A100 — PCIe vs NVLink interconnects,
//! LLaMA2-70B, both datasets, normalized to vLLM on NVLink.

use crate::harness::{best_vllm, seesaw_auto};
use crate::table::{f3, Table};
use crate::{ARXIV_REQUESTS, SEED, SHAREGPT_REQUESTS};
use seesaw_hw::ClusterSpec;
use seesaw_model::presets;
use seesaw_workload::WorkloadGen;

/// Regenerate Figure 11. `subsample` divides request counts.
pub fn run(subsample: usize) -> String {
    let model = presets::llama2_70b();
    let pcie = ClusterSpec::a100x8_pcie();
    let nvl = ClusterSpec::a100x8_nvlink();
    let mut out = super::banner("Figure 11", "throughput comparison on A100 (70B)");
    let mut t = Table::new(&[
        "dataset",
        "system",
        "config",
        "rps",
        "normalized(vllm+nvlink=1)",
    ]);
    for ds in ["arxiv", "sharegpt"] {
        let reqs = match ds {
            "arxiv" => WorkloadGen::arxiv_summarization(SEED)
                .generate(ARXIV_REQUESTS / subsample.max(1)),
            _ => WorkloadGen::sharegpt(SEED).generate(SHAREGPT_REQUESTS / subsample.max(1)),
        };
        let vllm_nvl = best_vllm(&nvl, &model, &reqs);
        let base = vllm_nvl.throughput_rps();
        let rows = [
            ("vllm+pcie", best_vllm(&pcie, &model, &reqs)),
            ("seesaw+pcie", seesaw_auto(&pcie, &model, &reqs)),
            ("vllm+nvlink", vllm_nvl),
            ("seesaw+nvlink", seesaw_auto(&nvl, &model, &reqs)),
        ];
        for (name, rep) in rows {
            t.row(&[
                ds.to_string(),
                name.to_string(),
                rep.label.clone(),
                f3(rep.throughput_rps()),
                f3(rep.throughput_rps() / base),
            ]);
        }
    }
    out.push_str(&t.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The figure's core claims at small scale: NVLink lifts vLLM, and
    /// Seesaw narrows the PCIe/NVLink gap.
    #[test]
    fn seesaw_narrows_the_pcie_gap() {
        let model = presets::llama2_70b();
        let pcie = ClusterSpec::a100x8_pcie();
        let nvl = ClusterSpec::a100x8_nvlink();
        let reqs = WorkloadGen::arxiv_summarization(SEED).generate(80);
        let v_nvl = best_vllm(&nvl, &model, &reqs).throughput_rps();
        let v_pcie = best_vllm(&pcie, &model, &reqs).throughput_rps();
        let s_pcie = seesaw_auto(&pcie, &model, &reqs).throughput_rps();
        assert!(v_nvl > v_pcie, "NVLink must beat PCIe for vLLM");
        assert!(
            s_pcie / v_nvl > v_pcie / v_nvl,
            "Seesaw must lift PCIe closer to NVLink: {:.2} vs {:.2}",
            s_pcie / v_nvl,
            v_pcie / v_nvl
        );
    }
}
