//! Figure 11: throughput on A100 — PCIe vs NVLink interconnects,
//! LLaMA2-70B, both datasets, normalized to vLLM on NVLink.

use crate::harness::{best_vllm_with, seesaw_auto_with};
use crate::table::{f3, Table};
use crate::{ARXIV_REQUESTS, SEED, SHAREGPT_REQUESTS};
use seesaw_engine::SweepRunner;
use seesaw_hw::ClusterSpec;
use seesaw_model::presets;
use seesaw_workload::WorkloadGen;

/// Regenerate Figure 11. `subsample` divides request counts.
pub fn run(subsample: usize) -> String {
    run_with(&SweepRunner::from_env(), subsample)
}

/// [`run`] on an explicit runner: the eight (dataset × system) cells
/// evaluate concurrently; rows render in legend order.
pub fn run_with(runner: &SweepRunner, subsample: usize) -> String {
    let model = presets::llama2_70b();
    let pcie = ClusterSpec::a100x8_pcie();
    let nvl = ClusterSpec::a100x8_nvlink();
    let mut out = super::banner("Figure 11", "throughput comparison on A100 (70B)");
    let mut t = Table::new(&[
        "dataset",
        "system",
        "config",
        "rps",
        "normalized(vllm+nvlink=1)",
    ]);
    // Each system row carries its own cluster + engine choice, so a
    // label can never silently run another system's configuration.
    let systems: [(&str, &ClusterSpec, bool); 4] = [
        ("vllm+pcie", &pcie, false),
        ("seesaw+pcie", &pcie, true),
        ("vllm+nvlink", &nvl, false),
        ("seesaw+nvlink", &nvl, true),
    ];
    let arxiv =
        WorkloadGen::arxiv_summarization(SEED).generate(ARXIV_REQUESTS / subsample.max(1));
    let sharegpt = WorkloadGen::sharegpt(SEED).generate(SHAREGPT_REQUESTS / subsample.max(1));
    let mut cells: Vec<(&str, (&str, &ClusterSpec, bool))> = Vec::new();
    for ds in ["arxiv", "sharegpt"] {
        for sys in systems {
            cells.push((ds, sys));
        }
    }
    let reports = runner.map(&cells, |&(ds, (_, cluster, seesaw))| {
        let reqs = if ds == "arxiv" { &arxiv } else { &sharegpt };
        if seesaw {
            seesaw_auto_with(runner, cluster, &model, reqs)
        } else {
            best_vllm_with(runner, cluster, &model, reqs)
        }
    });
    let norm_idx = systems
        .iter()
        .position(|&(name, _, _)| name == "vllm+nvlink")
        .expect("normalizer present");
    for (cell_chunk, report_chunk) in
        cells.chunks(systems.len()).zip(reports.chunks(systems.len()))
    {
        let base = report_chunk[norm_idx].throughput_rps();
        for (&(ds, (sys, _, _)), rep) in cell_chunk.iter().zip(report_chunk) {
            t.row(&[
                ds.to_string(),
                sys.to_string(),
                rep.label.clone(),
                f3(rep.throughput_rps()),
                f3(rep.throughput_rps() / base),
            ]);
        }
    }
    out.push_str(&t.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{best_vllm, seesaw_auto};

    /// The figure's core claims at small scale: NVLink lifts vLLM, and
    /// Seesaw narrows the PCIe/NVLink gap.
    #[test]
    fn seesaw_narrows_the_pcie_gap() {
        let model = presets::llama2_70b();
        let pcie = ClusterSpec::a100x8_pcie();
        let nvl = ClusterSpec::a100x8_nvlink();
        let reqs = WorkloadGen::arxiv_summarization(SEED).generate(80);
        let v_nvl = best_vllm(&nvl, &model, &reqs).throughput_rps();
        let v_pcie = best_vllm(&pcie, &model, &reqs).throughput_rps();
        let s_pcie = seesaw_auto(&pcie, &model, &reqs).throughput_rps();
        assert!(v_nvl > v_pcie, "NVLink must beat PCIe for vLLM");
        assert!(
            s_pcie / v_nvl > v_pcie / v_nvl,
            "Seesaw must lift PCIe closer to NVLink: {:.2} vs {:.2}",
            s_pcie / v_nvl,
            v_pcie / v_nvl
        );
    }
}
