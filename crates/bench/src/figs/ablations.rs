//! Ablation studies for the design decisions called out in DESIGN.md
//! (§4): scheduling policy under re-sharding, CPU buffer capacity,
//! async-overlap on/off, KV layout, and re-sharding transfer volume.
//!
//! Standard setting: CodeLLaMA-34B, arxiv-like workload, eight A10s,
//! Seesaw `P8 -> T4P2` unless stated otherwise.

use crate::harness::seesaw_with;
use crate::table::{f2, f3, Table};
use crate::SEED;
use seesaw_engine::seesaw::SeesawSpec;
use seesaw_engine::SweepRunner;
use seesaw_hw::ClusterSpec;
use seesaw_kv::KvLayout;
use seesaw_model::{presets, ModelConfig};
use seesaw_parallel::{ParallelConfig, ReshardPlan, ShardMap};
use seesaw_workload::{Request, WorkloadGen};

fn setting() -> (ClusterSpec, ModelConfig, SeesawSpec) {
    (
        ClusterSpec::a10x8(),
        presets::codellama_34b(),
        SeesawSpec::new(ParallelConfig::pp(8), ParallelConfig::new(1, 4, 2)),
    )
}

fn workload(n: usize) -> Vec<Request> {
    WorkloadGen::arxiv_summarization(SEED).generate(n)
}

/// D1 — transition frequency: shrink the CPU buffer to emulate
/// eager (prefill-prioritizing-like) transition schedules and show
/// throughput + transition counts. The full buffer is
/// transition-minimizing scheduling; a GPU-KV-sized buffer behaves
/// like decode-prioritizing.
pub fn abl_sched(n_requests: usize) -> String {
    abl_sched_with(&SweepRunner::from_env(), n_requests)
}

/// [`abl_sched`] on an explicit runner (cases evaluate concurrently).
pub fn abl_sched_with(runner: &SweepRunner, n_requests: usize) -> String {
    let (cluster, model, base) = setting();
    let reqs = workload(n_requests);
    let mut out = super::banner("Ablation D1", "transition-minimizing vs eager transitions");
    let mut t = Table::new(&["buffer (tokens)", "policy analogue", "rps", "transitions", "reshard s"]);
    let gpu_kv = seesaw_parallel::MemoryPlan::new(&model, &cluster, base.decode)
        .expect("feasible")
        .kv_tokens_total;
    let cases = [
        (None, "transition-minimizing (full host buffer)"),
        (Some(4 * gpu_kv), "4x GPU KV"),
        (Some(gpu_kv), "decode-prioritizing-like (1x GPU KV)"),
        (Some(gpu_kv / 4), "eager / prefill-prioritizing-like"),
    ];
    let reports = runner.map(&cases, |&(cap, _)| {
        let mut spec = base.clone();
        spec.buffer_tokens_override = cap;
        seesaw_with(&cluster, &model, spec, &reqs)
    });
    for (&(cap, name), r) in cases.iter().zip(reports) {
        t.row(&[
            cap.map_or("full".into(), |c| format!("{c}")),
            name.to_string(),
            f3(r.throughput_rps()),
            format!("{}", r.transitions),
            f2(r.reshard_wall_s),
        ]);
    }
    out.push_str(&t.render());
    out
}

/// D2 — CPU buffer capacity sweep.
pub fn abl_buffer(n_requests: usize) -> String {
    abl_buffer_with(&SweepRunner::from_env(), n_requests)
}

/// [`abl_buffer`] on an explicit runner (capacities sweep
/// concurrently).
pub fn abl_buffer_with(runner: &SweepRunner, n_requests: usize) -> String {
    let (cluster, model, base) = setting();
    let reqs = workload(n_requests);
    let gpu_kv = seesaw_parallel::MemoryPlan::new(&model, &cluster, base.decode)
        .expect("feasible")
        .kv_tokens_total;
    let mut out = super::banner("Ablation D2", "tiered CPU buffer capacity sweep");
    let mut t = Table::new(&["buffer / GPU KV", "rps", "transitions"]);
    let mults = [0.5, 1.0, 2.0, 4.0, 8.0, 16.0];
    let reports = runner.map(&mults, |&mult| {
        let mut spec = base.clone();
        spec.buffer_tokens_override = Some((gpu_kv as f64 * mult) as u64);
        seesaw_with(&cluster, &model, spec, &reqs)
    });
    for (&mult, r) in mults.iter().zip(reports) {
        t.row(&[
            format!("{mult}x"),
            f3(r.throughput_rps()),
            format!("{}", r.transitions),
        ]);
    }
    out.push_str(&t.render());
    out
}

/// D3 — asynchronous pipeline on/off.
pub fn abl_overlap(n_requests: usize) -> String {
    abl_overlap_with(&SweepRunner::from_env(), n_requests)
}

/// [`abl_overlap`] on an explicit runner (both arms run
/// concurrently).
pub fn abl_overlap_with(runner: &SweepRunner, n_requests: usize) -> String {
    let (cluster, model, base) = setting();
    let reqs = workload(n_requests);
    let mut out = super::banner("Ablation D3", "async swap pipeline overlap on/off");
    let mut t = Table::new(&["overlap", "rps", "prefill s", "decode s"]);
    let arms = [true, false];
    let reports = runner.map(&arms, |&overlap| {
        let mut spec = base.clone();
        spec.overlap = overlap;
        seesaw_with(&cluster, &model, spec, &reqs)
    });
    for (&overlap, r) in arms.iter().zip(reports) {
        t.row(&[
            format!("{overlap}"),
            f3(r.throughput_rps()),
            f2(r.prefill_wall_s),
            f2(r.decode_wall_s),
        ]);
    }
    out.push_str(&t.render());
    out
}

/// D4 — KV layout (HND vs NHD) under tensor-parallel sharded swaps.
pub fn abl_layout(n_requests: usize) -> String {
    abl_layout_with(&SweepRunner::from_env(), n_requests)
}

/// [`abl_layout`] on an explicit runner (both layouts run
/// concurrently).
pub fn abl_layout_with(runner: &SweepRunner, n_requests: usize) -> String {
    let (cluster, model, base) = setting();
    let reqs = workload(n_requests);
    let mut out = super::banner("Ablation D4", "bandwidth-aware KV layout (HND vs NHD)");
    let mut t = Table::new(&["layout", "rps", "swap bytes (out+in)"]);
    let cases = [("HND (seesaw)", KvLayout::Hnd), ("NHD", KvLayout::Nhd)];
    let reports = runner.map(&cases, |&(_, layout)| {
        let mut spec = base.clone();
        spec.layout = layout;
        seesaw_with(&cluster, &model, spec, &reqs)
    });
    for (&(name, _), r) in cases.iter().zip(reports) {
        t.row(&[
            name.to_string(),
            f3(r.throughput_rps()),
            format!("{:.1} GiB", (r.swap_out_bytes + r.swap_in_bytes) as f64 / (1u64 << 30) as f64),
        ]);
    }
    out.push_str(&t.render());
    out
}

/// D6 — chunked-prefill chunk-size sensitivity for the vLLM baseline
/// (the §7.2 discussion: "determining the optimal chunk size is
/// challenging"). Seesaw's transition-minimizing schedule is shown as
/// a chunk-free reference.
pub fn abl_chunk(n_requests: usize) -> String {
    abl_chunk_with(&SweepRunner::from_env(), n_requests)
}

/// [`abl_chunk`] on an explicit runner (chunk sizes sweep
/// concurrently).
pub fn abl_chunk_with(runner: &SweepRunner, n_requests: usize) -> String {
    use seesaw_engine::vllm::VllmEngine;
    use seesaw_engine::SchedulingPolicy;
    let (cluster, model, base) = setting();
    let reqs = workload(n_requests);
    let cfg = ParallelConfig::new(1, 2, 4);
    let mut out = super::banner(
        "Ablation D6",
        "chunked-prefill chunk-size sensitivity (vLLM T2P4, 34B arxiv)",
    );
    let mut t = Table::new(&["chunk tokens", "rps"]);
    let chunks = [128usize, 256, 512, 1024, 2048, 4096, 8192];
    let reports = runner.map(&chunks, |&chunk| {
        VllmEngine::new(
            cluster.clone(),
            model.clone(),
            cfg,
            SchedulingPolicy::ChunkedPrefill { chunk_tokens: chunk },
        )
        .expect("feasible")
        .run(&reqs)
    });
    for (&chunk, r) in chunks.iter().zip(reports) {
        t.row(&[format!("{chunk}"), f3(r.throughput_rps())]);
    }
    let ss = seesaw_with(&cluster, &model, base, &reqs);
    t.row(&["seesaw (no chunking)".into(), f3(ss.throughput_rps())]);
    out.push_str(&t.render());
    out
}

/// D5 — re-sharding transfer volume across configuration pairs: how
/// many bytes each transition moves, and what fraction was already
/// resident.
pub fn abl_reshard() -> String {
    let model = presets::llama2_70b();
    let mut out = super::banner("Ablation D5", "re-sharding volume by configuration pair (70B)");
    let mut t = Table::new(&["from", "to", "max load/GPU (GiB)", "total load (GiB)", "resident %"]);
    let pairs = [
        (ParallelConfig::pp(8), ParallelConfig::new(1, 4, 2)),
        (ParallelConfig::pp(8), ParallelConfig::tp(8)),
        (ParallelConfig::new(1, 2, 4), ParallelConfig::new(1, 4, 2)),
        (ParallelConfig::new(1, 4, 2), ParallelConfig::new(1, 4, 2)),
    ];
    for (from, to) in pairs {
        let plan = ReshardPlan::plan(&model, from, to);
        let to_map = ShardMap::new(&model, to);
        let need: u64 = (0..to.num_gpus())
            .map(|g| to_map.shard(g).weight_bytes())
            .sum();
        let resident = need - plan.total_load_bytes();
        t.row(&[
            from.to_string(),
            to.to_string(),
            f2(plan.max_load_bytes() as f64 / (1u64 << 30) as f64),
            f2(plan.total_load_bytes() as f64 / (1u64 << 30) as f64),
            f2(100.0 * resident as f64 / need as f64),
        ]);
    }
    out.push_str(&t.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffer_sweep_shows_fewer_transitions_with_bigger_buffers() {
        let s = abl_buffer(60);
        assert!(s.contains("0.5x") && s.contains("16x"));
    }

    #[test]
    fn layout_ablation_prefers_hnd() {
        let (cluster, model, base) = setting();
        let reqs = workload(60);
        let hnd = seesaw_with(&cluster, &model, base.clone(), &reqs);
        let mut nhd_spec = base;
        nhd_spec.layout = KvLayout::Nhd;
        let nhd = seesaw_with(&cluster, &model, nhd_spec, &reqs);
        assert!(
            hnd.throughput_rps() >= nhd.throughput_rps(),
            "HND {} must not lose to NHD {}",
            hnd.throughput_rps(),
            nhd.throughput_rps()
        );
    }

    #[test]
    fn reshard_identity_pair_is_fully_resident() {
        let s = abl_reshard();
        assert!(s.contains("100.00"), "identity transition loads nothing:\n{s}");
    }

    #[test]
    fn sched_ablation_renders() {
        let s = abl_sched(40);
        assert!(s.contains("transition-minimizing"));
        assert!(s.contains("decode-prioritizing-like"));
    }
}
