//! Figure 15 (Appendix A): how data parallelism affects decode —
//! per-request runtime breakdown and maximum batch size across
//! TP×DP splits of 8 GPUs, including the OOM case.
//!
//! Uses LLaMA2-13B on 8× L4 (the motivation-section testbed): at
//! TP1DP8 the 26 GiB of fp16 weights exceed one 24 GiB GPU → OOM,
//! exactly the greyed-out bar in the paper.

use crate::table::{f3, Table};
use seesaw_hw::ClusterSpec;
use seesaw_model::presets;
use seesaw_parallel::{MemoryPlan, ParallelConfig};
use seesaw_roofline::{BatchShape, Roofline, Stage};

/// Decode context length used for the analysis.
const CTX: usize = 1024;

/// The TP×DP splits on the x-axis.
pub fn configs() -> Vec<ParallelConfig> {
    vec![
        ParallelConfig::new(8, 1, 1),
        ParallelConfig::new(4, 2, 1),
        ParallelConfig::new(2, 4, 1),
        ParallelConfig::new(1, 8, 1),
    ]
}

/// Regenerate Figure 15.
pub fn run() -> String {
    let cluster = ClusterSpec::l4x8();
    let model = presets::llama2_13b();
    let rl = Roofline::new(cluster.clone(), model.clone());
    let mut out = super::banner(
        "Figure 15",
        "DP vs TP decode trade-off, 13B on 8xL4 (per-request runtime and max batch)",
    );
    let mut t = Table::new(&[
        "config",
        "max batch",
        "load weight",
        "compute",
        "allreduce",
        "runtime/req (norm)",
    ]);

    // First pass: compute per-request times to find the normalizer.
    let mut rows = Vec::new();
    for cfg in configs() {
        match MemoryPlan::new(&model, &cluster, cfg) {
            Err(_) => rows.push((cfg, None)),
            Ok(plan) => {
                let b = plan.max_batch(CTX).max(1);
                let micro = (b / (cfg.dp * cfg.pp)).max(1);
                let shape = BatchShape::decode_uniform(micro, CTX);
                let cost = rl.layer_cost(Stage::Decode, &shape, cfg.tp);
                let bd = cost.breakdown();
                // Per-request-step time: one decode round retires
                // micro·DP sequence-steps across the cluster.
                let per_req = model.num_layers as f64 / (micro * cfg.dp) as f64;
                rows.push((
                    cfg,
                    Some((
                        b,
                        bd.weight_transfer * per_req,
                        bd.compute * per_req,
                        bd.communication * per_req,
                    )),
                ));
            }
        }
    }
    let peak = rows
        .iter()
        .filter_map(|(_, r)| r.map(|(_, w, c, a)| w + c + a))
        .fold(0.0_f64, f64::max);
    for (cfg, r) in rows {
        match r {
            None => {
                t.row(&[
                    format!("TP{}DP{}", cfg.tp, cfg.dp),
                    "OOM".into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    "OOM".into(),
                ]);
            }
            Some((b, w, c, a)) => {
                t.row(&[
                    format!("TP{}DP{}", cfg.tp, cfg.dp),
                    format!("{b}"),
                    f3(w / peak),
                    f3(c / peak),
                    f3(a / peak),
                    f3((w + c + a) / peak),
                ]);
            }
        }
    }
    out.push_str(&t.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tp1dp8_is_oom_on_l4() {
        let s = run();
        assert!(s.contains("OOM"), "13B fp16 cannot fit one 24GiB L4");
    }

    /// More DP => smaller batches and more weight-loading per request
    /// (the figure's message).
    #[test]
    fn dp_hurts_batch_size() {
        let cluster = ClusterSpec::l4x8();
        let model = presets::llama2_13b();
        let b_dp4 = MemoryPlan::new(&model, &cluster, ParallelConfig::new(4, 2, 1))
            .unwrap()
            .max_batch(CTX);
        let b_tp8 = MemoryPlan::new(&model, &cluster, ParallelConfig::tp(8))
            .unwrap()
            .max_batch(CTX);
        assert!(b_tp8 > b_dp4, "TP8 batch {b_tp8} vs TP2DP4 {b_dp4}");
    }

    #[test]
    fn renders_all_configs() {
        let s = run();
        for c in ["TP1DP8", "TP2DP4", "TP4DP2", "TP8DP1"] {
            assert!(s.contains(c), "missing {c}");
        }
    }
}
