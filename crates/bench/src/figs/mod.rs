//! One module per paper table/figure. Each `run` function returns the
//! rendered experiment output (binaries print it; tests assert on its
//! shape).

pub mod ablations;
pub mod fig1;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod fig15;
pub mod fig4;
pub mod fig9;
pub mod table1;

/// Render a figure header banner.
pub fn banner(id: &str, title: &str) -> String {
    format!("\n=== {id}: {title} ===\n")
}
