//! One module per paper table/figure. Each `run` function returns the
//! rendered experiment output (binaries print it; tests assert on its
//! shape).

pub mod ablations;
pub mod fig1;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod fig15;
pub mod fig4;
pub mod fig9;
pub mod table1;

/// Render a figure header banner.
pub fn banner(id: &str, title: &str) -> String {
    format!("\n=== {id}: {title} ===\n")
}

/// A figure job: its display name and the closure regenerating it.
pub type FigureJob = (&'static str, Box<dyn Fn() -> String + Send + Sync>);

/// Every table/figure/ablation in `all_figures` order, as independent
/// jobs for a [`seesaw_engine::SweepRunner`]. `subsample` divides the
/// paper's request counts; each job also parallelizes its internal
/// grid on `runner` (nested sweeps degrade to serial on busy
/// workers, so total parallelism stays bounded by the runner's job
/// count).
pub fn catalog(subsample: usize, runner: seesaw_engine::SweepRunner) -> Vec<FigureJob> {
    let n = move |full: usize| (full / subsample.max(1)).max(8);
    vec![
        ("table1", Box::new(table1::run)),
        ("fig1", Box::new(fig1::run)),
        ("fig4", Box::new(fig4::run)),
        ("fig9", Box::new(fig9::run)),
        (
            "fig10-a10",
            Box::new(move || fig10::run_with(&runner, "a10", subsample)),
        ),
        (
            "fig10-l4",
            Box::new(move || fig10::run_with(&runner, "l4", subsample)),
        ),
        ("fig11", Box::new(move || fig11::run_with(&runner, subsample))),
        ("fig12", Box::new(move || fig12::run_with(&runner, n(500)))),
        ("fig13", Box::new(move || fig13::run_with(&runner, n(64)))),
        ("fig14", Box::new(move || fig14::run_with(&runner, n(150)))),
        ("fig15", Box::new(fig15::run)),
        (
            "abl_sched",
            Box::new(move || ablations::abl_sched_with(&runner, n(200))),
        ),
        (
            "abl_buffer",
            Box::new(move || ablations::abl_buffer_with(&runner, n(200))),
        ),
        (
            "abl_overlap",
            Box::new(move || ablations::abl_overlap_with(&runner, n(200))),
        ),
        (
            "abl_layout",
            Box::new(move || ablations::abl_layout_with(&runner, n(200))),
        ),
        ("abl_reshard", Box::new(ablations::abl_reshard)),
        (
            "abl_chunk",
            Box::new(move || ablations::abl_chunk_with(&runner, n(200))),
        ),
    ]
}
