//! Figure 1: prefill/decode execution-time breakdown across TP×PP
//! combinations — LLaMA2-13B on 8× L4, global batch 16. Pipeline
//! parallelism divides the batch into micro-batches of `16/PP`.
//!
//! The stacked components are produced by the roofline's breakdown
//! attribution (compute / communication / weight transfer), with the
//! wall-clock estimate assuming fully pipelined stages (busy time
//! divided by PP). Values are normalized to the slowest configuration
//! of each stage, matching the paper's presentation.

use crate::table::{f3, Table};
use seesaw_hw::ClusterSpec;
use seesaw_model::presets;
use seesaw_parallel::ParallelConfig;
use seesaw_roofline::{BatchShape, Roofline, Stage, StageBreakdown};

/// Prompt length used for the prefill bars (the paper does not state
/// it; 512 is representative of its workloads' mid-range).
const PROMPT: usize = 512;
/// Context length for the decode bars.
const CTX: usize = 640;
/// Global batch size (from the figure caption).
const BATCH: usize = 16;

/// Per-config wall-clock breakdown for one stage.
pub fn breakdown(rl: &Roofline, cfg: ParallelConfig, stage: Stage) -> StageBreakdown {
    let micro = BATCH / cfg.pp;
    let shape = match stage {
        Stage::Prefill => BatchShape::prefill(&vec![PROMPT; micro]),
        Stage::Decode => BatchShape::decode_uniform(micro, CTX),
    };
    // Wall estimate under full pipelining: PP micro-batches × one
    // micro-batch's whole-pipeline busy time, spread over PP
    // concurrently-working stages — i.e. one micro-batch's busy time.
    rl.pass_breakdown(cfg, stage, &shape)
}

/// The configurations swept in the figure.
pub fn configs() -> Vec<ParallelConfig> {
    vec![
        ParallelConfig::new(1, 1, 8),
        ParallelConfig::new(1, 2, 4),
        ParallelConfig::new(1, 4, 2),
        ParallelConfig::new(1, 8, 1),
    ]
}

/// Regenerate Figure 1.
pub fn run() -> String {
    let rl = Roofline::new(ClusterSpec::l4x8(), presets::llama2_13b());
    let mut out = super::banner(
        "Figure 1",
        "prefill/decode time breakdown, LLaMA2-13B on 8xL4, batch 16",
    );
    for stage in [Stage::Prefill, Stage::Decode] {
        let rows: Vec<(ParallelConfig, StageBreakdown)> = configs()
            .into_iter()
            .map(|c| (c, breakdown(&rl, c, stage)))
            .collect();
        let max_total = rows
            .iter()
            .map(|(_, b)| b.total())
            .fold(0.0_f64, f64::max);
        let mut t = Table::new(&[
            "config",
            "compute",
            "communication",
            "weight_transfer",
            "total(norm)",
        ]);
        for (c, b) in rows {
            t.row(&[
                format!("TP{}PP{}", c.tp, c.pp),
                f3(b.compute / max_total),
                f3(b.communication / max_total),
                f3(b.weight_transfer / max_total),
                f3(b.total() / max_total),
            ]);
        }
        let name = match stage {
            Stage::Prefill => "(a) Prefill",
            Stage::Decode => "(b) Decode",
        };
        out.push_str(&format!("\n{name}\n{}", t.render()));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rl() -> Roofline {
        Roofline::new(ClusterSpec::l4x8(), presets::llama2_13b())
    }

    /// The figure's headline: prefill communication share escalates
    /// with TP, making TP8 the slowest prefill config.
    #[test]
    fn prefill_tp8_slowest_due_to_communication() {
        let r = rl();
        let totals: Vec<f64> = configs()
            .into_iter()
            .map(|c| breakdown(&r, c, Stage::Prefill).total())
            .collect();
        let tp8 = totals[3];
        assert!(totals.iter().all(|&t| t <= tp8 + 1e-12), "{totals:?}");
        let b8 = breakdown(&r, ParallelConfig::tp(8), Stage::Prefill);
        assert!(b8.communication > b8.compute, "TP8 prefill comm-bound");
    }

    /// Decode: PP8 (TP1) pays the most weight transfer; TP8 the least.
    #[test]
    fn decode_weight_transfer_shrinks_with_tp() {
        let r = rl();
        let pp8 = breakdown(&r, ParallelConfig::pp(8), Stage::Decode);
        let tp8 = breakdown(&r, ParallelConfig::tp(8), Stage::Decode);
        assert!(pp8.weight_transfer > 3.0 * tp8.weight_transfer);
        assert!(
            pp8.weight_transfer > pp8.compute,
            "decode at batch 2/GPU is weight-bound"
        );
    }

    #[test]
    fn output_has_both_panels() {
        let s = run();
        assert!(s.contains("(a) Prefill"));
        assert!(s.contains("(b) Decode"));
        assert!(s.contains("TP1PP8"));
        assert!(s.contains("TP8PP1"));
    }
}
