//! Minimal aligned-table printer (markdown-flavoured) used by every
//! figure binary.

/// A simple column-aligned table accumulated row by row.
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header count).
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match headers"
        );
        self.rows.push(cells.to_vec());
        self
    }

    /// Convenience: append a row of `&str`.
    pub fn row_str(&mut self, cells: &[&str]) -> &mut Self {
        let owned: Vec<String> = cells.iter().map(|s| s.to_string()).collect();
        self.row(&owned)
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render as an aligned markdown table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::from("|");
            for (c, w) in cells.iter().zip(widths) {
                line.push_str(&format!(" {c:w$} |"));
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        out.push_str(&fmt_row(&sep, &widths));
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
        }
        out
    }
}

/// Format a float with 3 decimal places (the tables' standard).
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Format a float with 2 decimal places.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_markdown() {
        let mut t = Table::new(&["config", "rps"]);
        t.row_str(&["P8", "1.0"]);
        t.row(&["T4P2".to_string(), f3(0.5)]);
        let s = t.render();
        assert!(s.contains("| config |"));
        assert!(s.contains("| P8     |"));
        assert!(s.contains("0.500"));
        assert_eq!(s.lines().count(), 4);
        assert_eq!(t.len(), 2);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn rejects_ragged_rows() {
        let mut t = Table::new(&["a", "b"]);
        t.row_str(&["only-one"]);
    }
}
