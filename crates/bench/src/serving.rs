//! Online-serving sweep: offered load (requests/second) vs SLO
//! attainment and goodput.
//!
//! The paper evaluates the offline setting only (everything available
//! at t = 0, end-to-end throughput as the metric); this harness opens
//! the orthogonal axis a production deployment lives on. A fixed
//! request set (lengths and count) is replayed at a ladder of offered
//! loads: one unit-rate Poisson arrival pattern is sampled once and
//! *scaled* per load point (time-scaling a Poisson process changes
//! only its rate), so every point queues the same requests in the
//! same order and the sweep isolates load from arrival noise — which
//! also makes SLO attainment monotone-nonincreasing in offered load.
//!
//! Offered loads are expressed as multiples of the engine's measured
//! *offline* throughput on the same request set (its capacity), so
//! the goodput knee always sits near multiplier 1.0 regardless of
//! model/cluster choice.
//!
//! Load points are independent simulations evaluated on a
//! [`SweepRunner`]; output is byte-identical for every `--jobs`
//! value.

use crate::jsonfmt;
use crate::table::{f2, f3, Table};
use seesaw_engine::disagg::DisaggEngine;
use seesaw_engine::seesaw::{SeesawEngine, SeesawSpec};
use seesaw_engine::vllm::VllmEngine;
use seesaw_engine::{EngineReport, OnlineEngine, SchedulingPolicy, SweepRunner};
use seesaw_hw::ClusterSpec;
use seesaw_model::presets;
use seesaw_parallel::ParallelConfig;
use seesaw_workload::{ArrivalDist, Request, SloSpec, WorkloadGen};
use std::sync::Arc;

/// Default SLO: first token within 15 s of arrival, then 50 ms per
/// token. The prefill-prioritized scheduler keeps TTFT low until deep
/// overload, so on the default scenario the TPOT bound is what carves
/// the goodput knee (override with `--slo-ttft` / `--slo-tpot`).
pub const DEFAULT_SLO: SloSpec = SloSpec { ttft_s: 15.0, tpot_s: 0.05 };

/// Default offered-load multipliers of measured offline capacity.
pub const DEFAULT_LOAD_MULTIPLIERS: &[f64] = &[0.25, 0.5, 0.75, 1.0, 1.5, 2.0, 4.0];

/// One evaluated load point.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ServingPoint {
    /// Offered load, requests/second.
    pub offered_rps: f64,
    /// Offered load as a multiple of offline capacity.
    pub load_multiplier: f64,
    /// The online engine run at this load.
    pub report: EngineReport,
    /// Fraction of requests meeting the SLO.
    pub attainment: f64,
    /// SLO-meeting requests per second.
    pub goodput_rps: f64,
}

/// A completed offered-load sweep.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ServingSweep {
    /// Engine configuration label.
    pub label: String,
    /// Workload name.
    pub workload: String,
    /// The SLO every point is judged against.
    pub slo: SloSpec,
    /// Offline throughput of the same engine on the same request set
    /// (the capacity the load multipliers refer to).
    pub capacity_rps: f64,
    /// Points in ascending offered load.
    pub points: Vec<ServingPoint>,
}

/// Sweep `engine` (any online backend, behind the [`OnlineEngine`]
/// trait) over `multipliers` × its offline capacity on `base` (an
/// offline request set; its arrival times are ignored). The arrival
/// pattern is Poisson, sampled once at unit rate from `seed` and
/// rescaled per point.
pub fn sweep_with(
    runner: &SweepRunner,
    engine: &dyn OnlineEngine,
    workload: &str,
    base: &[Request],
    multipliers: &[f64],
    slo: SloSpec,
    seed: u64,
) -> ServingSweep {
    assert!(!base.is_empty(), "serving sweep needs requests");
    assert!(
        multipliers.iter().all(|&m| m.is_finite() && m > 0.0),
        "load multipliers must be positive and finite"
    );
    let offline: Vec<Request> = base.iter().map(|r| r.with_arrival(0.0)).collect();
    let capacity_rps = engine.run(&offline).throughput_rps();
    // Salt the arrival seed exactly like `WorkloadGen::with_arrivals`
    // does: `base` is typically generated from this same seed, and
    // unsalted sampling would feed lengths and inter-arrival gaps
    // from identical RNG draws, correlating request size with load.
    let unit = ArrivalDist::Poisson { rate: 1.0 }
        .sample_times(base.len(), seed ^ seesaw_workload::ARRIVAL_SEED_SALT)
        .expect("unit-rate Poisson is valid");
    let points = runner.map(multipliers, |&m| {
        let rate = m * capacity_rps;
        let reqs: Vec<Request> = offline
            .iter()
            .zip(&unit)
            .map(|(r, &t)| r.with_arrival(t / rate))
            .collect();
        let report = engine.run(&reqs);
        ServingPoint {
            offered_rps: rate,
            load_multiplier: m,
            attainment: report.slo_attainment(slo),
            goodput_rps: report.goodput_rps(slo),
            report,
        }
    });
    ServingSweep {
        label: engine.label(),
        workload: workload.into(),
        slo,
        capacity_rps,
        points,
    }
}

/// Which engine backend a serving/fleet sweep exercises.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineKind {
    /// The paper's re-sharding engine (`P4->T4` on the default
    /// cluster).
    Seesaw,
    /// The static-parallelism baseline (`D1T2P2`,
    /// prefill-prioritized).
    Vllm,
    /// The disaggregated prefill/decode analyzer (best feasible
    /// split, tandem-queue replay).
    Disagg,
}

impl std::fmt::Display for EngineKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineKind::Seesaw => write!(f, "seesaw"),
            EngineKind::Vllm => write!(f, "vllm"),
            EngineKind::Disagg => write!(f, "disagg"),
        }
    }
}

impl std::str::FromStr for EngineKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "seesaw" => Ok(EngineKind::Seesaw),
            "vllm" => Ok(EngineKind::Vllm),
            "disagg" => Ok(EngineKind::Disagg),
            other => Err(format!("unknown engine '{other}' (expected seesaw|vllm|disagg)")),
        }
    }
}

/// The default serving scenario: LLaMA2-13B on 4×A10, `D1T2P2`
/// prefill-prioritized, ShareGPT-shaped lengths — the same
/// cluster/model pair the sims/sec benchmark pins down.
pub fn default_engine() -> VllmEngine {
    VllmEngine::new(
        Arc::new(ClusterSpec::a10x4()),
        Arc::new(presets::llama2_13b()),
        ParallelConfig::new(1, 2, 2),
        SchedulingPolicy::PrefillPrioritized,
    )
    .expect("default serving config fits")
}

/// Default-scenario engine of the requested backend on shared spec
/// handles, as a trait object (replica builders call this once per
/// replica). Seesaw uses the `P4->T4` pair the sims/sec benchmark
/// pins down; disagg auto-picks its best feasible split per run.
pub fn default_engine_of(
    kind: EngineKind,
    cluster: &Arc<ClusterSpec>,
    model: &Arc<seesaw_model::ModelConfig>,
) -> Box<dyn OnlineEngine> {
    match kind {
        EngineKind::Vllm => Box::new(
            VllmEngine::new(
                Arc::clone(cluster),
                Arc::clone(model),
                ParallelConfig::new(1, 2, 2),
                SchedulingPolicy::PrefillPrioritized,
            )
            .expect("default serving config fits"),
        ),
        EngineKind::Seesaw => Box::new(
            SeesawEngine::new(
                Arc::clone(cluster),
                Arc::clone(model),
                SeesawSpec::new(ParallelConfig::pp(4), ParallelConfig::tp(4)),
            )
            .expect("default Seesaw pair fits"),
        ),
        EngineKind::Disagg => {
            Box::new(DisaggEngine::new(Arc::clone(cluster), Arc::clone(model)))
        }
    }
}

/// The default cluster/model pair behind every default scenario.
pub fn default_specs() -> (Arc<ClusterSpec>, Arc<seesaw_model::ModelConfig>) {
    (Arc::new(ClusterSpec::a10x4()), Arc::new(presets::llama2_13b()))
}

/// Default request set for [`default_engine`].
pub fn default_requests(n: usize, seed: u64) -> (String, Vec<Request>) {
    let mut gen = WorkloadGen::sharegpt(seed);
    ("sharegpt".into(), gen.generate(n))
}

/// Run the default scenario on `model`-free knobs only (request
/// count, multipliers, SLO, seed) for the requested backend.
pub fn default_sweep_of_with(
    runner: &SweepRunner,
    kind: EngineKind,
    n_requests: usize,
    multipliers: &[f64],
    slo: SloSpec,
    seed: u64,
) -> ServingSweep {
    let (cluster, model) = default_specs();
    let engine = default_engine_of(kind, &cluster, &model);
    let (name, base) = default_requests(n_requests, seed);
    sweep_with(runner, engine.as_ref(), &name, &base, multipliers, slo, seed)
}

/// [`default_sweep_of_with`] for the vLLM baseline (the historical
/// default scenario).
pub fn default_sweep_with(
    runner: &SweepRunner,
    n_requests: usize,
    multipliers: &[f64],
    slo: SloSpec,
    seed: u64,
) -> ServingSweep {
    default_sweep_of_with(runner, EngineKind::Vllm, n_requests, multipliers, slo, seed)
}

/// Render a sweep as the `serving` bin's table.
pub fn render(sweep: &ServingSweep) -> String {
    let mut out = format!(
        "\n=== serving: offered load vs SLO attainment ({} on {}, {} requests) ===\n\
         capacity (offline) = {} rps; SLO: TTFT <= {}s, TPOT <= {}s\n",
        sweep.label,
        sweep.workload,
        sweep.points.first().map_or(0, |p| p.report.stats.requests),
        f3(sweep.capacity_rps),
        sweep.slo.ttft_s,
        sweep.slo.tpot_s,
    );
    let mut t = Table::new(&[
        "load",
        "offered rps",
        "throughput",
        "ttft p50",
        "ttft p99",
        "tpot p99",
        "e2e p99",
        "SLO att",
        "goodput",
    ]);
    for p in &sweep.points {
        let lat = p.report.latency.expect("non-empty run");
        t.row(&[
            format!("{:.2}x", p.load_multiplier),
            f3(p.offered_rps),
            f3(p.report.throughput_rps()),
            f3(lat.ttft.p50),
            f3(lat.ttft.p99),
            format!("{:.4}", lat.tpot.p99),
            f2(lat.e2e.p99),
            format!("{:.1}%", 100.0 * p.attainment),
            f3(p.goodput_rps),
        ]);
    }
    out.push_str(&t.render());
    out
}

/// Render a sweep as machine-readable JSON (the `serving` bin's
/// `--json` output): every point with its throughput, latency
/// percentiles, attainment, and goodput — diffable and plottable
/// without table parsing.
pub fn to_json(sweep: &ServingSweep) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"label\": \"{}\",\n", jsonfmt::esc(&sweep.label)));
    out.push_str(&format!("  \"workload\": \"{}\",\n", jsonfmt::esc(&sweep.workload)));
    out.push_str(&format!("  \"slo\": {},\n", jsonfmt::slo(sweep.slo)));
    out.push_str(&format!("  \"capacity_rps\": {},\n", jsonfmt::num(sweep.capacity_rps)));
    out.push_str("  \"points\": [\n");
    for (i, p) in sweep.points.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"load_multiplier\": {}, \"offered_rps\": {}, \"throughput_rps\": {}, \
             \"attainment\": {}, \"goodput_rps\": {}, \"latency\": {}}}{}\n",
            jsonfmt::num(p.load_multiplier),
            jsonfmt::num(p.offered_rps),
            jsonfmt::num(p.report.throughput_rps()),
            jsonfmt::num(p.attainment),
            jsonfmt::num(p.goodput_rps),
            jsonfmt::latency_stats(p.report.latency.as_ref()),
            if i + 1 < sweep.points.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_sweep(runner: &SweepRunner) -> ServingSweep {
        let engine = default_engine();
        let base = WorkloadGen::constant(768, 48).generate(24);
        sweep_with(
            runner,
            &engine as &dyn OnlineEngine,
            "const",
            &base,
            &[0.25, 1.0, 4.0],
            DEFAULT_SLO,
            42,
        )
    }

    #[test]
    fn attainment_is_monotone_nonincreasing_in_offered_load() {
        let sweep = small_sweep(&SweepRunner::serial());
        assert_eq!(sweep.points.len(), 3);
        for w in sweep.points.windows(2) {
            assert!(
                w[1].attainment <= w[0].attainment + 1e-12,
                "attainment must not rise with load: {} -> {}",
                w[0].attainment,
                w[1].attainment
            );
        }
        let light = &sweep.points[0];
        assert!(
            (light.attainment - 1.0).abs() < 1e-12,
            "quarter-capacity load must meet the default SLO, got {}",
            light.attainment
        );
    }

    #[test]
    fn sweep_is_byte_identical_across_job_counts() {
        let serial = small_sweep(&SweepRunner::serial());
        let parallel = small_sweep(&SweepRunner::new(4));
        assert_eq!(serial, parallel);
        assert_eq!(render(&serial), render(&parallel));
    }

    #[test]
    fn overload_degrades_ttft_not_throughput_floor() {
        let sweep = small_sweep(&SweepRunner::serial());
        let (light, heavy) = (&sweep.points[0], &sweep.points[2]);
        let (l, h) = (
            light.report.latency.unwrap(),
            heavy.report.latency.unwrap(),
        );
        assert!(
            h.ttft.p99 > l.ttft.p99,
            "overload must queue: p99 TTFT {} vs {}",
            h.ttft.p99,
            l.ttft.p99
        );
        // Every point completes the full request set.
        for p in &sweep.points {
            assert_eq!(p.report.stats.requests, 24);
        }
    }
}
