//! Minimal hand-rolled JSON rendering for the `--json` outputs of the
//! `serving` and `fleet` bins.
//!
//! The vendored `serde` is a no-op marker stand-in (this build
//! environment has no network, see `vendor/serde`), so sweeps render
//! their JSON explicitly — the same approach `perf_report` uses for
//! `BENCH_sweep.json`. Numbers are fixed-precision so output diffs
//! cleanly across runs and platforms.

use seesaw_workload::{LatencyStats, LatencySummary, SloSpec};

/// Escape a string for a JSON string literal.
pub fn esc(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// A finite number at 6 decimal places; `null` otherwise (JSON has no
/// NaN/inf).
pub fn num(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.6}")
    } else {
        "null".into()
    }
}

/// One latency marginal as an object.
pub fn latency_summary(l: &LatencySummary) -> String {
    format!(
        "{{\"mean\": {}, \"p50\": {}, \"p90\": {}, \"p99\": {}, \"max\": {}}}",
        num(l.mean),
        num(l.p50),
        num(l.p90),
        num(l.p99),
        num(l.max)
    )
}

/// Full latency statistics as an object (`null` when absent).
pub fn latency_stats(l: Option<&LatencyStats>) -> String {
    match l {
        None => "null".into(),
        Some(l) => format!(
            "{{\"count\": {}, \"ttft\": {}, \"tpot\": {}, \"e2e\": {}}}",
            l.count,
            latency_summary(&l.ttft),
            latency_summary(&l.tpot),
            latency_summary(&l.e2e)
        ),
    }
}

/// An SLO as an object.
pub fn slo(s: SloSpec) -> String {
    format!(
        "{{\"ttft_s\": {}, \"tpot_s\": {}}}",
        num(s.ttft_s),
        num(s.tpot_s)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_and_formats() {
        assert_eq!(esc(r#"a"b\c"#), r#"a\"b\\c"#);
        assert_eq!(num(0.5), "0.500000");
        assert_eq!(num(f64::NAN), "null");
        assert_eq!(num(f64::INFINITY), "null");
    }

    #[test]
    fn summary_shape() {
        let l = LatencySummary { mean: 1.0, p50: 1.0, p90: 2.0, p99: 3.0, max: 3.5 };
        let s = latency_summary(&l);
        assert!(s.starts_with('{') && s.ends_with('}'));
        assert!(s.contains("\"p99\": 3.000000"));
        assert_eq!(latency_stats(None), "null");
    }
}
