//! Minimal hand-rolled JSON rendering for the `--json` outputs of the
//! `serving` and `fleet` bins.
//!
//! The vendored `serde` is a no-op marker stand-in (this build
//! environment has no network, see `vendor/serde`), so sweeps render
//! their JSON explicitly — the same approach `perf_report` uses for
//! `BENCH_sweep.json`. Numbers are fixed-precision so output diffs
//! cleanly across runs and platforms.

use seesaw_workload::{LatencyStats, LatencySummary, SloSpec};

/// Escape a string for a JSON string literal, per RFC 8259: quotes,
/// backslashes, and *every* control character below U+0020 (a raw
/// newline or tab in a label would corrupt the whole document).
/// Delegates to the telemetry exporter's escaper so the two JSON
/// writers can never drift.
pub fn esc(s: &str) -> String {
    seesaw_telemetry::perfetto::esc(s)
}

/// A finite number at 6 decimal places; `null` otherwise (JSON has no
/// NaN/inf).
pub fn num(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.6}")
    } else {
        "null".into()
    }
}

/// One latency marginal as an object.
pub fn latency_summary(l: &LatencySummary) -> String {
    format!(
        "{{\"mean\": {}, \"p50\": {}, \"p90\": {}, \"p99\": {}, \"max\": {}}}",
        num(l.mean),
        num(l.p50),
        num(l.p90),
        num(l.p99),
        num(l.max)
    )
}

/// Full latency statistics as an object (`null` when absent).
pub fn latency_stats(l: Option<&LatencyStats>) -> String {
    match l {
        None => "null".into(),
        Some(l) => format!(
            "{{\"count\": {}, \"ttft\": {}, \"tpot\": {}, \"e2e\": {}}}",
            l.count,
            latency_summary(&l.ttft),
            latency_summary(&l.tpot),
            latency_summary(&l.e2e)
        ),
    }
}

/// An SLO as an object.
pub fn slo(s: SloSpec) -> String {
    format!(
        "{{\"ttft_s\": {}, \"tpot_s\": {}}}",
        num(s.ttft_s),
        num(s.tpot_s)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_and_formats() {
        assert_eq!(esc(r#"a"b\c"#), r#"a\"b\\c"#);
        assert_eq!(num(0.5), "0.500000");
        assert_eq!(num(f64::NAN), "null");
        assert_eq!(num(f64::INFINITY), "null");
    }

    /// A pathological label with every escape class RFC 8259 names:
    /// quote, backslash, the short-form control characters, and a raw
    /// C0 control that needs the `\u00XX` form.
    #[test]
    fn esc_handles_control_characters() {
        assert_eq!(
            esc("a\"b\\c\nd\te\rf\u{0008}g\u{000C}h\u{0001}i"),
            "a\\\"b\\\\c\\nd\\te\\rf\\bg\\fh\\u0001i"
        );
        // The escaped form parses back as a JSON string: no raw
        // control characters survive.
        assert!(esc("x\u{0000}y\u{001f}z").chars().all(|c| (c as u32) >= 0x20));
    }

    #[test]
    fn summary_shape() {
        let l = LatencySummary { mean: 1.0, p50: 1.0, p90: 2.0, p99: 3.0, max: 3.5 };
        let s = latency_summary(&l);
        assert!(s.starts_with('{') && s.ends_with('}'));
        assert!(s.contains("\"p99\": 3.000000"));
        assert_eq!(latency_stats(None), "null");
    }
}
