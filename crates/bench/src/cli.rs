//! Shared argument parsing for the sweep binaries
//! (`all_figures [subsample] [--jobs N]`,
//! `perf_report [subsample] [--jobs N] [--out PATH]`).

/// Parsed sweep-binary arguments.
#[derive(Debug, Clone)]
pub struct SweepArgs {
    /// Divisor of the paper's request counts.
    pub subsample: usize,
    /// Explicit worker count (`None` = environment's choice).
    pub jobs: Option<usize>,
    /// `--out PATH`, when the binary accepts it.
    pub out: Option<String>,
    /// `--baseline PATH`, when the binary accepts `--out` (regression
    /// gate against a committed artifact).
    pub baseline: Option<String>,
}

/// Parse `std::env::args`: an optional positional `subsample`
/// (defaulting to `default_subsample`), `--jobs`/`-j N` (N ≥ 1), and
/// — only when `accept_out` — `--out`/`-o PATH` and
/// `--baseline`/`-b PATH`. Prints `usage` and exits 2 on anything
/// malformed.
pub fn parse_sweep_args(usage: &str, default_subsample: usize, accept_out: bool) -> SweepArgs {
    let mut parsed = SweepArgs {
        subsample: default_subsample,
        jobs: None,
        out: None,
        baseline: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--jobs" | "-j" => {
                parsed.jobs = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n > 0)
                    .or_else(|| {
                        eprintln!("--jobs needs a positive integer");
                        std::process::exit(2);
                    });
            }
            "--out" | "-o" if accept_out => {
                parsed.out = args.next().or_else(|| {
                    eprintln!("--out needs a path");
                    std::process::exit(2);
                });
            }
            "--baseline" | "-b" if accept_out => {
                parsed.baseline = args.next().or_else(|| {
                    eprintln!("--baseline needs a path");
                    std::process::exit(2);
                });
            }
            other => match other.parse() {
                Ok(n) => parsed.subsample = n,
                Err(_) => {
                    eprintln!("usage: {usage}");
                    std::process::exit(2);
                }
            },
        }
    }
    parsed
}
