//! Chaos harness: the default failure-injected day, its fault ×
//! recovery cost-vs-SLO-vs-availability frontier, and the table/JSON
//! renderings (the `chaos` bin).
//!
//! The scenario reuses the autoscale tier's diurnal day end to end —
//! same capacity probe, same envelope, same seeds — and replays it
//! under a roster of failure models (none, independent kills,
//! kills + correlated rack outages) crossed with recovery postures
//! (a bare static fleet that never heals, the same fleet with
//! replacement spawns, and the reactive controller with replacement).
//! The headline comparison: with failures on, a reactive policy with
//! replacement should recover most of the no-failure attainment,
//! while the bare static fleet measurably does not — and in every
//! cell `completed + failed == offered` reconciles exactly (nothing
//! is silently dropped).
//!
//! Everything is deterministic and byte-identical across `--jobs`:
//! fault schedules are resolved from their seeds before the replay,
//! and all requeue decisions happen on the serial causal trajectory.

use crate::autoscale::{
    default_traces, scenario_json, ScenarioSpec, CAPACITY_PROBE_REQUESTS,
};
use crate::jsonfmt;
use crate::serving::{default_engine_of, default_specs, DEFAULT_SLO};
use crate::table::{f2, f3, Table};
use seesaw_autoscale::{AutoscaleConfig, ElasticFleetReport, RetryPolicy, ScalingPolicy};
use seesaw_chaos::{
    chaos_sweep_with, ChaosController, ChaosFrontier, ChaosPoint, FaultPlan, RecoverySpec,
};
use seesaw_engine::SweepRunner;
use seesaw_fleet::offline_capacity;
use seesaw_telemetry::{Instrument, MetricsRegistry};
use seesaw_workload::WorkloadGen;

/// Failure-model knobs of the default chaos scenario, expressed per
/// *day* so a compressed `--day` keeps the same number of expected
/// faults (the plan itself works in per-hour rates over the actual
/// horizon).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosSpec {
    /// Seed of the fault plan's event streams.
    pub fault_seed: u64,
    /// Expected independent replica kills over the day.
    pub kills_per_day: f64,
    /// Expected correlated group outages over the day.
    pub outages_per_day: f64,
    /// Rack/zone groups replica indices stripe across.
    pub groups: usize,
    /// Failure-detection delay before lost work requeues, seconds.
    pub detect_s: f64,
    /// Retry behaviour for lost requests.
    pub retry: RetryPolicy,
}

impl Default for ChaosSpec {
    fn default() -> Self {
        ChaosSpec {
            fault_seed: crate::SEED,
            kills_per_day: 8.0,
            outages_per_day: 1.0,
            groups: 2,
            detect_s: 10.0,
            // More patient than `RetryPolicy::default()`: replacement
            // capacity arrives at a window boundary plus warm-up (up
            // to ~360 s dark after a trough kill on the default
            // config), so the retry span must outlive that blackout
            // or every trough arrival burns its attempts against a
            // dead fleet. 12 attempts at detect 10 s with 2→60 s
            // exponential backoff spans ~470 s.
            retry: RetryPolicy {
                max_attempts: 12,
                backoff_base_s: 2.0,
                backoff_cap_s: 60.0,
                deadline_s: 600.0,
            },
        }
    }
}

impl ChaosSpec {
    /// The per-hour fault plan realizing `kills_per_day` (and
    /// optionally `outages_per_day`) over a `day_s`-second trace.
    pub fn plan(&self, day_s: f64, with_outages: bool) -> FaultPlan {
        FaultPlan {
            seed: self.fault_seed,
            kills_per_hour: self.kills_per_day * 3600.0 / day_s,
            outages_per_hour: if with_outages {
                self.outages_per_day * 3600.0 / day_s
            } else {
                0.0
            },
            groups: self.groups,
            detect_s: self.detect_s,
        }
    }

    /// The default failure roster: a fault-free control row, then
    /// independent kills, then kills plus correlated outages (the
    /// outage row only when the rate is positive).
    pub fn fault_roster(&self, day_s: f64) -> Vec<(String, FaultPlan)> {
        let mut roster = vec![
            ("none".to_string(), FaultPlan::none()),
            (
                format!("kills-{:.0}/day", self.kills_per_day),
                self.plan(day_s, false),
            ),
        ];
        if self.outages_per_day > 0.0 {
            roster.push((
                format!(
                    "kills+outages-{:.0}/day",
                    self.kills_per_day + self.outages_per_day
                ),
                self.plan(day_s, true),
            ));
        }
        roster
    }

    /// The default recovery roster for a day peaking at `peak_mult` ×
    /// per-replica capacity: the bare provision-for-peak static fleet
    /// (never heals — the fragility baseline), the same fleet with
    /// replacement spawns, and the reactive controller with
    /// replacement.
    pub fn recovery_roster(&self, peak_mult: f64) -> Vec<RecoverySpec> {
        let n_peak = (peak_mult.ceil() as usize).max(1);
        vec![
            RecoverySpec {
                policy: ScalingPolicy::Static { n: n_peak },
                replace_failures: false,
                retry: self.retry,
            },
            RecoverySpec {
                policy: ScalingPolicy::Static { n: n_peak },
                replace_failures: true,
                retry: self.retry,
            },
            RecoverySpec {
                policy: ScalingPolicy::reactive_default(),
                replace_failures: true,
                retry: self.retry,
            },
        ]
    }
}

/// Run the default chaos frontier: measure capacity, shape the
/// diurnal day (the autoscale scenario's first trace), and sweep the
/// fault × recovery grid. `config.capacity_rps` is overwritten with
/// the measured value.
pub fn default_chaos_frontier_with(
    runner: &SweepRunner,
    spec: &ScenarioSpec,
    chaos: &ChaosSpec,
    mut config: AutoscaleConfig,
) -> ChaosFrontier {
    let (cluster, model) = default_specs();
    let build = |_: usize| default_engine_of(spec.kind, &cluster, &model);
    let probe = WorkloadGen::sharegpt(spec.seed).generate(CAPACITY_PROBE_REQUESTS);
    let (capacity_rps, label) = offline_capacity(&build, &probe);
    config.capacity_rps = capacity_rps;
    let traces = default_traces(spec, capacity_rps);
    let (trace_name, requests) = &traces[0];
    let faults = chaos.fault_roster(spec.day_s);
    let recoveries = chaos.recovery_roster(spec.peak_mult);
    chaos_sweep_with(
        runner,
        &build,
        config,
        &faults,
        &recoveries,
        (trace_name, requests),
        (capacity_rps, &label),
    )
}

/// One chaos cell run with the telemetry recorder on: the dedicated
/// observability cell behind the `chaos` bin's `--trace-out` flag.
#[derive(Debug)]
pub struct ObservedChaosCell {
    /// Fault-model name of the traced run.
    pub fault: String,
    /// Recovery-posture name of the traced run.
    pub recovery: String,
    /// The (telemetry-identical) elastic-fleet report.
    pub report: ElasticFleetReport,
    /// The run's Perfetto/Chrome trace-event JSON.
    pub trace_json: String,
    /// The run's metric snapshot (for the `--json` telemetry block).
    pub metrics: MetricsRegistry,
}

/// Run one dedicated chaos cell — independent kills against the
/// reactive-with-replacement posture on the diurnal day — with the
/// telemetry recorder on, and render its Perfetto trace (kill and
/// retry markers land on the controller track). Recorded bytes are
/// sim-time only, so the trace is byte-identical for every `--jobs`
/// value.
pub fn observed_chaos_cell_with(
    runner: &SweepRunner,
    spec: &ScenarioSpec,
    chaos: &ChaosSpec,
    mut config: AutoscaleConfig,
) -> ObservedChaosCell {
    let (cluster, model) = default_specs();
    let build = |_: usize| default_engine_of(spec.kind, &cluster, &model);
    let probe = WorkloadGen::sharegpt(spec.seed).generate(CAPACITY_PROBE_REQUESTS);
    let (capacity_rps, _) = offline_capacity(&build, &probe);
    config.capacity_rps = capacity_rps;
    let traces = default_traces(spec, capacity_rps);
    let (_, requests) = &traces[0];
    let plan = chaos.plan(spec.day_s, false);
    let fault = format!("kills-{:.0}/day", chaos.kills_per_day);
    let recovery = RecoverySpec {
        policy: ScalingPolicy::reactive_default(),
        replace_failures: true,
        retry: chaos.retry,
    };
    let recovery_name = recovery.to_string();
    let mut instr = Instrument::tracing();
    let report = ChaosController::new(config, plan, recovery).run_instrumented_with(
        runner, &build, requests, &mut instr,
    );
    instr.snapshot_drops();
    let trace_json = seesaw_telemetry::perfetto::render(&instr.recorder, "chaos");
    ObservedChaosCell {
        fault,
        recovery: recovery_name,
        report,
        trace_json,
        metrics: instr.metrics,
    }
}

/// A miniature chaos frontier (small day, small windows) for tests
/// and the sims/sec benchmark: same code path as the default scenario
/// at a fraction of the volume.
pub fn mini_chaos_frontier_with(
    runner: &SweepRunner,
    day_s: f64,
    faults: &[(String, FaultPlan)],
    recoveries: &[RecoverySpec],
    seed: u64,
) -> ChaosFrontier {
    let spec = ScenarioSpec { day_s, seed, ..ScenarioSpec::default() };
    let (cluster, model) = default_specs();
    let build = |_: usize| default_engine_of(spec.kind, &cluster, &model);
    let probe = WorkloadGen::sharegpt(seed).generate(64);
    let (capacity_rps, label) = offline_capacity(&build, &probe);
    let config = AutoscaleConfig {
        window_s: (day_s / 12.0).max(1.0),
        warmup_s: (day_s / 48.0).max(0.5),
        min_replicas: 1,
        max_replicas: 8,
        slo: DEFAULT_SLO,
        capacity_rps,
        ..AutoscaleConfig::default()
    };
    let traces = default_traces(&spec, capacity_rps);
    let (trace_name, requests) = &traces[0];
    chaos_sweep_with(
        runner,
        &build,
        config,
        faults,
        recoveries,
        (trace_name, requests),
        (capacity_rps, &label),
    )
}

/// Render the frontier as the `chaos` bin's table: cost and SLO
/// columns like the autoscale frontier, plus the availability
/// accounting (kills, lost/retried/failed requests, retry
/// amplification, blackout seconds).
pub fn render_chaos(frontier: &ChaosFrontier) -> String {
    let cfg = &frontier.config;
    let mut out = format!(
        "\n=== chaos: fault x recovery cost-vs-SLO-vs-availability frontier \
         ({} replicas, {} trace) ===\n\
         per-replica capacity (offline probe) = {} rps; SLO: TTFT <= {}s, TPOT <= {}s\n\
         window {}s, warm-up {}s, replicas {}..{}, {} routing; \
         attainment counts failed requests against the SLO\n",
        frontier.label,
        frontier.trace,
        f3(frontier.capacity_rps),
        cfg.slo.ttft_s,
        cfg.slo.tpot_s,
        cfg.window_s,
        cfg.warmup_s,
        cfg.min_replicas,
        cfg.max_replicas,
        cfg.router,
    );
    let mut t = Table::new(&[
        "fault",
        "recovery",
        "requests",
        "replica-s",
        "mean N",
        "killed",
        "lost",
        "retried",
        "failed",
        "retry amp",
        "dark s",
        "SLO att",
        "goodput",
    ]);
    for p in &frontier.points {
        t.row(&[
            p.fault.clone(),
            p.recovery.clone(),
            p.n_requests.to_string(),
            format!("{:.0}", p.replica_seconds),
            f2(p.mean_replicas),
            p.replicas_killed.to_string(),
            p.lost_attempts.to_string(),
            p.retries.to_string(),
            p.failed.to_string(),
            format!("{:.3}x", p.retry_amplification),
            format!("{:.0}", p.unavailability_s),
            format!("{:.1}%", 100.0 * p.attainment),
            f3(p.goodput_rps),
        ]);
    }
    out.push_str(&t.render());
    out
}

/// Render the detection frontier: how the burn-rate rule's alert
/// stream lines up against each cell's injected correlated outages.
/// The `"none"` fault row is the false-positive column — a clean day
/// must not page. Rows where the whole fleet dies and nothing heals
/// expose the attainment-burn blind spot: no completions means no
/// windowed arrivals, so the burn reads 0 while the fleet is dark
/// (the `dark s` column of the availability table catches what the
/// pager misses).
pub fn render_detection_frontier(frontier: &ChaosFrontier) -> String {
    let mut out = format!(
        "\n=== chaos: fault-detection frontier (rule {}) ===\n\
         fires matched to correlated outages; detection latency from outage to fire\n",
        frontier.alert_rule,
    );
    let mut t = Table::new(&[
        "fault",
        "recovery",
        "outages",
        "detected",
        "missed",
        "median detect s",
        "false fires",
    ]);
    for p in &frontier.points {
        let d = &p.detection;
        t.row(&[
            p.fault.clone(),
            p.recovery.clone(),
            d.outages.to_string(),
            d.detected.to_string(),
            d.missed.to_string(),
            d.median_latency_s.map_or("-".into(), |l| format!("{:.0}", l)),
            d.false_fires.to_string(),
        ]);
    }
    out.push_str(&t.render());
    out
}

/// Render one cell's per-window availability trajectory: live
/// replicas and accepting capacity against arrivals, kills, and the
/// measured windowed attainment.
pub fn render_chaos_timeline(point: &ChaosPoint) -> String {
    let r = &point.report;
    let mut out = format!(
        "\n=== chaos: {} under {} — per-window availability ===\n",
        point.recovery, point.fault
    );
    let mut t = Table::new(&[
        "window",
        "offered rps",
        "ready",
        "live",
        "kills",
        "capacity s",
        "arrivals",
        "SLO att (measured)",
    ]);
    for ((s, m), cap) in r
        .windows
        .iter()
        .zip(&r.windowed)
        .zip(&r.availability.window_capacity_s)
    {
        t.row(&[
            format!("{:>6.0}s", s.t0),
            f3(s.offered_rps),
            s.ready.to_string(),
            s.provisioned.to_string(),
            s.failures.to_string(),
            format!("{:.0}", cap),
            s.arrivals.to_string(),
            m.attainment
                .map_or("-".into(), |a| format!("{:.1}%", 100.0 * a)),
        ]);
    }
    out.push_str(&t.render());
    out
}

/// The frontier as one machine-readable JSON document (the `chaos`
/// bin's `--json` output). The header echoes the full scenario
/// (engine, day shape, workload seed), the controller config, and the
/// retry policy; every point carries its complete fault plan (seed
/// and rates) — so any frontier point is reproducible from the
/// document alone.
pub fn to_json(frontier: &ChaosFrontier, spec: &ScenarioSpec, chaos: &ChaosSpec) -> String {
    to_json_with_telemetry(frontier, spec, chaos, None)
}

/// [`to_json`] with an optional `telemetry` metrics block (present
/// only when a telemetry-enabled run produced one — the plain
/// document stays byte-identical to pre-telemetry output).
pub fn to_json_with_telemetry(
    frontier: &ChaosFrontier,
    spec: &ScenarioSpec,
    chaos: &ChaosSpec,
    telemetry: Option<&MetricsRegistry>,
) -> String {
    let cfg = &frontier.config;
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"label\": \"{}\",\n", jsonfmt::esc(&frontier.label)));
    out.push_str(&format!("  \"trace\": \"{}\",\n", jsonfmt::esc(&frontier.trace)));
    out.push_str(&format!(
        "  \"capacity_rps\": {},\n",
        jsonfmt::num(frontier.capacity_rps)
    ));
    out.push_str(&format!("  \"scenario\": {},\n", scenario_json(spec)));
    out.push_str(&format!(
        "  \"config\": {{\"window_s\": {}, \"warmup_s\": {}, \"min_replicas\": {}, \
         \"max_replicas\": {}, \"router\": \"{}\", \"slo\": {}}},\n",
        jsonfmt::num(cfg.window_s),
        jsonfmt::num(cfg.warmup_s),
        cfg.min_replicas,
        cfg.max_replicas,
        jsonfmt::esc(&cfg.router.to_string()),
        jsonfmt::slo(cfg.slo),
    ));
    out.push_str(&format!(
        "  \"retry\": {{\"max_attempts\": {}, \"backoff_base_s\": {}, \
         \"backoff_cap_s\": {}, \"deadline_s\": {}, \"detect_s\": {}}},\n",
        chaos.retry.max_attempts,
        jsonfmt::num(chaos.retry.backoff_base_s),
        jsonfmt::num(chaos.retry.backoff_cap_s),
        jsonfmt::num(chaos.retry.deadline_s),
        jsonfmt::num(chaos.detect_s),
    ));
    out.push_str("  \"points\": [\n");
    for (i, p) in frontier.points.iter().enumerate() {
        // Every point repeats the router policy and workload seed so
        // a single extracted point stays reproducible without the
        // document header (the plan's own seed covers the faults).
        out.push_str(&format!(
            "    {{\"fault\": \"{}\", \"recovery\": \"{}\", \
             \"router\": \"{}\", \"seed\": {}, \
             \"plan\": {{\"seed\": {}, \"kills_per_hour\": {}, \"outages_per_hour\": {}, \
             \"groups\": {}, \"detect_s\": {}}}, \
             \"n_requests\": {}, \"completed\": {}, \"failed\": {}, \"lost_attempts\": {}, \
             \"retries\": {}, \"replicas_killed\": {}, \"retry_amplification\": {}, \
             \"unavailability_s\": {}, \"replica_seconds\": {}, \"mean_replicas\": {}, \
             \"peak_replicas\": {}, \"attainment\": {}, \"goodput_rps\": {}, \
             \"detection\": {{\"rule\": \"{}\", \"outages\": {}, \"detected\": {}, \
             \"missed\": {}, \"median_latency_s\": {}, \"false_fires\": {}}}, \
             \"latency\": {}}}{}\n",
            jsonfmt::esc(&p.fault),
            jsonfmt::esc(&p.recovery),
            jsonfmt::esc(&cfg.router.to_string()),
            spec.seed,
            p.plan.seed,
            jsonfmt::num(p.plan.kills_per_hour),
            jsonfmt::num(p.plan.outages_per_hour),
            p.plan.groups,
            jsonfmt::num(p.plan.detect_s),
            p.n_requests,
            p.completed,
            p.failed,
            p.lost_attempts,
            p.retries,
            p.replicas_killed,
            jsonfmt::num(p.retry_amplification),
            jsonfmt::num(p.unavailability_s),
            jsonfmt::num(p.replica_seconds),
            jsonfmt::num(p.mean_replicas),
            p.peak_replicas,
            jsonfmt::num(p.attainment),
            jsonfmt::num(p.goodput_rps),
            jsonfmt::esc(&frontier.alert_rule),
            p.detection.outages,
            p.detection.detected,
            p.detection.missed,
            p.detection.median_latency_s.map_or("null".to_string(), jsonfmt::num),
            p.detection.false_fires,
            jsonfmt::latency_stats(p.report.fleet.latency.as_ref()),
            if i + 1 < frontier.points.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]");
    if let Some(m) = telemetry {
        out.push_str(&format!(",\n  \"telemetry\": {}", m.render_json()));
    }
    out.push_str("\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use seesaw_autoscale::{
        score_detection, AutoscaleController, FaultEvent, FaultKind, FaultSchedule,
    };

    /// The acceptance bar for the default burn-rate rule: every
    /// injected correlated outage fires within
    /// `detect_s + 2 control windows`, and the same fleet's fault-free
    /// day never pages. Outages are placed in loaded windows — a
    /// burn-rate pager watches *user impact*, so an outage the fleet's
    /// headroom fully absorbs is (correctly) invisible to it.
    #[test]
    fn default_rule_detects_loaded_outages_and_stays_quiet_fault_free() {
        let day_s = 1200.0;
        let spec = ScenarioSpec { day_s, seed: 42, ..ScenarioSpec::default() };
        let (cluster, model) = default_specs();
        let build = |_: usize| default_engine_of(spec.kind, &cluster, &model);
        let probe = WorkloadGen::sharegpt(42).generate(64);
        let (capacity_rps, _) = offline_capacity(&build, &probe);
        let config = AutoscaleConfig {
            window_s: 100.0,
            warmup_s: 25.0,
            min_replicas: 1,
            max_replicas: 8,
            slo: DEFAULT_SLO,
            capacity_rps,
            ..AutoscaleConfig::default()
        };
        let traces = default_traces(&spec, capacity_rps);
        let (_, requests) = &traces[0];
        let controller =
            AutoscaleController::new(config, ScalingPolicy::Static { n: 5 });
        let runner = SweepRunner::new(4);

        let clean = controller.run_with(&runner, &build, requests);
        assert!(
            clean.alerts.is_empty(),
            "fault-free day must not page: {:?}",
            clean.alerts
        );

        // Two group outages in loaded windows: one on the morning
        // ramp, one on the evening shoulder, separated enough for the
        // first alert to clear before the second outage strikes.
        let schedule = FaultSchedule {
            events: vec![
                FaultEvent { t_s: 405.0, kind: FaultKind::GroupOutage { group: 0 } },
                FaultEvent { t_s: 710.0, kind: FaultKind::GroupOutage { group: 1 } },
            ],
            groups: 2,
            detect_s: 10.0,
            retry: ChaosSpec::default().retry,
            replace_failures: true,
        };
        let faulted = controller.run_faulted_with(&runner, &build, requests, &schedule);
        let score = score_detection(&faulted.alerts, &schedule);
        assert_eq!(score.outages, 2);
        assert_eq!(score.missed, 0, "alerts: {:?}", faulted.alerts);
        assert_eq!(score.false_fires, 0, "alerts: {:?}", faulted.alerts);
        let median = score.median_latency_s.expect("detected outages have a latency");
        assert!(
            median <= schedule.detect_s + 2.0 * config.window_s,
            "median detection latency {median}s exceeds detect + 2 windows"
        );
    }

    #[test]
    fn rosters_cover_the_default_grid() {
        let chaos = ChaosSpec::default();
        let faults = chaos.fault_roster(86_400.0);
        assert_eq!(faults.len(), 3);
        assert_eq!(faults[0].0, "none");
        assert!(faults[0].1.is_empty());
        assert!((faults[1].1.kills_per_hour - 8.0 / 24.0).abs() < 1e-12);
        assert_eq!(faults[1].1.outages_per_hour, 0.0);
        assert!(faults[2].1.outages_per_hour > 0.0);
        // A compressed day keeps the same expected fault count.
        let compressed = chaos.plan(120.0, false);
        assert!((compressed.kills_per_hour * 120.0 / 3600.0 - 8.0).abs() < 1e-9);
        let recoveries = chaos.recovery_roster(5.0);
        assert_eq!(recoveries.len(), 3);
        assert_eq!(recoveries[0].to_string(), "static-5");
        assert_eq!(recoveries[1].to_string(), "static-5+replace");
        assert_eq!(recoveries[2].to_string(), "reactive+replace");
        // No outage row when the rate is zero.
        let no_outages = ChaosSpec { outages_per_day: 0.0, ..chaos };
        assert_eq!(no_outages.fault_roster(86_400.0).len(), 2);
    }

    #[test]
    fn mini_chaos_frontier_renders_and_is_jobs_invariant() {
        let chaos = ChaosSpec {
            kills_per_day: 3.0,
            outages_per_day: 0.0,
            detect_s: 2.0,
            ..ChaosSpec::default()
        };
        let faults = chaos.fault_roster(120.0);
        let recoveries = [
            RecoverySpec::bare_static(3),
            RecoverySpec::healing(ScalingPolicy::reactive_default()),
        ];
        let run = |runner: &SweepRunner| {
            mini_chaos_frontier_with(runner, 120.0, &faults, &recoveries, 42)
        };
        let serial = run(&SweepRunner::serial());
        let parallel = run(&SweepRunner::new(4));
        let spec = ScenarioSpec { day_s: 120.0, seed: 42, ..ScenarioSpec::default() };
        assert_eq!(serial, parallel, "chaos frontier must be byte-identical across --jobs");
        assert_eq!(render_chaos(&serial), render_chaos(&parallel));
        assert_eq!(to_json(&serial, &spec, &chaos), to_json(&parallel, &spec, &chaos));
        assert_eq!(serial.points.len(), 4, "2 faults x 2 recoveries");
        // The fault-free column equals the plain autoscale numbers:
        // clean availability and no retries.
        for p in serial.points.iter().filter(|p| p.fault == "none") {
            assert_eq!(p.failed, 0);
            assert_eq!(p.retries, 0);
            assert_eq!(p.replicas_killed, 0);
            assert_eq!(p.completed, p.n_requests);
        }
        // Every cell reconciles.
        for p in &serial.points {
            assert_eq!(p.completed + p.failed, p.n_requests, "{}/{}", p.fault, p.recovery);
        }
        let rendered = render_chaos(&serial);
        assert!(rendered.contains("retry amp"));
        assert!(rendered.contains("reactive+replace"));
        // Detection scoring rides along on every cell: a kills-only
        // grid injects no correlated outages, so nothing can be
        // detected or missed.
        let det = render_detection_frontier(&serial);
        assert!(det.contains("fault-detection frontier"));
        assert!(det.contains(&serial.alert_rule));
        for p in &serial.points {
            assert_eq!(p.detection.outages, 0, "{}/{}", p.fault, p.recovery);
            assert_eq!(p.detection.missed, 0);
            assert_eq!(p.detection.median_latency_s, None);
        }
        let json = to_json(&serial, &spec, &chaos);
        assert!(json.contains("\"detection\""));
        assert!(json.contains("\"false_fires\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(json.contains("\"plan\""));
        assert!(json.contains("\"retry\""));
        assert!(json.contains("\"scenario\""));
        assert!(!json.contains("NaN"));
        // Every point repeats the router and workload seed (one
        // "router" in the config header, one per point; the workload
        // seed appears in the scenario echo, once per point, and in
        // any fault plan that happens to share the seed value).
        assert_eq!(json.matches("\"router\": \"").count(), 1 + serial.points.len());
        assert!(json.matches("\"seed\": 42").count() >= 1 + serial.points.len());
        // The availability timeline renders for any cell.
        let tl = render_chaos_timeline(&serial.points[3]);
        assert!(tl.contains("per-window availability"));
        assert!(tl.contains("capacity s"));
    }
}
