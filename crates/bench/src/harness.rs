//! Sweep harness: the tuned-vLLM baseline and the auto-probed Seesaw
//! run used by the end-to-end figures.
//!
//! Every function has a `*_with` variant taking an explicit
//! [`SweepRunner`]; the plain variants resolve the job count from the
//! environment (`SEESAW_JOBS` / `RAYON_NUM_THREADS`, else all cores).
//! Parallel and serial runners produce identical reports in identical
//! order — candidates are independent simulations and results are
//! collected by candidate index.

use seesaw_engine::seesaw::{SeesawEngine, SeesawSpec};
use seesaw_engine::vllm::VllmEngine;
use seesaw_engine::{EngineReport, OnlineEngine, SchedulingPolicy, SweepRunner};
use seesaw_hw::ClusterSpec;
use seesaw_model::ModelConfig;
use seesaw_parallel::feasible;
use seesaw_workload::Request;
use std::sync::Arc;

/// Policies included in the baseline sweep. The paper enables chunked
/// prefill for vLLM and tunes the chunk size (§6.1), so the sweep
/// covers plain prefill-prioritizing plus two chunk sizes.
pub fn baseline_policies() -> Vec<SchedulingPolicy> {
    vec![
        SchedulingPolicy::PrefillPrioritized,
        SchedulingPolicy::ChunkedPrefill { chunk_tokens: 512 },
        SchedulingPolicy::ChunkedPrefill { chunk_tokens: 2048 },
    ]
}

/// Run every feasible static configuration × baseline policy and
/// return all reports (used by figures that show the whole sweep).
pub fn vllm_sweep(
    cluster: &ClusterSpec,
    model: &ModelConfig,
    reqs: &[Request],
) -> Vec<EngineReport> {
    vllm_sweep_with(&SweepRunner::from_env(), cluster, model, reqs)
}

/// [`vllm_sweep`] on an explicit runner. Candidate engine runs are
/// independent simulations, so they execute concurrently; report
/// order matches the serial enumeration order exactly.
pub fn vllm_sweep_with(
    runner: &SweepRunner,
    cluster: &ClusterSpec,
    model: &ModelConfig,
    reqs: &[Request],
) -> Vec<EngineReport> {
    // One Arc'd copy of the specs shared by every candidate engine
    // (and every run's roofline + simulator), instead of a deep clone
    // per candidate. Candidates are held behind the `OnlineEngine`
    // trait — the same interface fleet replicas use — so the sweep
    // body is backend-agnostic.
    let cluster = Arc::new(cluster.clone());
    let model = Arc::new(model.clone());
    let mut engines: Vec<Box<dyn OnlineEngine>> = Vec::new();
    for cfg in feasible::feasible_configs(&model, &cluster) {
        for policy in baseline_policies() {
            if let Ok(engine) =
                VllmEngine::new(Arc::clone(&cluster), Arc::clone(&model), cfg, policy)
            {
                engines.push(Box::new(engine));
            }
        }
    }
    runner.map(&engines, |engine| engine.run(reqs))
}

/// The tuned baseline: best throughput across the sweep (what the
/// paper reports as the vLLM bar after sweeping parallelisms and
/// tuning the chunk size).
pub fn best_vllm(cluster: &ClusterSpec, model: &ModelConfig, reqs: &[Request]) -> EngineReport {
    best_vllm_with(&SweepRunner::from_env(), cluster, model, reqs)
}

/// [`best_vllm`] on an explicit runner.
pub fn best_vllm_with(
    runner: &SweepRunner,
    cluster: &ClusterSpec,
    model: &ModelConfig,
    reqs: &[Request],
) -> EngineReport {
    vllm_sweep_with(runner, cluster, model, reqs)
        .into_iter()
        .max_by(|a, b| {
            a.throughput_rps()
                .partial_cmp(&b.throughput_rps())
                .expect("finite throughput")
        })
        .expect("at least one feasible configuration")
}

/// Seesaw with its configuration pair auto-probed on a sample of the
/// workload.
pub fn seesaw_auto(cluster: &ClusterSpec, model: &ModelConfig, reqs: &[Request]) -> EngineReport {
    seesaw_auto_with(&SweepRunner::from_env(), cluster, model, reqs)
}

/// [`seesaw_auto`] on an explicit runner (the probe pairs evaluate
/// concurrently).
pub fn seesaw_auto_with(
    runner: &SweepRunner,
    cluster: &ClusterSpec,
    model: &ModelConfig,
    reqs: &[Request],
) -> EngineReport {
    let probe = &reqs[..reqs.len().min(32)];
    let spec = SeesawSpec::auto_probed_with(runner, cluster, model, probe)
        .expect("feasible Seesaw pair");
    seesaw_with(cluster, model, spec, reqs)
}

/// A Seesaw run with an explicit spec.
pub fn seesaw_with(
    cluster: &ClusterSpec,
    model: &ModelConfig,
    spec: SeesawSpec,
    reqs: &[Request],
) -> EngineReport {
    SeesawEngine::new(cluster.clone(), model.clone(), spec)
        .expect("valid spec")
        .run(reqs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use seesaw_model::presets;
    use seesaw_workload::WorkloadGen;

    #[test]
    fn best_vllm_is_max_of_sweep() {
        let cluster = ClusterSpec::a10x4();
        let m = presets::llama2_13b();
        let reqs = WorkloadGen::constant(512, 32).generate(16);
        let sweep = vllm_sweep(&cluster, &m, &reqs);
        let best = best_vllm(&cluster, &m, &reqs);
        assert!(sweep
            .iter()
            .all(|r| r.throughput_rps() <= best.throughput_rps() + 1e-12));
        assert!(sweep.len() >= 3, "sweep should cover several configs");
    }

    #[test]
    fn seesaw_auto_completes() {
        let cluster = ClusterSpec::a10x4();
        let m = presets::llama2_13b();
        let reqs = WorkloadGen::constant(1024, 64).generate(24);
        let rep = seesaw_auto(&cluster, &m, &reqs);
        assert_eq!(rep.stats.requests, 24);
    }
}
