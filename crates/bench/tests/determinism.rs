//! The parallel sweep engine's contract: a parallel runner produces
//! *byte-identical* results to the serial path — same reports, same
//! order, same rendered figures — so `--jobs N` only changes
//! wall-clock time, never output.

use seesaw_bench::figs;
use seesaw_bench::harness::{best_vllm_with, seesaw_auto_with, vllm_sweep_with};
use seesaw_engine::SweepRunner;
use seesaw_hw::ClusterSpec;
use seesaw_model::presets;
use seesaw_workload::WorkloadGen;

#[test]
fn vllm_sweep_parallel_matches_serial_reports_exactly() {
    let cluster = ClusterSpec::a10x4();
    let model = presets::llama2_13b();
    let reqs = WorkloadGen::constant(512, 32).generate(16);
    let serial = vllm_sweep_with(&SweepRunner::serial(), &cluster, &model, &reqs);
    let parallel = vllm_sweep_with(&SweepRunner::new(4), &cluster, &model, &reqs);
    assert!(serial.len() >= 3, "sweep must cover several candidates");
    // EngineReport is PartialEq over every field (stats, walls,
    // transfer accounting), so this is a bit-level comparison of the
    // simulated outcomes, in candidate order.
    assert_eq!(serial, parallel);
}

#[test]
fn tuned_baseline_and_probed_seesaw_are_runner_invariant() {
    let cluster = ClusterSpec::a10x4();
    let model = presets::llama2_13b();
    let reqs = WorkloadGen::arxiv_summarization(7).generate(24);
    let base_s = best_vllm_with(&SweepRunner::serial(), &cluster, &model, &reqs);
    let base_p = best_vllm_with(&SweepRunner::new(8), &cluster, &model, &reqs);
    assert_eq!(base_s, base_p);
    let ours_s = seesaw_auto_with(&SweepRunner::serial(), &cluster, &model, &reqs);
    let ours_p = seesaw_auto_with(&SweepRunner::new(8), &cluster, &model, &reqs);
    assert_eq!(ours_s, ours_p);
}

/// The per-thread executor/roofline-cache pools warm up after the
/// first run; re-running a whole figure grid through the warm pools
/// must reproduce the cold output byte-for-byte, serial and parallel
/// alike (fig10/fig11 are the heaviest sweep grids).
#[test]
fn pooled_rerun_is_byte_identical_for_fig10_and_fig11_grids() {
    let cold10 = figs::fig10::run_with(&SweepRunner::serial(), "a10", 64);
    let warm10 = figs::fig10::run_with(&SweepRunner::serial(), "a10", 64);
    assert_eq!(cold10, warm10, "fig10 serial rerun must not drift");
    let parallel10 = figs::fig10::run_with(&SweepRunner::new(4), "a10", 64);
    assert_eq!(cold10, parallel10, "fig10 pooled parallel must match serial");

    let cold11 = figs::fig11::run_with(&SweepRunner::serial(), 64);
    let warm11 = figs::fig11::run_with(&SweepRunner::new(4), 64);
    assert_eq!(cold11, warm11, "fig11 pooled parallel rerun must match serial");
}

/// The sims/sec scenario run repeatedly (warm executor pool, warm
/// roofline cache, shared Arc specs — exactly what `perf_report`
/// measures, via the shared `SimsBench` definition) must reproduce
/// its first report exactly.
#[test]
fn repeated_engine_runs_reproduce_the_first_report() {
    use seesaw_bench::simsbench::SimsBench;
    let bench = SimsBench::new();
    let first_seesaw = bench.run_seesaw_once();
    let first_vllm = bench.run_vllm_once();
    for _ in 0..3 {
        assert_eq!(bench.run_seesaw_once(), first_seesaw, "warm-pool rerun drifted");
        assert_eq!(bench.run_vllm_once(), first_vllm, "warm-pool rerun drifted");
    }
}

#[test]
fn figure_output_is_byte_identical_across_job_counts() {
    // A figure with an internal grid (four engine runs) rendered to
    // its final string: the user-visible artifact must not depend on
    // the worker count.
    let serial = figs::fig12::run_with(&SweepRunner::serial(), 16);
    let parallel = figs::fig12::run_with(&SweepRunner::new(4), 16);
    assert_eq!(serial, parallel);
    let serial = figs::ablations::abl_buffer_with(&SweepRunner::serial(), 24);
    let parallel = figs::ablations::abl_buffer_with(&SweepRunner::new(3), 24);
    assert_eq!(serial, parallel);
}

/// The online-serving sweep inherits the same contract: identical
/// points (reports, timelines, latency percentiles, attainment) and
/// identical rendered output for every job count, warm pools or not.
#[test]
fn serving_sweep_is_byte_identical_across_job_counts() {
    use seesaw_bench::serving;
    let run = |runner: &SweepRunner| {
        serving::default_sweep_with(runner, 48, &[0.5, 1.0, 2.0, 4.0], serving::DEFAULT_SLO, 42)
    };
    let serial = run(&SweepRunner::serial());
    let parallel = run(&SweepRunner::new(4));
    assert_eq!(serial, parallel, "serving points must be runner-invariant");
    assert_eq!(serving::render(&serial), serving::render(&parallel));
    // Warm rerun (pools and caches populated) must also reproduce.
    let warm = run(&SweepRunner::new(4));
    assert_eq!(serial, warm, "warm-pool serving rerun drifted");
}

/// The attainment knee of the `serving` bin's *default* sweep
/// (200 ShareGPT requests, the default load ladder and SLO):
/// monotone nonincreasing in offered load, starting from full
/// attainment at light load. (Tiny request sets at extreme loads can
/// wiggle by a request or two as batch boundaries shift — the
/// shipped default is the contract.)
#[test]
fn serving_attainment_knee_is_monotone() {
    use seesaw_bench::serving;
    let sweep = serving::default_sweep_with(
        &SweepRunner::from_env(),
        200,
        serving::DEFAULT_LOAD_MULTIPLIERS,
        serving::DEFAULT_SLO,
        seesaw_bench::SEED,
    );
    for w in sweep.points.windows(2) {
        assert!(
            w[1].attainment <= w[0].attainment + 1e-12,
            "attainment rose with load: {:.3} @ {:.2}x -> {:.3} @ {:.2}x",
            w[0].attainment,
            w[0].load_multiplier,
            w[1].attainment,
            w[1].load_multiplier
        );
    }
    let first = &sweep.points[0];
    let last = sweep.points.last().expect("non-empty");
    assert!((first.attainment - 1.0).abs() < 1e-12, "light load must meet the SLO");
    assert!(
        last.attainment < 0.5 * first.attainment,
        "4x overload must miss the SLO for most requests, got {}",
        last.attainment
    );
    assert!(
        last.goodput_rps < first.report.throughput_rps() + 1e-12,
        "goodput must collapse below light-load throughput under deep overload"
    );
}

/// The serving sims/sec scenario (perf_report's `serving` metric)
/// reproduces exactly across warm-pool repetitions.
#[test]
fn repeated_serving_runs_reproduce_the_first_report() {
    use seesaw_bench::simsbench::SimsBench;
    let bench = SimsBench::new();
    let first = bench.run_serving_once();
    assert_eq!(first.stats.requests, 24);
    assert!(first.latency.is_some());
    for _ in 0..3 {
        assert_eq!(bench.run_serving_once(), first, "warm-pool serving rerun drifted");
    }
}

/// The fleet sweeps inherit the byte-identity contract: identical
/// `FleetScalingSweep`/comparison points, rendered tables, and JSON
/// for every job count — routing is serial, replica runs are
/// independent, and results collect in deterministic order.
#[test]
fn fleet_sweeps_are_byte_identical_across_job_counts() {
    use seesaw_bench::fleet;
    use seesaw_bench::serving::EngineKind;
    use seesaw_fleet::RouterPolicy;
    let scaling = |runner: &SweepRunner| {
        fleet::default_scaling_sweep_with(
            runner,
            EngineKind::Vllm,
            32,
            &[1, 2, 4],
            &[0.5, 1.0],
            RouterPolicy::JoinShortestQueue,
            seesaw_bench::serving::DEFAULT_SLO,
            seesaw_bench::SEED,
        )
    };
    let comparison = |runner: &SweepRunner| {
        fleet::default_policy_comparison_with(
            runner,
            EngineKind::Vllm,
            32,
            4,
            0.9,
            seesaw_bench::serving::DEFAULT_SLO,
            seesaw_bench::SEED,
        )
    };
    let (s1, c1) = (scaling(&SweepRunner::serial()), comparison(&SweepRunner::serial()));
    let (s4, c4) = (scaling(&SweepRunner::new(4)), comparison(&SweepRunner::new(4)));
    assert_eq!(s1, s4, "fleet scaling points must be runner-invariant");
    assert_eq!(c1, c4, "router comparison must be runner-invariant");
    assert_eq!(fleet::render_scaling(&s1), fleet::render_scaling(&s4));
    assert_eq!(fleet::render_comparison(&c1), fleet::render_comparison(&c4));
    assert_eq!(
        fleet::to_json(&s1, &c1, None, seesaw_bench::SEED),
        fleet::to_json(&s4, &c4, None, seesaw_bench::SEED)
    );
    // Warm rerun (pools and caches populated) must also reproduce.
    let warm = scaling(&SweepRunner::new(4));
    assert_eq!(s1, warm, "warm-pool fleet rerun drifted");
}

/// A single-replica round-robin fleet is a transparent wrapper around
/// the bare engine: the corresponding serving-sweep point (same
/// request pacing) and the fleet cell agree report-for-report.
#[test]
fn single_replica_fleet_point_matches_bare_serving_point() {
    use seesaw_bench::{fleet, serving};
    use seesaw_fleet::RouterPolicy;
    let runner = SweepRunner::serial();
    let slo = serving::DEFAULT_SLO;
    let bare = serving::default_sweep_with(&runner, 32, &[0.75], slo, seesaw_bench::SEED);
    let fleet_sweep = fleet::default_scaling_sweep_with(
        &runner,
        serving::EngineKind::Vllm,
        32,
        &[1],
        &[0.75],
        RouterPolicy::RoundRobin,
        slo,
        seesaw_bench::SEED,
    );
    assert!((fleet_sweep.capacity_rps - bare.capacity_rps).abs() < 1e-12);
    let bare_point = &bare.points[0];
    let fleet_point = &fleet_sweep.points[0];
    // Same engine, same paced stream: the replica's report is
    // byte-identical to the bare engine's, and the fleet aggregates
    // coincide.
    assert_eq!(fleet_point.report.replicas[0], bare_point.report);
    assert_eq!(fleet_point.report.timeline, bare_point.report.timeline);
    assert_eq!(fleet_point.report.latency, bare_point.report.latency);
    assert!((fleet_point.attainment - bare_point.attainment).abs() < 1e-12);
    assert!((fleet_point.goodput_rps - bare_point.goodput_rps).abs() < 1e-12);
}

/// The serving sweep's `--json` rendering is deterministic across job
/// counts and engine backends.
#[test]
fn serving_json_is_runner_invariant() {
    use seesaw_bench::serving::{self, EngineKind};
    for kind in [EngineKind::Vllm, EngineKind::Disagg] {
        let run = |runner: &SweepRunner| {
            serving::default_sweep_of_with(
                runner,
                kind,
                24,
                &[0.5, 2.0],
                serving::DEFAULT_SLO,
                seesaw_bench::SEED,
            )
        };
        let serial = serving::to_json(&run(&SweepRunner::serial()));
        let parallel = serving::to_json(&run(&SweepRunner::new(4)));
        assert_eq!(serial, parallel, "{kind:?} JSON must be runner-invariant");
        assert!(serial.contains("\"points\""));
    }
}

/// The fleet sims/sec scenario (perf_report's `fleet` metric)
/// reproduces exactly across warm-pool repetitions and serves the
/// whole request set over all four replicas.
#[test]
fn repeated_fleet_runs_reproduce_the_first_report() {
    use seesaw_bench::simsbench::{SimsBench, FLEET_REPLICAS};
    let bench = SimsBench::new();
    let first = bench.run_fleet_once();
    assert_eq!(first.stats.requests, 24);
    assert_eq!(first.replicas.len(), FLEET_REPLICAS);
    assert!(first.latency.is_some());
    for _ in 0..3 {
        assert_eq!(bench.run_fleet_once(), first, "warm-pool fleet rerun drifted");
    }
}

/// The live-fleet sims/sec scenario (perf_report's `fleet_live`
/// metric) reproduces exactly across warm-pool repetitions — the
/// global event loop's measured-state queries must be as
/// deterministic as the fast path they replace.
#[test]
fn repeated_fleet_live_runs_reproduce_the_first_report() {
    use seesaw_bench::simsbench::{SimsBench, FLEET_REPLICAS};
    let bench = SimsBench::new();
    let first = bench.run_fleet_live_once();
    assert_eq!(first.stats.requests, 24);
    assert_eq!(first.replicas.len(), FLEET_REPLICAS);
    assert!(first.latency.is_some());
    for _ in 0..3 {
        assert_eq!(bench.run_fleet_live_once(), first, "warm-pool live-fleet rerun drifted");
    }
}

/// The autoscale sims/sec scenario (perf_report's `autoscale` metric)
/// reproduces exactly across warm-pool repetitions: controller
/// trajectory, scale events, lifecycles, and the merged fleet report.
#[test]
fn repeated_autoscale_runs_reproduce_the_first_report() {
    use seesaw_bench::simsbench::SimsBench;
    let bench = SimsBench::new();
    let first = bench.run_autoscale_once();
    assert!(!bench.autoscale_reqs.is_empty());
    assert_eq!(first.fleet.timeline.len(), bench.autoscale_reqs.len());
    assert!(
        first.events.iter().any(|e| e.to > e.from),
        "the compressed diurnal peak must trigger scale-ups: {:?}",
        first.events
    );
    // Measured windows cover at least the control horizon (the drain
    // tail may extend past it).
    assert!(first.windowed.len() >= first.windows.len());
    for _ in 0..3 {
        assert_eq!(bench.run_autoscale_once(), first, "warm-pool autoscale rerun drifted");
    }
}
