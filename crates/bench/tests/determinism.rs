//! The parallel sweep engine's contract: a parallel runner produces
//! *byte-identical* results to the serial path — same reports, same
//! order, same rendered figures — so `--jobs N` only changes
//! wall-clock time, never output.

use seesaw_bench::figs;
use seesaw_bench::harness::{best_vllm_with, seesaw_auto_with, vllm_sweep_with};
use seesaw_engine::SweepRunner;
use seesaw_hw::ClusterSpec;
use seesaw_model::presets;
use seesaw_workload::WorkloadGen;

#[test]
fn vllm_sweep_parallel_matches_serial_reports_exactly() {
    let cluster = ClusterSpec::a10x4();
    let model = presets::llama2_13b();
    let reqs = WorkloadGen::constant(512, 32).generate(16);
    let serial = vllm_sweep_with(&SweepRunner::serial(), &cluster, &model, &reqs);
    let parallel = vllm_sweep_with(&SweepRunner::new(4), &cluster, &model, &reqs);
    assert!(serial.len() >= 3, "sweep must cover several candidates");
    // EngineReport is PartialEq over every field (stats, walls,
    // transfer accounting), so this is a bit-level comparison of the
    // simulated outcomes, in candidate order.
    assert_eq!(serial, parallel);
}

#[test]
fn tuned_baseline_and_probed_seesaw_are_runner_invariant() {
    let cluster = ClusterSpec::a10x4();
    let model = presets::llama2_13b();
    let reqs = WorkloadGen::arxiv_summarization(7).generate(24);
    let base_s = best_vllm_with(&SweepRunner::serial(), &cluster, &model, &reqs);
    let base_p = best_vllm_with(&SweepRunner::new(8), &cluster, &model, &reqs);
    assert_eq!(base_s, base_p);
    let ours_s = seesaw_auto_with(&SweepRunner::serial(), &cluster, &model, &reqs);
    let ours_p = seesaw_auto_with(&SweepRunner::new(8), &cluster, &model, &reqs);
    assert_eq!(ours_s, ours_p);
}

/// The per-thread executor/roofline-cache pools warm up after the
/// first run; re-running a whole figure grid through the warm pools
/// must reproduce the cold output byte-for-byte, serial and parallel
/// alike (fig10/fig11 are the heaviest sweep grids).
#[test]
fn pooled_rerun_is_byte_identical_for_fig10_and_fig11_grids() {
    let cold10 = figs::fig10::run_with(&SweepRunner::serial(), "a10", 64);
    let warm10 = figs::fig10::run_with(&SweepRunner::serial(), "a10", 64);
    assert_eq!(cold10, warm10, "fig10 serial rerun must not drift");
    let parallel10 = figs::fig10::run_with(&SweepRunner::new(4), "a10", 64);
    assert_eq!(cold10, parallel10, "fig10 pooled parallel must match serial");

    let cold11 = figs::fig11::run_with(&SweepRunner::serial(), 64);
    let warm11 = figs::fig11::run_with(&SweepRunner::new(4), 64);
    assert_eq!(cold11, warm11, "fig11 pooled parallel rerun must match serial");
}

/// The sims/sec scenario run repeatedly (warm executor pool, warm
/// roofline cache, shared Arc specs — exactly what `perf_report`
/// measures, via the shared `SimsBench` definition) must reproduce
/// its first report exactly.
#[test]
fn repeated_engine_runs_reproduce_the_first_report() {
    use seesaw_bench::simsbench::SimsBench;
    let bench = SimsBench::new();
    let first_seesaw = bench.run_seesaw_once();
    let first_vllm = bench.run_vllm_once();
    for _ in 0..3 {
        assert_eq!(bench.run_seesaw_once(), first_seesaw, "warm-pool rerun drifted");
        assert_eq!(bench.run_vllm_once(), first_vllm, "warm-pool rerun drifted");
    }
}

#[test]
fn figure_output_is_byte_identical_across_job_counts() {
    // A figure with an internal grid (four engine runs) rendered to
    // its final string: the user-visible artifact must not depend on
    // the worker count.
    let serial = figs::fig12::run_with(&SweepRunner::serial(), 16);
    let parallel = figs::fig12::run_with(&SweepRunner::new(4), 16);
    assert_eq!(serial, parallel);
    let serial = figs::ablations::abl_buffer_with(&SweepRunner::serial(), 24);
    let parallel = figs::ablations::abl_buffer_with(&SweepRunner::new(3), 24);
    assert_eq!(serial, parallel);
}
