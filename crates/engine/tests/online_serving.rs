//! Online-serving engine behavior: arrival-gated admission, cluster
//! idling between arrivals, per-request latency timelines, and exact
//! offline equivalence for all-zero arrival streams.

use seesaw_engine::seesaw::{SeesawEngine, SeesawSpec};
use seesaw_engine::vllm::VllmEngine;
use seesaw_engine::SchedulingPolicy;
use seesaw_hw::ClusterSpec;
use seesaw_model::presets;
use seesaw_parallel::ParallelConfig;
use seesaw_workload::{ArrivalDist, Request, SloSpec, WorkloadGen};

fn vllm(policy: SchedulingPolicy) -> VllmEngine {
    VllmEngine::new(
        ClusterSpec::a10x4(),
        presets::llama2_13b(),
        ParallelConfig::new(1, 2, 2),
        policy,
    )
    .unwrap()
}

fn policies() -> [SchedulingPolicy; 3] {
    [
        SchedulingPolicy::PrefillPrioritized,
        SchedulingPolicy::DecodePrioritized,
        SchedulingPolicy::ChunkedPrefill { chunk_tokens: 512 },
    ]
}

/// Sparse arrivals: the run must span the arrival horizon (the
/// cluster idles between requests) and every TTFT must be measured
/// from the request's own arrival.
#[test]
fn sparse_arrivals_idle_the_cluster_under_every_policy() {
    let reqs: Vec<Request> = (0..6)
        .map(|i| Request::new(i, 512, 16).with_arrival(10.0 * i as f64))
        .collect();
    for policy in policies() {
        let report = vllm(policy).run(&reqs);
        assert_eq!(report.stats.requests, 6, "{policy}");
        assert!(
            report.stats.duration_s >= 50.0,
            "{policy}: run must wait for the last arrival at t=50, got {}",
            report.stats.duration_s
        );
        let lat = report.latency.expect("timeline recorded");
        assert_eq!(lat.count, 6);
        // Far-apart arrivals mean zero queueing: every TTFT is just
        // the prefill time, far below the 10s gap.
        assert!(
            lat.ttft.max < 10.0,
            "{policy}: unloaded TTFT should not include arrival gaps, max {}",
            lat.ttft.max
        );
        for t in &report.timeline {
            assert!(t.first_token_s >= t.arrival_s);
            assert!(t.completion_s >= t.first_token_s);
        }
    }
}

/// All-zero arrival streams must reproduce the offline run exactly —
/// same report, byte for byte (the legacy path is untouched).
#[test]
fn zero_arrivals_match_offline_reports_exactly() {
    let offline = WorkloadGen::sharegpt(3).generate(24);
    let online: Vec<Request> = offline.iter().map(|r| r.with_arrival(0.0)).collect();
    for policy in policies() {
        let eng = vllm(policy);
        assert_eq!(eng.run(&offline), eng.run(&online), "{policy}");
    }
    let eng = SeesawEngine::new(
        ClusterSpec::a10x4(),
        presets::llama2_13b(),
        SeesawSpec::new(ParallelConfig::pp(4), ParallelConfig::tp(4)),
    )
    .unwrap();
    assert_eq!(eng.run(&offline), eng.run(&online));
}

/// Queueing must show up in the latency percentiles: compressing the
/// same arrival pattern raises p99 TTFT and lowers SLO attainment.
#[test]
fn higher_offered_load_degrades_latency() {
    let base = WorkloadGen::constant(1024, 32).generate(24);
    let unit = ArrivalDist::Poisson { rate: 1.0 }.sample_times(24, 7).unwrap();
    let at_rate = |rate: f64| -> Vec<Request> {
        base.iter()
            .zip(&unit)
            .map(|(r, &t)| r.with_arrival(t / rate))
            .collect()
    };
    let eng = vllm(SchedulingPolicy::PrefillPrioritized);
    let slow = eng.run(&at_rate(0.05));
    let fast = eng.run(&at_rate(50.0));
    let (slow_lat, fast_lat) = (slow.latency.unwrap(), fast.latency.unwrap());
    assert!(
        fast_lat.ttft.p99 > slow_lat.ttft.p99,
        "overload p99 TTFT {} must exceed unloaded {}",
        fast_lat.ttft.p99,
        slow_lat.ttft.p99
    );
    let slo = SloSpec { ttft_s: slow_lat.ttft.max * 1.5, tpot_s: slow_lat.tpot.max * 1.5 };
    assert!((slow.slo_attainment(slo) - 1.0).abs() < 1e-12, "unloaded run meets its own SLO");
    assert!(
        fast.slo_attainment(slo) < 1.0,
        "overloaded run must miss an SLO calibrated to the unloaded run"
    );
    assert!(slow.goodput_rps(slo) > 0.0);
}

/// Seesaw under sparse online arrivals: still completes everything
/// and spans the arrival horizon.
#[test]
fn seesaw_completes_under_online_arrivals() {
    let eng = SeesawEngine::new(
        ClusterSpec::a10x4(),
        presets::llama2_13b(),
        SeesawSpec::new(ParallelConfig::pp(4), ParallelConfig::tp(4)),
    )
    .unwrap();
    let reqs: Vec<Request> = (0..8)
        .map(|i| Request::new(i, 700, 24).with_arrival(5.0 * i as f64))
        .collect();
    let report = eng.run(&reqs);
    assert_eq!(report.stats.requests, 8);
    assert!(report.stats.duration_s >= 35.0, "must wait for the last arrival");
    assert_eq!(report.latency.unwrap().count, 8);
    assert!(report.transitions >= 1);
}

/// Engines admit from the queue head, so out-of-order arrival times
/// would silently misattribute the head's idle wait as later
/// requests' TTFT — they are rejected up front instead.
#[test]
#[should_panic(expected = "sorted by arrival time")]
fn out_of_order_arrivals_are_rejected() {
    let reqs = vec![
        Request::new(0, 512, 16).with_arrival(100.0),
        Request::new(1, 512, 16).with_arrival(0.0),
    ];
    vllm(SchedulingPolicy::PrefillPrioritized).run(&reqs);
}

/// An empty request set is a no-op run reporting zero throughput
/// (regression: this used to produce NaN).
#[test]
fn empty_request_set_reports_zeros() {
    let report = vllm(SchedulingPolicy::PrefillPrioritized).run(&[]);
    assert_eq!(report.stats.requests, 0);
    assert_eq!(report.throughput_rps(), 0.0);
    assert!(report.latency.is_none());
    assert!(report.timeline.is_empty());
}

/// Burst arrival at a shared instant mid-run: requests queue and the
/// timeline stays internally consistent (first token after arrival,
/// completion after first token, ids sorted).
#[test]
fn burst_arrivals_queue_and_resolve_consistently() {
    let mut reqs: Vec<Request> = (0..4).map(|i| Request::new(i, 800, 48)).collect();
    reqs.extend((4..12).map(|i| Request::new(i, 800, 48).with_arrival(2.0)));
    for policy in policies() {
        let report = vllm(policy).run(&reqs);
        assert_eq!(report.stats.requests, 12, "{policy}");
        assert_eq!(report.timeline.len(), 12);
        for w in report.timeline.windows(2) {
            assert!(w[0].id < w[1].id, "timeline must be id-sorted");
        }
        for t in &report.timeline {
            assert!(t.first_token_s >= t.arrival_s, "{policy}: id {}", t.id);
            assert!(t.completion_s >= t.first_token_s, "{policy}: id {}", t.id);
        }
    }
}

/// `run_ready` models replica warm-up: dispatch is clamped to the
/// ready time, but the timeline keeps true arrivals, so TTFT includes
/// the warm-up wait. For a request served in isolation (no batching
/// interference) the delay is exact: TTFT grows by precisely
/// `ready - arrival`, never shrinks. (Across a *loaded* stream,
/// individual TTFTs may locally reorder — delayed arrivals bunch into
/// larger prefill batches — but no request is ever served before the
/// replica is ready; see `run_ready_gates_the_first_dispatch`.)
#[test]
fn run_ready_warmup_delay_is_exact_for_isolated_requests() {
    use seesaw_engine::OnlineEngine;
    let engine = vllm(SchedulingPolicy::PrefillPrioritized);
    let lone = vec![Request::new(0, 512, 16).with_arrival(2.0)];
    let warm = engine.run_ready(&lone, 0.0);
    assert_eq!(warm, engine.run(&lone), "ready at t=0 must be the plain run");
    let warm_ttft = warm.timeline[0].ttft();
    for ready in [5.0, 12.0, 60.0] {
        let delayed = engine.run_ready(&lone, ready);
        let d = &delayed.timeline[0];
        assert_eq!(d.arrival_s, 2.0, "true arrival must be preserved");
        let expected = warm_ttft + (ready - 2.0);
        assert!(
            (d.ttft() - expected).abs() < 1e-9,
            "isolated warm-up delay must be exact: ttft {} vs expected {expected}",
            d.ttft()
        );
        assert!(d.ttft() > warm_ttft, "warm-up must strictly increase TTFT");
    }
    // A ready time already passed when the request arrives changes
    // nothing.
    assert_eq!(engine.run_ready(&lone, 1.5), warm);
}

/// On a whole stream, warm-up strictly never decreases the *worst*
/// TTFT and never serves anyone earlier than the warm replica's
/// first service: the first token of the run moves later (or equal),
/// and the max TTFT is monotone in the ready time.
#[test]
fn run_ready_first_service_and_max_ttft_are_monotone() {
    use seesaw_engine::OnlineEngine;
    let base = WorkloadGen::sharegpt(3).generate(16);
    let reqs = ArrivalDist::Poisson { rate: 2.0 }
        .attach(&base, 9)
        .expect("valid arrivals");
    let engine = vllm(SchedulingPolicy::PrefillPrioritized);
    let mut prev_first = f64::NEG_INFINITY;
    let mut prev_max_ttft = f64::NEG_INFINITY;
    for ready in [0.0, 2.0, 6.0, 30.0] {
        let report = engine.run_ready(&reqs, ready);
        let first = report
            .timeline
            .iter()
            .map(|t| t.first_token_s)
            .fold(f64::INFINITY, f64::min);
        assert!(first >= ready, "served at {first} before ready at {ready}");
        assert!(
            first >= prev_first - 1e-9,
            "a later ready time served someone earlier: {first} < {prev_first}"
        );
        let max_ttft = report.latency.unwrap().ttft.max;
        assert!(
            max_ttft >= prev_max_ttft - 1e-9,
            "warm-up decreased the worst TTFT: {max_ttft} < {prev_max_ttft}"
        );
        prev_first = first;
        prev_max_ttft = max_ttft;
    }
}

/// A ready time past every arrival delays the whole stream by the
/// difference: the first request cannot start before ready.
#[test]
fn run_ready_gates_the_first_dispatch() {
    use seesaw_engine::OnlineEngine;
    let reqs: Vec<Request> = (0..4)
        .map(|i| Request::new(i, 256, 8).with_arrival(0.5 * i as f64))
        .collect();
    let engine = vllm(SchedulingPolicy::PrefillPrioritized);
    let report = engine.run_ready(&reqs, 30.0);
    for t in &report.timeline {
        assert!(
            t.first_token_s >= 30.0,
            "request {} produced a token at {} before the replica was ready",
            t.id,
            t.first_token_s
        );
    }
    // TTFT is measured from the *true* arrival, so it includes the
    // warm-up wait.
    let lat = report.latency.unwrap();
    assert!(lat.ttft.p50 >= 30.0 - 1.5 - 1e-9);
}
