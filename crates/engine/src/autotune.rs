//! Configuration auto-tuning.
//!
//! Seesaw must choose `(c_p, c_d)`; the vLLM baseline sweep needs a
//! "best static configuration". Both searches rank candidates with the
//! analytic throughput model (paper Eq. 2), with an amortized
//! re-sharding penalty added for Seesaw pairs; final numbers always
//! come from engine runs in the benches.

use seesaw_hw::{efficiency, ClusterSpec};
use seesaw_model::ModelConfig;
use seesaw_parallel::{feasible, FitError, MemoryPlan, ParallelConfig, ReshardPlan};
use seesaw_roofline::{Roofline, ThroughputModel};

/// Rank every memory-feasible static configuration by estimated
/// request rate; return them best-first with their estimates.
pub fn rank_static_configs(
    cluster: &ClusterSpec,
    model: &ModelConfig,
    avg_in: usize,
    avg_out: usize,
) -> Vec<(ParallelConfig, f64)> {
    let tm = ThroughputModel::new(Roofline::new(cluster.clone(), model.clone()));
    let mut ranked: Vec<(ParallelConfig, f64)> = feasible::feasible_configs(model, cluster)
        .into_iter()
        .filter_map(|c| {
            tm.estimate_request_rate(c, c, avg_in, avg_out)
                .ok()
                .map(|r| (c, r))
        })
        .collect();
    ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("rates are finite"));
    ranked
}

/// The best static configuration, or an error when nothing fits.
pub fn best_static_config(
    cluster: &ClusterSpec,
    model: &ModelConfig,
    avg_in: usize,
    avg_out: usize,
) -> Result<(ParallelConfig, f64), FitError> {
    rank_static_configs(cluster, model, avg_in, avg_out)
        .into_iter()
        .next()
        .ok_or(FitError::Invalid(format!(
            "no feasible configuration for {} on {}x{}",
            model.name, cluster.num_gpus, cluster.gpu.name
        )))
}

/// The best `(c_p, c_d)` pair for a Seesaw deployment: maximize the
/// combined analytic rate minus the amortized re-sharding cost of one
/// buffer cycle. DP must match across the pair (the paper keeps DP
/// fixed, §4.1).
pub fn best_seesaw_pair(
    cluster: &ClusterSpec,
    model: &ModelConfig,
    avg_in: usize,
    avg_out: usize,
) -> Result<(ParallelConfig, ParallelConfig), FitError> {
    let tm = ThroughputModel::new(Roofline::new(cluster.clone(), model.clone()));
    let candidates = feasible::feasible_configs(model, cluster);
    let buffer_tokens = cluster.total_cpu_mem() / model.kv_bytes_per_token();
    let mut best: Option<(ParallelConfig, ParallelConfig, f64)> = None;
    for &cp in &candidates {
        for &cd in &candidates {
            if cp.dp != cd.dp {
                continue;
            }
            let Ok(rate) = tm.estimate_request_rate(cp, cd, avg_in, avg_out) else {
                continue;
            };
            // Requests per prefill->decode->prefill cycle are bounded
            // by the CPU buffer; two re-shards per cycle.
            let reqs_per_cycle = (buffer_tokens / avg_in.max(1) as u64).max(1) as f64;
            let reshard_s = if cp == cd {
                0.0
            } else {
                let plan = ReshardPlan::plan(model, cp, cd);
                let load = cluster
                    .host_link
                    .pinned_copy_time(plan.max_load_bytes() as f64);
                2.0 * (load + efficiency::RESHARD_FIXED_OVERHEAD_S)
            };
            let per_req = 1.0 / rate + reshard_s / reqs_per_cycle;
            let adj = 1.0 / per_req;
            if best.is_none_or(|(_, _, b)| adj > b) {
                best = Some((cp, cd, adj));
            }
        }
    }
    best.map(|(cp, cd, _)| (cp, cd)).ok_or(FitError::Invalid(format!(
        "no feasible Seesaw pair for {} on {}x{}",
        model.name, cluster.num_gpus, cluster.gpu.name
    )))
}

/// The best `(c_p, c_d)` pair chosen by *simulation probing*: the
/// analytic model shortlists prefill-strong and decode-strong
/// candidates, then each shortlisted pair runs a small probe workload
/// through the real [`SeesawEngine`](crate::seesaw::SeesawEngine) and
/// the highest measured throughput wins. Probes are independent
/// engine runs, so they execute in parallel on a
/// [`SweepRunner`](crate::sweep::SweepRunner); ties and orderings are
/// resolved by shortlist position, keeping the choice identical to
/// the serial search. Slower than [`best_seesaw_pair`] but immune to
/// analytic-model ranking error; this is what
/// [`SeesawSpec::auto_for`](crate::seesaw::SeesawSpec) uses.
///
/// When the shortlists admit no probeable pair at all (e.g. every
/// top-prefill × top-decode combination mixes DP degrees), the search
/// falls back to the analytic [`best_seesaw_pair`] over the *full*
/// candidate set instead of reporting a spurious [`FitError`].
pub fn best_seesaw_pair_probed(
    cluster: &ClusterSpec,
    model: &ModelConfig,
    probe: &[seesaw_workload::Request],
) -> Result<(ParallelConfig, ParallelConfig), FitError> {
    best_seesaw_pair_probed_with(&crate::sweep::SweepRunner::from_env(), cluster, model, probe)
}

/// [`best_seesaw_pair_probed`] on an explicit runner (binaries thread
/// their `--jobs` choice through here).
pub fn best_seesaw_pair_probed_with(
    runner: &crate::sweep::SweepRunner,
    cluster: &ClusterSpec,
    model: &ModelConfig,
    probe: &[seesaw_workload::Request],
) -> Result<(ParallelConfig, ParallelConfig), FitError> {
    assert!(!probe.is_empty(), "probe workload must be non-empty");
    let stats = seesaw_workload::LengthStats::of(probe);
    let (avg_in, avg_out) = (stats.mean_input as usize, stats.mean_output.max(1.0) as usize);
    let tm = ThroughputModel::new(Roofline::new(cluster.clone(), model.clone()));
    let candidates = feasible::feasible_configs(model, cluster);

    // Shortlist by per-stage analytic strength.
    let mut by_prefill: Vec<(ParallelConfig, f64)> = candidates
        .iter()
        .map(|&c| (c, tm.prefill_tokens_per_sec(c, avg_in.max(1), 4)))
        .collect();
    by_prefill.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite"));
    let mut by_decode: Vec<(ParallelConfig, f64)> = candidates
        .iter()
        .filter_map(|&c| {
            tm.decode_seq_steps_per_sec_max_batch(c, avg_in + avg_out / 2)
                .ok()
                .map(|r| (c, r))
        })
        .collect();
    by_decode.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite"));

    let tops = |v: &[(ParallelConfig, f64)]| -> Vec<ParallelConfig> {
        v.iter().take(3).map(|&(c, _)| c).collect()
    };
    // Materialize every probeable engine up front (construction is
    // cheap; running is what costs), then probe concurrently. All
    // engines share one Arc'd copy of the specs.
    let cluster_arc = std::sync::Arc::new(cluster.clone());
    let model_arc = std::sync::Arc::new(model.clone());
    let mut engines: Vec<(ParallelConfig, ParallelConfig, crate::seesaw::SeesawEngine)> =
        Vec::new();
    for &cp in &tops(&by_prefill) {
        for &cd in &tops(&by_decode) {
            if cp.dp != cd.dp {
                continue;
            }
            let spec = crate::seesaw::SeesawSpec::new(cp, cd);
            if let Ok(engine) = crate::seesaw::SeesawEngine::new(
                std::sync::Arc::clone(&cluster_arc),
                std::sync::Arc::clone(&model_arc),
                spec,
            ) {
                engines.push((cp, cd, engine));
            }
        }
    }
    if engines.is_empty() {
        // Shortlist dead-end (typically all-mismatched DP): feasible
        // pairs may still exist outside the shortlists.
        return best_seesaw_pair(cluster, model, avg_in.max(1), avg_out.max(1));
    }
    let rates = runner.map(&engines, |(_, _, engine)| engine.run(probe).throughput_rps());
    let mut best: Option<(ParallelConfig, ParallelConfig, f64)> = None;
    for (&(cp, cd, _), &rps) in engines.iter().zip(&rates) {
        if best.is_none_or(|(_, _, b)| rps > b) {
            best = Some((cp, cd, rps));
        }
    }
    best.map(|(cp, cd, _)| (cp, cd)).ok_or(FitError::Invalid(format!(
        "no feasible Seesaw pair for {} on {}x{}",
        model.name, cluster.num_gpus, cluster.gpu.name
    )))
}

/// Convenience: the best static config's memory plan (used by
/// examples to report capacity).
pub fn best_static_plan(
    cluster: &ClusterSpec,
    model: &ModelConfig,
    avg_in: usize,
    avg_out: usize,
) -> Result<MemoryPlan, FitError> {
    let (cfg, _) = best_static_config(cluster, model, avg_in, avg_out)?;
    MemoryPlan::new(model, cluster, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use seesaw_model::presets;

    #[test]
    fn best_static_is_feasible_and_ranked_first() {
        let cluster = ClusterSpec::a10x8();
        let m = presets::llama2_70b();
        let ranked = rank_static_configs(&cluster, &m, 3000, 250);
        assert!(!ranked.is_empty());
        for w in ranked.windows(2) {
            assert!(w[0].1 >= w[1].1, "must be sorted descending");
        }
        let (best, rate) = best_static_config(&cluster, &m, 3000, 250).unwrap();
        assert_eq!(ranked[0].0, best);
        assert!(rate > 0.0);
    }

    #[test]
    fn seesaw_pair_prefers_pp_prefill_tp_decode_on_pcie() {
        // The paper's headline configuration for 70B on 8 PCIe GPUs is
        // P8 -> T4P2 (Figure 10 labels).
        let cluster = ClusterSpec::a10x8();
        let m = presets::llama2_70b();
        let (cp, cd) = best_seesaw_pair(&cluster, &m, 3000, 250).unwrap();
        assert!(
            cp.pp > cp.tp,
            "prefill config should lean pipeline-parallel, got {cp}"
        );
        assert!(
            cd.tp > 1,
            "decode config should use tensor parallelism, got {cd}"
        );
    }

    #[test]
    fn seesaw_pair_estimate_beats_or_matches_static() {
        let cluster = ClusterSpec::a10x8();
        let m = presets::codellama_34b();
        let tm = ThroughputModel::new(Roofline::new(cluster.clone(), m.clone()));
        let (cp, cd) = best_seesaw_pair(&cluster, &m, 3000, 200).unwrap();
        let (cs, _) = best_static_config(&cluster, &m, 3000, 200).unwrap();
        let pair = tm.estimate_request_rate(cp, cd, 3000, 200).unwrap();
        let stat = tm.estimate_request_rate(cs, cs, 3000, 200).unwrap();
        assert!(pair >= stat, "pair {pair} vs static {stat}");
    }

    /// Guard for the shortlist dead-end: whenever the analytic search
    /// finds *any* feasible pair, the probed search must also succeed
    /// (falling back to the analytic winner if every top-3 × top-3
    /// shortlist pair has mismatched DP) instead of surfacing a
    /// spurious `FitError`.
    #[test]
    fn probed_succeeds_whenever_analytic_pair_exists() {
        use seesaw_workload::Request;
        let combos: Vec<(ClusterSpec, ModelConfig)> = vec![
            (ClusterSpec::a10x4(), presets::llama2_13b()),
            (ClusterSpec::l4x4(), presets::llama2_13b()),
            (ClusterSpec::a10x4(), presets::llama3_15b()),
            (ClusterSpec::a10x8(), presets::codellama_34b()),
        ];
        for (cluster, model) in combos {
            if best_seesaw_pair(&cluster, &model, 512, 32).is_err() {
                continue;
            }
            let probe: Vec<Request> = (0..8).map(|i| Request::new(i, 512, 32)).collect();
            let pair = best_seesaw_pair_probed(&cluster, &model, &probe);
            assert!(
                pair.is_ok(),
                "probed search must not dead-end on {} / {}x{}: {:?}",
                model.name,
                cluster.num_gpus,
                cluster.gpu.name,
                pair.err()
            );
            let (cp, cd) = pair.unwrap();
            assert_eq!(cp.dp, cd.dp, "returned pair must share DP");
        }
    }

    /// Probing in parallel must choose the same pair as probing
    /// serially (ties broken by shortlist order in both).
    #[test]
    fn parallel_probe_matches_serial_choice() {
        use seesaw_workload::Request;
        let cluster = ClusterSpec::a10x4();
        let model = presets::llama2_13b();
        let probe: Vec<Request> = (0..12).map(|i| Request::new(i, 1024, 64)).collect();
        let serial = best_seesaw_pair_probed_with(
            &crate::sweep::SweepRunner::serial(),
            &cluster,
            &model,
            &probe,
        )
        .unwrap();
        let parallel = best_seesaw_pair_probed_with(
            &crate::sweep::SweepRunner::new(4),
            &cluster,
            &model,
            &probe,
        )
        .unwrap();
        assert_eq!(serial, parallel);
    }

    #[test]
    fn error_when_nothing_fits() {
        // 70B on a single L4 cannot fit.
        let cluster = ClusterSpec::new(seesaw_hw::GpuSpec::l4(), 1);
        let m = presets::llama2_70b();
        assert!(best_static_config(&cluster, &m, 1000, 100).is_err());
        assert!(best_seesaw_pair(&cluster, &m, 1000, 100).is_err());
    }
}
