//! Spatial prefill/decode disaggregation (DistServe/Mooncake-style),
//! used for the paper's §3.2 analysis and Figure 4.
//!
//! The node is split into a prefill instance of `n_p` GPUs and a
//! decode instance of `n_d = N - n_p` GPUs, each with its own static
//! parallelization. Prefilled KV flows from prefill to decode GPUs.
//! In steady state the two instances form a two-stage pipeline, so
//! sustained throughput is the *minimum* of the two instance rates —
//! exactly the mismatch argument of Figure 4. Instance rates are
//! measured with the analytic model at each instance's best feasible
//! configuration; KV transfer between instances rides the host links
//! and is accounted as a decode-side overhead.

use crate::autotune;
use crate::online::{mean_lengths, OnlineEngine, ServiceRates};
use crate::report::EngineReport;
use seesaw_hw::ClusterSpec;
use seesaw_model::ModelConfig;
use seesaw_parallel::{FitError, ParallelConfig};
use seesaw_roofline::{Roofline, ThroughputModel};
use seesaw_workload::{LatencyStats, Request, RequestTiming, RunStats, SloSpec};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// One evaluated disaggregation split.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DisaggReport {
    /// GPUs assigned to prefill.
    pub prefill_gpus: usize,
    /// GPUs assigned to decode.
    pub decode_gpus: usize,
    /// Best prefill-instance configuration.
    pub prefill_config: ParallelConfig,
    /// Best decode-instance configuration.
    pub decode_config: ParallelConfig,
    /// Prefill instance rate, requests/s.
    pub prefill_rps: f64,
    /// Decode instance rate, requests/s (including inter-instance KV
    /// transfer overhead).
    pub decode_rps: f64,
    /// Analytic steady-state TTFT estimate: one prompt's prefill time
    /// plus the prefill→decode KV handoff, seconds. (Excludes
    /// queueing — an unloaded-system floor, the disaggregated
    /// counterpart of the simulated engines' measured TTFT.)
    pub est_ttft_s: f64,
    /// Analytic steady-state time-per-output-token estimate, seconds.
    pub est_tpot_s: f64,
}

impl DisaggReport {
    /// Steady-state pipeline throughput: the slower stage.
    pub fn combined_rps(&self) -> f64 {
        self.prefill_rps.min(self.decode_rps)
    }

    /// Ratio of the faster stage to the slower (the "mismatch" the
    /// paper highlights; 1.0 = perfectly balanced).
    pub fn mismatch(&self) -> f64 {
        let hi = self.prefill_rps.max(self.decode_rps);
        hi / self.combined_rps()
    }

    /// Whether the analytic latency floor meets `slo`. A split
    /// failing this misses the SLO at *any* offered load; passing it
    /// only says the unloaded system complies.
    pub fn meets_slo_floor(&self, slo: SloSpec) -> bool {
        self.est_ttft_s <= slo.ttft_s && self.est_tpot_s <= slo.tpot_s
    }
}

/// The disaggregated-deployment analyzer.
#[derive(Debug)]
pub struct DisaggEngine {
    cluster: Arc<ClusterSpec>,
    model: Arc<ModelConfig>,
    /// Last [`DisaggEngine::best_split`] result keyed by its
    /// `(avg_in, avg_out)` — the split search walks every GPU split ×
    /// feasible config through the roofline, and fleet runs ask for
    /// the same workload's split once per replica plus once for
    /// service rates (`Mutex`, not `RefCell`: engines run `&self`
    /// across sweep threads).
    split_cache: std::sync::Mutex<Option<((usize, usize), DisaggReport)>>,
}

impl DisaggEngine {
    /// Build the analyzer for a cluster/model pair (owned specs or
    /// `Arc` handles).
    pub fn new(
        cluster: impl Into<Arc<ClusterSpec>>,
        model: impl Into<Arc<ModelConfig>>,
    ) -> Self {
        DisaggEngine {
            cluster: cluster.into(),
            model: model.into(),
            split_cache: std::sync::Mutex::new(None),
        }
    }

    /// Evaluate a specific split (`n_p` prefill GPUs, rest decode) for
    /// a workload of `avg_in`/`avg_out` tokens.
    pub fn evaluate_split(
        &self,
        n_p: usize,
        avg_in: usize,
        avg_out: usize,
    ) -> Result<DisaggReport, FitError> {
        let n = self.cluster.num_gpus;
        if n_p == 0 || n_p >= n {
            return Err(FitError::Invalid(format!(
                "split {n_p}/{} leaves an empty instance",
                n - n_p
            )));
        }
        let n_d = n - n_p;
        let pre_cluster = self.cluster.subset(n_p);
        let dec_cluster = self.cluster.subset(n_d);

        // Best config per instance: prefill instance optimizes prompt
        // rate, decode instance optimizes generation rate.
        let (pcfg, _) = best_prefill_config(&pre_cluster, &self.model, avg_in)?;
        let (dcfg, _) = best_decode_config(&dec_cluster, &self.model, avg_in + avg_out / 2)?;

        let tm_p = ThroughputModel::new(Roofline::new(pre_cluster, self.model.clone()));
        let prefill_tok_rate = tm_p.prefill_tokens_per_sec(pcfg, avg_in.max(1), 4);
        let prefill_rps = prefill_tok_rate / avg_in as f64;

        let tm_d = ThroughputModel::new(Roofline::new(dec_cluster.clone(), self.model.clone()));
        let step_rate = tm_d.decode_seq_steps_per_sec_max_batch(dcfg, avg_in + avg_out / 2)?;
        // KV must cross from prefill to decode GPUs: one D2H + one H2D
        // of the prompt KV per request, spread across the decode
        // instance's host links.
        let kv_bytes = self.model.kv_bytes_per_token() as f64 * avg_in as f64;
        let xfer = 2.0 * dec_cluster.host_link.pinned_copy_time(kv_bytes) / n_d as f64;
        let t_dec = avg_out as f64 / step_rate + xfer;
        let decode_rps = 1.0 / t_dec;

        Ok(DisaggReport {
            prefill_gpus: n_p,
            decode_gpus: n_d,
            prefill_config: pcfg,
            decode_config: dcfg,
            prefill_rps,
            decode_rps,
            est_ttft_s: avg_in as f64 / prefill_tok_rate + xfer,
            est_tpot_s: 1.0 / step_rate,
        })
    }

    /// Evaluate every feasible split, best-combined first. Splits
    /// where either instance cannot fit the model are skipped — the
    /// Figure 4 constraint.
    pub fn evaluate_all_splits(&self, avg_in: usize, avg_out: usize) -> Vec<DisaggReport> {
        let mut out: Vec<DisaggReport> = (1..self.cluster.num_gpus)
            .filter_map(|n_p| self.evaluate_split(n_p, avg_in, avg_out).ok())
            .collect();
        out.sort_by(|a, b| {
            b.combined_rps()
                .partial_cmp(&a.combined_rps())
                .expect("finite rates")
        });
        out
    }

    /// The best feasible split for a workload averaging
    /// `avg_in`/`avg_out` tokens, or why no split fits. Memoized on
    /// the workload averages (pure function of them), so a fleet
    /// cell's N replica runs + service-rate estimate search once.
    pub fn best_split(&self, avg_in: usize, avg_out: usize) -> Result<DisaggReport, FitError> {
        if let Some((key, split)) = &*self.split_cache.lock().expect("split cache poisoned") {
            if *key == (avg_in, avg_out) {
                return Ok(split.clone());
            }
        }
        let split = self
            .evaluate_all_splits(avg_in, avg_out)
            .into_iter()
            .next()
            .ok_or_else(|| {
                FitError::Invalid(format!(
                    "no feasible disagg split of {} GPUs for this model",
                    self.cluster.num_gpus
                ))
            })?;
        *self.split_cache.lock().expect("split cache poisoned") =
            Some(((avg_in, avg_out), split.clone()));
        Ok(split)
    }

    /// Serve an arrival-sorted request stream through the best
    /// feasible split, replayed as a two-stage tandem queue (the
    /// online counterpart of the simulated engines' `run`).
    ///
    /// The analytic model is the same one [`DisaggEngine::evaluate_split`]
    /// rates instances with: a request occupies the prefill instance
    /// for `input / prefill_token_rate` seconds (FIFO), its KV then
    /// crosses the host links (`xfer`), and it occupies the decode
    /// instance for `xfer + output / step_rate` seconds — so sustained
    /// throughput converges to `combined_rps` and per-token latency to
    /// `est_tpot_s`, while queueing under load emerges from the two
    /// FIFO stages. Deterministic; panics when no split is feasible
    /// (the disaggregation counterpart of an engine that cannot fit
    /// the model).
    pub fn run(&self, requests: &[Request]) -> EngineReport {
        crate::driver::assert_arrivals_sorted(requests);
        let (avg_in, avg_out) = mean_lengths(requests);
        let split = self
            .best_split(avg_in, avg_out)
            .unwrap_or_else(|e| panic!("disagg run impossible: {e:?}"));
        let label = format!(
            "disagg {}p{}+{}d{}",
            split.prefill_gpus, split.prefill_config, split.decode_gpus, split.decode_config
        );
        if requests.is_empty() {
            return EngineReport {
                label,
                stats: RunStats::from_requests(requests, 0.0),
                prefill_wall_s: 0.0,
                decode_wall_s: 0.0,
                mixed_wall_s: 0.0,
                reshard_wall_s: 0.0,
                transitions: 0,
                swap_out_bytes: 0,
                swap_in_bytes: 0,
                phases: Vec::new(),
                gpu_utilization: 0.0,
                timeline: Vec::new(),
                latency: None,
            };
        }

        // Recover the per-token rates behind the split's rps figures.
        let prefill_tok_rate = split.prefill_rps * avg_in as f64;
        let step_rate = 1.0 / split.est_tpot_s;
        let xfer = (split.est_ttft_s - avg_in as f64 / prefill_tok_rate).max(0.0);

        let mut prefill_free = 0.0_f64;
        let mut decode_free = 0.0_f64;
        let mut prefill_busy = 0.0_f64;
        let mut decode_busy = 0.0_f64;
        let mut kv_bytes_total = 0u64;
        let mut timeline: Vec<RequestTiming> = Vec::with_capacity(requests.len());
        for r in requests {
            let t_p = r.input_len as f64 / prefill_tok_rate;
            let p_start = r.arrival_s.max(prefill_free);
            let p_done = p_start + t_p;
            prefill_free = p_done;
            prefill_busy += t_p;

            // The decode slot includes the KV handoff (exactly how
            // `decode_rps` accounts it); the first token lands one
            // decode step after the handoff completes.
            let t_d = xfer + r.output_len as f64 / step_rate;
            let d_start = p_done.max(decode_free);
            decode_free = d_start + t_d;
            decode_busy += t_d;
            kv_bytes_total += self.model.kv_bytes_per_token() * r.input_len as u64;
            timeline.push(RequestTiming {
                id: r.id,
                arrival_s: r.arrival_s,
                first_token_s: d_start + xfer + 1.0 / step_rate,
                completion_s: d_start + t_d,
                output_len: r.output_len,
                attempts: 1,
            });
        }
        timeline.sort_by_key(|t| t.id);
        let duration = timeline
            .iter()
            .map(|t| t.completion_s)
            .fold(0.0_f64, f64::max);
        let n = self.cluster.num_gpus as f64;
        let gpu_utilization = if duration > 0.0 {
            (prefill_busy * split.prefill_gpus as f64 + decode_busy * split.decode_gpus as f64)
                / (duration * n)
        } else {
            0.0
        };
        let latency = LatencyStats::from_timeline(&timeline);
        EngineReport {
            label,
            stats: RunStats::from_requests(requests, duration),
            prefill_wall_s: prefill_busy,
            decode_wall_s: decode_busy,
            mixed_wall_s: 0.0,
            reshard_wall_s: 0.0,
            transitions: 0,
            swap_out_bytes: kv_bytes_total,
            swap_in_bytes: kv_bytes_total,
            phases: Vec::new(),
            gpu_utilization: gpu_utilization.min(1.0),
            timeline,
            latency,
        }
    }
}

impl OnlineEngine for DisaggEngine {
    fn label(&self) -> String {
        "disagg(auto-split)".into()
    }

    fn run(&self, requests: &[Request]) -> EngineReport {
        DisaggEngine::run(self, requests)
    }

    fn service_rates(&self, avg_in: usize, avg_out: usize) -> ServiceRates {
        let split = self
            .best_split(avg_in, avg_out)
            .unwrap_or_else(|e| panic!("disagg service rates impossible: {e:?}"));
        ServiceRates {
            prefill_tokens_per_sec: split.prefill_rps * avg_in.max(1) as f64,
            decode_tokens_per_sec: split.decode_rps * avg_out.max(1) as f64,
        }
    }
}

/// Best feasible config of a sub-cluster for prefill throughput.
fn best_prefill_config(
    cluster: &ClusterSpec,
    model: &ModelConfig,
    avg_in: usize,
) -> Result<(ParallelConfig, f64), FitError> {
    let tm = ThroughputModel::new(Roofline::new(cluster.clone(), model.clone()));
    seesaw_parallel::feasible::feasible_configs(model, cluster)
        .into_iter()
        .map(|c| (c, tm.prefill_tokens_per_sec(c, avg_in.max(1), 4)))
        .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
        .ok_or(FitError::Invalid("no feasible prefill config".into()))
}

/// Best feasible config of a sub-cluster for decode throughput.
fn best_decode_config(
    cluster: &ClusterSpec,
    model: &ModelConfig,
    avg_ctx: usize,
) -> Result<(ParallelConfig, f64), FitError> {
    let tm = ThroughputModel::new(Roofline::new(cluster.clone(), model.clone()));
    seesaw_parallel::feasible::feasible_configs(model, cluster)
        .into_iter()
        .filter_map(|c| {
            tm.decode_seq_steps_per_sec_max_batch(c, avg_ctx)
                .ok()
                .map(|r| (c, r))
        })
        .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
        .ok_or(FitError::Invalid("no feasible decode config".into()))
}

/// Decode rate of the whole (un-split) cluster — Figure 4's
/// "Decode (8 GPUs)" reference bar.
pub fn whole_cluster_decode_rps(
    cluster: &ClusterSpec,
    model: &ModelConfig,
    avg_in: usize,
    avg_out: usize,
) -> Result<f64, FitError> {
    let (cfg, step_rate) = best_decode_config(cluster, model, avg_in + avg_out / 2)?;
    let _ = autotune::best_static_config(cluster, model, avg_in, avg_out)?; // sanity: model fits
    let _ = cfg;
    Ok(step_rate / avg_out as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use seesaw_model::presets;

    /// Figure 4: 70B on 8x 40GiB admits exactly one split (4+4).
    #[test]
    fn seventy_b_admits_only_the_even_split() {
        let eng = DisaggEngine::new(ClusterSpec::a100x8_pcie(), presets::llama2_70b());
        let splits = eng.evaluate_all_splits(3000, 250);
        assert_eq!(splits.len(), 1, "only 4+4 should be feasible");
        assert_eq!(splits[0].prefill_gpus, 4);
        assert_eq!(splits[0].decode_gpus, 4);
    }

    /// Figure 4: the feasible split is mismatched, with decode as the
    /// bottleneck. (The paper measures a ~6x gap on real hardware; our
    /// analytic model reproduces the direction and a >1.2x gap — see
    /// EXPERIMENTS.md for the comparison.)
    #[test]
    fn even_split_is_mismatched_with_decode_bottleneck() {
        let eng = DisaggEngine::new(ClusterSpec::a100x8_pcie(), presets::llama2_70b());
        let r = eng.evaluate_split(4, 3000, 250).unwrap();
        assert!(
            r.prefill_rps > 1.2 * r.decode_rps,
            "prefill {:.3} rps vs decode {:.3} rps",
            r.prefill_rps,
            r.decode_rps
        );
        assert!(r.mismatch() > 1.2);
        assert!((r.combined_rps() - r.decode_rps).abs() < 1e-12);
    }

    /// Figure 4: 4-GPU decode is a small fraction of 8-GPU decode
    /// (the paper reports ~15%).
    #[test]
    fn half_cluster_decode_is_small_fraction_of_whole() {
        let cluster = ClusterSpec::a100x8_pcie();
        let m = presets::llama2_70b();
        let eng = DisaggEngine::new(cluster.clone(), m.clone());
        let split = eng.evaluate_split(4, 3000, 250).unwrap();
        let whole = whole_cluster_decode_rps(&cluster, &m, 3000, 250).unwrap();
        let frac = split.decode_rps / whole;
        assert!(
            frac < 0.4,
            "4-GPU decode should be a small fraction of 8-GPU, got {frac:.2}"
        );
    }

    #[test]
    fn smaller_models_admit_more_splits() {
        let eng = DisaggEngine::new(ClusterSpec::a10x8(), presets::llama3_15b());
        let splits = eng.evaluate_all_splits(500, 250);
        assert!(splits.len() > 1);
        // Sorted by combined throughput.
        for w in splits.windows(2) {
            assert!(w[0].combined_rps() >= w[1].combined_rps());
        }
    }

    #[test]
    fn latency_floor_is_positive_and_slo_gateable() {
        let eng = DisaggEngine::new(ClusterSpec::a100x8_pcie(), presets::llama2_70b());
        let r = eng.evaluate_split(4, 3000, 250).unwrap();
        assert!(r.est_ttft_s > 0.0 && r.est_ttft_s.is_finite());
        assert!(r.est_tpot_s > 0.0 && r.est_tpot_s.is_finite());
        // A generous SLO passes the floor; an impossible one fails.
        assert!(r.meets_slo_floor(SloSpec { ttft_s: 1e6, tpot_s: 1e6 }));
        assert!(!r.meets_slo_floor(SloSpec { ttft_s: 0.0, tpot_s: 0.0 }));
    }

    #[test]
    fn degenerate_splits_rejected() {
        let eng = DisaggEngine::new(ClusterSpec::a10x8(), presets::llama3_15b());
        assert!(eng.evaluate_split(0, 500, 250).is_err());
        assert!(eng.evaluate_split(8, 500, 250).is_err());
    }

    #[test]
    fn tandem_run_completes_with_consistent_timeline() {
        use seesaw_workload::Request;
        let eng = DisaggEngine::new(ClusterSpec::a10x4(), presets::llama2_13b());
        let reqs: Vec<Request> = (0..12)
            .map(|i| Request::new(i, 700, 48).with_arrival(0.5 * i as f64))
            .collect();
        let report = eng.run(&reqs);
        assert_eq!(report.stats.requests, 12);
        assert_eq!(report.timeline.len(), 12);
        assert!(report.label.starts_with("disagg "), "got {}", report.label);
        for w in report.timeline.windows(2) {
            assert!(w[0].id < w[1].id, "timeline must be id-sorted");
        }
        for t in &report.timeline {
            assert!(t.first_token_s > t.arrival_s);
            assert!(t.completion_s > t.first_token_s);
        }
        assert!(report.stats.duration_s >= 5.5, "must span the arrival horizon");
        assert!(report.latency.unwrap().count == 12);
        assert!(report.gpu_utilization > 0.0 && report.gpu_utilization <= 1.0);
        assert!(report.swap_out_bytes > 0, "KV handoff must be accounted");
    }

    /// An unloaded request's latency matches the split's analytic
    /// floor (TTFT within one decode step, TPOT exactly).
    #[test]
    fn tandem_unloaded_latency_matches_analytic_floor() {
        use seesaw_workload::Request;
        let eng = DisaggEngine::new(ClusterSpec::a10x4(), presets::llama2_13b());
        let split = eng.best_split(700, 48).unwrap();
        let reqs = vec![Request::new(0, 700, 48)];
        let report = eng.run(&reqs);
        let t = report.timeline[0];
        let step = split.est_tpot_s;
        assert!(
            (t.first_token_s - (split.est_ttft_s + step)).abs() < 1e-9,
            "TTFT {} vs floor {}",
            t.first_token_s,
            split.est_ttft_s + step
        );
        let tpot = (t.completion_s - t.first_token_s) / 47.0;
        assert!((tpot - step).abs() < 1e-9, "TPOT {tpot} vs est {step}");
    }

    /// Saturating the tandem pipeline converges to the split's
    /// combined (bottleneck) rate.
    #[test]
    fn tandem_saturated_throughput_approaches_combined_rps() {
        use seesaw_workload::Request;
        let eng = DisaggEngine::new(ClusterSpec::a10x4(), presets::llama2_13b());
        let split = eng.best_split(700, 48).unwrap();
        let reqs: Vec<Request> = (0..200).map(|i| Request::new(i, 700, 48)).collect();
        let report = eng.run(&reqs);
        let ratio = report.throughput_rps() / split.combined_rps();
        assert!(
            (0.85..=1.05).contains(&ratio),
            "saturated tandem at {:.3} rps vs combined {:.3} (ratio {ratio:.3})",
            report.throughput_rps(),
            split.combined_rps()
        );
    }

    #[test]
    fn tandem_empty_run_reports_zeros() {
        let eng = DisaggEngine::new(ClusterSpec::a10x4(), presets::llama2_13b());
        let report = eng.run(&[]);
        assert_eq!(report.stats.requests, 0);
        assert_eq!(report.throughput_rps(), 0.0);
        assert!(report.latency.is_none());
    }

    #[test]
    fn online_trait_rates_are_positive_for_all_engines() {
        use crate::online::OnlineEngine;
        let eng = DisaggEngine::new(ClusterSpec::a10x4(), presets::llama2_13b());
        let rates = eng.service_rates(700, 48);
        assert!(rates.prefill_tokens_per_sec > 0.0 && rates.prefill_tokens_per_sec.is_finite());
        assert!(rates.decode_tokens_per_sec > 0.0 && rates.decode_tokens_per_sec.is_finite());
        assert_eq!(OnlineEngine::label(&eng), "disagg(auto-split)");
    }
}
