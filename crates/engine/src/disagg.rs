//! Spatial prefill/decode disaggregation (DistServe/Mooncake-style),
//! used for the paper's §3.2 analysis and Figure 4.
//!
//! The node is split into a prefill instance of `n_p` GPUs and a
//! decode instance of `n_d = N - n_p` GPUs, each with its own static
//! parallelization. Prefilled KV flows from prefill to decode GPUs.
//! In steady state the two instances form a two-stage pipeline, so
//! sustained throughput is the *minimum* of the two instance rates —
//! exactly the mismatch argument of Figure 4. Instance rates are
//! measured with the analytic model at each instance's best feasible
//! configuration; KV transfer between instances rides the host links
//! and is accounted as a decode-side overhead.

use crate::autotune;
use seesaw_hw::ClusterSpec;
use seesaw_model::ModelConfig;
use seesaw_parallel::{FitError, ParallelConfig};
use seesaw_roofline::{Roofline, ThroughputModel};
use seesaw_workload::SloSpec;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// One evaluated disaggregation split.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DisaggReport {
    /// GPUs assigned to prefill.
    pub prefill_gpus: usize,
    /// GPUs assigned to decode.
    pub decode_gpus: usize,
    /// Best prefill-instance configuration.
    pub prefill_config: ParallelConfig,
    /// Best decode-instance configuration.
    pub decode_config: ParallelConfig,
    /// Prefill instance rate, requests/s.
    pub prefill_rps: f64,
    /// Decode instance rate, requests/s (including inter-instance KV
    /// transfer overhead).
    pub decode_rps: f64,
    /// Analytic steady-state TTFT estimate: one prompt's prefill time
    /// plus the prefill→decode KV handoff, seconds. (Excludes
    /// queueing — an unloaded-system floor, the disaggregated
    /// counterpart of the simulated engines' measured TTFT.)
    pub est_ttft_s: f64,
    /// Analytic steady-state time-per-output-token estimate, seconds.
    pub est_tpot_s: f64,
}

impl DisaggReport {
    /// Steady-state pipeline throughput: the slower stage.
    pub fn combined_rps(&self) -> f64 {
        self.prefill_rps.min(self.decode_rps)
    }

    /// Ratio of the faster stage to the slower (the "mismatch" the
    /// paper highlights; 1.0 = perfectly balanced).
    pub fn mismatch(&self) -> f64 {
        let hi = self.prefill_rps.max(self.decode_rps);
        hi / self.combined_rps()
    }

    /// Whether the analytic latency floor meets `slo`. A split
    /// failing this misses the SLO at *any* offered load; passing it
    /// only says the unloaded system complies.
    pub fn meets_slo_floor(&self, slo: SloSpec) -> bool {
        self.est_ttft_s <= slo.ttft_s && self.est_tpot_s <= slo.tpot_s
    }
}

/// The disaggregated-deployment analyzer.
#[derive(Debug)]
pub struct DisaggEngine {
    cluster: Arc<ClusterSpec>,
    model: Arc<ModelConfig>,
}

impl DisaggEngine {
    /// Build the analyzer for a cluster/model pair (owned specs or
    /// `Arc` handles).
    pub fn new(
        cluster: impl Into<Arc<ClusterSpec>>,
        model: impl Into<Arc<ModelConfig>>,
    ) -> Self {
        DisaggEngine { cluster: cluster.into(), model: model.into() }
    }

    /// Evaluate a specific split (`n_p` prefill GPUs, rest decode) for
    /// a workload of `avg_in`/`avg_out` tokens.
    pub fn evaluate_split(
        &self,
        n_p: usize,
        avg_in: usize,
        avg_out: usize,
    ) -> Result<DisaggReport, FitError> {
        let n = self.cluster.num_gpus;
        if n_p == 0 || n_p >= n {
            return Err(FitError::Invalid(format!(
                "split {n_p}/{} leaves an empty instance",
                n - n_p
            )));
        }
        let n_d = n - n_p;
        let pre_cluster = self.cluster.subset(n_p);
        let dec_cluster = self.cluster.subset(n_d);

        // Best config per instance: prefill instance optimizes prompt
        // rate, decode instance optimizes generation rate.
        let (pcfg, _) = best_prefill_config(&pre_cluster, &self.model, avg_in)?;
        let (dcfg, _) = best_decode_config(&dec_cluster, &self.model, avg_in + avg_out / 2)?;

        let tm_p = ThroughputModel::new(Roofline::new(pre_cluster, self.model.clone()));
        let prefill_tok_rate = tm_p.prefill_tokens_per_sec(pcfg, avg_in.max(1), 4);
        let prefill_rps = prefill_tok_rate / avg_in as f64;

        let tm_d = ThroughputModel::new(Roofline::new(dec_cluster.clone(), self.model.clone()));
        let step_rate = tm_d.decode_seq_steps_per_sec_max_batch(dcfg, avg_in + avg_out / 2)?;
        // KV must cross from prefill to decode GPUs: one D2H + one H2D
        // of the prompt KV per request, spread across the decode
        // instance's host links.
        let kv_bytes = self.model.kv_bytes_per_token() as f64 * avg_in as f64;
        let xfer = 2.0 * dec_cluster.host_link.pinned_copy_time(kv_bytes) / n_d as f64;
        let t_dec = avg_out as f64 / step_rate + xfer;
        let decode_rps = 1.0 / t_dec;

        Ok(DisaggReport {
            prefill_gpus: n_p,
            decode_gpus: n_d,
            prefill_config: pcfg,
            decode_config: dcfg,
            prefill_rps,
            decode_rps,
            est_ttft_s: avg_in as f64 / prefill_tok_rate + xfer,
            est_tpot_s: 1.0 / step_rate,
        })
    }

    /// Evaluate every feasible split, best-combined first. Splits
    /// where either instance cannot fit the model are skipped — the
    /// Figure 4 constraint.
    pub fn evaluate_all_splits(&self, avg_in: usize, avg_out: usize) -> Vec<DisaggReport> {
        let mut out: Vec<DisaggReport> = (1..self.cluster.num_gpus)
            .filter_map(|n_p| self.evaluate_split(n_p, avg_in, avg_out).ok())
            .collect();
        out.sort_by(|a, b| {
            b.combined_rps()
                .partial_cmp(&a.combined_rps())
                .expect("finite rates")
        });
        out
    }
}

/// Best feasible config of a sub-cluster for prefill throughput.
fn best_prefill_config(
    cluster: &ClusterSpec,
    model: &ModelConfig,
    avg_in: usize,
) -> Result<(ParallelConfig, f64), FitError> {
    let tm = ThroughputModel::new(Roofline::new(cluster.clone(), model.clone()));
    seesaw_parallel::feasible::feasible_configs(model, cluster)
        .into_iter()
        .map(|c| (c, tm.prefill_tokens_per_sec(c, avg_in.max(1), 4)))
        .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
        .ok_or(FitError::Invalid("no feasible prefill config".into()))
}

/// Best feasible config of a sub-cluster for decode throughput.
fn best_decode_config(
    cluster: &ClusterSpec,
    model: &ModelConfig,
    avg_ctx: usize,
) -> Result<(ParallelConfig, f64), FitError> {
    let tm = ThroughputModel::new(Roofline::new(cluster.clone(), model.clone()));
    seesaw_parallel::feasible::feasible_configs(model, cluster)
        .into_iter()
        .filter_map(|c| {
            tm.decode_seq_steps_per_sec_max_batch(c, avg_ctx)
                .ok()
                .map(|r| (c, r))
        })
        .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
        .ok_or(FitError::Invalid("no feasible decode config".into()))
}

/// Decode rate of the whole (un-split) cluster — Figure 4's
/// "Decode (8 GPUs)" reference bar.
pub fn whole_cluster_decode_rps(
    cluster: &ClusterSpec,
    model: &ModelConfig,
    avg_in: usize,
    avg_out: usize,
) -> Result<f64, FitError> {
    let (cfg, step_rate) = best_decode_config(cluster, model, avg_in + avg_out / 2)?;
    let _ = autotune::best_static_config(cluster, model, avg_in, avg_out)?; // sanity: model fits
    let _ = cfg;
    Ok(step_rate / avg_out as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use seesaw_model::presets;

    /// Figure 4: 70B on 8x 40GiB admits exactly one split (4+4).
    #[test]
    fn seventy_b_admits_only_the_even_split() {
        let eng = DisaggEngine::new(ClusterSpec::a100x8_pcie(), presets::llama2_70b());
        let splits = eng.evaluate_all_splits(3000, 250);
        assert_eq!(splits.len(), 1, "only 4+4 should be feasible");
        assert_eq!(splits[0].prefill_gpus, 4);
        assert_eq!(splits[0].decode_gpus, 4);
    }

    /// Figure 4: the feasible split is mismatched, with decode as the
    /// bottleneck. (The paper measures a ~6x gap on real hardware; our
    /// analytic model reproduces the direction and a >1.2x gap — see
    /// EXPERIMENTS.md for the comparison.)
    #[test]
    fn even_split_is_mismatched_with_decode_bottleneck() {
        let eng = DisaggEngine::new(ClusterSpec::a100x8_pcie(), presets::llama2_70b());
        let r = eng.evaluate_split(4, 3000, 250).unwrap();
        assert!(
            r.prefill_rps > 1.2 * r.decode_rps,
            "prefill {:.3} rps vs decode {:.3} rps",
            r.prefill_rps,
            r.decode_rps
        );
        assert!(r.mismatch() > 1.2);
        assert!((r.combined_rps() - r.decode_rps).abs() < 1e-12);
    }

    /// Figure 4: 4-GPU decode is a small fraction of 8-GPU decode
    /// (the paper reports ~15%).
    #[test]
    fn half_cluster_decode_is_small_fraction_of_whole() {
        let cluster = ClusterSpec::a100x8_pcie();
        let m = presets::llama2_70b();
        let eng = DisaggEngine::new(cluster.clone(), m.clone());
        let split = eng.evaluate_split(4, 3000, 250).unwrap();
        let whole = whole_cluster_decode_rps(&cluster, &m, 3000, 250).unwrap();
        let frac = split.decode_rps / whole;
        assert!(
            frac < 0.4,
            "4-GPU decode should be a small fraction of 8-GPU, got {frac:.2}"
        );
    }

    #[test]
    fn smaller_models_admit_more_splits() {
        let eng = DisaggEngine::new(ClusterSpec::a10x8(), presets::llama3_15b());
        let splits = eng.evaluate_all_splits(500, 250);
        assert!(splits.len() > 1);
        // Sorted by combined throughput.
        for w in splits.windows(2) {
            assert!(w[0].combined_rps() >= w[1].combined_rps());
        }
    }

    #[test]
    fn latency_floor_is_positive_and_slo_gateable() {
        let eng = DisaggEngine::new(ClusterSpec::a100x8_pcie(), presets::llama2_70b());
        let r = eng.evaluate_split(4, 3000, 250).unwrap();
        assert!(r.est_ttft_s > 0.0 && r.est_ttft_s.is_finite());
        assert!(r.est_tpot_s > 0.0 && r.est_tpot_s.is_finite());
        // A generous SLO passes the floor; an impossible one fails.
        assert!(r.meets_slo_floor(SloSpec { ttft_s: 1e6, tpot_s: 1e6 }));
        assert!(!r.meets_slo_floor(SloSpec { ttft_s: 0.0, tpot_s: 0.0 }));
    }

    #[test]
    fn degenerate_splits_rejected() {
        let eng = DisaggEngine::new(ClusterSpec::a10x8(), presets::llama3_15b());
        assert!(eng.evaluate_split(0, 500, 250).is_err());
        assert!(eng.evaluate_split(8, 500, 250).is_err());
    }
}
