//! Parallel candidate-grid evaluation.
//!
//! A full Figure 10 panel executes hundreds of independent engine
//! runs; auto-tuning probes dozens of `(c_p, c_d)` pairs; ablations
//! sweep spec variants. All of these are embarrassingly parallel:
//! each candidate owns its own [`Simulator`](seesaw_sim::Simulator),
//! KV caches, and (memoized) roofline, so runs share nothing.
//! [`SweepRunner`] evaluates such grids across OS threads while
//! keeping results in candidate order, so parallel output is
//! byte-identical to the serial path.
//!
//! # Job-count resolution
//!
//! `SweepRunner::from_env()` resolves, in order: the
//! `SEESAW_JOBS` environment variable, the conventional
//! `RAYON_NUM_THREADS` variable, then the host's available
//! parallelism. Binaries expose `--jobs N` and construct
//! `SweepRunner::new(n)` explicitly.
//!
//! # Nesting
//!
//! Sweeps compose (a figure sweeps grid cells; each cell sweeps vLLM
//! configurations). To avoid spawning `jobs²` threads, each sweep
//! worker carries a *job budget* — its share of the parent runner's
//! jobs — and nested runners clamp to it. With more items than jobs
//! the budget is 1 and inner grids run serially; with more jobs than
//! items (e.g. `--jobs 32` over 17 figures) the surplus flows to the
//! inner grids instead of idling.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::Instant;

thread_local! {
    /// This thread's share of an enclosing sweep's job count
    /// (`None` outside any sweep = unbounded).
    static JOB_BUDGET: std::cell::Cell<Option<usize>> =
        const { std::cell::Cell::new(None) };
}

/// RAII scope installing a job budget for nested sweeps on this
/// thread; restores the previous budget on drop (including unwinds).
struct BudgetScope {
    prev: Option<usize>,
}

impl BudgetScope {
    fn enter(budget: usize) -> Self {
        let prev = JOB_BUDGET.with(|c| c.replace(Some(budget.max(1))));
        BudgetScope { prev }
    }
}

impl Drop for BudgetScope {
    fn drop(&mut self) {
        JOB_BUDGET.with(|c| c.set(self.prev));
    }
}

/// The host's available parallelism (1 when it cannot be queried) —
/// the single source of truth for job-count clamping and the
/// `host_cores` field of `BENCH_sweep.json`.
pub fn host_cores() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// One evaluated candidate: the closure's value plus how long this
/// candidate took on its worker (wall-clock seconds, for
/// `perf_report`-style trajectory artifacts).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepResult<T> {
    /// The candidate's evaluation result.
    pub value: T,
    /// Worker wall-clock seconds spent on this candidate.
    pub elapsed_s: f64,
}

/// Evaluates candidate grids across a fixed number of worker threads
/// with deterministic, submission-ordered results.
#[derive(Debug, Clone, Copy)]
pub struct SweepRunner {
    /// What the caller asked for (recorded in `BENCH_sweep.json`).
    requested: usize,
    /// What actually runs (≤ requested on the clamped constructors).
    jobs: usize,
}

impl Default for SweepRunner {
    fn default() -> Self {
        Self::from_env()
    }
}

impl SweepRunner {
    /// Runner with an explicit, *unclamped* job count (≥ 1). Used by
    /// tests that deliberately oversubscribe; binaries resolve
    /// `--jobs` through [`SweepRunner::with_jobs`], which clamps to
    /// the host's cores — more worker threads than cores only adds
    /// contention (PR 1's `BENCH_sweep.json` measured `--jobs 4` at
    /// 0.81x on a 1-core host).
    pub fn new(jobs: usize) -> Self {
        let jobs = jobs.max(1);
        SweepRunner { requested: jobs, jobs }
    }

    /// Strictly serial runner (reference path for determinism tests).
    pub fn serial() -> Self {
        Self::new(1)
    }

    /// `requested` jobs clamped to the host's available parallelism.
    fn clamped(requested: usize) -> Self {
        let requested = requested.max(1);
        SweepRunner {
            requested,
            jobs: requested.min(host_cores()),
        }
    }

    /// Job count from `SEESAW_JOBS`, else `RAYON_NUM_THREADS`, else
    /// the host's available parallelism; always clamped to the host's
    /// available parallelism.
    pub fn from_env() -> Self {
        let from_var = |name: &str| {
            std::env::var(name)
                .ok()
                .and_then(|v| v.trim().parse::<usize>().ok())
                .filter(|&n| n > 0)
        };
        let jobs = from_var("SEESAW_JOBS")
            .or_else(|| from_var("RAYON_NUM_THREADS"))
            .unwrap_or_else(host_cores);
        Self::clamped(jobs)
    }

    /// Runner with `jobs` when given, else the environment's choice —
    /// clamped to the host's cores either way. This is the `--jobs`
    /// resolution path for every binary.
    pub fn with_jobs(jobs: Option<usize>) -> Self {
        jobs.map_or_else(Self::from_env, Self::clamped)
    }

    /// Worker-thread count this runner uses.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Worker-thread count the caller asked for, before clamping.
    pub fn requested_jobs(&self) -> usize {
        self.requested
    }

    /// Evaluate `f` over every item, returning per-candidate results
    /// in item order regardless of completion order. `f` runs on up
    /// to `jobs` threads; candidates are claimed from a shared queue
    /// so long and short candidates balance.
    pub fn run<I, T, F>(&self, items: &[I], f: F) -> Vec<SweepResult<T>>
    where
        I: Sync,
        T: Send,
        F: Fn(&I) -> T + Sync,
    {
        self.run_stream(items, f, |_, _| {})
    }

    /// Like [`SweepRunner::run`], additionally invoking `on_ready`
    /// for each candidate *in item order* as soon as its result and
    /// every predecessor's are available — so binaries can stream
    /// output incrementally while later candidates still execute.
    /// `on_ready` runs on the calling thread and must not re-enter
    /// the runner.
    pub fn run_stream<I, T, F, C>(&self, items: &[I], f: F, mut on_ready: C) -> Vec<SweepResult<T>>
    where
        I: Sync,
        T: Send,
        F: Fn(&I) -> T + Sync,
        C: FnMut(usize, &SweepResult<T>),
    {
        let timed = |item: &I| {
            let t0 = Instant::now();
            let value = f(item);
            SweepResult {
                value,
                elapsed_s: t0.elapsed().as_secs_f64(),
            }
        };

        // Clamp to this thread's share of any enclosing sweep.
        let effective = JOB_BUDGET
            .with(|c| c.get())
            .map_or(self.jobs, |budget| self.jobs.min(budget.max(1)));
        if effective == 1 || items.len() <= 1 {
            // A (effectively) serial runner must pin nested sweeps
            // to serial too — otherwise an inner `from_env()` runner
            // would parallelize inside the "serial" baseline (and
            // `--jobs 1` would not actually be single-threaded). A
            // single-item grid on a parallel runner leaves the
            // budget as-is so its inner grids still use the cores.
            let _guard = (effective == 1).then(|| BudgetScope::enter(1));
            return items
                .iter()
                .enumerate()
                .map(|(i, item)| {
                    let r = timed(item);
                    on_ready(i, &r);
                    r
                })
                .collect();
        }

        // Workers store Err(panic payload) instead of dying silently,
        // so a panicking candidate aborts the whole run (as it would
        // serially) rather than leaving the drain loop waiting on a
        // slot that will never fill.
        type Slot<T> = Option<Result<SweepResult<T>, Box<dyn std::any::Any + Send>>>;
        let next = AtomicUsize::new(0);
        let slots: Mutex<Vec<Slot<T>>> = Mutex::new(items.iter().map(|_| None).collect());
        let ready = Condvar::new();
        let workers = effective.min(items.len());
        // Split the job count exactly across workers (floor + spread
        // remainder), so nested sweeps can use the surplus when items
        // are fewer than jobs while total concurrency never exceeds
        // `effective`.
        let mut out: Vec<SweepResult<T>> = Vec::with_capacity(items.len());
        std::thread::scope(|scope| {
            let (next, slots, ready, timed) = (&next, &slots, &ready, &timed);
            for w in 0..workers {
                let child_budget =
                    (effective / workers + usize::from(w < effective % workers)).max(1);
                scope.spawn(move || {
                    let _budget = BudgetScope::enter(child_budget);
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(
                            || timed(&items[i]),
                        ));
                        slots.lock().expect("sweep slots poisoned")[i] = Some(result);
                        ready.notify_all();
                    }
                });
            }
            // The caller's thread drains results in item order as the
            // prefix completes; `on_ready` runs with the lock
            // released so a slow callback (printing a whole figure)
            // never stalls workers storing their results.
            let mut taken = 0;
            while taken < items.len() {
                let mut batch = Vec::new();
                {
                    let mut guard = slots.lock().expect("sweep slots poisoned");
                    while guard[taken].is_none() {
                        guard = ready.wait(guard).expect("sweep slots poisoned");
                    }
                    while taken < items.len() {
                        let Some(result) = guard[taken].take() else {
                            break;
                        };
                        batch.push(result);
                        taken += 1;
                    }
                }
                for result in batch {
                    match result {
                        Ok(result) => {
                            on_ready(out.len(), &result);
                            out.push(result);
                        }
                        Err(payload) => {
                            // Stop handing out work, then re-raise the
                            // candidate's panic once workers drain.
                            next.store(items.len(), Ordering::Relaxed);
                            std::panic::resume_unwind(payload);
                        }
                    }
                }
            }
        });
        out
    }

    /// Like [`SweepRunner::run`] but returning only the values.
    pub fn map<I, T, F>(&self, items: &[I], f: F) -> Vec<T>
    where
        I: Sync,
        T: Send,
        F: Fn(&I) -> T + Sync,
    {
        self.run(items, f).into_iter().map(|r| r.value).collect()
    }

    /// Evaluate a heterogeneous list of independent jobs (e.g. whole
    /// figures), in order.
    pub fn run_tasks<T: Send>(
        &self,
        tasks: Vec<Box<dyn Fn() -> T + Send + Sync + '_>>,
    ) -> Vec<SweepResult<T>> {
        self.run(&tasks, |t| t())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_keep_item_order() {
        let runner = SweepRunner::new(4);
        let items: Vec<usize> = (0..64).collect();
        let out = runner.map(&items, |&i| {
            // Vary work so completion order differs from item order.
            let spin = (64 - i) * 1000;
            let mut acc = 0u64;
            for k in 0..spin {
                acc = acc.wrapping_add(k as u64);
            }
            std::hint::black_box(acc);
            i * 2
        });
        assert_eq!(out, (0..64).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_matches_serial() {
        let items: Vec<u64> = (0..40).collect();
        let f = |&x: &u64| x.wrapping_mul(0x9e3779b97f4a7c15).rotate_left(17);
        let serial = SweepRunner::serial().map(&items, f);
        let parallel = SweepRunner::new(8).map(&items, f);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn serial_runner_pins_nested_sweeps_to_the_calling_thread() {
        let main_id = std::thread::current().id();
        let inner_ids = SweepRunner::serial().map(&[()], |_| {
            SweepRunner::new(4).map(&[0u8, 1, 2, 3], |_| std::thread::current().id())
        });
        assert!(
            inner_ids[0].iter().all(|&id| id == main_id),
            "a serial outer run must keep env/parallel inner runners inline"
        );
        // The pin is scoped: after the serial run, parallel runners
        // spawn workers again.
        let outside = SweepRunner::new(4).map(&[0u8, 1, 2, 3], |_| std::thread::current().id());
        assert!(
            outside.iter().any(|&id| id != main_id),
            "flag must be cleared once the serial run returns"
        );
    }

    #[test]
    fn nested_sweeps_stay_within_budget_and_correct() {
        let outer = SweepRunner::new(4);
        let inner_grid: Vec<usize> = (0..8).collect();
        let out = outer.map(&[10usize, 20, 30], |&base| {
            // Inside a worker the nested runner is clamped to the
            // worker's budget (no jobs² thread explosion) and must
            // produce identical results.
            SweepRunner::new(4).map(&inner_grid, |&i| base + i)
        });
        assert_eq!(out[0], (10..18).collect::<Vec<_>>());
        assert_eq!(out[2], (30..38).collect::<Vec<_>>());
    }

    #[test]
    fn surplus_jobs_flow_to_nested_sweeps() {
        // 8 jobs over 2 items: each worker gets a budget of 4, so
        // inner grids parallelize instead of idling the surplus.
        let used_other_threads = SweepRunner::new(8).map(&[0u8, 1], |_| {
            let me = std::thread::current().id();
            SweepRunner::new(8)
                .map(&[0u8, 1, 2, 3], |_| std::thread::current().id())
                .iter()
                .any(|&id| id != me)
        });
        assert!(
            used_other_threads.iter().all(|&b| b),
            "inner grids must use the surplus budget"
        );
    }

    #[test]
    fn streaming_emits_in_item_order_while_parallel() {
        let runner = SweepRunner::new(4);
        let items: Vec<usize> = (0..32).collect();
        let mut seen = Vec::new();
        let out = runner.run_stream(
            &items,
            |&i| {
                // Early items finish last, forcing out-of-order
                // completion.
                let spin = (32 - i) * 2000;
                let mut acc = 0u64;
                for k in 0..spin {
                    acc = acc.wrapping_add(k as u64);
                }
                std::hint::black_box(acc);
                i
            },
            |idx, r| seen.push((idx, r.value)),
        );
        assert_eq!(seen, (0..32).map(|i| (i, i)).collect::<Vec<_>>());
        assert_eq!(out.len(), 32);
    }

    #[test]
    #[should_panic(expected = "candidate 3 exploded")]
    fn worker_panic_propagates_instead_of_hanging() {
        let runner = SweepRunner::new(4);
        let items: Vec<usize> = (0..16).collect();
        runner.map(&items, |&i| {
            if i == 3 {
                panic!("candidate 3 exploded");
            }
            i
        });
    }

    #[test]
    fn timings_are_captured() {
        let runner = SweepRunner::new(2);
        let res = runner.run(&[1u32, 2, 3], |&x| x);
        assert_eq!(res.len(), 3);
        for r in &res {
            assert!(r.elapsed_s >= 0.0 && r.elapsed_s.is_finite());
        }
    }

    #[test]
    fn jobs_resolution() {
        assert_eq!(SweepRunner::new(0).jobs(), 1);
        assert_eq!(SweepRunner::new(8).jobs(), 8, "new() never clamps");
        assert!(SweepRunner::from_env().jobs() >= 1);
    }

    /// `--jobs N` (the `with_jobs` path) remembers the request but
    /// never runs more workers than the host has cores, so sweep
    /// defaults cannot oversubscribe a small machine.
    #[test]
    fn explicit_jobs_clamp_to_available_cores() {
        let cores = host_cores();
        let r = SweepRunner::with_jobs(Some(4 * cores));
        assert_eq!(r.requested_jobs(), 4 * cores);
        assert_eq!(r.jobs(), cores);
        let r = SweepRunner::with_jobs(Some(1));
        assert_eq!(r.jobs(), 1);
        let env = SweepRunner::from_env();
        assert!(env.jobs() <= cores);
        assert!(env.jobs() <= env.requested_jobs());
    }
}
