//! Shared engine machinery: per-replica run state, micro-batch slot
//! assignment, and pipelined pass submission for decode bursts,
//! prefill batches, and mixed (chunked) rounds.

use crate::cluster_sim::ClusterSim;
use seesaw_hw::efficiency;
use seesaw_kv::PagedKvCache;
use seesaw_parallel::ParallelConfig;
use seesaw_roofline::{BatchShape, Roofline, Stage};
use seesaw_sim::{TaskHandle, TaskKind};
use seesaw_workload::Request;

/// Engines admit from the queue head and idle to the *head's* arrival
/// time, so a request slice must be nondecreasing in `arrival_s`
/// (every in-repo generator emits arrivals that way; offline all-zero
/// streams trivially qualify). An out-of-order slice would silently
/// charge later-queued-but-earlier-arriving requests the head's wait
/// as TTFT — reject it up front instead.
pub fn assert_arrivals_sorted(requests: &[Request]) {
    if let Some(w) = requests
        .windows(2)
        .find(|w| w[0].arrival_s > w[1].arrival_s)
    {
        panic!(
            "requests must be sorted by arrival time: request {} arrives at {}s after \
             request {} at {}s",
            w[1].id, w[1].arrival_s, w[0].id, w[0].arrival_s
        );
    }
}

/// A sequence currently resident in GPU KV cache and decoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunSeq {
    /// Request id.
    pub id: u64,
    /// Current context length (prompt + generated so far).
    pub ctx: usize,
    /// Decode steps still to run.
    pub remaining: usize,
}

/// Per-DP-replica engine state.
#[derive(Debug)]
pub struct Replica {
    /// Data-parallel rank.
    pub dp_rank: usize,
    /// GPU KV cache for this replica.
    pub kv: PagedKvCache,
    /// Sequences decoding on this replica.
    pub running: Vec<RunSeq>,
    /// Per-micro-batch-slot pipeline tails (length = PP), chaining
    /// rounds so the pipeline never drains between scheduler
    /// decisions.
    pub tails: Vec<Option<TaskHandle>>,
}

impl Replica {
    /// Fresh replica with `capacity_tokens` of KV and `pp` pipeline
    /// slots.
    pub fn new(dp_rank: usize, capacity_tokens: u64, pp: usize) -> Self {
        Replica {
            dp_rank,
            kv: PagedKvCache::new(capacity_tokens, PagedKvCache::DEFAULT_BLOCK_TOKENS),
            running: Vec::new(),
            tails: vec![None; pp],
        }
    }

    /// Largest burst every running sequence survives (min remaining),
    /// capped at `cap`. Returns 0 when nothing is running.
    pub fn max_burst(&self, cap: usize) -> usize {
        self.running
            .iter()
            .map(|s| s.remaining)
            .min()
            .unwrap_or(0)
            .min(cap)
    }

    /// Apply `rounds` decode rounds: advance contexts, retire finished
    /// sequences (freeing their KV), and return them.
    pub fn advance_decode(&mut self, rounds: usize) -> Vec<RunSeq> {
        debug_assert!(self.running.iter().all(|s| s.remaining >= rounds));
        let mut finished = Vec::new();
        let mut i = 0;
        while i < self.running.len() {
            self.running[i].ctx += rounds;
            self.running[i].remaining -= rounds;
            if self.running[i].remaining == 0 {
                let seq = self.running.swap_remove(i);
                self.kv.free(seq.id).expect("running seq must be resident");
                finished.push(seq);
            } else {
                i += 1;
            }
        }
        finished
    }

    /// Reset pipeline tails (after a drain, e.g. at re-sharding).
    pub fn reset_tails(&mut self, pp: usize) {
        self.tails = vec![None; pp];
    }
}

/// Per-stage service durations for a pure-stage pass, including the
/// inter-stage activation hop on all but the last stage.
pub fn stage_durations(
    rl: &Roofline,
    cfg: ParallelConfig,
    stage: Stage,
    shape: &BatchShape,
) -> Vec<f64> {
    let mut durs = Vec::with_capacity(cfg.pp);
    stage_durations_into(rl, cfg, stage, shape, &mut durs);
    durs
}

/// [`stage_durations`] writing into a caller-owned buffer, so burst
/// loops reuse one allocation across rounds.
pub fn stage_durations_into(
    rl: &Roofline,
    cfg: ParallelConfig,
    stage: Stage,
    shape: &BatchShape,
    durs: &mut Vec<f64>,
) {
    let p2p = if cfg.pp > 1 {
        rl.cluster().interconnect.p2p_time(rl.p2p_bytes(shape))
    } else {
        0.0
    };
    durs.clear();
    durs.extend((0..cfg.pp).map(|s| {
        rl.stage_time(cfg, s, stage, shape) + if s + 1 < cfg.pp { p2p } else { 0.0 }
    }));
}

/// Per-stage durations for a mixed (chunked prefill + decode) pass.
pub fn mixed_stage_durations(
    rl: &Roofline,
    cfg: ParallelConfig,
    prefill: &BatchShape,
    decode: &BatchShape,
) -> Vec<f64> {
    let layer = rl.layer_cost_mixed(prefill, decode, cfg.tp).layer_time();
    let merged = prefill.merge(decode);
    let p2p = if cfg.pp > 1 {
        rl.cluster().interconnect.p2p_time(rl.p2p_bytes(&merged))
    } else {
        0.0
    };
    (0..cfg.pp)
        .map(|s| {
            let (a, b) = cfg.stage_layers(rl.model().num_layers, s);
            (b - a) as f64 * layer + if s + 1 < cfg.pp { p2p } else { 0.0 }
        })
        .collect()
}

/// Indices of `replica.running` assigned to each micro-batch slot
/// (round-robin; stable while membership is unchanged).
pub fn slot_members(replica: &Replica, pp: usize) -> Vec<Vec<usize>> {
    let mut slots = vec![Vec::new(); pp];
    for (i, _) in replica.running.iter().enumerate() {
        slots[i % pp].push(i);
    }
    slots
}

/// Submit `rounds` chained decode rounds for one replica (each round
/// advances every running sequence one token through all pipeline
/// stages). Returns the join of the final round's slot tails, or
/// `None` if nothing is running.
///
/// The caller must `run_until` the returned handle and then call
/// [`Replica::advance_decode`] with the same `rounds`.
pub fn submit_decode_burst(
    cs: &mut ClusterSim,
    rl: &Roofline,
    cfg: ParallelConfig,
    replica: &mut Replica,
    rounds: usize,
) -> Option<TaskHandle> {
    if replica.running.is_empty() || rounds == 0 {
        return None;
    }
    let slots = slot_members(replica, cfg.pp);
    let overhead = efficiency::STEP_SCHED_OVERHEAD_S / cfg.pp as f64;
    let mut last: Vec<TaskHandle> = Vec::new();
    let mut durs: Vec<f64> = Vec::new();
    for r in 0..rounds {
        last.clear();
        for (slot, members) in slots.iter().enumerate() {
            if members.is_empty() {
                continue;
            }
            let shape =
                BatchShape::decode_iter(members.iter().map(|&i| replica.running[i].ctx + r + 1));
            stage_durations_into(rl, cfg, Stage::Decode, &shape, &mut durs);
            durs[0] += overhead;
            let tail =
                cs.submit_pass(cfg, replica.dp_rank, &durs, replica.tails[slot], TaskKind::Compute);
            replica.tails[slot] = Some(tail);
            last.push(tail);
        }
    }
    Some(cs.join(&last))
}

/// Balanced assignment of a prefill batch to up to `pp` micro-batch
/// slots (longest-processing-time greedy on token counts).
pub fn assign_prefill_slots(seqs: &[(u64, usize)], pp: usize) -> Vec<Vec<(u64, usize)>> {
    let mut order: Vec<&(u64, usize)> = seqs.iter().collect();
    order.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    let nslots = pp.min(seqs.len()).max(1);
    let mut slots: Vec<Vec<(u64, usize)>> = vec![Vec::new(); nslots];
    let mut load = vec![0usize; nslots];
    for &&(id, len) in &order {
        let lightest = (0..nslots).min_by_key(|&s| load[s]).expect("nslots >= 1");
        slots[lightest].push((id, len));
        load[lightest] += len;
    }
    slots
}

/// Submit a pipelined prefill pass for a batch of whole prompts on one
/// replica. Returns one `(handle, member ids)` pair per micro-batch
/// slot used; the handle completes when that slot's sequences exit the
/// last pipeline stage (swap-outs should depend on it).
///
/// Unlike decode rounds, consecutive prefill micro-batches carry no
/// data dependency, so no slot-tail chaining is used — the stage
/// resources' FIFO queues provide maximal pipelining on their own.
pub fn submit_prefill_batch(
    cs: &mut ClusterSim,
    rl: &Roofline,
    cfg: ParallelConfig,
    replica: &mut Replica,
    seqs: &[(u64, usize)],
) -> Vec<(TaskHandle, Vec<u64>)> {
    if seqs.is_empty() {
        return Vec::new();
    }
    let assignment = assign_prefill_slots(seqs, cfg.pp);
    let overhead = efficiency::STEP_SCHED_OVERHEAD_S / cfg.pp as f64;
    let mut out = Vec::new();
    for members in assignment.iter() {
        if members.is_empty() {
            continue;
        }
        let shape = BatchShape::prefill_iter(members.iter().map(|&(_, l)| l));
        let mut durs = stage_durations(rl, cfg, Stage::Prefill, &shape);
        durs[0] += overhead;
        let tail = cs.submit_pass(cfg, replica.dp_rank, &durs, None, TaskKind::Compute);
        out.push((tail, members.iter().map(|&(id, _)| id).collect()));
    }
    out
}

/// Submit one mixed round (chunked prefill riding on the decode
/// batch). `chunk` is the prefill sub-batch, attached to slot
/// `chunk_slot % PP`; rotating that slot across rounds lets
/// consecutive chunks wavefront through the pipeline the way real
/// chunked-prefill schedulers interleave virtual engines, instead of
/// each chunk waiting for the previous one to exit the last stage.
/// Returns the join of this round's slot tails.
pub fn submit_mixed_round(
    cs: &mut ClusterSim,
    rl: &Roofline,
    cfg: ParallelConfig,
    replica: &mut Replica,
    chunk: &BatchShape,
    chunk_slot: usize,
) -> Option<TaskHandle> {
    let slots = slot_members(replica, cfg.pp);
    if replica.running.is_empty() && chunk.is_empty() {
        return None;
    }
    let overhead = efficiency::STEP_SCHED_OVERHEAD_S / cfg.pp as f64;
    let mut last = Vec::new();
    for (slot, members) in slots.iter().enumerate() {
        let dshape =
            BatchShape::decode_iter(members.iter().map(|&i| replica.running[i].ctx + 1));
        let pshape = if slot == chunk_slot % cfg.pp { *chunk } else { BatchShape::empty() };
        if dshape.seqs == 0 && pshape.is_empty() {
            continue;
        }
        let mut durs = mixed_stage_durations(rl, cfg, &pshape, &dshape);
        durs[0] += overhead;
        let tail =
            cs.submit_pass(cfg, replica.dp_rank, &durs, replica.tails[slot], TaskKind::Compute);
        replica.tails[slot] = Some(tail);
        last.push(tail);
    }
    Some(cs.join(&last))
}

#[cfg(test)]
mod tests {
    use super::*;
    use seesaw_hw::ClusterSpec;
    use seesaw_model::presets;

    fn setup() -> (ClusterSim, Roofline) {
        let cluster = ClusterSpec::a10x4();
        let rl = Roofline::new(cluster.clone(), presets::llama2_13b());
        (ClusterSim::new(cluster), rl)
    }

    #[test]
    fn decode_burst_advances_and_retires() {
        let (mut cs, rl) = setup();
        let cfg = ParallelConfig::new(1, 2, 2);
        let mut rep = Replica::new(0, 100_000, cfg.pp);
        rep.kv.allocate(1, 600).unwrap();
        rep.kv.allocate(2, 700).unwrap();
        rep.running.push(RunSeq { id: 1, ctx: 500, remaining: 3 });
        rep.running.push(RunSeq { id: 2, ctx: 600, remaining: 5 });
        let burst = rep.max_burst(64);
        assert_eq!(burst, 3);
        let h = submit_decode_burst(&mut cs, &rl, cfg, &mut rep, burst).unwrap();
        cs.sim.run_until(h);
        let done = rep.advance_decode(burst);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].id, 1);
        assert_eq!(rep.running.len(), 1);
        assert_eq!(rep.running[0].ctx, 603);
        assert_eq!(rep.kv.num_seqs(), 1);
        assert!(cs.now().as_secs() > 0.0);
    }

    #[test]
    fn pipelined_decode_faster_than_serialized() {
        // With PP=2, two slots should overlap: a burst of rounds takes
        // well under 2x the single-slot time.
        let (mut cs, rl) = setup();
        let cfg = ParallelConfig::pp(2);
        let mut rep = Replica::new(0, 1_000_000, cfg.pp);
        for id in 0..8u64 {
            rep.kv.allocate(id, 1000).unwrap();
            rep.running.push(RunSeq { id, ctx: 1000, remaining: 20 });
        }
        let h = submit_decode_burst(&mut cs, &rl, cfg, &mut rep, 20).unwrap();
        let t_pipelined = cs.sim.run_until(h).as_secs();

        // Serialized estimate: sum of all stage durations.
        let shape = BatchShape::decode(&[1000; 4]);
        let per_round: f64 = stage_durations(&rl, cfg, Stage::Decode, &shape).iter().sum();
        let serial = per_round * 2.0 * 20.0;
        assert!(
            t_pipelined < 0.7 * serial,
            "pipelined {t_pipelined:.4}s vs serial {serial:.4}s"
        );
    }

    #[test]
    fn prefill_slot_assignment_balances_tokens() {
        let seqs: Vec<(u64, usize)> = vec![(0, 4000), (1, 1000), (2, 1000), (3, 1000), (4, 1000)];
        let slots = assign_prefill_slots(&seqs, 2);
        let loads: Vec<usize> = slots
            .iter()
            .map(|s| s.iter().map(|&(_, l)| l).sum())
            .collect();
        assert_eq!(loads.iter().sum::<usize>(), 8000);
        assert!(loads.iter().max().unwrap() - loads.iter().min().unwrap() <= 2000);
    }

    #[test]
    fn prefill_batch_returns_all_ids() {
        let (mut cs, rl) = setup();
        let cfg = ParallelConfig::new(1, 2, 2);
        let mut rep = Replica::new(0, 1_000_000, cfg.pp);
        let seqs: Vec<(u64, usize)> = (0..6).map(|i| (i, 512)).collect();
        let parts = submit_prefill_batch(&mut cs, &rl, cfg, &mut rep, &seqs);
        let mut ids: Vec<u64> = parts.iter().flat_map(|(_, v)| v.clone()).collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..6).collect::<Vec<_>>());
        let join = cs.join(&parts.into_iter().map(|(h, _)| h).collect::<Vec<_>>());
        assert!(cs.sim.run_until(join).as_secs() > 0.0);
    }

    #[test]
    fn mixed_round_runs_with_empty_decode() {
        let (mut cs, rl) = setup();
        let cfg = ParallelConfig::tp(4);
        let mut rep = Replica::new(0, 1_000_000, cfg.pp);
        let chunk = BatchShape::prefill_chunk(512, 0);
        let h = submit_mixed_round(&mut cs, &rl, cfg, &mut rep, &chunk, 0).unwrap();
        assert!(cs.sim.run_until(h).as_secs() > 0.0);
        // Nothing at all -> None.
        assert!(
            submit_mixed_round(&mut cs, &rl, cfg, &mut rep, &BatchShape::empty(), 0).is_none()
        );
    }

    #[test]
    fn empty_burst_is_none() {
        let (mut cs, rl) = setup();
        let cfg = ParallelConfig::tp(4);
        let mut rep = Replica::new(0, 1_000, cfg.pp);
        assert!(submit_decode_burst(&mut cs, &rl, cfg, &mut rep, 5).is_none());
        assert_eq!(rep.max_burst(64), 0);
    }
}
