//! Inference engines running on the simulated cluster.
//!
//! Three engines share one substrate (`driver`):
//!
//! * [`vllm`] — the baseline: a static-parallelism engine with
//!   continuous batching and a choice of prefill-prioritizing,
//!   decode-prioritizing, or chunked-prefill scheduling (vLLM 0.5.4's
//!   policy family, per the paper's §6.1 baseline setup).
//! * [`seesaw`] — the paper's contribution: distinct prefill/decode
//!   parallelizations with dynamic model re-sharding, tiered CPU KV
//!   buffering, transition-minimizing scheduling, and the asynchronous
//!   swap pipeline of §5.2.
//! * [`disagg`] — a DistServe-style spatial prefill/decode
//!   disaggregation model, used for the §3.2 / Figure 4 analysis.
//!
//! Every engine consumes a [`seesaw_workload::Request`] set and
//! produces an [`EngineReport`] with end-to-end throughput (the
//! paper's metric) plus phase wall-times, transfer accounting, and a
//! per-request latency timeline (TTFT/TPOT/e2e percentiles).
//!
//! Requests may carry arrival times (`Request::arrival_s`, online
//! serving): engines only admit a request once the simulated clock
//! has reached its arrival, idle the cluster when the queue is empty,
//! and the recorded timeline then measures queueing + service latency
//! under load. All-zero arrivals reproduce the offline path exactly.
//!
//! # Simulation granularity
//!
//! Engines make scheduling decisions at *round* boundaries (one decode
//! round = one token for every running sequence). Between decisions
//! they submit task DAGs to the discrete-event simulator; pipeline
//! micro-batches chain across rounds through per-slot tails, so
//! pipeline-parallel configurations reach steady state without drain
//! bubbles between rounds. DP replicas transition in lockstep
//! (matching the paper's whole-cluster re-sharding).

pub mod autotune;
pub mod cluster_sim;
pub mod disagg;
pub mod driver;
pub mod online;
pub mod report;
pub mod seesaw;
pub mod stepper;
pub mod sweep;
pub mod timing;
pub mod vllm;

pub use online::{OnlineEngine, ServiceRates};
pub use report::{EngineReport, Phase, PhaseSpan};
pub use stepper::{live_state, EngineStepper, LiveState};
pub use sweep::{SweepResult, SweepRunner};
pub use timing::TimingRecorder;

use serde::{Deserialize, Serialize};

/// Scheduling policy for the static-parallelism baseline engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SchedulingPolicy {
    /// Eagerly prefill whenever KV space allows (vLLM default;
    /// maximizes batch size, pauses decodes during prefill passes).
    PrefillPrioritized,
    /// Finish every decode in the batch before prefilling the next
    /// batch (FasterTransformer-style; minimizes stage interleaving).
    DecodePrioritized,
    /// Sarathi-style chunked prefill: split prompts into fixed-size
    /// chunks and piggyback them on decode batches.
    ChunkedPrefill {
        /// Prefill tokens added to each mixed batch.
        chunk_tokens: usize,
    },
}

impl std::fmt::Display for SchedulingPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SchedulingPolicy::PrefillPrioritized => write!(f, "prefill-prio"),
            SchedulingPolicy::DecodePrioritized => write!(f, "decode-prio"),
            SchedulingPolicy::ChunkedPrefill { chunk_tokens } => {
                write!(f, "chunked({chunk_tokens})")
            }
        }
    }
}

#[cfg(test)]
mod hot_path_hygiene {
    /// Source-level guard for the per-simulation hot path: spec deep
    /// clones must not creep back into the engine run loops. `Arc`
    /// handle bumps are written `Arc::clone(..)`, so any textual
    /// `cluster.clone()` / `model.clone()` / `phases.clone()` in these
    /// files is a deep copy (or an accidental `Arc` clone spelled in a
    /// way this guard cannot distinguish from one — spell it
    /// `Arc::clone` instead).
    #[test]
    fn engine_run_paths_are_deep_clone_free() {
        let sources = [
            ("seesaw.rs", include_str!("seesaw.rs")),
            ("vllm.rs", include_str!("vllm.rs")),
            ("cluster_sim.rs", include_str!("cluster_sim.rs")),
            ("driver.rs", include_str!("driver.rs")),
        ];
        let forbidden = ["cluster.clone()", "model.clone()", "phases.clone()"];
        for (file, text) in sources {
            // Only the shipped hot path counts; unit tests below the
            // `#[cfg(test)]` marker may clone freely.
            let text = text.split("#[cfg(test)]").next().expect("non-empty source");
            for (lineno, line) in text.lines().enumerate() {
                for pat in forbidden {
                    assert!(
                        !line.contains(pat),
                        "{file}:{}: hot path contains `{pat}` — share the \
                         spec via Arc::clone instead of deep-cloning",
                        lineno + 1
                    );
                }
            }
        }
    }
}
