//! Adapter that instantiates a [`ClusterSpec`] as simulator resources
//! and offers typed task submission for the engines.
//!
//! Per GPU, four resources mirror the hardware's independent engines:
//!
//! * `gpu{i}.compute` — the SMs (forward passes; collectives are
//!   folded into pass durations by the roofline, which models the TP
//!   group in lockstep),
//! * `gpu{i}.h2d` / `gpu{i}.d2h` — the two DMA directions of the PCIe
//!   host link (weight reloads, KV swaps),
//! * `gpu{i}.staging` — the worker's host-side staging thread
//!   (pinned ↔ shared-memory copies, §5.2).
//!
//! Because these are distinct resources, computation/communication
//! overlap (the paper's asynchronous pipeline) falls out of the task
//! graph naturally.

use seesaw_hw::ClusterSpec;
use seesaw_parallel::ParallelConfig;
use seesaw_sim::{ResourceId, SimTime, Simulator, TaskHandle, TaskKind};
use std::sync::Arc;

/// The simulated cluster: resources plus the underlying simulator.
///
/// The simulator itself is checked out of the calling thread's
/// [`seesaw_sim::ExecutorPool`] and returned on drop, so consecutive
/// candidate evaluations on one sweep worker reuse the task arena,
/// event heap, resource registry (when the GPU count matches), and
/// trace buffers instead of reallocating them per run.
#[derive(Debug)]
pub struct ClusterSim {
    /// The discrete-event simulator.
    pub sim: Simulator,
    /// Hardware description (shared handle, not a deep copy).
    pub cluster: Arc<ClusterSpec>,
    compute: Vec<ResourceId>,
    h2d: Vec<ResourceId>,
    d2h: Vec<ResourceId>,
    staging: Vec<ResourceId>,
    /// Reusable per-stage task-handle buffer for `submit_pass`.
    scratch: Vec<TaskHandle>,
}

impl Drop for ClusterSim {
    fn drop(&mut self) {
        seesaw_sim::release_pooled(std::mem::take(&mut self.sim));
    }
}

impl ClusterSim {
    /// Instantiate resources for every GPU of `cluster`.
    ///
    /// The simulator skips span recording ([`Simulator::without_trace`])
    /// — the fast path engines and autotune probes always take, since
    /// sweep throughput only needs the clock. Use
    /// [`ClusterSim::with_trace`] when the execution trace itself is
    /// the product (breakdown figures, timeline debugging).
    pub fn new(cluster: impl Into<Arc<ClusterSpec>>) -> Self {
        Self::build(cluster.into(), false)
    }

    /// Instantiate with span recording enabled.
    pub fn with_trace(cluster: impl Into<Arc<ClusterSpec>>) -> Self {
        Self::build(cluster.into(), true)
    }

    fn build(cluster: Arc<ClusterSpec>, trace: bool) -> Self {
        let mut sim = seesaw_sim::acquire_pooled();
        sim.set_tracing(trace);
        let n = cluster.num_gpus;
        // Resource ids are laid out deterministically (compute block,
        // then h2d, d2h, staging), so a pooled simulator with the same
        // resource count has exactly this registry already — skip
        // re-registering (and re-formatting the names). The layout
        // check below keeps this safe against any future caller that
        // releases differently-shaped simulators onto the same
        // thread's pool.
        let registry_matches = n > 0
            && sim.pool().len() == 4 * n
            && sim.pool().name(sim.pool().id(0)) == "gpu0.compute";
        if !registry_matches {
            sim.reset_resources();
            for i in 0..n {
                sim.add_resource(format!("gpu{i}.compute"));
            }
            for i in 0..n {
                sim.add_resource(format!("gpu{i}.h2d"));
            }
            for i in 0..n {
                sim.add_resource(format!("gpu{i}.d2h"));
            }
            for i in 0..n {
                sim.add_resource(format!("gpu{i}.staging"));
            }
        }
        let block =
            |b: usize| -> Vec<ResourceId> { (0..n).map(|i| sim.pool().id(b * n + i)).collect() };
        let (compute, h2d, d2h, staging) = (block(0), block(1), block(2), block(3));
        ClusterSim {
            sim,
            cluster,
            compute,
            h2d,
            d2h,
            staging,
            scratch: Vec::new(),
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.sim.now()
    }

    /// Submit one micro-batch's traversal of all pipeline stages of
    /// replica `dp_rank`: stage `s` occupies every GPU of its TP group
    /// for `stage_durations[s]` seconds, after stage `s-1` finishes
    /// (and after `dep`, the micro-batch slot's previous-round tail).
    /// Returns a handle that completes when the last stage does.
    pub fn submit_pass(
        &mut self,
        cfg: ParallelConfig,
        dp_rank: usize,
        stage_durations: &[f64],
        dep: Option<TaskHandle>,
        kind: TaskKind,
    ) -> TaskHandle {
        assert_eq!(stage_durations.len(), cfg.pp, "one duration per stage");
        let mut parts = std::mem::take(&mut self.scratch);
        let mut prev = dep;
        for (s, &dur) in stage_durations.iter().enumerate() {
            parts.clear();
            for t in 0..cfg.tp {
                let g = cfg.gpu_index(dp_rank, s, t);
                parts.push(self.sim.submit_on(self.compute[g], dur, kind, g as u64, prev));
            }
            prev = Some(if parts.len() == 1 {
                parts[0]
            } else {
                self.sim.submit_sync(&parts)
            });
        }
        parts.clear();
        self.scratch = parts;
        prev.expect("pp >= 1 guarantees at least one stage")
    }

    /// Submit a device-to-host transfer on GPU `gpu`'s D2H DMA engine.
    pub fn submit_d2h(
        &mut self,
        gpu: usize,
        duration: f64,
        dep: Option<TaskHandle>,
        kind: TaskKind,
    ) -> TaskHandle {
        self.sim.submit_on(self.d2h[gpu], duration, kind, gpu as u64, dep)
    }

    /// Submit a host-to-device transfer on GPU `gpu`'s H2D DMA engine.
    pub fn submit_h2d(
        &mut self,
        gpu: usize,
        duration: f64,
        dep: Option<TaskHandle>,
        kind: TaskKind,
    ) -> TaskHandle {
        self.sim.submit_on(self.h2d[gpu], duration, kind, gpu as u64, dep)
    }

    /// Submit a host-side staging copy on GPU `gpu`'s staging thread.
    pub fn submit_staging(
        &mut self,
        gpu: usize,
        duration: f64,
        dep: Option<TaskHandle>,
    ) -> TaskHandle {
        self.sim
            .submit_on(self.staging[gpu], duration, TaskKind::StagingCopy, gpu as u64, dep)
    }

    /// Submit a fixed-duration overhead task on a GPU's compute engine
    /// (communicator teardown/setup during re-sharding).
    pub fn submit_compute_overhead(
        &mut self,
        gpu: usize,
        duration: f64,
        dep: Option<TaskHandle>,
    ) -> TaskHandle {
        self.sim
            .submit_on(self.compute[gpu], duration, TaskKind::Overhead, gpu as u64, dep)
    }

    /// Mean busy fraction of the GPUs' compute engines over the run so
    /// far — the utilization figure engines report.
    pub fn mean_compute_utilization(&self) -> f64 {
        if self.compute.is_empty() {
            return 0.0;
        }
        let sum: f64 = self.compute.iter().map(|&r| self.sim.utilization(r)).sum();
        sum / self.compute.len() as f64
    }

    /// Join several handles into one (no dependency list allocated).
    pub fn join(&mut self, handles: &[TaskHandle]) -> TaskHandle {
        match handles.len() {
            1 => handles[0],
            _ => self.sim.submit_sync(handles),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seesaw_hw::ClusterSpec;

    #[test]
    fn pass_occupies_tp_group_in_lockstep() {
        let mut cs = ClusterSim::new(ClusterSpec::a10x4());
        let cfg = ParallelConfig::new(1, 2, 2);
        let h = cs.submit_pass(cfg, 0, &[1.0, 2.0], None, TaskKind::Compute);
        let end = cs.sim.run_until(h);
        assert_eq!(end.as_secs(), 3.0);
    }

    #[test]
    fn micro_batches_pipeline_across_stages() {
        // Two micro-batches, two stages of 1s each: second ubatch's
        // stage0 overlaps first ubatch's stage1 -> finish at 3s.
        let mut cs = ClusterSim::new(ClusterSpec::a10x4());
        let cfg = ParallelConfig::pp(2);
        let a = cs.submit_pass(cfg, 0, &[1.0, 1.0], None, TaskKind::Compute);
        let b = cs.submit_pass(cfg, 0, &[1.0, 1.0], None, TaskKind::Compute);
        cs.sim.run_until(a);
        let end = cs.sim.run_until(b);
        assert_eq!(end.as_secs(), 3.0);
    }

    #[test]
    fn transfers_overlap_compute() {
        let mut cs = ClusterSim::new(ClusterSpec::a10x4());
        let cfg = ParallelConfig::new(1, 1, 1);
        let pass = cs.submit_pass(cfg, 0, &[2.0], None, TaskKind::Compute);
        // An independent H2D transfer runs concurrently.
        let xfer = cs.submit_h2d(0, 2.0, None, TaskKind::SwapIn);
        cs.sim.run_until(pass);
        let end = cs.sim.run_until(xfer);
        assert_eq!(end.as_secs(), 2.0, "DMA must overlap compute");
    }

    #[test]
    fn chained_rounds_have_no_drain_bubble() {
        // Round 2 of a 2-stage pipeline starts its stage0 immediately
        // after round 1's stage0 vacates the resource, not after the
        // whole round 1 drains.
        let mut cs = ClusterSim::new(ClusterSpec::a10x4());
        let cfg = ParallelConfig::pp(2);
        let r1 = cs.submit_pass(cfg, 0, &[1.0, 1.0], None, TaskKind::Compute);
        let r2 = cs.submit_pass(cfg, 0, &[1.0, 1.0], Some(r1), TaskKind::Compute);
        // With dep on r1's completion, stage0 of r2 starts at 2.0 and
        // r2 completes at 4.0. (The per-slot tail chaining in the
        // driver avoids even this by keying on slots, tested there.)
        assert_eq!(cs.sim.run_until(r2).as_secs(), 4.0);
    }

    #[test]
    fn trace_is_opt_in() {
        let mut fast = ClusterSim::new(ClusterSpec::a10x4());
        let h = fast.submit_pass(ParallelConfig::tp(4), 0, &[1.0], None, TaskKind::Compute);
        fast.sim.run_until(h);
        assert!(fast.sim.trace().spans().is_empty(), "fast path records nothing");

        let mut traced = ClusterSim::with_trace(ClusterSpec::a10x4());
        let h = traced.submit_pass(ParallelConfig::tp(4), 0, &[1.0], None, TaskKind::Compute);
        traced.sim.run_until(h);
        assert!(!traced.sim.trace().spans().is_empty(), "trace on request");
    }

    #[test]
    fn stage_gpus_are_tp_group() {
        // The TP-group mapping the pass/swap loops iterate inline.
        let cfg = ParallelConfig::new(2, 2, 2);
        let stage = |d: usize, s: usize| -> Vec<usize> {
            (0..cfg.tp).map(|t| cfg.gpu_index(d, s, t)).collect()
        };
        assert_eq!(stage(0, 0), vec![0, 1]);
        assert_eq!(stage(0, 1), vec![2, 3]);
        assert_eq!(stage(1, 0), vec![4, 5]);
    }
}
