//! The engine-agnostic online-serving interface.
//!
//! Every engine in this crate ([`crate::seesaw::SeesawEngine`],
//! [`crate::vllm::VllmEngine`], [`crate::disagg::DisaggEngine`])
//! consumes an arrival-sorted request stream and produces an
//! [`EngineReport`]; [`OnlineEngine`] captures exactly that contract
//! so harnesses — and the fleet tier's replicas — can hold engines as
//! trait objects and mix backends freely.
//!
//! Cost-aware request routers additionally need a cheap *a-priori*
//! estimate of what a request will cost on a given engine, before any
//! simulation runs. [`ServiceRates`] provides that: analytic
//! roofline-derived token rates (the same Eq. 1/2 closed forms the
//! auto-tuner ranks candidates with), from which a request's
//! steady-state capacity occupancy is `in/prefill_rate +
//! out/decode_rate` seconds.

use crate::report::EngineReport;
use seesaw_workload::{LatencyStats, Request, RequestMap};
use serde::{Deserialize, Serialize};

/// Analytic steady-state service rates of an engine, for cost-aware
/// routing. Derived from the roofline model (Eq. 1/2), not measured:
/// routers must rank replicas *before* simulating them.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServiceRates {
    /// Sustained prefill rate, prompt tokens/second.
    pub prefill_tokens_per_sec: f64,
    /// Sustained decode rate, generated tokens/second (aggregate
    /// across the batch — a request's decode occupancy is its share
    /// of this budget).
    pub decode_tokens_per_sec: f64,
}

impl ServiceRates {
    /// Estimated capacity occupancy of one request, seconds: the
    /// slice of the engine's steady-state throughput budget the
    /// request consumes (prefill and decode phases add, as in the
    /// paper's Eq. 1/2 request-rate estimate).
    pub fn est_service_s(&self, req: &Request) -> f64 {
        req.input_len as f64 / self.prefill_tokens_per_sec
            + req.output_len as f64 / self.decode_tokens_per_sec
    }
}

/// An engine that serves an arrival-sorted request stream to
/// completion.
///
/// Implementations must be deterministic: the same request slice
/// always produces the same report, and `run` must accept streams
/// whose `arrival_s` are nondecreasing (all-zero arrivals are the
/// offline path). `Send + Sync` because fleet replicas run
/// concurrently on a [`crate::SweepRunner`].
pub trait OnlineEngine: Send + Sync {
    /// Configuration label (the paper's notation where applicable,
    /// e.g. `"T4P2"`, `"P4->T4"`).
    fn label(&self) -> String;

    /// Process `requests` (sorted by arrival time) to completion.
    fn run(&self, requests: &[Request]) -> EngineReport;

    /// Analytic service rates for a workload averaging `avg_in`
    /// prompt and `avg_out` generated tokens — the basis for
    /// cost-aware routing (`in/prefill + out/decode` seconds per
    /// request).
    fn service_rates(&self, avg_in: usize, avg_out: usize) -> ServiceRates;

    /// [`OnlineEngine::run`] with span recording enabled
    /// ([`seesaw_sim::Trace`]), returning the report plus the
    /// per-category busy-time summary — the fleet `--breakdown`
    /// path. The report must equal `run`'s byte-for-byte (tracing
    /// only observes). Engines without a traced path fall back to an
    /// untraced run and an all-zero summary, which renders as an
    /// empty breakdown rather than wrong numbers.
    fn run_traced(&self, requests: &[Request]) -> (EngineReport, seesaw_sim::TraceSummary) {
        (self.run(requests), seesaw_sim::TraceSummary::default())
    }

    /// [`OnlineEngine::run`] for a replica that only becomes ready
    /// (weights loaded) at `ready_s` seconds: requests arriving
    /// earlier wait — their *dispatch* is clamped to `ready_s`, riding
    /// the engines' existing arrival-gated admission control — but the
    /// returned timeline keeps the **true** arrival times, so TTFT and
    /// end-to-end latency include the warm-up wait. Per-request TTFT
    /// under a later `ready_s` therefore never decreases: delayed
    /// requests start no earlier, and requests behind them inherit the
    /// longer backlog.
    ///
    /// `ready_s <= ` the first arrival is a no-op fast path returning
    /// `run` byte-for-byte (a warm replica's report is unchanged).
    /// The autoscale controller's router never assigns traffic to a
    /// warming replica, so for router-assigned streams this method
    /// *is* that fast path — the clamp is the engine-level guard of
    /// the same contract for streams assembled without the router.
    fn run_ready(&self, requests: &[Request], ready_s: f64) -> EngineReport {
        assert!(
            ready_s.is_finite() && ready_s >= 0.0,
            "replica ready time must be finite and non-negative, got {ready_s}"
        );
        // Arrivals are sorted, so the first one is the earliest.
        if requests.first().map_or(true, |r| r.arrival_s >= ready_s) {
            return self.run(requests);
        }
        let clamped: Vec<Request> = requests
            .iter()
            .map(|r| r.with_arrival(r.arrival_s.max(ready_s)))
            .collect();
        let mut report = self.run(&clamped);
        let true_arrivals = RequestMap::new(requests);
        for t in &mut report.timeline {
            t.arrival_s = true_arrivals.req(t.id).arrival_s;
        }
        report.latency = LatencyStats::from_timeline(&report.timeline);
        report
    }
}

/// Mean input/output lengths of a request set, rounded, each at least
/// 1 (the convention every analytic estimate in this workspace uses).
/// `(1, 1)` for an empty set.
pub fn mean_lengths(requests: &[Request]) -> (usize, usize) {
    if requests.is_empty() {
        return (1, 1);
    }
    let n = requests.len() as f64;
    let avg_in = requests.iter().map(|r| r.input_len as u64).sum::<u64>() as f64 / n;
    let avg_out = requests.iter().map(|r| r.output_len as u64).sum::<u64>() as f64 / n;
    ((avg_in.round() as usize).max(1), (avg_out.round() as usize).max(1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn occupancy_adds_phases() {
        let rates = ServiceRates {
            prefill_tokens_per_sec: 1000.0,
            decode_tokens_per_sec: 100.0,
        };
        let req = Request::new(0, 500, 50);
        assert!((rates.est_service_s(&req) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mean_lengths_round_and_clamp() {
        assert_eq!(mean_lengths(&[]), (1, 1));
        let reqs = vec![Request::new(0, 100, 10), Request::new(1, 301, 11)];
        assert_eq!(mean_lengths(&reqs), (201, 11)); // 200.5 rounds up, 10.5 rounds up
    }
}
