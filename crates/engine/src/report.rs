//! Run reports common to every engine.

use seesaw_workload::{LatencyStats, RequestTiming, RunStats, SloSpec};
use serde::{Deserialize, Serialize};

/// Engine phase, for the execution timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Phase {
    /// Prompt processing under `c_p`.
    Prefill,
    /// Generation under `c_d`.
    Decode,
    /// Model re-sharding between configurations.
    Reshard,
}

impl std::fmt::Display for Phase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Phase::Prefill => write!(f, "prefill"),
            Phase::Decode => write!(f, "decode"),
            Phase::Reshard => write!(f, "reshard"),
        }
    }
}

/// One contiguous phase interval in an engine run's timeline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PhaseSpan {
    /// What the cluster was doing.
    pub phase: Phase,
    /// Interval start, seconds.
    pub start_s: f64,
    /// Interval end, seconds.
    pub end_s: f64,
}

impl PhaseSpan {
    /// Interval length in seconds.
    pub fn duration(&self) -> f64 {
        self.end_s - self.start_s
    }
}

/// Outcome of one engine run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EngineReport {
    /// Configuration label in the paper's notation (`"T4P2"`,
    /// `"P4->T4"`).
    pub label: String,
    /// Request/token counts and end-to-end duration.
    pub stats: RunStats,
    /// Wall-clock spent in pure-prefill phases/passes, seconds.
    pub prefill_wall_s: f64,
    /// Wall-clock spent in pure-decode phases/passes, seconds.
    pub decode_wall_s: f64,
    /// Wall-clock spent in mixed (chunked) passes, seconds.
    pub mixed_wall_s: f64,
    /// Wall-clock spent re-sharding (weight reload + reconfiguration),
    /// seconds.
    pub reshard_wall_s: f64,
    /// Prefill→decode + decode→prefill transitions performed.
    pub transitions: usize,
    /// KV bytes swapped out to the CPU buffer.
    pub swap_out_bytes: u64,
    /// KV bytes swapped in from the CPU buffer.
    pub swap_in_bytes: u64,
    /// Execution timeline (Seesaw fills this; static engines leave it
    /// empty).
    pub phases: Vec<PhaseSpan>,
    /// Mean busy fraction of the GPUs' compute engines over the run.
    pub gpu_utilization: f64,
    /// Per-request arrival/first-token/completion timestamps, sorted
    /// by request id (round-granular: a request completes at the end
    /// of the decode burst that retired it).
    pub timeline: Vec<RequestTiming>,
    /// Latency percentiles over [`EngineReport::timeline`] (`None`
    /// when the run processed no requests). Offline runs report them
    /// too — every arrival is 0.0, so TTFT is the absolute
    /// first-token time.
    pub latency: Option<LatencyStats>,
}

impl EngineReport {
    /// End-to-end throughput in requests/second (the paper's primary
    /// metric).
    pub fn throughput_rps(&self) -> f64 {
        self.stats.throughput_rps()
    }

    /// Generated tokens/second.
    pub fn output_tokens_per_sec(&self) -> f64 {
        self.stats.output_tokens_per_sec()
    }

    /// Wall time not attributed to prefill/decode/mixed/reshard
    /// (stage-transition drains, initial fills, etc.).
    pub fn other_wall_s(&self) -> f64 {
        (self.stats.duration_s
            - self.prefill_wall_s
            - self.decode_wall_s
            - self.mixed_wall_s
            - self.reshard_wall_s)
            .max(0.0)
    }

    /// Fraction of the timeline meeting `slo` (0.0 with no requests).
    pub fn slo_attainment(&self, slo: SloSpec) -> f64 {
        slo.attainment(&self.timeline)
    }

    /// SLO-meeting requests per second over the run's duration.
    pub fn goodput_rps(&self, slo: SloSpec) -> f64 {
        slo.goodput_rps(&self.timeline, self.stats.duration_s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn other_wall_is_residual_and_clamped() {
        let mk = |dur: f64, p: f64, d: f64| EngineReport {
            label: "x".into(),
            stats: RunStats {
                requests: 10,
                input_tokens: 100,
                output_tokens: 100,
                duration_s: dur,
            },
            prefill_wall_s: p,
            decode_wall_s: d,
            mixed_wall_s: 0.0,
            reshard_wall_s: 0.0,
            transitions: 0,
            swap_out_bytes: 0,
            swap_in_bytes: 0,
            phases: Vec::new(),
            gpu_utilization: 0.5,
            timeline: Vec::new(),
            latency: None,
        };
        let r = mk(10.0, 4.0, 5.0);
        assert!((r.other_wall_s() - 1.0).abs() < 1e-12);
        assert!((r.throughput_rps() - 1.0).abs() < 1e-12);
        let over = mk(8.0, 4.0, 5.0);
        assert_eq!(over.other_wall_s(), 0.0);
    }

    #[test]
    fn slo_accessors_ride_on_the_timeline() {
        let timeline = vec![
            RequestTiming {
                id: 0,
                arrival_s: 0.0,
                first_token_s: 0.5,
                completion_s: 1.5,
                output_len: 11,
                attempts: 1,
            },
            RequestTiming {
                id: 1,
                arrival_s: 0.0,
                first_token_s: 5.0,
                completion_s: 6.0,
                output_len: 11,
                attempts: 1,
            },
        ];
        let latency = LatencyStats::from_timeline(&timeline);
        let rep = EngineReport {
            label: "x".into(),
            stats: RunStats {
                requests: 2,
                input_tokens: 100,
                output_tokens: 22,
                duration_s: 10.0,
            },
            prefill_wall_s: 0.0,
            decode_wall_s: 0.0,
            mixed_wall_s: 0.0,
            reshard_wall_s: 0.0,
            transitions: 0,
            swap_out_bytes: 0,
            swap_in_bytes: 0,
            phases: Vec::new(),
            gpu_utilization: 0.5,
            timeline,
            latency,
        };
        let slo = SloSpec { ttft_s: 1.0, tpot_s: 0.2 };
        assert!((rep.slo_attainment(slo) - 0.5).abs() < 1e-12);
        assert!((rep.goodput_rps(slo) - 0.1).abs() < 1e-12);
        assert_eq!(rep.latency.unwrap().count, 2);
    }
}
