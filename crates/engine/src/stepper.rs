//! Step-wise live-state access to an [`OnlineEngine`].
//!
//! The fleet tier's global event loop needs, at each arrival instant,
//! the *actual* state of every replica — live queue depth and
//! remaining in-flight work — not the router's virtual-queue
//! estimate. Engines in this crate are **causal**: admission gates on
//! `Request::arrival_s`, so an engine's trajectory up to time `t`
//! depends only on the requests that arrived at or before `t`.
//! Replaying the engine over the prefix of its assigned stream
//! therefore reproduces its live state at any `t` up to the next
//! assignment *exactly* — same rounds, same batches, same clock.
//!
//! [`EngineStepper`] packages that replay with memoization: the
//! replay report is cached and only invalidated when the replica
//! receives another request, so a replica that is not routed to
//! answers state queries from the cache. Total cost for a stream of
//! `n` arrivals over `N` replicas is `O((n/N)^2)` replica-rounds per
//! replica — the price of exact feedback without rewriting three
//! engines as incremental state machines.

use crate::online::OnlineEngine;
use crate::report::EngineReport;
use seesaw_workload::Request;

/// A replica's observable state at one instant, derived from an
/// exact replay of its assigned stream (see module docs).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LiveState {
    /// Requests that have arrived but not yet produced a first token.
    pub waiting: usize,
    /// Requests past their first token but not yet complete.
    pub running: usize,
    /// Total unfinished requests (`waiting + running`) — the live
    /// analogue of the router's virtual queue depth.
    pub queue_depth: usize,
    /// Summed remaining wall-clock seconds of all unfinished
    /// requests — the live analogue of the router's estimated work.
    /// Forward-looking: measured against the replayed completion
    /// times, i.e. the work remaining *if no further requests join
    /// this replica* (future assignments add batch contention and can
    /// stretch in-flight completions). The backward-looking counts
    /// (`waiting`/`running`/`queue_depth`) are exact regardless.
    pub work_s: f64,
    /// The next instant at which this replica's state changes (a
    /// first token or a completion), if any work is pending.
    pub next_event_s: Option<f64>,
}

/// Observable state of a finished (or replayed) engine run at time
/// `t`: which timeline entries are waiting, running, or done, and how
/// much wall-clock work remains. Entries arriving after `t` are
/// ignored, so passing a full-run report queries any instant of it.
pub fn live_state(report: &EngineReport, t: f64) -> LiveState {
    let mut waiting = 0usize;
    let mut running = 0usize;
    let mut work_s = 0.0f64;
    let mut next: Option<f64> = None;
    let mut note = |at: f64| {
        if at > t && next.map_or(true, |n| at < n) {
            next = Some(at);
        }
    };
    for entry in &report.timeline {
        if entry.arrival_s > t || entry.completion_s <= t {
            continue;
        }
        if entry.first_token_s <= t {
            running += 1;
        } else {
            waiting += 1;
            note(entry.first_token_s);
        }
        work_s += entry.completion_s - t;
        note(entry.completion_s);
    }
    LiveState {
        waiting,
        running,
        queue_depth: waiting + running,
        work_s,
        next_event_s: next,
    }
}

/// Step-wise wrapper over one replica: accepts routed requests one at
/// a time and answers exact live-state queries between pushes.
///
/// The stepper owns the replica's assigned sub-stream. `state_at(t)`
/// is exact for any `t` at or after the last pushed arrival (causality:
/// no request pushed later can have arrived by then — pushes are
/// arrival-ordered).
pub struct EngineStepper<'a> {
    engine: &'a dyn OnlineEngine,
    ready_s: f64,
    assigned: Vec<Request>,
    cache: Option<EngineReport>,
    replays: u64,
    replayed_requests: u64,
}

impl<'a> EngineStepper<'a> {
    /// A stepper for a replica that becomes ready (weights loaded) at
    /// `ready_s` — `0.0` for an always-warm replica.
    pub fn new(engine: &'a dyn OnlineEngine, ready_s: f64) -> Self {
        assert!(
            ready_s.is_finite() && ready_s >= 0.0,
            "replica ready time must be finite and non-negative, got {ready_s}"
        );
        EngineStepper {
            engine,
            ready_s,
            assigned: Vec::new(),
            cache: None,
            replays: 0,
            replayed_requests: 0,
        }
    }

    /// Assign `req` to this replica. Arrivals must be nondecreasing
    /// across pushes (the global event loop pops in time order).
    pub fn push(&mut self, req: Request) {
        if let Some(last) = self.assigned.last() {
            assert!(
                req.arrival_s >= last.arrival_s,
                "stepper pushes must be arrival-ordered: {} after {}",
                req.arrival_s,
                last.arrival_s
            );
        }
        self.assigned.push(req);
        self.cache = None;
    }

    /// The assigned sub-stream so far, in arrival order.
    pub fn assigned(&self) -> &[Request] {
        &self.assigned
    }

    fn report(&mut self) -> &EngineReport {
        if self.cache.is_none() {
            self.replays += 1;
            self.replayed_requests += self.assigned.len() as u64;
            self.cache = Some(self.engine.run_ready(&self.assigned, self.ready_s));
        }
        self.cache.as_ref().expect("cache was just filled")
    }

    /// `(cache refills, total requests re-simulated across them)` —
    /// the replay-amplification counters telemetry aggregates. Each
    /// refill is one `run_ready` over the current assigned prefix.
    pub fn replay_counts(&self) -> (u64, u64) {
        (self.replays, self.replayed_requests)
    }

    /// Exact live state at `t`, which must be at or after the last
    /// pushed arrival. Memoized: repeated queries between pushes
    /// re-simulate nothing.
    pub fn state_at(&mut self, t: f64) -> LiveState {
        if let Some(last) = self.assigned.last() {
            debug_assert!(
                t >= last.arrival_s,
                "state query at {t} precedes the last assignment at {}",
                last.arrival_s
            );
        }
        live_state(self.report(), t)
    }

    /// Run the assigned stream to completion and return the final
    /// report (the memoized replay if one is current).
    pub fn finish(mut self) -> EngineReport {
        self.report();
        self.cache.take().expect("report() fills the cache")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vllm::VllmEngine;
    use crate::SchedulingPolicy;
    use seesaw_hw::ClusterSpec;
    use seesaw_model::presets;
    use seesaw_parallel::ParallelConfig;
    use std::sync::Arc;

    fn engine() -> VllmEngine {
        VllmEngine::new(
            Arc::new(ClusterSpec::a10x4()),
            Arc::new(presets::llama2_13b()),
            ParallelConfig::new(1, 2, 2),
            SchedulingPolicy::PrefillPrioritized,
        )
        .expect("valid config")
    }

    fn reqs(n: usize, gap_s: f64) -> Vec<Request> {
        (0..n)
            .map(|i| Request::new(i as u64, 256, 16).with_arrival(i as f64 * gap_s))
            .collect()
    }

    #[test]
    fn live_state_counts_match_timeline() {
        let eng = engine();
        let stream = reqs(6, 0.05);
        let report = eng.run(&stream);
        // Before anything arrives: empty.
        let s = live_state(&report, -1.0);
        assert_eq!((s.waiting, s.running, s.queue_depth), (0, 0, 0));
        assert_eq!(s.work_s, 0.0);
        // After everything completes: empty, no next event.
        let end = report
            .timeline
            .iter()
            .map(|t| t.completion_s)
            .fold(0.0f64, f64::max);
        let s = live_state(&report, end + 1.0);
        assert_eq!(s.queue_depth, 0);
        assert_eq!(s.next_event_s, None);
        // Mid-run at the last arrival: depth counts exactly the
        // unfinished arrived requests, and work is their remaining
        // completion mass.
        let t = 5.0 * 0.05;
        let s = live_state(&report, t);
        let expect: Vec<_> = report
            .timeline
            .iter()
            .filter(|e| e.arrival_s <= t && e.completion_s > t)
            .collect();
        assert_eq!(s.queue_depth, expect.len());
        let work: f64 = expect.iter().map(|e| e.completion_s - t).sum();
        assert!((s.work_s - work).abs() < 1e-9);
        assert!(s.next_event_s.expect("work pending") > t);
    }

    #[test]
    fn stepper_replay_is_exact_prefix_of_full_run() {
        let eng = engine();
        let stream = reqs(5, 0.2);
        // A full run of the whole stream...
        let full = eng.run(&stream);
        // ...agrees with the stepper's replay at every arrival
        // instant (causality: engine decisions at or before `t` see
        // only arrivals at or before `t`, so the backward-looking
        // counts — arrived, first-token'd, completed — coincide).
        let mut stepper = EngineStepper::new(&eng, 0.0);
        for req in &stream {
            stepper.push(req.clone());
            let now = stepper.state_at(req.arrival_s);
            let reference = live_state(&full, req.arrival_s);
            assert_eq!(now.queue_depth, reference.queue_depth);
            assert_eq!(now.waiting, reference.waiting);
            assert_eq!(now.running, reference.running);
            assert!(now.work_s > 0.0, "the just-arrived request is unfinished");
        }
        let finished = stepper.finish();
        assert_eq!(finished, full, "stepper over the full stream is the full run");
    }

    #[test]
    fn idle_queries_between_pushes_hit_the_cache() {
        let eng = engine();
        let mut stepper = EngineStepper::new(&eng, 0.0);
        stepper.push(Request::new(0, 128, 8).with_arrival(0.0));
        let a = stepper.state_at(0.5);
        let b = stepper.state_at(0.5);
        assert_eq!(a, b);
        assert!(stepper.cache.is_some(), "state queries memoize the replay");
        assert_eq!(stepper.replay_counts(), (1, 1), "one refill, one request replayed");
        stepper.push(Request::new(1, 128, 8).with_arrival(1.0));
        stepper.state_at(1.0);
        assert_eq!(stepper.replay_counts(), (2, 3), "second refill replays both requests");
    }

    #[test]
    fn warming_replica_queues_until_ready() {
        let eng = engine();
        let mut stepper = EngineStepper::new(&eng, 10.0);
        stepper.push(Request::new(0, 128, 8).with_arrival(1.0));
        let s = stepper.state_at(1.0);
        assert_eq!(s.queue_depth, 1);
        assert_eq!(s.running, 0, "nothing runs before ready_s");
        let done = stepper.finish();
        assert!(done.timeline[0].first_token_s >= 10.0);
        assert_eq!(done.timeline[0].arrival_s, 1.0, "true arrival preserved");
    }

    #[test]
    #[should_panic(expected = "arrival-ordered")]
    fn out_of_order_push_rejected() {
        let eng = engine();
        let mut stepper = EngineStepper::new(&eng, 0.0);
        stepper.push(Request::new(0, 128, 8).with_arrival(2.0));
        stepper.push(Request::new(1, 128, 8).with_arrival(1.0));
    }
}
