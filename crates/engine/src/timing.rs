//! Per-request timestamp recording for engine runs.
//!
//! Engines know *which* task produces a request's first token (the
//! prefill pass / mixed round that finishes its prompt) and which one
//! produces its last (the decode burst it retires in) at submission
//! time, but the corresponding simulated timestamps only exist once
//! those tasks execute. [`TimingRecorder`] therefore stores
//! `(request id, task handle)` pairs during the run and resolves them
//! against the drained simulator at `finish`, yielding the
//! [`RequestTiming`] timeline the latency metrics are computed from.
//!
//! Timestamps are round-granular: a request's completion time is the
//! end of the decode burst (or mixed round) that retired it, matching
//! the engines' round-boundary scheduling model.

use seesaw_sim::{Simulator, TaskHandle};
use seesaw_workload::{RequestMap, RequestTiming};

/// Accumulates first-token / completion handles during a run.
#[derive(Debug, Default)]
pub struct TimingRecorder {
    first: Vec<(u64, TaskHandle)>,
    done: Vec<(u64, TaskHandle)>,
}

impl TimingRecorder {
    /// Empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Recorder pre-sized for `n` requests.
    pub fn with_capacity(n: usize) -> Self {
        TimingRecorder {
            first: Vec::with_capacity(n),
            done: Vec::with_capacity(n),
        }
    }

    /// Record that `task` produces request `id`'s first token.
    pub fn first_token(&mut self, id: u64, task: TaskHandle) {
        self.first.push((id, task));
    }

    /// Record that `task` produces request `id`'s last token.
    pub fn completed(&mut self, id: u64, task: TaskHandle) {
        self.done.push((id, task));
    }

    /// Resolve every recorded handle against the (fully drained)
    /// simulator into a timeline sorted by request id.
    pub fn resolve(mut self, sim: &Simulator, meta: &RequestMap) -> Vec<RequestTiming> {
        assert_eq!(
            self.first.len(),
            self.done.len(),
            "every request needs both a first-token and a completion record"
        );
        self.first.sort_unstable_by_key(|&(id, _)| id);
        self.done.sort_unstable_by_key(|&(id, _)| id);
        self.first
            .iter()
            .zip(&self.done)
            .map(|(&(id, first), &(done_id, done))| {
                assert_eq!(id, done_id, "timing streams out of sync at request {id}");
                let req = meta.req(id);
                let at = |h: TaskHandle| {
                    sim.completion_time(h)
                        .unwrap_or_else(|| panic!("timing task for request {id} never ran"))
                        .as_secs()
                };
                RequestTiming {
                    id,
                    arrival_s: req.arrival_s,
                    first_token_s: at(first),
                    completion_s: at(done),
                    output_len: req.output_len,
                    attempts: 1,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seesaw_sim::{TaskKind, TaskSpec};
    use seesaw_workload::Request;

    #[test]
    fn resolves_sorted_timeline_from_out_of_order_records() {
        let mut sim = Simulator::new();
        let g = sim.add_resource("g");
        let t1 = sim.submit(TaskSpec::new(g, 1.0, TaskKind::Compute));
        let t2 = sim.submit(TaskSpec::new(g, 2.0, TaskKind::Compute));
        sim.run_until_idle();

        let reqs = vec![
            Request::new(7, 100, 5).with_arrival(0.5),
            Request::new(3, 200, 1),
        ];
        let meta = RequestMap::new(&reqs);
        let mut rec = TimingRecorder::new();
        rec.first_token(7, t1);
        rec.completed(7, t2);
        rec.first_token(3, t2);
        rec.completed(3, t2);
        let timeline = rec.resolve(&sim, &meta);
        assert_eq!(timeline.len(), 2);
        assert_eq!(timeline[0].id, 3, "timeline is id-sorted");
        assert_eq!(timeline[0].first_token_s, 3.0);
        assert_eq!(timeline[1].id, 7);
        assert_eq!(timeline[1].arrival_s, 0.5);
        assert_eq!(timeline[1].first_token_s, 1.0);
        assert_eq!(timeline[1].completion_s, 3.0);
        assert_eq!(timeline[1].output_len, 5);
    }

    #[test]
    #[should_panic(expected = "both a first-token and a completion")]
    fn unbalanced_records_are_rejected() {
        let mut sim = Simulator::new();
        let g = sim.add_resource("g");
        let t = sim.submit(TaskSpec::new(g, 1.0, TaskKind::Compute));
        sim.run_until_idle();
        let meta = RequestMap::new(&[]);
        let mut rec = TimingRecorder::new();
        rec.first_token(0, t);
        rec.resolve(&sim, &meta);
    }
}
