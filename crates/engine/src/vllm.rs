//! The static-parallelism baseline engine (vLLM-like).
//!
//! One `(DP, TP, PP)` configuration for the whole run, continuous
//! batching, paged KV, and one of three scheduling policies
//! ([`SchedulingPolicy`]). Admission is conservative: a request is
//! admitted only when its full `input + output` KV reservation fits,
//! so no preemption is ever needed (this matches the paper's
//! Appendix A batching model, where max batch size is derived from
//! average *total* sequence length).

use crate::cluster_sim::ClusterSim;
use crate::driver::{
    assert_arrivals_sorted, submit_decode_burst, submit_mixed_round, submit_prefill_batch,
    Replica, RunSeq,
};
use crate::online::{OnlineEngine, ServiceRates};
use crate::report::EngineReport;
use crate::timing::TimingRecorder;
use crate::SchedulingPolicy;
use seesaw_hw::ClusterSpec;
use seesaw_model::ModelConfig;
use seesaw_parallel::{FitError, MemoryPlan, ParallelConfig};
use seesaw_roofline::{BatchShape, Roofline};
use seesaw_sim::{SimTime, TaskHandle, TraceSummary};
use seesaw_workload::{LatencyStats, Request, RequestMap, RunStats};
use std::collections::VecDeque;
use std::sync::Arc;

/// Maximum decode rounds submitted between scheduling decisions.
const BURST_CAP: usize = 64;

/// Maximum prompt tokens admitted into one prefill pass (vLLM's
/// `max_num_batched_tokens`-style bound).
const MAX_PREFILL_TOKENS: usize = 16384;

/// A static-parallelism engine instance.
///
/// Holds `Arc`-shared spec handles: every run (and its `ClusterSim` /
/// `Roofline`) borrows the same allocations instead of deep-cloning
/// the cluster and model per simulation.
#[derive(Debug)]
pub struct VllmEngine {
    cluster: Arc<ClusterSpec>,
    model: Arc<ModelConfig>,
    cfg: ParallelConfig,
    policy: SchedulingPolicy,
    plan: MemoryPlan,
}

/// A submitted-but-not-yet-integrated prefill batch.
#[derive(Debug)]
struct InflightPrefill {
    join: TaskHandle,
    admitted: Vec<Vec<(u64, usize)>>,
}

/// Sequence being chunk-prefilled (chunked policy only).
#[derive(Debug, Clone, Copy)]
struct Prefilling {
    id: u64,
    prompt: usize,
    done: usize,
}

impl VllmEngine {
    /// Validate the configuration against the cluster and build the
    /// engine. Accepts owned specs or `Arc` handles (sweeps share one
    /// allocation across all candidates).
    pub fn new(
        cluster: impl Into<Arc<ClusterSpec>>,
        model: impl Into<Arc<ModelConfig>>,
        cfg: ParallelConfig,
        policy: SchedulingPolicy,
    ) -> Result<Self, FitError> {
        let (cluster, model) = (cluster.into(), model.into());
        if cfg.num_gpus() != cluster.num_gpus {
            return Err(FitError::NotEnoughGpus {
                need: cfg.num_gpus(),
                have: cluster.num_gpus,
            });
        }
        let plan = MemoryPlan::new(&model, &cluster, cfg)?;
        Ok(VllmEngine {
            cluster,
            model,
            cfg,
            policy,
            plan,
        })
    }

    /// Configuration label.
    pub fn label(&self) -> String {
        self.cfg.to_string()
    }

    /// Process `requests` to completion, returning the run report.
    pub fn run(&self, requests: &[Request]) -> EngineReport {
        self.run_impl(requests, false).0
    }

    /// [`VllmEngine::run`] with span recording on
    /// ([`ClusterSim::with_trace`]), additionally returning the
    /// per-category busy-time summary. The report itself is identical
    /// to `run`'s — tracing only observes.
    pub fn run_traced(&self, requests: &[Request]) -> (EngineReport, TraceSummary) {
        self.run_impl(requests, true)
    }

    fn run_impl(&self, requests: &[Request], traced: bool) -> (EngineReport, TraceSummary) {
        let mut st = RunState::new(self, requests, traced);
        match self.policy {
            SchedulingPolicy::PrefillPrioritized => st.run_prefill_prioritized(),
            SchedulingPolicy::DecodePrioritized => st.run_decode_prioritized(),
            SchedulingPolicy::ChunkedPrefill { chunk_tokens } => st.run_chunked(chunk_tokens),
        }
        st.finish(requests, self.label())
    }
}

impl OnlineEngine for VllmEngine {
    fn label(&self) -> String {
        VllmEngine::label(self)
    }

    fn run(&self, requests: &[Request]) -> EngineReport {
        VllmEngine::run(self, requests)
    }

    fn run_traced(&self, requests: &[Request]) -> (EngineReport, TraceSummary) {
        VllmEngine::run_traced(self, requests)
    }

    fn service_rates(&self, avg_in: usize, avg_out: usize) -> ServiceRates {
        let tm = seesaw_roofline::ThroughputModel::new(Roofline::new(
            Arc::clone(&self.cluster),
            Arc::clone(&self.model),
        ));
        ServiceRates {
            prefill_tokens_per_sec: tm.prefill_tokens_per_sec(self.cfg, avg_in.max(1), 4),
            decode_tokens_per_sec: tm
                .decode_seq_steps_per_sec_max_batch(self.cfg, avg_in + avg_out / 2)
                .expect("config validated at construction"),
        }
    }
}

struct RunState<'a> {
    eng: &'a VllmEngine,
    cs: ClusterSim,
    rl: Roofline,
    replicas: Vec<Replica>,
    waiting: VecDeque<Request>,
    meta: RequestMap,
    prefilling: Vec<VecDeque<Prefilling>>,
    completed: usize,
    prefill_wall: f64,
    decode_wall: f64,
    mixed_wall: f64,
    rec: TimingRecorder,
}

impl<'a> RunState<'a> {
    fn new(eng: &'a VllmEngine, requests: &[Request], traced: bool) -> Self {
        assert_arrivals_sorted(requests);
        let cs = if traced {
            ClusterSim::with_trace(Arc::clone(&eng.cluster))
        } else {
            ClusterSim::new(Arc::clone(&eng.cluster))
        };
        let rl = Roofline::new(Arc::clone(&eng.cluster), Arc::clone(&eng.model));
        let replicas = (0..eng.cfg.dp)
            .map(|d| Replica::new(d, eng.plan.kv_tokens_per_replica, eng.cfg.pp))
            .collect();
        let meta = RequestMap::new(requests);
        RunState {
            eng,
            cs,
            rl,
            replicas,
            waiting: requests.iter().copied().collect(),
            meta,
            prefilling: vec![VecDeque::new(); eng.cfg.dp],
            completed: 0,
            prefill_wall: 0.0,
            decode_wall: 0.0,
            mixed_wall: 0.0,
            rec: TimingRecorder::with_capacity(requests.len()),
        }
    }

    fn all_done(&self) -> bool {
        self.waiting.is_empty()
            && self.replicas.iter().all(|r| r.running.is_empty())
            && self.prefilling.iter().all(|p| p.is_empty())
    }

    /// Idle the cluster until the head request arrives. Only called
    /// when no admission, prefill, or decode progress is possible —
    /// which, for requests available *now*, would have panicked in
    /// `admit` instead — so the head arrival must lie in the future.
    fn wait_for_next_arrival(&mut self) {
        let t = self
            .waiting
            .front()
            .expect("an idle, unfinished engine must have pending arrivals")
            .arrival_s;
        // Drain any stragglers (e.g. in-flight mixed rounds) first;
        // if they carried the clock past the arrival, no idle gap
        // exists and admission can proceed immediately.
        self.cs.sim.run_until_idle();
        self.cs.sim.advance_to(SimTime::from_secs(t));
    }

    /// Admit waiting requests into replica KV caches (full
    /// `input+output` reservation), spreading across replicas.
    /// Returns per-replica admitted `(id, prompt_len)` lists.
    fn admit(&mut self, token_budget: usize) -> Vec<Vec<(u64, usize)>> {
        let dp = self.eng.cfg.dp;
        let mut admitted: Vec<Vec<(u64, usize)>> = vec![Vec::new(); dp];
        let mut budget = vec![token_budget; dp];
        'outer: while let Some(&req) = self.waiting.front() {
            // Online serving: a request is only schedulable once its
            // arrival time has passed in simulated time. (Offline
            // workloads carry arrival_s == 0.0 and never break here.)
            if req.arrival_s > self.cs.now().as_secs() {
                break 'outer;
            }
            let reserve = req.total_len();
            // Pick the replica with the most free KV that can take it.
            let mut best: Option<usize> = None;
            for (d, rep) in self.replicas.iter().enumerate() {
                if budget[d] >= req.input_len && rep.kv.can_fit(reserve) {
                    let better = match best {
                        None => true,
                        Some(b) => rep.kv.free_tokens() > self.replicas[b].kv.free_tokens(),
                    };
                    if better {
                        best = Some(d);
                    }
                }
            }
            match best {
                Some(d) => {
                    self.waiting.pop_front();
                    self.replicas[d]
                        .kv
                        .allocate(req.id, reserve)
                        .expect("can_fit checked");
                    admitted[d].push((req.id, req.input_len));
                    budget[d] -= req.input_len;
                }
                None => {
                    // No replica can take the head request right now.
                    if self.replicas.iter().all(|r| r.running.is_empty())
                        && self.prefilling.iter().all(|p| p.is_empty())
                        && admitted.iter().all(|a| a.is_empty())
                    {
                        let cap = self.replicas[0].kv.capacity_tokens();
                        panic!(
                            "request {} needs {} KV tokens but replica capacity is {cap}",
                            req.id, reserve
                        );
                    }
                    break 'outer;
                }
            }
        }
        admitted
    }

    /// Submit a whole-prompt prefill pass for admitted batches,
    /// returning the in-flight record (join handle + members). The
    /// caller decides when to wait on it, so consecutive batches keep
    /// the pipeline full.
    fn submit_prefill(&mut self, admitted: Vec<Vec<(u64, usize)>>) -> Option<InflightPrefill> {
        if admitted.iter().all(|a| a.is_empty()) {
            return None;
        }
        let mut joins: Vec<TaskHandle> = Vec::new();
        for (d, batch) in admitted.iter().enumerate() {
            if batch.is_empty() {
                continue;
            }
            let parts =
                submit_prefill_batch(&mut self.cs, &self.rl, self.eng.cfg, &mut self.replicas[d], batch);
            for (h, ids) in parts {
                // The slot's pass exit is where its sequences' first
                // tokens appear (and where single-token requests
                // finish outright).
                for &id in &ids {
                    self.rec.first_token(id, h);
                    if self.meta.req(id).output_len <= 1 {
                        self.rec.completed(id, h);
                    }
                }
                joins.push(h);
            }
        }
        let join = self.cs.join(&joins);
        Some(InflightPrefill { join, admitted })
    }

    /// Wait for one in-flight prefill batch and move its sequences to
    /// `running` (their first token is produced by the prefill pass).
    fn integrate_prefill(&mut self, batch: InflightPrefill) {
        let t0 = self.cs.now();
        self.cs.sim.run_until(batch.join);
        self.prefill_wall += self.cs.now() - t0;
        for (d, members) in batch.admitted.into_iter().enumerate() {
            for (id, prompt) in members {
                let req = self.meta.req(id);
                if req.output_len <= 1 {
                    self.replicas[d].kv.free(id).expect("was allocated");
                    self.completed += 1;
                } else {
                    self.replicas[d].running.push(RunSeq {
                        id,
                        ctx: prompt + 1,
                        remaining: req.output_len - 1,
                    });
                }
            }
        }
    }

    /// Admit + prefill with up to two batches in flight, so pipeline
    /// stages stay busy across batch boundaries (matching vLLM's
    /// virtual-engine behaviour under PP). Returns whether any prefill
    /// work happened.
    fn do_prefill_pipelined(&mut self) -> bool {
        let mut outstanding: VecDeque<InflightPrefill> = VecDeque::new();
        let mut any = false;
        loop {
            let admitted = self.admit(MAX_PREFILL_TOKENS);
            match self.submit_prefill(admitted) {
                Some(batch) => {
                    any = true;
                    outstanding.push_back(batch);
                    if outstanding.len() >= 2 {
                        let oldest = outstanding.pop_front().expect("non-empty");
                        self.integrate_prefill(oldest);
                    }
                }
                None => break,
            }
        }
        while let Some(batch) = outstanding.pop_front() {
            self.integrate_prefill(batch);
        }
        any
    }

    /// One decode burst across replicas (each replica uses its own
    /// safe burst length). Returns whether any work ran.
    fn do_decode_burst(&mut self) -> bool {
        let mut submitted: Vec<(usize, usize, TaskHandle)> = Vec::new();
        for d in 0..self.replicas.len() {
            let rounds = self.replicas[d].max_burst(BURST_CAP);
            if rounds == 0 {
                continue;
            }
            if let Some(h) = submit_decode_burst(
                &mut self.cs,
                &self.rl,
                self.eng.cfg,
                &mut self.replicas[d],
                rounds,
            ) {
                submitted.push((d, rounds, h));
            }
        }
        if submitted.is_empty() {
            return false;
        }
        let t0 = self.cs.now();
        let join = self.cs.join(&submitted.iter().map(|&(_, _, h)| h).collect::<Vec<_>>());
        self.cs.sim.run_until(join);
        self.decode_wall += self.cs.now() - t0;
        for (d, rounds, h) in submitted {
            let finished = self.replicas[d].advance_decode(rounds);
            self.completed += finished.len();
            // The burst is capped at the minimum remaining count, so
            // retirees emit their last token in its final round.
            for seq in finished {
                self.rec.completed(seq.id, h);
            }
        }
        true
    }

    fn run_prefill_prioritized(&mut self) {
        while !self.all_done() {
            let prefilled = self.do_prefill_pipelined();
            if self.all_done() {
                break;
            }
            let decoded = self.do_decode_burst();
            if !prefilled && !decoded {
                // Nothing running and nothing admissible: the only
                // remaining work is a future arrival.
                self.wait_for_next_arrival();
            }
        }
    }

    fn run_decode_prioritized(&mut self) {
        while !self.all_done() {
            // Fill the batch once, then decode it to completion.
            let mut progressed = self.do_prefill_pipelined();
            while self.replicas.iter().any(|r| !r.running.is_empty()) {
                self.do_decode_burst();
                progressed = true;
            }
            if !progressed {
                self.wait_for_next_arrival();
            }
        }
    }

    fn run_chunked(&mut self, chunk_tokens: usize) {
        assert!(chunk_tokens > 0, "chunk size must be positive");
        // Two mixed rounds stay in flight so pipeline stages remain
        // busy across round boundaries. Engine state (graduations,
        // decode advances, admissions) evolves deterministically, so
        // bookkeeping is applied at submission; the simulator is only
        // consulted for wall-clock time.
        let mut outstanding: VecDeque<TaskHandle> = VecDeque::new();
        let mut round = 0usize;
        loop {
            // Admit into the prefilling queues.
            let admitted = self.admit(usize::MAX);
            for (d, batch) in admitted.into_iter().enumerate() {
                for (id, prompt) in batch {
                    self.prefilling[d].push_back(Prefilling { id, prompt, done: 0 });
                }
            }
            if self.all_done() {
                break;
            }

            let chunking = self.prefilling.iter().any(|p| !p.is_empty());
            if chunking {
                round += 1;
                if let Some(join) = self.submit_mixed_round_step(chunk_tokens, round) {
                    outstanding.push_back(join);
                    if outstanding.len() >= 2 {
                        let oldest = outstanding.pop_front().expect("non-empty");
                        let t0 = self.cs.now();
                        self.cs.sim.run_until(oldest);
                        self.mixed_wall += self.cs.now() - t0;
                    }
                }
            } else {
                // Drain in-flight mixed rounds before pure decode.
                while let Some(j) = outstanding.pop_front() {
                    let t0 = self.cs.now();
                    self.cs.sim.run_until(j);
                    self.mixed_wall += self.cs.now() - t0;
                }
                if !self.do_decode_burst() {
                    // Nothing running and nothing chunking, but
                    // waiting non-empty: either the drain above just
                    // made the head request admissible, or its
                    // arrival is still in the future and the cluster
                    // idles until it.
                    if self
                        .waiting
                        .front()
                        .is_some_and(|r| r.arrival_s > self.cs.now().as_secs())
                    {
                        self.wait_for_next_arrival();
                    }
                    continue;
                }
            }
        }
        while let Some(j) = outstanding.pop_front() {
            let t0 = self.cs.now();
            self.cs.sim.run_until(j);
            self.mixed_wall += self.cs.now() - t0;
        }
    }

    /// Submit one mixed round per replica (every running sequence
    /// decodes one token while up to `chunk_tokens` prompt tokens
    /// prefill) and apply its deterministic state updates immediately.
    /// Returns the round's join handle.
    fn submit_mixed_round_step(&mut self, chunk_tokens: usize, round: usize) -> Option<TaskHandle> {
        let mut handles = Vec::new();
        let mut graduated: Vec<(usize, u64, usize)> = Vec::new();
        let mut decoded: Vec<usize> = Vec::new();
        for d in 0..self.replicas.len() {
            // Build this replica's chunk from the head of its queue.
            let mut budget = chunk_tokens;
            let mut chunk = BatchShape::empty();
            while budget > 0 {
                let Some(front) = self.prefilling[d].front_mut() else {
                    break;
                };
                let take = budget.min(front.prompt - front.done);
                chunk = chunk.merge(&BatchShape::prefill_chunk(take, front.done));
                front.done += take;
                budget -= take;
                if front.done == front.prompt {
                    let p = self.prefilling[d].pop_front().expect("front exists");
                    graduated.push((d, p.id, p.prompt));
                }
            }
            let had_running = !self.replicas[d].running.is_empty();
            if chunk.is_empty() && !had_running {
                continue;
            }
            if let Some(h) = submit_mixed_round(
                &mut self.cs,
                &self.rl,
                self.eng.cfg,
                &mut self.replicas[d],
                &chunk,
                round,
            ) {
                handles.push(h);
                if had_running {
                    decoded.push(d);
                }
            }
        }
        if handles.is_empty() {
            return None;
        }
        let join = self.cs.join(&handles);
        for d in decoded {
            let finished = self.replicas[d].advance_decode(1);
            self.completed += finished.len();
            for seq in finished {
                self.rec.completed(seq.id, join);
            }
        }
        for (d, id, prompt) in graduated {
            let req = self.meta.req(id);
            // The round that finishes a prompt's last chunk emits its
            // first token.
            self.rec.first_token(id, join);
            if req.output_len <= 1 {
                self.replicas[d].kv.free(id).expect("was allocated");
                self.completed += 1;
                self.rec.completed(id, join);
            } else {
                self.replicas[d].running.push(RunSeq {
                    id,
                    ctx: prompt + 1,
                    remaining: req.output_len - 1,
                });
            }
        }
        Some(join)
    }

    fn finish(mut self, requests: &[Request], label: String) -> (EngineReport, TraceSummary) {
        let end = self.cs.sim.run_until_idle();
        assert_eq!(self.completed, requests.len(), "all requests must finish");
        let trace_summary = self.cs.sim.trace().summary();
        let gpu_utilization = self.cs.mean_compute_utilization();
        let timeline = self.rec.resolve(&self.cs.sim, &self.meta);
        let latency = LatencyStats::from_timeline(&timeline);
        let report = EngineReport {
            label,
            stats: RunStats::from_requests(requests, end.as_secs()),
            prefill_wall_s: self.prefill_wall,
            decode_wall_s: self.decode_wall,
            mixed_wall_s: self.mixed_wall,
            reshard_wall_s: 0.0,
            transitions: 0,
            swap_out_bytes: 0,
            swap_in_bytes: 0,
            phases: Vec::new(),
            gpu_utilization,
            timeline,
            latency,
        };
        (report, trace_summary)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seesaw_model::presets;
    use seesaw_workload::WorkloadGen;

    fn small_requests(n: usize) -> Vec<Request> {
        WorkloadGen::constant(512, 32).generate(n)
    }

    #[test]
    fn completes_all_requests() {
        let eng = VllmEngine::new(
            ClusterSpec::a10x4(),
            presets::llama2_13b(),
            ParallelConfig::new(1, 2, 2),
            SchedulingPolicy::PrefillPrioritized,
        )
        .unwrap();
        let reqs = small_requests(32);
        let report = eng.run(&reqs);
        assert_eq!(report.stats.requests, 32);
        assert!(report.throughput_rps() > 0.0);
        assert!(report.prefill_wall_s > 0.0);
        assert!(report.decode_wall_s > 0.0);
    }

    #[test]
    fn traced_run_matches_untraced_and_fills_buckets() {
        let eng = VllmEngine::new(
            ClusterSpec::a10x4(),
            presets::llama2_13b(),
            ParallelConfig::new(1, 2, 2),
            SchedulingPolicy::PrefillPrioritized,
        )
        .unwrap();
        let reqs = small_requests(12);
        let (report, summary) = eng.run_traced(&reqs);
        assert_eq!(report, eng.run(&reqs), "tracing only observes");
        assert!(summary.compute > 0.0, "forward passes land in compute");
        assert!(summary.total() > 0.0);
    }

    #[test]
    fn decode_prioritized_also_completes() {
        let eng = VllmEngine::new(
            ClusterSpec::a10x4(),
            presets::llama2_13b(),
            ParallelConfig::tp(4),
            SchedulingPolicy::DecodePrioritized,
        )
        .unwrap();
        let report = eng.run(&small_requests(24));
        assert_eq!(report.stats.requests, 24);
    }

    #[test]
    fn chunked_prefill_completes_and_uses_mixed_batches() {
        let eng = VllmEngine::new(
            ClusterSpec::a10x4(),
            presets::llama2_13b(),
            ParallelConfig::new(1, 2, 2),
            SchedulingPolicy::ChunkedPrefill { chunk_tokens: 512 },
        )
        .unwrap();
        let report = eng.run(&small_requests(24));
        assert_eq!(report.stats.requests, 24);
        assert!(report.mixed_wall_s > 0.0, "chunked runs mixed batches");
    }

    #[test]
    fn single_token_outputs_finish_at_prefill() {
        let eng = VllmEngine::new(
            ClusterSpec::a10x4(),
            presets::llama2_13b(),
            ParallelConfig::new(1, 2, 2),
            SchedulingPolicy::PrefillPrioritized,
        )
        .unwrap();
        let reqs: Vec<Request> = (0..8).map(|i| Request::new(i, 800, 1)).collect();
        let report = eng.run(&reqs);
        assert_eq!(report.stats.requests, 8);
        assert_eq!(report.decode_wall_s, 0.0);
    }

    #[test]
    fn dp_replicas_share_load() {
        let eng = VllmEngine::new(
            ClusterSpec::a10x4(),
            presets::llama2_13b(),
            ParallelConfig::new(2, 2, 1),
            SchedulingPolicy::PrefillPrioritized,
        )
        .unwrap();
        let report = eng.run(&small_requests(32));
        assert_eq!(report.stats.requests, 32);
    }

    #[test]
    fn rejects_config_not_matching_cluster() {
        let err = VllmEngine::new(
            ClusterSpec::a10x4(),
            presets::llama2_13b(),
            ParallelConfig::tp(8),
            SchedulingPolicy::PrefillPrioritized,
        )
        .unwrap_err();
        assert!(matches!(err, FitError::NotEnoughGpus { .. }));
    }

    #[test]
    #[should_panic(expected = "KV tokens")]
    fn oversized_request_panics_with_context() {
        let eng = VllmEngine::new(
            ClusterSpec::a10x4(),
            presets::llama2_13b(),
            ParallelConfig::new(1, 2, 2),
            SchedulingPolicy::PrefillPrioritized,
        )
        .unwrap();
        // One request larger than the whole KV space.
        let reqs = vec![Request::new(0, 2_000_000, 10)];
        eng.run(&reqs);
    }

    #[test]
    fn throughput_improves_with_more_requests_amortizing_ramp() {
        let eng = VllmEngine::new(
            ClusterSpec::a10x4(),
            presets::llama2_13b(),
            ParallelConfig::new(1, 2, 2),
            SchedulingPolicy::PrefillPrioritized,
        )
        .unwrap();
        let small = eng.run(&small_requests(8));
        let large = eng.run(&small_requests(64));
        assert!(large.throughput_rps() >= small.throughput_rps() * 0.9);
    }
}
