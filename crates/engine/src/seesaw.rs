//! The Seesaw engine: dynamic model re-sharding between a prefill
//! configuration `c_p` and a decode configuration `c_d`, tiered CPU KV
//! buffering, transition-minimizing scheduling, and the asynchronous
//! swap pipeline (paper §4–§5).
//!
//! # Phase machine
//!
//! ```text
//!   PREFILL (c_p):  admit prompts -> pipelined prefill passes
//!                   -> swap KV out (D2H overlapped with compute,
//!                      then host staging copy into shared memory)
//!                   until the CPU buffer is full or no prompts remain
//!   RESHARD c_p -> c_d: drain, reload weight shards from host RAM
//!   DECODE (c_d):   prefetcher swaps KV in (staging -> H2D, overlapped
//!                   with decode compute); continuous batching at the
//!                   decode config's max batch until buffer + GPUs drain
//!   RESHARD c_d -> c_p, repeat while requests remain
//! ```
//!
//! KV re-sharding needs no extra traffic: shards are pushed under
//! `c_p`'s layout and pulled under `c_d`'s from the same shared host
//! buffer (paper Figure 7).

use crate::autotune;
use crate::cluster_sim::ClusterSim;
use crate::driver::{
    assert_arrivals_sorted, submit_decode_burst, submit_prefill_batch, Replica, RunSeq,
};
use crate::report::{EngineReport, Phase, PhaseSpan};
use crate::timing::TimingRecorder;
use seesaw_hw::{efficiency, ClusterSpec};
use seesaw_kv::{BufferedSeq, CpuKvBuffer, KvLayout, PagedKvCache, SwapSizer};
use seesaw_model::ModelConfig;
use seesaw_parallel::{FitError, MemoryPlan, ParallelConfig, ReshardPlan};
use seesaw_roofline::Roofline;
use seesaw_sim::{SimTime, TaskHandle, TaskKind, TraceSummary};
use seesaw_workload::{LatencyStats, Request, RequestMap, RunStats};
use std::collections::VecDeque;
use std::sync::Arc;

/// Decode rounds per burst while the prefetcher is idle.
const BURST_CAP: usize = 64;
/// Decode rounds per burst while swap-ins are in flight (shorter so
/// arriving sequences join promptly).
const BURST_CAP_INFLIGHT: usize = 4;
/// Prompt-token budget per prefill pass.
const MAX_PREFILL_TOKENS: usize = 16384;

/// Full specification of a Seesaw deployment.
#[derive(Debug, Clone, PartialEq)]
pub struct SeesawSpec {
    /// Parallelization used while prefilling (`c_p`).
    pub prefill: ParallelConfig,
    /// Parallelization used while decoding (`c_d`).
    pub decode: ParallelConfig,
    /// Host KV layout (paper §5.2 recommends `HND`).
    pub layout: KvLayout,
    /// Enable the asynchronous swap pipeline (swap-out/in overlapped
    /// with compute). Disable for the ablation in `abl_overlap`.
    pub overlap: bool,
    /// Override the CPU KV buffer capacity in tokens (total across
    /// the cluster). `None` uses the cluster's full host budget.
    pub buffer_tokens_override: Option<u64>,
}

impl SeesawSpec {
    /// Spec with defaults (HND layout, overlap on, full host buffer).
    pub fn new(prefill: ParallelConfig, decode: ParallelConfig) -> Self {
        SeesawSpec {
            prefill,
            decode,
            layout: KvLayout::Hnd,
            overlap: true,
            buffer_tokens_override: None,
        }
    }

    /// Auto-tuned spec for a generic workload (2000-token prompts,
    /// 250-token outputs). Use [`SeesawSpec::auto_for`] when workload
    /// statistics are known.
    pub fn auto(cluster: &ClusterSpec, model: &ModelConfig) -> Result<Self, FitError> {
        Self::auto_for(cluster, model, 2000, 250)
    }

    /// Auto-tuned spec for a workload averaging `avg_in` prompt and
    /// `avg_out` generated tokens. Shortlists candidates analytically,
    /// then picks the pair with the best *simulated* probe throughput.
    pub fn auto_for(
        cluster: &ClusterSpec,
        model: &ModelConfig,
        avg_in: usize,
        avg_out: usize,
    ) -> Result<Self, FitError> {
        let probe: Vec<Request> = (0..24)
            .map(|i| Request::new(u64::MAX - i, avg_in.max(1), avg_out.max(1)))
            .collect();
        let (cp, cd) = autotune::best_seesaw_pair_probed(cluster, model, &probe)?;
        Ok(Self::new(cp, cd))
    }

    /// Auto-tuned spec probed with a caller-supplied sample of the
    /// real workload (better than [`SeesawSpec::auto_for`] for skewed
    /// length distributions).
    pub fn auto_probed(
        cluster: &ClusterSpec,
        model: &ModelConfig,
        probe: &[Request],
    ) -> Result<Self, FitError> {
        Self::auto_probed_with(&crate::sweep::SweepRunner::from_env(), cluster, model, probe)
    }

    /// [`SeesawSpec::auto_probed`] on an explicit sweep runner.
    pub fn auto_probed_with(
        runner: &crate::sweep::SweepRunner,
        cluster: &ClusterSpec,
        model: &ModelConfig,
        probe: &[Request],
    ) -> Result<Self, FitError> {
        let (cp, cd) = autotune::best_seesaw_pair_probed_with(runner, cluster, model, probe)?;
        Ok(Self::new(cp, cd))
    }

    /// The paper's arrow label, e.g. `"P4->T4"`.
    pub fn label(&self) -> String {
        format!("{}->{}", self.prefill, self.decode)
    }
}

/// The Seesaw inference engine.
///
/// Holds `Arc`-shared spec handles: every run (and its `ClusterSim` /
/// `Roofline`) borrows the same allocations instead of deep-cloning
/// the cluster and model per simulation.
#[derive(Debug)]
pub struct SeesawEngine {
    cluster: Arc<ClusterSpec>,
    model: Arc<ModelConfig>,
    spec: SeesawSpec,
    plan_p: MemoryPlan,
    plan_d: MemoryPlan,
}

impl SeesawEngine {
    /// Validate both configurations and build the engine. Accepts
    /// owned specs or `Arc` handles (sweeps share one allocation
    /// across all candidates).
    pub fn new(
        cluster: impl Into<Arc<ClusterSpec>>,
        model: impl Into<Arc<ModelConfig>>,
        spec: SeesawSpec,
    ) -> Result<Self, FitError> {
        let (cluster, model) = (cluster.into(), model.into());
        if spec.prefill.dp != spec.decode.dp {
            return Err(FitError::Invalid(format!(
                "Seesaw keeps DP fixed across stages (got {} vs {})",
                spec.prefill.dp, spec.decode.dp
            )));
        }
        if spec.prefill.num_gpus() != cluster.num_gpus
            || spec.decode.num_gpus() != cluster.num_gpus
        {
            return Err(FitError::NotEnoughGpus {
                need: spec.prefill.num_gpus().max(spec.decode.num_gpus()),
                have: cluster.num_gpus,
            });
        }
        let plan_p = MemoryPlan::new(&model, &cluster, spec.prefill)?;
        let plan_d = MemoryPlan::new(&model, &cluster, spec.decode)?;
        Ok(SeesawEngine {
            cluster,
            model,
            spec,
            plan_p,
            plan_d,
        })
    }

    /// The deployment spec.
    pub fn spec(&self) -> &SeesawSpec {
        &self.spec
    }

    /// Process `requests` to completion.
    pub fn run(&self, requests: &[Request]) -> EngineReport {
        self.run_impl(requests, false).0
    }

    /// [`SeesawEngine::run`] with span recording on
    /// ([`ClusterSim::with_trace`]), additionally returning the
    /// per-category busy-time summary. The report itself is identical
    /// to `run`'s — tracing only observes.
    pub fn run_traced(&self, requests: &[Request]) -> (EngineReport, TraceSummary) {
        self.run_impl(requests, true)
    }

    fn run_impl(&self, requests: &[Request], traced: bool) -> (EngineReport, TraceSummary) {
        let mut st = SeesawRun::new(self, requests, traced);
        st.run();
        st.finish(requests, self.spec.label())
    }
}

impl crate::online::OnlineEngine for SeesawEngine {
    fn label(&self) -> String {
        self.spec.label()
    }

    fn run(&self, requests: &[Request]) -> EngineReport {
        SeesawEngine::run(self, requests)
    }

    fn run_traced(&self, requests: &[Request]) -> (EngineReport, TraceSummary) {
        SeesawEngine::run_traced(self, requests)
    }

    fn service_rates(&self, avg_in: usize, avg_out: usize) -> crate::online::ServiceRates {
        // Prefill runs under `c_p`, decode under `c_d`; the phases
        // time-share the same GPUs, so the two rates bound the same
        // budget a static engine's do (cf. Eq. 1/2's request-rate
        // estimate for a Seesaw pair).
        let tm = seesaw_roofline::ThroughputModel::new(Roofline::new(
            Arc::clone(&self.cluster),
            Arc::clone(&self.model),
        ));
        crate::online::ServiceRates {
            prefill_tokens_per_sec: tm.prefill_tokens_per_sec(self.spec.prefill, avg_in.max(1), 4),
            decode_tokens_per_sec: tm
                .decode_seq_steps_per_sec_max_batch(self.spec.decode, avg_in + avg_out / 2)
                .expect("decode config validated at construction"),
        }
    }
}

/// A sequence whose KV swap-out is in flight.
#[derive(Debug, Clone, Copy)]
struct PendingSwapOut {
    id: u64,
    /// Completes when the GPU-side KV can be freed (D2H done).
    vacate: TaskHandle,
    /// Completes when the shared-memory copy is done (`None` for
    /// sequences that finished at prefill and are never buffered).
    buffered: Option<TaskHandle>,
}

/// A sequence whose KV swap-in is in flight.
#[derive(Debug, Clone, Copy)]
struct PendingSwapIn {
    id: u64,
    tokens: usize,
    output_len: usize,
    ready: TaskHandle,
}

struct SeesawRun<'a> {
    eng: &'a SeesawEngine,
    cs: ClusterSim,
    rl: Roofline,
    replicas: Vec<Replica>,
    buffers: Vec<CpuKvBuffer>,
    waiting: VecDeque<Request>,
    meta: RequestMap,
    sizer_p: SwapSizer,
    sizer_d: SwapSizer,
    completed: usize,
    prefill_wall: f64,
    decode_wall: f64,
    reshard_wall: f64,
    transitions: usize,
    swap_out_bytes: u64,
    swap_in_bytes: u64,
    phases: Vec<PhaseSpan>,
    rec: TimingRecorder,
    /// Reusable part buffers for the per-sequence swap chains.
    scratch_a: Vec<TaskHandle>,
    scratch_b: Vec<TaskHandle>,
}

impl<'a> SeesawRun<'a> {
    fn new(eng: &'a SeesawEngine, requests: &[Request], traced: bool) -> Self {
        assert_arrivals_sorted(requests);
        let dp = eng.spec.prefill.dp;
        let cs = if traced {
            ClusterSim::with_trace(Arc::clone(&eng.cluster))
        } else {
            ClusterSim::new(Arc::clone(&eng.cluster))
        };
        let rl = Roofline::new(Arc::clone(&eng.cluster), Arc::clone(&eng.model));
        let replicas = (0..dp)
            .map(|d| Replica::new(d, eng.plan_p.kv_tokens_per_replica, eng.spec.prefill.pp))
            .collect();
        let total_buffer_tokens = eng.spec.buffer_tokens_override.unwrap_or_else(|| {
            eng.cluster.total_cpu_mem() / eng.model.kv_bytes_per_token()
        });
        let buffers = (0..dp)
            .map(|_| CpuKvBuffer::new(total_buffer_tokens / dp as u64))
            .collect();
        SeesawRun {
            eng,
            cs,
            rl,
            replicas,
            buffers,
            waiting: requests.iter().copied().collect(),
            meta: RequestMap::new(requests),
            sizer_p: SwapSizer::new(&eng.model, eng.spec.prefill, eng.spec.layout),
            sizer_d: SwapSizer::new(&eng.model, eng.spec.decode, eng.spec.layout),
            completed: 0,
            prefill_wall: 0.0,
            decode_wall: 0.0,
            reshard_wall: 0.0,
            transitions: 0,
            swap_out_bytes: 0,
            swap_in_bytes: 0,
            phases: Vec::new(),
            rec: TimingRecorder::with_capacity(requests.len()),
            scratch_a: Vec::new(),
            scratch_b: Vec::new(),
        }
    }

    fn record_phase(&mut self, phase: Phase, start_s: f64) {
        let end_s = self.cs.now().as_secs();
        if end_s > start_s {
            self.phases.push(PhaseSpan { phase, start_s, end_s });
        }
    }

    fn run(&mut self) {
        // The model is initially loaded in the prefill sharding.
        loop {
            let buffered_any = self.prefill_phase();
            if buffered_any {
                self.reshard(self.eng.spec.prefill, self.eng.spec.decode);
                self.decode_phase();
                if self.waiting.is_empty() {
                    break;
                }
                self.reshard(self.eng.spec.decode, self.eng.spec.prefill);
            } else if self.waiting.is_empty() {
                break;
            } else {
                // Nothing buffered and nothing admissible: only
                // future arrivals remain, so the cluster idles until
                // the next one. (Offline, buffered_any == false with
                // waiting non-empty cannot occur: prefill always
                // makes progress or panics.)
                self.wait_for_next_arrival();
            }
        }
    }

    /// Idle the cluster until the head request arrives (online
    /// serving). Only reached when a prefill phase could admit
    /// nothing and buffered nothing, which for an already-available
    /// request would have panicked inside the phase instead.
    fn wait_for_next_arrival(&mut self) {
        let t = self
            .waiting
            .front()
            .expect("an idle, unfinished engine must have pending arrivals")
            .arrival_s;
        self.cs.sim.run_until_idle();
        self.cs.sim.advance_to(SimTime::from_secs(t));
    }

    // ------------------------------------------------------------------
    // Prefill phase (config c_p)
    // ------------------------------------------------------------------

    /// Run prefill until the CPU buffer is full or no prompts remain.
    /// Returns whether any sequences were buffered for decoding.
    #[allow(clippy::needless_range_loop)] // replica index addresses several parallel arrays
    fn prefill_phase(&mut self) -> bool {
        let cfg = self.eng.spec.prefill;
        let dp = cfg.dp;
        for rep in &mut self.replicas {
            rep.kv = PagedKvCache::new(
                self.eng.plan_p.kv_tokens_per_replica,
                PagedKvCache::DEFAULT_BLOCK_TOKENS,
            );
            rep.reset_tails(cfg.pp);
        }
        let mut pending: Vec<Vec<PendingSwapOut>> = vec![Vec::new(); dp];
        let mut outstanding: VecDeque<TaskHandle> = VecDeque::new();
        let t_phase = self.cs.now();
        let mut buffered_any = false;

        loop {
            // Without the async pipeline, swap-outs serialize with
            // compute: drain them before scheduling more prefill.
            if !self.eng.spec.overlap {
                let drains: Vec<TaskHandle> = pending
                    .iter()
                    .flat_map(|v| v.iter().map(|p| p.buffered.unwrap_or(p.vacate)))
                    .collect();
                for h in drains {
                    self.cs.sim.run_until(h);
                }
            }
            // Reclaim GPU KV from completed swap-outs.
            for d in 0..dp {
                let mut i = 0;
                while i < pending[d].len() {
                    if self.cs.sim.completed(pending[d][i].vacate) {
                        let p = pending[d].swap_remove(i);
                        self.replicas[d].kv.free(p.id).expect("resident");
                    } else {
                        i += 1;
                    }
                }
            }

            // Admission: GPU KV must fit the prompt, CPU buffer must
            // have room for its eventual KV.
            let mut admitted: Vec<Vec<(u64, usize)>> = vec![Vec::new(); dp];
            let mut budget = vec![MAX_PREFILL_TOKENS; dp];
            let mut buffer_full = false;
            let mut arrivals_pending = false;
            while let Some(&req) = self.waiting.front() {
                // Online serving: requests become schedulable only
                // once their arrival time has passed. (Offline
                // arrival_s == 0.0 never trips this.)
                if req.arrival_s > self.cs.now().as_secs() {
                    arrivals_pending = true;
                    break;
                }
                let mut best: Option<usize> = None;
                for d in 0..dp {
                    if budget[d] >= req.input_len
                        && self.replicas[d].kv.can_fit(req.input_len)
                        && self.buffers[d].can_fit(req.input_len)
                    {
                        let better = match best {
                            None => true,
                            Some(b) => {
                                self.buffers[d].capacity_tokens() - self.buffers[d].used_tokens()
                                    > self.buffers[b].capacity_tokens()
                                        - self.buffers[b].used_tokens()
                            }
                        };
                        if better {
                            best = Some(d);
                        }
                    }
                }
                let Some(d) = best else {
                    buffer_full = (0..dp)
                        .all(|d| !self.buffers[d].can_fit(req.input_len));
                    if buffer_full && self.buffers.iter().all(|b| b.is_empty()) {
                        panic!(
                            "prompt {} ({} tokens) exceeds the CPU KV buffer capacity ({} tokens)",
                            req.id,
                            req.input_len,
                            self.buffers[0].capacity_tokens()
                        );
                    }
                    break;
                };
                self.waiting.pop_front();
                self.replicas[d]
                    .kv
                    .allocate(req.id, req.input_len)
                    .expect("can_fit checked");
                if req.output_len > 1 {
                    // Reserve buffer capacity now; the swap tasks that
                    // physically fill it are submitted after the pass.
                    let ok = self.buffers[d].push(BufferedSeq {
                        req_id: req.id,
                        tokens: req.input_len,
                        output_len: req.output_len,
                    });
                    assert!(ok, "can_fit checked");
                }
                admitted[d].push((req.id, req.input_len));
                budget[d] -= req.input_len;
            }

            let nothing_admitted = admitted.iter().all(|a| a.is_empty());
            if nothing_admitted {
                if buffer_full || self.waiting.is_empty() || arrivals_pending {
                    // Phase over. With arrivals pending the outer
                    // loop decodes whatever was buffered (or idles
                    // until the next arrival if nothing was).
                    break;
                }
                // GPU KV is the bottleneck: wait for the oldest
                // swap-out to vacate space.
                let oldest = (0..dp)
                    .filter_map(|d| pending[d].first().map(|p| p.vacate))
                    .next();
                match oldest {
                    Some(h) => {
                        self.cs.sim.run_until(h);
                        continue;
                    }
                    None => panic!(
                        "prefill stalled: prompt {} does not fit GPU KV ({} tokens)",
                        self.waiting.front().expect("non-empty").input_len,
                        self.replicas[0].kv.capacity_tokens()
                    ),
                }
            }

            // Run the prefill passes and attach swap-outs.
            let mut joins = Vec::new();
            for d in 0..dp {
                if admitted[d].is_empty() {
                    continue;
                }
                let parts = submit_prefill_batch(
                    &mut self.cs,
                    &self.rl,
                    cfg,
                    &mut self.replicas[d],
                    &admitted[d],
                );
                for (pass, ids) in parts {
                    joins.push(pass);
                    for id in ids {
                        let req = self.meta.req(id);
                        // The pass exit emits the slot's first tokens
                        // (and finishes single-token requests).
                        self.rec.first_token(id, pass);
                        if req.output_len <= 1 {
                            self.rec.completed(id, pass);
                        }
                        let p = self.submit_swap_out(d, id, req, pass);
                        if p.buffered.is_some() {
                            buffered_any = true;
                        }
                        pending[d].push(p);
                    }
                }
            }
            // Keep two batch joins in flight so pipeline stages stay
            // busy across batch boundaries.
            let join = self.cs.join(&joins);
            outstanding.push_back(join);
            if outstanding.len() >= 2 {
                let oldest = outstanding.pop_front().expect("non-empty");
                self.cs.sim.run_until(oldest);
            }
        }
        while let Some(j) = outstanding.pop_front() {
            self.cs.sim.run_until(j);
        }

        // Drain every swap-out before transitioning.
        let handles: Vec<TaskHandle> = pending
            .iter()
            .flat_map(|v| v.iter().map(|p| p.buffered.unwrap_or(p.vacate)))
            .collect();
        if !handles.is_empty() {
            let join = self.cs.join(&handles);
            self.cs.sim.run_until(join);
        }
        for d in 0..dp {
            for p in pending[d].drain(..) {
                self.replicas[d].kv.free(p.id).expect("resident");
            }
        }
        // Attribute the whole phase's wall clock (incl. drain) to prefill.
        self.prefill_wall += self.cs.now() - t_phase;
        self.record_phase(Phase::Prefill, t_phase.as_secs());
        buffered_any
    }

    /// Submit the swap-out chain for one prefilled sequence: per-GPU
    /// D2H into pinned staging (dep: the prefill pass), then the
    /// host-side copy into shared memory. Sequences that finished at
    /// prefill (`output_len == 1`) skip the swap entirely.
    fn submit_swap_out(&mut self, d: usize, id: u64, req: Request, pass: TaskHandle) -> PendingSwapOut {
        if req.output_len <= 1 {
            self.completed += 1;
            return PendingSwapOut {
                id,
                vacate: pass,
                buffered: None,
            };
        }
        let cfg = self.eng.spec.prefill;
        let tokens = req.input_len;
        let mut d2h_parts = std::mem::take(&mut self.scratch_a);
        let mut staging_parts = std::mem::take(&mut self.scratch_b);
        d2h_parts.clear();
        staging_parts.clear();
        for pp_rank in 0..cfg.pp {
            for t in 0..cfg.tp {
                let gpu = cfg.gpu_index(d, pp_rank, t);
                let xfer = self.sizer_p.seq_transfer_time(&self.eng.cluster, gpu, tokens);
                if xfer <= 0.0 {
                    continue;
                }
                let d2h = self.cs.submit_d2h(gpu, xfer, Some(pass), TaskKind::SwapOut);
                let stage_t = self.sizer_p.seq_staging_time(&self.eng.cluster, gpu, tokens);
                let st = self.cs.submit_staging(gpu, stage_t, Some(d2h));
                d2h_parts.push(d2h);
                staging_parts.push(st);
            }
        }
        self.swap_out_bytes += self.sizer_p.seq_bytes_total(tokens);
        let vacate = self.cs.join(&d2h_parts);
        let buffered = self.cs.join(&staging_parts);
        self.scratch_a = d2h_parts;
        self.scratch_b = staging_parts;
        PendingSwapOut {
            id,
            vacate,
            buffered: Some(buffered),
        }
    }

    // ------------------------------------------------------------------
    // Decode phase (config c_d)
    // ------------------------------------------------------------------

    #[allow(clippy::needless_range_loop)] // replica index addresses several parallel arrays
    fn decode_phase(&mut self) {
        let cfg = self.eng.spec.decode;
        let dp = cfg.dp;
        for rep in &mut self.replicas {
            rep.kv = PagedKvCache::new(
                self.eng.plan_d.kv_tokens_per_replica,
                PagedKvCache::DEFAULT_BLOCK_TOKENS,
            );
            rep.reset_tails(cfg.pp);
        }
        let t_phase = self.cs.now();
        let mut inflight: Vec<Vec<PendingSwapIn>> = vec![Vec::new(); dp];
        for d in 0..dp {
            self.prefetch(d, &mut inflight[d]);
        }

        loop {
            // On-board arrived swap-ins.
            for d in 0..dp {
                let mut i = 0;
                while i < inflight[d].len() {
                    if self.cs.sim.completed(inflight[d][i].ready) {
                        let p = inflight[d].swap_remove(i);
                        self.replicas[d].running.push(RunSeq {
                            id: p.id,
                            ctx: p.tokens + 1,
                            remaining: p.output_len - 1,
                        });
                    } else {
                        i += 1;
                    }
                }
            }

            let any_running = self.replicas.iter().any(|r| !r.running.is_empty());
            let any_inflight = inflight.iter().any(|v| !v.is_empty());
            if !any_running {
                if any_inflight {
                    let next = inflight
                        .iter()
                        .flat_map(|v| v.iter().map(|p| p.ready))
                        .next()
                        .expect("non-empty");
                    self.cs.sim.run_until(next);
                    continue;
                }
                break; // buffers drained, everything decoded
            }

            // Decode burst.
            let cap = if any_inflight { BURST_CAP_INFLIGHT } else { BURST_CAP };
            let mut submitted = Vec::new();
            for d in 0..dp {
                let rounds = self.replicas[d].max_burst(cap);
                if rounds == 0 {
                    continue;
                }
                if let Some(h) =
                    submit_decode_burst(&mut self.cs, &self.rl, cfg, &mut self.replicas[d], rounds)
                {
                    submitted.push((d, rounds, h));
                }
            }
            let join = self.cs.join(&submitted.iter().map(|&(_, _, h)| h).collect::<Vec<_>>());
            self.cs.sim.run_until(join);
            for (d, rounds, h) in submitted {
                let finished = self.replicas[d].advance_decode(rounds);
                self.completed += finished.len();
                // Bursts are capped at the minimum remaining count,
                // so retirees finish in the burst's last round.
                for seq in finished {
                    self.rec.completed(seq.id, h);
                }
            }
            for d in 0..dp {
                self.prefetch(d, &mut inflight[d]);
            }
        }
        self.decode_wall += self.cs.now() - t_phase;
        self.record_phase(Phase::Decode, t_phase.as_secs());
    }

    /// Issue swap-ins while GPU KV capacity allows (reserving each
    /// sequence's full final context).
    fn prefetch(&mut self, d: usize, inflight: &mut Vec<PendingSwapIn>) {
        let cfg = self.eng.spec.decode;
        while let Some(&front) = self.buffers[d].peek() {
            let reserve = front.tokens + front.output_len;
            if !self.replicas[d].kv.can_fit(reserve) {
                break;
            }
            let seq = self.buffers[d].pop().expect("peeked");
            self.replicas[d]
                .kv
                .allocate(seq.req_id, reserve)
                .expect("can_fit checked");
            // Serialize with compute when the async pipeline is off.
            let dep = if self.eng.spec.overlap {
                None
            } else {
                self.replicas[d].tails.iter().flatten().next().copied()
            };
            let mut parts = std::mem::take(&mut self.scratch_a);
            parts.clear();
            for pp_rank in 0..cfg.pp {
                for t in 0..cfg.tp {
                    let gpu = cfg.gpu_index(d, pp_rank, t);
                    let stage_t =
                        self.sizer_d.seq_staging_time(&self.eng.cluster, gpu, seq.tokens);
                    let xfer =
                        self.sizer_d.seq_transfer_time(&self.eng.cluster, gpu, seq.tokens);
                    if xfer <= 0.0 {
                        continue;
                    }
                    let st = self.cs.submit_staging(gpu, stage_t, dep);
                    let h2d = self.cs.submit_h2d(gpu, xfer, Some(st), TaskKind::SwapIn);
                    parts.push(h2d);
                }
            }
            self.swap_in_bytes += self.sizer_d.seq_bytes_total(seq.tokens);
            let ready = self.cs.join(&parts);
            self.scratch_a = parts;
            inflight.push(PendingSwapIn {
                id: seq.req_id,
                tokens: seq.tokens,
                output_len: seq.output_len,
                ready,
            });
        }
    }

    // ------------------------------------------------------------------
    // Re-sharding
    // ------------------------------------------------------------------

    fn reshard(&mut self, from: ParallelConfig, to: ParallelConfig) {
        // Quiesce the cluster (communicators must be rebuilt anyway).
        self.cs.sim.run_until_idle();
        let t0 = self.cs.now();
        let plan = ReshardPlan::plan(&self.eng.model, from, to);
        let mut handles = Vec::new();
        for mv in &plan.moves {
            let dur = self
                .eng
                .cluster
                .host_link
                .pinned_copy_time(mv.load_bytes as f64);
            if dur > 0.0 {
                handles.push(self.cs.submit_h2d(mv.gpu, dur, None, TaskKind::ReshardLoad));
            }
            handles.push(self.cs.submit_compute_overhead(
                mv.gpu,
                efficiency::RESHARD_FIXED_OVERHEAD_S,
                None,
            ));
        }
        let join = self.cs.join(&handles);
        self.cs.sim.run_until(join);
        self.reshard_wall += self.cs.now() - t0;
        self.transitions += 1;
        self.record_phase(Phase::Reshard, t0.as_secs());
    }

    fn finish(mut self, requests: &[Request], label: String) -> (EngineReport, TraceSummary) {
        let end = self.cs.sim.run_until_idle();
        assert_eq!(self.completed, requests.len(), "all requests must finish");
        let trace_summary = self.cs.sim.trace().summary();
        let gpu_utilization = self.cs.mean_compute_utilization();
        let timeline =
            std::mem::take(&mut self.rec).resolve(&self.cs.sim, &self.meta);
        let latency = LatencyStats::from_timeline(&timeline);
        let report = EngineReport {
            label,
            stats: RunStats::from_requests(requests, end.as_secs()),
            prefill_wall_s: self.prefill_wall,
            decode_wall_s: self.decode_wall,
            mixed_wall_s: 0.0,
            reshard_wall_s: self.reshard_wall,
            transitions: self.transitions,
            swap_out_bytes: self.swap_out_bytes,
            swap_in_bytes: self.swap_in_bytes,
            phases: std::mem::take(&mut self.phases),
            gpu_utilization,
            timeline,
            latency,
        };
        (report, trace_summary)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seesaw_model::presets;
    use seesaw_workload::WorkloadGen;

    fn spec_p4t4() -> SeesawSpec {
        SeesawSpec::new(ParallelConfig::pp(4), ParallelConfig::tp(4))
    }

    #[test]
    fn completes_all_requests_with_resharding() {
        let eng = SeesawEngine::new(
            ClusterSpec::a10x4(),
            presets::llama2_13b(),
            spec_p4t4(),
        )
        .unwrap();
        let reqs = WorkloadGen::constant(1024, 64).generate(32);
        let report = eng.run(&reqs);
        assert_eq!(report.stats.requests, 32);
        assert!(report.transitions >= 1, "must re-shard at least once");
        assert!(report.reshard_wall_s > 0.0);
        assert!(report.swap_out_bytes > 0);
        assert!(report.swap_in_bytes > 0);
        assert!(report.prefill_wall_s > 0.0);
        assert!(report.decode_wall_s > 0.0);
    }

    #[test]
    fn label_uses_arrow_notation() {
        assert_eq!(spec_p4t4().label(), "P4->T4");
    }

    #[test]
    fn rejects_dp_change_across_stages() {
        let spec = SeesawSpec::new(ParallelConfig::new(2, 2, 1), ParallelConfig::tp(4));
        let err =
            SeesawEngine::new(ClusterSpec::a10x4(), presets::llama2_13b(), spec).unwrap_err();
        assert!(matches!(err, FitError::Invalid(_)));
    }

    #[test]
    fn single_token_outputs_never_reach_decode() {
        let eng = SeesawEngine::new(
            ClusterSpec::a10x4(),
            presets::llama2_13b(),
            spec_p4t4(),
        )
        .unwrap();
        let reqs: Vec<Request> = (0..8).map(|i| Request::new(i, 700, 1)).collect();
        let report = eng.run(&reqs);
        assert_eq!(report.stats.requests, 8);
        assert_eq!(report.transitions, 0, "nothing buffered, no transition");
        assert_eq!(report.swap_in_bytes, 0);
    }

    #[test]
    fn small_buffer_forces_more_transitions() {
        let m = presets::llama2_13b();
        let cluster = ClusterSpec::a10x4();
        let reqs = WorkloadGen::constant(1000, 50).generate(48);

        let mut small = spec_p4t4();
        // Room for ~8 prompts per cycle.
        small.buffer_tokens_override = Some(8_000);
        let r_small = SeesawEngine::new(cluster.clone(), m.clone(), small)
            .unwrap()
            .run(&reqs);

        let big = spec_p4t4();
        let r_big = SeesawEngine::new(cluster, m, big).unwrap().run(&reqs);

        assert!(
            r_small.transitions > r_big.transitions,
            "small buffer {} transitions vs big {}",
            r_small.transitions,
            r_big.transitions
        );
        assert!(r_small.reshard_wall_s > r_big.reshard_wall_s);
    }

    #[test]
    fn overlap_beats_serialized_swaps() {
        let m = presets::llama2_13b();
        let cluster = ClusterSpec::a10x4();
        let reqs = WorkloadGen::constant(1500, 80).generate(32);

        let on = SeesawEngine::new(cluster.clone(), m.clone(), spec_p4t4())
            .unwrap()
            .run(&reqs);
        let mut off_spec = spec_p4t4();
        off_spec.overlap = false;
        let off = SeesawEngine::new(cluster, m, off_spec).unwrap().run(&reqs);
        assert!(
            on.throughput_rps() >= off.throughput_rps(),
            "async pipeline must not hurt: {} vs {}",
            on.throughput_rps(),
            off.throughput_rps()
        );
    }

    #[test]
    fn identity_configs_degenerate_to_static_with_swaps() {
        // c_p == c_d is legal; re-sharding loads nothing but the
        // engine still pays the fixed transition cost.
        let spec = SeesawSpec::new(ParallelConfig::new(1, 2, 2), ParallelConfig::new(1, 2, 2));
        let eng =
            SeesawEngine::new(ClusterSpec::a10x4(), presets::llama2_13b(), spec).unwrap();
        let reqs = WorkloadGen::constant(512, 16).generate(16);
        let report = eng.run(&reqs);
        assert_eq!(report.stats.requests, 16);
    }
}
