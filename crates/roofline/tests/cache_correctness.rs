//! Memoized `layer_cost` must be observationally identical to the
//! uncached Table 3 evaluation: bit-identical costs across a sampled
//! shape grid, on first call (miss) and on repeat (hit).

use seesaw_hw::ClusterSpec;
use seesaw_model::presets;
use seesaw_roofline::{BatchShape, Roofline, Stage};

fn shape_grid() -> Vec<(Stage, BatchShape)> {
    let mut shapes = Vec::new();
    for seqs in [1usize, 2, 8, 32] {
        for len in [16usize, 128, 512, 3000] {
            shapes.push((Stage::Prefill, BatchShape::prefill(&vec![len; seqs])));
            shapes.push((Stage::Decode, BatchShape::decode_uniform(seqs, len)));
        }
    }
    for (chunk, prefix) in [(256, 0), (256, 1024), (512, 4096)] {
        shapes.push((Stage::Prefill, BatchShape::prefill_chunk(chunk, prefix)));
    }
    shapes.push((Stage::Prefill, BatchShape::empty()));
    shapes
}

#[test]
fn memoized_cost_matches_uncached_bit_for_bit() {
    for (cluster, model) in [
        (ClusterSpec::a10x8(), presets::codellama_34b()),
        (ClusterSpec::l4x8(), presets::llama2_13b()),
        (ClusterSpec::a100x8_nvlink(), presets::llama2_70b()),
    ] {
        let rl = Roofline::new(cluster, model);
        for (stage, shape) in shape_grid() {
            for tp in [1usize, 2, 4, 8] {
                let reference = rl.layer_cost_uncached(stage, &shape, tp);
                let miss = rl.layer_cost(stage, &shape, tp);
                let hit = rl.layer_cost(stage, &shape, tp);
                // PartialEq on LayerCost compares all five f64
                // components exactly.
                assert_eq!(miss, reference, "{stage:?} {shape:?} tp{tp}");
                assert_eq!(hit, reference, "{stage:?} {shape:?} tp{tp}");
            }
        }
        assert!(rl.cost_cache_len() > 0, "grid must populate the cache");
    }
}

#[test]
fn cache_distinguishes_tp_stage_and_shape() {
    let rl = Roofline::new(ClusterSpec::a10x8(), presets::llama2_13b());
    let shape = BatchShape::decode_uniform(16, 512);
    let t1 = rl.layer_cost(Stage::Decode, &shape, 1);
    let t4 = rl.layer_cost(Stage::Decode, &shape, 4);
    assert_ne!(t1, t4, "tp must key the cache");
    let p = rl.layer_cost(Stage::Prefill, &BatchShape::prefill(&[512; 16]), 4);
    assert_ne!(p, t4, "stage must key the cache");
    let bigger = rl.layer_cost(Stage::Decode, &BatchShape::decode_uniform(17, 512), 4);
    assert_ne!(bigger, t4, "shape must key the cache");
    assert!(rl.cost_cache_len() >= 4);
}

#[test]
fn empty_shapes_bypass_the_cache() {
    let rl = Roofline::new(ClusterSpec::a10x8(), presets::llama2_13b());
    let c = rl.layer_cost(Stage::Prefill, &BatchShape::empty(), 4);
    assert_eq!(c.layer_time(), 0.0);
    assert_eq!(rl.cost_cache_len(), 0, "empty shapes short-circuit");
}
