//! Property tests on the roofline cost model: monotonicity and
//! scaling laws that must hold for any batch shape.

use proptest::prelude::*;
use seesaw_hw::ClusterSpec;
use seesaw_model::presets;
use seesaw_roofline::{BatchShape, Roofline, Stage};

fn rl() -> Roofline {
    Roofline::new(ClusterSpec::a10x8(), presets::codellama_34b())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Layer time is monotone in batch size for decode.
    #[test]
    fn decode_cost_monotone_in_batch(b in 1usize..512, ctx in 16usize..4000) {
        let r = rl();
        let small = r.layer_cost(Stage::Decode, &BatchShape::decode_uniform(b, ctx), 2);
        let large = r.layer_cost(Stage::Decode, &BatchShape::decode_uniform(b + 1, ctx), 2);
        prop_assert!(large.layer_time() >= small.layer_time() - 1e-15);
    }

    /// Raising TP never increases the linear data-movement term and
    /// never decreases communication (for tokens > 0).
    #[test]
    fn tp_tradeoff_direction(tokens in 1usize..4096) {
        let r = rl();
        let shape = BatchShape::prefill(&[tokens]);
        let mut prev_dm = f64::INFINITY;
        let mut prev_comm = 0.0;
        for tp in [1usize, 2, 4, 8] {
            let c = r.layer_cost(Stage::Prefill, &shape, tp);
            prop_assert!(c.linear_dm <= prev_dm + 1e-15);
            prop_assert!(c.comm >= prev_comm - 1e-15);
            prev_dm = c.linear_dm;
            prev_comm = c.comm;
        }
    }

    /// Breakdown buckets always sum to the layer time.
    #[test]
    fn breakdown_is_exhaustive(b in 1usize..256, ctx in 16usize..3000, tp in 1usize..4) {
        let r = rl();
        let tp = 1 << tp; // 2,4,8
        let c = r.layer_cost(Stage::Decode, &BatchShape::decode_uniform(b, ctx), tp);
        prop_assert!((c.breakdown().total() - c.layer_time()).abs() < 1e-12);
    }

    /// Splitting a prompt into chunks conserves total attention work
    /// (within 1%) and total token count exactly.
    #[test]
    fn chunking_conserves_work(len in 64usize..4000, nchunks in 1usize..8) {
        let whole = BatchShape::prefill(&[len]);
        let chunk = len.div_ceil(nchunks);
        let mut done = 0;
        let mut sq = 0.0;
        let mut tokens = 0;
        while done < len {
            let take = chunk.min(len - done);
            let c = BatchShape::prefill_chunk(take, done);
            sq += c.sq_sum;
            tokens += c.new_tokens;
            done += take;
        }
        prop_assert_eq!(tokens, whole.new_tokens);
        let rel = (sq - whole.sq_sum).abs() / whole.sq_sum;
        prop_assert!(rel < 0.01, "rel err {rel}");
    }

    /// Mixed-batch cost is bounded by the sum of the pure costs and at
    /// least the max of them.
    #[test]
    fn mixed_cost_bounds(chunk in 16usize..1024, b in 1usize..128, ctx in 64usize..2000) {
        let r = rl();
        let p = BatchShape::prefill_chunk(chunk, 0);
        let d = BatchShape::decode_uniform(b, ctx);
        let mixed = r.layer_cost_mixed(&p, &d, 2).layer_time();
        let pure_p = r.layer_cost(Stage::Prefill, &p, 2).layer_time();
        let pure_d = r.layer_cost(Stage::Decode, &d, 2).layer_time();
        prop_assert!(mixed <= pure_p + pure_d + 1e-12);
        prop_assert!(mixed >= pure_p.max(pure_d) * 0.5, "weights stream once, but work adds");
    }
}
