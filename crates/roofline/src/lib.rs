//! Analytical roofline performance model — the executable form of the
//! paper's Appendix A.
//!
//! For a micro-batch of known shape on one pipeline stage, the model
//! produces the five cost components of Table 3:
//!
//! | component      | prefill                        | decode                     |
//! |----------------|--------------------------------|----------------------------|
//! | `linear_dm`    | `2W / BW_hbm`                  | same (weights stream once) |
//! | `linear_comp`  | `2·W·tokens / FLOPS`           | `2·W·b / FLOPS`            |
//! | `attn_dm`      | `2·s·(h_q+2h_kv)·d / BW_hbm`   | `4·ctx·h_kv·d / BW_hbm`    |
//! | `attn_comp`    | `2·h_q·d·s² / FLOPS`           | `4·h_q·d·ctx / FLOPS`      |
//! | `comm`         | ring all-reduce of activations, `T_nw(TP)`                  |
//!
//! and combines them per layer as
//! `max(linear_dm, linear_comp) + max(attn_dm, attn_comp) + comm`.
//!
//! The same [`LayerCost`] also yields the *breakdown attribution* used
//! by Figures 1 and 12: when the linear term is memory-bound (decode)
//! its time is charged to "weight transfer"; when compute-bound
//! (prefill) to "compute"; collectives are "communication".

pub mod batch;
pub mod cost;
pub mod eq2;

pub use batch::BatchShape;
pub use cost::{LayerCost, Roofline, Stage, StageBreakdown};
pub use eq2::ThroughputModel;
