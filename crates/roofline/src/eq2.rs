//! Closed-form throughput estimates (paper Eq. 1/2).
//!
//! These are the *analytic* counterparts of the simulator: sustained,
//! fully-pipelined steady-state rates. The paper uses them to argue
//! which parallelism wins where; Seesaw's auto-tuner uses them to rank
//! candidate `(c_p, c_d)` pairs before confirming with simulation, and
//! Figure 15 is generated from them directly.

use crate::batch::BatchShape;
use crate::cost::{Roofline, Stage};
use seesaw_parallel::{FitError, MemoryPlan, ParallelConfig};

/// Analytic throughput model over a [`Roofline`].
#[derive(Debug, Clone)]
pub struct ThroughputModel {
    /// Underlying per-pass cost model.
    pub roofline: Roofline,
}

impl ThroughputModel {
    /// Wrap a roofline.
    pub fn new(roofline: Roofline) -> Self {
        ThroughputModel { roofline }
    }

    /// Maximum global batch size at average sequence length `avg_len`
    /// (Appendix A.2), or why the config cannot run.
    pub fn max_batch(&self, cfg: ParallelConfig, avg_len: usize) -> Result<usize, FitError> {
        let plan = MemoryPlan::new(self.roofline.model(), self.roofline.cluster(), cfg)?;
        Ok(plan.max_batch(avg_len).max(1))
    }

    /// Time of the bottleneck pipeline stage for one micro-batch
    /// (`T_stage` in Eq. 1).
    pub fn stage_bottleneck_time(
        &self,
        cfg: ParallelConfig,
        stage: Stage,
        shape: &BatchShape,
    ) -> f64 {
        (0..cfg.pp)
            .map(|r| self.roofline.stage_time(cfg, r, stage, shape))
            .fold(0.0_f64, f64::max)
    }

    /// Eq. 1: sustained decode rate in *sequence-steps per second* for
    /// a global batch `b` whose sequences average `avg_ctx` context
    /// tokens. Each DP replica's pipeline retires a micro-batch of
    /// `b/(PP·DP)` steps every bottleneck-stage time.
    pub fn decode_seq_steps_per_sec(
        &self,
        cfg: ParallelConfig,
        avg_ctx: usize,
        global_batch: usize,
    ) -> f64 {
        let micro = (global_batch / (cfg.pp * cfg.dp)).max(1);
        let shape = BatchShape::decode_uniform(micro, avg_ctx);
        let t = self.stage_bottleneck_time(cfg, Stage::Decode, &shape);
        if t <= 0.0 {
            return f64::INFINITY;
        }
        (micro * cfg.dp) as f64 / t
    }

    /// Sustained decode rate at the configuration's *maximum* batch —
    /// the throughput-oriented operating point the paper assumes.
    pub fn decode_seq_steps_per_sec_max_batch(
        &self,
        cfg: ParallelConfig,
        avg_ctx: usize,
    ) -> Result<f64, FitError> {
        let b = self.max_batch(cfg, avg_ctx)?;
        Ok(self.decode_seq_steps_per_sec(cfg, avg_ctx, b))
    }

    /// Sustained prefill rate in tokens per second for prompts of
    /// `prompt_len`, with `ubatch_seqs` sequences per micro-batch.
    pub fn prefill_tokens_per_sec(
        &self,
        cfg: ParallelConfig,
        prompt_len: usize,
        ubatch_seqs: usize,
    ) -> f64 {
        let shape = BatchShape::prefill(&vec![prompt_len; ubatch_seqs.max(1)]);
        let t = self.stage_bottleneck_time(cfg, Stage::Prefill, &shape);
        if t <= 0.0 {
            return f64::INFINITY;
        }
        (shape.new_tokens * cfg.dp) as f64 / t
    }

    /// Coarse end-to-end request rate estimate for a Seesaw-style pair
    /// of configurations (`c_p` for prefill, `c_d` for decode) on a
    /// workload of `avg_in` input and `avg_out` output tokens. The two
    /// phases time-share the same GPUs, so per-request costs add.
    /// Static engines pass `cfg_p == cfg_d`.
    pub fn estimate_request_rate(
        &self,
        cfg_p: ParallelConfig,
        cfg_d: ParallelConfig,
        avg_in: usize,
        avg_out: usize,
    ) -> Result<f64, FitError> {
        let prefill_rate = self.prefill_tokens_per_sec(cfg_p, avg_in.max(1), 4);
        let t_prefill = avg_in as f64 / prefill_rate;
        let avg_ctx = avg_in + avg_out / 2;
        let step_rate = self.decode_seq_steps_per_sec_max_batch(cfg_d, avg_ctx)?;
        // Also verify the prefill config itself fits.
        MemoryPlan::new(self.roofline.model(), self.roofline.cluster(), cfg_p)?;
        let t_decode = avg_out as f64 / step_rate;
        Ok(1.0 / (t_prefill + t_decode))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seesaw_hw::ClusterSpec;
    use seesaw_model::presets;

    fn tm(cluster: ClusterSpec, model: seesaw_model::ModelConfig) -> ThroughputModel {
        ThroughputModel::new(Roofline::new(cluster, model))
    }

    /// Figure 3 / §3.1: on PCIe, PP beats TP for prefill and TP beats
    /// PP for decode — the paper's central observation pair.
    #[test]
    fn pp_wins_prefill_tp_wins_decode_on_pcie() {
        let t = tm(ClusterSpec::a10x8(), presets::llama2_70b());
        let pp8 = ParallelConfig::pp(8);
        let tp8 = ParallelConfig::tp(8);

        let prefill_pp = t.prefill_tokens_per_sec(pp8, 2000, 4);
        let prefill_tp = t.prefill_tokens_per_sec(tp8, 2000, 4);
        assert!(
            prefill_pp > prefill_tp,
            "prefill: PP8 {prefill_pp:.0} tok/s should beat TP8 {prefill_tp:.0}"
        );

        let dec_pp = t.decode_seq_steps_per_sec_max_batch(pp8, 2200).unwrap();
        let dec_tp = t
            .decode_seq_steps_per_sec_max_batch(ParallelConfig::new(1, 4, 2), 2200)
            .unwrap();
        assert!(
            dec_tp > dec_pp,
            "decode: T4P2 {dec_tp:.1} steps/s should beat PP8 {dec_pp:.1}"
        );
    }

    /// On NVLink, TP's collective penalty largely disappears.
    #[test]
    fn nvlink_narrows_prefill_gap() {
        let pcie = tm(ClusterSpec::a100x8_pcie(), presets::llama2_70b());
        let nvl = tm(ClusterSpec::a100x8_nvlink(), presets::llama2_70b());
        let gap = |t: &ThroughputModel| {
            t.prefill_tokens_per_sec(ParallelConfig::pp(8), 2000, 4)
                / t.prefill_tokens_per_sec(ParallelConfig::tp(8), 2000, 4)
        };
        assert!(gap(&pcie) > gap(&nvl));
        assert!(gap(&nvl) < 1.5, "NVLink TP8 prefill should be competitive");
    }

    #[test]
    fn decode_rate_improves_with_batch() {
        let t = tm(ClusterSpec::a10x8(), presets::codellama_34b());
        let cfg = ParallelConfig::new(1, 4, 2);
        let r_small = t.decode_seq_steps_per_sec(cfg, 1500, 8);
        let r_big = t.decode_seq_steps_per_sec(cfg, 1500, 128);
        assert!(r_big > 4.0 * r_small, "batching must amortize weights");
    }

    #[test]
    fn infeasible_config_reported() {
        let t = tm(ClusterSpec::a10x8(), presets::llama2_70b());
        assert!(t.max_batch(ParallelConfig::new(8, 1, 1), 1000).is_err());
    }

    #[test]
    fn estimate_request_rate_prefers_mixed_configs_on_pcie() {
        // The Seesaw premise: P8 -> T4P2 should beat both static
        // choices on a PCIe box for a balanced workload.
        let t = tm(ClusterSpec::a10x8(), presets::llama2_70b());
        let pp8 = ParallelConfig::pp(8);
        let t4p2 = ParallelConfig::new(1, 4, 2);
        let seesaw = t.estimate_request_rate(pp8, t4p2, 3000, 300).unwrap();
        let static_pp = t.estimate_request_rate(pp8, pp8, 3000, 300).unwrap();
        let static_tp = t.estimate_request_rate(t4p2, t4p2, 3000, 300).unwrap();
        assert!(seesaw > static_pp, "seesaw {seesaw} vs pp {static_pp}");
        assert!(seesaw > static_tp, "seesaw {seesaw} vs tp {static_tp}");
    }
}
