//! Per-layer and per-stage cost computation.

use crate::batch::BatchShape;
use seesaw_hw::ClusterSpec;
use seesaw_model::ModelConfig;
use seesaw_parallel::shard::kv_heads_per_rank;
use seesaw_parallel::ParallelConfig;
use seesaw_hw::FxBuildHasher;
use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::Arc;

/// Which inference stage a pass belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Stage {
    /// Prompt processing (compute/communication bound).
    Prefill,
    /// Auto-regressive generation (weight-streaming bound).
    Decode,
}

/// The five cost components of one decoder layer's forward pass on one
/// tensor-parallel rank (paper Table 3), in seconds.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct LayerCost {
    /// Weight streaming from HBM (`T_linear_dm`).
    pub linear_dm: f64,
    /// Linear-layer FLOPs (`T_linear_comp`).
    pub linear_comp: f64,
    /// KV/QKV traffic (`T_attn_dm`).
    pub attn_dm: f64,
    /// Attention-score FLOPs (`T_attn_comp`).
    pub attn_comp: f64,
    /// Tensor-parallel all-reduce (`T_nw`).
    pub comm: f64,
}

impl LayerCost {
    /// Roofline layer time:
    /// `max(linear_dm, linear_comp) + max(attn_dm, attn_comp) + comm`.
    pub fn layer_time(&self) -> f64 {
        self.linear_dm.max(self.linear_comp) + self.attn_dm.max(self.attn_comp) + self.comm
    }

    /// Whether the linear term is memory-bound (weight streaming
    /// dominates) — true in decode at practical batch sizes.
    pub fn linear_memory_bound(&self) -> bool {
        self.linear_dm >= self.linear_comp
    }

    /// Attribute this layer's time to the breakdown buckets used in
    /// Figures 1 and 12.
    pub fn breakdown(&self) -> StageBreakdown {
        let mut b = StageBreakdown::default();
        let linear = self.linear_dm.max(self.linear_comp);
        if self.linear_memory_bound() {
            b.weight_transfer += linear;
        } else {
            b.compute += linear;
        }
        b.compute += self.attn_dm.max(self.attn_comp);
        b.communication += self.comm;
        b
    }

    /// Component-wise sum (mixed prefill+decode batches).
    pub fn add(&self, other: &LayerCost) -> LayerCost {
        LayerCost {
            linear_dm: self.linear_dm + other.linear_dm,
            linear_comp: self.linear_comp + other.linear_comp,
            attn_dm: self.attn_dm + other.attn_dm,
            attn_comp: self.attn_comp + other.attn_comp,
            comm: self.comm + other.comm,
        }
    }
}

/// Time attributed to the paper's breakdown buckets, seconds.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct StageBreakdown {
    /// GEMM + attention kernel time.
    pub compute: f64,
    /// Collective (all-reduce) + P2P time.
    pub communication: f64,
    /// Weight-streaming time in memory-bound passes.
    pub weight_transfer: f64,
}

impl StageBreakdown {
    /// Total across buckets.
    pub fn total(&self) -> f64 {
        self.compute + self.communication + self.weight_transfer
    }

    /// Component-wise sum.
    pub fn add(&self, o: &StageBreakdown) -> StageBreakdown {
        StageBreakdown {
            compute: self.compute + o.compute,
            communication: self.communication + o.communication,
            weight_transfer: self.weight_transfer + o.weight_transfer,
        }
    }

    /// Scale every bucket (e.g. by a layer count).
    pub fn scale(&self, k: f64) -> StageBreakdown {
        StageBreakdown {
            compute: self.compute * k,
            communication: self.communication * k,
            weight_transfer: self.weight_transfer * k,
        }
    }
}

/// Exact memoization key for one `layer_cost` evaluation. `sq_sum` is
/// keyed by its bit pattern, so cache hits return bit-identical costs
/// to a fresh evaluation (figure output must not drift).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct CostKey {
    prefill: bool,
    seqs: usize,
    new_tokens: usize,
    ctx_tokens: usize,
    sq_sum_bits: u64,
    tp: usize,
}

impl CostKey {
    fn new(stage: Stage, shape: &BatchShape, tp: usize) -> Self {
        CostKey {
            prefill: stage == Stage::Prefill,
            seqs: shape.seqs,
            new_tokens: shape.new_tokens,
            ctx_tokens: shape.ctx_tokens,
            sq_sum_bits: shape.sq_sum.to_bits(),
            tp,
        }
    }
}

type CostCache = HashMap<CostKey, LayerCost, FxBuildHasher>;

/// Per-thread retention of cost caches between [`Roofline`] lifetimes,
/// keyed by spec *value equality* (with an `Arc::ptr_eq` fast path):
/// a roofline rebuilt for the same cluster/model — whether from the
/// engine's shared `Arc` handles or from a fresh deep copy, as the
/// figure grids do per cell — inherits the thread's warm cache.
/// Layer costs are pure functions of the spec values, and the cache's
/// keys are exact, so hits are bit-identical to fresh evaluation and
/// warm-started runs produce byte-identical output.
struct CachePoolEntry {
    cluster: Arc<ClusterSpec>,
    model: Arc<ModelConfig>,
    cache: CostCache,
}

impl CachePoolEntry {
    fn matches(&self, cluster: &Arc<ClusterSpec>, model: &Arc<ModelConfig>) -> bool {
        (Arc::ptr_eq(&self.cluster, cluster) || *self.cluster == **cluster)
            && (Arc::ptr_eq(&self.model, model) || *self.model == **model)
    }
}

const CACHE_POOL_MAX: usize = 8;

thread_local! {
    static CACHE_POOL: RefCell<Vec<CachePoolEntry>> = const { RefCell::new(Vec::new()) };
}

fn cache_pool_take(cluster: &Arc<ClusterSpec>, model: &Arc<ModelConfig>) -> CostCache {
    CACHE_POOL
        .try_with(|pool| {
            let mut pool = pool.borrow_mut();
            let hit = pool.iter().position(|e| e.matches(cluster, model));
            // Order-preserving removal (≤ 8 entries) so the capacity
            // eviction below really drops the oldest entry.
            hit.map(|i| pool.remove(i).cache).unwrap_or_default()
        })
        .unwrap_or_default()
}

fn cache_pool_put(cluster: Arc<ClusterSpec>, model: Arc<ModelConfig>, cache: CostCache) {
    if cache.is_empty() {
        return;
    }
    let _ = CACHE_POOL.try_with(|pool| {
        let mut pool = pool.borrow_mut();
        if let Some(e) = pool.iter_mut().find(|e| e.matches(&cluster, &model)) {
            // Keep whichever sibling learned more shapes.
            if cache.len() > e.cache.len() {
                e.cache = cache;
            }
            return;
        }
        if pool.len() == CACHE_POOL_MAX {
            pool.remove(0); // evict in insertion order
        }
        pool.push(CachePoolEntry { cluster, model, cache });
    });
}

/// The analytical performance model: cluster + model + Table 3
/// formulas, with a memoization cache over `(stage, shape, tp)`
/// evaluations.
///
/// The cluster and model are `Arc`-shared: constructing a roofline
/// from existing handles is two reference-count bumps, not a deep
/// copy. The cache is interior-mutable and owned by each `Roofline`
/// instance: engines and `ThroughputModel`s construct their own
/// roofline per run, so concurrent sweep workers never contend on a
/// shared cache (and `Roofline` deliberately is not `Sync`). On drop
/// the learned cache is parked in a per-thread pool and revived by
/// the next roofline built for the same cluster/model values.
#[derive(Debug)]
pub struct Roofline {
    // Private so the memoized costs can never go stale: rebuilding
    // via `Roofline::new` is the only way to change what is modeled.
    cluster: Arc<ClusterSpec>,
    model: Arc<ModelConfig>,
    cache: RefCell<CostCache>,
}

impl Clone for Roofline {
    fn clone(&self) -> Self {
        Roofline {
            cluster: Arc::clone(&self.cluster),
            model: Arc::clone(&self.model),
            cache: self.cache.clone(),
        }
    }
}

impl Drop for Roofline {
    fn drop(&mut self) {
        cache_pool_put(
            Arc::clone(&self.cluster),
            Arc::clone(&self.model),
            self.cache.take(),
        );
    }
}

impl Roofline {
    /// Build the model for a cluster/model pair. Accepts owned specs
    /// or `Arc` handles; rebuilding for a cluster/model this thread
    /// has evaluated before revives that run's memoized costs.
    pub fn new(
        cluster: impl Into<Arc<ClusterSpec>>,
        model: impl Into<Arc<ModelConfig>>,
    ) -> Self {
        let cluster = cluster.into();
        let model = model.into();
        model.validate().expect("invalid model config");
        let cache = cache_pool_take(&cluster, &model);
        Roofline {
            cluster,
            model,
            cache: RefCell::new(cache),
        }
    }

    /// Hardware under evaluation.
    pub fn cluster(&self) -> &ClusterSpec {
        &self.cluster
    }

    /// Model under evaluation.
    pub fn model(&self) -> &ModelConfig {
        &self.model
    }


    /// Number of distinct `(stage, shape, tp)` evaluations cached so
    /// far.
    pub fn cost_cache_len(&self) -> usize {
        self.cache.borrow().len()
    }

    /// Cost of one decoder layer for a micro-batch of `shape` at
    /// tensor-parallel degree `tp` (per rank; all TP ranks run this
    /// concurrently and then all-reduce). Memoized per instance;
    /// identical inputs return bit-identical costs whether they hit
    /// or miss the cache.
    pub fn layer_cost(&self, stage: Stage, shape: &BatchShape, tp: usize) -> LayerCost {
        if shape.is_empty() {
            return LayerCost::default();
        }
        let key = CostKey::new(stage, shape, tp);
        if let Some(&hit) = self.cache.borrow().get(&key) {
            return hit;
        }
        let cost = self.layer_cost_uncached(stage, shape, tp);
        self.cache.borrow_mut().insert(key, cost);
        cost
    }

    /// The raw Table 3 evaluation, bypassing the memoization cache
    /// (reference implementation for cache-correctness tests and
    /// benchmarks).
    pub fn layer_cost_uncached(&self, stage: Stage, shape: &BatchShape, tp: usize) -> LayerCost {
        if shape.is_empty() {
            return LayerCost::default();
        }
        let m = &self.model;
        let g = &self.cluster.gpu;
        let dt = m.dtype.bytes() as f64;
        let tpf = tp as f64;
        let hq_rank = (m.num_heads as f64 / tpf).max(1.0);
        let kv_rank = kv_heads_per_rank(m.num_kv_heads, tp) as f64;
        let d = m.head_dim as f64;

        // Linear layers: weights stream once per pass, sharded by TP.
        let weight_bytes_rank = m.weight_bytes_per_layer() as f64 / tpf;
        let linear_dm = g.hbm_time(weight_bytes_rank);
        let linear_comp =
            g.gemm_time(m.linear_flops_per_token_layer() * shape.new_tokens as f64 / tpf);

        let (attn_dm_bytes, attn_flops) = match stage {
            Stage::Prefill => {
                // Q for new tokens + K/V over the full context (covers
                // both whole-prompt and chunked prefill).
                let bytes = dt
                    * d
                    * (shape.new_tokens as f64 * hq_rank
                        + 2.0 * kv_rank * shape.ctx_tokens as f64);
                let flops = 2.0 * hq_rank * d * shape.sq_sum;
                (bytes, flops)
            }
            Stage::Decode => {
                // Read K and V across each sequence's context.
                let bytes = 2.0 * dt * kv_rank * d * shape.ctx_tokens as f64;
                let flops = 4.0 * hq_rank * d * shape.ctx_tokens as f64;
                (bytes, flops)
            }
        };
        let attn_dm = g.hbm_time(attn_dm_bytes);
        let attn_comp = g.attn_time(attn_flops);

        // Two all-reduces per layer over the activation tensor
        // (tokens × hidden), replicated on every rank.
        let ar_bytes = shape.new_tokens as f64 * m.hidden as f64 * dt;
        let comm = 2.0 * self.cluster.interconnect.allreduce_time(ar_bytes, tp);

        LayerCost {
            linear_dm,
            linear_comp,
            attn_dm,
            attn_comp,
            comm,
        }
    }

    /// Cost of one layer for a *mixed* batch (chunked prefill
    /// piggybacking decodes): weights stream once; attention and
    /// compute terms accumulate; the all-reduce covers the combined
    /// token count.
    pub fn layer_cost_mixed(
        &self,
        prefill: &BatchShape,
        decode: &BatchShape,
        tp: usize,
    ) -> LayerCost {
        let p = self.layer_cost(Stage::Prefill, prefill, tp);
        let d = self.layer_cost(Stage::Decode, decode, tp);
        let mut c = LayerCost {
            // Weights stream once per pass, not per sub-batch.
            linear_dm: p.linear_dm.max(d.linear_dm),
            linear_comp: p.linear_comp + d.linear_comp,
            attn_dm: p.attn_dm + d.attn_dm,
            attn_comp: p.attn_comp + d.attn_comp,
            comm: 0.0,
        };
        let m = &self.model;
        let tokens = prefill.new_tokens + decode.new_tokens;
        let ar_bytes = tokens as f64 * m.hidden as f64 * m.dtype.bytes() as f64;
        c.comm = 2.0 * self.cluster.interconnect.allreduce_time(ar_bytes, tp);
        if prefill.is_empty() && decode.is_empty() {
            return LayerCost::default();
        }
        c
    }

    /// Time for pipeline stage `pp_rank` of `config` to process one
    /// micro-batch of `shape`: its layer count × the per-layer cost.
    pub fn stage_time(
        &self,
        config: ParallelConfig,
        pp_rank: usize,
        stage: Stage,
        shape: &BatchShape,
    ) -> f64 {
        let (s, e) = config.stage_layers(self.model.num_layers, pp_rank);
        (e - s) as f64 * self.layer_cost(stage, shape, config.tp).layer_time()
    }

    /// Latency of one micro-batch traversing the *whole* pipeline
    /// (all stages + inter-stage activation hops). This is a latency
    /// figure; sustained throughput overlaps micro-batches and is the
    /// simulator's job.
    pub fn micro_pass_latency(
        &self,
        config: ParallelConfig,
        stage: Stage,
        shape: &BatchShape,
    ) -> f64 {
        let per_layer = self.layer_cost(stage, shape, config.tp).layer_time();
        let mut t = self.model.num_layers as f64 * per_layer;
        if config.pp > 1 {
            t += (config.pp - 1) as f64
                * self.cluster.interconnect.p2p_time(self.p2p_bytes(shape));
        }
        t
    }

    /// Bytes of activations passed between adjacent pipeline stages
    /// for a micro-batch of `shape`.
    pub fn p2p_bytes(&self, shape: &BatchShape) -> f64 {
        shape.new_tokens as f64 * self.model.hidden as f64 * self.model.dtype.bytes() as f64
    }

    /// Full-pipeline breakdown for one micro-batch (all layers),
    /// bucketed for the figures.
    pub fn pass_breakdown(
        &self,
        config: ParallelConfig,
        stage: Stage,
        shape: &BatchShape,
    ) -> StageBreakdown {
        let per_layer = self.layer_cost(stage, shape, config.tp).breakdown();
        let mut b = per_layer.scale(self.model.num_layers as f64);
        if config.pp > 1 {
            b.communication += (config.pp - 1) as f64
                * self.cluster.interconnect.p2p_time(self.p2p_bytes(shape));
        }
        b
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seesaw_hw::ClusterSpec;
    use seesaw_model::presets;

    fn rl() -> Roofline {
        Roofline::new(ClusterSpec::l4x8(), presets::llama2_13b())
    }

    #[test]
    fn decode_is_weight_streaming_bound_at_small_batch() {
        let r = rl();
        let c = r.layer_cost(Stage::Decode, &BatchShape::decode_uniform(16, 512), 1);
        assert!(c.linear_memory_bound(), "{c:?}");
        assert!(c.breakdown().weight_transfer > c.breakdown().compute);
    }

    #[test]
    fn prefill_is_compute_bound() {
        let r = rl();
        let c = r.layer_cost(Stage::Prefill, &BatchShape::prefill(&[512; 16]), 1);
        assert!(!c.linear_memory_bound(), "{c:?}");
    }

    #[test]
    fn huge_decode_batch_becomes_compute_bound() {
        let r = rl();
        let small = r.layer_cost(Stage::Decode, &BatchShape::decode_uniform(1, 512), 1);
        let huge = r.layer_cost(Stage::Decode, &BatchShape::decode_uniform(4096, 512), 1);
        assert!(small.linear_memory_bound());
        assert!(!huge.linear_memory_bound());
    }

    #[test]
    fn tp_shrinks_weight_streaming_but_adds_comm() {
        // The core Seesaw trade-off (paper Fig 3).
        let r = rl();
        let shape = BatchShape::decode_uniform(64, 512);
        let t1 = r.layer_cost(Stage::Decode, &shape, 1);
        let t4 = r.layer_cost(Stage::Decode, &shape, 4);
        assert!(t4.linear_dm < t1.linear_dm / 3.0);
        assert!(t4.comm > t1.comm);
        assert_eq!(t1.comm, 0.0);
    }

    #[test]
    fn prefill_comm_share_grows_with_tp_on_pcie() {
        // Figure 1(a): all-reduce share escalates with TP degree.
        let r = rl();
        let shape = BatchShape::prefill(&[512; 16]);
        let share = |tp: usize| {
            let c = r.layer_cost(Stage::Prefill, &shape, tp);
            c.comm / c.layer_time()
        };
        assert!(share(2) < share(4));
        assert!(share(4) < share(8));
        assert!(share(8) > 0.3, "TP8 prefill should be comm-dominated");
    }

    #[test]
    fn nvlink_suppresses_comm_share() {
        let pcie = Roofline::new(ClusterSpec::a100x8_pcie(), presets::llama2_70b());
        let nvl = Roofline::new(ClusterSpec::a100x8_nvlink(), presets::llama2_70b());
        let shape = BatchShape::prefill(&[1024; 8]);
        let cp = pcie.layer_cost(Stage::Prefill, &shape, 8);
        let cn = nvl.layer_cost(Stage::Prefill, &shape, 8);
        assert!(cn.comm < cp.comm / 10.0);
    }

    #[test]
    fn mixed_batch_streams_weights_once() {
        let r = rl();
        let p = BatchShape::prefill_chunk(256, 0);
        let d = BatchShape::decode_uniform(32, 600);
        let mixed = r.layer_cost_mixed(&p, &d, 2);
        let p_only = r.layer_cost(Stage::Prefill, &p, 2);
        let d_only = r.layer_cost(Stage::Decode, &d, 2);
        assert!(mixed.linear_dm <= p_only.linear_dm + d_only.linear_dm);
        assert!((mixed.linear_dm - p_only.linear_dm.max(d_only.linear_dm)).abs() < 1e-12);
        // But compute accumulates.
        assert!(mixed.linear_comp > p_only.linear_comp.max(d_only.linear_comp));
    }

    #[test]
    fn stage_time_scales_with_layers() {
        let r = rl();
        let cfg = ParallelConfig::pp(4); // 40 layers -> 10 per stage
        let shape = BatchShape::prefill(&[512; 4]);
        let t0 = r.stage_time(cfg, 0, Stage::Prefill, &shape);
        let full = r.micro_pass_latency(ParallelConfig::new(1, 1, 1), Stage::Prefill, &shape);
        assert!((t0 * 4.0 - full).abs() / full < 0.05);
    }

    #[test]
    fn empty_shape_costs_nothing() {
        let r = rl();
        let c = r.layer_cost(Stage::Prefill, &BatchShape::empty(), 4);
        assert_eq!(c.layer_time(), 0.0);
        let m = r.layer_cost_mixed(&BatchShape::empty(), &BatchShape::empty(), 4);
        assert_eq!(m.layer_time(), 0.0);
    }

    /// The per-thread cache pool revives memoized costs for rooflines
    /// rebuilt for the same cluster/model — via the same `Arc`
    /// handles or a value-equal deep copy — and the revived values
    /// are bit-identical to fresh evaluation. Different specs never
    /// inherit.
    #[test]
    fn cache_pool_revives_for_equal_specs() {
        let cluster = Arc::new(ClusterSpec::l4x8());
        let model = Arc::new(presets::llama2_13b());
        let shape = BatchShape::decode_uniform(8, 256);
        let cold = {
            let r = Roofline::new(Arc::clone(&cluster), Arc::clone(&model));
            assert_eq!(r.cost_cache_len(), 0, "first build starts cold");
            let c = r.layer_cost(Stage::Decode, &shape, 2);
            assert_eq!(r.cost_cache_len(), 1);
            c
        };
        let r = Roofline::new(Arc::clone(&cluster), Arc::clone(&model));
        assert_eq!(r.cost_cache_len(), 1, "same handles revive the cache");
        let warm = r.layer_cost(Stage::Decode, &shape, 2);
        assert_eq!(cold, warm);
        drop(r);

        // A value-equal deep copy (the figure grids' per-cell
        // pattern) inherits too, bit-identically.
        let copy = Roofline::new(ClusterSpec::l4x8(), presets::llama2_13b());
        assert_eq!(copy.cost_cache_len(), 1, "equal values revive the cache");
        assert_eq!(copy.layer_cost(Stage::Decode, &shape, 2), cold);
        drop(copy);

        // A different spec starts cold.
        let other = Roofline::new(ClusterSpec::a10x8(), presets::llama2_13b());
        assert_eq!(other.cost_cache_len(), 0);
    }

    #[test]
    fn breakdown_total_matches_layer_time() {
        let r = rl();
        for (stage, shape) in [
            (Stage::Prefill, BatchShape::prefill(&[700; 8])),
            (Stage::Decode, BatchShape::decode_uniform(48, 900)),
        ] {
            let c = r.layer_cost(stage, &shape, 4);
            assert!((c.breakdown().total() - c.layer_time()).abs() < 1e-12);
        }
    }
}
