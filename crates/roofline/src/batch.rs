//! Micro-batch shape descriptors.

use serde::{Deserialize, Serialize};

/// The shape of one micro-batch presented to a forward pass, carrying
/// exactly the aggregates the roofline needs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BatchShape {
    /// Number of sequences in the micro-batch.
    pub seqs: usize,
    /// New tokens processed this pass (prompt tokens for prefill; one
    /// per sequence for decode; chunk tokens for chunked prefill).
    pub new_tokens: usize,
    /// Σ `sᵢ²` over sequences — drives quadratic prefill attention.
    /// Zero for pure decode.
    pub sq_sum: f64,
    /// Σ context length over sequences — drives decode KV reads. For
    /// prefill this equals `new_tokens` (the KV written/read is the
    /// prompt itself).
    pub ctx_tokens: usize,
}

impl BatchShape {
    /// A prefill micro-batch over whole prompts.
    pub fn prefill(prompt_lens: &[usize]) -> Self {
        let new_tokens: usize = prompt_lens.iter().sum();
        let sq_sum: f64 = prompt_lens.iter().map(|&s| (s as f64) * (s as f64)).sum();
        BatchShape {
            seqs: prompt_lens.len(),
            new_tokens,
            sq_sum,
            ctx_tokens: new_tokens,
        }
    }

    /// A single-sequence prefill *chunk*: `chunk` new tokens of a
    /// prompt whose already-processed prefix is `prefix` tokens long.
    /// Attention cost covers the new tokens attending to
    /// `prefix + chunk` context.
    pub fn prefill_chunk(chunk: usize, prefix: usize) -> Self {
        let total = (prefix + chunk) as f64;
        // New-token attention work: Σ over the chunk of (prefix..total)
        // ≈ chunk · (prefix + total)/2 positions, ×2 for QKᵀ and A·V
        // matmuls is folded into the 2·h·d·(..) coefficient downstream.
        let sq_sum = chunk as f64 * (prefix as f64 + total);
        BatchShape {
            seqs: 1,
            new_tokens: chunk,
            sq_sum,
            ctx_tokens: prefix + chunk,
        }
    }

    /// A decode micro-batch: one new token per sequence, each with its
    /// current context length.
    pub fn decode(ctx_lens: &[usize]) -> Self {
        Self::decode_iter(ctx_lens.iter().copied())
    }

    /// [`BatchShape::decode`] from an iterator of context lengths, so
    /// hot loops need not materialize a slice.
    pub fn decode_iter(ctx_lens: impl IntoIterator<Item = usize>) -> Self {
        let mut shape = Self::empty();
        for ctx in ctx_lens {
            shape.seqs += 1;
            shape.ctx_tokens += ctx;
        }
        shape.new_tokens = shape.seqs;
        shape
    }

    /// [`BatchShape::prefill`] from an iterator of prompt lengths, so
    /// hot loops need not materialize a slice.
    pub fn prefill_iter(prompt_lens: impl IntoIterator<Item = usize>) -> Self {
        let mut shape = Self::empty();
        for s in prompt_lens {
            shape.seqs += 1;
            shape.new_tokens += s;
            shape.sq_sum += (s as f64) * (s as f64);
        }
        shape.ctx_tokens = shape.new_tokens;
        shape
    }

    /// A decode micro-batch summarized by batch size and mean context
    /// (used in sweeps where per-sequence contexts are uniform).
    pub fn decode_uniform(batch: usize, ctx: usize) -> Self {
        BatchShape {
            seqs: batch,
            new_tokens: batch,
            sq_sum: 0.0,
            ctx_tokens: batch * ctx,
        }
    }

    /// Merge two micro-batch shapes (chunked prefill piggybacking
    /// decodes — Sarathi-style mixed batches).
    pub fn merge(&self, other: &BatchShape) -> BatchShape {
        BatchShape {
            seqs: self.seqs + other.seqs,
            new_tokens: self.new_tokens + other.new_tokens,
            sq_sum: self.sq_sum + other.sq_sum,
            ctx_tokens: self.ctx_tokens + other.ctx_tokens,
        }
    }

    /// An empty shape (identity for [`Self::merge`]).
    pub fn empty() -> Self {
        BatchShape {
            seqs: 0,
            new_tokens: 0,
            sq_sum: 0.0,
            ctx_tokens: 0,
        }
    }

    /// Whether the shape contains no work.
    pub fn is_empty(&self) -> bool {
        self.seqs == 0 && self.new_tokens == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefill_aggregates() {
        let b = BatchShape::prefill(&[100, 200]);
        assert_eq!(b.seqs, 2);
        assert_eq!(b.new_tokens, 300);
        assert_eq!(b.ctx_tokens, 300);
        assert!((b.sq_sum - (100.0 * 100.0 + 200.0 * 200.0)).abs() < 1e-9);
    }

    #[test]
    fn decode_aggregates() {
        let b = BatchShape::decode(&[50, 70, 90]);
        assert_eq!(b.seqs, 3);
        assert_eq!(b.new_tokens, 3);
        assert_eq!(b.ctx_tokens, 210);
        assert_eq!(b.sq_sum, 0.0);
    }

    #[test]
    fn chunks_sum_to_whole_prompt_attention() {
        // Prefilling 1000 tokens in 4 chunks of 250 should do the same
        // total attention work as one 1000-token pass.
        let whole = BatchShape::prefill(&[1000]);
        let mut acc = 0.0;
        for i in 0..4 {
            acc += BatchShape::prefill_chunk(250, i * 250).sq_sum;
        }
        assert!(
            (acc - whole.sq_sum).abs() / whole.sq_sum < 0.01,
            "chunked {acc} vs whole {}",
            whole.sq_sum
        );
    }

    #[test]
    fn merge_is_componentwise_sum() {
        let p = BatchShape::prefill(&[128]);
        let d = BatchShape::decode(&[512, 512]);
        let m = p.merge(&d);
        assert_eq!(m.seqs, 3);
        assert_eq!(m.new_tokens, 130);
        assert_eq!(m.ctx_tokens, 128 + 1024);
        let e = BatchShape::empty();
        assert_eq!(p.merge(&e), p);
        assert!(e.is_empty());
    }
}
