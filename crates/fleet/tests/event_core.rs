//! Fleet event-core equivalence: the global event loop must
//! reproduce the merged-timeline fast path byte-for-byte on every
//! feedback-free policy (making the fast-path auto-selection purely a
//! performance choice), and the live policies must be deterministic
//! and jobs-invariant over arbitrary traces.

use proptest::prelude::*;
use seesaw_engine::vllm::VllmEngine;
use seesaw_engine::{OnlineEngine, SchedulingPolicy, SweepRunner};
use seesaw_fleet::{Fleet, RouterPolicy};
use seesaw_hw::ClusterSpec;
use seesaw_model::{presets, ModelConfig};
use seesaw_parallel::ParallelConfig;
use seesaw_workload::{ArrivalDist, Request, WorkloadGen};
use std::sync::Arc;

fn specs() -> (Arc<ClusterSpec>, Arc<ModelConfig>) {
    (Arc::new(ClusterSpec::a10x4()), Arc::new(presets::llama2_13b()))
}

fn vllm_fleet(n: usize) -> Fleet {
    let (cluster, model) = specs();
    Fleet::homogeneous(n, |_| {
        Box::new(
            VllmEngine::new(
                Arc::clone(&cluster),
                Arc::clone(&model),
                ParallelConfig::new(1, 2, 2),
                SchedulingPolicy::PrefillPrioritized,
            )
            .expect("valid config"),
        ) as Box<dyn OnlineEngine>
    })
}

fn online_reqs(n: usize, rate: f64, seed: u64) -> Vec<Request> {
    let base = WorkloadGen::sharegpt(seed).generate(n);
    ArrivalDist::Poisson { rate }
        .attach(&base, seed ^ seesaw_workload::ARRIVAL_SEED_SALT)
        .expect("valid arrivals")
}

/// The acceptance bar for the refactor: for all four estimated-queue
/// policies, forcing the global event loop produces a `FleetReport`
/// byte-identical to the merged-timeline fast path — same
/// assignments, same per-replica reports, same merged aggregates.
#[test]
fn event_loop_matches_fast_path_for_every_estimated_policy() {
    let fleet = vllm_fleet(3);
    let reqs = online_reqs(36, 5.0, 17);
    for policy in RouterPolicy::all_default() {
        assert!(!policy.needs_live_state(), "{policy} takes the fast path");
        let fast = fleet.run_with(&SweepRunner::serial(), policy, &reqs);
        let looped = fleet.run_event_loop_with(&SweepRunner::serial(), policy, &reqs);
        assert_eq!(fast, looped, "{policy}: event loop diverged from fast path");
    }
}

/// Same equivalence under burstier arrivals and a different fleet
/// width, on a parallel runner — the interleaving of replica
/// simulations must not matter on either path.
#[test]
fn event_loop_matches_fast_path_under_bursty_load() {
    let fleet = vllm_fleet(4);
    let base = WorkloadGen::constant(768, 32).generate(28);
    let reqs = ArrivalDist::Gamma { rate: 9.0, cv: 2.5 }
        .attach(&base, 23)
        .expect("valid arrivals");
    for policy in RouterPolicy::all_default() {
        let fast = fleet.run_with(&SweepRunner::new(4), policy, &reqs);
        let looped = fleet.run_event_loop_with(&SweepRunner::new(4), policy, &reqs);
        assert_eq!(fast, looped, "{policy}: event loop diverged from fast path");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Live policies on the global event loop are deterministic and
    /// jobs-invariant over random traces: serial and 4-job runs give
    /// the same report, twice over.
    #[test]
    fn live_policies_are_jobs_invariant_on_random_traces(
        n in 4usize..28,
        n_replicas in 2usize..5,
        seed in 0u64..200,
        rate in 1.0f64..16.0,
        live_idx in 0usize..2,
    ) {
        let base: Vec<Request> =
            (0..n).map(|i| Request::new(i as u64, 256, 12)).collect();
        let reqs = ArrivalDist::Poisson { rate }.attach(&base, seed).expect("valid");
        let policy = RouterPolicy::all_live()[live_idx];
        let fleet = vllm_fleet(n_replicas);
        let serial = fleet.run_with(&SweepRunner::serial(), policy, &reqs);
        let parallel = fleet.run_with(&SweepRunner::new(4), policy, &reqs);
        prop_assert_eq!(&serial, &parallel, "{} diverged across job counts", policy);
        let again = fleet.run_with(&SweepRunner::new(4), policy, &reqs);
        prop_assert_eq!(&parallel, &again, "{} is not deterministic", policy);
        prop_assert_eq!(serial.stats.requests as usize, n);
    }
}
