//! Fleet-tier invariants: single-replica transparency (a fleet of
//! one is byte-identical to the bare engine), determinism across job
//! counts and backends, router-split sortedness under random traces,
//! and scale-out actually relieving overload.

use proptest::prelude::*;
use seesaw_engine::disagg::DisaggEngine;
use seesaw_engine::seesaw::{SeesawEngine, SeesawSpec};
use seesaw_engine::vllm::VllmEngine;
use seesaw_engine::{OnlineEngine, SchedulingPolicy, SweepRunner};
use seesaw_fleet::router;
use seesaw_fleet::{Fleet, RouterPolicy};
use seesaw_hw::ClusterSpec;
use seesaw_model::{presets, ModelConfig};
use seesaw_parallel::ParallelConfig;
use seesaw_workload::{split_stream, ArrivalDist, Request, WorkloadGen};
use std::sync::Arc;

fn specs() -> (Arc<ClusterSpec>, Arc<ModelConfig>) {
    (Arc::new(ClusterSpec::a10x4()), Arc::new(presets::llama2_13b()))
}

fn vllm_engine(cluster: &Arc<ClusterSpec>, model: &Arc<ModelConfig>) -> VllmEngine {
    VllmEngine::new(
        Arc::clone(cluster),
        Arc::clone(model),
        ParallelConfig::new(1, 2, 2),
        SchedulingPolicy::PrefillPrioritized,
    )
    .expect("valid config")
}

fn online_reqs(n: usize, rate: f64, seed: u64) -> Vec<Request> {
    let base = WorkloadGen::sharegpt(seed).generate(n);
    ArrivalDist::Poisson { rate }
        .attach(&base, seed ^ seesaw_workload::ARRIVAL_SEED_SALT)
        .expect("valid arrivals")
}

/// A fleet of one behind round-robin is a transparent wrapper: its
/// only replica's report is byte-identical to the bare engine run on
/// the same stream, and the fleet-level aggregates coincide with the
/// engine's own.
#[test]
fn single_replica_round_robin_is_byte_identical_to_bare_engine() {
    let (cluster, model) = specs();
    let reqs = online_reqs(32, 3.0, 42);
    let bare = vllm_engine(&cluster, &model).run(&reqs);
    let fleet = Fleet::new(vec![Box::new(vllm_engine(&cluster, &model))]);
    let report = fleet.run_with(&SweepRunner::serial(), RouterPolicy::RoundRobin, &reqs);
    assert_eq!(report.replicas.len(), 1);
    assert_eq!(report.replicas[0], bare, "fleet-of-one must not perturb the engine run");
    assert_eq!(report.timeline, bare.timeline);
    assert_eq!(report.latency, bare.latency);
    assert_eq!(report.stats, bare.stats);
    assert!(report.assignment.iter().all(|&r| r == 0));
}

/// Every routing policy produces an identical report on 1 vs 4 jobs,
/// for a heterogeneous (vLLM + Seesaw + disagg) fleet.
#[test]
fn heterogeneous_fleet_is_runner_invariant_under_every_policy() {
    let (cluster, model) = specs();
    let build = || -> Vec<Box<dyn OnlineEngine>> {
        vec![
            Box::new(vllm_engine(&cluster, &model)),
            Box::new(
                SeesawEngine::new(
                    Arc::clone(&cluster),
                    Arc::clone(&model),
                    SeesawSpec::new(ParallelConfig::pp(4), ParallelConfig::tp(4)),
                )
                .expect("valid spec"),
            ),
            Box::new(DisaggEngine::new(Arc::clone(&cluster), Arc::clone(&model))),
        ]
    };
    let reqs = online_reqs(24, 4.0, 7);
    for policy in RouterPolicy::all_default() {
        let serial = Fleet::new(build()).run_with(&SweepRunner::serial(), policy, &reqs);
        let parallel = Fleet::new(build()).run_with(&SweepRunner::new(4), policy, &reqs);
        assert_eq!(serial, parallel, "{policy} diverged across job counts");
        assert_eq!(serial.stats.requests, 24, "{policy} lost requests");
        // Three distinct backends, one merged timeline.
        assert_eq!(serial.replicas.len(), 3);
        assert_eq!(serial.timeline.len(), 24);
    }
}

/// Under heavy overload, spreading the same offered load over four
/// replicas must not degrade SLO attainment versus one replica — and
/// the overloaded single replica must be strictly worse than its
/// quarter-load per-replica counterpart.
#[test]
fn scale_out_relieves_overload() {
    let (cluster, model) = specs();
    // ~4 rps offered against a single replica whose capacity is ~1.5
    // rps on this workload: deep overload for N=1, comfortable for
    // N=4.
    let reqs = online_reqs(48, 4.0, 11);
    let slo = seesaw_workload::SloSpec { ttft_s: 15.0, tpot_s: 0.05 };
    let run = |n: usize| {
        let fleet = Fleet::homogeneous(n, |_| Box::new(vllm_engine(&cluster, &model)) as _);
        let r = fleet.run_with(&SweepRunner::serial(), RouterPolicy::JoinShortestQueue, &reqs);
        (r.slo_attainment(slo), r)
    };
    let (att1, _) = run(1);
    let (att4, rep4) = run(4);
    assert!(
        att4 > att1 + 0.2,
        "4 replicas must relieve overload: attainment {att1:.2} -> {att4:.2}"
    );
    // JSQ under load uses every replica.
    let imb = rep4.imbalance();
    assert!(imb.min_requests > 0, "an idle replica under overload means routing is broken");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// For any arrival trace and any policy, the router's assignment
    /// splits into per-replica streams that stay arrival-sorted —
    /// the engines' `assert_arrivals_sorted` can never fire on a
    /// router-produced stream.
    #[test]
    fn router_split_streams_are_always_arrival_sorted(
        n in 1usize..120,
        n_replicas in 1usize..8,
        seed in 0u64..500,
        rate in 0.2f64..30.0,
        cv in 0.2f64..3.0,
        policy_idx in 0usize..4,
        po2_seed in 0u64..100,
    ) {
        let base: Vec<Request> = (0..n).map(|i| Request::new(i as u64, 64, 8)).collect();
        let reqs = ArrivalDist::Gamma { rate, cv }.attach(&base, seed).expect("valid");
        let policy = match policy_idx {
            0 => RouterPolicy::RoundRobin,
            1 => RouterPolicy::JoinShortestQueue,
            2 => RouterPolicy::PowerOfTwoChoices { seed: po2_seed },
            _ => RouterPolicy::LeastEstimatedWork,
        };
        let assignment = router::assign(policy, n_replicas, &reqs, |_, r| {
            0.01 + r.input_len as f64 / 1000.0
        });
        prop_assert_eq!(assignment.len(), n);
        let streams = split_stream(&reqs, &assignment, n_replicas);
        for s in &streams {
            prop_assert!(s.windows(2).all(|w| w[0].arrival_s <= w[1].arrival_s));
            // The engine guard itself must accept the stream.
            seesaw_engine::driver::assert_arrivals_sorted(s);
        }
    }
}
