//! Fleet-level run reports: merged latency statistics plus
//! per-replica load-imbalance accounting.

use crate::router::RouterPolicy;
use seesaw_engine::EngineReport;
use seesaw_workload::{merge_timelines, LatencyStats, RequestTiming, RunStats, SloSpec};
use serde::{Deserialize, Serialize};

/// How evenly the router spread the stream over the replicas.
///
/// Request counts measure *decision* balance; total tokens
/// (input + output) measure *work* balance — a router can equalize
/// counts while piling the long prompts onto one replica, which is
/// exactly what `cv_tokens > cv_requests` reveals.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LoadImbalance {
    /// Fewest requests any replica received.
    pub min_requests: usize,
    /// Most requests any replica received.
    pub max_requests: usize,
    /// Mean requests per replica.
    pub mean_requests: f64,
    /// Coefficient of variation of per-replica request counts
    /// (0.0 = perfectly even).
    pub cv_requests: f64,
    /// Coefficient of variation of per-replica total tokens.
    pub cv_tokens: f64,
    /// Slowest replica's makespan over the mean replica makespan
    /// (≥ 1.0; the fleet finishes when its slowest replica does).
    pub makespan_skew: f64,
}

/// Outcome of one fleet run: every replica's own [`EngineReport`]
/// plus the merged fleet-level view.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetReport {
    /// Routing policy that produced the assignment.
    pub policy: RouterPolicy,
    /// Per-replica reports, in replica order (replica i's label is
    /// `replicas[i].label`).
    pub replicas: Vec<EngineReport>,
    /// Replica index each request was routed to, in stream order.
    pub assignment: Vec<usize>,
    /// Merged per-request timeline, id-sorted (same convention as a
    /// single engine's report).
    pub timeline: Vec<RequestTiming>,
    /// Latency percentiles over the merged timeline (`None` when no
    /// requests ran).
    pub latency: Option<LatencyStats>,
    /// Aggregate counts; `duration_s` is the fleet makespan (slowest
    /// replica).
    pub stats: RunStats,
}

impl FleetReport {
    /// Assemble the fleet view from per-replica reports.
    pub fn from_replica_reports(
        policy: RouterPolicy,
        replicas: Vec<EngineReport>,
        assignment: Vec<usize>,
    ) -> Self {
        assert!(!replicas.is_empty(), "a fleet report needs replicas");
        let timeline = merge_timelines(replicas.iter().map(|r| r.timeline.as_slice()));
        let latency = LatencyStats::from_timeline(&timeline);
        let stats = RunStats {
            requests: replicas.iter().map(|r| r.stats.requests).sum(),
            input_tokens: replicas.iter().map(|r| r.stats.input_tokens).sum(),
            output_tokens: replicas.iter().map(|r| r.stats.output_tokens).sum(),
            duration_s: replicas
                .iter()
                .map(|r| r.stats.duration_s)
                .fold(0.0, f64::max),
        };
        FleetReport {
            policy,
            replicas,
            assignment,
            timeline,
            latency,
            stats,
        }
    }

    /// Number of replicas.
    pub fn n_replicas(&self) -> usize {
        self.replicas.len()
    }

    /// Fleet end-to-end throughput, requests/second over the makespan.
    pub fn throughput_rps(&self) -> f64 {
        self.stats.throughput_rps()
    }

    /// Fraction of the merged timeline meeting `slo`.
    pub fn slo_attainment(&self, slo: SloSpec) -> f64 {
        slo.attainment(&self.timeline)
    }

    /// SLO-meeting requests per second over the fleet makespan.
    pub fn goodput_rps(&self, slo: SloSpec) -> f64 {
        slo.goodput_rps(&self.timeline, self.stats.duration_s)
    }

    /// Per-replica load-imbalance statistics.
    pub fn imbalance(&self) -> LoadImbalance {
        let counts: Vec<f64> = self.replicas.iter().map(|r| r.stats.requests as f64).collect();
        let tokens: Vec<f64> = self
            .replicas
            .iter()
            .map(|r| (r.stats.input_tokens + r.stats.output_tokens) as f64)
            .collect();
        let durations: Vec<f64> = self.replicas.iter().map(|r| r.stats.duration_s).collect();
        let mean_dur = mean(&durations);
        LoadImbalance {
            min_requests: self.replicas.iter().map(|r| r.stats.requests).min().unwrap_or(0),
            max_requests: self.replicas.iter().map(|r| r.stats.requests).max().unwrap_or(0),
            mean_requests: mean(&counts),
            cv_requests: cv(&counts),
            cv_tokens: cv(&tokens),
            makespan_skew: if mean_dur > 0.0 {
                self.stats.duration_s / mean_dur
            } else {
                1.0
            },
        }
    }
}

fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Coefficient of variation (population σ / mean); 0.0 when the mean
/// is zero (an all-empty fleet is "even").
fn cv(xs: &[f64]) -> f64 {
    let m = mean(xs);
    if m <= 0.0 {
        return 0.0;
    }
    let var = xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64;
    var.sqrt() / m
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(requests: usize, tokens: u64, duration_s: f64, ids: &[u64]) -> EngineReport {
        EngineReport {
            label: "x".into(),
            stats: RunStats {
                requests,
                input_tokens: tokens / 2,
                output_tokens: tokens - tokens / 2,
                duration_s,
            },
            prefill_wall_s: 0.0,
            decode_wall_s: 0.0,
            mixed_wall_s: 0.0,
            reshard_wall_s: 0.0,
            transitions: 0,
            swap_out_bytes: 0,
            swap_in_bytes: 0,
            phases: Vec::new(),
            gpu_utilization: 0.5,
            timeline: ids
                .iter()
                .map(|&id| RequestTiming {
                    id,
                    arrival_s: 0.0,
                    first_token_s: 0.5,
                    completion_s: duration_s.max(1.0),
                    output_len: 8,
                    attempts: 1,
                })
                .collect(),
            latency: None,
        }
    }

    #[test]
    fn aggregate_is_sum_and_makespan() {
        let fr = FleetReport::from_replica_reports(
            RouterPolicy::RoundRobin,
            vec![report(2, 100, 4.0, &[0, 2]), report(1, 50, 6.0, &[1])],
            vec![0, 1, 0],
        );
        assert_eq!(fr.stats.requests, 3);
        assert_eq!(fr.stats.input_tokens + fr.stats.output_tokens, 150);
        assert!((fr.stats.duration_s - 6.0).abs() < 1e-12);
        assert!((fr.throughput_rps() - 0.5).abs() < 1e-12);
        assert_eq!(fr.timeline.iter().map(|t| t.id).collect::<Vec<_>>(), vec![0, 1, 2]);
        assert_eq!(fr.latency.unwrap().count, 3);
    }

    #[test]
    fn imbalance_flags_uneven_work() {
        let even = FleetReport::from_replica_reports(
            RouterPolicy::RoundRobin,
            vec![report(2, 100, 4.0, &[0, 2]), report(2, 100, 4.0, &[1, 3])],
            vec![0, 1, 0, 1],
        );
        let imb = even.imbalance();
        assert_eq!(imb.min_requests, 2);
        assert_eq!(imb.max_requests, 2);
        assert!(imb.cv_requests.abs() < 1e-12);
        assert!(imb.cv_tokens.abs() < 1e-12);
        assert!((imb.makespan_skew - 1.0).abs() < 1e-12);

        let skewed = FleetReport::from_replica_reports(
            RouterPolicy::RoundRobin,
            vec![report(3, 300, 8.0, &[0, 1, 2]), report(1, 20, 2.0, &[3])],
            vec![0, 0, 0, 1],
        );
        let imb = skewed.imbalance();
        assert_eq!((imb.min_requests, imb.max_requests), (1, 3));
        assert!(imb.cv_requests > 0.4);
        assert!(imb.cv_tokens > imb.cv_requests, "token skew exceeds count skew");
        assert!(imb.makespan_skew > 1.5);
    }

    #[test]
    fn empty_fleet_latency_is_none() {
        let fr = FleetReport::from_replica_reports(
            RouterPolicy::JoinShortestQueue,
            vec![report(0, 0, 0.0, &[])],
            vec![],
        );
        assert!(fr.latency.is_none());
        assert_eq!(fr.slo_attainment(SloSpec { ttft_s: 1.0, tpot_s: 1.0 }), 0.0);
        assert_eq!(fr.goodput_rps(SloSpec { ttft_s: 1.0, tpot_s: 1.0 }), 0.0);
    }
}
