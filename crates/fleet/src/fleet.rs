//! The fleet itself: N engine replicas served by one router.

use crate::report::FleetReport;
use crate::router::{self, RouterPolicy};
use seesaw_engine::driver::assert_arrivals_sorted;
use seesaw_engine::online::mean_lengths;
use seesaw_engine::{OnlineEngine, ServiceRates, SweepRunner};
use seesaw_workload::{split_stream, Request};

/// N replicas of (possibly heterogeneous) engines behind a router.
///
/// A `Fleet` owns its replicas as [`OnlineEngine`] trait objects, so
/// Seesaw, vLLM, and disaggregated backends mix freely. Running the
/// fleet is a three-step pipeline:
///
/// 1. **Route** — one serial pass over the global arrival-sorted
///    stream assigns every request to a replica (see
///    [`crate::router`]).
/// 2. **Simulate** — per-replica streams (still arrival-sorted; the
///    split preserves order) run through each replica's existing
///    online engine path, concurrently on the given
///    [`SweepRunner`]. Replica simulations share nothing, so this
///    parallelizes exactly like a candidate sweep.
/// 3. **Merge** — per-replica timelines combine into a
///    [`FleetReport`] with fleet-level percentiles and imbalance
///    statistics.
pub struct Fleet {
    pub(crate) replicas: Vec<Box<dyn OnlineEngine>>,
    /// Whether every replica is known-identical (constructed via
    /// [`Fleet::homogeneous`]), letting fleet runs compute one
    /// service-rate estimate instead of N. A label comparison cannot
    /// substitute: labels name the parallel configuration, not the
    /// hardware, so two `"T2P2"` replicas may sit on different GPUs.
    pub(crate) homogeneous: bool,
}

impl Fleet {
    /// A fleet over explicit replicas (at least one), possibly
    /// heterogeneous — each replica's routing cost estimates are
    /// computed from its own engine. Panics on an empty vec; use
    /// [`Fleet::try_new`] to validate instead.
    pub fn new(replicas: Vec<Box<dyn OnlineEngine>>) -> Self {
        Self::try_new(replicas).expect("a fleet needs at least one replica")
    }

    /// [`Fleet::new`], rejecting an empty replica vec with an error
    /// instead of panicking — for callers assembling fleets from
    /// external configuration.
    pub fn try_new(replicas: Vec<Box<dyn OnlineEngine>>) -> Result<Self, String> {
        if replicas.is_empty() {
            return Err(String::from("a fleet needs at least one replica"));
        }
        Ok(Fleet { replicas, homogeneous: false })
    }

    /// A homogeneous fleet: `n` identical replicas built by `make`
    /// (`make` must return equivalently-configured engines — the
    /// fleet computes routing cost estimates once and shares them).
    /// Panics when `n == 0`; use [`Fleet::try_homogeneous`] to
    /// validate instead.
    pub fn homogeneous(n: usize, make: impl Fn(usize) -> Box<dyn OnlineEngine>) -> Self {
        Self::try_homogeneous(n, make).expect("a fleet needs at least one replica")
    }

    /// [`Fleet::homogeneous`], rejecting `n == 0` with an error
    /// instead of panicking.
    pub fn try_homogeneous(
        n: usize,
        make: impl Fn(usize) -> Box<dyn OnlineEngine>,
    ) -> Result<Self, String> {
        if n == 0 {
            return Err(String::from("a fleet needs at least one replica"));
        }
        Ok(Fleet {
            replicas: (0..n).map(make).collect(),
            homogeneous: true,
        })
    }

    /// Number of replicas.
    pub fn len(&self) -> usize {
        self.replicas.len()
    }

    /// Whether the fleet has no replicas (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.replicas.is_empty()
    }

    /// Replica configuration labels, in replica order.
    pub fn labels(&self) -> Vec<String> {
        self.replicas.iter().map(|r| r.label()).collect()
    }

    /// Serve `requests` (sorted by arrival) under `policy`, with
    /// replica simulations parallelized by the environment's runner.
    pub fn run(&self, policy: RouterPolicy, requests: &[Request]) -> FleetReport {
        self.run_with(&SweepRunner::from_env(), policy, requests)
    }

    /// [`Fleet::run`] on an explicit runner. Deterministic and
    /// runner-invariant: routing is serial, replica runs are
    /// independent, and reports are collected in replica order.
    ///
    /// Dispatches on the policy: feedback-free (estimated-queue)
    /// policies take this merged-timeline fast path — route the whole
    /// stream serially, then simulate replicas independently — while
    /// live policies ([`RouterPolicy::needs_live_state`]) run on the
    /// global event loop ([`Fleet::run_event_loop_with`]), which
    /// observes measured replica state at every arrival. The two
    /// paths produce byte-identical reports for feedback-free
    /// policies (enforced by tests), so the dispatch is purely a
    /// performance choice.
    pub fn run_with(
        &self,
        runner: &SweepRunner,
        policy: RouterPolicy,
        requests: &[Request],
    ) -> FleetReport {
        if policy.needs_live_state() {
            return self.run_event_loop_with(runner, policy, requests);
        }
        self.run_fast_path(runner, policy, requests)
    }

    /// [`Fleet::run_with`] under a telemetry [`Instrument`]. When
    /// recording is on, every policy runs on the global event loop so
    /// the route-decision instants carry the state each decision saw
    /// (for feedback-free policies the loop reproduces the fast path
    /// byte-for-byte, so only wall-time differs); with
    /// [`seesaw_telemetry::Instrument::off()`] this dispatches
    /// exactly like `run_with`.
    pub fn run_instrumented_with(
        &self,
        runner: &SweepRunner,
        policy: RouterPolicy,
        requests: &[Request],
        instr: &mut seesaw_telemetry::Instrument,
    ) -> FleetReport {
        if policy.needs_live_state() || instr.telemetry_on() {
            return self.run_event_loop_instrumented_with(runner, policy, requests, instr);
        }
        self.run_fast_path(runner, policy, requests)
    }

    fn run_fast_path(
        &self,
        runner: &SweepRunner,
        policy: RouterPolicy,
        requests: &[Request],
    ) -> FleetReport {
        assert_arrivals_sorted(requests);
        let n = self.replicas.len();
        let rates = self.routing_rates(policy, requests);
        // `rates` is empty for round-robin (the router never asks it
        // for estimates); the `get` keeps the closure total rather
        // than resting an index on that other-crate invariant.
        let assignment = router::assign(policy, n, requests, |replica, req| {
            rates.get(replica).map_or(1.0, |r| r.est_service_s(req))
        });
        let streams = split_stream(requests, &assignment, n);
        let indices: Vec<usize> = (0..n).collect();
        let reports = runner.map(&indices, |&i| self.replicas[i].run(&streams[i]));
        FleetReport::from_replica_reports(policy, reports, assignment)
    }

    /// Serve `requests` under `policy` with engine span recording on
    /// ([`OnlineEngine::run_traced`]), returning the fleet report plus
    /// each replica's per-category busy-time summary (replica order) —
    /// the `fleet --breakdown` path. Routing is identical to
    /// [`Fleet::run_with`]; only the final simulations record spans,
    /// so the report matches the untraced run byte-for-byte. Engines
    /// without a traced path contribute all-zero summaries.
    pub fn run_breakdown_with(
        &self,
        runner: &SweepRunner,
        policy: RouterPolicy,
        requests: &[Request],
    ) -> (FleetReport, Vec<seesaw_sim::TraceSummary>) {
        let n = self.replicas.len();
        let assignment = if policy.needs_live_state() {
            // Live routing needs the causal replay loop; reuse it and
            // keep only the assignment (the traced re-runs below
            // reproduce the same per-replica reports).
            self.run_event_loop_with(runner, policy, requests).assignment
        } else {
            assert_arrivals_sorted(requests);
            let rates = self.routing_rates(policy, requests);
            router::assign(policy, n, requests, |replica, req| {
                rates.get(replica).map_or(1.0, |r| r.est_service_s(req))
            })
        };
        let streams = split_stream(requests, &assignment, n);
        let indices: Vec<usize> = (0..n).collect();
        let traced = runner.map(&indices, |&i| self.replicas[i].run_traced(&streams[i]));
        let (reports, summaries): (Vec<_>, Vec<_>) = traced.into_iter().unzip();
        (
            FleetReport::from_replica_reports(policy, reports, assignment),
            summaries,
        )
    }

    /// Per-replica analytic service rates for routing under `policy`.
    /// Round-robin is load-oblivious — no service estimates needed,
    /// so the vec is empty. A known-homogeneous fleet computes one
    /// analytic rate and shares it (rates can be expensive: disagg
    /// re-runs its split search per call); heterogeneous fleets
    /// estimate per replica. Shared by the fast path and the event
    /// loop so both routes see identical estimates.
    pub(crate) fn routing_rates(
        &self,
        policy: RouterPolicy,
        requests: &[Request],
    ) -> Vec<ServiceRates> {
        let n = self.replicas.len();
        let (avg_in, avg_out) = mean_lengths(requests);
        if policy == RouterPolicy::RoundRobin {
            Vec::new()
        } else if self.homogeneous {
            vec![self.replicas[0].service_rates(avg_in, avg_out); n]
        } else {
            self.replicas
                .iter()
                .map(|r| r.service_rates(avg_in, avg_out))
                .collect()
        }
    }
}

impl std::fmt::Debug for Fleet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Fleet").field("replicas", &self.labels()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seesaw_engine::vllm::VllmEngine;
    use seesaw_engine::SchedulingPolicy;
    use seesaw_hw::ClusterSpec;
    use seesaw_model::{presets, ModelConfig};
    use seesaw_parallel::ParallelConfig;
    use seesaw_workload::{ArrivalDist, WorkloadGen};
    use std::sync::Arc;

    fn vllm_replica(
        cluster: &Arc<ClusterSpec>,
        model: &Arc<ModelConfig>,
    ) -> Box<dyn OnlineEngine> {
        Box::new(
            VllmEngine::new(
                Arc::clone(cluster),
                Arc::clone(model),
                ParallelConfig::new(1, 2, 2),
                SchedulingPolicy::PrefillPrioritized,
            )
            .expect("valid config"),
        )
    }

    fn small_fleet(n: usize) -> Fleet {
        let cluster = Arc::new(ClusterSpec::a10x4());
        let model = Arc::new(presets::llama2_13b());
        Fleet::homogeneous(n, |_| vllm_replica(&cluster, &model))
    }

    fn online_reqs(n: usize, rate: f64) -> Vec<Request> {
        let base = WorkloadGen::constant(512, 24).generate(n);
        ArrivalDist::Poisson { rate }
            .attach(&base, 7)
            .expect("valid arrivals")
    }

    #[test]
    fn every_request_served_exactly_once() {
        let fleet = small_fleet(3);
        let reqs = online_reqs(30, 5.0);
        let report = fleet.run_with(&SweepRunner::serial(), RouterPolicy::JoinShortestQueue, &reqs);
        assert_eq!(report.stats.requests, 30);
        assert_eq!(report.timeline.len(), 30);
        let mut ids: Vec<u64> = report.timeline.iter().map(|t| t.id).collect();
        ids.dedup();
        assert_eq!(ids.len(), 30, "every id exactly once");
        assert_eq!(report.assignment.len(), 30);
    }

    #[test]
    fn fleet_run_is_runner_invariant() {
        let fleet = small_fleet(4);
        let reqs = online_reqs(24, 8.0);
        for policy in RouterPolicy::all_default() {
            let serial = fleet.run_with(&SweepRunner::serial(), policy, &reqs);
            let parallel = fleet.run_with(&SweepRunner::new(4), policy, &reqs);
            assert_eq!(serial, parallel, "{policy}");
        }
    }

    #[test]
    fn off_instrument_reproduces_run_with_exactly() {
        let fleet = small_fleet(3);
        let reqs = online_reqs(18, 6.0);
        for policy in RouterPolicy::all_with_live() {
            let plain = fleet.run_with(&SweepRunner::serial(), policy, &reqs);
            let mut off = seesaw_telemetry::Instrument::off();
            let instrumented =
                fleet.run_instrumented_with(&SweepRunner::serial(), policy, &reqs, &mut off);
            assert_eq!(plain, instrumented, "{policy}: disabled telemetry is invisible");
            assert!(off.recorder.spans().is_empty());
            assert!(off.metrics.is_empty());
        }
    }

    #[test]
    fn instrumented_run_records_and_stays_jobs_invariant() {
        let fleet = small_fleet(3);
        let reqs = online_reqs(18, 6.0);
        for policy in [RouterPolicy::JoinShortestQueue, RouterPolicy::JoinShortestQueueLive] {
            let run = |runner: &SweepRunner| {
                let mut instr = seesaw_telemetry::Instrument::tracing();
                let report = fleet.run_instrumented_with(runner, policy, &reqs, &mut instr);
                (report, seesaw_telemetry::perfetto::render(&instr.recorder, "fleet"),
                 instr.metrics.render_json())
            };
            let (r1, t1, m1) = run(&SweepRunner::serial());
            let (r4, t4, m4) = run(&SweepRunner::new(4));
            assert_eq!(r1, r4, "{policy}");
            assert_eq!(t1, t4, "{policy}: trace bytes are jobs-invariant");
            assert_eq!(m1, m4, "{policy}: metric bytes are jobs-invariant");
            assert!(t1.contains("\"ph\":\"X\""), "{policy}: request spans present");
            assert!(t1.contains("route "), "{policy}: route instants present");
            // The report itself matches the uninstrumented run: for
            // live policies trivially, for estimated ones because the
            // event loop reproduces the fast path byte-for-byte.
            assert_eq!(r1, fleet.run_with(&SweepRunner::serial(), policy, &reqs), "{policy}");
        }
    }

    #[test]
    fn breakdown_matches_untraced_report_and_fills_buckets() {
        let fleet = small_fleet(2);
        let reqs = online_reqs(12, 5.0);
        for policy in [RouterPolicy::JoinShortestQueue, RouterPolicy::JoinShortestQueueLive] {
            let plain = fleet.run_with(&SweepRunner::serial(), policy, &reqs);
            let (report, summaries) =
                fleet.run_breakdown_with(&SweepRunner::serial(), policy, &reqs);
            assert_eq!(plain, report, "{policy}: tracing only observes");
            assert_eq!(summaries.len(), 2);
            assert!(
                summaries.iter().all(|s| s.compute > 0.0),
                "{policy}: every replica ran traced compute"
            );
        }
    }

    #[test]
    fn empty_stream_yields_empty_report() {
        let fleet = small_fleet(2);
        let report = fleet.run_with(&SweepRunner::serial(), RouterPolicy::RoundRobin, &[]);
        assert_eq!(report.stats.requests, 0);
        assert!(report.latency.is_none());
    }

    #[test]
    fn empty_fleet_rejected_up_front() {
        assert!(Fleet::try_new(Vec::new()).is_err());
        assert!(Fleet::try_homogeneous(0, |_| unreachable!("never built")).is_err());
        let cluster = Arc::new(ClusterSpec::a10x4());
        let model = Arc::new(presets::llama2_13b());
        assert_eq!(
            Fleet::try_new(vec![vllm_replica(&cluster, &model)])
                .expect("one replica is a fleet")
                .len(),
            1
        );
        assert_eq!(
            Fleet::try_homogeneous(2, |_| vllm_replica(&cluster, &model))
                .expect("two replicas are a fleet")
                .len(),
            2
        );
    }

    #[test]
    #[should_panic(expected = "at least one replica")]
    fn empty_fleet_panics_with_message() {
        Fleet::new(Vec::new());
    }

    #[test]
    #[should_panic(expected = "at least one replica")]
    fn zero_homogeneous_panics_with_message() {
        Fleet::homogeneous(0, |_| unreachable!("never built"));
    }
}
