//! Request routing policies over N replicas.
//!
//! The router sees the global request stream in arrival order and
//! assigns each request to a replica *at its arrival instant*, using
//! only information available then: per-replica bookkeeping of what
//! has been dispatched, and analytic service-time estimates
//! ([`seesaw_engine::ServiceRates`]) — never the simulated outcome,
//! which does not exist yet (replicas simulate after routing). Each
//! replica is modeled as a virtual FIFO server: a routed request
//! occupies it for its estimated service time, and requests whose
//! estimated completion has passed are drained before each decision.
//! This is exactly the state a production load balancer tracks
//! (outstanding requests / estimated backlog per backend).
//!
//! All policies are deterministic: [`RouterPolicy::PowerOfTwoChoices`]
//! carries its own RNG seed, and queue-state ties break by a
//! deterministic round-robin rotor (never "always replica 0", which
//! would pile every request onto one replica whenever the estimated
//! queues drain between arrivals — light load must degenerate to
//! round-robin, not to a hot spot).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use seesaw_workload::Request;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// How the fleet router picks a replica for each arriving request.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum RouterPolicy {
    /// Request `i` goes to replica `i mod N` — load-oblivious, the
    /// baseline every balancer is measured against.
    RoundRobin,
    /// Fewest outstanding (dispatched, not yet estimated-complete)
    /// requests wins.
    JoinShortestQueue,
    /// Sample two distinct replicas with the seeded RNG and keep the
    /// one with fewer outstanding requests — the classic
    /// "power of two choices" balancer (near-JSQ balance at O(1)
    /// inspection cost).
    PowerOfTwoChoices {
        /// RNG seed: same seed, same choices.
        seed: u64,
    },
    /// Least estimated outstanding *work* (sum of roofline-estimated
    /// service seconds still in flight) wins — JSQ weighted by
    /// request size, so one huge prompt counts for more than several
    /// small ones. The only estimated policy that uses the cost model
    /// beyond queue expiry.
    LeastEstimatedWork,
    /// JSQ over *measured* replica state: fewest actually-unfinished
    /// requests at the arrival instant, observed from each replica's
    /// exact engine replay (see `seesaw_engine::stepper`). Requires
    /// the global event loop — there is no estimated fast path.
    JoinShortestQueueLive,
    /// Least *measured* remaining work: the replica whose in-flight
    /// requests have the least summed remaining wall-clock seconds at
    /// the arrival instant. Requires the global event loop.
    LeastWorkLive,
}

impl std::fmt::Display for RouterPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RouterPolicy::RoundRobin => write!(f, "round-robin"),
            RouterPolicy::JoinShortestQueue => write!(f, "jsq"),
            RouterPolicy::PowerOfTwoChoices { .. } => write!(f, "po2"),
            RouterPolicy::LeastEstimatedWork => write!(f, "least-work"),
            RouterPolicy::JoinShortestQueueLive => write!(f, "jsq-live"),
            RouterPolicy::LeastWorkLive => write!(f, "least-work-live"),
        }
    }
}

impl RouterPolicy {
    /// The four estimated-queue policies at their defaults (po2
    /// seeded with 0), in comparison-table order.
    pub fn all_default() -> Vec<RouterPolicy> {
        vec![
            RouterPolicy::RoundRobin,
            RouterPolicy::JoinShortestQueue,
            RouterPolicy::PowerOfTwoChoices { seed: 0 },
            RouterPolicy::LeastEstimatedWork,
        ]
    }

    /// The live-feedback policies, in comparison-table order.
    pub fn all_live() -> Vec<RouterPolicy> {
        vec![RouterPolicy::JoinShortestQueueLive, RouterPolicy::LeastWorkLive]
    }

    /// Every policy — the estimated four followed by the live two —
    /// for head-to-head comparison tables.
    pub fn all_with_live() -> Vec<RouterPolicy> {
        let mut all = Self::all_default();
        all.extend(Self::all_live());
        all
    }

    /// Whether decisions under this policy read *measured* replica
    /// state (live queue depth / remaining work) rather than the
    /// router's virtual-queue estimates. Live policies must run on
    /// the global event loop; feedback-free ones take the
    /// merged-timeline fast path.
    pub fn needs_live_state(&self) -> bool {
        matches!(
            self,
            RouterPolicy::JoinShortestQueueLive | RouterPolicy::LeastWorkLive
        )
    }
}

/// Typed routing failure: every replica was ineligible (dark) at the
/// arrival instant — mid-outage in a fault-injecting run. Callers
/// buffer the arrival until a replica is accepting (or count it lost
/// when none ever will be); a panic here would kill whole chaos
/// sweeps on their most interesting points.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NoAcceptingReplica {
    /// Arrival time (seconds) at which routing found no accepting
    /// replica.
    pub at_s: f64,
}

impl std::fmt::Display for NoAcceptingReplica {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "no accepting replica at t={:.6}s", self.at_s)
    }
}

impl std::error::Error for NoAcceptingReplica {}

/// One replica's virtual FIFO server: requests in estimated flight.
#[derive(Debug, Default, Clone)]
struct VirtualQueue {
    /// `(estimated completion, estimated service)` per in-flight
    /// request, in dispatch order (FIFO server ⇒ completion order).
    inflight: VecDeque<(f64, f64)>,
    /// When the virtual server frees up.
    busy_until: f64,
    /// Sum of estimated service seconds still in flight.
    work: f64,
}

impl VirtualQueue {
    /// Drain requests whose estimated completion has passed `now`.
    fn advance_to(&mut self, now: f64) {
        while let Some(&(done, service)) = self.inflight.front() {
            if done > now {
                break;
            }
            self.inflight.pop_front();
            self.work = (self.work - service).max(0.0);
        }
        // Snap a drained queue to exactly 0.0: the running sum leaves
        // ~1e-17 residues (`(a+b)-a-b != 0` in f64), and the
        // round-robin tie-break compares keys *exactly* — a residue
        // would permanently exclude this replica from "empty" ties,
        // hot-spotting the residue-free ones at light load.
        if self.inflight.is_empty() {
            self.work = 0.0;
        }
    }

    /// Dispatch a request of estimated service `est` arriving at
    /// `now`; returns the estimated start time (`now` on an idle
    /// server, the end of the backlog otherwise).
    fn push(&mut self, now: f64, est: f64) -> f64 {
        let start = now.max(self.busy_until);
        let done = start + est;
        self.busy_until = done;
        self.work += est;
        self.inflight.push_back((done, est));
        start
    }
}

/// One routing decision from [`Router::route_among`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Routed {
    /// The chosen replica.
    pub replica: usize,
    /// Estimated queueing delay before service starts on that
    /// replica's virtual server (0.0 when it is idle). Note this is
    /// in raw roofline-estimate units; the autoscale controller's
    /// attainment signal instead comes from its capacity-calibrated
    /// fluid backlog, so this field is informational.
    pub est_wait_s: f64,
}

/// Streaming router: feed it the arrival-sorted request stream and it
/// yields a replica index per request.
#[derive(Debug)]
pub struct Router {
    policy: RouterPolicy,
    queues: Vec<VirtualQueue>,
    /// Round-robin cursor: the next replica for `RoundRobin`, and the
    /// tie-break rotor for the queue-state policies.
    rr_next: usize,
    rng: Option<StdRng>,
}

impl Router {
    /// Router over `n_replicas` under `policy`.
    pub fn new(policy: RouterPolicy, n_replicas: usize) -> Self {
        assert!(n_replicas > 0, "a fleet needs at least one replica");
        let rng = match policy {
            RouterPolicy::PowerOfTwoChoices { seed } => Some(StdRng::seed_from_u64(seed)),
            _ => None,
        };
        Router {
            policy,
            queues: vec![VirtualQueue::default(); n_replicas],
            rr_next: 0,
            rng,
        }
    }

    /// Number of replicas routed over.
    pub fn n_replicas(&self) -> usize {
        self.queues.len()
    }

    /// Route one request (arrivals must be fed in nondecreasing
    /// order). `est_service` maps `(replica, request)` to the
    /// roofline-estimated service seconds on that replica — evaluated
    /// once, for the chosen replica (heterogeneous fleets have
    /// per-replica rates).
    pub fn route(&mut self, req: &Request, est_service: impl Fn(usize, &Request) -> f64) -> usize {
        let now = req.arrival_s;
        let n = self.queues.len();
        // Round-robin never consults queue state or service
        // estimates — skip the bookkeeping entirely (`est_service` is
        // not called, so load-oblivious fleets need no rates at all).
        if self.policy == RouterPolicy::RoundRobin {
            let r = self.rr_next;
            self.rr_next = (self.rr_next + 1) % n;
            return r;
        }
        for q in &mut self.queues {
            q.advance_to(now);
        }
        let chosen = match self.policy {
            RouterPolicy::RoundRobin => unreachable!("handled above"),
            RouterPolicy::JoinShortestQueue => self.argmin_by(|q| q.inflight.len() as f64),
            RouterPolicy::PowerOfTwoChoices { .. } => {
                if n == 1 {
                    0
                } else {
                    let rng = self.rng.as_mut().expect("po2 router has an RNG");
                    let a = rng.gen_range(0..n);
                    let mut b = rng.gen_range(0..n - 1);
                    if b >= a {
                        b += 1;
                    }
                    // The first sample wins ties — it is already
                    // uniform, so tied (e.g. drained) queues spread
                    // instead of hot-spotting a fixed index.
                    if self.queues[b].inflight.len() < self.queues[a].inflight.len() {
                        b
                    } else {
                        a
                    }
                }
            }
            RouterPolicy::LeastEstimatedWork => self.argmin_by(|q| q.work),
            RouterPolicy::JoinShortestQueueLive | RouterPolicy::LeastWorkLive => {
                panic!(
                    "{} reads measured replica state; route via the global \
                     event loop (route_live_among), not the estimated path",
                    self.policy
                )
            }
        };
        let est = est_service(chosen, req);
        assert!(
            est.is_finite() && est > 0.0,
            "service estimate must be positive and finite, got {est}"
        );
        self.queues[chosen].push(now, est);
        chosen
    }

    /// Add a replica (an empty virtual queue), returning its index.
    /// Elastic fleets call this when the autoscaling controller
    /// spawns a replica mid-stream: the router is *resumable* — its
    /// queue state and tie rotor persist across the scale event.
    pub fn add_replica(&mut self) -> usize {
        self.queues.push(VirtualQueue::default());
        self.queues.len() - 1
    }

    /// [`Router::route`] restricted to the `eligible` replicas
    /// (sorted, non-empty, in range) — the ones currently accepting
    /// traffic in an elastic fleet (warm, not retiring). With every
    /// replica eligible the decision is identical to [`Router::route`]
    /// (same RNG draws, same rotor walk), so a Static autoscaling run
    /// reproduces a fixed [`crate::Fleet`] byte-for-byte.
    ///
    /// Unlike `route`, bookkeeping runs for *every* policy (including
    /// round-robin, whose assignment ignores it) so the controller's
    /// queue-depth/wait signals exist regardless of policy; `route`
    /// keeps its bookkeeping-free round-robin fast path, which cannot
    /// diverge because round-robin decisions never read queue state.
    ///
    /// An empty `eligible` set — every replica dark mid-outage — is a
    /// typed [`NoAcceptingReplica`] error, not a panic: the caller
    /// decides whether to buffer, requeue, or fail the arrival.
    pub fn route_among(
        &mut self,
        req: &Request,
        eligible: &[usize],
        est_service: impl Fn(usize, &Request) -> f64,
    ) -> Result<Routed, NoAcceptingReplica> {
        let n = self.queues.len();
        if eligible.is_empty() {
            return Err(NoAcceptingReplica { at_s: req.arrival_s });
        }
        debug_assert!(
            eligible.windows(2).all(|w| w[0] < w[1]) && *eligible.last().unwrap() < n,
            "eligible set must be sorted, unique, and in range"
        );
        let now = req.arrival_s;
        for q in &mut self.queues {
            q.advance_to(now);
        }
        let chosen = match self.policy {
            RouterPolicy::RoundRobin => {
                let r = (0..n)
                    .map(|off| (self.rr_next + off) % n)
                    .find(|i| eligible.binary_search(i).is_ok())
                    .expect("eligible is non-empty");
                self.rr_next = (r + 1) % n;
                r
            }
            RouterPolicy::JoinShortestQueue => {
                self.argmin_among(eligible, |q| q.inflight.len() as f64)
            }
            RouterPolicy::PowerOfTwoChoices { .. } => {
                let k = eligible.len();
                if k == 1 {
                    eligible[0]
                } else {
                    let rng = self.rng.as_mut().expect("po2 router has an RNG");
                    // Sample positions in the eligible list with the
                    // same draw pattern `route` uses over all
                    // replicas, so full eligibility replays the same
                    // stream.
                    let a = rng.gen_range(0..k);
                    let mut b = rng.gen_range(0..k - 1);
                    if b >= a {
                        b += 1;
                    }
                    let (a, b) = (eligible[a], eligible[b]);
                    if self.queues[b].inflight.len() < self.queues[a].inflight.len() {
                        b
                    } else {
                        a
                    }
                }
            }
            RouterPolicy::LeastEstimatedWork => self.argmin_among(eligible, |q| q.work),
            RouterPolicy::JoinShortestQueueLive | RouterPolicy::LeastWorkLive => {
                panic!(
                    "{} reads measured replica state; route via \
                     route_live_among, not the estimated path",
                    self.policy
                )
            }
        };
        let est = est_service(chosen, req);
        assert!(
            est.is_finite() && est > 0.0,
            "service estimate must be positive and finite, got {est}"
        );
        let start = self.queues[chosen].push(now, est);
        Ok(Routed { replica: chosen, est_wait_s: start - now })
    }

    /// Route one request from *measured* replica state: `live[k]` is
    /// the `(unfinished request count, remaining work seconds)` of
    /// replica `eligible[k]` at the arrival instant, observed from
    /// the engines' exact replays by the global event loop.
    ///
    /// Live policies take the argmin of their measured key with the
    /// same round-robin tie rotor the estimated policies use;
    /// estimated policies (including round-robin and po2) ignore
    /// `live` and decide exactly as [`Router::route_among`] — so an
    /// event loop can call this uniformly and feedback-free policies
    /// still replay their merged-timeline decisions bit-for-bit.
    /// Virtual-queue bookkeeping runs for every policy, keeping
    /// `queue_state` meaningful regardless.
    pub fn route_live_among(
        &mut self,
        req: &Request,
        eligible: &[usize],
        live: &[(usize, f64)],
        est_service: impl Fn(usize, &Request) -> f64,
    ) -> Result<Routed, NoAcceptingReplica> {
        if !self.policy.needs_live_state() {
            return self.route_among(req, eligible, est_service);
        }
        if eligible.is_empty() {
            return Err(NoAcceptingReplica { at_s: req.arrival_s });
        }
        assert_eq!(
            live.len(),
            eligible.len(),
            "live state must be supplied per eligible replica"
        );
        debug_assert!(
            eligible.windows(2).all(|w| w[0] < w[1])
                && *eligible.last().unwrap() < self.queues.len(),
            "eligible set must be sorted, unique, and in range"
        );
        let now = req.arrival_s;
        for q in &mut self.queues {
            q.advance_to(now);
        }
        let keys: Vec<f64> = match self.policy {
            RouterPolicy::JoinShortestQueueLive => {
                live.iter().map(|&(depth, _)| depth as f64).collect()
            }
            RouterPolicy::LeastWorkLive => live.iter().map(|&(_, work)| work).collect(),
            _ => unreachable!("estimated policies returned above"),
        };
        let chosen = self.argmin_live(eligible, &keys);
        let est = est_service(chosen, req);
        assert!(
            est.is_finite() && est > 0.0,
            "service estimate must be positive and finite, got {est}"
        );
        let start = self.queues[chosen].push(now, est);
        Ok(Routed { replica: chosen, est_wait_s: start - now })
    }

    /// Forget replica `idx`'s virtual queue (reset to empty). A
    /// fault-injecting controller calls this when the replica is
    /// killed: its in-flight work is lost, not completed, so the
    /// bookkeeping must not keep counting it — and if the index is
    /// later reused by a replacement spawn, the replacement starts
    /// with a clean queue. The rotor and RNG are untouched, so a run
    /// without kills is bit-identical whether or not this exists.
    pub fn reset_replica(&mut self, idx: usize) {
        self.queues[idx] = VirtualQueue::default();
    }

    /// Advance every virtual queue to `now` and report
    /// `(in-flight requests, estimated outstanding work seconds)` per
    /// replica — the controller's end-of-window backlog snapshot.
    /// Idempotent with later routing: queues drain monotonically, so
    /// observing at `now` never changes a subsequent decision for an
    /// arrival at or after `now`.
    pub fn queue_state(&mut self, now: f64) -> Vec<(usize, f64)> {
        self.queues
            .iter_mut()
            .map(|q| {
                q.advance_to(now);
                (q.inflight.len(), q.work)
            })
            .collect()
    }

    /// [`Router::argmin_by`] restricted to `eligible`: the minimum is
    /// taken over eligible replicas only, and the tie walk skips
    /// ineligible indices — with all replicas eligible both loops
    /// visit the same indices in the same order as `argmin_by`.
    fn argmin_among(&mut self, eligible: &[usize], key: impl Fn(&VirtualQueue) -> f64) -> usize {
        let n = self.queues.len();
        let min = eligible
            .iter()
            .map(|&i| key(&self.queues[i]))
            .fold(f64::INFINITY, f64::min);
        for off in 0..n {
            let i = (self.rr_next + off) % n;
            if eligible.binary_search(&i).is_ok() && key(&self.queues[i]) == min {
                self.rr_next = (i + 1) % n;
                return i;
            }
        }
        unreachable!("some eligible replica attains the minimum")
    }

    /// [`Router::argmin_among`] over externally supplied keys
    /// (`keys[k]` belongs to `eligible[k]`): the live-policy argmin,
    /// sharing the same rotor walk so measured ties rotate exactly
    /// like estimated ones.
    fn argmin_live(&mut self, eligible: &[usize], keys: &[f64]) -> usize {
        let n = self.queues.len();
        let min = keys.iter().copied().fold(f64::INFINITY, f64::min);
        for off in 0..n {
            let i = (self.rr_next + off) % n;
            if let Ok(pos) = eligible.binary_search(&i) {
                if keys[pos] == min {
                    self.rr_next = (i + 1) % n;
                    return i;
                }
            }
        }
        unreachable!("some eligible replica attains the minimum")
    }

    /// Replica minimizing `key`; exact ties resolve round-robin (the
    /// first tied replica at or after the rotor, cyclically), so a
    /// fleet whose estimated queues keep draining — light load —
    /// degenerates to round-robin instead of a fixed-index hot spot.
    fn argmin_by(&mut self, key: impl Fn(&VirtualQueue) -> f64) -> usize {
        let n = self.queues.len();
        let min = self
            .queues
            .iter()
            .map(&key)
            .fold(f64::INFINITY, f64::min);
        for off in 0..n {
            let i = (self.rr_next + off) % n;
            if key(&self.queues[i]) == min {
                self.rr_next = (i + 1) % n;
                return i;
            }
        }
        unreachable!("some replica attains the minimum")
    }
}

/// Route a whole arrival-sorted stream, returning one replica index
/// per request. Estimated policies only — live policies have no
/// whole-stream assignment (each decision needs measured state, so
/// they run on the fleet's global event loop) and panic here.
pub fn assign(
    policy: RouterPolicy,
    n_replicas: usize,
    reqs: &[Request],
    est_service: impl Fn(usize, &Request) -> f64,
) -> Vec<usize> {
    let mut router = Router::new(policy, n_replicas);
    reqs.iter().map(|r| router.route(r, &est_service)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reqs_at(gaps: &[f64]) -> Vec<Request> {
        let mut t = 0.0;
        gaps.iter()
            .enumerate()
            .map(|(i, g)| {
                t += g;
                Request::new(i as u64, 100, 10).with_arrival(t)
            })
            .collect()
    }

    const UNIT_EST: fn(usize, &Request) -> f64 = |_, _| 1.0;

    #[test]
    fn round_robin_cycles() {
        let reqs = reqs_at(&[0.0; 7]);
        let a = assign(RouterPolicy::RoundRobin, 3, &reqs, UNIT_EST);
        assert_eq!(a, vec![0, 1, 2, 0, 1, 2, 0]);
    }

    #[test]
    fn jsq_spreads_a_burst_then_reuses_idle_replicas() {
        // Four simultaneous arrivals over two replicas: 2 + 2.
        let burst = reqs_at(&[0.0, 0.0, 0.0, 0.0]);
        let a = assign(RouterPolicy::JoinShortestQueue, 2, &burst, UNIT_EST);
        assert_eq!(a, vec![0, 1, 0, 1]);
        // With long gaps every queue drains before each arrival:
        // ties round-robin instead of hot-spotting replica 0.
        let sparse = reqs_at(&[10.0, 10.0, 10.0]);
        let a = assign(RouterPolicy::JoinShortestQueue, 2, &sparse, UNIT_EST);
        assert_eq!(a, vec![0, 1, 0]);
    }

    #[test]
    fn least_work_accounts_request_size() {
        // Two arrivals at t=0: the second sees replica 0 holding one
        // *big* request and prefers replica 1; a third still sees
        // replica 1's small backlog as lighter than 0's big one.
        let reqs = reqs_at(&[0.0, 0.0, 0.0]);
        let sized = |_: usize, r: &Request| if r.id == 0 { 100.0 } else { 1.0 };
        let a = assign(RouterPolicy::LeastEstimatedWork, 2, &reqs, sized);
        assert_eq!(a, vec![0, 1, 1]);
        // JSQ, blind to size, would alternate.
        let b = assign(RouterPolicy::JoinShortestQueue, 2, &reqs, sized);
        assert_eq!(b, vec![0, 1, 0]);
    }

    /// Summing then subtracting estimated work leaves ~1e-17 f64
    /// residues; a drained queue must compare exactly equal to a
    /// never-used one or least-work would permanently shun it.
    #[test]
    fn least_work_drained_queues_tie_despite_fp_residue() {
        let reqs = vec![
            Request::new(0, 100, 10).with_arrival(0.0),
            Request::new(1, 100, 10).with_arrival(0.0),
            Request::new(2, 100, 10).with_arrival(0.0),
            Request::new(3, 100, 10).with_arrival(10.0),
            Request::new(4, 100, 10).with_arrival(20.0),
        ];
        // 0.1 + 0.3 - 0.1 - 0.3 != 0.0 in f64: queue 0 accumulates
        // exactly that residue across the burst.
        let est = |_: usize, r: &Request| if r.id == 1 || r.id == 2 { 0.3 } else { 0.1 };
        let a = assign(RouterPolicy::LeastEstimatedWork, 2, &reqs, est);
        assert_eq!(&a[..3], &[0, 1, 0], "burst routes by outstanding work");
        assert_ne!(
            a[3], a[4],
            "drained queues must tie and rotate, not hot-spot the residue-free replica"
        );
    }

    #[test]
    fn po2_is_seed_deterministic() {
        let reqs = reqs_at(&[0.2; 40]);
        let p = RouterPolicy::PowerOfTwoChoices { seed: 9 };
        assert_eq!(assign(p, 4, &reqs, UNIT_EST), assign(p, 4, &reqs, UNIT_EST));
        // Uses more than one replica on a long stream.
        let a = assign(p, 4, &reqs, UNIT_EST);
        assert!(a.iter().any(|&r| r != a[0]));
        // Every choice in range.
        assert!(a.iter().all(|&r| r < 4));
    }

    #[test]
    fn po2_single_replica_never_panics() {
        let reqs = reqs_at(&[0.0, 0.0]);
        let a = assign(RouterPolicy::PowerOfTwoChoices { seed: 1 }, 1, &reqs, UNIT_EST);
        assert_eq!(a, vec![0, 0]);
    }

    #[test]
    fn queue_expiry_uses_estimated_completions() {
        // One replica busy for ~2s (est 1.0 each, back to back): at
        // t=3 both completed, so JSQ sees empty queues again.
        let mut router = Router::new(RouterPolicy::JoinShortestQueue, 2);
        let r0 = Request::new(0, 100, 10).with_arrival(0.0);
        let r1 = Request::new(1, 100, 10).with_arrival(0.0);
        let r2 = Request::new(2, 100, 10).with_arrival(3.0);
        assert_eq!(router.route(&r0, UNIT_EST), 0);
        assert_eq!(router.route(&r1, UNIT_EST), 1);
        assert_eq!(router.route(&r2, UNIT_EST), 0, "drained queues tie; rotor returns to 0");
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn bad_estimates_rejected() {
        let reqs = reqs_at(&[0.0]);
        assign(RouterPolicy::JoinShortestQueue, 2, &reqs, |_, _| 0.0);
    }

    /// `route_among` with every replica eligible must replay exactly
    /// the decisions `route` makes — same rotor walk, same RNG
    /// stream — for every policy (the Static-autoscale ==
    /// fixed-Fleet byte-identity rests on this).
    #[test]
    fn route_among_full_eligibility_matches_route() {
        let reqs = reqs_at(&[0.0, 0.0, 0.3, 0.1, 2.0, 0.05, 0.0, 5.0, 0.2, 0.0]);
        let est = |i: usize, r: &Request| 0.3 + 0.1 * i as f64 + 0.01 * (r.id % 3) as f64;
        for policy in RouterPolicy::all_default() {
            let n = 3;
            let all: Vec<usize> = (0..n).collect();
            let mut a = Router::new(policy, n);
            let mut b = Router::new(policy, n);
            for r in &reqs {
                let via_route = a.route(r, est);
                let via_among = b.route_among(r, &all, est).expect("all eligible").replica;
                assert_eq!(via_route, via_among, "{policy} diverged at request {}", r.id);
            }
        }
    }

    /// Eligibility masks keep traffic off warming/retiring replicas,
    /// and a replica added mid-stream joins the rotation with an
    /// empty queue.
    #[test]
    fn masked_routing_and_mid_stream_add() {
        let mut router = Router::new(RouterPolicy::JoinShortestQueue, 2);
        let r0 = Request::new(0, 100, 10).with_arrival(0.0);
        let r1 = Request::new(1, 100, 10).with_arrival(0.1);
        // Only replica 1 is accepting: everything lands there.
        assert_eq!(router.route_among(&r0, &[1], UNIT_EST).expect("eligible").replica, 1);
        assert_eq!(router.route_among(&r1, &[1], UNIT_EST).expect("eligible").replica, 1);
        // A new replica appears with an empty queue; JSQ prefers it.
        let new = router.add_replica();
        assert_eq!(new, 2);
        let r2 = Request::new(2, 100, 10).with_arrival(0.2);
        assert_eq!(router.route_among(&r2, &[1, 2], UNIT_EST).expect("eligible").replica, 2);
        let state = router.queue_state(0.2);
        assert_eq!(state.len(), 3);
        assert_eq!(state[0].0, 0, "masked-out replica received nothing");
        assert_eq!(state[1].0, 2);
        assert_eq!(state[2].0, 1);
    }

    /// The estimated wait reported per decision is the virtual
    /// queueing delay: zero on an idle server, backlog length
    /// otherwise.
    #[test]
    fn est_wait_tracks_backlog() {
        let mut router = Router::new(RouterPolicy::JoinShortestQueue, 1);
        let route_one = |router: &mut Router, id: u64, at: f64| {
            router
                .route_among(&Request::new(id, 1, 1).with_arrival(at), &[0], UNIT_EST)
                .expect("eligible")
        };
        let w0 = route_one(&mut router, 0, 0.0);
        let w1 = route_one(&mut router, 1, 0.0);
        let w2 = route_one(&mut router, 2, 0.5);
        assert_eq!(w0.est_wait_s, 0.0);
        assert!((w1.est_wait_s - 1.0).abs() < 1e-12);
        assert!((w2.est_wait_s - 1.5).abs() < 1e-12, "0.5 into a 2 s backlog");
        // After the backlog drains the wait is zero again.
        let w3 = route_one(&mut router, 3, 10.0);
        assert_eq!(w3.est_wait_s, 0.0);
    }

    /// A killed replica's virtual queue resets to empty: lost work
    /// stops counting against it, and a replacement reusing the index
    /// starts clean.
    #[test]
    fn reset_replica_clears_bookkeeping() {
        let mut router = Router::new(RouterPolicy::LeastEstimatedWork, 2);
        for id in 0..4 {
            router
                .route_among(&Request::new(id, 1, 1).with_arrival(0.0), &[0, 1], UNIT_EST)
                .expect("eligible");
        }
        let before = router.queue_state(0.0);
        assert_eq!(before[0].0, 2);
        router.reset_replica(0);
        let after = router.queue_state(0.0);
        assert_eq!(after[0], (0, 0.0), "reset queue is empty");
        assert_eq!(after[1].0, 2, "other replicas keep their state");
        // The cleared replica now wins least-work against the loaded one.
        let routed = router
            .route_among(&Request::new(9, 1, 1).with_arrival(0.0), &[0, 1], UNIT_EST)
            .expect("eligible");
        assert_eq!(routed.replica, 0);
    }

    /// A fully-dark fleet (every replica ineligible mid-outage) is a
    /// typed error, not a panic — chaos sweeps recover from it.
    #[test]
    fn empty_eligible_set_is_typed_error() {
        let mut router = Router::new(RouterPolicy::JoinShortestQueue, 2);
        let req = Request::new(0, 1, 1).with_arrival(3.5);
        let err = router
            .route_among(&req, &[], UNIT_EST)
            .expect_err("no accepting replica");
        assert_eq!(err, NoAcceptingReplica { at_s: 3.5 });
        assert!(err.to_string().contains("no accepting replica"));
        let err = router
            .route_live_among(&req, &[], &[], UNIT_EST)
            .expect_err("no accepting replica");
        assert_eq!(err.at_s, 3.5);
        // The router is still usable afterwards.
        assert!(router.route_among(&req, &[0, 1], UNIT_EST).is_ok());
    }

    /// Live policies pick the argmin of the *measured* key supplied
    /// per eligible replica, ignoring the virtual-queue estimates.
    #[test]
    fn live_policies_route_on_measured_state() {
        let mut router = Router::new(RouterPolicy::JoinShortestQueueLive, 3);
        let r = Request::new(0, 1, 1).with_arrival(0.0);
        // Virtual queues are all empty, but the measured depths say
        // replica 2 is least loaded.
        let routed = router
            .route_live_among(&r, &[0, 1, 2], &[(4, 9.0), (3, 1.0), (1, 5.0)], UNIT_EST)
            .expect("eligible");
        assert_eq!(routed.replica, 2);

        let mut router = Router::new(RouterPolicy::LeastWorkLive, 3);
        // Same depths — least-work-live keys on remaining seconds
        // instead and picks replica 1.
        let routed = router
            .route_live_among(&r, &[0, 1, 2], &[(4, 9.0), (3, 1.0), (1, 5.0)], UNIT_EST)
            .expect("eligible");
        assert_eq!(routed.replica, 1);
    }

    /// Measured ties rotate through the rotor exactly like estimated
    /// ties — an idle fleet degenerates to round-robin, not a hot
    /// spot on replica 0.
    #[test]
    fn live_ties_rotate() {
        let mut router = Router::new(RouterPolicy::JoinShortestQueueLive, 3);
        let idle = [(0usize, 0.0f64); 3];
        let mut picks = Vec::new();
        for id in 0..6 {
            let r = Request::new(id, 1, 1).with_arrival(id as f64 * 10.0);
            picks.push(
                router
                    .route_live_among(&r, &[0, 1, 2], &idle, UNIT_EST)
                    .expect("eligible")
                    .replica,
            );
        }
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2]);
    }

    /// Estimated policies passed through `route_live_among` ignore
    /// the live values and decide exactly as `route_among` — the
    /// event loop calls one entry point for every policy.
    #[test]
    fn route_live_among_delegates_for_estimated_policies() {
        let reqs = reqs_at(&[0.0, 0.0, 0.3, 0.1, 2.0, 0.05]);
        for policy in RouterPolicy::all_default() {
            let all = [0usize, 1, 2];
            let mut a = Router::new(policy, 3);
            let mut b = Router::new(policy, 3);
            for r in &reqs {
                // Deliberately misleading live state: must be ignored.
                let live = [(99, 99.0), (0, 0.0), (50, 1.0)];
                let va = a.route_among(r, &all, UNIT_EST).expect("eligible").replica;
                let vb = b
                    .route_live_among(r, &all, &live, UNIT_EST)
                    .expect("eligible")
                    .replica;
                assert_eq!(va, vb, "{policy} diverged at request {}", r.id);
            }
        }
    }

    #[test]
    #[should_panic(expected = "measured replica state")]
    fn live_policy_rejects_estimated_route() {
        let reqs = reqs_at(&[0.0]);
        assign(RouterPolicy::JoinShortestQueueLive, 2, &reqs, UNIT_EST);
    }
}
