//! Fleet-level sweeps: capacity scaling (replica count × offered
//! load) and router-policy head-to-head comparison.
//!
//! Both sweeps follow the serving harness's methodology: one
//! unit-rate Poisson arrival pattern is sampled per seed and *scaled*
//! per point, so every grid cell replays the same requests in the
//! same order and differs only in pacing. Offered load is expressed
//! as a multiple of `N ×` the single replica's measured *offline*
//! capacity, so the goodput knee of a well-balanced fleet sits near
//! multiplier 1.0 for every N — deviations from that are exactly the
//! routing/imbalance losses this tier exists to measure.
//!
//! Grid cells are independent fleet runs evaluated on a
//! [`SweepRunner`]; within each cell the replicas parallelize on the
//! same runner's nested budget. Output is byte-identical for every
//! `--jobs` value.

use crate::fleet::Fleet;
use crate::report::FleetReport;
use crate::router::RouterPolicy;
use seesaw_engine::{OnlineEngine, SweepRunner};
use seesaw_workload::{ArrivalDist, Request, SloSpec, ARRIVAL_SEED_SALT};
use serde::{Deserialize, Serialize};

/// Builder for one replica (called once per replica per fleet).
pub type ReplicaBuilder<'a> = &'a (dyn Fn(usize) -> Box<dyn OnlineEngine> + Sync);

/// One evaluated fleet grid cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetPoint {
    /// Replicas in the fleet.
    pub n_replicas: usize,
    /// Offered load as a multiple of `n_replicas ×` single-replica
    /// offline capacity.
    pub load_multiplier: f64,
    /// Offered load, requests/second.
    pub offered_rps: f64,
    /// Fraction of requests meeting the SLO.
    pub attainment: f64,
    /// SLO-meeting requests per second over the fleet makespan.
    pub goodput_rps: f64,
    /// The full fleet run behind the numbers.
    pub report: FleetReport,
}

/// A completed replica-count × offered-load scaling sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetScalingSweep {
    /// Replica configuration label (replica 0's).
    pub label: String,
    /// Workload name.
    pub workload: String,
    /// Routing policy used at every cell.
    pub policy: RouterPolicy,
    /// The SLO every point is judged against.
    pub slo: SloSpec,
    /// Measured single-replica *offline* throughput on the base
    /// request set (the unit the load multipliers scale from).
    pub capacity_rps: f64,
    /// Replica counts swept (row order).
    pub replica_counts: Vec<usize>,
    /// Load multipliers swept (column order).
    pub multipliers: Vec<f64>,
    /// Points in row-major `replica_counts × multipliers` order.
    pub points: Vec<FleetPoint>,
}

impl FleetScalingSweep {
    /// The point at (`n_replicas`, `multiplier`) if it was swept.
    pub fn point(&self, n_replicas: usize, multiplier: f64) -> Option<&FleetPoint> {
        self.points
            .iter()
            .find(|p| p.n_replicas == n_replicas && p.load_multiplier == multiplier)
    }
}

/// Measure the single-replica offline capacity of `build`'s engine on
/// `base` (arrival times ignored), returning `(capacity_rps, label)`
/// so callers running several sweeps over the same scenario measure
/// once and thread the result through the `*_at_capacity_with`
/// variants.
pub fn offline_capacity(build: ReplicaBuilder, base: &[Request]) -> (f64, String) {
    let offline: Vec<Request> = base.iter().map(|r| r.with_arrival(0.0)).collect();
    let engine = build(0);
    (engine.run(&offline).throughput_rps(), engine.label())
}

/// Scale one unit-rate arrival pattern to `rate` and attach it to
/// `base` (whatever arrival times `base` carried are replaced).
fn paced(base: &[Request], unit: &[f64], rate: f64) -> Vec<Request> {
    base.iter()
        .zip(unit)
        .map(|(r, &t)| r.with_arrival(t / rate))
        .collect()
}

/// Sweep fleets of `replica_counts` homogeneous replicas over
/// `multipliers ×` their aggregate capacity, under one routing
/// `policy`. The arrival pattern is Poisson, sampled once at unit
/// rate from `seed` (salted, like every serving sweep) and rescaled
/// per cell.
#[allow(clippy::too_many_arguments)]
pub fn scaling_sweep_with(
    runner: &SweepRunner,
    build: ReplicaBuilder,
    workload: &str,
    base: &[Request],
    replica_counts: &[usize],
    multipliers: &[f64],
    policy: RouterPolicy,
    slo: SloSpec,
    seed: u64,
) -> FleetScalingSweep {
    let (capacity_rps, label) = offline_capacity(build, base);
    scaling_sweep_at_capacity_with(
        runner,
        build,
        workload,
        base,
        (capacity_rps, &label),
        replica_counts,
        multipliers,
        policy,
        slo,
        seed,
    )
}

/// [`scaling_sweep_with`] with a pre-measured `(capacity_rps, label)`
/// (from [`offline_capacity`]), so several sweeps over one scenario
/// do not re-measure the offline run.
#[allow(clippy::too_many_arguments)]
pub fn scaling_sweep_at_capacity_with(
    runner: &SweepRunner,
    build: ReplicaBuilder,
    workload: &str,
    base: &[Request],
    capacity: (f64, &str),
    replica_counts: &[usize],
    multipliers: &[f64],
    policy: RouterPolicy,
    slo: SloSpec,
    seed: u64,
) -> FleetScalingSweep {
    let unit = ArrivalDist::Poisson { rate: 1.0 }
        .sample_times(base.len(), seed ^ ARRIVAL_SEED_SALT)
        .expect("unit-rate Poisson is valid");
    scaling_sweep_patterned_at_capacity_with(
        runner,
        build,
        workload,
        base,
        capacity,
        &unit,
        replica_counts,
        multipliers,
        policy,
        slo,
    )
}

/// [`scaling_sweep_at_capacity_with`] on an explicit unit-mean-rate
/// arrival pattern (one time per request) instead of the sampled
/// Poisson one — this is how trace-shaped arrivals (diurnal envelopes
/// or replayed trace files, normalized via
/// [`seesaw_workload::unit_rate_pattern`]) run through the fleet
/// grid: every cell replays the *same trace shape*, time-scaled to
/// its offered rate.
#[allow(clippy::too_many_arguments)]
pub fn scaling_sweep_patterned_at_capacity_with(
    runner: &SweepRunner,
    build: ReplicaBuilder,
    workload: &str,
    base: &[Request],
    (capacity_rps, label): (f64, &str),
    unit: &[f64],
    replica_counts: &[usize],
    multipliers: &[f64],
    policy: RouterPolicy,
    slo: SloSpec,
) -> FleetScalingSweep {
    assert!(!base.is_empty(), "fleet sweep needs requests");
    assert_eq!(
        unit.len(),
        base.len(),
        "arrival pattern must cover every request"
    );
    assert!(
        replica_counts.iter().all(|&n| n > 0),
        "replica counts must be positive"
    );
    assert!(
        multipliers.iter().all(|&m| m.is_finite() && m > 0.0),
        "load multipliers must be positive and finite"
    );
    assert!(
        capacity_rps.is_finite() && capacity_rps > 0.0,
        "capacity must be positive and finite, got {capacity_rps}"
    );
    let cells: Vec<(usize, f64)> = replica_counts
        .iter()
        .flat_map(|&n| multipliers.iter().map(move |&m| (n, m)))
        .collect();
    let points = runner.map(&cells, |&(n, m)| {
        let rate = m * n as f64 * capacity_rps;
        let reqs = paced(base, unit, rate);
        let fleet = Fleet::homogeneous(n, |i| build(i));
        let report = fleet.run_with(runner, policy, &reqs);
        FleetPoint {
            n_replicas: n,
            load_multiplier: m,
            offered_rps: rate,
            attainment: report.slo_attainment(slo),
            goodput_rps: report.goodput_rps(slo),
            report,
        }
    });
    FleetScalingSweep {
        label: label.into(),
        workload: workload.into(),
        policy,
        slo,
        capacity_rps,
        replica_counts: replica_counts.to_vec(),
        multipliers: multipliers.to_vec(),
        points,
    }
}

/// Run every `policy` head-to-head on the *same* fleet size, request
/// stream, and offered load (a multiple of the fleet's aggregate
/// capacity). Returns one [`FleetPoint`] per policy, in `policies`
/// order (the point's `report.policy` names it).
#[allow(clippy::too_many_arguments)]
pub fn policy_comparison_with(
    runner: &SweepRunner,
    build: ReplicaBuilder,
    base: &[Request],
    n_replicas: usize,
    multiplier: f64,
    policies: &[RouterPolicy],
    slo: SloSpec,
    seed: u64,
) -> Vec<FleetPoint> {
    let (capacity_rps, _) = offline_capacity(build, base);
    policy_comparison_at_capacity_with(
        runner, build, base, capacity_rps, n_replicas, multiplier, policies, slo, seed,
    )
}

/// [`policy_comparison_with`] with a pre-measured capacity (from
/// [`offline_capacity`]).
#[allow(clippy::too_many_arguments)]
pub fn policy_comparison_at_capacity_with(
    runner: &SweepRunner,
    build: ReplicaBuilder,
    base: &[Request],
    capacity_rps: f64,
    n_replicas: usize,
    multiplier: f64,
    policies: &[RouterPolicy],
    slo: SloSpec,
    seed: u64,
) -> Vec<FleetPoint> {
    let unit = ArrivalDist::Poisson { rate: 1.0 }
        .sample_times(base.len(), seed ^ ARRIVAL_SEED_SALT)
        .expect("unit-rate Poisson is valid");
    policy_comparison_patterned_at_capacity_with(
        runner, build, base, capacity_rps, &unit, n_replicas, multiplier, policies, slo,
    )
}

/// [`policy_comparison_at_capacity_with`] on an explicit
/// unit-mean-rate arrival pattern — the router × trace head-to-head
/// (see [`scaling_sweep_patterned_at_capacity_with`] for the pattern
/// convention).
#[allow(clippy::too_many_arguments)]
pub fn policy_comparison_patterned_at_capacity_with(
    runner: &SweepRunner,
    build: ReplicaBuilder,
    base: &[Request],
    capacity_rps: f64,
    unit: &[f64],
    n_replicas: usize,
    multiplier: f64,
    policies: &[RouterPolicy],
    slo: SloSpec,
) -> Vec<FleetPoint> {
    assert!(!base.is_empty(), "policy comparison needs requests");
    assert_eq!(
        unit.len(),
        base.len(),
        "arrival pattern must cover every request"
    );
    assert!(n_replicas > 0, "policy comparison needs replicas");
    assert!(
        capacity_rps.is_finite() && capacity_rps > 0.0,
        "capacity must be positive and finite, got {capacity_rps}"
    );
    let rate = multiplier * n_replicas as f64 * capacity_rps;
    let reqs = paced(base, unit, rate);
    runner.map(policies, |&policy| {
        let fleet = Fleet::homogeneous(n_replicas, |i| build(i));
        let report = fleet.run_with(runner, policy, &reqs);
        FleetPoint {
            n_replicas,
            load_multiplier: multiplier,
            offered_rps: rate,
            attainment: report.slo_attainment(slo),
            goodput_rps: report.goodput_rps(slo),
            report,
        }
    })
}

/// Aggregate offline capacity of a (possibly heterogeneous) fleet of
/// `n_replicas` built by `build`: the sum of each replica's measured
/// offline throughput on `base`, the unit a mixed fleet's load
/// multipliers scale from. Also returns a run-length-encoded label
/// (`"2x vllm-t2p2 + 2x vllm-t1p2"`-style) naming the mix.
pub fn hetero_offline_capacity(
    build: ReplicaBuilder,
    n_replicas: usize,
    base: &[Request],
) -> (f64, String) {
    assert!(n_replicas > 0, "a fleet needs at least one replica");
    let offline: Vec<Request> = base.iter().map(|r| r.with_arrival(0.0)).collect();
    let mut total = 0.0;
    let mut runs: Vec<(String, usize)> = Vec::new();
    for i in 0..n_replicas {
        let engine = build(i);
        total += engine.run(&offline).throughput_rps();
        let label = engine.label();
        match runs.last_mut() {
            Some((l, count)) if *l == label => *count += 1,
            _ => runs.push((label, 1)),
        }
    }
    let label = runs
        .iter()
        .map(|(l, c)| format!("{c}x {l}"))
        .collect::<Vec<_>>()
        .join(" + ");
    (total, label)
}

/// [`policy_comparison_patterned_at_capacity_with`] over an explicit
/// (possibly heterogeneous) fleet: `build(i)` may return
/// differently-configured engines per replica index, each replica's
/// routing cost estimates come from its own engine, and offered load
/// is `multiplier ×` the fleet's *aggregate* capacity (from
/// [`hetero_offline_capacity`]) rather than `N ×` a single replica's.
///
/// This is the live-vs-estimated proving ground: on a mixed fleet the
/// estimated policies price every replica through the same analytic
/// queue model, while the live policies observe each replica's
/// measured state — the gap between the two is exactly what the
/// global event loop exists to capture.
#[allow(clippy::too_many_arguments)]
pub fn policy_comparison_hetero_patterned_with(
    runner: &SweepRunner,
    build: ReplicaBuilder,
    base: &[Request],
    aggregate_capacity_rps: f64,
    unit: &[f64],
    n_replicas: usize,
    multiplier: f64,
    policies: &[RouterPolicy],
    slo: SloSpec,
) -> Vec<FleetPoint> {
    assert!(!base.is_empty(), "policy comparison needs requests");
    assert_eq!(
        unit.len(),
        base.len(),
        "arrival pattern must cover every request"
    );
    assert!(n_replicas > 0, "policy comparison needs replicas");
    assert!(
        aggregate_capacity_rps.is_finite() && aggregate_capacity_rps > 0.0,
        "capacity must be positive and finite, got {aggregate_capacity_rps}"
    );
    let rate = multiplier * aggregate_capacity_rps;
    let reqs = paced(base, unit, rate);
    runner.map(policies, |&policy| {
        let fleet = Fleet::new((0..n_replicas).map(|i| build(i)).collect());
        let report = fleet.run_with(runner, policy, &reqs);
        FleetPoint {
            n_replicas,
            load_multiplier: multiplier,
            offered_rps: rate,
            attainment: report.slo_attainment(slo),
            goodput_rps: report.goodput_rps(slo),
            report,
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use seesaw_engine::vllm::VllmEngine;
    use seesaw_engine::SchedulingPolicy;
    use seesaw_hw::ClusterSpec;
    use seesaw_model::presets;
    use seesaw_parallel::ParallelConfig;
    use seesaw_workload::WorkloadGen;
    use std::sync::Arc;

    fn builder() -> impl Fn(usize) -> Box<dyn OnlineEngine> + Sync {
        let cluster = Arc::new(ClusterSpec::a10x4());
        let model = Arc::new(presets::llama2_13b());
        move |_| {
            Box::new(
                VllmEngine::new(
                    Arc::clone(&cluster),
                    Arc::clone(&model),
                    ParallelConfig::new(1, 2, 2),
                    SchedulingPolicy::PrefillPrioritized,
                )
                .expect("valid config"),
            )
        }
    }

    const SLO: SloSpec = SloSpec { ttft_s: 15.0, tpot_s: 0.05 };

    #[test]
    fn scaling_sweep_covers_the_grid_and_scales_offered_load() {
        let build = builder();
        let base = WorkloadGen::constant(768, 48).generate(16);
        let sweep = scaling_sweep_with(
            &SweepRunner::serial(),
            &build,
            "const",
            &base,
            &[1, 2],
            &[0.5, 2.0],
            RouterPolicy::JoinShortestQueue,
            SLO,
            42,
        );
        assert_eq!(sweep.points.len(), 4);
        // Offered load scales with both axes.
        let p11 = sweep.point(1, 0.5).unwrap();
        let p22 = sweep.point(2, 2.0).unwrap();
        assert!((p22.offered_rps / p11.offered_rps - 8.0).abs() < 1e-9);
        // Every cell serves the full request set.
        for p in &sweep.points {
            assert_eq!(p.report.stats.requests, 16);
            assert_eq!(p.report.n_replicas(), p.n_replicas);
        }
        // At the same multiplier, more replicas must not hurt
        // attainment (each replica sees ~the same per-replica load).
        let a1 = sweep.point(1, 0.5).unwrap().attainment;
        let a2 = sweep.point(2, 0.5).unwrap().attainment;
        assert!(a2 >= a1 - 0.25, "scaling out collapsed attainment: {a1} -> {a2}");
    }

    #[test]
    fn hetero_comparison_scales_from_aggregate_capacity() {
        let strong = Arc::new(ClusterSpec::a10x4());
        let weak = Arc::new(ClusterSpec::l4x4());
        let model = Arc::new(presets::llama2_13b());
        // Two strong (A10, T2P2) + one weak (L4, P4) replica.
        let build = move |i: usize| -> Box<dyn OnlineEngine> {
            let (cluster, parallel) = if i < 2 {
                (&strong, ParallelConfig::new(1, 2, 2))
            } else {
                (&weak, ParallelConfig::new(1, 1, 4))
            };
            Box::new(
                VllmEngine::new(
                    Arc::clone(cluster),
                    Arc::clone(&model),
                    parallel,
                    SchedulingPolicy::PrefillPrioritized,
                )
                .expect("valid config"),
            )
        };
        let base = WorkloadGen::constant(768, 48).generate(18);
        let (cap, label) = hetero_offline_capacity(&build, 3, &base);
        assert!(cap.is_finite() && cap > 0.0);
        assert!(label.starts_with("2x "), "run-length label, got {label}");
        assert!(label.contains(" + 1x "), "mix must name both configs: {label}");
        let unit = ArrivalDist::Poisson { rate: 1.0 }
            .sample_times(base.len(), 42 ^ ARRIVAL_SEED_SALT)
            .expect("valid");
        let policies = [RouterPolicy::JoinShortestQueue, RouterPolicy::JoinShortestQueueLive];
        let run = |runner: &SweepRunner| {
            policy_comparison_hetero_patterned_with(
                runner, &build, &base, cap, &unit, 3, 1.1, &policies, SLO,
            )
        };
        let serial = run(&SweepRunner::serial());
        assert_eq!(serial, run(&SweepRunner::new(4)));
        for (p, policy) in serial.iter().zip(policies) {
            assert_eq!(p.report.policy, policy);
            assert_eq!(p.report.stats.requests, 18);
            assert!((p.offered_rps - 1.1 * cap).abs() < 1e-12);
        }
    }

    #[test]
    fn policy_comparison_is_deterministic_and_complete() {
        let build = builder();
        let base = WorkloadGen::constant(768, 48).generate(16);
        let run = |runner: &SweepRunner| {
            policy_comparison_with(
                runner,
                &build,
                &base,
                2,
                1.0,
                &RouterPolicy::all_default(),
                SLO,
                42,
            )
        };
        let serial = run(&SweepRunner::serial());
        let parallel = run(&SweepRunner::new(4));
        assert_eq!(serial, parallel);
        assert_eq!(serial.len(), 4);
        for (p, policy) in serial.iter().zip(RouterPolicy::all_default()) {
            assert_eq!(p.report.policy, policy);
            assert_eq!(p.report.stats.requests, 16);
        }
    }
}
