//! The fleet's global time-ordered event loop.
//!
//! The merged-timeline fast path ([`Fleet::run_with`]) routes the
//! whole stream up front and simulates replicas independently — valid
//! precisely because feedback-free policies never read replica state.
//! Live policies do: `jsq-live` and `least-work-live` rank replicas
//! by *measured* queue depth / remaining work at each arrival
//! instant, so the fleet must advance on one global clock.
//!
//! This module hosts the N replicas as actors on a single
//! [`seesaw_sim::EventQueue`]: every arrival is an event; popping one
//! advances the global clock to that instant, queries each replica's
//! exact live state there (via [`seesaw_engine::EngineStepper`]'s
//! causal replay — engines admit on arrival times, so replaying the
//! assigned prefix reproduces the live trajectory exactly), routes on
//! the measured state, and hands the request to the chosen actor.
//! Decisions are serial in event order, so runs are deterministic and
//! runner-invariant; the final per-replica simulations are
//! independent and parallelize on the [`SweepRunner`] exactly like
//! the fast path.
//!
//! For feedback-free policies the loop skips the live-state queries
//! and the router falls through to its estimated decision — the same
//! decision the fast path makes — so both paths produce byte-identical
//! [`FleetReport`]s (enforced by `tests/event_core.rs`). That
//! equivalence is what lets [`Fleet::run_with`] auto-select the fast
//! path whenever the policy permits.

use crate::fleet::Fleet;
use crate::report::FleetReport;
use crate::router::Router;
use crate::router::RouterPolicy;
use crate::telemetry::{record_request_spans, register_tracks};
use seesaw_engine::driver::assert_arrivals_sorted;
use seesaw_engine::{EngineStepper, SweepRunner};
use seesaw_sim::{EventQueue, SimTime};
use seesaw_telemetry::{fmt_secs, Instrument, ROUTER_TRACK};
use seesaw_workload::{split_stream, Request};

impl Fleet {
    /// Serve `requests` (sorted by arrival) under `policy` on the
    /// global event loop, with the final replica simulations
    /// parallelized by `runner`.
    ///
    /// Works for *every* policy: live policies require it, and
    /// feedback-free policies produce reports byte-identical to the
    /// merged-timeline fast path (which [`Fleet::run_with`] selects
    /// automatically for them — calling this directly just forgoes
    /// the shortcut, e.g. to test the equivalence).
    pub fn run_event_loop_with(
        &self,
        runner: &SweepRunner,
        policy: RouterPolicy,
        requests: &[Request],
    ) -> FleetReport {
        self.run_event_loop_instrumented_with(runner, policy, requests, &mut Instrument::off())
    }

    /// [`Fleet::run_event_loop_with`] with a telemetry [`Instrument`]:
    /// route decisions (and the measured or estimated state each one
    /// saw) are recorded as instants on the router track while the
    /// loop runs; request lifecycle spans and registry metrics are
    /// filled in from the finished report. With `Instrument::off()`
    /// this *is* `run_event_loop_with` — every recording site is a
    /// branch on a false bool, so disabled output is byte-identical
    /// (enforced by tests).
    pub fn run_event_loop_instrumented_with(
        &self,
        runner: &SweepRunner,
        policy: RouterPolicy,
        requests: &[Request],
        instr: &mut Instrument,
    ) -> FleetReport {
        assert_arrivals_sorted(requests);
        let telemetry = instr.telemetry_on();
        let n = self.replicas.len();
        let rates = self.routing_rates(policy, requests);
        let est = |replica: usize, req: &Request| {
            rates.get(replica).map_or(1.0, |r| r.est_service_s(req))
        };
        let live_routing = policy.needs_live_state();
        let mut router = Router::new(policy, n);
        // One actor per replica: a stepper replaying the replica's
        // assigned sub-stream to answer exact state queries. Only
        // live policies consult them.
        let mut actors: Vec<EngineStepper<'_>> = if live_routing {
            self.replicas.iter().map(|r| EngineStepper::new(&**r, 0.0)).collect()
        } else {
            Vec::new()
        };
        let all: Vec<usize> = (0..n).collect();
        let mut events: EventQueue<usize> = EventQueue::new();
        for (idx, req) in requests.iter().enumerate() {
            events.push(SimTime::from_secs(req.arrival_s), idx);
        }
        if telemetry {
            register_tracks(&mut instr.recorder, &format!("router ({policy})"), &self.labels());
        }
        let mut assignment = vec![0usize; requests.len()];
        while let Some((at, idx)) = events.pop() {
            let req = &requests[idx];
            let now = at.as_secs();
            // Measured state of every replica at this instant —
            // queried serially in replica order for determinism.
            let live: Vec<(usize, f64)> = if live_routing {
                actors
                    .iter_mut()
                    .map(|a| {
                        let s = a.state_at(now);
                        (s.queue_depth, s.work_s)
                    })
                    .collect()
            } else {
                Vec::new()
            };
            let routed = router
                .route_live_among(req, &all, &live, est)
                .expect("every replica of a fixed fleet is eligible");
            assignment[idx] = routed.replica;
            if telemetry {
                // The state this decision saw: measured for live
                // policies, the router's virtual queue otherwise.
                let (depth, work_s) = if live_routing {
                    live[routed.replica]
                } else {
                    router.queue_state(now)[routed.replica]
                };
                instr.recorder.instant(
                    ROUTER_TRACK,
                    &format!("route {} -> r{}", req.id, routed.replica),
                    now,
                    &[
                        ("queue_depth", depth.to_string()),
                        ("work_s", fmt_secs(work_s)),
                        ("est_wait_s", fmt_secs(routed.est_wait_s)),
                        ("measured", live_routing.to_string()),
                    ],
                );
                instr
                    .metrics
                    .counter_add(&format!("fleet.route.{policy}.replica{}", routed.replica), 1);
                instr.metrics.observe("fleet.route.est_wait_s", routed.est_wait_s);
            }
            if live_routing {
                actors[routed.replica].push(req.clone());
            }
        }
        if telemetry {
            instr.metrics.counter_add("fleet.events.pushed", events.total_pushes());
            instr.metrics.counter_add("fleet.events.popped", events.total_pops());
            let (replays, replayed) = actors
                .iter()
                .map(EngineStepper::replay_counts)
                .fold((0, 0), |(a, b), (c, d)| (a + c, b + d));
            instr.metrics.counter_add("fleet.replay.count", replays);
            instr.metrics.counter_add("fleet.replay.requests", replayed);
        }
        drop(actors);
        let streams = split_stream(requests, &assignment, n);
        let indices: Vec<usize> = (0..n).collect();
        let reports = runner.map(&indices, |&i| self.replicas[i].run(&streams[i]));
        let report = FleetReport::from_replica_reports(policy, reports, assignment);
        if telemetry {
            record_request_spans(&mut instr.recorder, &report);
            for (i, rep) in report.replicas.iter().enumerate() {
                instr
                    .metrics
                    .counter_add(&format!("fleet.requests.replica{i}"), rep.stats.requests as u64);
            }
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seesaw_engine::vllm::VllmEngine;
    use seesaw_engine::{OnlineEngine, SchedulingPolicy};
    use seesaw_hw::ClusterSpec;
    use seesaw_model::presets;
    use seesaw_parallel::ParallelConfig;
    use seesaw_workload::{ArrivalDist, WorkloadGen};
    use std::sync::Arc;

    fn vllm_fleet(n: usize) -> Fleet {
        let cluster = Arc::new(ClusterSpec::a10x4());
        let model = Arc::new(presets::llama2_13b());
        Fleet::homogeneous(n, |_| {
            Box::new(
                VllmEngine::new(
                    Arc::clone(&cluster),
                    Arc::clone(&model),
                    ParallelConfig::new(1, 2, 2),
                    SchedulingPolicy::PrefillPrioritized,
                )
                .expect("valid config"),
            ) as Box<dyn OnlineEngine>
        })
    }

    fn online_reqs(n: usize, rate: f64) -> Vec<Request> {
        let base = WorkloadGen::constant(512, 24).generate(n);
        ArrivalDist::Poisson { rate }
            .attach(&base, 11)
            .expect("valid arrivals")
    }

    #[test]
    fn live_policies_serve_every_request_exactly_once() {
        let fleet = vllm_fleet(3);
        let reqs = online_reqs(24, 6.0);
        for policy in RouterPolicy::all_live() {
            let report = fleet.run_with(&SweepRunner::serial(), policy, &reqs);
            assert_eq!(report.stats.requests, 24, "{policy}");
            assert_eq!(report.timeline.len(), 24, "{policy}");
            let mut ids: Vec<u64> = report.timeline.iter().map(|t| t.id).collect();
            ids.dedup();
            assert_eq!(ids.len(), 24, "{policy}: every id exactly once");
            // Live routing actually spreads load.
            assert!(
                report.assignment.iter().any(|&r| r != report.assignment[0]),
                "{policy}: more than one replica used"
            );
        }
    }

    #[test]
    fn live_policies_are_runner_invariant() {
        let fleet = vllm_fleet(4);
        let reqs = online_reqs(20, 8.0);
        for policy in RouterPolicy::all_live() {
            let serial = fleet.run_with(&SweepRunner::serial(), policy, &reqs);
            let parallel = fleet.run_with(&SweepRunner::new(4), policy, &reqs);
            assert_eq!(serial, parallel, "{policy}");
        }
    }

    #[test]
    fn empty_stream_yields_empty_report() {
        let fleet = vllm_fleet(2);
        let report =
            fleet.run_with(&SweepRunner::serial(), RouterPolicy::JoinShortestQueueLive, &[]);
        assert_eq!(report.stats.requests, 0);
        assert!(report.latency.is_none());
    }
}
