//! Fleet-tier telemetry glue: the canonical track layout and the
//! post-hoc request-lifecycle rendering shared by the fleet,
//! autoscale, and chaos exporters.
//!
//! Route decisions are recorded *live*, inside the serial decision
//! loops (the state a decision saw exists nowhere in the final
//! report). Request lifecycle spans are the opposite: they are fully
//! determined by the deterministic merged report, so they are
//! rendered here *after* the run — keeping the hot loops untouched
//! and the recorded bytes independent of `--jobs`.

use crate::report::FleetReport;
use seesaw_engine::EngineReport;
use seesaw_telemetry::{fmt_secs, Recorder, CONTROLLER_TRACK, REPLICA_TRACK_BASE, ROUTER_TRACK};

/// Register the controller/router/replica tracks with display names.
/// `labels` are replica configuration labels, in replica order.
pub fn register_tracks(rec: &mut Recorder, router_name: &str, labels: &[String]) {
    rec.track(CONTROLLER_TRACK, "controller");
    rec.track(ROUTER_TRACK, router_name);
    for (i, label) in labels.iter().enumerate() {
        rec.track(replica_track(i), &format!("replica{i} [{label}]"));
    }
}

/// Track id of replica `i`.
pub fn replica_track(i: usize) -> u32 {
    REPLICA_TRACK_BASE + i as u32
}

/// Record one replica's served requests as spans on its track:
/// arrival → completion, with TTFT and output length as args.
pub fn record_replica_requests(rec: &mut Recorder, replica: usize, report: &EngineReport) {
    for t in &report.timeline {
        rec.span(
            replica_track(replica),
            &format!("req {}", t.id),
            t.arrival_s,
            t.completion_s - t.arrival_s,
            &[
                ("ttft_s", fmt_secs(t.first_token_s - t.arrival_s)),
                ("e2e_s", fmt_secs(t.completion_s - t.arrival_s)),
                ("output_tokens", t.output_len.to_string()),
                ("attempts", t.attempts.to_string()),
            ],
        );
    }
}

/// Record every replica's request lifecycles from a merged fleet
/// report (replica order, then timeline order — deterministic).
pub fn record_request_spans(rec: &mut Recorder, report: &FleetReport) {
    for (i, rep) in report.replicas.iter().enumerate() {
        record_replica_requests(rec, i, rep);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::router::RouterPolicy;
    use seesaw_workload::{RequestTiming, RunStats};

    fn tiny_report() -> FleetReport {
        let rep = |ids: &[u64]| EngineReport {
            label: "x".into(),
            stats: RunStats {
                requests: ids.len(),
                input_tokens: 0,
                output_tokens: 0,
                duration_s: 2.0,
            },
            prefill_wall_s: 0.0,
            decode_wall_s: 0.0,
            mixed_wall_s: 0.0,
            reshard_wall_s: 0.0,
            transitions: 0,
            swap_out_bytes: 0,
            swap_in_bytes: 0,
            phases: Vec::new(),
            gpu_utilization: 0.5,
            timeline: ids
                .iter()
                .map(|&id| RequestTiming {
                    id,
                    arrival_s: 0.1 * id as f64,
                    first_token_s: 0.1 * id as f64 + 0.2,
                    completion_s: 0.1 * id as f64 + 1.0,
                    output_len: 4,
                    attempts: 1,
                })
                .collect(),
            latency: None,
        };
        FleetReport::from_replica_reports(
            RouterPolicy::JoinShortestQueue,
            vec![rep(&[0, 2]), rep(&[1])],
            vec![0, 1, 0],
        )
    }

    #[test]
    fn spans_land_on_the_owning_replica_track() {
        let mut rec = Recorder::enabled();
        let report = tiny_report();
        register_tracks(&mut rec, "router (jsq)", &["a".into(), "b".into()]);
        record_request_spans(&mut rec, &report);
        assert_eq!(rec.tracks().len(), 4, "controller + router + 2 replicas");
        assert_eq!(rec.spans().len(), 3);
        assert_eq!(rec.spans()[0].track, replica_track(0));
        assert_eq!(rec.spans()[2].track, replica_track(1));
        assert_eq!(rec.spans()[2].name, "req 1");
        assert!(rec.spans()[0].args.iter().any(|(k, v)| k == "ttft_s" && v == "0.200000"));
    }

    #[test]
    fn rendering_is_deterministic() {
        let build = || {
            let mut rec = Recorder::enabled();
            register_tracks(&mut rec, "r", &["a".into()]);
            record_request_spans(&mut rec, &tiny_report());
            seesaw_telemetry::perfetto::render(&rec, "fleet")
        };
        assert_eq!(build(), build());
    }
}
