//! Fleet simulation: many engine replicas behind a request router.
//!
//! The paper — and every other crate in this workspace — models a
//! *single* serving instance. Real deployments serve heavy traffic by
//! running N replicas of an engine behind a load balancer; this crate
//! is that missing tier (the cluster level MLSYSIM argues for, one up
//! from the accelerator level):
//!
//! * [`Fleet`] owns N replicas, each an engine behind a
//!   [`seesaw_engine::OnlineEngine`] trait object — Seesaw, vLLM, or
//!   disaggregated backends, heterogeneous mixes allowed.
//! * [`Router`] walks the global arrival-sorted stream once and
//!   assigns every request to a replica under a pluggable
//!   [`RouterPolicy`]: round-robin, join-shortest-queue,
//!   power-of-two-choices (seeded), or least-estimated-work using the
//!   roofline service-rate estimates — plus the live-feedback
//!   `jsq-live` and `least-work-live` policies that rank replicas by
//!   *measured* engine state.
//! * [`Fleet::run_with`] splits the stream per replica (order- and
//!   therefore arrival-sortedness-preserving), runs every replica
//!   through its existing per-engine online path — concurrently, on a
//!   [`seesaw_engine::SweepRunner`] — and merges the per-replica
//!   timelines into a [`FleetReport`] with fleet-level latency
//!   percentiles, SLO attainment, goodput, and per-replica
//!   load-imbalance statistics. Live policies automatically run on
//!   the global event loop ([`event_loop`]) instead; feedback-free
//!   ones keep this merged-timeline fast path, which the event loop
//!   reproduces byte-for-byte.
//! * [`sweep`] evaluates capacity-scaling grids (replica count ×
//!   offered load) and router-policy head-to-head comparisons.
//!
//! Everything is deterministic: routing is a single serial pass (in
//! arrival order on the fast path, in global event order on the event
//! loop), replica simulations are independent, and results are
//! collected in replica order — so fleet output is byte-identical for
//! every `--jobs` value, and a single-replica round-robin fleet
//! reproduces the bare engine's report exactly.

pub mod event_loop;
pub mod fleet;
pub mod report;
pub mod router;
pub mod sweep;
pub mod telemetry;

pub use fleet::Fleet;
pub use report::{FleetReport, LoadImbalance};
pub use router::{NoAcceptingReplica, Routed, Router, RouterPolicy};
pub use sweep::{
    hetero_offline_capacity, offline_capacity, policy_comparison_at_capacity_with,
    policy_comparison_hetero_patterned_with, policy_comparison_patterned_at_capacity_with,
    policy_comparison_with,
    scaling_sweep_at_capacity_with, scaling_sweep_patterned_at_capacity_with,
    scaling_sweep_with, FleetPoint, FleetScalingSweep,
};
