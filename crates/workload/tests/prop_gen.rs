//! Property tests for workload generation.

use proptest::prelude::*;
use seesaw_workload::{LengthDist, LengthStats, WorkloadGen};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Clipping bounds hold for any lognormal parameters.
    #[test]
    fn lognormal_respects_clip(median in 1.0f64..5000.0, sigma in 0.01f64..3.0,
                               lo in 1usize..100, span in 1usize..5000, seed in 0u64..1000) {
        let hi = lo + span;
        let mut g = WorkloadGen::new(
            "t",
            LengthDist::LogNormal { median, sigma, lo, hi },
            LengthDist::Constant(7),
            seed,
        );
        for r in g.generate(200) {
            prop_assert!((lo..=hi).contains(&r.input_len));
            prop_assert_eq!(r.output_len, 7);
        }
    }

    /// Same seed => same workload; generation is pure.
    #[test]
    fn seeded_determinism(seed in 0u64..10_000) {
        let a = WorkloadGen::sharegpt(seed).generate(64);
        let b = WorkloadGen::sharegpt(seed).generate(64);
        prop_assert_eq!(a, b);
    }

    /// Stats are internally consistent for any workload.
    #[test]
    fn stats_consistency(seed in 0u64..1000, n in 1usize..300) {
        let reqs = WorkloadGen::arxiv_summarization(seed).generate(n);
        let st = LengthStats::of(&reqs);
        prop_assert_eq!(st.count, n);
        let sum_in: u64 = reqs.iter().map(|r| r.input_len as u64).sum();
        prop_assert_eq!(st.total_input, sum_in);
        prop_assert!((st.mean_input - sum_in as f64 / n as f64).abs() < 1e-9);
        prop_assert!(st.max_total >= reqs.iter().map(|r| r.total_len()).max().unwrap());
    }

    /// Uniform distribution stays in range.
    #[test]
    fn uniform_in_range(lo in 1usize..500, span in 0usize..500, seed in 0u64..100) {
        let hi = lo + span;
        let mut g = WorkloadGen::new(
            "u",
            LengthDist::Uniform { lo, hi },
            LengthDist::Uniform { lo, hi },
            seed,
        );
        for r in g.generate(100) {
            prop_assert!((lo..=hi).contains(&r.input_len));
            prop_assert!((lo..=hi).contains(&r.output_len));
        }
    }
}
