//! Property tests for the streaming metrics pipeline: the mergeable
//! quantile sketch (accuracy vs exact nearest-rank, merge
//! associativity) and the streaming [`WindowAccumulator`] against
//! the post-hoc [`windowed_metrics`] oracle.

use proptest::prelude::*;
use seesaw_workload::{
    percentile, windowed_metrics, LatencySketch, RequestTiming, SloSpec, SummaryMode,
    WindowAccumulator,
};

/// Deterministic uniform stream from a seed (SplitMix64).
fn unit_stream(seed: u64) -> impl FnMut() -> f64 {
    let mut x = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
    move || {
        x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = x;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        (z >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// `n` samples from one of three latency-shaped distributions:
/// Poisson counts (scaled to seconds), Gamma/Erlang waiting times,
/// or a constant.
fn latency_samples(dist: usize, n: usize, seed: u64, scale: f64) -> Vec<f64> {
    let mut u = unit_stream(seed);
    (0..n)
        .map(|_| match dist {
            // Poisson(λ=6) via Knuth, scaled — a discrete latency
            // histogram with ties.
            0 => {
                let l = (-6.0f64).exp();
                let mut k = 0u32;
                let mut p = 1.0;
                loop {
                    p *= 1.0 - u();
                    if p <= l {
                        break;
                    }
                    k += 1;
                }
                k as f64 * scale
            }
            // Gamma(shape=3) as a sum of exponentials (Erlang) — a
            // right-skewed queueing-delay shape.
            1 => {
                let mut s = 0.0;
                for _ in 0..3 {
                    s += -(1.0 - u()).ln();
                }
                s * scale
            }
            // Constant latency — every quantile must answer exactly.
            _ => scale,
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Sketch quantiles stay within 1% relative error of the exact
    /// nearest-rank percentile across Poisson / Gamma / constant
    /// latency shapes (absolute tolerance near zero, where relative
    /// error is ill-defined).
    #[test]
    fn sketch_quantiles_within_one_percent_of_exact(
        dist in 0usize..3,
        n in 1usize..800,
        seed in 0u64..1_000,
        scale in prop::sample::select(vec![0.001f64, 0.05, 1.0, 30.0]),
    ) {
        let xs = latency_samples(dist, n, seed, scale);
        let sketch = LatencySketch::of(&xs);
        prop_assert_eq!(sketch.count(), xs.len() as u64);
        for p in [1.0, 10.0, 50.0, 90.0, 99.0, 100.0] {
            let exact = percentile(&xs, p).expect("non-empty");
            let approx = sketch.quantile(p).expect("non-empty");
            let tol = (exact.abs() * 0.01).max(1e-9);
            prop_assert!(
                (approx - exact).abs() <= tol,
                "p{}: sketch {} vs exact {} (n={}, dist={})", p, approx, exact, n, dist
            );
        }
        // The mean carries the same bucket-representative bound.
        let exact_mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let tol = (exact_mean.abs() * 0.01).max(1e-9);
        prop_assert!((sketch.mean().expect("non-empty") - exact_mean).abs() <= tol);
    }

    /// Merging is associative to the byte: `(a ⊕ b) ⊕ c` and
    /// `a ⊕ (b ⊕ c)` render identical digests (and commutative:
    /// `b ⊕ a` matches too).
    #[test]
    fn sketch_merge_is_associative(
        dist_a in 0usize..3,
        dist_b in 0usize..3,
        dist_c in 0usize..3,
        na in 0usize..300,
        nb in 0usize..300,
        nc in 0usize..300,
        seed in 0u64..1_000,
    ) {
        let a = LatencySketch::of(&latency_samples(dist_a, na, seed, 0.4));
        let b = LatencySketch::of(&latency_samples(dist_b, nb, seed ^ 0xb0b, 2.5));
        let c = LatencySketch::of(&latency_samples(dist_c, nc, seed ^ 0xc0c, 0.02));
        let left = {
            let mut ab = a.clone();
            ab.merge(&b);
            ab.merge(&c);
            ab
        };
        let right = {
            let mut bc = b.clone();
            bc.merge(&c);
            let mut abc = a.clone();
            abc.merge(&bc);
            abc
        };
        prop_assert_eq!(left.render(), right.render());
        let flipped = {
            let mut ba = b.clone();
            ba.merge(&a);
            ba.merge(&c);
            ba
        };
        prop_assert_eq!(left.render(), flipped.render());
        // The merged sketch equals sketching the concatenation.
        let mut all = latency_samples(dist_a, na, seed, 0.4);
        all.extend(latency_samples(dist_b, nb, seed ^ 0xb0b, 2.5));
        all.extend(latency_samples(dist_c, nc, seed ^ 0xc0c, 0.02));
        prop_assert_eq!(left.render(), LatencySketch::of(&all).render());
    }

    /// Streaming-vs-posthoc equivalence: in exact mode the
    /// accumulator's windows equal `windowed_metrics` on the same
    /// timeline — field for field, including empty-window `None`
    /// attainment/TTFT (never NaN or a fabricated 0) — for random
    /// traces, push orders, horizons, and boundary-landing
    /// completions.
    #[test]
    fn accumulator_matches_posthoc_oracle(
        n in 0usize..250,
        seed in 0u64..1_000,
        window_s in prop::sample::select(vec![0.5f64, 2.0, 10.0]),
        horizon_mult in 0.0f64..3.0,
        shuffle in 0u64..1_000,
    ) {
        let mut u = unit_stream(seed);
        let mut timeline: Vec<RequestTiming> = (0..n)
            .map(|i| {
                let arrival = u() * 40.0;
                // Occasionally land exactly on a window boundary —
                // the oracle's clamp-into-last-window edge.
                let arrival = if u() < 0.1 { (arrival / window_s).round() * window_s } else { arrival };
                let ttft = u() * 3.0;
                let extra = u() * 5.0;
                let out = 1 + (u() * 30.0) as usize;
                RequestTiming {
                    id: i as u64,
                    arrival_s: arrival,
                    first_token_s: arrival + ttft,
                    completion_s: arrival + ttft + extra,
                    output_len: out,
                    attempts: 1,
                }
            })
            .collect();
        let slo = SloSpec { ttft_s: 1.5, tpot_s: 0.2 };
        let horizon_s = horizon_mult * 20.0;
        let oracle = windowed_metrics(&timeline, slo, window_s, horizon_s);
        // Push order must not matter: shuffle deterministically.
        let mut x = shuffle.wrapping_mul(2).wrapping_add(1);
        for i in (1..timeline.len()).rev() {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            timeline.swap(i, (x >> 33) as usize % (i + 1));
        }
        let mut acc = WindowAccumulator::new(slo, window_s, SummaryMode::Exact);
        acc.observe(&timeline);
        let streamed = acc.finish(horizon_s);
        prop_assert_eq!(streamed.len(), oracle.len());
        for (s, o) in streamed.iter().zip(&oracle) {
            prop_assert_eq!(s.t0, o.t0);
            prop_assert_eq!(s.t1, o.t1);
            prop_assert_eq!(s.arrivals, o.arrivals, "window [{}, {})", o.t0, o.t1);
            prop_assert_eq!(s.completions, o.completions, "window [{}, {})", o.t0, o.t1);
            prop_assert_eq!(s.attainment, o.attainment, "window [{}, {})", o.t0, o.t1);
            prop_assert_eq!(s.goodput_rps, o.goodput_rps, "window [{}, {})", o.t0, o.t1);
            prop_assert_eq!(s.ttft, o.ttft, "window [{}, {})", o.t0, o.t1);
            if s.arrivals == 0 {
                prop_assert_eq!(s.attainment, None);
                prop_assert_eq!(s.ttft, None);
            }
            if let Some(a) = s.attainment {
                prop_assert!(a.is_finite());
            }
        }
    }

    /// Sketch-mode windows share the exact counters (arrivals,
    /// completions, attainment, goodput) with the oracle; only the
    /// TTFT summary is sketched, within its error bound.
    #[test]
    fn sketch_windows_keep_exact_counters(
        n in 1usize..200,
        seed in 0u64..1_000,
    ) {
        let mut u = unit_stream(seed);
        let timeline: Vec<RequestTiming> = (0..n)
            .map(|i| {
                let arrival = u() * 30.0;
                let ttft = u() * 2.0;
                RequestTiming {
                    id: i as u64,
                    arrival_s: arrival,
                    first_token_s: arrival + ttft,
                    completion_s: arrival + ttft + u() * 4.0,
                    output_len: 8,
                    attempts: 1,
                }
            })
            .collect();
        let slo = SloSpec { ttft_s: 1.0, tpot_s: 0.5 };
        let oracle = windowed_metrics(&timeline, slo, 5.0, 30.0);
        let mut acc = WindowAccumulator::new(slo, 5.0, SummaryMode::Sketch);
        acc.observe(&timeline);
        let streamed = acc.finish(30.0);
        prop_assert_eq!(streamed.len(), oracle.len());
        for (s, o) in streamed.iter().zip(&oracle) {
            prop_assert_eq!(s.arrivals, o.arrivals);
            prop_assert_eq!(s.completions, o.completions);
            prop_assert_eq!(s.attainment, o.attainment);
            prop_assert_eq!(s.goodput_rps, o.goodput_rps);
            prop_assert_eq!(s.ttft.is_some(), o.ttft.is_some(), "sketch must not invent samples");
            if let (Some(sk), Some(ex)) = (s.ttft, o.ttft) {
                for (a, b) in [(sk.p50, ex.p50), (sk.p90, ex.p90), (sk.max, ex.max)] {
                    prop_assert!((a - b).abs() <= (b.abs() * 0.01).max(1e-9));
                }
            }
        }
    }
}
