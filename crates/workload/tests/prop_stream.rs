//! Property tests for fleet stream splitting: an arrival-sorted
//! global stream split by *any* assignment stays arrival-sorted per
//! replica (order preservation), partitions exactly, and merges back
//! losslessly — so a router can never trip the engines'
//! `assert_arrivals_sorted` guard.

use proptest::prelude::*;
use seesaw_workload::{
    merge_timelines, split_stream, ArrivalDist, DispatchQueue, Request, RequestTiming,
};

/// Random nondecreasing arrival trace of `n` requests.
fn traced_requests(n: usize, seed: u64, rate: f64, cv: f64) -> Vec<Request> {
    let base: Vec<Request> = (0..n).map(|i| Request::new(i as u64, 64, 8)).collect();
    ArrivalDist::Gamma { rate, cv }
        .attach(&base, seed)
        .expect("valid arrival process")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any assignment of an arrival-sorted stream yields per-replica
    /// streams that are themselves arrival-sorted and partition the
    /// input exactly.
    #[test]
    fn split_streams_stay_arrival_sorted(
        n in 1usize..200,
        n_replicas in 1usize..9,
        seed in 0u64..1000,
        rate in 0.1f64..50.0,
        cv in 0.1f64..4.0,
        assign_seed in 0u64..1000,
    ) {
        let reqs = traced_requests(n, seed, rate, cv);
        prop_assert!(reqs.windows(2).all(|w| w[0].arrival_s <= w[1].arrival_s));
        // Arbitrary assignment, independent of the arrivals.
        let mut x = assign_seed.wrapping_mul(2).wrapping_add(1);
        let assignment: Vec<usize> = (0..n)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                (x >> 33) as usize % n_replicas
            })
            .collect();
        let streams = split_stream(&reqs, &assignment, n_replicas);
        prop_assert_eq!(streams.len(), n_replicas);
        prop_assert_eq!(streams.iter().map(Vec::len).sum::<usize>(), n);
        for (r, s) in streams.iter().enumerate() {
            prop_assert!(
                s.windows(2).all(|w| w[0].arrival_s <= w[1].arrival_s),
                "replica {} stream lost arrival order", r
            );
            for req in s {
                prop_assert_eq!(assignment[req.id as usize], r, "request on the wrong replica");
            }
        }
    }

    /// Splitting then merging per-replica timelines reproduces every
    /// request exactly once, id-sorted.
    #[test]
    fn split_then_merge_is_lossless(
        n in 1usize..150,
        n_replicas in 1usize..6,
        seed in 0u64..500,
    ) {
        let reqs = traced_requests(n, seed, 2.0, 1.0);
        let assignment: Vec<usize> = (0..n).map(|i| i % n_replicas).collect();
        let streams = split_stream(&reqs, &assignment, n_replicas);
        let timelines: Vec<Vec<RequestTiming>> = streams
            .iter()
            .map(|s| {
                s.iter()
                    .map(|r| RequestTiming {
                        id: r.id,
                        arrival_s: r.arrival_s,
                        first_token_s: r.arrival_s + 0.1,
                        completion_s: r.arrival_s + 1.0,
                        output_len: r.output_len,
                        attempts: 1,
                    })
                    .collect()
            })
            .collect();
        let merged = merge_timelines(timelines.iter().map(Vec::as_slice));
        prop_assert_eq!(merged.len(), n);
        for (i, t) in merged.iter().enumerate() {
            prop_assert_eq!(t.id, i as u64, "merged timeline must be id-sorted and complete");
        }
    }

    /// A dispatch queue interleaving base arrivals with retries pushed
    /// at or after the causal walk's position (how a kill schedule
    /// requeues lost work: detection + backoff always lands in the
    /// future) pops a nondecreasing, lossless sequence — and any
    /// split of that sequence stays arrival-sorted per replica, so a
    /// chaos run can never trip `assert_arrivals_sorted`.
    #[test]
    fn dispatch_queue_stays_sorted_under_random_requeues(
        n in 1usize..150,
        n_replicas in 1usize..6,
        seed in 0u64..500,
        rate in 0.5f64..20.0,
        retry_seed in 0u64..1000,
        retry_every in 1usize..8,
    ) {
        let reqs = traced_requests(n, seed, rate, 1.0);
        let mut q = DispatchQueue::new(&reqs);
        let mut x = retry_seed.wrapping_mul(2).wrapping_add(1);
        let mut lcg = move || {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            x >> 33
        };
        let mut next_retry_id = n as u64;
        let mut popped: Vec<Request> = Vec::new();
        let mut pushed = 0usize;
        while let Some((req, _)) = q.pop() {
            // Pseudo-random "kill": requeue a retry attempt at the
            // current position plus a random nonnegative delay.
            if popped.len() % retry_every == 0 && pushed < 2 * n {
                let delay = (lcg() % 1000) as f64 / 100.0;
                q.push(Request::new(next_retry_id, 64, 8).with_arrival(req.arrival_s + delay));
                next_retry_id += 1;
                pushed += 1;
            }
            popped.push(req);
        }
        prop_assert_eq!(popped.len(), n + pushed, "no dispatch may be lost");
        prop_assert!(
            popped.windows(2).all(|w| w[0].arrival_s <= w[1].arrival_s),
            "dispatch order must be nondecreasing"
        );
        let assignment: Vec<usize> = popped
            .iter()
            .map(|_| (lcg() as usize) % n_replicas)
            .collect();
        for (r, s) in split_stream(&popped, &assignment, n_replicas).iter().enumerate() {
            prop_assert!(
                s.windows(2).all(|w| w[0].arrival_s <= w[1].arrival_s),
                "replica {} requeued stream lost arrival order", r
            );
        }
    }
}
