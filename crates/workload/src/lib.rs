//! Workload generation and run metrics.
//!
//! The paper evaluates on two datasets whose *length distributions*
//! (Figure 9) are what actually drive throughput behaviour:
//!
//! * `sharegpt` — chat histories; inputs and outputs of comparable,
//!   few-hundred-token length.
//! * `arxiv-summarization` — long documents (thousands of tokens) with
//!   short summaries.
//!
//! Since token *values* are irrelevant to a performance study, this
//! crate generates synthetic requests whose input/output length
//! marginals match those shapes (clipped lognormals), plus the
//! constant-length workloads of §6.5. All generators are seeded and
//! deterministic.

pub mod arrival;
pub mod envelope;
pub mod gen;
pub mod latency;
pub mod metrics;
pub mod request;
pub mod stream;

pub use arrival::{ArrivalDist, ArrivalSampler};
pub use envelope::{load_trace_file, parse_trace, unit_rate_pattern, RateEnvelope};
pub use gen::{LengthDist, WorkloadGen, ARRIVAL_SEED_SALT};
pub use latency::{
    percentile, windowed_metrics, LatencySketch, LatencyStats, LatencySummary, RequestTiming,
    SloSpec, SummaryMode, WindowAccumulator, WindowMetrics,
};
pub use metrics::RunStats;
pub use request::{LengthStats, Request, RequestMap};
pub use stream::{merge_timelines, split_stream, DispatchQueue};
