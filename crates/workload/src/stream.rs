//! Request-stream splitting and timeline merging for multi-replica
//! (fleet) serving.
//!
//! A fleet router walks one global arrival-sorted stream and assigns
//! each request to a replica; [`split_stream`] materializes the
//! per-replica streams. Splitting is *order-preserving*, so every
//! subsequence of an arrival-sorted stream is itself arrival-sorted —
//! the invariant the engines' `assert_arrivals_sorted` guard enforces
//! at admission (and the property `tests/prop_stream.rs` exercises
//! over random traces).
//!
//! After each replica runs, [`merge_timelines`] recombines the
//! per-replica [`RequestTiming`] timelines into one fleet-level
//! timeline (id-sorted, matching the single-engine report
//! convention) for aggregate latency/SLO statistics.

use crate::latency::RequestTiming;
use crate::request::Request;

/// Split `reqs` into `n_streams` per-replica streams according to
/// `assignment` (parallel to `reqs`; values in `[0, n_streams)`).
/// Relative order within each stream matches the global stream, so
/// arrival-sortedness is preserved per replica.
pub fn split_stream(reqs: &[Request], assignment: &[usize], n_streams: usize) -> Vec<Vec<Request>> {
    assert_eq!(
        reqs.len(),
        assignment.len(),
        "assignment must cover every request"
    );
    let mut streams: Vec<Vec<Request>> = vec![Vec::new(); n_streams];
    for (r, &a) in reqs.iter().zip(assignment) {
        assert!(
            a < n_streams,
            "assignment {a} out of range for {n_streams} replicas"
        );
        streams[a].push(*r);
    }
    streams
}

/// Merge per-replica timelines into one id-sorted fleet timeline.
/// Ids must be globally unique (they came from one request stream).
pub fn merge_timelines<'a, I>(parts: I) -> Vec<RequestTiming>
where
    I: IntoIterator<Item = &'a [RequestTiming]>,
{
    let mut merged: Vec<RequestTiming> = parts.into_iter().flatten().copied().collect();
    merged.sort_by_key(|t| t.id);
    for w in merged.windows(2) {
        assert!(
            w[0].id != w[1].id,
            "duplicate request id {} across replica timelines",
            w[0].id
        );
    }
    merged
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_preserves_order_and_partitions() {
        let reqs: Vec<Request> = (0..10)
            .map(|i| Request::new(i, 100, 10).with_arrival(i as f64 * 0.5))
            .collect();
        let assignment: Vec<usize> = (0..10).map(|i| (i % 3) as usize).collect();
        let streams = split_stream(&reqs, &assignment, 3);
        assert_eq!(streams.iter().map(Vec::len).sum::<usize>(), 10);
        for s in &streams {
            assert!(
                s.windows(2).all(|w| w[0].arrival_s <= w[1].arrival_s),
                "split streams must stay arrival-sorted"
            );
        }
        assert_eq!(streams[0].iter().map(|r| r.id).collect::<Vec<_>>(), vec![0, 3, 6, 9]);
    }

    #[test]
    fn empty_streams_are_fine() {
        let reqs = vec![Request::new(0, 10, 1)];
        let streams = split_stream(&reqs, &[2], 4);
        assert_eq!(streams[2].len(), 1);
        assert!(streams[0].is_empty() && streams[1].is_empty() && streams[3].is_empty());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_assignment_rejected() {
        split_stream(&[Request::new(0, 10, 1)], &[1], 1);
    }

    #[test]
    fn merge_sorts_by_id() {
        let t = |id: u64| RequestTiming {
            id,
            arrival_s: 0.0,
            first_token_s: 1.0,
            completion_s: 2.0,
            output_len: 4,
        };
        let a = vec![t(3), t(5)];
        let b = vec![t(0), t(4)];
        let merged = merge_timelines([a.as_slice(), b.as_slice()]);
        assert_eq!(merged.iter().map(|x| x.id).collect::<Vec<_>>(), vec![0, 3, 4, 5]);
    }

    #[test]
    #[should_panic(expected = "duplicate request id")]
    fn merge_rejects_duplicate_ids() {
        let t = |id: u64| RequestTiming {
            id,
            arrival_s: 0.0,
            first_token_s: 1.0,
            completion_s: 2.0,
            output_len: 4,
        };
        let a = vec![t(3)];
        let b = vec![t(3)];
        merge_timelines([a.as_slice(), b.as_slice()]);
    }
}
