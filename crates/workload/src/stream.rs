//! Request-stream splitting and timeline merging for multi-replica
//! (fleet) serving.
//!
//! A fleet router walks one global arrival-sorted stream and assigns
//! each request to a replica; [`split_stream`] materializes the
//! per-replica streams. Splitting is *order-preserving*, so every
//! subsequence of an arrival-sorted stream is itself arrival-sorted —
//! the invariant the engines' `assert_arrivals_sorted` guard enforces
//! at admission (and the property `tests/prop_stream.rs` exercises
//! over random traces).
//!
//! After each replica runs, [`merge_timelines`] recombines the
//! per-replica [`RequestTiming`] timelines into one fleet-level
//! timeline (id-sorted, matching the single-engine report
//! convention) for aggregate latency/SLO statistics.
//!
//! [`DispatchQueue`] is the retry-aware generalization of walking the
//! base stream directly: a fault-injecting controller pops the merged
//! sequence of base arrivals plus requeued retry attempts in
//! nondecreasing arrival order, so downstream per-replica streams stay
//! arrival-sorted even when replicas die mid-run.

use crate::latency::RequestTiming;
use crate::request::Request;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Split `reqs` into `n_streams` per-replica streams according to
/// `assignment` (parallel to `reqs`; values in `[0, n_streams)`).
/// Relative order within each stream matches the global stream, so
/// arrival-sortedness is preserved per replica.
pub fn split_stream(reqs: &[Request], assignment: &[usize], n_streams: usize) -> Vec<Vec<Request>> {
    assert_eq!(
        reqs.len(),
        assignment.len(),
        "assignment must cover every request"
    );
    let mut streams: Vec<Vec<Request>> = vec![Vec::new(); n_streams];
    for (r, &a) in reqs.iter().zip(assignment) {
        assert!(
            a < n_streams,
            "assignment {a} out of range for {n_streams} replicas"
        );
        streams[a].push(*r);
    }
    streams
}

/// Merge per-replica timelines into one id-sorted fleet timeline.
/// Ids must be globally unique (they came from one request stream).
pub fn merge_timelines<'a, I>(parts: I) -> Vec<RequestTiming>
where
    I: IntoIterator<Item = &'a [RequestTiming]>,
{
    let mut merged: Vec<RequestTiming> = parts.into_iter().flatten().copied().collect();
    merged.sort_by_key(|t| t.id);
    for w in merged.windows(2) {
        assert!(
            w[0].id != w[1].id,
            "duplicate request id {} across replica timelines",
            w[0].id
        );
    }
    merged
}

/// A retry attempt waiting for dispatch, min-ordered by arrival time
/// (ties broken by push order, so equal-time retries dispatch in the
/// order they were lost).
#[derive(Debug, Clone, Copy)]
struct RetryKey {
    at_s: f64,
    seq: u64,
    req: Request,
}

impl PartialEq for RetryKey {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for RetryKey {}
impl PartialOrd for RetryKey {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for RetryKey {
    // Reversed so `BinaryHeap` (a max-heap) pops the *earliest*
    // retry; ties pop in push order.
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .at_s
            .total_cmp(&self.at_s)
            .then(other.seq.cmp(&self.seq))
    }
}

/// Merges an arrival-sorted base stream with retry attempts pushed
/// mid-walk into one nondecreasing dispatch order.
///
/// The consumer alternates [`DispatchQueue::pop`] with whatever
/// bookkeeping it does at each dispatch time; retries may be pushed
/// between pops as long as their arrival is at or after the last
/// popped time (enforced — a retry is always scheduled *after* the
/// failure that caused it, which itself is at or after the causal
/// walk's current position). Base requests win ties against retries
/// at the same instant, preserving the plain walk order exactly when
/// no retries are ever pushed.
#[derive(Debug)]
pub struct DispatchQueue<'a> {
    base: &'a [Request],
    next: usize,
    retries: BinaryHeap<RetryKey>,
    seq: u64,
    last_s: f64,
}

impl<'a> DispatchQueue<'a> {
    /// Wrap an arrival-sorted base stream (asserted).
    pub fn new(base: &'a [Request]) -> Self {
        assert!(
            base.windows(2).all(|w| w[0].arrival_s <= w[1].arrival_s),
            "base stream must be arrival-sorted"
        );
        DispatchQueue { base, next: 0, retries: BinaryHeap::new(), seq: 0, last_s: 0.0 }
    }

    /// Schedule a retry attempt; its `arrival_s` is the retry time.
    /// Must not precede the last popped dispatch (the queue would no
    /// longer be a sorted merge).
    pub fn push(&mut self, req: Request) {
        assert!(
            req.arrival_s.is_finite() && req.arrival_s >= self.last_s,
            "retry at {} precedes the dispatch watermark {}",
            req.arrival_s,
            self.last_s
        );
        self.retries.push(RetryKey { at_s: req.arrival_s, seq: self.seq, req });
        self.seq += 1;
    }

    /// Arrival time of the next dispatch, if any.
    pub fn peek_s(&self) -> Option<f64> {
        let base = self.base.get(self.next).map(|r| r.arrival_s);
        let retry = self.retries.peek().map(|k| k.at_s);
        match (base, retry) {
            (Some(b), Some(r)) => Some(b.min(r)),
            (x, y) => x.or(y),
        }
    }

    /// Next request in nondecreasing arrival order, with a flag
    /// marking retry attempts. Base requests win ties.
    pub fn pop(&mut self) -> Option<(Request, bool)> {
        let take_base = match (self.base.get(self.next), self.retries.peek()) {
            (Some(b), Some(r)) => b.arrival_s <= r.at_s,
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (None, None) => return None,
        };
        let (req, is_retry) = if take_base {
            self.next += 1;
            (self.base[self.next - 1], false)
        } else {
            (self.retries.pop().expect("peeked").req, true)
        };
        debug_assert!(req.arrival_s >= self.last_s);
        self.last_s = req.arrival_s;
        Some((req, is_retry))
    }

    /// Dispatches still pending (base remainder + scheduled retries).
    pub fn len(&self) -> usize {
        self.base.len() - self.next + self.retries.len()
    }

    /// Whether nothing is left to dispatch.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_preserves_order_and_partitions() {
        let reqs: Vec<Request> = (0..10)
            .map(|i| Request::new(i, 100, 10).with_arrival(i as f64 * 0.5))
            .collect();
        let assignment: Vec<usize> = (0..10).map(|i| (i % 3) as usize).collect();
        let streams = split_stream(&reqs, &assignment, 3);
        assert_eq!(streams.iter().map(Vec::len).sum::<usize>(), 10);
        for s in &streams {
            assert!(
                s.windows(2).all(|w| w[0].arrival_s <= w[1].arrival_s),
                "split streams must stay arrival-sorted"
            );
        }
        assert_eq!(streams[0].iter().map(|r| r.id).collect::<Vec<_>>(), vec![0, 3, 6, 9]);
    }

    #[test]
    fn empty_streams_are_fine() {
        let reqs = vec![Request::new(0, 10, 1)];
        let streams = split_stream(&reqs, &[2], 4);
        assert_eq!(streams[2].len(), 1);
        assert!(streams[0].is_empty() && streams[1].is_empty() && streams[3].is_empty());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_assignment_rejected() {
        split_stream(&[Request::new(0, 10, 1)], &[1], 1);
    }

    #[test]
    fn merge_sorts_by_id() {
        let t = |id: u64| RequestTiming {
            id,
            arrival_s: 0.0,
            first_token_s: 1.0,
            completion_s: 2.0,
            output_len: 4,
            attempts: 1,
        };
        let a = vec![t(3), t(5)];
        let b = vec![t(0), t(4)];
        let merged = merge_timelines([a.as_slice(), b.as_slice()]);
        assert_eq!(merged.iter().map(|x| x.id).collect::<Vec<_>>(), vec![0, 3, 4, 5]);
    }

    #[test]
    fn dispatch_queue_merges_sorted() {
        let base: Vec<Request> = (0..4)
            .map(|i| Request::new(i, 10, 2).with_arrival(i as f64))
            .collect();
        let mut q = DispatchQueue::new(&base);
        assert_eq!(q.len(), 4);
        assert_eq!(q.peek_s(), Some(0.0));
        assert_eq!(q.pop(), Some((base[0], false)));
        // Two retries land between base arrivals; one ties base id 2.
        q.push(Request::new(100, 10, 2).with_arrival(1.5));
        q.push(Request::new(101, 10, 2).with_arrival(2.0));
        let order: Vec<(u64, bool)> = std::iter::from_fn(|| q.pop())
            .map(|(r, retry)| (r.id, retry))
            .collect();
        // Base wins the t = 2.0 tie against retry 101.
        assert_eq!(
            order,
            vec![(1, false), (100, true), (2, false), (101, true), (3, false)]
        );
        assert!(q.is_empty());
    }

    #[test]
    fn dispatch_queue_equal_time_retries_pop_in_push_order() {
        let base: Vec<Request> = Vec::new();
        let mut q = DispatchQueue::new(&base);
        for id in [7u64, 3, 9] {
            q.push(Request::new(id, 10, 2).with_arrival(5.0));
        }
        let ids: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|(r, _)| r.id).collect();
        assert_eq!(ids, vec![7, 3, 9]);
    }

    #[test]
    #[should_panic(expected = "dispatch watermark")]
    fn dispatch_queue_rejects_retry_before_watermark() {
        let base = vec![Request::new(0, 10, 2).with_arrival(3.0)];
        let mut q = DispatchQueue::new(&base);
        q.pop();
        q.push(Request::new(1, 10, 2).with_arrival(2.0));
    }

    #[test]
    #[should_panic(expected = "arrival-sorted")]
    fn dispatch_queue_rejects_unsorted_base() {
        let base = vec![
            Request::new(0, 10, 2).with_arrival(3.0),
            Request::new(1, 10, 2).with_arrival(1.0),
        ];
        DispatchQueue::new(&base);
    }

    #[test]
    #[should_panic(expected = "duplicate request id")]
    fn merge_rejects_duplicate_ids() {
        let t = |id: u64| RequestTiming {
            id,
            arrival_s: 0.0,
            first_token_s: 1.0,
            completion_s: 2.0,
            output_len: 4,
            attempts: 1,
        };
        let a = vec![t(3)];
        let b = vec![t(3)];
        merge_timelines([a.as_slice(), b.as_slice()]);
    }
}
