//! Per-request latency metrics for online serving runs: TTFT, TPOT,
//! end-to-end latency, their percentiles, and SLO/goodput accounting.
//!
//! Engines record one [`RequestTiming`] per completed request
//! (arrival, first-token, and completion timestamps in simulated
//! seconds); [`LatencyStats`] summarizes a timeline with nearest-rank
//! percentiles. SLO attainment and goodput — requests meeting a
//! TTFT/TPOT SLO per second — are the serving sweep's headline
//! metrics.

use serde::{Deserialize, Serialize};

/// Simulated-time timeline of one request's life.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RequestTiming {
    /// Request id.
    pub id: u64,
    /// When the request became available, seconds.
    pub arrival_s: f64,
    /// When its first output token was produced, seconds.
    pub first_token_s: f64,
    /// When its last output token was produced, seconds.
    pub completion_s: f64,
    /// Tokens generated (for TPOT normalization).
    pub output_len: usize,
}

impl RequestTiming {
    /// Time to first token: queueing + prefill, seconds.
    pub fn ttft(&self) -> f64 {
        self.first_token_s - self.arrival_s
    }

    /// Time per output token after the first (a.k.a. TBT), seconds.
    /// Zero for single-token outputs (no inter-token gap exists).
    pub fn tpot(&self) -> f64 {
        if self.output_len > 1 {
            (self.completion_s - self.first_token_s) / (self.output_len - 1) as f64
        } else {
            0.0
        }
    }

    /// End-to-end latency (arrival to last token), seconds.
    pub fn e2e(&self) -> f64 {
        self.completion_s - self.arrival_s
    }
}

/// Nearest-rank percentile of `xs` (`p` in percent, 0 < p ≤ 100):
/// the smallest element with at least `p`% of the sample at or below
/// it. Input order is irrelevant (a sorted copy is taken). Returns
/// `None` for an empty slice.
pub fn percentile(xs: &[f64], p: f64) -> Option<f64> {
    if xs.is_empty() {
        return None;
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite latency samples"));
    Some(percentile_of_sorted(&sorted, p))
}

/// Nearest-rank percentile of an already-ascending non-empty sample.
fn percentile_of_sorted(sorted: &[f64], p: f64) -> f64 {
    assert!(
        p > 0.0 && p <= 100.0 && p.is_finite(),
        "percentile must be in (0, 100], got {p}"
    );
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Five-number summary of one latency marginal (all seconds).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencySummary {
    /// Arithmetic mean.
    pub mean: f64,
    /// Median (nearest-rank p50).
    pub p50: f64,
    /// Nearest-rank p90.
    pub p90: f64,
    /// Nearest-rank p99.
    pub p99: f64,
    /// Maximum.
    pub max: f64,
}

impl LatencySummary {
    /// Summarize a sample set; all-zero for an empty one. Sorts the
    /// samples once and indexes every rank (summaries run on every
    /// engine report, so per-percentile re-sorting would be paid on
    /// the sweep hot path).
    pub fn of(xs: &[f64]) -> Self {
        if xs.is_empty() {
            return LatencySummary { mean: 0.0, p50: 0.0, p90: 0.0, p99: 0.0, max: 0.0 };
        }
        let mut sorted = xs.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite latency samples"));
        LatencySummary {
            mean: sorted.iter().sum::<f64>() / sorted.len() as f64,
            p50: percentile_of_sorted(&sorted, 50.0),
            p90: percentile_of_sorted(&sorted, 90.0),
            p99: percentile_of_sorted(&sorted, 99.0),
            max: *sorted.last().expect("non-empty"),
        }
    }
}

/// Latency summary of a completed run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencyStats {
    /// Requests summarized.
    pub count: usize,
    /// Time-to-first-token marginal.
    pub ttft: LatencySummary,
    /// Time-per-output-token marginal (multi-token requests only;
    /// single-token outputs have no inter-token gap).
    pub tpot: LatencySummary,
    /// End-to-end latency marginal.
    pub e2e: LatencySummary,
}

impl LatencyStats {
    /// Summarize a timeline; `None` when it is empty.
    pub fn from_timeline(timeline: &[RequestTiming]) -> Option<Self> {
        if timeline.is_empty() {
            return None;
        }
        let ttft: Vec<f64> = timeline.iter().map(RequestTiming::ttft).collect();
        let tpot: Vec<f64> = timeline
            .iter()
            .filter(|t| t.output_len > 1)
            .map(RequestTiming::tpot)
            .collect();
        let e2e: Vec<f64> = timeline.iter().map(RequestTiming::e2e).collect();
        Some(LatencyStats {
            count: timeline.len(),
            ttft: LatencySummary::of(&ttft),
            tpot: LatencySummary::of(&tpot),
            e2e: LatencySummary::of(&e2e),
        })
    }
}

/// A latency service-level objective on TTFT and TPOT.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SloSpec {
    /// Maximum acceptable time to first token, seconds.
    pub ttft_s: f64,
    /// Maximum acceptable time per output token, seconds.
    pub tpot_s: f64,
}

impl SloSpec {
    /// Whether one request met both objectives.
    pub fn met_by(&self, t: &RequestTiming) -> bool {
        t.ttft() <= self.ttft_s && t.tpot() <= self.tpot_s
    }

    /// Fraction of the timeline meeting the SLO (0.0 for an empty
    /// timeline).
    pub fn attainment(&self, timeline: &[RequestTiming]) -> f64 {
        if timeline.is_empty() {
            return 0.0;
        }
        let met = timeline.iter().filter(|t| self.met_by(t)).count();
        met as f64 / timeline.len() as f64
    }

    /// Goodput: SLO-meeting requests completed per second over
    /// `duration_s` (0.0 when no time elapsed).
    pub fn goodput_rps(&self, timeline: &[RequestTiming], duration_s: f64) -> f64 {
        if duration_s <= 0.0 {
            return 0.0;
        }
        timeline.iter().filter(|t| self.met_by(t)).count() as f64 / duration_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timing(id: u64, arrival: f64, first: f64, done: f64, out: usize) -> RequestTiming {
        RequestTiming {
            id,
            arrival_s: arrival,
            first_token_s: first,
            completion_s: done,
            output_len: out,
        }
    }

    #[test]
    fn per_request_metrics() {
        let t = timing(0, 1.0, 1.5, 3.5, 5);
        assert!((t.ttft() - 0.5).abs() < 1e-12);
        assert!((t.tpot() - 0.5).abs() < 1e-12);
        assert!((t.e2e() - 2.5).abs() < 1e-12);
        // Single-token outputs have no inter-token gap.
        assert_eq!(timing(1, 0.0, 2.0, 2.0, 1).tpot(), 0.0);
    }

    #[test]
    fn percentile_nearest_rank_n1() {
        assert_eq!(percentile(&[3.0], 50.0), Some(3.0));
        assert_eq!(percentile(&[3.0], 99.0), Some(3.0));
        assert_eq!(percentile(&[3.0], 100.0), Some(3.0));
    }

    #[test]
    fn percentile_nearest_rank_n2() {
        // rank = ceil(0.5 * 2) = 1 -> lower element.
        assert_eq!(percentile(&[1.0, 2.0], 50.0), Some(1.0));
        // rank = ceil(0.9 * 2) = 2 -> upper element.
        assert_eq!(percentile(&[1.0, 2.0], 90.0), Some(2.0));
        assert_eq!(percentile(&[1.0, 2.0], 100.0), Some(2.0));
    }

    #[test]
    fn percentile_handles_ties_and_unsorted_input() {
        let xs = [5.0, 1.0, 5.0, 2.0, 5.0];
        assert_eq!(percentile(&xs, 50.0), Some(5.0));
        assert_eq!(percentile(&xs, 20.0), Some(1.0));
        assert_eq!(percentile(&xs, 99.0), Some(5.0));
        let all_same = [7.0; 9];
        for p in [1.0, 50.0, 90.0, 99.0, 100.0] {
            assert_eq!(percentile(&all_same, p), Some(7.0));
        }
    }

    #[test]
    fn percentile_empty_is_none() {
        assert_eq!(percentile(&[], 50.0), None);
    }

    #[test]
    fn percentile_p99_picks_tail_of_100() {
        let xs: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(percentile(&xs, 99.0), Some(99.0));
        assert_eq!(percentile(&xs, 50.0), Some(50.0));
        assert_eq!(percentile(&xs, 100.0), Some(100.0));
    }

    #[test]
    #[should_panic(expected = "percentile must be in")]
    fn percentile_rejects_zero_p() {
        percentile(&[1.0], 0.0);
    }

    #[test]
    fn stats_from_timeline() {
        let tl = vec![
            timing(0, 0.0, 1.0, 2.0, 11),
            timing(1, 0.5, 1.0, 3.0, 21),
            timing(2, 1.0, 4.0, 4.0, 1),
        ];
        let s = LatencyStats::from_timeline(&tl).unwrap();
        assert_eq!(s.count, 3);
        // TTFTs: 1.0, 0.5, 3.0 -> p50 = 1.0, max = 3.0.
        assert_eq!(s.ttft.p50, 1.0);
        assert_eq!(s.ttft.max, 3.0);
        // TPOT excludes the single-token request: 0.1, 0.1.
        assert!((s.tpot.p50 - 0.1).abs() < 1e-12);
        assert!((s.tpot.mean - 0.1).abs() < 1e-12);
        assert!(LatencyStats::from_timeline(&[]).is_none());
    }

    #[test]
    fn slo_attainment_and_goodput() {
        let slo = SloSpec { ttft_s: 1.0, tpot_s: 0.2 };
        let tl = vec![
            timing(0, 0.0, 0.5, 1.5, 11),  // ttft 0.5, tpot 0.1 -> met
            timing(1, 0.0, 2.0, 3.0, 11),  // ttft 2.0 -> missed
            timing(2, 0.0, 1.0, 6.0, 11),  // tpot 0.5 -> missed
            timing(3, 1.0, 1.5, 1.5, 1),   // ttft 0.5, single token -> met
        ];
        assert!((slo.attainment(&tl) - 0.5).abs() < 1e-12);
        assert!((slo.goodput_rps(&tl, 4.0) - 0.5).abs() < 1e-12);
        assert_eq!(slo.attainment(&[]), 0.0);
        assert_eq!(slo.goodput_rps(&tl, 0.0), 0.0);
    }
}
